//! A **correlated** regime-switch scenario: whole racks of devices shift
//! workload simultaneously — the fleet-service stress test.
//!
//! The [`drifting`] scenario breaks stationarity for
//! *one* device. A data center breaks it in a harder way: workload
//! shifts are **correlated across devices** — a batch job lands on a
//! rack, a cache tier fails over, a tenant migrates — so a whole rack's
//! devices leave their cluster at once, stressing the fleet
//! controller's eviction/re-homing machinery far beyond what i.i.d.
//! per-device drift can, while every *other* rack sits perfectly still
//! (the incremental gauge's best case).
//!
//! The schedule is deliberately deterministic and periodic:
//!
//! * Epochs come in **blocks** of [`CALM_EPOCHS`]. In block 0 every
//!   rack runs the [`CALM`] pattern; in block `k ≥ 1` exactly one rack
//!   — `(k − 1) % racks` — runs the [`SURGE`] pattern while the rest
//!   stay calm. Each block boundary is thus a correlated shift hitting
//!   one rack's devices simultaneously.
//! * Both patterns' periods divide [`EPOCH_SLICES`], so within a
//!   regime a device's windowed transition counts are **bit-identical
//!   epoch over epoch**. On calm (non-shift) epochs the count-drift
//!   gauge reads exactly zero and a quiet-gated fleet
//!   ([`FleetConfig::quiet_divergence`] at `0.0`) deterministically
//!   skips every untouched device's gauge recomputation — the ≥ 90%
//!   skip ratio the fleet-service acceptance test demands is by
//!   construction, not by luck.
//!
//! [`FleetConfig::quiet_divergence`]: https://docs.rs/dpm-runtime
//!
//! Compose the system with [`system`], drive epochs with
//! [`RackSchedule::epoch_arrivals`], and detect correlated shifts with
//! [`RackSchedule::is_shift_epoch`].

use dpm_core::{DpmError, ServiceRequester, SystemModel};

use crate::drifting;

/// Racks in the default schedule.
pub const RACKS: usize = 4;

/// Devices per rack in the default schedule (32 devices total).
pub const DEVICES_PER_RACK: usize = 8;

/// Arrival slices per adaptation epoch. Both regime periods divide
/// this, so per-regime windowed counts repeat exactly epoch over epoch.
pub const EPOCH_SLICES: usize = 400;

/// Epochs per schedule block: one correlated rack shift per block
/// boundary, [`CALM_EPOCHS`]` − 1` guaranteed-quiet epochs in between.
pub const CALM_EPOCHS: usize = 4;

/// Memory of the scenario's k-memory SR models (2 states).
pub const MEMORY: u32 = drifting::MEMORY;

/// Laplace smoothing of every fit (keeps transition support stable, so
/// per-cluster reloads stay warm).
pub const SMOOTHING: f64 = drifting::SMOOTHING;

/// The calm pattern `(density, period)`: 1 busy slice in 16 (~6% load).
pub const CALM: (usize, usize) = (1, 16);

/// The surge pattern `(density, period)`: 5 busy slices in 8 (~63%
/// load) — far enough from [`CALM`] that a surged device's fit always
/// leaves its calm cluster.
pub const SURGE: (usize, usize) = (5, 8);

/// The deterministic rack-correlated shift schedule (see the
/// [module docs](self)).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RackSchedule {
    racks: usize,
    devices_per_rack: usize,
    calm_epochs: usize,
}

impl Default for RackSchedule {
    fn default() -> Self {
        Self::new()
    }
}

impl RackSchedule {
    /// The default schedule: [`RACKS`] × [`DEVICES_PER_RACK`] devices,
    /// blocks of [`CALM_EPOCHS`].
    pub fn new() -> Self {
        RackSchedule {
            racks: RACKS,
            devices_per_rack: DEVICES_PER_RACK,
            calm_epochs: CALM_EPOCHS,
        }
    }

    /// A custom schedule shape.
    ///
    /// # Errors
    ///
    /// [`DpmError::BadConfiguration`] when any dimension is zero.
    pub fn custom(
        racks: usize,
        devices_per_rack: usize,
        calm_epochs: usize,
    ) -> Result<Self, DpmError> {
        if racks == 0 || devices_per_rack == 0 || calm_epochs == 0 {
            return Err(DpmError::BadConfiguration {
                reason: format!(
                    "rack schedule needs nonzero dimensions, got {racks} racks x \
                     {devices_per_rack} devices, blocks of {calm_epochs}"
                ),
            });
        }
        Ok(RackSchedule {
            racks,
            devices_per_rack,
            calm_epochs,
        })
    }

    /// Racks in the schedule.
    pub fn racks(&self) -> usize {
        self.racks
    }

    /// Devices in the whole schedule.
    pub fn devices(&self) -> usize {
        self.racks * self.devices_per_rack
    }

    /// The rack device `device` sits in (devices are laid out rack by
    /// rack).
    pub fn rack_of(&self, device: usize) -> usize {
        device / self.devices_per_rack
    }

    /// The rack running the surge pattern during `epoch` (`None` in
    /// block 0, when every rack is calm).
    pub fn surged_rack(&self, epoch: usize) -> Option<usize> {
        let block = epoch / self.calm_epochs;
        block.checked_sub(1).map(|k| k % self.racks)
    }

    /// Whether `epoch` opens a block whose surged rack differs from the
    /// previous epoch's — i.e. a correlated shift lands this epoch.
    pub fn is_shift_epoch(&self, epoch: usize) -> bool {
        epoch > 0 && self.surged_rack(epoch) != self.surged_rack(epoch - 1)
    }

    /// The `(density, period)` pattern device `device` runs during
    /// `epoch`.
    pub fn regime(&self, device: usize, epoch: usize) -> (usize, usize) {
        if self.surged_rack(epoch) == Some(self.rack_of(device)) {
            SURGE
        } else {
            CALM
        }
    }

    /// The deterministic arrival streams of one epoch, one
    /// [`EPOCH_SLICES`]-slice stream per device. The device index
    /// phases its pattern (decorrelating exact slice positions without
    /// changing the statistics), and because each pattern's period
    /// divides the epoch length, a device's stream is identical every
    /// epoch its regime holds.
    pub fn epoch_arrivals(&self, epoch: usize) -> Vec<Vec<u32>> {
        (0..self.devices())
            .map(|d| {
                let (density, period) = self.regime(d, epoch);
                (0..EPOCH_SLICES)
                    .map(|i| u32::from((d + i) % period < density))
                    .collect()
            })
            .collect()
    }
}

/// The scenario system: the toy provider with a two-state base
/// workload between the calm and surge loads — every rack device is an
/// instance of this one class.
///
/// # Errors
///
/// Propagates composition failures (never fails in practice).
pub fn system() -> Result<SystemModel, DpmError> {
    system_for(ServiceRequester::two_state(0.1, 0.6)?)
}

/// Composes the scenario system around an arbitrary
/// (2^[`MEMORY`])-state requester — same provider and queue as the
/// [`drifting`] scenario, so results are comparable.
///
/// # Errors
///
/// Propagates composition failures.
pub fn system_for(sr: ServiceRequester) -> Result<SystemModel, DpmError> {
    drifting::system_for(sr)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schedule_shifts_one_whole_rack_per_block() {
        let schedule = RackSchedule::new();
        assert_eq!(schedule.devices(), RACKS * DEVICES_PER_RACK);
        assert_eq!(schedule.surged_rack(0), None, "block 0 is all-calm");
        for epoch in 0..CALM_EPOCHS {
            assert_eq!(schedule.surged_rack(epoch), None);
        }
        // Block k surges rack (k-1) % RACKS, cycling.
        for k in 1..=2 * RACKS {
            let epoch = k * CALM_EPOCHS;
            assert_eq!(schedule.surged_rack(epoch), Some((k - 1) % RACKS));
            assert!(schedule.is_shift_epoch(epoch), "block boundary shifts");
            assert!(!schedule.is_shift_epoch(epoch + 1), "mid-block is calm");
        }
        // A shift flips exactly one rack's devices.
        let before = schedule.epoch_arrivals(CALM_EPOCHS - 1);
        let after = schedule.epoch_arrivals(CALM_EPOCHS);
        let changed: Vec<usize> = (0..schedule.devices())
            .filter(|&d| before[d] != after[d])
            .collect();
        assert_eq!(changed.len(), DEVICES_PER_RACK);
        assert!(changed.iter().all(|&d| schedule.rack_of(d) == 0));
    }

    #[test]
    fn streams_repeat_exactly_on_calm_epochs() {
        let schedule = RackSchedule::new();
        for epoch in [1, 2, CALM_EPOCHS + 1, 3 * CALM_EPOCHS + 2] {
            assert!(!schedule.is_shift_epoch(epoch));
            assert_eq!(
                schedule.epoch_arrivals(epoch),
                schedule.epoch_arrivals(epoch - 1),
                "non-shift epoch {epoch} must replay the previous streams"
            );
        }
    }

    #[test]
    fn calm_and_surge_loads_are_far_apart() {
        let schedule = RackSchedule::new();
        let arrivals = schedule.epoch_arrivals(CALM_EPOCHS);
        let load = |stream: &[u32]| stream.iter().sum::<u32>() as f64 / stream.len() as f64;
        // Rack 0 is surged, rack 1 is calm.
        let surged = load(&arrivals[0]);
        let calm = load(&arrivals[DEVICES_PER_RACK]);
        assert!(surged > 0.5, "surge load {surged}");
        assert!(calm < 0.1, "calm load {calm}");
    }

    #[test]
    fn periods_divide_the_epoch_and_the_system_composes() {
        assert_eq!(EPOCH_SLICES % CALM.1, 0);
        assert_eq!(EPOCH_SLICES % SURGE.1, 0);
        let system = system().unwrap();
        assert_eq!(system.requester().num_states(), 1 << MEMORY);
        assert!(RackSchedule::custom(0, 1, 1).is_err());
    }
}
