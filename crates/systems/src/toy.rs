//! The running example system of Sections III–IV (Examples 3.1–3.5) and
//! Appendix A (Examples A.1, A.2).
//!
//! # What comes from the paper, what is reconstructed
//!
//! Stated in the surviving text:
//! * SP states `{on, off}`, commands `{s_on, s_off}` (Example 3.1);
//! * `P(off → on | s_on) = 0.1` — "the transition time from off to on when
//!   the on command has been issued is ... 1/0.1 = 10 periods";
//! * service rate `σ(on, s_on) = 0.8` (Example 3.3);
//! * powers: 3 W serving, 4 W switching (either direction), 0 W off
//!   (Example A.2);
//! * SR: two states, `r ∈ {0, 1}`, `P(busy → busy) = 0.85` — "mean
//!   duration of a stream of requests ... 1/0.15 = 6.67 periods"
//!   (Example 3.2);
//! * queue of length 1 ⇒ 8 composite states (Examples 3.3, 3.5).
//!
//! Reconstructed (the numbers lived in Figs. 2–4, which are images):
//! * `P(on → off | s_off) = 0.8` — a fast but not instant shut-down,
//!   consistent with Example 3.1's "power consumption during the switching
//!   times is higher than the active state";
//! * `P(idle → busy) = 0.05` — calibrated so the feasibility floor of the
//!   average queue length lands at ≈ 0.163, matching Fig. 6's reported
//!   infeasible region below ≈ 0.175. With this value the Example A.2
//!   configuration (α = 0.99999, queue ≤ 0.5, loss ≤ 0.2) yields a
//!   minimum power of ≈ 1.74 W against the paper's 1.798 W, with the same
//!   qualitative structure (randomized policy, ≈ 2× below always-on).

use dpm_core::{
    DpmError, ServiceProvider, ServiceQueue, ServiceRequester, SystemModel, SystemState,
};

/// Index of the `on` SP state.
pub const SP_ON: usize = 0;
/// Index of the `off` SP state.
pub const SP_OFF: usize = 1;
/// Index of the `s_on` command.
pub const CMD_ON: usize = 0;
/// Index of the `s_off` command.
pub const CMD_OFF: usize = 1;

/// Power drawn while serving (on, `s_on`), Watts (Example A.2).
pub const POWER_ON: f64 = 3.0;
/// Power drawn while switching in either direction, Watts (Example A.2).
pub const POWER_SWITCHING: f64 = 4.0;

/// Builds the two-state service provider of Example 3.1.
///
/// # Errors
///
/// Never fails in practice; propagates builder validation.
pub fn service_provider() -> Result<ServiceProvider, DpmError> {
    let mut b = ServiceProvider::builder();
    let on = b.add_state("on");
    let off = b.add_state("off");
    let s_on = b.add_command("s_on");
    let s_off = b.add_command("s_off");
    b.transition(off, on, s_on, 0.1)?; // 10-slice expected wake (Ex. 3.1)
    b.transition(on, off, s_off, 0.8)?; // reconstructed fast shut-down
    b.service_rate(on, s_on, 0.8)?; // Example 3.3
    b.power(on, s_on, POWER_ON)?;
    b.power(on, s_off, POWER_SWITCHING)?;
    b.power(off, s_on, POWER_SWITCHING)?;
    b.power(off, s_off, 0.0)?;
    b.build()
}

/// The bursty workload of Example 3.2 with the calibrated idle→busy rate.
///
/// # Errors
///
/// Never fails in practice; propagates validation.
pub fn service_requester() -> Result<ServiceRequester, DpmError> {
    ServiceRequester::two_state(0.05, 0.85)
}

/// The full 8-state composed system of Example 3.5.
///
/// # Errors
///
/// Propagates component validation failures.
pub fn example_system() -> Result<SystemModel, DpmError> {
    SystemModel::compose(
        service_provider()?,
        service_requester()?,
        ServiceQueue::with_capacity(1),
    )
}

/// The initial state used throughout Appendix A: provider on, no request,
/// empty queue.
pub fn initial_state() -> SystemState {
    SystemState {
        sp: SP_ON,
        sr: 0,
        queue: 0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dpm_core::{OptimizationGoal, PolicyOptimizer};

    #[test]
    fn has_eight_states_like_example_3_5() {
        let system = example_system().unwrap();
        assert_eq!(system.num_states(), 8);
        assert_eq!(system.num_commands(), 2);
    }

    #[test]
    fn wake_time_matches_example_3_1() {
        let sp = service_provider().unwrap();
        let t = sp.expected_transition_time(SP_OFF, SP_ON, CMD_ON).unwrap();
        assert!((t - 10.0).abs() < 1e-9);
    }

    #[test]
    fn burst_length_matches_example_3_2() {
        let sr = service_requester().unwrap();
        let p = sr.chain().transition_matrix();
        // Mean burst = 1 / (1 − 0.85) = 6.67 slices.
        assert!((1.0 / (1.0 - p.prob(1, 1)) - 6.666_666_666_666_667).abs() < 1e-9);
    }

    #[test]
    fn example_a2_reproduction() {
        // α = 0.99999, min power s.t. queue ≤ 0.5 and loss ≤ 0.2: the
        // paper reports 1.798 W and a randomized policy with
        // P(s_off | on, idle, empty) = 0.226. Our reconstruction gives
        // ≈ 1.74 W; the policy randomizes in the same region.
        let system = example_system().unwrap();
        let solution = PolicyOptimizer::new(&system)
            .discount(0.99999)
            .goal(OptimizationGoal::MinimizePower)
            .max_performance_penalty(0.5)
            .max_request_loss_rate(0.2)
            .initial_state(initial_state())
            .unwrap()
            .solve()
            .unwrap();
        let power = solution.power_per_slice();
        assert!(
            (1.5..2.1).contains(&power),
            "expected ≈1.74 W (paper: 1.798 W), got {power}"
        );
        assert!(solution.is_randomized());
        // The optimum must beat always-on (3 W) by roughly 2× ("reduces
        // power consumption of almost a factor of two").
        assert!(power < 0.67 * POWER_ON);
    }

    #[test]
    fn initial_state_is_on_idle_empty() {
        let system = example_system().unwrap();
        let idx = system.state_index(initial_state()).unwrap();
        let label = system.state_label(idx);
        assert!(label.contains("on") && label.contains("idle") && label.contains("q=0"));
    }
}
