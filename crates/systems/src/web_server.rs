//! The dual-processor web server of Section VI-B.
//!
//! From the paper (all stated in the text):
//! * time resolution Δt = 30 s, horizon one day ⇒ 2880 slices;
//! * two heterogeneous processors: processor 2 has 1.5× the performance
//!   and 2× the power of processor 1;
//! * four SP states — one per subset of awake processors — with
//!   throughputs `{both: 1.0, only 1: 0.4, only 2: 0.6, none: 0.0}`;
//! * powers 1 W (processor 1) and 2 W (processor 2) when active;
//!   turn-on transitions draw active + 0.5 W, shut-downs active − 0.5 W;
//! * expected turn-on time 2 slices, expected shut-down time 1 slice;
//! * 4 × 2 = 8 composite states (no queue);
//! * headline finding: *the faster processor is never used alone* — its
//!   power/performance ratio (2 W / 0.6) is worse than both the slow
//!   processor's (1 W / 0.4) and the pair's (3 W / 1.0).
//!
//! Modeled here with four commands (one per target configuration); each
//! slice, every processor moves independently toward the commanded state
//! (on with probability 1/2 ⇒ mean 2 slices; off with probability 1 ⇒ one
//! slice). The workload stands in for the Internet Traffic Archive trace
//! as a bursty two-state chain (see [`default_workload`]).

use dpm_core::{
    DpmError, ServiceProvider, ServiceQueue, ServiceRequester, SystemModel, SystemState,
};
use dpm_linalg::Matrix;

/// SP states: which processors are awake.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)]
pub enum ServerState {
    BothActive = 0,
    OnlyProc1 = 1,
    OnlyProc2 = 2,
    BothSleep = 3,
}

/// Throughput of each configuration (fraction of full service).
pub const THROUGHPUT: [f64; 4] = [1.0, 0.4, 0.6, 0.0];

/// Active power of processor 1 (W).
pub const P1_POWER: f64 = 1.0;
/// Active power of processor 2 (W).
pub const P2_POWER: f64 = 2.0;
/// Extra power drawn while a processor turns on (over active power).
pub const TURN_ON_EXTRA: f64 = 0.5;
/// Power saved while a processor shuts down (below active power).
pub const SHUT_DOWN_SAVE: f64 = 0.5;
/// Per-slice probability of completing a turn-on (mean 2 slices).
pub const TURN_ON_RATE: f64 = 0.5;
/// Per-slice probability of completing a shut-down (mean 1 slice).
pub const SHUT_DOWN_RATE: f64 = 1.0;
/// Slices in the paper's one-day horizon at Δt = 30 s.
pub const HORIZON_SLICES: f64 = 2880.0;

/// Which processors are awake in a configuration, as `(p1, p2)`.
fn awake(state: usize) -> (bool, bool) {
    match state {
        0 => (true, true),
        1 => (true, false),
        2 => (false, true),
        _ => (false, false),
    }
}

/// Builds the four-state dual-processor provider. Command `a` targets
/// configuration `a` (same indexing as [`ServerState`]).
///
/// # Errors
///
/// Propagates builder validation.
pub fn service_provider() -> Result<ServiceProvider, DpmError> {
    let mut b = ServiceProvider::builder();
    let names = ["both_active", "only_proc1", "only_proc2", "both_sleep"];
    for name in names {
        b.add_state(name);
    }
    for name in ["cmd_both", "cmd_proc1", "cmd_proc2", "cmd_sleep"] {
        b.add_command(name);
    }

    // Independent per-processor moves toward the commanded configuration.
    for cmd in 0..4 {
        let (t1, t2) = awake(cmd);
        for from in 0..4 {
            let (f1, f2) = awake(from);
            // Per-processor one-slice move probabilities.
            let move_prob = |on_now: bool, on_target: bool| -> (f64, f64) {
                // (P(ends up on), P(ends up off)) after one slice.
                match (on_now, on_target) {
                    (true, true) => (1.0, 0.0),
                    (false, false) => (0.0, 1.0),
                    (false, true) => (TURN_ON_RATE, 1.0 - TURN_ON_RATE),
                    (true, false) => (1.0 - SHUT_DOWN_RATE, SHUT_DOWN_RATE),
                }
            };
            let (p1_on, p1_off) = move_prob(f1, t1);
            let (p2_on, p2_off) = move_prob(f2, t2);
            for to in 0..4 {
                if to == from {
                    continue; // self-loop gets the residual automatically
                }
                let (g1, g2) = awake(to);
                let p = (if g1 { p1_on } else { p1_off }) * (if g2 { p2_on } else { p2_off });
                if p > 0.0 {
                    b.transition(from, to, cmd, p)?;
                }
            }
        }
    }

    // Service rate = configuration throughput while the command maintains
    // it; a configuration being dismantled no longer serves at full rate,
    // approximated by the *target* configuration's floor.
    for (s, &rate_s) in THROUGHPUT.iter().enumerate() {
        for (cmd, &rate_cmd) in THROUGHPUT.iter().enumerate() {
            let rate = if s == cmd {
                rate_s
            } else {
                rate_s.min(rate_cmd)
            };
            if rate > 0.0 {
                b.service_rate(s, cmd, rate)?;
            }
        }
    }

    // Power: awake processors draw their active power; processors in
    // transition draw ±0.5 W around it.
    for s in 0..4 {
        let (f1, f2) = awake(s);
        for cmd in 0..4 {
            let (t1, t2) = awake(cmd);
            let proc_power = |on_now: bool, on_target: bool, active: f64| -> f64 {
                match (on_now, on_target) {
                    (true, true) => active,
                    (true, false) => active - SHUT_DOWN_SAVE,
                    (false, true) => active + TURN_ON_EXTRA,
                    (false, false) => 0.0,
                }
            };
            let p = proc_power(f1, t1, P1_POWER) + proc_power(f2, t2, P2_POWER);
            b.power(s, cmd, p)?;
        }
    }

    b.build()
}

/// Bursty HTTP workload standing in for the Internet Traffic Archive
/// trace: request bursts of mean 5 minutes separated by mean 20-minute
/// lulls (at Δt = 30 s).
///
/// # Errors
///
/// Never fails in practice; propagates validation.
pub fn default_workload() -> Result<ServiceRequester, DpmError> {
    ServiceRequester::two_state(0.025, 0.9)
}

/// The composed 8-state web-server system (no queue, as in the paper).
///
/// # Errors
///
/// Propagates component validation failures.
pub fn system() -> Result<SystemModel, DpmError> {
    system_with_workload(default_workload()?)
}

/// The composed system against an arbitrary workload.
///
/// # Errors
///
/// Propagates component validation failures.
pub fn system_with_workload(workload: ServiceRequester) -> Result<SystemModel, DpmError> {
    SystemModel::compose(
        service_provider()?,
        workload,
        ServiceQueue::with_capacity(0),
    )
}

/// Initial state: both processors on, workload idle.
pub fn initial_state() -> SystemState {
    SystemState {
        sp: ServerState::BothActive as usize,
        sr: 0,
        queue: 0,
    }
}

/// The throughput metric as a `states × commands` cost matrix (positive =
/// good). Constrain with a *negated* bound: expected throughput ≥ T is
/// `custom_constraint("-throughput", -matrix, -T)`.
pub fn throughput_matrix(system: &SystemModel) -> Matrix {
    system.custom_cost(|s, a| {
        if s.sp == a {
            THROUGHPUT[s.sp]
        } else {
            THROUGHPUT[s.sp].min(THROUGHPUT[a])
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use dpm_core::PolicyOptimizer;

    #[test]
    fn eight_composite_states() {
        let system = system().unwrap();
        assert_eq!(system.num_states(), 8);
        assert_eq!(system.num_commands(), 4);
    }

    #[test]
    fn power_accounting_per_processor() {
        let sp = service_provider().unwrap();
        // Both active, staying: 1 + 2 = 3 W.
        assert_eq!(sp.power(0, 0), 3.0);
        // Both active, shutting both down: (1−0.5) + (2−0.5) = 2 W.
        assert_eq!(sp.power(0, 3), 2.0);
        // Both asleep, waking both: (1+0.5) + (2+0.5) = 4 W.
        assert_eq!(sp.power(3, 0), 4.0);
        // Only proc1 active and maintained: 1 W.
        assert_eq!(sp.power(1, 1), 1.0);
        // Asleep and left asleep: 0 W.
        assert_eq!(sp.power(3, 3), 0.0);
    }

    #[test]
    fn turn_on_takes_two_slices_on_average() {
        let sp = service_provider().unwrap();
        // both_sleep → only_proc1 under cmd_proc1: mean 2 slices.
        let t = sp
            .expected_transition_time(
                ServerState::BothSleep as usize,
                ServerState::OnlyProc1 as usize,
                ServerState::OnlyProc1 as usize,
            )
            .unwrap();
        assert!((t - 2.0).abs() < 1e-9);
        // Shut-down is immediate (one slice).
        let t = sp
            .expected_transition_time(
                ServerState::BothActive as usize,
                ServerState::BothSleep as usize,
                ServerState::BothSleep as usize,
            )
            .unwrap();
        assert!((t - 1.0).abs() < 1e-9);
    }

    #[test]
    fn kernels_factor_over_processors() {
        let sp = service_provider().unwrap();
        // From both_sleep under cmd_both: each proc wakes w.p. 0.5
        // independently → both awake 0.25, exactly one 0.25 each, none 0.25.
        let from = ServerState::BothSleep as usize;
        assert!((sp.chain().prob(from, 0, 0) - 0.25).abs() < 1e-12);
        assert!((sp.chain().prob(from, 1, 0) - 0.25).abs() < 1e-12);
        assert!((sp.chain().prob(from, 2, 0) - 0.25).abs() < 1e-12);
        assert!((sp.chain().prob(from, 3, 0) - 0.25).abs() < 1e-12);
    }

    #[test]
    fn fast_processor_never_used_alone() {
        // The paper's headline observation: in the optimal policies the
        // higher-performance processor is never used alone. Check that the
        // occupation measure puts (essentially) no mass on only_proc2
        // across a throughput sweep.
        let system = system().unwrap();
        let throughput = throughput_matrix(&system);
        for min_throughput in [0.2, 0.35, 0.5] {
            let solution = PolicyOptimizer::new(&system)
                .horizon(HORIZON_SLICES)
                .custom_constraint("-throughput", &throughput * -1.0, -min_throughput)
                .initial_state(initial_state())
                .unwrap()
                .solve()
                .unwrap();
            let occupation = solution.constrained().occupation();
            let states = occupation.state_frequencies();
            let only2_mass: f64 = (0..system.num_states())
                .filter(|&i| system.state_of(i).sp == ServerState::OnlyProc2 as usize)
                .map(|i| states[i])
                .sum();
            let total: f64 = states.iter().sum();
            assert!(
                only2_mass / total < 0.02,
                "min_throughput {min_throughput}: only_proc2 mass {}",
                only2_mass / total
            );
        }
    }

    #[test]
    fn tighter_throughput_costs_more_power() {
        let system = system().unwrap();
        let throughput = throughput_matrix(&system);
        let mut last = 0.0;
        for min_throughput in [0.1, 0.3, 0.5, 0.7] {
            let solution = PolicyOptimizer::new(&system)
                .horizon(HORIZON_SLICES)
                .custom_constraint("-throughput", &throughput * -1.0, -min_throughput)
                .solve()
                .unwrap();
            let power = solution.power_per_slice();
            assert!(power >= last - 1e-7);
            last = power;
        }
    }
}
