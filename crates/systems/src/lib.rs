//! The case-study system models of Benini et al. (Section VI and
//! Appendix B), ready to compose and optimize.
//!
//! * [`toy`] — the running example of Sections III–IV (Examples 3.1–3.5,
//!   A.1, A.2): a two-state provider with a bursty two-state workload;
//! * [`disk`] — the IBM Travelstar VP hard-disk drive of Section VI-A:
//!   five operational states (Table I) plus six transient states, queue of
//!   length 2, 66 composite states;
//! * [`web_server`] — the dual-processor HTTP server of Section VI-B:
//!   four provider states (one per active/sleeping processor subset),
//!   heterogeneous speeds and powers;
//! * [`cpu`] — the ARM SA-1100 processor of Section VI-C: two operational
//!   states with 100 ms transitions at a 20 ms time resolution, no queue;
//! * [`appendix_b`] — the baseline system of the sensitivity study in
//!   Appendix B, with its configurable families of sleep states, workload
//!   burstiness and queue capacities (Figs. 12–14);
//! * [`drifting`] — a **nonstationary** regime-switching workload around
//!   the toy provider, built to break the stationarity assumption
//!   (Section VII) and exercise the online-adaptation runtime;
//! * [`racks`] — the **correlated** regime-switch scenario: whole racks
//!   of devices shift workload simultaneously, stressing the fleet
//!   service's eviction/re-homing and its incremental divergence gauge;
//! * [`hostile`] — the **fault-campaign** scenario: a scripted window of
//!   corrupted telemetry and armed solver faults with a deterministic,
//!   fully-recovered end state, exercising ingest screening, the
//!   escalation ladder, quarantine and readmission.
//!
//! Every module documents which numbers come straight from the paper and
//! which had to be reconstructed (the paper's figures did not survive into
//! the machine-readable text; see `DESIGN.md`).
//!
//! # Example
//!
//! ```
//! use dpm_systems::disk;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let system = disk::system()?;
//! assert_eq!(system.num_states(), 66); // 11 SP × 2 SR × 3 SQ
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]
#![deny(missing_debug_implementations)]

pub mod appendix_b;
pub mod cpu;
pub mod disk;
pub mod drifting;
pub mod hostile;
pub mod racks;
pub mod toy;
pub mod web_server;
