//! The IBM Travelstar VP hard-disk drive of Section VI-A.
//!
//! Table I of the paper (all values straight from the data sheet):
//!
//! | state   | transition time to active | power  |
//! |---------|---------------------------|--------|
//! | active  | —                         | 2.5 W  |
//! | idle    | 1.0 ms                    | 1.0 W  |
//! | LPidle  | 40 ms                     | 0.8 W  |
//! | standby | 2.2 s                     | 0.3 W  |
//! | sleep   | 6.0 s                     | 0.1 W  |
//!
//! Time resolution Δt = 1 ms (the fastest transition). The provider has
//! **11 states**: the five operational ones plus six transient states
//! modeling the non-unit-time, uninterruptible transitions (Fig. 8(a));
//! transient states have zero service rate and high power (2.5 W).
//! Composed with a two-state workload and a queue of length 2 the system
//! has 11 × 2 × 3 = 66 states, and the policy is a 66 × 5 matrix with 330
//! entries — the numbers the paper quotes.
//!
//! Reconstructed values (not in the surviving text):
//! * service rate of the active disk: 0.8 per 1 ms slice;
//! * spin-down (entry) times for LPidle/standby/sleep: taken as half the
//!   corresponding wake time — data sheets of that generation quote only
//!   wake times; halving is the conventional assumption;
//! * the workload: the Auspex traces are no longer distributed, so the
//!   default workload is a bursty two-state chain (see
//!   [`default_workload`]); the benchmark harness regenerates it from a
//!   synthetic trace with the same burst statistics via the SR extractor.

use dpm_core::{
    DpmError, ServiceProvider, ServiceQueue, ServiceRequester, SystemModel, SystemState,
};

/// Disk states in declaration order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)]
pub enum DiskState {
    Active = 0,
    Idle = 1,
    LpIdle = 2,
    Standby = 3,
    Sleep = 4,
    WakeLpIdle = 5,
    WakeStandby = 6,
    WakeSleep = 7,
    DownLpIdle = 8,
    DownStandby = 9,
    DownSleep = 10,
}

/// Commands in declaration order (one per target operational state).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)]
pub enum DiskCommand {
    GoActive = 0,
    GoIdle = 1,
    GoLpIdle = 2,
    GoStandby = 3,
    GoSleep = 4,
}

/// Time resolution in milliseconds (the paper's Δt).
pub const TIME_RESOLUTION_MS: f64 = 1.0;

/// `(name, wake time to active in slices, power in W)` for the five
/// operational states — Table I at Δt = 1 ms.
pub const TABLE_I: [(&str, f64, f64); 5] = [
    ("active", 0.0, 2.5),
    ("idle", 1.0, 1.0),
    ("LPidle", 40.0, 0.8),
    ("standby", 2200.0, 0.3),
    ("sleep", 6000.0, 0.1),
];

/// Power drawn in every transient state (the paper: "the SP has zero
/// service rate but its power consumption is high: 2.5 W").
pub const TRANSIENT_POWER: f64 = 2.5;

/// Reconstructed service rate of the active disk per 1 ms slice.
pub const SERVICE_RATE: f64 = 0.8;

/// Builds the 11-state Travelstar service provider.
///
/// # Errors
///
/// Propagates builder validation (never fails for the constants above).
pub fn service_provider() -> Result<ServiceProvider, DpmError> {
    let mut b = ServiceProvider::builder();
    // Operational states.
    let active = b.add_state_with_power("active", TABLE_I[0].2);
    let idle = b.add_state_with_power("idle", TABLE_I[1].2);
    let lpidle = b.add_state_with_power("LPidle", TABLE_I[2].2);
    let standby = b.add_state_with_power("standby", TABLE_I[3].2);
    let sleep = b.add_state_with_power("sleep", TABLE_I[4].2);
    // Transient states: wake_* toward active, down_* away from it.
    let wake_lpidle = b.add_state_with_power("wake_LPidle", TRANSIENT_POWER);
    let wake_standby = b.add_state_with_power("wake_standby", TRANSIENT_POWER);
    let wake_sleep = b.add_state_with_power("wake_sleep", TRANSIENT_POWER);
    let down_lpidle = b.add_state_with_power("down_LPidle", TRANSIENT_POWER);
    let down_standby = b.add_state_with_power("down_standby", TRANSIENT_POWER);
    let down_sleep = b.add_state_with_power("down_sleep", TRANSIENT_POWER);

    let go_active = b.add_command("go_active");
    let go_idle = b.add_command("go_idle");
    let go_lpidle = b.add_command("go_LPidle");
    let go_standby = b.add_command("go_standby");
    let go_sleep = b.add_command("go_sleep");
    let commands = [go_active, go_idle, go_lpidle, go_standby, go_sleep];

    // Wake transitions (Table I): idle → active is one slice (direct);
    // deeper states route through their wake transient. Expected total
    // time = 1 slice to enter the transient + (T − 1) geometric slices.
    b.transition(idle, active, go_active, 1.0)?;
    b.transition(lpidle, wake_lpidle, go_active, 1.0)?;
    b.transition(standby, wake_standby, go_active, 1.0)?;
    b.transition(sleep, wake_sleep, go_active, 1.0)?;

    // Down transitions: active→idle is one slice (Table I: idle↔active is
    // the fast pair); deeper targets route through down transients from
    // any shallower operational state.
    b.transition(active, idle, go_idle, 1.0)?;
    for &src in &[active, idle] {
        b.transition(src, down_lpidle, go_lpidle, 1.0)?;
    }
    for &src in &[active, idle, lpidle] {
        b.transition(src, down_standby, go_standby, 1.0)?;
    }
    for &src in &[active, idle, lpidle, standby] {
        b.transition(src, down_sleep, go_sleep, 1.0)?;
    }

    // Transient dynamics are command-insensitive ("when in transient
    // states, the behavior of the SP is insensitive to the PM"): identical
    // rows under every command. Geometric rates chosen so the expected
    // command-to-completion times equal Table I.
    let wake_rate = |t: f64| 1.0 / (t - 1.0);
    let down_rate = |t: f64| 1.0 / ((t / 2.0 - 1.0).max(1.0));
    for &cmd in &commands {
        b.transition(wake_lpidle, active, cmd, wake_rate(TABLE_I[2].1))?;
        b.transition(wake_standby, active, cmd, wake_rate(TABLE_I[3].1))?;
        b.transition(wake_sleep, active, cmd, wake_rate(TABLE_I[4].1))?;
        b.transition(down_lpidle, lpidle, cmd, down_rate(TABLE_I[2].1))?;
        b.transition(down_standby, standby, cmd, down_rate(TABLE_I[3].1))?;
        b.transition(down_sleep, sleep, cmd, down_rate(TABLE_I[4].1))?;
    }

    // Only the active disk serves, and only while told to stay active.
    b.service_rate(active, go_active, SERVICE_RATE)?;

    b.build()
}

/// The default bursty workload standing in for the Auspex traces: short
/// request clusters (mean 1.4 slices) separated by pauses of mean 200 ms —
/// roughly 7 requests/s at the 1 ms resolution, a plausible file-server
/// rate. Note that at Δt = 1 ms a workload issuing a request *every*
/// busy slice would exceed the disk's service rate and saturate the queue
/// under every policy; real traces are sparse at this resolution.
///
/// # Errors
///
/// Never fails in practice; propagates validation.
pub fn default_workload() -> Result<ServiceRequester, DpmError> {
    ServiceRequester::two_state(0.005, 0.3)
}

/// The composed 66-state disk system with the default workload.
///
/// # Errors
///
/// Propagates component validation failures.
pub fn system() -> Result<SystemModel, DpmError> {
    system_with_workload(default_workload()?)
}

/// The composed disk system against an arbitrary workload (e.g. one
/// extracted from a trace).
///
/// # Errors
///
/// Propagates component validation failures.
pub fn system_with_workload(workload: ServiceRequester) -> Result<SystemModel, DpmError> {
    SystemModel::compose(
        service_provider()?,
        workload,
        ServiceQueue::with_capacity(2),
    )
}

/// Canonical initial state: disk active, workload idle, queue empty.
pub fn initial_state() -> SystemState {
    SystemState {
        sp: DiskState::Active as usize,
        sr: 0,
        queue: 0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dpm_core::PolicyOptimizer;

    #[test]
    fn composed_system_has_66_states_and_5_commands() {
        let system = system().unwrap();
        assert_eq!(system.num_states(), 66);
        assert_eq!(system.num_commands(), 5);
    }

    #[test]
    fn wake_times_match_table_i() {
        // The calibration target: expected transition time (under a held
        // go_active) from each inactive state to active equals Table I.
        let sp = service_provider().unwrap();
        let cases = [
            (DiskState::Idle as usize, 1.0),
            (DiskState::LpIdle as usize, 40.0),
            (DiskState::Standby as usize, 2200.0),
            (DiskState::Sleep as usize, 6000.0),
        ];
        for (state, expected) in cases {
            let t = sp
                .expected_transition_time(
                    state,
                    DiskState::Active as usize,
                    DiskCommand::GoActive as usize,
                )
                .unwrap();
            assert!(
                (t - expected).abs() / expected < 1e-9,
                "state {state}: got {t}, want {expected}"
            );
        }
    }

    #[test]
    fn powers_match_table_i() {
        let sp = service_provider().unwrap();
        for (i, &(_, _, power)) in TABLE_I.iter().enumerate() {
            assert_eq!(sp.power(i, DiskCommand::GoActive as usize), power);
        }
        assert_eq!(
            sp.power(DiskState::WakeSleep as usize, DiskCommand::GoSleep as usize),
            TRANSIENT_POWER
        );
    }

    #[test]
    fn only_active_state_serves() {
        let sp = service_provider().unwrap();
        for s in 0..sp.num_states() {
            for a in 0..sp.num_commands() {
                let rate = sp.service_rate(s, a);
                if s == DiskState::Active as usize && a == DiskCommand::GoActive as usize {
                    assert_eq!(rate, SERVICE_RATE);
                } else {
                    assert_eq!(rate, 0.0, "state {s} cmd {a}");
                }
            }
        }
    }

    #[test]
    fn transients_are_command_insensitive() {
        let sp = service_provider().unwrap();
        for s in (DiskState::WakeLpIdle as usize)..=(DiskState::DownSleep as usize) {
            let base: Vec<f64> = (0..sp.num_states())
                .map(|t| sp.chain().prob(s, t, 0))
                .collect();
            for a in 1..sp.num_commands() {
                for (t, &expected) in base.iter().enumerate() {
                    assert_eq!(sp.chain().prob(s, t, a), expected, "state {s} cmd {a}");
                }
            }
        }
    }

    #[test]
    fn deeper_sleep_saves_power_when_idle_long() {
        // A quick end-to-end sanity check on the 66-state model: with a
        // loose performance constraint, optimal power must undercut the
        // always-active floor of ~2.5 W substantially.
        let system = system().unwrap();
        let solution = PolicyOptimizer::new(&system)
            .horizon(100_000.0)
            .max_performance_penalty(1.0)
            .initial_state(initial_state())
            .unwrap()
            .solve()
            .unwrap();
        assert!(solution.power_per_slice() < 2.0);
    }
}
