//! The baseline system family of Appendix B (sensitivity analysis).
//!
//! The paper's baseline: an SP with one *active* state (3 W) and one or
//! more sleep states; transitions draw 4 W; entering a sleep state takes
//! one slice. The four canonical sleep states are, in order of depth:
//!
//! | state  | power | exit probability (per slice) |
//! |--------|-------|------------------------------|
//! | sleep1 | 2.0 W | 1.0 (one slice)              |
//! | sleep2 | 1.0 W | 0.1  (mean 10 slices)        |
//! | sleep3 | 0.5 W | 0.01 (mean 100 slices)       |
//! | sleep4 | 0.0 W | 0.001 (mean 1000 slices)     |
//!
//! The SR is symmetric two-state with switch probability 0.01 (bursty,
//! load 0.5), and the queue holds 2 requests. Figs. 12–14 vary, one at a
//! time: the set of sleep states, the exit rate and sleep power, the SR
//! burstiness and memory, the horizon, and the queue length — all
//! supported here through [`Config`].

use dpm_core::{
    DpmError, ServiceProvider, ServiceQueue, ServiceRequester, SystemModel, SystemState,
};

/// Power of the active state (W).
pub const ACTIVE_POWER: f64 = 3.0;
/// Power drawn during any state transition (W).
pub const TRANSITION_POWER: f64 = 4.0;
/// Service rate of the active state.
pub const SERVICE_RATE: f64 = 1.0;
/// The baseline SR switch probability (both directions).
pub const BASELINE_SR_SWITCH: f64 = 0.01;
/// The baseline queue capacity.
pub const BASELINE_QUEUE_CAPACITY: usize = 2;

/// One sleep state: its depth is captured by `(power, exit_probability)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SleepState {
    /// Name used in labels (`sleep1`...).
    pub name: &'static str,
    /// Power drawn while in this state (W).
    pub power: f64,
    /// Per-slice probability of completing the transition back to active
    /// while `go_active` is held (equation (2): mean exit = 1/p slices).
    pub exit_probability: f64,
}

/// The four canonical sleep states of Appendix B.
pub const SLEEP_STATES: [SleepState; 4] = [
    SleepState {
        name: "sleep1",
        power: 2.0,
        exit_probability: 1.0,
    },
    SleepState {
        name: "sleep2",
        power: 1.0,
        exit_probability: 0.1,
    },
    SleepState {
        name: "sleep3",
        power: 0.5,
        exit_probability: 0.01,
    },
    SleepState {
        name: "sleep4",
        power: 0.0,
        exit_probability: 0.001,
    },
];

/// Names for generated sleep states, deepest-last ([`scaled_sleep_states`]).
const SCALED_SLEEP_NAMES: [&str; 48] = [
    "sleep1", "sleep2", "sleep3", "sleep4", "sleep5", "sleep6", "sleep7", "sleep8", "sleep9",
    "sleep10", "sleep11", "sleep12", "sleep13", "sleep14", "sleep15", "sleep16", "sleep17",
    "sleep18", "sleep19", "sleep20", "sleep21", "sleep22", "sleep23", "sleep24", "sleep25",
    "sleep26", "sleep27", "sleep28", "sleep29", "sleep30", "sleep31", "sleep32", "sleep33",
    "sleep34", "sleep35", "sleep36", "sleep37", "sleep38", "sleep39", "sleep40", "sleep41",
    "sleep42", "sleep43", "sleep44", "sleep45", "sleep46", "sleep47", "sleep48",
];

/// Generates a scaled family of `count` sleep states interpolating the
/// canonical Appendix-B envelope: power falls linearly from 2 W to 0 W
/// while the exit probability decays geometrically from 1 to 10⁻³
/// (deeper ⇒ cheaper but slower, exactly the tradeoff of
/// [`SLEEP_STATES`]). This is the state-space scaling axis for the sparse
/// LP pipeline: with a dozen sleep states and a longer queue the composed
/// system reaches hundreds of states, a size the dense-tableau simplex
/// handles poorly.
///
/// # Panics
///
/// Panics when `count` is 0 or exceeds the 48 prenamed states.
pub fn scaled_sleep_states(count: usize) -> Vec<SleepState> {
    assert!(
        (1..=SCALED_SLEEP_NAMES.len()).contains(&count),
        "count {count} outside 1..={}",
        SCALED_SLEEP_NAMES.len()
    );
    (0..count)
        .map(|k| {
            let depth = if count == 1 {
                0.0
            } else {
                k as f64 / (count - 1) as f64
            };
            SleepState {
                name: SCALED_SLEEP_NAMES[k],
                power: 2.0 * (1.0 - depth),
                exit_probability: 10f64.powf(-3.0 * depth),
            }
        })
        .collect()
}

/// Configuration of one Appendix-B experiment: start from
/// [`Config::baseline`] and override what the figure sweeps.
#[derive(Debug, Clone)]
pub struct Config {
    /// Which sleep states the SP offers.
    pub sleep_states: Vec<SleepState>,
    /// SR transition probability request→no-request and vice versa.
    pub sr_switch_probability: f64,
    /// Queue capacity.
    pub queue_capacity: usize,
}

impl Config {
    /// The paper's baseline: active + sleep1, symmetric 0.01 SR, queue 2.
    pub fn baseline() -> Self {
        Config {
            sleep_states: vec![SLEEP_STATES[0]],
            sr_switch_probability: BASELINE_SR_SWITCH,
            queue_capacity: BASELINE_QUEUE_CAPACITY,
        }
    }

    /// Replaces the sleep-state set (Fig. 12(a)).
    pub fn with_sleep_states(mut self, states: Vec<SleepState>) -> Self {
        self.sleep_states = states;
        self
    }

    /// The scaled large-state-space configuration: `sleep_count`
    /// interpolated sleep states ([`scaled_sleep_states`]) and a
    /// `queue_capacity`-deep queue over the baseline SR. With
    /// `scaled(12, 7)` the composed system has
    /// `13 SP × 2 SR × 8 SQ = 208` states and 13 commands — 2704
    /// state–action variables, the benchmark instance for the sparse LP
    /// pipeline; `scaled(24, 20)` reaches
    /// `25 SP × 2 SR × 21 SQ = 1050` states and 26 250 variables, the
    /// sparse-basis-factorization acceptance scale.
    ///
    /// # Panics
    ///
    /// Propagates the [`scaled_sleep_states`] count bounds.
    pub fn scaled(sleep_count: usize, queue_capacity: usize) -> Self {
        Config {
            sleep_states: scaled_sleep_states(sleep_count),
            sr_switch_probability: BASELINE_SR_SWITCH,
            queue_capacity,
        }
    }

    /// Replaces the SR switch probability (Fig. 13(a): smaller = burstier).
    pub fn with_sr_switch(mut self, p: f64) -> Self {
        self.sr_switch_probability = p;
        self
    }

    /// Replaces the queue capacity (Fig. 14(b)).
    pub fn with_queue_capacity(mut self, capacity: usize) -> Self {
        self.queue_capacity = capacity;
        self
    }

    /// Builds the service provider: active + the configured sleep states.
    ///
    /// Commands: `go_active` (index 0) then one `go_<sleep>` per sleep
    /// state, in order. Exiting a sleep state is geometric with the
    /// state's `exit_probability`; entering takes half the exit time
    /// (entry probability `min(1, 2·exit_probability)`), mirroring the
    /// deeper-is-slower ordering the paper states and the disk model's
    /// spin-down convention — `sleep1` keeps the paper's explicit
    /// one-slice entry. Transitions draw [`TRANSITION_POWER`] in both
    /// directions, so parking in a deep state is an energy *investment*
    /// that only pays off over sufficiently long idle stretches and
    /// horizons (Fig. 14(a)).
    ///
    /// # Errors
    ///
    /// Propagates builder validation (e.g. an exit probability outside
    /// `[0, 1]`).
    pub fn service_provider(&self) -> Result<ServiceProvider, DpmError> {
        let mut b = ServiceProvider::builder();
        let active = b.add_state_with_power("active", ACTIVE_POWER);
        let go_active = b.add_command("go_active");
        b.service_rate(active, go_active, SERVICE_RATE)?;

        for sleep in &self.sleep_states {
            let s = b.add_state_with_power(sleep.name, sleep.power);
            let cmd = b.add_command(format!("go_{}", sleep.name));
            // Entry at twice the exit rate (half the delay); transition
            // power is drawn while the entry command is held.
            let entry_probability = (2.0 * sleep.exit_probability).min(1.0);
            b.transition(active, s, cmd, entry_probability)?;
            b.power(active, cmd, TRANSITION_POWER)?;
            // Exit geometrically under go_active; transition power applies
            // while waking.
            b.transition(s, active, go_active, sleep.exit_probability)?;
            b.power(s, go_active, TRANSITION_POWER)?;
        }
        b.build()
    }

    /// Builds the symmetric two-state SR.
    ///
    /// # Errors
    ///
    /// Propagates validation (switch probability outside `[0, 1]`).
    pub fn service_requester(&self) -> Result<ServiceRequester, DpmError> {
        ServiceRequester::two_state(self.sr_switch_probability, 1.0 - self.sr_switch_probability)
    }

    /// Composes the full system.
    ///
    /// # Errors
    ///
    /// Propagates component failures.
    pub fn system(&self) -> Result<SystemModel, DpmError> {
        SystemModel::compose(
            self.service_provider()?,
            self.service_requester()?,
            ServiceQueue::with_capacity(self.queue_capacity),
        )
    }

    /// Composes against an explicit requester (Fig. 13(b) plugs in
    /// k-memory extracted SRs).
    ///
    /// # Errors
    ///
    /// Propagates component failures.
    pub fn system_with_requester(
        &self,
        requester: ServiceRequester,
    ) -> Result<SystemModel, DpmError> {
        SystemModel::compose(
            self.service_provider()?,
            requester,
            ServiceQueue::with_capacity(self.queue_capacity),
        )
    }
}

/// Initial state: active, no request, empty queue.
pub fn initial_state() -> SystemState {
    SystemState {
        sp: 0,
        sr: 0,
        queue: 0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dpm_core::PolicyOptimizer;

    #[test]
    fn baseline_shape() {
        let system = Config::baseline().system().unwrap();
        // 2 SP states × 2 SR × 3 SQ = 12.
        assert_eq!(system.num_states(), 12);
        assert_eq!(system.num_commands(), 2);
    }

    #[test]
    fn all_four_sleep_states_compose() {
        let system = Config::baseline()
            .with_sleep_states(SLEEP_STATES.to_vec())
            .system()
            .unwrap();
        // 5 SP × 2 SR × 3 SQ = 30 states, 5 commands.
        assert_eq!(system.num_states(), 30);
        assert_eq!(system.num_commands(), 5);
    }

    #[test]
    fn sleep_exit_times_follow_equation_2() {
        let sp = Config::baseline()
            .with_sleep_states(SLEEP_STATES.to_vec())
            .service_provider()
            .unwrap();
        for (k, sleep) in SLEEP_STATES.iter().enumerate() {
            let t = sp.expected_transition_time(k + 1, 0, 0).unwrap();
            assert!(
                (t - 1.0 / sleep.exit_probability).abs() < 1e-6,
                "{}: {t}",
                sleep.name
            );
        }
    }

    #[test]
    fn transition_power_is_charged() {
        let sp = Config::baseline().service_provider().unwrap();
        // active under go_sleep1 draws transition power.
        assert_eq!(sp.power(0, 1), TRANSITION_POWER);
        // sleep1 under go_active draws transition power.
        assert_eq!(sp.power(1, 0), TRANSITION_POWER);
        // steady states draw their base power.
        assert_eq!(sp.power(0, 0), ACTIVE_POWER);
        assert_eq!(sp.power(1, 1), SLEEP_STATES[0].power);
    }

    #[test]
    fn scaled_family_interpolates_the_canonical_envelope() {
        let states = scaled_sleep_states(12);
        assert_eq!(states.len(), 12);
        // Endpoints match the canonical family's shallowest and deepest.
        assert_eq!(states[0].power, SLEEP_STATES[0].power);
        assert_eq!(states[0].exit_probability, SLEEP_STATES[0].exit_probability);
        assert!((states[11].power - SLEEP_STATES[3].power).abs() < 1e-12);
        assert!((states[11].exit_probability - SLEEP_STATES[3].exit_probability).abs() < 1e-12);
        // Deeper ⇒ strictly cheaper and strictly slower.
        for w in states.windows(2) {
            assert!(w[1].power < w[0].power);
            assert!(w[1].exit_probability < w[0].exit_probability);
        }
        // Distinct names, so the provider builder gets unique labels.
        for (i, a) in states.iter().enumerate() {
            for b in &states[i + 1..] {
                assert_ne!(a.name, b.name);
            }
        }
    }

    #[test]
    fn scaled_config_reaches_hundreds_of_states() {
        let system = Config::scaled(12, 7).system().unwrap();
        assert_eq!(system.num_states(), 208); // 13 SP × 2 SR × 8 SQ
        assert_eq!(system.num_commands(), 13);
    }

    #[test]
    fn scaled_system_solves_quickly_at_medium_size() {
        // Debug-friendly slice of the scaling axis: 7 SP × 2 SR × 4 SQ =
        // 56 states through the default sparse engine.
        let system = Config::scaled(6, 3).system().unwrap();
        let solution = PolicyOptimizer::new(&system)
            .horizon(100_000.0)
            .max_performance_penalty(0.8)
            .max_request_loss_rate(0.05)
            .solve()
            .unwrap();
        assert!(solution.power_per_slice() < ACTIVE_POWER);
    }

    #[test]
    #[cfg_attr(
        debug_assertions,
        ignore = "release-only: the 208-state LP needs optimized code (run with --release or see the solvers bench)"
    )]
    fn scaled_system_solves_through_the_sparse_default_path() {
        // The acceptance instance of the sparse LP pipeline: ≥200 states,
        // solved by the default (revised simplex) engine. The optimum must
        // beat always-on (3 W) while meeting the service constraints.
        let system = Config::scaled(12, 7).system().unwrap();
        let solution = PolicyOptimizer::new(&system)
            .horizon(100_000.0)
            .max_performance_penalty(0.8)
            .max_request_loss_rate(0.05)
            .solve()
            .unwrap();
        assert!(solution.power_per_slice() < ACTIVE_POWER);
        assert!(solution.performance_per_slice() <= 0.8 + 1e-6);
        assert!(solution.loss_per_slice() <= 0.05 + 1e-6);
    }

    #[test]
    fn more_sleep_states_help_fig_12a() {
        // Fig. 12(a): adding sleep2 to the baseline brings a sizable power
        // reduction under a loose constraint.
        let horizon = 100_000.0;
        let solve = |cfg: &Config| {
            let system = cfg.system().unwrap();
            PolicyOptimizer::new(&system)
                .horizon(horizon)
                .max_performance_penalty(0.8)
                .max_request_loss_rate(0.05)
                .solve()
                .unwrap()
                .power_per_slice()
        };
        let baseline = solve(&Config::baseline());
        let with_sleep2 =
            solve(&Config::baseline().with_sleep_states(vec![SLEEP_STATES[0], SLEEP_STATES[1]]));
        assert!(
            with_sleep2 < baseline - 0.1,
            "sleep2 should save ≥0.1 W: {baseline} → {with_sleep2}"
        );
    }

    #[test]
    fn burstier_workload_saves_more_power_fig_13a() {
        // Fig. 13(a): with the request probability fixed at 0.5, smaller
        // switch probabilities (burstier traffic) allow more savings.
        let solve = |p: f64| {
            let cfg = Config::baseline()
                .with_sleep_states(SLEEP_STATES.to_vec())
                .with_sr_switch(p);
            let system = cfg.system().unwrap();
            PolicyOptimizer::new(&system)
                .horizon(100_000.0)
                .max_performance_penalty(0.8)
                .max_request_loss_rate(0.05)
                .solve()
                .unwrap()
                .power_per_slice()
        };
        let bursty = solve(0.005);
        let smooth = solve(0.2);
        assert!(
            bursty < smooth,
            "bursty {bursty} should beat smooth {smooth}"
        );
    }
}
