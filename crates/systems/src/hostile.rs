//! A **hostile** fleet scenario: a scripted fault campaign with a known
//! safe outcome — the robustness counterpart of the [`racks`] scenario.
//!
//! Where [`racks`] stresses the fleet controller's *clustering*
//! machinery, this scenario stresses its *containment* machinery. The
//! campaign has three deterministic phases:
//!
//! 1. **Warmup** ([`WARMUP_EPOCHS`] epochs): every device runs the
//!    [`CALM`] pattern; the fleet converges to one calm cluster per
//!    class with a single solved policy.
//! 2. **Fault window** ([`FAULT_EPOCHS`] epochs): two independent
//!    failure modes land at once.
//!    * The **victim rack** (rack [`VICTIM_RACK`]) emits *corrupted
//!      telemetry* — NaN, infinite, negative, and non-integral arrival
//!      counts injected into otherwise-calm streams. Ingest screening
//!      must reject every poisoned stream, strike the victims, and
//!      quarantine them onto their last-good policy.
//!    * The **stressed rack** (rack [`STRESSED_RACK`]) shifts to the
//!      [`STORM`] pattern, forcing cluster eviction and fresh solves —
//!      exactly while the harness has armed deterministic solver
//!      faults (seed [`FAULT_SEED`], budget-exhaustion rate
//!      [`EXHAUST_RATE`]; the benches map these onto `dpm-lp`'s fault
//!      plan). The storm model needs more pivots than the warm ladder
//!      rungs absorb under an exhausted budget, so the cluster rides
//!      the escalation ladder into held epochs with backoff.
//! 3. **Recovery** ([`RECOVERY_EPOCHS`] epochs): corruption stops and
//!    the faults disarm. The victims sit out probation and are
//!    readmitted; the stressed rack settles on the [`MILD`] pattern,
//!    whose clean solve clears the strikes its holds accrued. The
//!    fleet must end 100% healthy.
//!
//! Every pattern's period divides [`EPOCH_SLICES`], so clean streams
//! are exactly periodic across epochs and the end state is
//! reproducible bit for bit: a campaign run and a never-faulted run of
//! the same schedule must converge to **identical** policies, because
//! quarantine holds the victims' estimators still and readmission
//! re-homes them into a cluster solved from the same fit along the
//! same deterministic path.
//!
//! Compose the system with [`system`], drive epochs with
//! [`HostileSchedule::epoch_telemetry`] (the `hostile` flag switches
//! between the campaign and its clean control run), and window the
//! solver faults with [`HostileSchedule::fault_window`].
//!
//! [`racks`]: crate::racks

use dpm_core::{DpmError, ServiceRequester, SystemModel};

use crate::{drifting, racks};

/// Racks in the default schedule: one victim, one stressed.
pub const RACKS: usize = 2;

/// Devices per rack in the default schedule (8 devices total).
pub const DEVICES_PER_RACK: usize = 4;

/// Arrival slices per adaptation epoch (shared with [`racks`]). All
/// three regime periods divide this, so clean streams repeat exactly
/// epoch over epoch.
pub const EPOCH_SLICES: usize = racks::EPOCH_SLICES;

/// Epochs of all-calm warmup before the fault window opens.
pub const WARMUP_EPOCHS: usize = 3;

/// Length of the fault window: corrupted telemetry on the victim rack,
/// the [`STORM`] regime (and armed solver faults) on the stressed one.
/// Long enough that the victims' per-epoch strikes cross the default
/// quarantine threshold *and* their probation elapses before it ends.
pub const FAULT_EPOCHS: usize = 5;

/// Epochs of clean running after the window, during which quarantined
/// devices are readmitted and held clusters solve their way clean.
pub const RECOVERY_EPOCHS: usize = 8;

/// The rack whose telemetry is corrupted during the fault window.
pub const VICTIM_RACK: usize = 0;

/// The rack that shifts regimes while solver faults are armed.
pub const STRESSED_RACK: usize = 1;

/// Memory of the scenario's k-memory SR models (2 states).
pub const MEMORY: u32 = drifting::MEMORY;

/// Laplace smoothing of every fit (keeps transition support stable).
pub const SMOOTHING: f64 = drifting::SMOOTHING;

/// The calm pattern `(density, period)` — same as [`racks::CALM`].
pub const CALM: (usize, usize) = racks::CALM;

/// The storm pattern `(density, period)`: 7 busy slices in 8 (~88%
/// load). Its constrained LP sits far enough from the class base that
/// a fresh cluster fork needs more pivots than the warm ladder rungs
/// absorb — under an exhausted budget the solve deterministically
/// escalates to a held epoch.
pub const STORM: (usize, usize) = (7, 8);

/// The mild pattern `(density, period)` the stressed rack settles on
/// after the window — same as [`racks::SURGE`]. Distinct from both
/// [`CALM`] and [`STORM`], so recovery forces one clean re-cluster and
/// one clean solve (the solve that clears the holds' strikes).
pub const MILD: (usize, usize) = racks::SURGE;

/// Seed for the deterministic solver-fault plan armed during the fault
/// window. The scenario only *names* the seed; the benches build the
/// actual `dpm-lp` fault plan from it so this crate stays solver-free.
pub const FAULT_SEED: u64 = 0x0DAC_1998;

/// Budget-exhaustion rate of the windowed fault plan: every armed
/// solve runs out of pivots.
pub const EXHAUST_RATE: f64 = 1.0;

/// Poisoned slices injected per corrupted stream. Each value is drawn
/// from a cycle of NaN / +inf / negative / non-integral, so a single
/// campaign exercises every rejection class in the ingest screen.
pub const CORRUPT_SLICES: usize = 4;

/// The deterministic three-phase fault-campaign schedule (see the
/// [module docs](self)).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HostileSchedule {
    racks: usize,
    devices_per_rack: usize,
    warmup: usize,
    fault_epochs: usize,
    recovery: usize,
}

impl Default for HostileSchedule {
    fn default() -> Self {
        Self::new()
    }
}

impl HostileSchedule {
    /// The default campaign: [`RACKS`] × [`DEVICES_PER_RACK`] devices,
    /// [`WARMUP_EPOCHS`] + [`FAULT_EPOCHS`] + [`RECOVERY_EPOCHS`]
    /// epochs.
    pub fn new() -> Self {
        HostileSchedule {
            racks: RACKS,
            devices_per_rack: DEVICES_PER_RACK,
            warmup: WARMUP_EPOCHS,
            fault_epochs: FAULT_EPOCHS,
            recovery: RECOVERY_EPOCHS,
        }
    }

    /// A custom campaign shape. Rack 0 is always the victim rack and
    /// rack 1 the stressed rack, so at least two racks are required.
    ///
    /// # Errors
    ///
    /// [`DpmError::BadConfiguration`] when fewer than two racks are
    /// requested or any dimension is zero.
    pub fn custom(
        racks: usize,
        devices_per_rack: usize,
        warmup: usize,
        fault_epochs: usize,
        recovery: usize,
    ) -> Result<Self, DpmError> {
        if racks < 2 || devices_per_rack == 0 || warmup == 0 || fault_epochs == 0 || recovery == 0 {
            return Err(DpmError::BadConfiguration {
                reason: format!(
                    "hostile schedule needs >= 2 racks and nonzero dimensions, got \
                     {racks} racks x {devices_per_rack} devices, phases \
                     {warmup}+{fault_epochs}+{recovery}"
                ),
            });
        }
        Ok(HostileSchedule {
            racks,
            devices_per_rack,
            warmup,
            fault_epochs,
            recovery,
        })
    }

    /// Devices in the whole schedule.
    pub fn devices(&self) -> usize {
        self.racks * self.devices_per_rack
    }

    /// Total campaign length in epochs.
    pub fn total_epochs(&self) -> usize {
        self.warmup + self.fault_epochs + self.recovery
    }

    /// The rack device `device` sits in (devices are laid out rack by
    /// rack).
    pub fn rack_of(&self, device: usize) -> usize {
        device / self.devices_per_rack
    }

    /// The epoch range during which telemetry is corrupted and solver
    /// faults should be armed.
    pub fn fault_window(&self) -> std::ops::Range<usize> {
        self.warmup..self.warmup + self.fault_epochs
    }

    /// Whether `epoch` falls inside the fault window.
    pub fn is_fault_epoch(&self, epoch: usize) -> bool {
        self.fault_window().contains(&epoch)
    }

    /// Whether the campaign corrupts `device`'s telemetry during
    /// `epoch` (victim-rack devices, fault window only).
    pub fn is_corrupted(&self, device: usize, epoch: usize) -> bool {
        self.rack_of(device) == VICTIM_RACK && self.is_fault_epoch(epoch)
    }

    /// The `(density, period)` pattern underlying `device`'s stream
    /// during `epoch`. The victim rack is calm throughout (its faults
    /// are injected on top of the clean stream); the stressed rack
    /// runs calm → storm → mild across the three phases.
    pub fn regime(&self, device: usize, epoch: usize) -> (usize, usize) {
        if self.rack_of(device) != STRESSED_RACK || epoch < self.warmup {
            CALM
        } else if self.is_fault_epoch(epoch) {
            STORM
        } else {
            MILD
        }
    }

    /// The telemetry streams of one epoch, one [`EPOCH_SLICES`]-slice
    /// float stream per device. With `hostile` set, victim-rack
    /// streams inside the fault window carry [`CORRUPT_SLICES`]
    /// poisoned values (NaN / +inf / negative / non-integral) at
    /// deterministic, device- and epoch-dependent positions; without
    /// it the same schedule plays back clean — the control run the
    /// campaign's end state is compared against.
    pub fn epoch_telemetry(&self, epoch: usize, hostile: bool) -> Vec<Vec<f64>> {
        (0..self.devices())
            .map(|d| {
                let (density, period) = self.regime(d, epoch);
                let mut stream: Vec<f64> = (0..EPOCH_SLICES)
                    .map(|i| f64::from(u8::from((d + i) % period < density)))
                    .collect();
                if hostile && self.is_corrupted(d, epoch) {
                    for j in 0..CORRUPT_SLICES {
                        let slice = (13 * d + 7 * epoch + 131 * j) % EPOCH_SLICES;
                        stream[slice] = match j % 4 {
                            0 => f64::NAN,
                            1 => f64::INFINITY,
                            2 => -3.0,
                            _ => 0.5,
                        };
                    }
                }
                stream
            })
            .collect()
    }
}

/// The scenario system: the same one class as the [`racks`] scenario,
/// so campaign results are comparable with the churn benchmarks.
///
/// # Errors
///
/// Propagates composition failures (never fails in practice).
pub fn system() -> Result<SystemModel, DpmError> {
    system_for(ServiceRequester::two_state(0.1, 0.6)?)
}

/// Composes the scenario system around an arbitrary
/// (2^[`MEMORY`])-state requester.
///
/// # Errors
///
/// Propagates composition failures.
pub fn system_for(sr: ServiceRequester) -> Result<SystemModel, DpmError> {
    drifting::system_for(sr)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dpm_trace::screen_arrivals;

    #[test]
    fn phases_partition_the_campaign() {
        let schedule = HostileSchedule::new();
        assert_eq!(schedule.devices(), RACKS * DEVICES_PER_RACK);
        assert_eq!(
            schedule.total_epochs(),
            WARMUP_EPOCHS + FAULT_EPOCHS + RECOVERY_EPOCHS
        );
        let window = schedule.fault_window();
        assert_eq!(window, WARMUP_EPOCHS..WARMUP_EPOCHS + FAULT_EPOCHS);
        for epoch in 0..schedule.total_epochs() {
            assert_eq!(schedule.is_fault_epoch(epoch), window.contains(&epoch));
        }
        // The stressed rack walks calm -> storm -> mild; the victim
        // rack never changes regime.
        let stressed = STRESSED_RACK * DEVICES_PER_RACK;
        assert_eq!(schedule.regime(stressed, 0), CALM);
        assert_eq!(schedule.regime(stressed, window.start), STORM);
        assert_eq!(schedule.regime(stressed, window.end), MILD);
        for epoch in 0..schedule.total_epochs() {
            assert_eq!(schedule.regime(0, epoch), CALM);
        }
    }

    #[test]
    fn corruption_hits_only_the_victim_rack_inside_the_window() {
        let schedule = HostileSchedule::new();
        for epoch in 0..schedule.total_epochs() {
            let clean = schedule.epoch_telemetry(epoch, false);
            let hostile = schedule.epoch_telemetry(epoch, true);
            for d in 0..schedule.devices() {
                let differs = clean[d]
                    .iter()
                    .zip(&hostile[d])
                    .any(|(a, b)| a.to_bits() != b.to_bits());
                assert_eq!(
                    differs,
                    schedule.is_corrupted(d, epoch),
                    "device {d} epoch {epoch}"
                );
            }
        }
    }

    #[test]
    fn the_ingest_screen_rejects_every_poisoned_stream() {
        let schedule = HostileSchedule::new();
        for epoch in schedule.fault_window() {
            for (d, stream) in schedule.epoch_telemetry(epoch, true).iter().enumerate() {
                let screened = screen_arrivals(stream);
                if schedule.is_corrupted(d, epoch) {
                    assert!(screened.is_err(), "device {d} epoch {epoch} passed");
                } else {
                    assert!(screened.is_ok(), "device {d} epoch {epoch} rejected");
                }
            }
        }
    }

    #[test]
    fn clean_streams_are_periodic_and_the_system_composes() {
        let schedule = HostileSchedule::new();
        for (density, period) in [CALM, STORM, MILD] {
            assert_eq!(EPOCH_SLICES % period, 0);
            assert!(density < period);
        }
        // Within a phase, clean streams replay exactly.
        for epoch in [1, WARMUP_EPOCHS + 1, WARMUP_EPOCHS + FAULT_EPOCHS + 1] {
            assert_eq!(
                schedule.epoch_telemetry(epoch, false),
                schedule.epoch_telemetry(epoch + 1, false),
                "epoch {epoch} should replay"
            );
        }
        let system = system().unwrap();
        assert_eq!(system.requester().num_states(), 1 << MEMORY);
        assert!(HostileSchedule::custom(1, 4, 1, 1, 1).is_err());
        assert!(HostileSchedule::custom(2, 0, 1, 1, 1).is_err());
    }
}
