//! A **nonstationary** workload scenario for the online-adaptation
//! experiments: the toy provider of Sections III–IV driven by a
//! regime-switching request stream.
//!
//! Section VII of the paper concedes that its optimal policies assume a
//! *stationary* SR model and degrade when "the arrival of service
//! requests is poorly modeled by a Markov process" — precisely the
//! situation this scenario manufactures. The workload alternates between
//! two piecewise-stationary regimes:
//!
//! * **light** ([`LIGHT`]): ~80-slice idle gaps, short bursts (~3%
//!   load) — sleeping through the gaps is a big win (the wake costs 10
//!   slices at 4 W);
//! * **heavy** ([`HEAVY`]): ~3-slice gaps, long bursts (~67% load
//!   against σ = 0.8) — sleeping into a gap buys almost nothing and
//!   pays the full wake every time; the right policy stays on.
//!
//! Crucially the two regimes differ in their **idle-gap statistics**,
//! which a k-memory observation cannot distinguish: the same observed
//! idle state means "gap of ~80" in one regime and "gap of ~3" in the
//! other. A blended stationary fit averages them into a ~12-slice gap
//! estimate — right at the wake break-even, so the static policy hedges
//! (and mostly stays on, wasting the whole light regime), while a
//! per-epoch refit is decisively right in both regimes.
//!
//! A policy optimized against the **blended** full-trace fit — the
//! paper's offline methodology applied naively to the whole stream — is
//! mismatched in both regimes. The adaptive runtime
//! (`dpm_runtime::AdaptiveController`) re-fits a windowed k-memory model
//! each epoch and hot-swaps the re-solved policy; this module provides
//! the system, the workload and the blended baseline fit it is evaluated
//! against.

use dpm_core::{DpmError, ServiceProvider, ServiceQueue, ServiceRequester, SystemModel};
use dpm_trace::generators::{Regime, RegimeSwitchingGenerator};
use dpm_trace::SrExtractor;

use crate::toy;

/// Memory of the k-memory SR models used throughout the scenario: 2 SR
/// states (idle/busy), so the composed system has 2 SP × 2 SR × 3 SQ =
/// 12 states. k = 1 is the interesting memory here: the *same* observed
/// idle state implies a ~80-slice gap in the light regime and a
/// ~3-slice gap in the heavy one, so no single stationary fit can issue
/// the right command in both — the gap statistics live outside the
/// observable state, which is exactly what the per-epoch refit recovers.
pub const MEMORY: u32 = 1;

/// Laplace smoothing of every fit in the scenario. Strictly positive so
/// each history state keeps both successors — the fitted chain's
/// **support never changes**, which keeps the occupation LP's sparsity
/// pattern stable across refits and the per-epoch reloads warm.
pub const SMOOTHING: f64 = 0.5;

/// The light regime `(P(idle→busy), P(busy→busy))`: ~3% load.
pub const LIGHT: (f64, f64) = (0.012, 0.55);

/// The heavy regime `(P(idle→busy), P(busy→busy))`: ~67% load against
/// the provider's σ = 0.8 service rate — heavily loaded, but with a
/// per-regime queue floor (≈ 0.44) that stays *feasible* under the
/// scenario's queue bound, so every epoch of an adaptive run re-solves
/// instead of falling back.
pub const HEAVY: (f64, f64) = (0.3, 0.85);

/// Slices each regime lasts before switching.
pub const REGIME_SLICES: usize = 25_000;

/// Queue capacity of the scenario (3 queue states): enough headroom that
/// the heavy regime admits meaningful loss bounds, small enough that the
/// per-epoch LPs stay tiny (12 composite states).
pub const QUEUE_CAPACITY: usize = 2;

/// The scenario's per-slice average-queue bound. Feasible in both
/// regimes (the heavy regime's queue floor is ≈ 0.79).
pub const QUEUE_BOUND: f64 = 0.9;

/// The scenario's per-slice request-loss bound. Feasible in both
/// regimes (the heavy regime's loss floor is ≈ 0.26).
pub const LOSS_BOUND: f64 = 0.3;

/// The optimization horizon (expected session length, slices) of every
/// solve in the scenario, and the mean session length simulations should
/// use (`SimConfig::restart_probability(1.0 / HORIZON)`): randomized
/// constrained optima are generally **not ergodic**, so only
/// session-restarted averages sample the discounted measure the LP
/// optimizes (see `tests/restart_sampling.rs` in `dpm-sim`).
pub const HORIZON: f64 = 2_000.0;

/// The adaptation epoch the scenario's experiments use — matched to
/// [`HORIZON`], so each re-solve optimizes for sessions of the scale it
/// will actually govern.
pub const EPOCH_SLICES: u64 = 2_000;

/// The regime schedule: light, then heavy, cycled.
pub fn regimes() -> Vec<Regime> {
    vec![
        Regime::new(LIGHT.0, LIGHT.1, REGIME_SLICES),
        Regime::new(HEAVY.0, HEAVY.1, REGIME_SLICES),
    ]
}

/// The drifting arrival trace: `slices` slices of the cycled
/// [`regimes`] schedule, deterministic given `seed`.
pub fn workload(slices: usize, seed: u64) -> Vec<u32> {
    RegimeSwitchingGenerator::new(regimes())
        .seed(seed)
        .generate(slices)
}

/// The provider under management: the toy two-state SP of Example 3.1
/// (3 W serving, 4 W switching, 0 W off, σ = 0.8, 10-slice wake).
///
/// # Errors
///
/// Never fails in practice; propagates builder validation.
pub fn service_provider() -> Result<ServiceProvider, DpmError> {
    toy::service_provider()
}

/// The scenario's k-memory extractor ([`MEMORY`], [`SMOOTHING`]).
pub fn extractor() -> SrExtractor {
    SrExtractor::new(MEMORY).with_smoothing(SMOOTHING)
}

/// Composes the scenario system around an arbitrary (2^[`MEMORY`])-state
/// requester — how both the blended baseline and each per-epoch refit
/// become a full [`SystemModel`].
///
/// # Errors
///
/// Propagates composition failures (e.g. a requester whose state count
/// is not 2^[`MEMORY`]).
pub fn system_for(sr: ServiceRequester) -> Result<SystemModel, DpmError> {
    SystemModel::compose(
        service_provider()?,
        sr,
        ServiceQueue::with_capacity(QUEUE_CAPACITY),
    )
}

/// The **blended** system: SR fitted offline to one full regime cycle of
/// the drifting workload — the paper's stationary methodology applied to
/// a stream that is not. This is the static-optimal baseline's model and
/// the adaptive controller's starting point.
///
/// # Errors
///
/// Propagates fit/composition failures.
pub fn blended_system(seed: u64) -> Result<SystemModel, DpmError> {
    let cycle = 2 * REGIME_SLICES;
    let stream = workload(cycle, seed);
    system_for(extractor().extract(&stream)?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dpm_trace::TraceStats;

    #[test]
    fn regimes_have_the_advertised_loads() {
        let stream = workload(2 * REGIME_SLICES, 3);
        let light = TraceStats::from_stream(&stream[..REGIME_SLICES]);
        let heavy = TraceStats::from_stream(&stream[REGIME_SLICES..]);
        assert!(light.load() < 0.06, "light load {}", light.load());
        assert!(
            (0.6..0.95).contains(&heavy.load()),
            "heavy load {}",
            heavy.load()
        );
    }

    #[test]
    fn blended_system_composes_with_k_memory_shape() {
        let system = blended_system(3).unwrap();
        assert_eq!(system.requester().num_states(), 1 << MEMORY);
        assert_eq!(
            system.num_states(),
            2 * (1 << MEMORY) * (QUEUE_CAPACITY + 1)
        );
        // The blend sits between the regimes.
        let rate = system.requester().request_rate().unwrap();
        assert!((0.1..0.7).contains(&rate), "blended rate {rate}");
    }

    #[test]
    fn smoothed_fits_share_their_support() {
        // Per-epoch refits must keep the transition support (and with it
        // the occupation LP's sparsity pattern) stable — the warm-reload
        // precondition. Check two disjoint windows with very different
        // statistics.
        let stream = workload(2 * REGIME_SLICES, 11);
        let light = extractor().extract(&stream[..REGIME_SLICES]).unwrap();
        let heavy = extractor().extract(&stream[REGIME_SLICES..]).unwrap();
        let (pl, ph) = (
            light.chain().transition_matrix(),
            heavy.chain().transition_matrix(),
        );
        for s in 0..1 << MEMORY {
            for t in 0..1 << MEMORY {
                assert_eq!(
                    pl.prob(s, t) > 0.0,
                    ph.prob(s, t) > 0.0,
                    "support differs at ({s},{t})"
                );
            }
        }
    }
}
