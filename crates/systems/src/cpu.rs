//! The ARM SA-1100 CPU of Section VI-C.
//!
//! From the paper:
//! * two modeled states — *active* (0.3 W, full performance; the chip's
//!   own active and idle states are merged because their transitions are
//!   fast and cheap) and *sleep* (0 W, no performance);
//! * shut-down and turn-on transitions take ≈ 100 ms and draw 0.3 W and
//!   0.9 W respectively;
//! * time resolution Δt = 20 ms ⇒ transitions last 5 slices on average;
//! * incoming requests are **not** enqueued (queue capacity 0); a request
//!   arriving while the CPU sleeps is the undesirable event, whose
//!   probability is constrained: the performance penalty is the indicator
//!   of `(SR active, SP sleep)`;
//! * the CPU reacts to interrupts on its own: the PM's only real degree of
//!   freedom is *when to shut down* from `(active, idle)` — the paper uses
//!   this to compare stochastic policies against timeout policies on an
//!   equal footing (Fig. 9(b)).
//!
//! The unconditional wake-on-request of the real chip is not hard-wired
//! into the kernel here; instead the optimizer *recovers* it, because any
//! policy that stays asleep under pending requests pays the penalty that
//! the constraint bounds. The simulator's heuristic policies (timeouts)
//! wake on request explicitly, matching the hardware.

use dpm_core::{
    DpmError, ServiceProvider, ServiceQueue, ServiceRequester, SystemModel, SystemState,
};
use dpm_linalg::Matrix;

/// CPU states in declaration order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)]
pub enum CpuState {
    Active = 0,
    Sleep = 1,
    WakingUp = 2,
    ShuttingDown = 3,
}

/// Commands: `Run` keeps/wakes the CPU, `ShutDown` sends it to sleep.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)]
pub enum CpuCommand {
    Run = 0,
    ShutDown = 1,
}

/// Time resolution (20 ms).
pub const TIME_RESOLUTION_MS: f64 = 20.0;
/// Active power of the SA-1100 model (W).
pub const ACTIVE_POWER: f64 = 0.3;
/// Power during the shut-down transition (W).
pub const SHUTDOWN_POWER: f64 = 0.3;
/// Power during the turn-on transition (W).
pub const WAKEUP_POWER: f64 = 0.9;
/// Expected transition length in slices (100 ms / 20 ms).
pub const TRANSITION_SLICES: f64 = 5.0;
/// Service rate of the active CPU per slice.
pub const SERVICE_RATE: f64 = 1.0;

/// Builds the four-state (2 operational + 2 transient) SA-1100 provider.
///
/// # Errors
///
/// Propagates builder validation.
pub fn service_provider() -> Result<ServiceProvider, DpmError> {
    let mut b = ServiceProvider::builder();
    let active = b.add_state_with_power("active", ACTIVE_POWER);
    let sleep = b.add_state_with_power("sleep", 0.0);
    let waking = b.add_state_with_power("waking_up", WAKEUP_POWER);
    let shutting = b.add_state_with_power("shutting_down", SHUTDOWN_POWER);
    let run = b.add_command("run");
    let shut_down = b.add_command("shut_down");

    // Entering a transient takes one slice; completing it is geometric
    // with mean TRANSITION_SLICES − 1, so command-to-completion averages
    // 100 ms exactly.
    let rate = 1.0 / (TRANSITION_SLICES - 1.0);
    b.transition(active, shutting, shut_down, 1.0)?;
    b.transition(sleep, waking, run, 1.0)?;
    for &cmd in &[run, shut_down] {
        b.transition(shutting, sleep, cmd, rate)?;
        b.transition(waking, active, cmd, rate)?;
    }

    // Full performance while active and told to run.
    b.service_rate(active, run, SERVICE_RATE)?;

    b.build()
}

/// Default workload standing in for the monitored CPU trace of \[28\]:
/// interactive bursts (mean 2 s of activity) separated by idle stretches
/// (mean 10 s) at Δt = 20 ms.
///
/// # Errors
///
/// Never fails in practice; propagates validation.
pub fn default_workload() -> Result<ServiceRequester, DpmError> {
    ServiceRequester::two_state(0.002, 0.99)
}

/// The composed CPU system: 4 SP × 2 SR × 1 SQ = 8 states, no queue.
///
/// # Errors
///
/// Propagates component validation failures.
pub fn system() -> Result<SystemModel, DpmError> {
    system_with_workload(default_workload()?)
}

/// The composed CPU system against an arbitrary workload.
///
/// # Errors
///
/// Propagates component validation failures.
pub fn system_with_workload(workload: ServiceRequester) -> Result<SystemModel, DpmError> {
    SystemModel::compose(
        service_provider()?,
        workload,
        ServiceQueue::with_capacity(0),
    )
}

/// Initial state: CPU active, workload idle.
pub fn initial_state() -> SystemState {
    SystemState {
        sp: CpuState::Active as usize,
        sr: 0,
        queue: 0,
    }
}

/// The paper's performance penalty: 1 when the SR is issuing requests and
/// the CPU is not active (sleeping or in transition), 0 otherwise.
pub fn latency_penalty(system: &SystemModel) -> Matrix {
    system.custom_cost(|s, _| {
        let busy = system.requester().requests(s.sr) > 0;
        let unavailable = s.sp != CpuState::Active as usize;
        if busy && unavailable {
            1.0
        } else {
            0.0
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use dpm_core::PolicyOptimizer;

    #[test]
    fn composed_shape() {
        let system = system().unwrap();
        assert_eq!(system.num_states(), 8);
        assert_eq!(system.num_commands(), 2);
    }

    #[test]
    fn transitions_take_100ms() {
        let sp = service_provider().unwrap();
        let t_down = sp
            .expected_transition_time(
                CpuState::Active as usize,
                CpuState::Sleep as usize,
                CpuCommand::ShutDown as usize,
            )
            .unwrap();
        assert!((t_down - TRANSITION_SLICES).abs() < 1e-9);
        let t_up = sp
            .expected_transition_time(
                CpuState::Sleep as usize,
                CpuState::Active as usize,
                CpuCommand::Run as usize,
            )
            .unwrap();
        assert!((t_up - TRANSITION_SLICES).abs() < 1e-9);
    }

    #[test]
    fn transition_powers_match_the_datasheet() {
        let sp = service_provider().unwrap();
        assert_eq!(sp.power(CpuState::WakingUp as usize, 0), WAKEUP_POWER);
        assert_eq!(sp.power(CpuState::ShuttingDown as usize, 0), SHUTDOWN_POWER);
        assert_eq!(sp.power(CpuState::Sleep as usize, 1), 0.0);
    }

    #[test]
    fn penalty_sweep_traces_fig9b() {
        // Tightening the sleep-while-busy probability must monotonically
        // increase power, from near-0 (always asleep allowed) toward the
        // 0.3 W always-on ceiling.
        let system = system().unwrap();
        let penalty = latency_penalty(&system);
        let mut last = 0.0;
        for bound in [0.05, 0.02, 0.01, 0.005, 0.001] {
            let solution = PolicyOptimizer::new(&system)
                .horizon(500_000.0)
                .performance_cost(penalty.clone())
                .max_performance_penalty(bound)
                .initial_state(initial_state())
                .unwrap()
                .solve()
                .unwrap();
            let power = solution.power_per_slice();
            assert!(power >= last - 1e-9, "bound {bound}");
            assert!(power <= ACTIVE_POWER + 0.1);
            last = power;
        }
    }

    #[test]
    fn optimal_policy_wakes_under_load() {
        // The optimizer recovers the hardware's wake-on-request: in
        // (sleep, busy) the optimal decision issues `run` when the penalty
        // constraint is tight.
        let system = system().unwrap();
        let penalty = latency_penalty(&system);
        let solution = PolicyOptimizer::new(&system)
            .horizon(500_000.0)
            .performance_cost(penalty)
            .max_performance_penalty(0.002)
            .initial_state(initial_state())
            .unwrap()
            .solve()
            .unwrap();
        let sleep_busy = system
            .state_index(SystemState {
                sp: CpuState::Sleep as usize,
                sr: 1,
                queue: 0,
            })
            .unwrap();
        let p_run = solution.policy().prob(sleep_busy, CpuCommand::Run as usize);
        assert!(p_run > 0.95, "P(run | sleep, busy) = {p_run}");
    }
}
