//! Exhaustive verification of the Markov composer (equation (4)) against
//! a brute-force enumeration of the joint transition semantics, on small
//! systems where every path can be checked by hand-rolled code.

use dpm_core::{ServiceProvider, ServiceQueue, ServiceRequester, SystemModel, SystemState};
use dpm_markov::StochasticMatrix;

/// Builds a small fully-parameterized provider.
fn provider(p_wake: f64, p_sleep: f64, sigma: f64) -> ServiceProvider {
    let mut b = ServiceProvider::builder();
    let on = b.add_state_with_power("on", 2.0);
    let off = b.add_state_with_power("off", 0.0);
    let go_on = b.add_command("go_on");
    let go_off = b.add_command("go_off");
    b.transition(off, on, go_on, p_wake).expect("valid");
    b.transition(on, off, go_off, p_sleep).expect("valid");
    b.service_rate(on, go_on, sigma).expect("valid");
    b.build().expect("complete")
}

/// Brute-force joint transition probability implementing the composition
/// semantics independently of the production code: SP and SR move, then
/// the queue absorbs arrivals from the *destination* SR state and serves
/// with the *current* SP state's rate.
#[allow(clippy::too_many_arguments)]
fn brute_force_prob(
    sp_kernel: &StochasticMatrix,
    sr_kernel: &StochasticMatrix,
    requests: &[u32],
    sigma_of: impl Fn(usize) -> f64,
    capacity: usize,
    from: SystemState,
    to: SystemState,
) -> f64 {
    let p_sp = sp_kernel.prob(from.sp, to.sp);
    let p_sr = sr_kernel.prob(from.sr, to.sr);
    if p_sp == 0.0 || p_sr == 0.0 {
        return 0.0;
    }
    let arrivals = requests[to.sr] as usize;
    let sigma = sigma_of(from.sp);
    let total = from.queue + arrivals;
    let mut p_queue = 0.0;
    if total == 0 {
        if to.queue == 0 {
            p_queue = 1.0;
        }
    } else {
        // Serve one with probability sigma.
        let served_next = (total - 1).min(capacity);
        let unserved_next = total.min(capacity);
        if to.queue == served_next {
            p_queue += sigma;
        }
        if to.queue == unserved_next {
            p_queue += 1.0 - sigma;
        }
    }
    p_sp * p_sr * p_queue
}

#[test]
fn composed_kernel_matches_brute_force_everywhere() {
    for &sigma in &[0.0, 0.35, 1.0] {
        for &capacity in &[0usize, 1, 2, 3] {
            let sp = provider(0.3, 0.7, sigma);
            let sr = ServiceRequester::two_state(0.2, 0.6).expect("valid");
            let sp_kernels: Vec<StochasticMatrix> =
                (0..2).map(|a| sp.chain().kernel(a).clone()).collect();
            let sr_kernel = sr.chain().transition_matrix().clone();
            let requests = [sr.requests(0), sr.requests(1)];
            let system = SystemModel::compose(sp, sr, ServiceQueue::with_capacity(capacity))
                .expect("composes");
            for (a, sp_kernel) in sp_kernels.iter().enumerate() {
                for from_idx in 0..system.num_states() {
                    for to_idx in 0..system.num_states() {
                        let from = system.state_of(from_idx);
                        let to = system.state_of(to_idx);
                        let expected = brute_force_prob(
                            sp_kernel,
                            &sr_kernel,
                            &requests,
                            |sp_state| if sp_state == 0 && a == 0 { sigma } else { 0.0 },
                            capacity,
                            from,
                            to,
                        );
                        let actual = system.chain().prob(from_idx, to_idx, a);
                        assert!(
                            (actual - expected).abs() < 1e-12,
                            "σ={sigma} cap={capacity} cmd={a} {} → {}: {actual} vs {expected}",
                            system.state_label(from_idx),
                            system.state_label(to_idx),
                        );
                    }
                }
            }
        }
    }
}

#[test]
fn expected_loss_matches_brute_force() {
    // Multi-request bursts against small capacities.
    let mut b = ServiceProvider::builder();
    let on = b.add_state("on");
    let cmd = b.add_command("serve");
    b.service_rate(on, cmd, 0.5).expect("valid");
    let sp = b.build().expect("complete");
    let t = StochasticMatrix::from_rows(&[&[0.4, 0.6], &[0.3, 0.7]]).expect("valid");
    let sr = ServiceRequester::new(t.clone(), vec![0, 3]).expect("valid");
    let capacity = 1;
    let system =
        SystemModel::compose(sp, sr, ServiceQueue::with_capacity(capacity)).expect("composes");
    for from_idx in 0..system.num_states() {
        let from = system.state_of(from_idx);
        let mut expected = 0.0;
        for sr_next in 0..2 {
            let p_sr = t.prob(from.sr, sr_next);
            let arrivals = if sr_next == 1 { 3usize } else { 0 };
            let total = from.queue + arrivals;
            if total == 0 {
                continue;
            }
            let sigma = if from.sp == 0 { 0.5 } else { 0.0 };
            let loss_served = (total - 1).saturating_sub(capacity);
            let loss_unserved = total.saturating_sub(capacity);
            expected += p_sr * (sigma * loss_served as f64 + (1.0 - sigma) * loss_unserved as f64);
        }
        let actual = system.expected_loss(from_idx, 0);
        assert!(
            (actual - expected).abs() < 1e-12,
            "{}: {actual} vs {expected}",
            system.state_label(from_idx)
        );
    }
}

#[test]
fn zero_capacity_composition_has_single_queue_state() {
    let sp = provider(0.5, 0.5, 0.9);
    let sr = ServiceRequester::two_state(0.1, 0.9).expect("valid");
    let system = SystemModel::compose(sp, sr, ServiceQueue::with_capacity(0)).expect("composes");
    assert_eq!(system.num_states(), 4); // 2 SP × 2 SR × 1 SQ
    for i in 0..system.num_states() {
        assert_eq!(system.state_of(i).queue, 0);
    }
}
