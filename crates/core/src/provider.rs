use dpm_linalg::Matrix;
use dpm_markov::{ControlledMarkovChain, StochasticMatrix};

use crate::DpmError;

/// The **service provider** of Definition 3.1: the resource being power
/// managed.
///
/// A triple `(Σ_SP, σ, p)` where `Σ_SP` is a controlled Markov chain over
/// operating states, `σ(s, a)` is the probability of completing one request
/// in a slice (the *service rate*) and `p(s, a)` is the power drawn during
/// a slice, both conditioned on the issued command.
///
/// States with `σ(s, a) = 0` for every command are *sleep/inactive* states;
/// a state is *active* if it can serve under some command. Transition times
/// are geometric (equations (1)–(2)): a command held for `1/p` slices on
/// average completes a transition with per-slice probability `p`.
///
/// Build with [`ServiceProvider::builder`]; unspecified transition mass
/// stays on the self-loop, so only the interesting edges need to be
/// declared (as in Fig. 2 / Fig. 8(a) of the paper).
#[derive(Debug, Clone)]
pub struct ServiceProvider {
    chain: ControlledMarkovChain,
    /// `σ(s, a)`, `num_states × num_commands`.
    service_rate: Matrix,
    /// `p(s, a)`, `num_states × num_commands`.
    power: Matrix,
    state_names: Vec<String>,
    command_names: Vec<String>,
}

impl ServiceProvider {
    /// Starts building a provider.
    pub fn builder() -> ServiceProviderBuilder {
        ServiceProviderBuilder::new()
    }

    /// Number of operating states.
    pub fn num_states(&self) -> usize {
        self.chain.num_states()
    }

    /// Number of commands the power manager can issue.
    pub fn num_commands(&self) -> usize {
        self.chain.num_actions()
    }

    /// The controlled transition structure.
    pub fn chain(&self) -> &ControlledMarkovChain {
        &self.chain
    }

    /// Service rate `σ(s, a)`.
    ///
    /// # Panics
    ///
    /// Panics on out-of-range indices.
    pub fn service_rate(&self, state: usize, command: usize) -> f64 {
        self.service_rate[(state, command)]
    }

    /// Power consumption `p(s, a)`.
    ///
    /// # Panics
    ///
    /// Panics on out-of-range indices.
    pub fn power(&self, state: usize, command: usize) -> f64 {
        self.power[(state, command)]
    }

    /// Name of a state (defaults to `sp<i>` if none was given).
    ///
    /// # Panics
    ///
    /// Panics when `state` is out of range.
    pub fn state_name(&self, state: usize) -> &str {
        &self.state_names[state]
    }

    /// Name of a command (defaults to `cmd<i>` if none was given).
    ///
    /// # Panics
    ///
    /// Panics when `command` is out of range.
    pub fn command_name(&self, command: usize) -> &str {
        &self.command_names[command]
    }

    /// Index of the state with the given name, if any.
    pub fn state_index(&self, name: &str) -> Option<usize> {
        self.state_names.iter().position(|n| n == name)
    }

    /// Index of the command with the given name, if any.
    pub fn command_index(&self, name: &str) -> Option<usize> {
        self.command_names.iter().position(|n| n == name)
    }

    /// `true` when the state can serve requests under some command
    /// (an *active* state in the paper's terminology).
    ///
    /// # Panics
    ///
    /// Panics when `state` is out of range.
    pub fn is_active_state(&self, state: usize) -> bool {
        (0..self.num_commands()).any(|a| self.service_rate[(state, a)] > 0.0)
    }

    /// Expected slices to move from `from` to `to` while holding `command`
    /// constant — the calibration target of Table I. `None` when
    /// unreachable.
    ///
    /// # Panics
    ///
    /// Panics on out-of-range indices.
    pub fn expected_transition_time(&self, from: usize, to: usize, command: usize) -> Option<f64> {
        self.chain.expected_transition_time(from, to, command)
    }
}

/// Builder for [`ServiceProvider`], mirroring how the paper's case studies
/// are specified: states, commands, a sparse set of controlled transitions
/// (self-loops implied), and per-(state, command) service rates and powers.
#[derive(Debug, Clone, Default)]
pub struct ServiceProviderBuilder {
    state_names: Vec<String>,
    command_names: Vec<String>,
    /// `(from, to, command, probability)` edges; self-loops get the rest.
    transitions: Vec<(usize, usize, usize, f64)>,
    /// `(state, command, rate)` entries; default 0.
    service_rates: Vec<(usize, usize, f64)>,
    /// `(state, command, power)` entries; default the state's base power.
    powers: Vec<(usize, usize, f64)>,
    /// Per-state base power used when no (state, command) override exists.
    base_powers: Vec<f64>,
}

impl ServiceProviderBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Declares a new state and returns its index.
    pub fn add_state(&mut self, name: impl Into<String>) -> usize {
        self.state_names.push(name.into());
        self.base_powers.push(0.0);
        self.state_names.len() - 1
    }

    /// Declares a new state with a base power used for every command
    /// unless overridden, and returns its index.
    pub fn add_state_with_power(&mut self, name: impl Into<String>, power: f64) -> usize {
        let s = self.add_state(name);
        self.base_powers[s] = power;
        s
    }

    /// Declares a new command and returns its index.
    pub fn add_command(&mut self, name: impl Into<String>) -> usize {
        self.command_names.push(name.into());
        self.command_names.len() - 1
    }

    /// Adds the controlled transition `from → to` under `command` with the
    /// given per-slice probability. Residual mass stays on the self-loop.
    ///
    /// # Errors
    ///
    /// * [`DpmError::UnknownIndex`] for out-of-range states/commands.
    /// * [`DpmError::InvalidProbability`] for a probability outside `[0,1]`.
    pub fn transition(
        &mut self,
        from: usize,
        to: usize,
        command: usize,
        probability: f64,
    ) -> Result<&mut Self, DpmError> {
        self.check_state(from)?;
        self.check_state(to)?;
        self.check_command(command)?;
        if !(0.0..=1.0).contains(&probability) || !probability.is_finite() {
            return Err(DpmError::InvalidProbability {
                context: format!("transition {from}→{to} under command {command}"),
                value: probability,
            });
        }
        self.transitions.push((from, to, command, probability));
        Ok(self)
    }

    /// Sets the service rate `σ(state, command)` (default 0: not serving).
    ///
    /// # Errors
    ///
    /// Same validation as [`Self::transition`].
    pub fn service_rate(
        &mut self,
        state: usize,
        command: usize,
        rate: f64,
    ) -> Result<&mut Self, DpmError> {
        self.check_state(state)?;
        self.check_command(command)?;
        if !(0.0..=1.0).contains(&rate) || !rate.is_finite() {
            return Err(DpmError::InvalidProbability {
                context: format!("service rate of state {state} under command {command}"),
                value: rate,
            });
        }
        self.service_rates.push((state, command, rate));
        Ok(self)
    }

    /// Sets the power `p(state, command)`, overriding the state's base
    /// power for that command.
    ///
    /// # Errors
    ///
    /// [`DpmError::UnknownIndex`] for out-of-range indices;
    /// [`DpmError::InvalidProbability`] for non-finite power (the value is
    /// otherwise unrestricted — the paper allows arbitrary units).
    pub fn power(
        &mut self,
        state: usize,
        command: usize,
        power: f64,
    ) -> Result<&mut Self, DpmError> {
        self.check_state(state)?;
        self.check_command(command)?;
        if !power.is_finite() {
            return Err(DpmError::InvalidProbability {
                context: format!("power of state {state} under command {command}"),
                value: power,
            });
        }
        self.powers.push((state, command, power));
        Ok(self)
    }

    /// Finalizes the provider.
    ///
    /// # Errors
    ///
    /// * [`DpmError::IncompleteModel`] without at least one state and one
    ///   command.
    /// * [`DpmError::TransitionMassExceeded`] when declared off-self-loop
    ///   probabilities of some `(state, command)` row exceed one.
    pub fn build(&self) -> Result<ServiceProvider, DpmError> {
        let n = self.state_names.len();
        let m = self.command_names.len();
        if n == 0 || m == 0 {
            return Err(DpmError::IncompleteModel {
                reason: "service provider needs at least one state and one command".to_string(),
            });
        }

        // One transition matrix per command: start from identity, move the
        // declared probability mass off the diagonal.
        let mut kernels = Vec::with_capacity(m);
        for a in 0..m {
            let mut mat = Matrix::identity(n);
            for &(from, to, command, p) in &self.transitions {
                if command != a || from == to {
                    continue;
                }
                mat[(from, to)] += p;
                mat[(from, from)] -= p;
            }
            for s in 0..n {
                if mat[(s, s)] < -1e-12 {
                    return Err(DpmError::TransitionMassExceeded {
                        state: s,
                        command: a,
                        total: 1.0 - mat[(s, s)],
                    });
                }
                if mat[(s, s)] < 0.0 {
                    mat[(s, s)] = 0.0; // absorb roundoff
                }
            }
            kernels.push(StochasticMatrix::from_matrix(mat)?);
        }
        let chain = ControlledMarkovChain::new(kernels)?;

        let mut service_rate = Matrix::zeros(n, m);
        for &(s, a, r) in &self.service_rates {
            service_rate[(s, a)] = r;
        }
        let mut power = Matrix::from_fn(n, m, |s, _| self.base_powers[s]);
        for &(s, a, p) in &self.powers {
            power[(s, a)] = p;
        }

        Ok(ServiceProvider {
            chain,
            service_rate,
            power,
            state_names: self.state_names.clone(),
            command_names: self.command_names.clone(),
        })
    }

    fn check_state(&self, s: usize) -> Result<(), DpmError> {
        if s >= self.state_names.len() {
            return Err(DpmError::UnknownIndex {
                kind: "SP state",
                index: s,
                limit: self.state_names.len(),
            });
        }
        Ok(())
    }

    fn check_command(&self, c: usize) -> Result<(), DpmError> {
        if c >= self.command_names.len() {
            return Err(DpmError::UnknownIndex {
                kind: "command",
                index: c,
                limit: self.command_names.len(),
            });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The provider of Example 3.1.
    fn example_3_1() -> ServiceProvider {
        let mut b = ServiceProvider::builder();
        let on = b.add_state("on");
        let off = b.add_state("off");
        let s_on = b.add_command("s_on");
        let s_off = b.add_command("s_off");
        b.transition(off, on, s_on, 0.1).unwrap();
        b.transition(on, off, s_off, 0.8).unwrap();
        b.service_rate(on, s_on, 0.8).unwrap();
        b.power(on, s_on, 3.0).unwrap();
        b.power(on, s_off, 4.0).unwrap();
        b.power(off, s_on, 4.0).unwrap();
        b.power(off, s_off, 0.0).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn builder_produces_expected_kernels() {
        let sp = example_3_1();
        assert_eq!(sp.num_states(), 2);
        assert_eq!(sp.num_commands(), 2);
        // Under s_on: off→on w.p. 0.1, on stays on.
        assert_eq!(sp.chain().prob(1, 0, 0), 0.1);
        assert_eq!(sp.chain().prob(1, 1, 0), 0.9);
        assert_eq!(sp.chain().prob(0, 0, 0), 1.0);
        // Under s_off: on→off w.p. 0.8, off absorbs.
        assert_eq!(sp.chain().prob(0, 1, 1), 0.8);
        assert_eq!(sp.chain().prob(1, 1, 1), 1.0);
    }

    #[test]
    fn service_rates_and_powers() {
        let sp = example_3_1();
        assert_eq!(sp.service_rate(0, 0), 0.8);
        assert_eq!(sp.service_rate(0, 1), 0.0);
        assert_eq!(sp.service_rate(1, 0), 0.0);
        assert_eq!(sp.power(0, 0), 3.0);
        assert_eq!(sp.power(0, 1), 4.0);
        assert_eq!(sp.power(1, 0), 4.0);
        assert_eq!(sp.power(1, 1), 0.0);
    }

    #[test]
    fn active_state_detection() {
        let sp = example_3_1();
        assert!(sp.is_active_state(0));
        assert!(!sp.is_active_state(1));
    }

    #[test]
    fn names_resolve_both_ways() {
        let sp = example_3_1();
        assert_eq!(sp.state_name(1), "off");
        assert_eq!(sp.state_index("off"), Some(1));
        assert_eq!(sp.command_name(0), "s_on");
        assert_eq!(sp.command_index("nope"), None);
    }

    #[test]
    fn expected_transition_time_matches_example() {
        let sp = example_3_1();
        // "the transition time from off to on when the s_on command has
        // been issued is ... 1/0.1 = 10 periods" (Example 3.1).
        let t = sp.expected_transition_time(1, 0, 0).unwrap();
        assert!((t - 10.0).abs() < 1e-9);
    }

    #[test]
    fn base_power_applies_to_all_commands() {
        let mut b = ServiceProvider::builder();
        let s = b.add_state_with_power("busy", 2.5);
        let c0 = b.add_command("a");
        let c1 = b.add_command("b");
        b.power(s, c1, 9.0).unwrap();
        let sp = b.build().unwrap();
        assert_eq!(sp.power(s, c0), 2.5);
        assert_eq!(sp.power(s, c1), 9.0);
    }

    #[test]
    fn rejects_overfull_row() {
        let mut b = ServiceProvider::builder();
        let s0 = b.add_state("a");
        let s1 = b.add_state("b");
        let s2 = b.add_state("c");
        let c = b.add_command("go");
        b.transition(s0, s1, c, 0.7).unwrap();
        b.transition(s0, s2, c, 0.7).unwrap();
        assert!(matches!(
            b.build(),
            Err(DpmError::TransitionMassExceeded { state: 0, .. })
        ));
    }

    #[test]
    fn rejects_bad_indices_and_probabilities() {
        let mut b = ServiceProvider::builder();
        let s = b.add_state("a");
        let c = b.add_command("go");
        assert!(matches!(
            b.transition(s, 7, c, 0.5),
            Err(DpmError::UnknownIndex { .. })
        ));
        assert!(matches!(
            b.transition(s, s, 3, 0.5),
            Err(DpmError::UnknownIndex { .. })
        ));
        assert!(matches!(
            b.transition(s, s, c, 1.5),
            Err(DpmError::InvalidProbability { .. })
        ));
        assert!(matches!(
            b.service_rate(s, c, -0.1),
            Err(DpmError::InvalidProbability { .. })
        ));
        assert!(matches!(
            b.power(s, c, f64::NAN),
            Err(DpmError::InvalidProbability { .. })
        ));
    }

    #[test]
    fn empty_builder_is_rejected() {
        assert!(matches!(
            ServiceProvider::builder().build(),
            Err(DpmError::IncompleteModel { .. })
        ));
    }

    #[test]
    fn multiple_destination_states_share_mass() {
        // A transient chain like the disk's spin-up path: state 0 goes to
        // 1 or 2 with explicit probabilities, rest stays.
        let mut b = ServiceProvider::builder();
        let s0 = b.add_state("start");
        let s1 = b.add_state("mid");
        let s2 = b.add_state("end");
        let c = b.add_command("go");
        b.transition(s0, s1, c, 0.3).unwrap();
        b.transition(s0, s2, c, 0.2).unwrap();
        let sp = b.build().unwrap();
        assert!((sp.chain().prob(0, 0, 0) - 0.5).abs() < 1e-12);
        assert!((sp.chain().prob(0, 1, 0) - 0.3).abs() < 1e-12);
        assert!((sp.chain().prob(0, 2, 0) - 0.2).abs() < 1e-12);
    }
}
