use dpm_linalg::Matrix;

use crate::SystemModel;

/// The cost metrics of Section III-B, evaluated on a composed system.
///
/// Each metric turns into a `num_states × num_commands` matrix over the
/// composite chain, ready to be used as an objective or constraint in the
/// occupation-measure LP:
///
/// * [`CostMetric::Power`] — the paper's `c(s, δ)`: the SP's power table
///   lifted to the composite space (`p(s_SP, a)`);
/// * [`CostMetric::QueueOccupancy`] — the default performance penalty
///   `d(s) = q` ("the number of requests in the queue"), which by Little's
///   law stands in for waiting time;
/// * [`CostMetric::RequestLossIndicator`] — the indicator of "SR issues a
///   request while the queue is full", the quantity the paper bounds when
///   it constrains request loss;
/// * [`CostMetric::ExpectedRequestLoss`] — the exact expected number of
///   requests lost per slice (a refinement: it accounts for service races
///   and multi-request bursts).
///
/// # Example
///
/// ```
/// use dpm_core::{CostMetric, ServiceProvider, ServiceQueue, ServiceRequester, SystemModel};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut b = ServiceProvider::builder();
/// let on = b.add_state_with_power("on", 2.0);
/// let cmd = b.add_command("work");
/// b.service_rate(on, cmd, 0.5)?;
/// let system = SystemModel::compose(
///     b.build()?,
///     ServiceRequester::two_state(0.5, 0.5)?,
///     ServiceQueue::with_capacity(2),
/// )?;
/// let power = CostMetric::Power.matrix(&system);
/// assert_eq!(power[(0, 0)], 2.0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum CostMetric {
    /// Power drawn by the service provider, `p(s_SP, a)`.
    Power,
    /// Queue backlog `q` (performance penalty of Section III-B).
    QueueOccupancy,
    /// 1 when the SR is issuing requests and the queue is full, else 0
    /// (the paper's request-loss constraint quantity).
    RequestLossIndicator,
    /// Exact expected requests lost per slice (computed during
    /// composition).
    ExpectedRequestLoss,
}

impl CostMetric {
    /// Materializes the metric as a `states × commands` matrix on the
    /// given system.
    pub fn matrix(self, system: &SystemModel) -> Matrix {
        match self {
            CostMetric::Power => system.custom_cost(|s, a| system.provider().power(s.sp, a)),
            CostMetric::QueueOccupancy => system.custom_cost(|s, _| s.queue as f64),
            CostMetric::RequestLossIndicator => system.custom_cost(|s, _| {
                let issuing = system.requester().requests(s.sr) > 0;
                let full = s.queue == system.queue().capacity();
                if issuing && full {
                    1.0
                } else {
                    0.0
                }
            }),
            CostMetric::ExpectedRequestLoss => system.expected_loss_matrix().clone(),
        }
    }

    /// Short name used in reports and benchmark tables.
    pub fn name(self) -> &'static str {
        match self {
            CostMetric::Power => "power",
            CostMetric::QueueOccupancy => "queue occupancy",
            CostMetric::RequestLossIndicator => "request-loss indicator",
            CostMetric::ExpectedRequestLoss => "expected request loss",
        }
    }
}

impl std::fmt::Display for CostMetric {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ServiceProvider, ServiceQueue, ServiceRequester, SystemState};

    fn small_system() -> SystemModel {
        let mut b = ServiceProvider::builder();
        let on = b.add_state_with_power("on", 2.0);
        let off = b.add_state_with_power("off", 0.0);
        let s_on = b.add_command("s_on");
        let s_off = b.add_command("s_off");
        b.transition(on, off, s_off, 1.0).unwrap();
        b.transition(off, on, s_on, 0.5).unwrap();
        b.service_rate(on, s_on, 0.9).unwrap();
        b.power(off, s_on, 3.0).unwrap();
        let sp = b.build().unwrap();
        let sr = ServiceRequester::two_state(0.3, 0.7).unwrap();
        SystemModel::compose(sp, sr, ServiceQueue::with_capacity(1)).unwrap()
    }

    #[test]
    fn power_lifts_provider_table() {
        let system = small_system();
        let m = CostMetric::Power.matrix(&system);
        for s in 0..system.num_states() {
            let st = system.state_of(s);
            assert_eq!(m[(s, 0)], system.provider().power(st.sp, 0));
            assert_eq!(m[(s, 1)], system.provider().power(st.sp, 1));
        }
        // The off-state wake power override survives lifting.
        let off_idx = system
            .state_index(SystemState {
                sp: 1,
                sr: 0,
                queue: 0,
            })
            .unwrap();
        assert_eq!(m[(off_idx, 0)], 3.0);
    }

    #[test]
    fn queue_occupancy_counts_backlog() {
        let system = small_system();
        let m = CostMetric::QueueOccupancy.matrix(&system);
        for s in 0..system.num_states() {
            assert_eq!(m[(s, 0)], system.state_of(s).queue as f64);
        }
    }

    #[test]
    fn loss_indicator_matches_definition() {
        let system = small_system();
        let m = CostMetric::RequestLossIndicator.matrix(&system);
        for s in 0..system.num_states() {
            let st = system.state_of(s);
            let expect = if st.sr == 1 && st.queue == 1 {
                1.0
            } else {
                0.0
            };
            assert_eq!(m[(s, 0)], expect, "state {}", system.state_label(s));
        }
    }

    #[test]
    fn expected_loss_is_bounded_by_indicator_rate() {
        // Expected loss can only occur when the indicator allows it, and is
        // at most the arrival count.
        let system = small_system();
        let exact = CostMetric::ExpectedRequestLoss.matrix(&system);
        for s in 0..system.num_states() {
            let st = system.state_of(s);
            for a in 0..system.num_commands() {
                let v = exact[(s, a)];
                assert!(v >= 0.0);
                if st.queue < system.queue().capacity() {
                    // Queue not full: a single-request SR cannot lose.
                    assert!(v < 1.0);
                }
            }
        }
    }

    #[test]
    fn names_are_stable() {
        assert_eq!(CostMetric::Power.to_string(), "power");
        assert_eq!(CostMetric::QueueOccupancy.name(), "queue occupancy");
    }
}
