use std::error::Error;
use std::fmt;

use dpm_markov::MarkovError;
use dpm_mdp::MdpError;

/// Errors produced while building system models or optimizing policies.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum DpmError {
    /// A model component referenced a state or command that does not exist.
    UnknownIndex {
        /// What kind of entity ("SP state", "command", ...).
        kind: &'static str,
        /// The offending index.
        index: usize,
        /// The valid range's exclusive upper bound.
        limit: usize,
    },
    /// A probability (transition, service rate) was outside `[0, 1]`.
    InvalidProbability {
        /// Where the probability was supplied.
        context: String,
        /// The offending value.
        value: f64,
    },
    /// The outgoing transition probabilities of a state exceed one.
    TransitionMassExceeded {
        /// SP state whose row overflows.
        state: usize,
        /// Command under which it overflows.
        command: usize,
        /// The row total.
        total: f64,
    },
    /// A component was built without the minimum structure (no states, no
    /// commands, empty request table, ...).
    IncompleteModel {
        /// Description of what is missing.
        reason: String,
    },
    /// The optimizer was configured inconsistently (no horizon, conflicting
    /// goal/constraints, bad initial state, ...).
    BadConfiguration {
        /// Description of the inconsistency.
        reason: String,
    },
    /// The requested constraint combination admits no policy — the paper's
    /// `g(C) = +∞` (infeasible region of Fig. 6).
    Infeasible,
    /// An underlying MDP/LP failure.
    Mdp(MdpError),
    /// An underlying Markov-chain failure.
    Markov(MarkovError),
}

impl fmt::Display for DpmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DpmError::UnknownIndex { kind, index, limit } => {
                write!(f, "{kind} index {index} out of range (limit {limit})")
            }
            DpmError::InvalidProbability { context, value } => {
                write!(f, "{context}: {value} is not a probability")
            }
            DpmError::TransitionMassExceeded {
                state,
                command,
                total,
            } => write!(
                f,
                "outgoing transition probabilities of state {state} under command {command} sum to {total} > 1"
            ),
            DpmError::IncompleteModel { reason } => write!(f, "incomplete model: {reason}"),
            DpmError::BadConfiguration { reason } => write!(f, "bad configuration: {reason}"),
            DpmError::Infeasible => write!(
                f,
                "policy optimization is infeasible under the given constraints"
            ),
            DpmError::Mdp(e) => write!(f, "mdp: {e}"),
            DpmError::Markov(e) => write!(f, "markov: {e}"),
        }
    }
}

impl Error for DpmError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            DpmError::Mdp(e) => Some(e),
            DpmError::Markov(e) => Some(e),
            _ => None,
        }
    }
}

impl From<MdpError> for DpmError {
    fn from(e: MdpError) -> Self {
        match e {
            MdpError::Infeasible => DpmError::Infeasible,
            other => DpmError::Mdp(other),
        }
    }
}

impl From<MarkovError> for DpmError {
    fn from(e: MarkovError) -> Self {
        DpmError::Markov(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn infeasible_maps_through() {
        assert_eq!(DpmError::from(MdpError::Infeasible), DpmError::Infeasible);
    }

    #[test]
    fn display_is_informative() {
        let e = DpmError::TransitionMassExceeded {
            state: 1,
            command: 2,
            total: 1.5,
        };
        let s = e.to_string();
        assert!(s.contains("state 1") && s.contains("command 2") && s.contains("1.5"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<DpmError>();
    }
}
