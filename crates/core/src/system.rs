use dpm_linalg::Matrix;
use dpm_markov::{ControlledMarkovChain, StateIndexer, StochasticMatrix};

use crate::{DpmError, ServiceProvider, ServiceQueue, ServiceRequester};

/// A composite system state: the triple `(s_SP, s_SR, s_SQ)` of
/// Section III ("the system state is the concatenation of the states of
/// SP, SR, and SQ").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SystemState {
    /// Service-provider state.
    pub sp: usize,
    /// Service-requester (workload) state.
    pub sr: usize,
    /// Queue backlog.
    pub queue: usize,
}

/// The composed power-managed system: one controlled Markov chain over
/// `S_SP × S_SR × S_SQ` — the output of the paper's *Markov composer*
/// (Fig. 7), implementing equation (4) with all queue corner cases.
///
/// Composition semantics (matching Example 3.5): in one slice, under
/// command `a`,
///
/// 1. the SP moves `s_p → s_p'` with `P_SP(s_p → s_p' | a)`;
/// 2. the SR moves `s_r → s_r'` with `P_SR(s_r → s_r')`, and `r(s_r')`
///    new requests arrive during the slice;
/// 3. the queue serves one pending/incoming request with probability
///    `σ(s_p, a)` and absorbs the arrivals, losing whatever exceeds its
///    capacity.
///
/// The factors are conditionally independent given the command, so the
/// composite transition probability is the product of the three — exactly
/// the structure of the paper's worked transition
/// `(on,0,0) → (on,1,0) = p_{01} · σ_{on}(s_on) · p_{on,on}(s_on)`.
///
/// `SystemModel` also carries the cost structure needed by the optimizer:
/// the power matrix `p(s, a)`, and per-slice expected request losses.
#[derive(Debug, Clone)]
pub struct SystemModel {
    sp: ServiceProvider,
    sr: ServiceRequester,
    queue: ServiceQueue,
    indexer: StateIndexer,
    chain: ControlledMarkovChain,
    /// Expected requests lost per slice, per (composite state, command).
    expected_loss: Matrix,
}

impl SystemModel {
    /// Composes provider, requester and queue into the monolithic system
    /// chain (equation (4)).
    ///
    /// # Errors
    ///
    /// Propagates component validation failures; composition itself cannot
    /// fail for validated components.
    pub fn compose(
        sp: ServiceProvider,
        sr: ServiceRequester,
        queue: ServiceQueue,
    ) -> Result<Self, DpmError> {
        let n_sp = sp.num_states();
        let n_sr = sr.num_states();
        let n_q = queue.num_states();
        let m = sp.num_commands();
        let indexer = StateIndexer::new(&[n_sp, n_sr, n_q])?;
        let n = indexer.num_states();

        let sr_kernel = sr.chain().transition_matrix();
        let mut kernels = Vec::with_capacity(m);
        let mut expected_loss = Matrix::zeros(n, m);

        for a in 0..m {
            let mut mat = Matrix::zeros(n, n);
            for s in 0..n {
                let coords = indexer.unflatten(s);
                let (sp_s, sr_s, q_s) = (coords[0], coords[1], coords[2]);
                let sigma = sp.service_rate(sp_s, a);
                let mut loss_acc = 0.0;
                for sp_n in 0..n_sp {
                    let p_sp = sp.chain().prob(sp_s, sp_n, a);
                    if p_sp == 0.0 {
                        continue;
                    }
                    for sr_n in 0..n_sr {
                        let p_sr = sr_kernel.prob(sr_s, sr_n);
                        if p_sr == 0.0 {
                            continue;
                        }
                        let arrivals = sr.requests(sr_n);
                        let (q_row, loss) = queue.kernel_row(q_s, sigma, arrivals)?;
                        // Loss depends only on (q_s, sigma, arrivals), so
                        // accumulate it once per SR destination (weighting
                        // by the SP branch keeps the total correct since
                        // Σ p_sp = 1).
                        loss_acc += p_sp * p_sr * loss;
                        for (q_n, &p_q) in q_row.iter().enumerate() {
                            if p_q == 0.0 {
                                continue;
                            }
                            let t = indexer
                                .flatten(&[sp_n, sr_n, q_n])
                                .expect("indices in range by construction");
                            mat[(s, t)] += p_sp * p_sr * p_q;
                        }
                    }
                }
                expected_loss[(s, a)] = loss_acc;
            }
            kernels.push(StochasticMatrix::from_matrix(mat)?);
        }

        Ok(SystemModel {
            sp,
            sr,
            queue,
            indexer,
            chain: ControlledMarkovChain::new(kernels)?,
            expected_loss,
        })
    }

    /// Number of composite states (`|S_SP| · |S_SR| · |S_SQ|`).
    pub fn num_states(&self) -> usize {
        self.indexer.num_states()
    }

    /// Number of power-manager commands.
    pub fn num_commands(&self) -> usize {
        self.sp.num_commands()
    }

    /// The composed controlled chain.
    pub fn chain(&self) -> &ControlledMarkovChain {
        &self.chain
    }

    /// The service provider.
    pub fn provider(&self) -> &ServiceProvider {
        &self.sp
    }

    /// The service requester.
    pub fn requester(&self) -> &ServiceRequester {
        &self.sr
    }

    /// The queue.
    pub fn queue(&self) -> &ServiceQueue {
        &self.queue
    }

    /// Flattens a composite state to its chain index.
    ///
    /// # Errors
    ///
    /// [`DpmError::UnknownIndex`] for out-of-range components.
    pub fn state_index(&self, state: SystemState) -> Result<usize, DpmError> {
        self.indexer
            .flatten(&[state.sp, state.sr, state.queue])
            .map_err(|_| DpmError::UnknownIndex {
                kind: "system state",
                index: state.sp,
                limit: self.num_states(),
            })
    }

    /// Recovers the composite state of a chain index.
    ///
    /// # Panics
    ///
    /// Panics when `index` is out of range.
    pub fn state_of(&self, index: usize) -> SystemState {
        let c = self.indexer.unflatten(index);
        SystemState {
            sp: c[0],
            sr: c[1],
            queue: c[2],
        }
    }

    /// Human-readable label such as `(on, busy, q=1)`.
    ///
    /// # Panics
    ///
    /// Panics when `index` is out of range.
    pub fn state_label(&self, index: usize) -> String {
        let s = self.state_of(index);
        format!(
            "({}, {}, q={})",
            self.sp.state_name(s.sp),
            self.sr.state_name(s.sr),
            s.queue
        )
    }

    /// A deterministic initial distribution concentrated on `state`.
    ///
    /// # Errors
    ///
    /// Propagates [`Self::state_index`] failures.
    pub fn point_distribution(&self, state: SystemState) -> Result<Vec<f64>, DpmError> {
        let idx = self.state_index(state)?;
        let mut q = vec![0.0; self.num_states()];
        q[idx] = 1.0;
        Ok(q)
    }

    /// Expected requests lost per slice in `(state, command)` — the exact
    /// loss rate used for request-loss constraints.
    ///
    /// # Panics
    ///
    /// Panics on out-of-range indices.
    pub fn expected_loss(&self, state: usize, command: usize) -> f64 {
        self.expected_loss[(state, command)]
    }

    /// The full expected-loss matrix.
    pub fn expected_loss_matrix(&self) -> &Matrix {
        &self.expected_loss
    }

    /// Builds an arbitrary `num_states × num_commands` cost matrix from a
    /// closure over `(composite state, command)` — the hook for custom
    /// penalties like the CPU case study's "SR busy while SP asleep".
    pub fn custom_cost(&self, mut f: impl FnMut(SystemState, usize) -> f64) -> Matrix {
        Matrix::from_fn(self.num_states(), self.num_commands(), |s, a| {
            f(self.state_of(s), a)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The running example system (Examples 3.1–3.5): two SP states, two
    /// commands, bursty two-state SR, queue capacity 1 ⇒ 8 states.
    fn example_system() -> SystemModel {
        let mut b = ServiceProvider::builder();
        let on = b.add_state("on");
        let off = b.add_state("off");
        let s_on = b.add_command("s_on");
        let s_off = b.add_command("s_off");
        b.transition(off, on, s_on, 0.1).unwrap();
        b.transition(on, off, s_off, 0.8).unwrap();
        b.service_rate(on, s_on, 0.8).unwrap();
        b.power(on, s_on, 3.0).unwrap();
        b.power(on, s_off, 4.0).unwrap();
        b.power(off, s_on, 4.0).unwrap();
        let sp = b.build().unwrap();
        let sr = ServiceRequester::two_state(0.15, 0.85).unwrap();
        SystemModel::compose(sp, sr, ServiceQueue::with_capacity(1)).unwrap()
    }

    #[test]
    fn example_system_has_eight_states() {
        let system = example_system();
        assert_eq!(system.num_states(), 8);
        assert_eq!(system.num_commands(), 2);
    }

    #[test]
    fn kernels_are_row_stochastic() {
        // from_matrix would have failed otherwise, but assert explicitly.
        let system = example_system();
        for a in 0..system.num_commands() {
            let k = system.chain().kernel(a);
            for s in 0..system.num_states() {
                let sum: f64 = k.row(s).iter().sum();
                assert!((sum - 1.0).abs() < 1e-9, "row {s} cmd {a} sums to {sum}");
            }
        }
    }

    #[test]
    fn worked_transition_of_example_3_5() {
        // (on, idle, 0) → (on, busy, 0) under s_on:
        //   p_sr(idle→busy) · σ(on, s_on) · p_sp(on→on | s_on)
        //   = 0.15 · 0.8 · 1.0 = 0.12
        let system = example_system();
        let from = system
            .state_index(SystemState {
                sp: 0,
                sr: 0,
                queue: 0,
            })
            .unwrap();
        let to = system
            .state_index(SystemState {
                sp: 0,
                sr: 1,
                queue: 0,
            })
            .unwrap();
        let p = system.chain().prob(from, to, 0);
        assert!((p - 0.12).abs() < 1e-12, "got {p}");
        // Under s_off the SP cannot serve: the same queue-clearing
        // transition requires staying on (w.p. 0.2) and σ = 0, so the
        // queue fills instead: (on, busy, 0) is unreachable... precisely:
        // P = p_sr(0→1) · p_sp(on→on|s_off) · P(queue 0→0 | σ=0, r=1) = 0.
        let p_off = system.chain().prob(from, to, 1);
        assert_eq!(p_off, 0.0);
    }

    #[test]
    fn queue_fills_when_provider_is_off() {
        // (off, busy, 0) --s_off--> (off, busy, 1): SR stays busy (0.85),
        // SP stays off (1.0), queue gains the arrival (σ=0 ⇒ w.p. 1).
        let system = example_system();
        let from = system
            .state_index(SystemState {
                sp: 1,
                sr: 1,
                queue: 0,
            })
            .unwrap();
        let to = system
            .state_index(SystemState {
                sp: 1,
                sr: 1,
                queue: 1,
            })
            .unwrap();
        let p = system.chain().prob(from, to, 1);
        assert!((p - 0.85).abs() < 1e-12);
    }

    #[test]
    fn expected_loss_fires_only_on_full_queue_without_service() {
        let system = example_system();
        // Full queue, busy SR, SP off: an arrival (p 0.85) is lost with
        // certainty since σ = 0.
        let full_off = system
            .state_index(SystemState {
                sp: 1,
                sr: 1,
                queue: 1,
            })
            .unwrap();
        let loss = system.expected_loss(full_off, 1);
        assert!((loss - 0.85).abs() < 1e-12);
        // Empty queue, idle SR: nothing can be lost.
        let empty = system
            .state_index(SystemState {
                sp: 0,
                sr: 0,
                queue: 0,
            })
            .unwrap();
        assert_eq!(system.expected_loss(empty, 0), 0.0);
        // Full queue but SP serving: loss drops to (1 − σ) · p_busy.
        let full_on = system
            .state_index(SystemState {
                sp: 0,
                sr: 1,
                queue: 1,
            })
            .unwrap();
        assert!((system.expected_loss(full_on, 0) - 0.85 * 0.2).abs() < 1e-12);
    }

    #[test]
    fn state_round_trip_and_labels() {
        let system = example_system();
        for i in 0..system.num_states() {
            let s = system.state_of(i);
            assert_eq!(system.state_index(s).unwrap(), i);
        }
        let label = system.state_label(0);
        assert!(label.contains("on") && label.contains("q=0"));
        assert!(matches!(
            system.state_index(SystemState {
                sp: 9,
                sr: 0,
                queue: 0
            }),
            Err(DpmError::UnknownIndex { .. })
        ));
    }

    #[test]
    fn point_distribution_is_one_hot() {
        let system = example_system();
        let q = system
            .point_distribution(SystemState {
                sp: 0,
                sr: 0,
                queue: 0,
            })
            .unwrap();
        assert_eq!(q.iter().filter(|&&v| v == 1.0).count(), 1);
        assert_eq!(q.iter().sum::<f64>(), 1.0);
    }

    #[test]
    fn custom_cost_sees_composite_state() {
        let system = example_system();
        // Penalize being off while the SR is busy — the CPU-style penalty.
        let cost = system.custom_cost(|s, _| if s.sp == 1 && s.sr == 1 { 1.0 } else { 0.0 });
        let idx = system
            .state_index(SystemState {
                sp: 1,
                sr: 1,
                queue: 0,
            })
            .unwrap();
        assert_eq!(cost[(idx, 0)], 1.0);
        let idx2 = system
            .state_index(SystemState {
                sp: 0,
                sr: 1,
                queue: 0,
            })
            .unwrap();
        assert_eq!(cost[(idx2, 0)], 0.0);
    }

    #[test]
    fn multi_request_bursts_overflow_correctly() {
        // A requester issuing 3 requests at once against capacity 1: at
        // least one request lost per burst slice, even while serving.
        let mut b = ServiceProvider::builder();
        let on = b.add_state("on");
        let c = b.add_command("go");
        b.service_rate(on, c, 1.0).unwrap();
        let sp = b.build().unwrap();
        let t = StochasticMatrix::from_rows(&[&[0.0, 1.0], &[1.0, 0.0]]).unwrap();
        let sr = ServiceRequester::new(t, vec![0, 3]).unwrap();
        let system = SystemModel::compose(sp, sr, ServiceQueue::with_capacity(1)).unwrap();
        // From (on, r0, empty): SR surely moves to the 3-request state, one
        // is served (σ=1), one enqueued, one lost.
        let from = system
            .state_index(SystemState {
                sp: 0,
                sr: 0,
                queue: 0,
            })
            .unwrap();
        assert!((system.expected_loss(from, 0) - 1.0).abs() < 1e-12);
        let to_full = system
            .state_index(SystemState {
                sp: 0,
                sr: 1,
                queue: 1,
            })
            .unwrap();
        assert!((system.chain().prob(from, to_full, 0) - 1.0).abs() < 1e-12);
    }
}
