use std::sync::Arc;

use dpm_linalg::Matrix;
use dpm_lp::{InteriorPoint, LpSolver, ReloadKind, RevisedSimplex, Simplex, SolveReport};
use dpm_mdp::{
    ConstrainedMdp, ConstrainedSession, ConstrainedSolution, CostConstraint, DiscountedMdp,
    RandomizedPolicy,
};

use crate::{CostMetric, DpmError, SystemModel, SystemState};

/// Which cost is the objective — the paper's PO1 (performance optimization
/// under power constraint) and PO2 (power optimization under performance
/// constraint).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum OptimizationGoal {
    /// PO2 / LP4: minimize power, constrain performance. The default,
    /// matching the paper's case studies.
    #[default]
    MinimizePower,
    /// PO1 / LP3: minimize the performance penalty, constrain power.
    MinimizePerformancePenalty,
}

/// Which LP algorithm the optimizer uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum SolverKind {
    /// Revised simplex over the sparse occupation LP, with an
    /// LU-factorized basis. The default: balance rows carry only a
    /// handful of nonzeros per state, which this engine exploits while
    /// the dense tableau pays for the full `rows × cols` product on
    /// every pivot.
    #[default]
    RevisedSimplex,
    /// Two-phase primal simplex on a dense tableau (exact infeasibility
    /// detection); kept as the independent cross-check of the sparse
    /// path.
    Simplex,
    /// Mehrotra predictor–corrector interior point (the PCx-style engine
    /// of the paper's tool).
    InteriorPoint,
}

impl SolverKind {
    fn instantiate(self) -> Box<dyn LpSolver> {
        match self {
            SolverKind::RevisedSimplex => Box::new(RevisedSimplex::new()),
            SolverKind::Simplex => Box::new(Simplex::new()),
            SolverKind::InteriorPoint => Box::new(InteriorPoint::new()),
        }
    }
}

/// Which bounded cost a [`PreparedOptimization`] re-solve (or a
/// [`ParetoExplorer`](crate::ParetoExplorer) sweep) retargets.
///
/// Each variant names one of the optimizer's built-in constraints; the
/// constraint must have been given an initial bound before
/// [`PolicyOptimizer::prepare`] so its row exists in the loaded LP.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SweepTarget {
    /// The performance-penalty bound (PO2/LP4's constraint; the paper's
    /// usual x-axis).
    PerformancePenalty,
    /// The power bound (PO1/LP3's constraint).
    Power,
    /// The request-loss bound.
    RequestLoss,
}

impl SweepTarget {
    /// The constraint name this target retargets — the same string the
    /// builder methods register with the constrained MDP.
    fn constraint_name(self) -> &'static str {
        match self {
            SweepTarget::PerformancePenalty => "performance",
            SweepTarget::Power => "power",
            SweepTarget::RequestLoss => "request loss",
        }
    }
}

/// The cost matrices of one prepared optimization, derived from the
/// system **once** and shared (cheaply, by reference count) by every
/// solution a sweep produces.
#[derive(Debug)]
struct CostBundle {
    power: Matrix,
    performance: Matrix,
    loss: Matrix,
}

/// The policy-optimization tool of Section IV/V: configures and solves the
/// constrained problems PO1/PO2 on a composed [`SystemModel`] and extracts
/// the optimal (possibly randomized) Markov stationary policy.
///
/// Bounds are expressed **per slice**, matching the paper's prose
/// ("average queue length not larger than 0.5", "request-loss probability
/// smaller than 20%"); internally they are scaled by the horizon
/// `1/(1−α)` into the total-discounted bounds of LP3/LP4.
///
/// # Example
///
/// ```no_run
/// use dpm_core::{OptimizationGoal, PolicyOptimizer, SolverKind, SystemModel};
///
/// # fn solve(system: &SystemModel) -> Result<(), dpm_core::DpmError> {
/// let solution = PolicyOptimizer::new(system)
///     .horizon(1_000_000.0)
///     .goal(OptimizationGoal::MinimizePower)
///     .max_performance_penalty(0.5)
///     .max_request_loss_rate(0.01)
///     .solver(SolverKind::Simplex)
///     .solve()?;
/// println!("power = {:.3} W", solution.power_per_slice());
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct PolicyOptimizer<'a> {
    system: &'a SystemModel,
    discount: Option<f64>,
    goal: OptimizationGoal,
    max_performance: Option<f64>,
    max_power: Option<f64>,
    max_loss: Option<f64>,
    loss_metric: CostMetric,
    performance_matrix: Option<Matrix>,
    custom_constraints: Vec<(String, Matrix, f64)>,
    initial: Option<Vec<f64>>,
    solver: SolverKind,
}

impl<'a> PolicyOptimizer<'a> {
    /// Starts configuring an optimization on `system`.
    pub fn new(system: &'a SystemModel) -> Self {
        PolicyOptimizer {
            system,
            discount: None,
            goal: OptimizationGoal::default(),
            max_performance: None,
            max_power: None,
            max_loss: None,
            loss_metric: CostMetric::RequestLossIndicator,
            performance_matrix: None,
            custom_constraints: Vec::new(),
            initial: None,
            solver: SolverKind::default(),
        }
    }

    /// Sets the discount factor `α ∈ (0, 1)` directly.
    #[must_use = "builder methods return the configured optimizer; dropping it discards the configuration"]
    pub fn discount(mut self, alpha: f64) -> Self {
        self.discount = Some(alpha);
        self
    }

    /// Sets the expected session length in slices; the discount becomes
    /// `α = 1 − 1/horizon` (Section IV: `E[T] = 1/(1−α)`).
    #[must_use = "builder methods return the configured optimizer; dropping it discards the configuration"]
    pub fn horizon(mut self, slices: f64) -> Self {
        self.discount = Some(1.0 - 1.0 / slices);
        self
    }

    /// Chooses the objective (PO1 vs PO2).
    #[must_use = "builder methods return the configured optimizer; dropping it discards the configuration"]
    pub fn goal(mut self, goal: OptimizationGoal) -> Self {
        self.goal = goal;
        self
    }

    /// Bounds the per-slice performance penalty (by default the average
    /// queue occupancy).
    #[must_use = "builder methods return the configured optimizer; dropping it discards the configuration"]
    pub fn max_performance_penalty(mut self, bound: f64) -> Self {
        self.max_performance = Some(bound);
        self
    }

    /// Bounds the per-slice power (Watts) — the constraint of PO1.
    #[must_use = "builder methods return the configured optimizer; dropping it discards the configuration"]
    pub fn max_power(mut self, bound: f64) -> Self {
        self.max_power = Some(bound);
        self
    }

    /// Bounds the per-slice request-loss rate.
    #[must_use = "builder methods return the configured optimizer; dropping it discards the configuration"]
    pub fn max_request_loss_rate(mut self, bound: f64) -> Self {
        self.max_loss = Some(bound);
        self
    }

    /// Uses the exact expected-loss metric instead of the paper's
    /// "request while queue full" indicator for the loss constraint.
    #[must_use = "builder methods return the configured optimizer; dropping it discards the configuration"]
    pub fn use_expected_loss(mut self) -> Self {
        self.loss_metric = CostMetric::ExpectedRequestLoss;
        self
    }

    /// Replaces the performance-penalty cost (default: queue occupancy)
    /// with a custom `states × commands` matrix — e.g. the CPU case
    /// study's "SR busy while SP asleep" indicator.
    #[must_use = "builder methods return the configured optimizer; dropping it discards the configuration"]
    pub fn performance_cost(mut self, matrix: Matrix) -> Self {
        self.performance_matrix = Some(matrix);
        self
    }

    /// Adds an arbitrary extra per-slice cost bound.
    #[must_use = "builder methods return the configured optimizer; dropping it discards the configuration"]
    pub fn custom_constraint(
        mut self,
        name: impl Into<String>,
        cost: Matrix,
        bound_per_slice: f64,
    ) -> Self {
        self.custom_constraints
            .push((name.into(), cost, bound_per_slice));
        self
    }

    /// Sets a deterministic initial composite state (default: SP state 0,
    /// SR state 0, empty queue — "the service provider is initially on, no
    /// requests are issued and the queue is empty").
    ///
    /// # Errors
    ///
    /// [`DpmError::UnknownIndex`] for out-of-range components.
    pub fn initial_state(mut self, state: SystemState) -> Result<Self, DpmError> {
        self.initial = Some(self.system.point_distribution(state)?);
        Ok(self)
    }

    /// Sets a full initial distribution.
    #[must_use = "builder methods return the configured optimizer; dropping it discards the configuration"]
    pub fn initial_distribution(mut self, distribution: Vec<f64>) -> Self {
        self.initial = Some(distribution);
        self
    }

    /// Selects the LP engine.
    #[must_use = "builder methods return the configured optimizer; dropping it discards the configuration"]
    pub fn solver(mut self, kind: SolverKind) -> Self {
        self.solver = kind;
        self
    }

    /// Prepares the configured problem for (repeated) solving: composes
    /// the cost matrices, registers the constraints, emits the occupation
    /// LP **once**, and loads it into a solver session. The returned
    /// [`PreparedOptimization`] solves under the configured bounds
    /// ([`PreparedOptimization::solve`]) and re-solves cheaply — warm
    /// started on the default engine — when a bound is retargeted
    /// ([`PreparedOptimization::resolve_with_bound`]).
    ///
    /// # Errors
    ///
    /// * [`DpmError::BadConfiguration`] when no horizon/discount was set
    ///   or the discount is out of range.
    /// * Propagated MDP/LP build failures. Infeasibility surfaces from
    ///   the solve calls, not from preparation.
    pub fn prepare(&self) -> Result<PreparedOptimization, DpmError> {
        let discount = self.discount.ok_or_else(|| DpmError::BadConfiguration {
            reason: "set a horizon or discount factor before solving".to_string(),
        })?;
        if !(0.0 < discount && discount < 1.0) {
            return Err(DpmError::BadConfiguration {
                reason: format!("discount {discount} not in (0, 1)"),
            });
        }

        // Derived once per preparation, shared by every solution.
        let costs = Arc::new(CostBundle {
            power: CostMetric::Power.matrix(self.system),
            performance: self
                .performance_matrix
                .clone()
                .unwrap_or_else(|| CostMetric::QueueOccupancy.matrix(self.system)),
            loss: self.loss_metric.matrix(self.system),
        });

        let objective = match self.goal {
            OptimizationGoal::MinimizePower => costs.power.clone(),
            OptimizationGoal::MinimizePerformancePenalty => costs.performance.clone(),
        };

        let mdp = DiscountedMdp::new(self.system.chain().clone(), objective, discount)?;
        let mut constrained = ConstrainedMdp::new(mdp);
        if let Some(bound) = self.max_performance {
            constrained = constrained.with_constraint(CostConstraint::per_slice(
                "performance",
                costs.performance.clone(),
                bound,
                discount,
            ));
        }
        if let Some(bound) = self.max_power {
            constrained = constrained.with_constraint(CostConstraint::per_slice(
                "power",
                costs.power.clone(),
                bound,
                discount,
            ));
        }
        if let Some(bound) = self.max_loss {
            constrained = constrained.with_constraint(CostConstraint::per_slice(
                "request loss",
                costs.loss.clone(),
                bound,
                discount,
            ));
        }
        for (name, cost, bound) in &self.custom_constraints {
            constrained = constrained.with_constraint(CostConstraint::per_slice(
                name.clone(),
                cost.clone(),
                *bound,
                discount,
            ));
        }

        let initial = match &self.initial {
            Some(q) => q.clone(),
            None => self.system.point_distribution(SystemState {
                sp: 0,
                sr: 0,
                queue: 0,
            })?,
        };
        let solver = self.solver.instantiate();
        let session = constrained.into_session(&initial, solver.as_ref())?;

        Ok(PreparedOptimization {
            session,
            discount,
            goal: self.goal,
            costs,
            chain_dependent_costs: self.max_loss.is_some()
                && self.loss_metric == CostMetric::ExpectedRequestLoss,
        })
    }

    /// Solves the configured problem.
    ///
    /// One-shot convenience over [`Self::prepare`]: to solve the *same*
    /// model under several bounds, prepare once and use
    /// [`PreparedOptimization::resolve_with_bound`] (or a
    /// [`ParetoExplorer`](crate::ParetoExplorer) sweep) so the LP build
    /// and the solver basis are reused across points.
    ///
    /// # Errors
    ///
    /// * [`DpmError::BadConfiguration`] when no horizon/discount was set
    ///   or the discount is out of range.
    /// * [`DpmError::Infeasible`] when the constraints admit no policy
    ///   (the paper's `g(C) = +∞`).
    /// * Propagated LP/MDP failures.
    pub fn solve(&self) -> Result<PolicySolution, DpmError> {
        self.prepare()?.solve()
    }
}

/// A policy optimization prepared for repeated parametric re-solves: the
/// compose chain, cost matrices and occupation LP are built **once**, and
/// each [`Self::resolve_with_bound`] call retargets a single LP row and
/// re-solves — warm-started from the previous optimal basis on the
/// default [`SolverKind::RevisedSimplex`] engine.
///
/// Created by [`PolicyOptimizer::prepare`]. This is what
/// [`ParetoExplorer`](crate::ParetoExplorer) runs its sweeps through.
///
/// # Example
///
/// ```no_run
/// use dpm_core::{PolicyOptimizer, SweepTarget, SystemModel};
///
/// # fn run(system: &SystemModel) -> Result<(), dpm_core::DpmError> {
/// let mut prepared = PolicyOptimizer::new(system)
///     .horizon(100_000.0)
///     .max_performance_penalty(0.5)
///     .prepare()?;
/// for bound in [0.5, 0.4, 0.3, 0.2] {
///     let solution =
///         prepared.resolve_with_bound(SweepTarget::PerformancePenalty, bound)?;
///     println!(
///         "queue ≤ {bound}: {:.3} W ({})",
///         solution.power_per_slice(),
///         if solution.solve_report().warm_start { "warm" } else { "cold" },
///     );
/// }
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct PreparedOptimization {
    session: ConstrainedSession,
    discount: f64,
    goal: OptimizationGoal,
    costs: Arc<CostBundle>,
    /// `true` when a bounded cost matrix was *derived from the chain*
    /// (the exact expected-loss metric): such a problem cannot be
    /// retargeted to a new chain through [`Self::update_model`], because
    /// the stale matrix would certify the old workload's loss numbers.
    chain_dependent_costs: bool,
}

impl PreparedOptimization {
    /// Solves under the currently configured bounds.
    ///
    /// # Errors
    ///
    /// * [`DpmError::Infeasible`] when the bounds admit no policy; the
    ///   prepared state stays usable (retarget a bound and re-solve).
    /// * Propagated LP/MDP failures.
    pub fn solve(&mut self) -> Result<PolicySolution, DpmError> {
        let (solution, report) = self.session.solve()?;
        Ok(PolicySolution {
            solution,
            discount: self.discount,
            goal: self.goal,
            costs: Arc::clone(&self.costs),
            report,
        })
    }

    /// Retargets one built-in bound (per slice, the paper's convention)
    /// and re-solves. Equivalent to rebuilding the optimizer with the new
    /// bound and calling `solve`, but the LP is not re-emitted and the
    /// solver warm-starts when it can.
    ///
    /// # Errors
    ///
    /// * [`DpmError::BadConfiguration`] when `target` names a constraint
    ///   the preparation did not include (no initial bound was set), or
    ///   when `bound_per_slice` is NaN/∞.
    /// * Same solve-time contract as [`Self::solve`].
    pub fn resolve_with_bound(
        &mut self,
        target: SweepTarget,
        bound_per_slice: f64,
    ) -> Result<PolicySolution, DpmError> {
        self.resolve_with_named_bound(target.constraint_name(), bound_per_slice)
    }

    /// [`Self::resolve_with_bound`] for custom constraints, addressed by
    /// the name they were registered under
    /// ([`PolicyOptimizer::custom_constraint`]).
    ///
    /// # Errors
    ///
    /// Same contract as [`Self::resolve_with_bound`].
    pub fn resolve_with_named_bound(
        &mut self,
        name: &str,
        bound_per_slice: f64,
    ) -> Result<PolicySolution, DpmError> {
        if !bound_per_slice.is_finite() {
            return Err(DpmError::BadConfiguration {
                reason: format!("bound for `{name}` is not finite: {bound_per_slice}"),
            });
        }
        let k = self
            .session
            .problem()
            .constraints()
            .iter()
            .position(|c| c.name() == name)
            .ok_or_else(|| DpmError::BadConfiguration {
                reason: format!(
                    "constraint `{name}` was not configured before prepare(); \
                     set an initial bound so its LP row exists"
                ),
            })?;
        self.session.set_bound_per_slice(k, bound_per_slice)?;
        self.solve()
    }

    /// Swaps in a re-estimated transition structure of the same
    /// dimensions — the per-epoch "model drift" mutation of an online
    /// adaptation loop — rebuilding the loaded occupation LP in place
    /// through the session's
    /// [`reload`](dpm_lp::SolveSession::reload) path. Bounds (including
    /// any retargeted since preparation), cost matrices, discount and
    /// initial distribution carry over.
    ///
    /// On the default [`SolverKind::RevisedSimplex`] engine a
    /// same-support chain keeps the emitted program's sparsity pattern,
    /// so the swap is **warm** ([`ReloadKind::Warm`]): the next
    /// [`Self::solve`] repairs feasibility from the retained optimal
    /// basis in a handful of pivots instead of a cold two-phase solve.
    ///
    /// The cost matrices must be **chain-independent** for the swap to
    /// be meaningful: power, queue occupancy, the request-loss
    /// *indicator* and custom matrices keyed on the composite state all
    /// are; the exact expected-loss metric
    /// ([`PolicyOptimizer::use_expected_loss`]) is derived from the
    /// chain and is rejected here.
    ///
    /// # Errors
    ///
    /// * [`DpmError::BadConfiguration`] when the preparation bounded the
    ///   chain-derived expected-loss metric (see above).
    /// * Shape mismatches (the chain must match the prepared problem's
    ///   `(states, commands)`).
    /// * Propagated LP build/reload failures.
    pub fn update_model(
        &mut self,
        chain: &dpm_markov::ControlledMarkovChain,
    ) -> Result<ReloadKind, DpmError> {
        if self.chain_dependent_costs {
            return Err(DpmError::BadConfiguration {
                reason: "the prepared problem bounds the exact expected-loss metric, whose \
                         cost matrix is derived from the chain; it cannot be hot-swapped to \
                         a new chain (use the request-loss indicator metric, or re-prepare)"
                    .to_string(),
            });
        }
        Ok(self.session.update_model(chain)?)
    }

    /// Clones this prepared optimization into an independent sibling —
    /// same problem, bounds and warm basis, shared cost matrices (by
    /// reference count) and, on the default
    /// [`SolverKind::RevisedSimplex`] engine, a shared symbolic LU
    /// analysis: the sibling's first same-shape
    /// [`Self::update_model`]+[`Self::solve`] refactorizes along the
    /// parent's pivot order instead of repeating the Markowitz search.
    ///
    /// This is how a fleet controller turns one prepared problem per LP
    /// *shape* into one session per *cluster* without paying the LP
    /// emission or the symbolic analysis again.
    ///
    /// # Errors
    ///
    /// Propagated engine failures from the underlying session fork.
    pub fn fork(&self) -> Result<PreparedOptimization, DpmError> {
        Ok(PreparedOptimization {
            session: self.session.fork()?,
            discount: self.discount,
            goal: self.goal,
            costs: Arc::clone(&self.costs),
            chain_dependent_costs: self.chain_dependent_costs,
        })
    }

    /// Report of the most recent solve attempt, successful or not —
    /// how sweep drivers label infeasible points.
    pub fn last_report(&self) -> &SolveReport {
        self.session.last_report()
    }

    /// Caps the work of every subsequent solve with a
    /// [`SolveBudget`](dpm_lp::SolveBudget), passed through to the
    /// loaded LP session (see `ConstrainedSession::set_budget` in
    /// `dpm-mdp`): exhaustion surfaces as a recoverable
    /// `BudgetExhausted` error and the retained basis resumes on retry.
    pub fn set_budget(&mut self, budget: dpm_lp::SolveBudget) {
        self.session.set_budget(budget);
    }

    /// Asks the loaded engine to refactorize its retained basis from
    /// pristine data before the next solve — the recovery rung between
    /// a plain retry and a full re-preparation.
    pub fn force_refactor(&mut self) {
        self.session.force_refactor();
    }

    /// The discount factor the problem was prepared with.
    pub fn discount(&self) -> f64 {
        self.discount
    }
}

/// The result of a policy optimization: the optimal policy plus every
/// metric the paper reports, already normalized per slice.
#[derive(Debug, Clone)]
pub struct PolicySolution {
    solution: ConstrainedSolution,
    discount: f64,
    goal: OptimizationGoal,
    /// Shared with the prepared optimization that produced the solution —
    /// sweep points no longer clone three cost matrices each.
    costs: Arc<CostBundle>,
    report: SolveReport,
}

impl PolicySolution {
    /// The optimal randomized Markov stationary policy (equation (16)).
    pub fn policy(&self) -> &RandomizedPolicy {
        self.solution.policy()
    }

    /// The goal that was optimized.
    pub fn goal(&self) -> OptimizationGoal {
        self.goal
    }

    /// The discount factor used.
    pub fn discount(&self) -> f64 {
        self.discount
    }

    /// Expected session length `1/(1−α)` in slices.
    pub fn horizon(&self) -> f64 {
        1.0 / (1.0 - self.discount)
    }

    /// Expected power per slice (Watts) under the optimal policy.
    pub fn power_per_slice(&self) -> f64 {
        self.solution
            .occupation()
            .expected_cost_per_slice(&self.costs.power)
    }

    /// Expected performance penalty per slice (average queue occupancy,
    /// unless a custom penalty was installed).
    pub fn performance_per_slice(&self) -> f64 {
        self.solution
            .occupation()
            .expected_cost_per_slice(&self.costs.performance)
    }

    /// Expected request-loss rate per slice.
    pub fn loss_per_slice(&self) -> f64 {
        self.solution
            .occupation()
            .expected_cost_per_slice(&self.costs.loss)
    }

    /// How the LP engine reached this solution: warm vs cold start,
    /// pivots, refactorizations (see [`SolveReport`]).
    pub fn solve_report(&self) -> &SolveReport {
        &self.report
    }

    /// Objective value per slice (power or performance depending on the
    /// goal).
    pub fn objective_per_slice(&self) -> f64 {
        self.solution.objective_per_slice()
    }

    /// Total expected discounted objective (the raw LP value).
    pub fn objective_total(&self) -> f64 {
        self.solution.objective()
    }

    /// `true` when the optimal policy genuinely randomizes in some state —
    /// by Theorem A.2 this happens exactly when a constraint is active.
    pub fn is_randomized(&self) -> bool {
        !self.solution.policy().is_deterministic()
    }

    /// The underlying constrained-MDP solution (constraint values,
    /// occupation measure, ...).
    pub fn constrained(&self) -> &ConstrainedSolution {
        &self.solution
    }
}

impl std::fmt::Display for PolicySolution {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "optimal policy over horizon {:.0} slices (α = {}):",
            self.horizon(),
            self.discount
        )?;
        writeln!(f, "  power       = {:.4} W/slice", self.power_per_slice())?;
        writeln!(
            f,
            "  performance = {:.4} penalty/slice",
            self.performance_per_slice()
        )?;
        writeln!(f, "  loss rate   = {:.4} /slice", self.loss_per_slice())?;
        writeln!(
            f,
            "  policy      = {}",
            if self.is_randomized() {
                "randomized"
            } else {
                "deterministic"
            }
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ServiceProvider, ServiceQueue, ServiceRequester};

    fn example_system() -> SystemModel {
        let mut b = ServiceProvider::builder();
        let on = b.add_state("on");
        let off = b.add_state("off");
        let s_on = b.add_command("s_on");
        let s_off = b.add_command("s_off");
        b.transition(off, on, s_on, 0.1).unwrap();
        b.transition(on, off, s_off, 0.8).unwrap();
        b.service_rate(on, s_on, 0.8).unwrap();
        b.power(on, s_on, 3.0).unwrap();
        b.power(on, s_off, 4.0).unwrap();
        b.power(off, s_on, 4.0).unwrap();
        let sp = b.build().unwrap();
        // p(idle→busy) = 0.05 calibrates the feasibility floor to the
        // paper's Fig. 6 (min avg queue ≈ 0.175; ours is ≈ 0.163) — see
        // DESIGN.md on the reconstruction of the running example.
        let sr = ServiceRequester::two_state(0.05, 0.85).unwrap();
        SystemModel::compose(sp, sr, ServiceQueue::with_capacity(1)).unwrap()
    }

    #[test]
    fn requires_horizon() {
        let system = example_system();
        let err = PolicyOptimizer::new(&system).solve().unwrap_err();
        assert!(matches!(err, DpmError::BadConfiguration { .. }));
        let err = PolicyOptimizer::new(&system)
            .discount(1.5)
            .solve()
            .unwrap_err();
        assert!(matches!(err, DpmError::BadConfiguration { .. }));
    }

    #[test]
    fn example_a2_shape_power_constrained() {
        // The Example A.2 configuration: α = 0.99999, queue ≤ 0.5,
        // loss ≤ 0.2, minimize power. The paper reports 1.798 W — "almost
        // a factor of two" below the 3 W always-on policy — and a
        // randomized optimal policy. Our reconstruction (some matrix
        // digits were lost with the paper's figures) gives ≈ 1.74 W with
        // the same structure.
        let system = example_system();
        let solution = PolicyOptimizer::new(&system)
            .discount(0.99999)
            .goal(OptimizationGoal::MinimizePower)
            .max_performance_penalty(0.5)
            .max_request_loss_rate(0.2)
            .solve()
            .unwrap();
        assert!((solution.power_per_slice() - 1.738).abs() < 0.05);
        assert!(solution.performance_per_slice() <= 0.5 + 1e-6);
        assert!(solution.loss_per_slice() <= 0.2 + 1e-6);
        assert!(solution.is_randomized());
    }

    #[test]
    fn unconstrained_power_minimum_sleeps() {
        // Without constraints the optimum is to switch off and stay off:
        // power per slice → ~0 over a long horizon.
        let system = example_system();
        let solution = PolicyOptimizer::new(&system)
            .horizon(100_000.0)
            .goal(OptimizationGoal::MinimizePower)
            .solve()
            .unwrap();
        assert!(solution.power_per_slice() < 0.05);
        assert!(!solution.is_randomized());
    }

    #[test]
    fn performance_goal_with_power_bound() {
        // PO1: minimize queue under a power cap.
        let system = example_system();
        let solution = PolicyOptimizer::new(&system)
            .horizon(100_000.0)
            .goal(OptimizationGoal::MinimizePerformancePenalty)
            .max_power(1.5)
            .solve()
            .unwrap();
        assert!(solution.power_per_slice() <= 1.5 + 1e-6);
        // Tightening the power cap must not improve performance.
        let tighter = PolicyOptimizer::new(&system)
            .horizon(100_000.0)
            .goal(OptimizationGoal::MinimizePerformancePenalty)
            .max_power(0.8)
            .solve()
            .unwrap();
        assert!(tighter.performance_per_slice() >= solution.performance_per_slice() - 1e-7);
    }

    #[test]
    fn infeasible_constraints_reported() {
        let system = example_system();
        // Queue average below the workload's floor is impossible with
        // loss also forced to ~0.
        let result = PolicyOptimizer::new(&system)
            .horizon(100_000.0)
            .max_performance_penalty(0.0)
            .max_request_loss_rate(0.0)
            .solve();
        assert_eq!(result.unwrap_err(), DpmError::Infeasible);
    }

    #[test]
    fn solvers_agree() {
        let system = example_system();
        let configure = |kind| {
            PolicyOptimizer::new(&system)
                .horizon(10_000.0)
                .max_performance_penalty(0.5)
                .solver(kind)
                .solve()
                .unwrap()
        };
        let revised = configure(SolverKind::RevisedSimplex);
        let simplex = configure(SolverKind::Simplex);
        let ip = configure(SolverKind::InteriorPoint);
        assert!((simplex.power_per_slice() - ip.power_per_slice()).abs() < 1e-4);
        assert!((revised.power_per_slice() - simplex.power_per_slice()).abs() < 1e-6);
    }

    #[test]
    fn default_solver_is_the_sparse_path() {
        assert_eq!(SolverKind::default(), SolverKind::RevisedSimplex);
        // The default configuration must reproduce the dense tableau's
        // Example A.2 numbers exactly (within LP tolerance).
        let system = example_system();
        let default = PolicyOptimizer::new(&system)
            .discount(0.99999)
            .max_performance_penalty(0.5)
            .max_request_loss_rate(0.2)
            .solve()
            .unwrap();
        let dense = PolicyOptimizer::new(&system)
            .discount(0.99999)
            .max_performance_penalty(0.5)
            .max_request_loss_rate(0.2)
            .solver(SolverKind::Simplex)
            .solve()
            .unwrap();
        assert!((default.power_per_slice() - dense.power_per_slice()).abs() < 1e-6);
    }

    fn example_system_with_workload(p_idle_to_busy: f64, p_busy_to_busy: f64) -> SystemModel {
        let mut b = ServiceProvider::builder();
        let on = b.add_state("on");
        let off = b.add_state("off");
        let s_on = b.add_command("s_on");
        let s_off = b.add_command("s_off");
        b.transition(off, on, s_on, 0.1).unwrap();
        b.transition(on, off, s_off, 0.8).unwrap();
        b.service_rate(on, s_on, 0.8).unwrap();
        b.power(on, s_on, 3.0).unwrap();
        b.power(on, s_off, 4.0).unwrap();
        b.power(off, s_on, 4.0).unwrap();
        let sp = b.build().unwrap();
        let sr = ServiceRequester::two_state(p_idle_to_busy, p_busy_to_busy).unwrap();
        SystemModel::compose(sp, sr, ServiceQueue::with_capacity(1)).unwrap()
    }

    #[test]
    fn prepared_update_model_tracks_cold_solves_warm() {
        let system = example_system();
        let mut prepared = PolicyOptimizer::new(&system)
            .horizon(10_000.0)
            .max_performance_penalty(0.5)
            .prepare()
            .unwrap();
        prepared.solve().unwrap();
        // Drift the workload (same support: probabilities stay interior),
        // hot-swap the re-composed chain, and re-solve warm.
        for (i, (p01, p11)) in [(0.08, 0.8), (0.03, 0.9), (0.06, 0.84)]
            .into_iter()
            .enumerate()
        {
            let drifted = example_system_with_workload(p01, p11);
            let kind = prepared.update_model(drifted.chain()).unwrap();
            assert_eq!(kind, ReloadKind::Warm, "epoch {i}");
            let warm = prepared.solve().unwrap();
            assert!(warm.solve_report().warm_start, "epoch {i}");
            let cold = PolicyOptimizer::new(&drifted)
                .horizon(10_000.0)
                .max_performance_penalty(0.5)
                .solver(SolverKind::Simplex)
                .solve()
                .unwrap();
            assert!(
                (warm.power_per_slice() - cold.power_per_slice()).abs() < 1e-6,
                "epoch {i}: warm {} vs cold {}",
                warm.power_per_slice(),
                cold.power_per_slice()
            );
        }
    }

    #[test]
    fn forked_preparation_reuses_symbolic_analysis_and_stays_independent() {
        let system = example_system();
        let mut prepared = PolicyOptimizer::new(&system)
            .horizon(10_000.0)
            .max_performance_penalty(0.5)
            .prepare()
            .unwrap();
        let base = prepared.solve().unwrap();
        // Fork per "cluster": each gets its own drifted workload.
        let mut forks: Vec<PreparedOptimization> =
            (0..3).map(|_| prepared.fork().unwrap()).collect();
        let drifts = [(0.08, 0.8), (0.03, 0.9), (0.06, 0.84)];
        for (fork, (p01, p11)) in forks.iter_mut().zip(drifts) {
            let drifted = example_system_with_workload(p01, p11);
            assert_eq!(
                fork.update_model(drifted.chain()).unwrap(),
                ReloadKind::Warm
            );
            let warm = fork.solve().unwrap();
            assert!(warm.solve_report().warm_start);
            assert!(
                warm.solve_report().symbolic_reuse > 0,
                "forked session should reuse the parent's symbolic analysis"
            );
            let cold = PolicyOptimizer::new(&drifted)
                .horizon(10_000.0)
                .max_performance_penalty(0.5)
                .solver(SolverKind::Simplex)
                .solve()
                .unwrap();
            assert!((warm.power_per_slice() - cold.power_per_slice()).abs() < 1e-6);
        }
        // The parent still solves its original model unchanged.
        let again = prepared.solve().unwrap();
        assert!((again.power_per_slice() - base.power_per_slice()).abs() < 1e-9);
    }

    #[test]
    fn update_model_rejects_chain_derived_cost_matrices() {
        // The exact expected-loss metric is computed from the chain at
        // prepare time; hot-swapping a different chain under it would
        // silently enforce the old workload's loss numbers.
        let system = example_system();
        let mut prepared = PolicyOptimizer::new(&system)
            .horizon(10_000.0)
            .use_expected_loss()
            .max_request_loss_rate(0.2)
            .prepare()
            .unwrap();
        prepared.solve().unwrap();
        let drifted = example_system_with_workload(0.08, 0.8);
        let err = prepared.update_model(drifted.chain()).unwrap_err();
        assert!(matches!(err, DpmError::BadConfiguration { .. }));
        // Without the loss bound the metric never enters the problem and
        // the swap is fine.
        let mut prepared = PolicyOptimizer::new(&system)
            .horizon(10_000.0)
            .use_expected_loss()
            .max_performance_penalty(0.5)
            .prepare()
            .unwrap();
        prepared.solve().unwrap();
        assert!(prepared.update_model(drifted.chain()).is_ok());
    }

    #[test]
    fn custom_performance_cost_is_used() {
        // CPU-style penalty: being off while busy.
        let system = example_system();
        let penalty = system.custom_cost(|s, _| if s.sp == 1 && s.sr == 1 { 1.0 } else { 0.0 });
        let solution = PolicyOptimizer::new(&system)
            .horizon(100_000.0)
            .performance_cost(penalty)
            .max_performance_penalty(0.05)
            .solve()
            .unwrap();
        assert!(solution.performance_per_slice() <= 0.05 + 1e-6);
    }

    #[test]
    fn initial_state_is_respected() {
        let system = example_system();
        let solution = PolicyOptimizer::new(&system)
            .horizon(1_000.0)
            .initial_state(SystemState {
                sp: 1,
                sr: 0,
                queue: 0,
            })
            .unwrap()
            .solve()
            .unwrap();
        // Starting asleep with no constraints: stays asleep, near-zero power.
        assert!(solution.power_per_slice() < 0.05);
    }

    #[test]
    fn display_summarizes() {
        let system = example_system();
        let solution = PolicyOptimizer::new(&system)
            .horizon(1_000.0)
            .max_performance_penalty(0.6)
            .solve()
            .unwrap();
        let text = solution.to_string();
        assert!(text.contains("power"));
        assert!(text.contains("W/slice"));
    }
}
