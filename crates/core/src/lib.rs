//! The core system model and policy optimizer of
//! *Benini, Bogliolo, Paleologo, De Micheli — "Policy Optimization for
//! Dynamic Power Management"* (DAC'98 / IEEE TCAD 18(6), 1999).
//!
//! The paper abstracts a power-managed system (Fig. 1) into three
//! finite-state stochastic components:
//!
//! * [`ServiceProvider`] (Definition 3.1) — the resource under power
//!   management: a controlled Markov chain with a service rate `σ(s, a)`
//!   and a power consumption `p(s, a)` per state–command pair;
//! * [`ServiceRequester`] (Definition 3.2) — the workload: an autonomous
//!   Markov chain issuing `r(s)` requests per slice;
//! * [`ServiceQueue`] (Definition 3.3) — a bounded buffer whose kernel
//!   (equation (3)) is fully determined by the other two.
//!
//! [`SystemModel::compose`] merges them into one controlled Markov chain
//! over `S_SP × S_SR × S_SQ` (equation (4), including the queue-full /
//! queue-empty corner cases), attaches the paper's cost metrics (power,
//! queue-length performance penalty, request-loss indicators) and hands the
//! result to [`PolicyOptimizer`], which solves the constrained policy
//! optimization problems PO1/PO2 exactly by linear programming and
//! extracts the optimal — generally randomized — power-management policy.
//! [`ParetoExplorer`] sweeps a constraint to map the power–performance
//! tradeoff curve (Fig. 6 / 8(b) / 9 of the paper).
//!
//! # Example
//!
//! Build a two-state provider and a bursty requester, compose, and find
//! the minimum-power policy with a performance bound:
//!
//! ```
//! use dpm_core::{
//!     OptimizationGoal, PolicyOptimizer, ServiceProvider, ServiceRequester,
//!     ServiceQueue, SystemModel,
//! };
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut sp = ServiceProvider::builder();
//! let on = sp.add_state("on");
//! let off = sp.add_state("off");
//! let s_on = sp.add_command("s_on");
//! let s_off = sp.add_command("s_off");
//! sp.transition(on, off, s_off, 0.8)?;
//! sp.transition(off, on, s_on, 0.1)?;
//! sp.service_rate(on, s_on, 0.8)?;
//! sp.power(on, s_on, 3.0)?;
//! sp.power(on, s_off, 4.0)?;
//! sp.power(off, s_on, 4.0)?;
//! let sp = sp.build()?;
//!
//! let sr = ServiceRequester::two_state(0.05, 0.85)?;
//! let system = SystemModel::compose(sp, sr, ServiceQueue::with_capacity(1))?;
//!
//! let solution = PolicyOptimizer::new(&system)
//!     .horizon(100_000.0)
//!     .goal(OptimizationGoal::MinimizePower)
//!     .max_performance_penalty(0.5)
//!     .max_request_loss_rate(0.2)
//!     .solve()?;
//! assert!(solution.power_per_slice() <= 3.0);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]
#![deny(missing_debug_implementations)]

mod cost;
mod error;
mod optimizer;
mod pareto;
mod provider;
mod queue;
mod requester;
mod system;

pub use cost::CostMetric;
pub use error::DpmError;
pub use optimizer::{
    OptimizationGoal, PolicyOptimizer, PolicySolution, PreparedOptimization, SolverKind,
    SweepTarget,
};
pub use pareto::{ParetoCurve, ParetoExplorer, ParetoPoint, SolverEffort};
// Solver-effort reporting types, re-exported so sweep consumers don't need
// a direct dpm-lp dependency.
pub use dpm_lp::{InfeasibilityCertificate, SolveReport};
pub use provider::{ServiceProvider, ServiceProviderBuilder};
pub use queue::ServiceQueue;
pub use requester::ServiceRequester;
pub use system::{SystemModel, SystemState};
