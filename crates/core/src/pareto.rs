use dpm_lp::SolveReport;

use crate::{DpmError, PolicyOptimizer, PolicySolution, SweepTarget};

/// One point of a power–performance tradeoff curve.
///
/// Infeasible sweep values (the paper's `g(C) = +∞`, e.g. the shaded
/// region of Fig. 6) are kept in the curve with `solution = None` so the
/// feasible-region boundary is visible in reports.
#[derive(Debug, Clone)]
pub struct ParetoPoint {
    /// The sweep value the constraint was set to.
    pub bound: f64,
    /// The solved problem, or `None` when infeasible.
    pub solution: Option<PolicySolution>,
    /// How the solver reached this point: warm vs cold start, pivots,
    /// refactorizations, and — for infeasible points — the certificate
    /// kind. `None` only on the legacy closure-based
    /// [`ParetoExplorer::sweep_with`] path when the point is infeasible
    /// (the per-point optimizer consumed its report with the error).
    pub report: Option<SolveReport>,
}

impl ParetoPoint {
    /// `true` when this sweep value admitted a policy.
    pub fn is_feasible(&self) -> bool {
        self.solution.is_some()
    }

    /// Objective per slice, or `None` when infeasible.
    pub fn objective(&self) -> Option<f64> {
        self.solution.as_ref().map(|s| s.objective_per_slice())
    }
}

/// Aggregate solver effort behind a [`ParetoCurve`], summed over the
/// sweep points that carry a [`SolveReport`] (see
/// [`ParetoCurve::solver_effort`]). The counters attribute sweep time to
/// its two cost centers: pivoting (`pivots`, with `basis_updates` of them
/// absorbed in place) and factorization (`refactorizations`, with
/// `peak_fill_in_nnz` gauging how sparse the factors stayed).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
#[non_exhaustive]
pub struct SolverEffort {
    /// Points re-solved from a retained basis.
    pub warm_starts: usize,
    /// Points that paid a full cold solve.
    pub cold_starts: usize,
    /// Simplex pivots (or interior-point Newton steps) across the sweep.
    pub pivots: usize,
    /// Basis refactorizations across the sweep.
    pub refactorizations: usize,
    /// In-place basis updates (Forrest–Tomlin or eta) across the sweep.
    pub basis_updates: usize,
    /// Largest per-point factorization fill-in observed (a gauge — fill
    /// is a property of a factorization, not an accumulating total).
    pub peak_fill_in_nnz: usize,
}

/// A solved tradeoff curve: the paper's Pareto curves (Figs. 6, 8(b),
/// 9(a), 9(b)) are produced "by repeatedly solving the LP with different
/// performance constraints" — exactly what [`ParetoExplorer`] automates.
#[derive(Debug, Clone)]
pub struct ParetoCurve {
    points: Vec<ParetoPoint>,
}

impl ParetoCurve {
    /// All sweep points, in sweep order.
    pub fn points(&self) -> &[ParetoPoint] {
        &self.points
    }

    /// Only the feasible points, as `(bound, objective per slice)` pairs.
    pub fn feasible(&self) -> Vec<(f64, f64)> {
        self.points
            .iter()
            .filter_map(|p| p.objective().map(|o| (p.bound, o)))
            .collect()
    }

    /// Number of infeasible sweep values (the infeasible region of
    /// Fig. 6).
    pub fn num_infeasible(&self) -> usize {
        self.points.iter().filter(|p| !p.is_feasible()).count()
    }

    /// Total solver effort across the sweep, summed (peak, for the fill
    /// gauge) over the points that carry a [`SolveReport`] — how sweep
    /// drivers attribute wall-clock time to pivoting vs factorization
    /// work.
    pub fn solver_effort(&self) -> SolverEffort {
        let mut effort = SolverEffort::default();
        for report in self.points.iter().filter_map(|p| p.report.as_ref()) {
            if report.warm_start {
                effort.warm_starts += 1;
            } else {
                effort.cold_starts += 1;
            }
            effort.pivots += report.iterations;
            effort.refactorizations += report.refactorizations;
            effort.basis_updates += report.basis_updates;
            effort.peak_fill_in_nnz = effort.peak_fill_in_nnz.max(report.fill_in_nnz);
        }
        effort
    }

    /// Checks the convexity of the efficient-allocation set (Theorem 4.1):
    /// on the sorted feasible points, the objective must be a convex,
    /// non-increasing function of the relaxing bound. Returns `true` when
    /// every discrete second difference is ≥ `−tol`.
    pub fn is_convex(&self, tol: f64) -> bool {
        let mut pts = self.feasible();
        // Sweep bounds are validated finite at sweep time, but a curve
        // could be assembled from hand-made points: order NaNs with
        // total_cmp instead of panicking (they fall to the duplicate/
        // non-increasing guard below).
        pts.sort_by(|a, b| a.0.total_cmp(&b.0));
        if pts.len() < 3 {
            return true;
        }
        for w in pts.windows(3) {
            let (x0, y0) = w[0];
            let (x1, y1) = w[1];
            let (x2, y2) = w[2];
            let d10 = x1 - x0;
            let d21 = x2 - x1;
            if d10 <= 0.0 || d21 <= 0.0 {
                continue; // duplicate bounds
            }
            let slope_left = (y1 - y0) / d10;
            let slope_right = (y2 - y1) / d21;
            // Convex in the bound: slopes non-decreasing.
            if slope_right < slope_left - tol {
                return false;
            }
        }
        true
    }
}

impl std::fmt::Display for ParetoCurve {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "{:>12} {:>14} {:>12}", "bound", "objective", "status")?;
        for p in &self.points {
            match p.objective() {
                Some(o) => writeln!(f, "{:>12.4} {:>14.6} {:>12}", p.bound, o, "ok")?,
                None => writeln!(f, "{:>12.4} {:>14} {:>12}", p.bound, "-", "infeasible")?,
            }
        }
        Ok(())
    }
}

/// Sweeps one constraint of a [`PolicyOptimizer`] configuration across a
/// range of bounds, producing a [`ParetoCurve`].
///
/// The named sweeps ([`Self::sweep`], [`Self::sweep_performance`], ...)
/// run through **one** [`PreparedOptimization`](crate::PreparedOptimization): the system is composed
/// and the occupation LP emitted once, and every point after the first is
/// a warm-started parametric re-solve on the default engine — one rhs
/// write plus (typically) a handful of dual simplex pivots, instead of a
/// full cold solve per point. Per-point solver effort lands in
/// [`ParetoPoint::report`].
///
/// # Example
///
/// ```no_run
/// use dpm_core::{ParetoExplorer, PolicyOptimizer, SystemModel};
///
/// # fn run(system: &SystemModel) -> Result<(), dpm_core::DpmError> {
/// let base = PolicyOptimizer::new(system).horizon(100_000.0);
/// let curve = ParetoExplorer::sweep_performance(base, &[1.0, 0.8, 0.6, 0.4, 0.2])?;
/// for (bound, power) in curve.feasible() {
///     println!("queue ≤ {bound:.2} → {power:.3} W");
/// }
/// let effort = curve.solver_effort();
/// println!(
///     "{} warm / {} cold starts, {} pivots total",
///     effort.warm_starts, effort.cold_starts, effort.pivots
/// );
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct ParetoExplorer;

impl ParetoExplorer {
    /// Sweeps the performance bound (PO2/LP4 family: the paper's usual
    /// x-axis).
    ///
    /// # Errors
    ///
    /// Propagates every failure except [`DpmError::Infeasible`], which is
    /// recorded as an infeasible point; non-finite sweep bounds are
    /// rejected with [`DpmError::BadConfiguration`].
    pub fn sweep_performance(
        base: PolicyOptimizer<'_>,
        bounds: &[f64],
    ) -> Result<ParetoCurve, DpmError> {
        Self::sweep(base, SweepTarget::PerformancePenalty, bounds)
    }

    /// Sweeps the power bound (PO1/LP3 family).
    ///
    /// # Errors
    ///
    /// Same contract as [`Self::sweep_performance`].
    pub fn sweep_power(base: PolicyOptimizer<'_>, bounds: &[f64]) -> Result<ParetoCurve, DpmError> {
        Self::sweep(base, SweepTarget::Power, bounds)
    }

    /// Sweeps the request-loss bound.
    ///
    /// # Errors
    ///
    /// Same contract as [`Self::sweep_performance`].
    pub fn sweep_request_loss(
        base: PolicyOptimizer<'_>,
        bounds: &[f64],
    ) -> Result<ParetoCurve, DpmError> {
        Self::sweep(base, SweepTarget::RequestLoss, bounds)
    }

    /// Sweeps `target` across `bounds` through one warm-started solve
    /// session. Any bound already configured for `target` on `base` is
    /// superseded by the sweep values.
    ///
    /// # Errors
    ///
    /// * [`DpmError::BadConfiguration`] when a sweep bound is NaN/∞.
    /// * Propagates preparation and solve failures, except
    ///   [`DpmError::Infeasible`] which becomes an infeasible point.
    pub fn sweep(
        base: PolicyOptimizer<'_>,
        target: SweepTarget,
        bounds: &[f64],
    ) -> Result<ParetoCurve, DpmError> {
        if let Some(&bad) = bounds.iter().find(|b| !b.is_finite()) {
            return Err(DpmError::BadConfiguration {
                reason: format!("sweep bound is not finite: {bad}"),
            });
        }
        let Some(&first) = bounds.first() else {
            return Ok(ParetoCurve { points: Vec::new() });
        };
        // Make sure the swept constraint exists in the emitted LP; the
        // actual value is retargeted per point anyway.
        let configured = match target {
            SweepTarget::PerformancePenalty => base.max_performance_penalty(first),
            SweepTarget::Power => base.max_power(first),
            SweepTarget::RequestLoss => base.max_request_loss_rate(first),
        };
        let mut prepared = configured.prepare()?;
        let mut points = Vec::with_capacity(bounds.len());
        for &bound in bounds {
            match prepared.resolve_with_bound(target, bound) {
                Ok(solution) => points.push(ParetoPoint {
                    bound,
                    report: Some(solution.solve_report().clone()),
                    solution: Some(solution),
                }),
                Err(DpmError::Infeasible) => points.push(ParetoPoint {
                    bound,
                    solution: None,
                    report: Some(prepared.last_report().clone()),
                }),
                Err(other) => return Err(other),
            }
        }
        Ok(ParetoCurve { points })
    }

    /// Generic sweep: `apply` installs the swept bound on a clone of the
    /// base configuration.
    ///
    /// This is the **cold** path — each point pays a full prepare + solve
    /// because `apply` may change anything about the configuration. Use
    /// it for sweeps the targeted [`Self::sweep`] cannot express (e.g.
    /// sweeping the horizon); for plain bound sweeps prefer the named
    /// methods, which reuse one warm session.
    ///
    /// # Errors
    ///
    /// Propagates every failure except [`DpmError::Infeasible`];
    /// non-finite bounds are rejected with
    /// [`DpmError::BadConfiguration`].
    pub fn sweep_with<'a>(
        base: PolicyOptimizer<'a>,
        bounds: &[f64],
        apply: impl Fn(PolicyOptimizer<'a>, f64) -> PolicyOptimizer<'a>,
    ) -> Result<ParetoCurve, DpmError> {
        if let Some(&bad) = bounds.iter().find(|b| !b.is_finite()) {
            return Err(DpmError::BadConfiguration {
                reason: format!("sweep bound is not finite: {bad}"),
            });
        }
        let mut points = Vec::with_capacity(bounds.len());
        for &bound in bounds {
            let optimizer = apply(base.clone(), bound);
            match optimizer.solve() {
                Ok(solution) => points.push(ParetoPoint {
                    bound,
                    report: Some(solution.solve_report().clone()),
                    solution: Some(solution),
                }),
                Err(DpmError::Infeasible) => points.push(ParetoPoint {
                    bound,
                    solution: None,
                    report: None,
                }),
                Err(other) => return Err(other),
            }
        }
        Ok(ParetoCurve { points })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ServiceProvider, ServiceQueue, ServiceRequester, SystemModel};

    fn example_system() -> SystemModel {
        let mut b = ServiceProvider::builder();
        let on = b.add_state("on");
        let off = b.add_state("off");
        let s_on = b.add_command("s_on");
        let s_off = b.add_command("s_off");
        b.transition(off, on, s_on, 0.1).unwrap();
        b.transition(on, off, s_off, 0.8).unwrap();
        b.service_rate(on, s_on, 0.8).unwrap();
        b.power(on, s_on, 3.0).unwrap();
        b.power(on, s_off, 4.0).unwrap();
        b.power(off, s_on, 4.0).unwrap();
        let sp = b.build().unwrap();
        let sr = ServiceRequester::two_state(0.05, 0.85).unwrap();
        SystemModel::compose(sp, sr, ServiceQueue::with_capacity(1)).unwrap()
    }

    #[test]
    fn performance_sweep_traces_fig6_shape() {
        let system = example_system();
        let base = PolicyOptimizer::new(&system).horizon(100_000.0);
        let bounds = [0.9, 0.7, 0.5, 0.3, 0.2, 0.1, 0.05];
        let curve = ParetoExplorer::sweep_performance(base, &bounds).unwrap();
        assert_eq!(curve.points().len(), bounds.len());
        // Tighter bounds cost (weakly) more power.
        let feasible = curve.feasible();
        for w in feasible.windows(2) {
            let (b0, p0) = w[0];
            let (b1, p1) = w[1];
            assert!(b1 < b0);
            assert!(p1 >= p0 - 1e-7, "power fell while bound tightened");
        }
        // Theorem 4.1: the efficient-allocation set is convex.
        assert!(curve.is_convex(1e-6));
    }

    #[test]
    fn infeasible_region_is_detected() {
        // Below the workload's queue floor (≈ 0.163 for this system) no
        // policy exists — Fig. 6's infeasible region.
        let system = example_system();
        let base = PolicyOptimizer::new(&system)
            .horizon(100_000.0)
            .max_request_loss_rate(0.3);
        let curve = ParetoExplorer::sweep_performance(base, &[0.9, 0.5, 0.2, 0.1, 0.05]).unwrap();
        assert!(curve.num_infeasible() >= 1);
        assert!(curve.points().last().map(|p| !p.is_feasible()).unwrap());
        // The display renders both kinds of rows.
        let text = curve.to_string();
        assert!(text.contains("infeasible"));
        assert!(text.contains("ok"));
    }

    #[test]
    fn power_sweep_works_for_po1() {
        let system = example_system();
        let base = PolicyOptimizer::new(&system)
            .horizon(10_000.0)
            .goal(crate::OptimizationGoal::MinimizePerformancePenalty);
        let curve = ParetoExplorer::sweep_power(base, &[3.0, 2.0, 1.0, 0.5]).unwrap();
        let feasible = curve.feasible();
        assert!(feasible.len() >= 3);
        // Less power allowed → more queueing.
        for w in feasible.windows(2) {
            assert!(w[1].1 >= w[0].1 - 1e-7);
        }
    }

    #[test]
    fn sweeps_are_warm_after_the_first_point() {
        let system = example_system();
        let base = PolicyOptimizer::new(&system).horizon(100_000.0);
        let bounds = [0.9, 0.7, 0.5, 0.3];
        let curve = ParetoExplorer::sweep_performance(base, &bounds).unwrap();
        let effort = curve.solver_effort();
        assert_eq!(
            effort.cold_starts, 1,
            "only the first point pays a cold solve"
        );
        assert_eq!(effort.warm_starts, bounds.len() - 1);
        assert!(effort.pivots > 0);
        // The default engine factors sparsely and updates in place, and
        // every report carries the optimal basis's signature.
        assert!(effort.refactorizations > 0);
        for point in curve.points() {
            let report = point.report.as_ref().expect("session sweeps report");
            assert_ne!(report.basis_signature, 0, "bound {}", point.bound);
        }
        for (i, point) in curve.points().iter().enumerate() {
            let report = point.report.as_ref().expect("session sweeps always report");
            assert_eq!(report.warm_start, i > 0, "point {i}");
            assert_eq!(report.engine, "revised-simplex");
        }
    }

    #[test]
    fn warm_sweep_matches_cold_per_point_solves() {
        let system = example_system();
        let bounds = [0.9, 0.6, 0.4, 0.25, 0.4, 0.9];
        let warm = ParetoExplorer::sweep_performance(
            PolicyOptimizer::new(&system).horizon(100_000.0),
            &bounds,
        )
        .unwrap();
        let cold = ParetoExplorer::sweep_with(
            PolicyOptimizer::new(&system).horizon(100_000.0),
            &bounds,
            |optimizer, bound| optimizer.max_performance_penalty(bound),
        )
        .unwrap();
        for (w, c) in warm.points().iter().zip(cold.points()) {
            assert_eq!(w.is_feasible(), c.is_feasible(), "bound {}", w.bound);
            if let (Some(wo), Some(co)) = (w.objective(), c.objective()) {
                assert!((wo - co).abs() < 1e-6, "bound {}: {wo} vs {co}", w.bound);
            }
        }
    }

    #[test]
    fn non_finite_sweep_bounds_are_bad_configuration() {
        // Regression: NaN sweep values used to reach `is_convex`'s
        // `partial_cmp(..).expect("finite bounds")` and panic; they are
        // now rejected at the sweep boundary.
        let system = example_system();
        for bad in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
            let base = PolicyOptimizer::new(&system).horizon(1_000.0);
            let err = ParetoExplorer::sweep_performance(base, &[0.5, bad, 0.3]).unwrap_err();
            assert!(
                matches!(err, DpmError::BadConfiguration { .. }),
                "{bad}: {err}"
            );
            let base = PolicyOptimizer::new(&system).horizon(1_000.0);
            let err = ParetoExplorer::sweep_with(base, &[bad], |o, b| o.max_power(b)).unwrap_err();
            assert!(matches!(err, DpmError::BadConfiguration { .. }));
        }
    }

    #[test]
    fn empty_and_duplicate_bound_sweeps() {
        let system = example_system();
        let empty =
            ParetoExplorer::sweep_performance(PolicyOptimizer::new(&system).horizon(1_000.0), &[])
                .unwrap();
        assert!(empty.points().is_empty());
        assert!(empty.is_convex(1e-9));

        // Duplicate bounds: the warm path re-solves an unchanged model;
        // the duplicated points must agree exactly and convexity must
        // tolerate the zero-width interval.
        let curve = ParetoExplorer::sweep_performance(
            PolicyOptimizer::new(&system).horizon(100_000.0),
            &[0.5, 0.5, 0.3, 0.3],
        )
        .unwrap();
        let feasible = curve.feasible();
        assert_eq!(feasible.len(), 4);
        assert!((feasible[0].1 - feasible[1].1).abs() < 1e-9);
        assert!((feasible[2].1 - feasible[3].1).abs() < 1e-9);
        assert!(curve.is_convex(1e-6));
    }

    #[test]
    fn loss_sweep_is_monotone() {
        let system = example_system();
        let base = PolicyOptimizer::new(&system)
            .horizon(10_000.0)
            .max_performance_penalty(0.8);
        let curve = ParetoExplorer::sweep_request_loss(base, &[0.5, 0.2, 0.1, 0.05]).unwrap();
        let feasible = curve.feasible();
        for w in feasible.windows(2) {
            assert!(w[1].1 >= w[0].1 - 1e-7);
        }
    }
}
