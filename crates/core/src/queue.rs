use crate::DpmError;

/// The **service queue** of Definition 3.3: a bounded request buffer.
///
/// The queue's transition kernel is completely determined by the service
/// provider (how fast it drains) and the service requester (how fast it
/// fills); equation (3) of the paper. At most one request completes per
/// slice (with probability `σ`), any number may arrive; arrivals beyond
/// capacity are **lost** — the paper's abstract congestion signal.
///
/// A capacity of `Q` gives `Q + 1` queue states `0..=Q`. Capacity 0 models
/// systems without buffering (the CPU case study of Section VI-C).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ServiceQueue {
    capacity: usize,
}

impl ServiceQueue {
    /// A queue holding at most `capacity` requests.
    pub fn with_capacity(capacity: usize) -> Self {
        ServiceQueue { capacity }
    }

    /// Maximum number of buffered requests.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of queue states (`capacity + 1`).
    pub fn num_states(&self) -> usize {
        self.capacity + 1
    }

    /// One row of the queue kernel — equation (3) with its corner cases.
    ///
    /// Given the current backlog `q`, the per-slice service probability
    /// `sigma = σ(s_p, a)` and `arrivals = r(s_r)` incoming requests,
    /// returns the distribution over the next queue state together with
    /// the *expected number of lost requests* in the slice.
    ///
    /// Dynamics: one request completes with probability `sigma` when any
    /// is present (`q + arrivals > 0`); the next state is
    /// `min(q + arrivals − served, capacity)` and
    /// `max(q + arrivals − served − capacity, 0)` requests are lost.
    ///
    /// # Errors
    ///
    /// * [`DpmError::UnknownIndex`] when `q` exceeds the capacity.
    /// * [`DpmError::InvalidProbability`] when `sigma ∉ [0, 1]`.
    pub fn kernel_row(
        &self,
        q: usize,
        sigma: f64,
        arrivals: u32,
    ) -> Result<(Vec<f64>, f64), DpmError> {
        if q > self.capacity {
            return Err(DpmError::UnknownIndex {
                kind: "queue state",
                index: q,
                limit: self.num_states(),
            });
        }
        if !(0.0..=1.0).contains(&sigma) || !sigma.is_finite() {
            return Err(DpmError::InvalidProbability {
                context: format!("service probability for queue state {q}"),
                value: sigma,
            });
        }
        let mut row = vec![0.0; self.num_states()];
        let mut expected_loss = 0.0;
        let total = q + arrivals as usize;
        if total == 0 {
            // Corner case: empty queue, no arrivals — stays empty w.p. 1.
            row[0] = 1.0;
            return Ok((row, 0.0));
        }
        // One service attempt succeeds with probability sigma.
        for (served, prob) in [(1usize, sigma), (0usize, 1.0 - sigma)] {
            if prob == 0.0 {
                continue;
            }
            let after = total - served.min(total);
            let next = after.min(self.capacity);
            row[next] += prob;
            expected_loss += prob * (after - next) as f64;
        }
        Ok((row, expected_loss))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn capacities_and_states() {
        let q = ServiceQueue::with_capacity(2);
        assert_eq!(q.capacity(), 2);
        assert_eq!(q.num_states(), 3);
        assert_eq!(ServiceQueue::with_capacity(0).num_states(), 1);
    }

    #[test]
    fn empty_queue_no_arrivals_stays_empty() {
        let q = ServiceQueue::with_capacity(1);
        let (row, loss) = q.kernel_row(0, 0.8, 0).unwrap();
        assert_eq!(row, vec![1.0, 0.0]);
        assert_eq!(loss, 0.0);
    }

    #[test]
    fn service_drains_one_request() {
        // Example 3.3 flavor: σ = 0.8, one enqueued request, no arrivals.
        let q = ServiceQueue::with_capacity(1);
        let (row, loss) = q.kernel_row(1, 0.8, 0).unwrap();
        assert!((row[0] - 0.8).abs() < 1e-12);
        assert!((row[1] - 0.2).abs() < 1e-12);
        assert_eq!(loss, 0.0);
    }

    #[test]
    fn arrival_with_service_race() {
        // Empty queue, one arrival, σ = 0.8: served immediately w.p. 0.8.
        let q = ServiceQueue::with_capacity(1);
        let (row, loss) = q.kernel_row(0, 0.8, 1).unwrap();
        assert!((row[0] - 0.8).abs() < 1e-12);
        assert!((row[1] - 0.2).abs() < 1e-12);
        assert_eq!(loss, 0.0);
    }

    #[test]
    fn full_queue_arrival_is_lost_when_not_served() {
        // Full queue (cap 1), σ = 0, one arrival: stays full, loses 1.
        let q = ServiceQueue::with_capacity(1);
        let (row, loss) = q.kernel_row(1, 0.0, 1).unwrap();
        assert_eq!(row, vec![0.0, 1.0]);
        assert!((loss - 1.0).abs() < 1e-12);
    }

    #[test]
    fn full_queue_with_service_can_still_lose() {
        // Full queue (cap 1), σ = 0.8, one arrival: w.p. 0.8 one is served
        // (no loss), w.p. 0.2 the arrival is lost.
        let q = ServiceQueue::with_capacity(1);
        let (row, loss) = q.kernel_row(1, 0.8, 1).unwrap();
        assert!((row[1] - 1.0).abs() < 1e-12); // stays full either way
        assert!((loss - 0.2).abs() < 1e-12);
    }

    #[test]
    fn burst_overflows_capacity() {
        // Corner case "arrivals exceed maximum queue length": q=1, cap=2,
        // 4 arrivals, σ=0: next is full w.p. 1, 3 lost.
        let q = ServiceQueue::with_capacity(2);
        let (row, loss) = q.kernel_row(1, 0.0, 4).unwrap();
        assert_eq!(row, vec![0.0, 0.0, 1.0]);
        assert!((loss - 3.0).abs() < 1e-12);
    }

    #[test]
    fn full_queue_no_arrivals_drains_with_sigma() {
        // Paper: "If the queue is full, its state will change with
        // probability σ".
        let q = ServiceQueue::with_capacity(2);
        let (row, _) = q.kernel_row(2, 0.3, 0).unwrap();
        assert!((row[1] - 0.3).abs() < 1e-12);
        assert!((row[2] - 0.7).abs() < 1e-12);
    }

    #[test]
    fn zero_capacity_queue_loses_unserved_arrivals() {
        // The CPU case study: no buffering. An arrival is served w.p. σ or
        // lost.
        let q = ServiceQueue::with_capacity(0);
        let (row, loss) = q.kernel_row(0, 0.6, 1).unwrap();
        assert_eq!(row, vec![1.0]);
        assert!((loss - 0.4).abs() < 1e-12);
    }

    #[test]
    fn rows_are_distributions() {
        let q = ServiceQueue::with_capacity(3);
        for qs in 0..=3 {
            for arrivals in 0..5 {
                for sigma in [0.0, 0.3, 1.0] {
                    let (row, loss) = q.kernel_row(qs, sigma, arrivals).unwrap();
                    let sum: f64 = row.iter().sum();
                    assert!((sum - 1.0).abs() < 1e-12);
                    assert!(loss >= 0.0);
                }
            }
        }
    }

    #[test]
    fn validation_failures() {
        let q = ServiceQueue::with_capacity(1);
        assert!(matches!(
            q.kernel_row(5, 0.5, 0),
            Err(DpmError::UnknownIndex { .. })
        ));
        assert!(matches!(
            q.kernel_row(0, 1.5, 0),
            Err(DpmError::InvalidProbability { .. })
        ));
    }
}
