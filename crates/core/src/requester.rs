use dpm_markov::{MarkovChain, StochasticMatrix};

use crate::DpmError;

/// The **service requester** of Definition 3.2: the workload.
///
/// A pair `(Σ_SR, r)` where `Σ_SR` is an autonomous Markov chain over
/// traffic conditions and `r(s)` is the number of requests issued per slice
/// in condition `s`. The power manager has no influence here — the SR
/// "represents the external environment over which the system has no
/// control"; interarrival times are geometric/memoryless within a state.
///
/// # Example
///
/// The bursty two-state workload of Example 3.2 (a request slice is
/// followed by another request slice with probability 0.85, giving mean
/// bursts of 1/0.15 ≈ 6.67 slices):
///
/// ```
/// use dpm_core::ServiceRequester;
///
/// # fn main() -> Result<(), dpm_core::DpmError> {
/// let sr = ServiceRequester::two_state(0.15, 0.85)?;
/// assert_eq!(sr.requests(1), 1);
/// assert!((sr.request_rate()? - 0.5).abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct ServiceRequester {
    chain: MarkovChain,
    /// `r(s)`: requests issued per slice in state `s`.
    requests: Vec<u32>,
    state_names: Vec<String>,
}

impl ServiceRequester {
    /// Builds a requester from a transition matrix and a per-state request
    /// count.
    ///
    /// # Errors
    ///
    /// [`DpmError::IncompleteModel`] when `requests.len()` differs from the
    /// number of chain states.
    pub fn new(transition: StochasticMatrix, requests: Vec<u32>) -> Result<Self, DpmError> {
        if requests.len() != transition.num_states() {
            return Err(DpmError::IncompleteModel {
                reason: format!(
                    "request table has {} entries for {} SR states",
                    requests.len(),
                    transition.num_states()
                ),
            });
        }
        let state_names = (0..requests.len()).map(|i| format!("r{i}")).collect();
        Ok(ServiceRequester {
            chain: MarkovChain::new(transition),
            requests,
            state_names,
        })
    }

    /// Builds a requester with explicit state names.
    ///
    /// # Errors
    ///
    /// Same as [`Self::new`], plus a name-count check.
    pub fn with_names(
        transition: StochasticMatrix,
        requests: Vec<u32>,
        names: Vec<String>,
    ) -> Result<Self, DpmError> {
        if names.len() != requests.len() {
            return Err(DpmError::IncompleteModel {
                reason: format!("{} names for {} SR states", names.len(), requests.len()),
            });
        }
        let mut sr = Self::new(transition, requests)?;
        sr.state_names = names;
        Ok(sr)
    }

    /// The canonical two-state idle/busy workload (Example 3.2): state 0
    /// issues no requests, state 1 issues one request per slice.
    ///
    /// * `p_idle_to_busy` — probability that a request arrives after an
    ///   idle slice;
    /// * `p_busy_to_busy` — probability that a request slice is followed by
    ///   another (the *burstiness*; mean burst length is
    ///   `1 / (1 − p_busy_to_busy)`).
    ///
    /// # Errors
    ///
    /// [`DpmError::InvalidProbability`] for parameters outside `[0, 1]`.
    pub fn two_state(p_idle_to_busy: f64, p_busy_to_busy: f64) -> Result<Self, DpmError> {
        for (name, v) in [
            ("p_idle_to_busy", p_idle_to_busy),
            ("p_busy_to_busy", p_busy_to_busy),
        ] {
            if !(0.0..=1.0).contains(&v) || !v.is_finite() {
                return Err(DpmError::InvalidProbability {
                    context: name.to_string(),
                    value: v,
                });
            }
        }
        let transition = StochasticMatrix::from_rows(&[
            &[1.0 - p_idle_to_busy, p_idle_to_busy],
            &[1.0 - p_busy_to_busy, p_busy_to_busy],
        ])?;
        Self::with_names(
            transition,
            vec![0, 1],
            vec!["idle".to_string(), "busy".to_string()],
        )
    }

    /// Number of workload states.
    pub fn num_states(&self) -> usize {
        self.requests.len()
    }

    /// The autonomous workload chain.
    pub fn chain(&self) -> &MarkovChain {
        &self.chain
    }

    /// Requests issued per slice in `state`.
    ///
    /// # Panics
    ///
    /// Panics when `state` is out of range.
    pub fn requests(&self, state: usize) -> u32 {
        self.requests[state]
    }

    /// Name of `state`.
    ///
    /// # Panics
    ///
    /// Panics when `state` is out of range.
    pub fn state_name(&self, state: usize) -> &str {
        &self.state_names[state]
    }

    /// Long-run average requests per slice (the offered load), computed
    /// from the stationary distribution.
    ///
    /// # Errors
    ///
    /// Propagates stationary-distribution failures (reducible chains).
    pub fn request_rate(&self) -> Result<f64, DpmError> {
        let pi = self.chain.stationary_distribution()?;
        Ok(pi
            .iter()
            .zip(&self.requests)
            .map(|(p, &r)| p * r as f64)
            .sum())
    }

    /// Largest per-slice request count over all states (bounds the queue
    /// inflow per slice).
    pub fn max_requests(&self) -> u32 {
        self.requests.iter().copied().max().unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn two_state_matches_example_3_2() {
        let sr = ServiceRequester::two_state(0.15, 0.85).unwrap();
        assert_eq!(sr.num_states(), 2);
        assert_eq!(sr.requests(0), 0);
        assert_eq!(sr.requests(1), 1);
        // Mean burst length 1/0.15 ≈ 6.67 slices.
        let p = sr.chain().transition_matrix();
        assert!((p.prob(1, 1) - 0.85).abs() < 1e-12);
        assert_eq!(sr.state_name(0), "idle");
    }

    #[test]
    fn request_rate_is_stationary_weighted() {
        // Asymmetric chain: π = (1/3, 2/3) for p01 = 0.2, p10 = 0.1.
        let sr = ServiceRequester::two_state(0.2, 0.9).unwrap();
        assert!((sr.request_rate().unwrap() - 2.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn multi_request_states_are_allowed() {
        // A state issuing 3 requests per slice (the paper allows arbitrary
        // integer r).
        let t = StochasticMatrix::from_rows(&[&[0.5, 0.5], &[0.5, 0.5]]).unwrap();
        let sr = ServiceRequester::new(t, vec![0, 3]).unwrap();
        assert_eq!(sr.max_requests(), 3);
        assert!((sr.request_rate().unwrap() - 1.5).abs() < 1e-9);
    }

    #[test]
    fn validation_failures() {
        let t = StochasticMatrix::identity(2);
        assert!(matches!(
            ServiceRequester::new(t.clone(), vec![0]),
            Err(DpmError::IncompleteModel { .. })
        ));
        assert!(matches!(
            ServiceRequester::with_names(t, vec![0, 1], vec!["x".to_string()]),
            Err(DpmError::IncompleteModel { .. })
        ));
        assert!(matches!(
            ServiceRequester::two_state(1.5, 0.5),
            Err(DpmError::InvalidProbability { .. })
        ));
    }
}
