//! Heuristic power-management policies — the baselines the paper compares
//! its optimal stochastic policies against.
//!
//! * [`EagerPolicy`] — the "eager" / greedy policy of the introduction and
//!   Fig. 8(b)'s upward triangles: shut down (to a chosen sleep command)
//!   the moment the system goes idle; wake the moment work appears.
//! * [`TimeoutPolicy`] — the classical disk spin-down heuristic (\[12\],
//!   Fig. 8(b)'s downward triangles, the dashed curves of Figs. 9(b)/10):
//!   shut down after the idle clock exceeds a threshold; wake on work.
//! * [`RandomizedTimeoutPolicy`] — Fig. 8(b)'s boxes: "the timeout value
//!   and the inactive state are chosen randomly with a given probability
//!   distribution" at the start of each idle period.
//! * [`always_on`] — the trivial constant policy (Example 3.4) that never
//!   sleeps; re-exported from `dpm-sim`'s [`ConstantCommandManager`].
//!
//! All of them implement [`PowerManager`] and run on the same simulator as
//! the optimal policies, so like is compared with like.
//!
//! # Example
//!
//! ```no_run
//! use dpm_policies::TimeoutPolicy;
//! use dpm_sim::{SimConfig, Simulator};
//! # fn run(system: &dpm_core::SystemModel) -> Result<(), dpm_core::DpmError> {
//! let mut policy = TimeoutPolicy::new(system, 0, 1, 100); // wake cmd 0, sleep cmd 1
//! let stats = Simulator::new(system, SimConfig::new(100_000)).run(&mut policy)?;
//! println!("timeout-100 power: {:.3} W", stats.average_power());
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]
#![deny(missing_debug_implementations)]

mod eager;
mod timeout;

pub use dpm_sim::{ConstantCommandManager, Observation, PowerManager};
pub use eager::EagerPolicy;
pub use timeout::{RandomizedTimeoutPolicy, TimeoutPolicy};

/// The always-on baseline: constantly issue the "stay active" command.
pub fn always_on(active_command: usize) -> ConstantCommandManager {
    ConstantCommandManager::new(active_command)
}
