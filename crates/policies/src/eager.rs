use dpm_core::SystemModel;
use dpm_sim::{Observation, PowerManager};

/// The **eager** policy of the paper's introduction: "turns off every
/// system component as soon as it becomes idle", waking it the moment a
/// request needs service.
///
/// Parameterized by which sleep command to use — running one `EagerPolicy`
/// per available sleep state produces the family of greedy points
/// (upward triangles) in Fig. 8(b).
#[derive(Debug, Clone)]
pub struct EagerPolicy {
    wake_command: usize,
    sleep_command: usize,
    /// Per composite state: is the system idle (no pending or arriving
    /// work)?
    idle: Vec<bool>,
    label: String,
}

impl EagerPolicy {
    /// Builds the policy for a composed system: `wake_command` is issued
    /// whenever work is pending, `sleep_command` whenever the system is
    /// idle (queue empty and the workload issuing nothing).
    pub fn new(system: &SystemModel, wake_command: usize, sleep_command: usize) -> Self {
        let idle = (0..system.num_states())
            .map(|i| {
                let s = system.state_of(i);
                system.requester().requests(s.sr) == 0 && s.queue == 0
            })
            .collect();
        EagerPolicy {
            wake_command,
            sleep_command,
            idle,
            label: format!("eager(sleep cmd {sleep_command})"),
        }
    }

    /// Overrides the display name.
    pub fn with_label(mut self, label: impl Into<String>) -> Self {
        self.label = label.into();
        self
    }
}

impl PowerManager for EagerPolicy {
    fn decide(&mut self, observation: &Observation, _rng: &mut dyn rand::RngCore) -> usize {
        if self.idle[observation.state_index] {
            self.sleep_command
        } else {
            self.wake_command
        }
    }

    fn name(&self) -> String {
        self.label.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dpm_core::{ServiceProvider, ServiceQueue, ServiceRequester, SystemState};
    use dpm_sim::{SimConfig, Simulator};

    fn toy_system() -> SystemModel {
        let mut b = ServiceProvider::builder();
        let on = b.add_state("on");
        let off = b.add_state("off");
        let s_on = b.add_command("s_on");
        let s_off = b.add_command("s_off");
        b.transition(off, on, s_on, 0.1).unwrap();
        b.transition(on, off, s_off, 0.8).unwrap();
        b.service_rate(on, s_on, 0.8).unwrap();
        b.power(on, s_on, 3.0).unwrap();
        b.power(on, s_off, 4.0).unwrap();
        b.power(off, s_on, 4.0).unwrap();
        let sp = b.build().unwrap();
        let sr = ServiceRequester::two_state(0.05, 0.85).unwrap();
        SystemModel::compose(sp, sr, ServiceQueue::with_capacity(1)).unwrap()
    }

    #[test]
    fn sleeps_exactly_when_idle() {
        let system = toy_system();
        let mut policy = EagerPolicy::new(&system, 0, 1);
        let mut rng = rand::rngs::mock::StepRng::new(0, 1);
        for i in 0..system.num_states() {
            let s = system.state_of(i);
            let obs = Observation::new(s, i, 0, 0);
            let cmd = policy.decide(&obs, &mut rng);
            let idle = s.sr == 0 && s.queue == 0;
            assert_eq!(
                cmd,
                if idle { 1 } else { 0 },
                "state {}",
                system.state_label(i)
            );
        }
    }

    #[test]
    fn eager_saves_power_but_costs_performance_vs_always_on() {
        let system = toy_system();
        let sim = Simulator::new(
            &system,
            SimConfig::new(100_000).seed(5).initial(SystemState {
                sp: 0,
                sr: 0,
                queue: 0,
            }),
        );
        let eager_stats = sim.run(&mut EagerPolicy::new(&system, 0, 1)).unwrap();
        let on_stats = sim.run(&mut crate::always_on(0)).unwrap();
        assert!(eager_stats.average_power() < on_stats.average_power());
        assert!(eager_stats.average_queue() > on_stats.average_queue());
        assert!(eager_stats.average_waiting() > on_stats.average_waiting());
    }

    #[test]
    fn label_is_customizable() {
        let system = toy_system();
        let policy = EagerPolicy::new(&system, 0, 1).with_label("greedy-sleep1");
        assert_eq!(policy.name(), "greedy-sleep1");
    }
}
