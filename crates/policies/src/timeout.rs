use dpm_core::SystemModel;
use dpm_sim::{Observation, PowerManager};
use rand::Rng;

/// The classical **timeout** (spin-down) policy: wake whenever work is
/// pending; once idle for `timeout` consecutive slices, issue the sleep
/// command.
///
/// "Timeout-based policies are widely used for disk power management.
/// They shut down the disk when the user has been inactive for a time
/// longer than the timeout period" (Section VI-A). The paper's point —
/// visible when this policy is swept against the optimal curve — is that
/// the timeout *wastes power while waiting for the timeout to expire*.
#[derive(Debug, Clone)]
pub struct TimeoutPolicy {
    wake_command: usize,
    sleep_command: usize,
    timeout: u64,
    idle: Vec<bool>,
    label: String,
}

impl TimeoutPolicy {
    /// Builds the policy: after `timeout` idle slices, issue
    /// `sleep_command`; while work is pending, issue `wake_command`.
    /// `timeout = 0` degenerates to the eager policy.
    pub fn new(
        system: &SystemModel,
        wake_command: usize,
        sleep_command: usize,
        timeout: u64,
    ) -> Self {
        TimeoutPolicy {
            wake_command,
            sleep_command,
            timeout,
            idle: idle_mask(system),
            label: format!("timeout({timeout}, sleep cmd {sleep_command})"),
        }
    }

    /// The configured timeout in slices.
    pub fn timeout(&self) -> u64 {
        self.timeout
    }

    /// Overrides the display name.
    pub fn with_label(mut self, label: impl Into<String>) -> Self {
        self.label = label.into();
        self
    }
}

impl PowerManager for TimeoutPolicy {
    fn decide(&mut self, observation: &Observation, _rng: &mut dyn rand::RngCore) -> usize {
        if !self.idle[observation.state_index] {
            self.wake_command
        } else if observation.idle_slices >= self.timeout {
            self.sleep_command
        } else {
            self.wake_command
        }
    }

    fn name(&self) -> String {
        self.label.clone()
    }
}

/// Fig. 8(b)'s boxed points: a timeout policy whose `(timeout, sleep
/// command)` pair is re-drawn from a given distribution at the start of
/// every idle period — "randomized policies where the timeout value and
/// the inactive state are chosen randomly with a given probability
/// distribution ... the heuristic version of the optimal policies
/// computed by our tool".
#[derive(Debug, Clone)]
pub struct RandomizedTimeoutPolicy {
    wake_command: usize,
    /// `(probability, timeout, sleep command)` triples; probabilities sum
    /// to one.
    choices: Vec<(f64, u64, usize)>,
    idle: Vec<bool>,
    current: (u64, usize),
    label: String,
}

impl RandomizedTimeoutPolicy {
    /// Builds the policy from `(probability, timeout, sleep_command)`
    /// choices.
    ///
    /// # Panics
    ///
    /// Panics when `choices` is empty or the probabilities do not sum to
    /// one (within 1e−9).
    pub fn new(system: &SystemModel, wake_command: usize, choices: Vec<(f64, u64, usize)>) -> Self {
        assert!(
            !choices.is_empty(),
            "need at least one (timeout, sleep) choice"
        );
        let total: f64 = choices.iter().map(|c| c.0).sum();
        assert!(
            (total - 1.0).abs() < 1e-9,
            "choice probabilities sum to {total}, expected 1"
        );
        let current = (choices[0].1, choices[0].2);
        RandomizedTimeoutPolicy {
            wake_command,
            choices,
            idle: idle_mask(system),
            current,
            label: "randomized timeout".to_string(),
        }
    }

    /// Overrides the display name.
    pub fn with_label(mut self, label: impl Into<String>) -> Self {
        self.label = label.into();
        self
    }

    fn redraw(&mut self, rng: &mut dyn rand::RngCore) {
        let draw: f64 = rng.gen();
        let mut acc = 0.0;
        for &(p, timeout, sleep) in &self.choices {
            acc += p;
            if draw < acc {
                self.current = (timeout, sleep);
                return;
            }
        }
        let last = self.choices.last().expect("non-empty choices");
        self.current = (last.1, last.2);
    }
}

impl PowerManager for RandomizedTimeoutPolicy {
    fn decide(&mut self, observation: &Observation, rng: &mut dyn rand::RngCore) -> usize {
        if !self.idle[observation.state_index] {
            return self.wake_command;
        }
        if observation.idle_slices == 0 {
            // A fresh idle period: re-draw the (timeout, sleep) pair.
            self.redraw(rng);
        }
        if observation.idle_slices >= self.current.0 {
            self.current.1
        } else {
            self.wake_command
        }
    }

    fn reset(&mut self) {
        self.current = (self.choices[0].1, self.choices[0].2);
    }

    fn name(&self) -> String {
        self.label.clone()
    }
}

/// Per composite state: is the system idle (no arrivals, empty queue)?
fn idle_mask(system: &SystemModel) -> Vec<bool> {
    (0..system.num_states())
        .map(|i| {
            let s = system.state_of(i);
            system.requester().requests(s.sr) == 0 && s.queue == 0
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::EagerPolicy;
    use dpm_core::{ServiceProvider, ServiceQueue, ServiceRequester};
    use dpm_sim::{SimConfig, Simulator};

    fn toy_system() -> SystemModel {
        let mut b = ServiceProvider::builder();
        let on = b.add_state("on");
        let off = b.add_state("off");
        let s_on = b.add_command("s_on");
        let s_off = b.add_command("s_off");
        b.transition(off, on, s_on, 0.1).unwrap();
        b.transition(on, off, s_off, 0.8).unwrap();
        b.service_rate(on, s_on, 0.8).unwrap();
        b.power(on, s_on, 3.0).unwrap();
        b.power(on, s_off, 4.0).unwrap();
        b.power(off, s_on, 4.0).unwrap();
        let sp = b.build().unwrap();
        let sr = ServiceRequester::two_state(0.05, 0.85).unwrap();
        SystemModel::compose(sp, sr, ServiceQueue::with_capacity(1)).unwrap()
    }

    #[test]
    fn timeout_zero_equals_eager() {
        let system = toy_system();
        let sim = Simulator::new(&system, SimConfig::new(50_000).seed(3));
        let t0 = sim.run(&mut TimeoutPolicy::new(&system, 0, 1, 0)).unwrap();
        let eager = sim.run(&mut EagerPolicy::new(&system, 0, 1)).unwrap();
        assert_eq!(t0, eager);
    }

    #[test]
    fn longer_timeouts_spend_more_power_and_wait_less() {
        let system = toy_system();
        let sim = Simulator::new(&system, SimConfig::new(200_000).seed(7));
        let mut last_power = 0.0;
        let mut powers = Vec::new();
        for timeout in [0, 5, 20, 100, 100_000] {
            let stats = sim
                .run(&mut TimeoutPolicy::new(&system, 0, 1, timeout))
                .unwrap();
            powers.push(stats.average_power());
            assert!(
                stats.average_power() >= last_power - 0.05,
                "timeout {timeout}: power fell"
            );
            last_power = stats.average_power();
        }
        // An effectively infinite timeout behaves like always-on.
        assert!((powers.last().unwrap() - 3.0).abs() < 0.05);
    }

    #[test]
    fn randomized_timeout_interpolates_its_components() {
        let system = toy_system();
        let sim = Simulator::new(&system, SimConfig::new(200_000).seed(11));
        let p_short = sim.run(&mut TimeoutPolicy::new(&system, 0, 1, 2)).unwrap();
        let p_long = sim.run(&mut TimeoutPolicy::new(&system, 0, 1, 50)).unwrap();
        let mixed = sim
            .run(&mut RandomizedTimeoutPolicy::new(
                &system,
                0,
                vec![(0.5, 2, 1), (0.5, 50, 1)],
            ))
            .unwrap();
        let lo = p_short.average_power().min(p_long.average_power()) - 0.05;
        let hi = p_short.average_power().max(p_long.average_power()) + 0.05;
        assert!(
            (lo..=hi).contains(&mixed.average_power()),
            "mixed power {} outside [{lo}, {hi}]",
            mixed.average_power()
        );
    }

    #[test]
    #[should_panic(expected = "sum to")]
    fn bad_choice_distribution_panics() {
        let system = toy_system();
        RandomizedTimeoutPolicy::new(&system, 0, vec![(0.4, 1, 1), (0.4, 2, 1)]);
    }

    #[test]
    fn names_include_parameters() {
        let system = toy_system();
        assert!(TimeoutPolicy::new(&system, 0, 1, 42).name().contains("42"));
        assert_eq!(TimeoutPolicy::new(&system, 0, 1, 42).timeout(), 42);
    }
}
