use std::fmt;
use std::ops::{Add, Index, IndexMut, Mul, Sub};

use crate::LinalgError;

/// A dense, row-major matrix of `f64` values.
///
/// `Matrix` is the workhorse container of the workspace: stochastic
/// matrices, LP constraint matrices and MDP transition kernels are all
/// stored as (or converted to) `Matrix` before any numerical work happens.
///
/// # Example
///
/// ```
/// use dpm_linalg::Matrix;
///
/// # fn main() -> Result<(), dpm_linalg::LinalgError> {
/// let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]])?;
/// let b = Matrix::identity(2);
/// let c = a.matmul(&b)?;
/// assert_eq!(c[(1, 0)], 3.0);
/// # Ok(())
/// # }
/// ```
#[derive(Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Creates a `rows × cols` matrix filled with zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates a `rows × cols` matrix where every entry is `value`.
    pub fn filled(rows: usize, cols: usize, value: f64) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![value; rows * cols],
        }
    }

    /// Creates the `n × n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Builds a matrix from a slice of equally-long rows.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::Empty`] when no rows are given and
    /// [`LinalgError::RaggedRows`] when the rows have unequal lengths.
    pub fn from_rows(rows: &[&[f64]]) -> Result<Self, LinalgError> {
        if rows.is_empty() || rows[0].is_empty() {
            return Err(LinalgError::Empty);
        }
        let cols = rows[0].len();
        let mut data = Vec::with_capacity(rows.len() * cols);
        for (i, row) in rows.iter().enumerate() {
            if row.len() != cols {
                return Err(LinalgError::RaggedRows { row: i });
            }
            data.extend_from_slice(row);
        }
        Ok(Matrix {
            rows: rows.len(),
            cols,
            data,
        })
    }

    /// Builds a matrix by moving a flat row-major buffer into place.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::DimensionMismatch`] if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Result<Self, LinalgError> {
        if data.len() != rows * cols {
            return Err(LinalgError::DimensionMismatch {
                found: (data.len(), 1),
                expected: (rows * cols, 1),
            });
        }
        Ok(Matrix { rows, cols, data })
    }

    /// Builds a matrix by evaluating `f(row, col)` at every position.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f64) -> Self {
        let mut m = Matrix::zeros(rows, cols);
        for i in 0..rows {
            for j in 0..cols {
                m[(i, j)] = f(i, j);
            }
        }
        m
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)` pair.
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// `true` when the matrix is square.
    pub fn is_square(&self) -> bool {
        self.rows == self.cols
    }

    /// Borrows row `i` as a slice.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.rows()`.
    pub fn row(&self, i: usize) -> &[f64] {
        assert!(
            i < self.rows,
            "row index {i} out of bounds ({} rows)",
            self.rows
        );
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Mutably borrows row `i` as a slice.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.rows()`.
    pub fn row_mut(&mut self, i: usize) -> &mut [f64] {
        assert!(
            i < self.rows,
            "row index {i} out of bounds ({} rows)",
            self.rows
        );
        &mut self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Copies column `j` into a fresh vector.
    ///
    /// # Panics
    ///
    /// Panics if `j >= self.cols()`.
    pub fn col(&self, j: usize) -> Vec<f64> {
        assert!(
            j < self.cols,
            "column index {j} out of bounds ({} cols)",
            self.cols
        );
        (0..self.rows).map(|i| self[(i, j)]).collect()
    }

    /// Returns the entry at `(i, j)` without panicking.
    pub fn get(&self, i: usize, j: usize) -> Option<f64> {
        if i < self.rows && j < self.cols {
            Some(self.data[i * self.cols + j])
        } else {
            None
        }
    }

    /// Borrows the underlying row-major buffer.
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Consumes the matrix and returns the underlying row-major buffer.
    pub fn into_vec(self) -> Vec<f64> {
        self.data
    }

    /// Returns the transpose as a new matrix.
    pub fn transpose(&self) -> Matrix {
        let mut t = Matrix::zeros(self.cols, self.rows);
        for i in 0..self.rows {
            for j in 0..self.cols {
                t[(j, i)] = self[(i, j)];
            }
        }
        t
    }

    /// Matrix–matrix product `self · rhs`.
    ///
    /// Uses the cache-friendly i-k-j loop order over contiguous row
    /// slices: every inner pass streams one row of `rhs` into one row of
    /// the output with unit stride and no per-element bounds checks, which
    /// is what the interior-point solver's normal-equation assembly
    /// (`AᵀA`-shaped products) spends its time in. Summation order matches
    /// the naive triple loop, so results are bit-identical.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::DimensionMismatch`] when the inner dimensions
    /// disagree.
    pub fn matmul(&self, rhs: &Matrix) -> Result<Matrix, LinalgError> {
        if self.cols != rhs.rows {
            return Err(LinalgError::DimensionMismatch {
                found: (rhs.rows, rhs.cols),
                expected: (self.cols, rhs.cols),
            });
        }
        let mut out = Matrix::zeros(self.rows, rhs.cols);
        let inner = self.cols;
        let width = rhs.cols;
        if inner == 0 || width == 0 || self.rows == 0 {
            return Ok(out);
        }
        for (arow, orow) in self
            .data
            .chunks_exact(inner)
            .zip(out.data.chunks_exact_mut(width))
        {
            for (k, &aik) in arow.iter().enumerate() {
                if aik == 0.0 {
                    continue;
                }
                let rrow = &rhs.data[k * width..(k + 1) * width];
                for (o, &r) in orow.iter_mut().zip(rrow) {
                    *o += aik * r;
                }
            }
        }
        Ok(out)
    }

    /// Matrix–vector product `self · x`.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::DimensionMismatch`] when `x.len() != self.cols()`.
    pub fn matvec(&self, x: &[f64]) -> Result<Vec<f64>, LinalgError> {
        if x.len() != self.cols {
            return Err(LinalgError::DimensionMismatch {
                found: (x.len(), 1),
                expected: (self.cols, 1),
            });
        }
        Ok((0..self.rows)
            .map(|i| crate::vector::dot(self.row(i), x))
            .collect())
    }

    /// Vector–matrix product `xᵀ · self` (a row vector result).
    ///
    /// This is the natural operation for propagating a state probability
    /// distribution through a stochastic matrix: `p' = p P`.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::DimensionMismatch`] when `x.len() != self.rows()`.
    pub fn vecmat(&self, x: &[f64]) -> Result<Vec<f64>, LinalgError> {
        if x.len() != self.rows {
            return Err(LinalgError::DimensionMismatch {
                found: (1, x.len()),
                expected: (1, self.rows),
            });
        }
        let mut out = vec![0.0; self.cols];
        for (i, &xi) in x.iter().enumerate() {
            if xi == 0.0 {
                continue;
            }
            for (o, a) in out.iter_mut().zip(self.row(i)) {
                *o += xi * a;
            }
        }
        Ok(out)
    }

    /// Returns `self` scaled by `factor`.
    pub fn scaled(&self, factor: f64) -> Matrix {
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|v| v * factor).collect(),
        }
    }

    /// Maximum absolute entry (the max-norm); zero for conceptually empty
    /// matrices.
    pub fn max_abs(&self) -> f64 {
        self.data.iter().fold(0.0_f64, |m, v| m.max(v.abs()))
    }

    /// Frobenius norm.
    pub fn frobenius_norm(&self) -> f64 {
        self.data.iter().map(|v| v * v).sum::<f64>().sqrt()
    }

    /// Checks that every entry is finite.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::NonFiniteEntry`] pointing at the first NaN or
    /// infinite entry.
    pub fn validate_finite(&self) -> Result<(), LinalgError> {
        for i in 0..self.rows {
            for j in 0..self.cols {
                if !self[(i, j)].is_finite() {
                    return Err(LinalgError::NonFiniteEntry { row: i, col: j });
                }
            }
        }
        Ok(())
    }

    /// Iterates over `(row, col, value)` triples in row-major order.
    pub fn iter(&self) -> impl Iterator<Item = (usize, usize, f64)> + '_ {
        let cols = self.cols;
        self.data
            .iter()
            .enumerate()
            .map(move |(k, &v)| (k / cols, k % cols, v))
    }
}

impl Index<(usize, usize)> for Matrix {
    type Output = f64;

    fn index(&self, (i, j): (usize, usize)) -> &f64 {
        assert!(
            i < self.rows && j < self.cols,
            "index ({i}, {j}) out of bounds for {}x{} matrix",
            self.rows,
            self.cols
        );
        &self.data[i * self.cols + j]
    }
}

impl IndexMut<(usize, usize)> for Matrix {
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut f64 {
        assert!(
            i < self.rows && j < self.cols,
            "index ({i}, {j}) out of bounds for {}x{} matrix",
            self.rows,
            self.cols
        );
        &mut self.data[i * self.cols + j]
    }
}

impl Add<&Matrix> for &Matrix {
    type Output = Matrix;

    fn add(self, rhs: &Matrix) -> Matrix {
        assert_eq!(self.shape(), rhs.shape(), "matrix addition shape mismatch");
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self
                .data
                .iter()
                .zip(&rhs.data)
                .map(|(a, b)| a + b)
                .collect(),
        }
    }
}

impl Sub<&Matrix> for &Matrix {
    type Output = Matrix;

    fn sub(self, rhs: &Matrix) -> Matrix {
        assert_eq!(
            self.shape(),
            rhs.shape(),
            "matrix subtraction shape mismatch"
        );
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self
                .data
                .iter()
                .zip(&rhs.data)
                .map(|(a, b)| a - b)
                .collect(),
        }
    }
}

impl Mul<f64> for &Matrix {
    type Output = Matrix;

    fn mul(self, rhs: f64) -> Matrix {
        self.scaled(rhs)
    }
}

impl fmt::Debug for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Matrix {}x{} [", self.rows, self.cols)?;
        for i in 0..self.rows.min(8) {
            write!(f, "  [")?;
            for j in 0..self.cols.min(12) {
                write!(f, "{:>10.4}", self[(i, j)])?;
                if j + 1 < self.cols.min(12) {
                    write!(f, ", ")?;
                }
            }
            if self.cols > 12 {
                write!(f, ", …")?;
            }
            writeln!(f, "]")?;
        }
        if self.rows > 8 {
            writeln!(f, "  …")?;
        }
        write!(f, "]")
    }
}

impl fmt::Display for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for i in 0..self.rows {
            for j in 0..self.cols {
                write!(f, "{:>12.6}", self[(i, j)])?;
                if j + 1 < self.cols {
                    write!(f, " ")?;
                }
            }
            if i + 1 < self.rows {
                writeln!(f)?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_and_identity() {
        let z = Matrix::zeros(2, 3);
        assert_eq!(z.shape(), (2, 3));
        assert!(z.as_slice().iter().all(|&v| v == 0.0));
        let i = Matrix::identity(3);
        assert_eq!(i[(0, 0)], 1.0);
        assert_eq!(i[(0, 1)], 0.0);
        assert!(i.is_square());
    }

    #[test]
    fn from_rows_rejects_ragged_input() {
        let err = Matrix::from_rows(&[&[1.0, 2.0], &[3.0]]).unwrap_err();
        assert_eq!(err, LinalgError::RaggedRows { row: 1 });
    }

    #[test]
    fn from_rows_rejects_empty_input() {
        assert_eq!(Matrix::from_rows(&[]).unwrap_err(), LinalgError::Empty);
    }

    #[test]
    fn from_vec_checks_length() {
        assert!(Matrix::from_vec(2, 2, vec![1.0; 3]).is_err());
        assert!(Matrix::from_vec(2, 2, vec![1.0; 4]).is_ok());
    }

    #[test]
    fn matmul_matches_hand_computation() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]).unwrap();
        let b = Matrix::from_rows(&[&[5.0, 6.0], &[7.0, 8.0]]).unwrap();
        let c = a.matmul(&b).unwrap();
        assert_eq!(c[(0, 0)], 19.0);
        assert_eq!(c[(0, 1)], 22.0);
        assert_eq!(c[(1, 0)], 43.0);
        assert_eq!(c[(1, 1)], 50.0);
    }

    #[test]
    fn matmul_rejects_mismatched_shapes() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        assert!(a.matmul(&b).is_err());
    }

    #[test]
    fn matvec_and_vecmat() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]).unwrap();
        assert_eq!(a.matvec(&[1.0, 1.0]).unwrap(), vec![3.0, 7.0]);
        assert_eq!(a.vecmat(&[1.0, 1.0]).unwrap(), vec![4.0, 6.0]);
        assert!(a.matvec(&[1.0]).is_err());
        assert!(a.vecmat(&[1.0, 2.0, 3.0]).is_err());
    }

    #[test]
    fn transpose_round_trips() {
        let a = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]).unwrap();
        let t = a.transpose();
        assert_eq!(t.shape(), (3, 2));
        assert_eq!(t[(2, 1)], 6.0);
        assert_eq!(t.transpose(), a);
    }

    #[test]
    fn add_sub_scale() {
        let a = Matrix::from_rows(&[&[1.0, 2.0]]).unwrap();
        let b = Matrix::from_rows(&[&[3.0, 4.0]]).unwrap();
        assert_eq!((&a + &b).as_slice(), &[4.0, 6.0]);
        assert_eq!((&b - &a).as_slice(), &[2.0, 2.0]);
        assert_eq!((&a * 2.0).as_slice(), &[2.0, 4.0]);
    }

    #[test]
    fn norms() {
        let a = Matrix::from_rows(&[&[3.0, -4.0]]).unwrap();
        assert_eq!(a.max_abs(), 4.0);
        assert!((a.frobenius_norm() - 5.0).abs() < 1e-12);
    }

    #[test]
    fn validate_finite_catches_nan() {
        let mut a = Matrix::zeros(2, 2);
        a[(1, 0)] = f64::NAN;
        assert_eq!(
            a.validate_finite().unwrap_err(),
            LinalgError::NonFiniteEntry { row: 1, col: 0 }
        );
    }

    #[test]
    fn get_is_bounds_safe() {
        let a = Matrix::identity(2);
        assert_eq!(a.get(1, 1), Some(1.0));
        assert_eq!(a.get(2, 0), None);
    }

    #[test]
    fn iter_yields_row_major_triples() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]).unwrap();
        let triples: Vec<_> = a.iter().collect();
        assert_eq!(triples[1], (0, 1, 2.0));
        assert_eq!(triples[2], (1, 0, 3.0));
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn index_out_of_bounds_panics() {
        let a = Matrix::zeros(1, 1);
        let _ = a[(1, 0)];
    }
}
