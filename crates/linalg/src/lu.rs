use crate::{LinalgError, Matrix, DEFAULT_PIVOT_TOLERANCE};

/// LU factorization with partial (row) pivoting: `P·A = L·U`.
///
/// The factorization is computed once and can then solve any number of
/// right-hand sides in `O(n²)` each. This is how the workspace solves the
/// policy-evaluation systems `(I − αPᵨ)v = cᵨ` and the stationary-
/// distribution systems of `dpm-markov`.
///
/// # Example
///
/// ```
/// use dpm_linalg::{Matrix, LuDecomposition};
///
/// # fn main() -> Result<(), dpm_linalg::LinalgError> {
/// let a = Matrix::from_rows(&[&[2.0, 1.0], &[1.0, 3.0]])?;
/// let lu = LuDecomposition::new(&a)?;
/// let x = lu.solve(&[3.0, 5.0])?;
/// // verify A x = b
/// let b = a.matvec(&x)?;
/// assert!((b[0] - 3.0).abs() < 1e-12 && (b[1] - 5.0).abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct LuDecomposition {
    /// Packed LU factors: strictly-lower part stores L (unit diagonal
    /// implied), upper triangle stores U.
    lu: Matrix,
    /// Row permutation: `perm[i]` is the original row now in position `i`.
    perm: Vec<usize>,
    /// Sign of the permutation, used by [`Self::determinant`].
    perm_sign: f64,
}

impl LuDecomposition {
    /// Factorizes a square matrix with the default pivot tolerance.
    ///
    /// # Errors
    ///
    /// * [`LinalgError::DimensionMismatch`] if `a` is not square.
    /// * [`LinalgError::SingularMatrix`] if a pivot column has no entry
    ///   larger than the tolerance.
    /// * [`LinalgError::NonFiniteEntry`] if `a` contains NaN/∞.
    pub fn new(a: &Matrix) -> Result<Self, LinalgError> {
        Self::with_tolerance(a, DEFAULT_PIVOT_TOLERANCE)
    }

    /// Factorizes with an explicit pivot tolerance.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Self::new`].
    pub fn with_tolerance(a: &Matrix, tol: f64) -> Result<Self, LinalgError> {
        if !a.is_square() {
            return Err(LinalgError::DimensionMismatch {
                found: a.shape(),
                expected: (a.rows(), a.rows()),
            });
        }
        a.validate_finite()?;
        let n = a.rows();
        let mut lu = a.clone();
        let mut perm: Vec<usize> = (0..n).collect();
        let mut perm_sign = 1.0;

        for k in 0..n {
            // Partial pivoting: pick the largest entry in column k at or
            // below the diagonal.
            let mut pivot_row = k;
            let mut pivot_val = lu[(k, k)].abs();
            for i in (k + 1)..n {
                let v = lu[(i, k)].abs();
                if v > pivot_val {
                    pivot_val = v;
                    pivot_row = i;
                }
            }
            if pivot_val <= tol {
                return Err(LinalgError::SingularMatrix { pivot: k });
            }
            if pivot_row != k {
                perm.swap(k, pivot_row);
                perm_sign = -perm_sign;
                for j in 0..n {
                    let tmp = lu[(k, j)];
                    lu[(k, j)] = lu[(pivot_row, j)];
                    lu[(pivot_row, j)] = tmp;
                }
            }
            let pivot = lu[(k, k)];
            for i in (k + 1)..n {
                let factor = lu[(i, k)] / pivot;
                lu[(i, k)] = factor;
                for j in (k + 1)..n {
                    let ukj = lu[(k, j)];
                    lu[(i, j)] -= factor * ukj;
                }
            }
        }

        Ok(LuDecomposition {
            lu,
            perm,
            perm_sign,
        })
    }

    /// Dimension of the factored matrix.
    pub fn dim(&self) -> usize {
        self.lu.rows()
    }

    /// Solves `A x = b` for a single right-hand side.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::DimensionMismatch`] when `b.len() != self.dim()`.
    pub fn solve(&self, b: &[f64]) -> Result<Vec<f64>, LinalgError> {
        let n = self.dim();
        if b.len() != n {
            return Err(LinalgError::DimensionMismatch {
                found: (b.len(), 1),
                expected: (n, 1),
            });
        }
        // Apply permutation: y = P b.
        let mut x: Vec<f64> = self.perm.iter().map(|&p| b[p]).collect();
        // Forward substitution with unit-diagonal L.
        for i in 1..n {
            let mut s = x[i];
            for (j, &xj) in x.iter().enumerate().take(i) {
                s -= self.lu[(i, j)] * xj;
            }
            x[i] = s;
        }
        // Backward substitution with U.
        for i in (0..n).rev() {
            let mut s = x[i];
            for (j, &xj) in x.iter().enumerate().skip(i + 1) {
                s -= self.lu[(i, j)] * xj;
            }
            x[i] = s / self.lu[(i, i)];
        }
        Ok(x)
    }

    /// Solves `Aᵀ x = b`, reusing the same factors (`Aᵀ = Uᵀ Lᵀ P`).
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::DimensionMismatch`] when `b.len() != self.dim()`.
    pub fn solve_transposed(&self, b: &[f64]) -> Result<Vec<f64>, LinalgError> {
        let n = self.dim();
        if b.len() != n {
            return Err(LinalgError::DimensionMismatch {
                found: (b.len(), 1),
                expected: (n, 1),
            });
        }
        let mut y = b.to_vec();
        // Solve Uᵀ z = b (forward substitution on the transpose of U).
        for i in 0..n {
            let mut s = y[i];
            for (j, &yj) in y.iter().enumerate().take(i) {
                s -= self.lu[(j, i)] * yj;
            }
            y[i] = s / self.lu[(i, i)];
        }
        // Solve Lᵀ w = z (backward substitution, unit diagonal).
        for i in (0..n).rev() {
            let mut s = y[i];
            for (j, &yj) in y.iter().enumerate().skip(i + 1) {
                s -= self.lu[(j, i)] * yj;
            }
            y[i] = s;
        }
        // x = Pᵀ w: undo the row permutation.
        let mut x = vec![0.0; n];
        for (i, &p) in self.perm.iter().enumerate() {
            x[p] = y[i];
        }
        Ok(x)
    }

    /// Solves `A X = B` column-by-column.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::DimensionMismatch`] when `B.rows() != self.dim()`.
    pub fn solve_matrix(&self, b: &Matrix) -> Result<Matrix, LinalgError> {
        let n = self.dim();
        if b.rows() != n {
            return Err(LinalgError::DimensionMismatch {
                found: b.shape(),
                expected: (n, b.cols()),
            });
        }
        let mut out = Matrix::zeros(n, b.cols());
        for j in 0..b.cols() {
            let col = b.col(j);
            let x = self.solve(&col)?;
            for i in 0..n {
                out[(i, j)] = x[i];
            }
        }
        Ok(out)
    }

    /// Computes `A⁻¹` explicitly. Prefer [`Self::solve`] when possible.
    ///
    /// # Errors
    ///
    /// Propagates errors from the per-column solves (none expected once the
    /// factorization has succeeded).
    pub fn inverse(&self) -> Result<Matrix, LinalgError> {
        self.solve_matrix(&Matrix::identity(self.dim()))
    }

    /// Determinant of the factored matrix (product of pivots times the
    /// permutation sign).
    pub fn determinant(&self) -> f64 {
        let mut det = self.perm_sign;
        for i in 0..self.dim() {
            det *= self.lu[(i, i)];
        }
        det
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vector::approx_eq;

    fn random_like_matrix(n: usize, seed: u64) -> Matrix {
        // Deterministic pseudo-random fill (xorshift) — keeps the test
        // self-contained without pulling rand into this crate.
        let mut s = seed.max(1);
        Matrix::from_fn(n, n, |i, j| {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            let v = (s % 1000) as f64 / 500.0 - 1.0;
            // Diagonal boost keeps the matrix comfortably non-singular.
            if i == j {
                v + (n as f64)
            } else {
                v
            }
        })
    }

    #[test]
    fn solves_known_system() {
        let a =
            Matrix::from_rows(&[&[2.0, 1.0, -1.0], &[-3.0, -1.0, 2.0], &[-2.0, 1.0, 2.0]]).unwrap();
        let lu = LuDecomposition::new(&a).unwrap();
        let x = lu.solve(&[8.0, -11.0, -3.0]).unwrap();
        assert!(approx_eq(&x, &[2.0, 3.0, -1.0], 1e-10));
    }

    #[test]
    fn solve_transposed_is_consistent() {
        let a = random_like_matrix(6, 42);
        let lu = LuDecomposition::new(&a).unwrap();
        let b: Vec<f64> = (0..6).map(|i| i as f64 - 2.5).collect();
        let x = lu.solve_transposed(&b).unwrap();
        let back = a.transpose().matvec(&x).unwrap();
        assert!(approx_eq(&back, &b, 1e-9));
    }

    #[test]
    fn inverse_times_matrix_is_identity() {
        let a = random_like_matrix(5, 7);
        let lu = LuDecomposition::new(&a).unwrap();
        let inv = lu.inverse().unwrap();
        let prod = a.matmul(&inv).unwrap();
        let id = Matrix::identity(5);
        assert!((&prod - &id).max_abs() < 1e-9);
    }

    #[test]
    fn detects_singularity() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 4.0]]).unwrap();
        match LuDecomposition::new(&a) {
            Err(LinalgError::SingularMatrix { .. }) => {}
            other => panic!("expected singular, got {other:?}"),
        }
    }

    #[test]
    fn rejects_non_square() {
        let a = Matrix::zeros(2, 3);
        assert!(matches!(
            LuDecomposition::new(&a),
            Err(LinalgError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn rejects_nan_input() {
        let mut a = Matrix::identity(2);
        a[(0, 1)] = f64::NAN;
        assert!(matches!(
            LuDecomposition::new(&a),
            Err(LinalgError::NonFiniteEntry { .. })
        ));
    }

    #[test]
    fn determinant_matches_known_value() {
        let a = Matrix::from_rows(&[&[3.0, 8.0], &[4.0, 6.0]]).unwrap();
        let lu = LuDecomposition::new(&a).unwrap();
        assert!((lu.determinant() - (-14.0)).abs() < 1e-10);
    }

    #[test]
    fn pivoting_handles_zero_leading_entry() {
        let a = Matrix::from_rows(&[&[0.0, 1.0], &[1.0, 0.0]]).unwrap();
        let lu = LuDecomposition::new(&a).unwrap();
        let x = lu.solve(&[5.0, 6.0]).unwrap();
        assert!(approx_eq(&x, &[6.0, 5.0], 1e-12));
    }

    #[test]
    fn solve_matrix_solves_all_columns() {
        let a = random_like_matrix(4, 99);
        let lu = LuDecomposition::new(&a).unwrap();
        let b = random_like_matrix(4, 123);
        let x = lu.solve_matrix(&b).unwrap();
        let back = a.matmul(&x).unwrap();
        assert!((&back - &b).max_abs() < 1e-9);
    }

    #[test]
    fn mismatched_rhs_is_rejected() {
        let a = Matrix::identity(3);
        let lu = LuDecomposition::new(&a).unwrap();
        assert!(lu.solve(&[1.0, 2.0]).is_err());
        assert!(lu.solve_transposed(&[1.0]).is_err());
    }
}
