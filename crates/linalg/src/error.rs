use std::error::Error;
use std::fmt;

/// Errors produced by the dense linear-algebra kernels.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum LinalgError {
    /// A matrix was constructed or used with inconsistent dimensions.
    DimensionMismatch {
        /// What the caller supplied.
        found: (usize, usize),
        /// What the operation required.
        expected: (usize, usize),
    },
    /// A factorization met a pivot smaller than its tolerance, i.e. the
    /// matrix is singular to working precision.
    SingularMatrix {
        /// Index of the failing pivot.
        pivot: usize,
    },
    /// A Cholesky factorization met a non-positive diagonal, i.e. the matrix
    /// is not positive definite to working precision.
    NotPositiveDefinite {
        /// Index of the failing diagonal entry.
        index: usize,
    },
    /// A matrix constructor was given rows of unequal length.
    RaggedRows {
        /// Index of the first row whose length disagrees with row 0.
        row: usize,
    },
    /// An operation that requires a non-empty matrix received an empty one.
    Empty,
    /// A matrix entry was NaN or infinite where a finite value is required.
    NonFiniteEntry {
        /// Row of the offending entry.
        row: usize,
        /// Column of the offending entry.
        col: usize,
    },
    /// A factorization update was refused because it would push the
    /// accumulated update-growth gauge past the caller's stability limit
    /// ([`crate::SparseLu::set_growth_limit`]). The factors are left
    /// inconsistent; refactorize from the original columns.
    UpdateRefused {
        /// The growth the refused update would have reached.
        growth: f64,
        /// The configured limit it exceeded.
        limit: f64,
    },
}

impl fmt::Display for LinalgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LinalgError::DimensionMismatch { found, expected } => write!(
                f,
                "dimension mismatch: found {}x{}, expected {}x{}",
                found.0, found.1, expected.0, expected.1
            ),
            LinalgError::SingularMatrix { pivot } => {
                write!(
                    f,
                    "matrix is singular to working precision at pivot {pivot}"
                )
            }
            LinalgError::NotPositiveDefinite { index } => {
                write!(
                    f,
                    "matrix is not positive definite at diagonal index {index}"
                )
            }
            LinalgError::RaggedRows { row } => {
                write!(f, "row {row} has a different length than row 0")
            }
            LinalgError::Empty => write!(f, "operation requires a non-empty matrix"),
            LinalgError::NonFiniteEntry { row, col } => {
                write!(f, "non-finite entry at ({row}, {col})")
            }
            LinalgError::UpdateRefused { growth, limit } => {
                write!(
                    f,
                    "factor update refused: growth {growth:.3e} exceeds the stability limit {limit:.3e}"
                )
            }
        }
    }
}

impl Error for LinalgError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_lowercase_and_informative() {
        let e = LinalgError::SingularMatrix { pivot: 3 };
        let msg = e.to_string();
        assert!(msg.contains("pivot 3"));
        assert!(msg.starts_with(char::is_lowercase));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<LinalgError>();
    }
}
