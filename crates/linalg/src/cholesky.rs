use crate::{LinalgError, Matrix};

/// Cholesky factorization `A = L·Lᵀ` of a symmetric positive-definite matrix.
///
/// The interior-point LP solver in `dpm-lp` forms the normal equations
/// `(A D² Aᵀ) Δy = r` at every iteration; those systems are SPD by
/// construction and Cholesky is the standard (and fastest) way to solve
/// them — this mirrors the structure of PCx, the solver used by the paper.
///
/// # Example
///
/// ```
/// use dpm_linalg::{Matrix, Cholesky};
///
/// # fn main() -> Result<(), dpm_linalg::LinalgError> {
/// let a = Matrix::from_rows(&[&[4.0, 2.0], &[2.0, 3.0]])?;
/// let chol = Cholesky::new(&a)?;
/// let x = chol.solve(&[2.0, 1.0])?;
/// let b = a.matvec(&x)?;
/// assert!((b[0] - 2.0).abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Cholesky {
    /// Lower-triangular factor, stored densely (upper part zero).
    l: Matrix,
}

impl Cholesky {
    /// Minimum pivot value before the matrix is declared not positive
    /// definite.
    const MIN_PIVOT: f64 = 1e-13;

    /// Factorizes a symmetric positive-definite matrix.
    ///
    /// Only the lower triangle of `a` is read; the caller is responsible
    /// for `a` being symmetric.
    ///
    /// # Errors
    ///
    /// * [`LinalgError::DimensionMismatch`] if `a` is not square.
    /// * [`LinalgError::NotPositiveDefinite`] if a diagonal pivot is not
    ///   sufficiently positive.
    /// * [`LinalgError::NonFiniteEntry`] if `a` contains NaN/∞.
    pub fn new(a: &Matrix) -> Result<Self, LinalgError> {
        if !a.is_square() {
            return Err(LinalgError::DimensionMismatch {
                found: a.shape(),
                expected: (a.rows(), a.rows()),
            });
        }
        a.validate_finite()?;
        let n = a.rows();
        let mut l = Matrix::zeros(n, n);
        for j in 0..n {
            let mut d = a[(j, j)];
            for k in 0..j {
                let ljk = l[(j, k)];
                d -= ljk * ljk;
            }
            if d <= Self::MIN_PIVOT {
                return Err(LinalgError::NotPositiveDefinite { index: j });
            }
            let dj = d.sqrt();
            l[(j, j)] = dj;
            for i in (j + 1)..n {
                let mut s = a[(i, j)];
                for k in 0..j {
                    s -= l[(i, k)] * l[(j, k)];
                }
                l[(i, j)] = s / dj;
            }
        }
        Ok(Cholesky { l })
    }

    /// Factorizes `a + shift·I`; used by the interior-point solver to
    /// regularize nearly-singular normal equations near convergence.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Self::new`].
    pub fn new_regularized(a: &Matrix, shift: f64) -> Result<Self, LinalgError> {
        let mut shifted = a.clone();
        for i in 0..a.rows() {
            shifted[(i, i)] += shift;
        }
        Self::new(&shifted)
    }

    /// Dimension of the factored matrix.
    pub fn dim(&self) -> usize {
        self.l.rows()
    }

    /// Borrows the lower-triangular factor `L`.
    pub fn factor(&self) -> &Matrix {
        &self.l
    }

    /// Solves `A x = b` via the two triangular solves `L z = b`, `Lᵀ x = z`.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::DimensionMismatch`] when `b.len() != self.dim()`.
    pub fn solve(&self, b: &[f64]) -> Result<Vec<f64>, LinalgError> {
        let n = self.dim();
        if b.len() != n {
            return Err(LinalgError::DimensionMismatch {
                found: (b.len(), 1),
                expected: (n, 1),
            });
        }
        let mut x = b.to_vec();
        // Forward: L z = b.
        for i in 0..n {
            let mut s = x[i];
            for (j, &xj) in x.iter().enumerate().take(i) {
                s -= self.l[(i, j)] * xj;
            }
            x[i] = s / self.l[(i, i)];
        }
        // Backward: Lᵀ x = z.
        for i in (0..n).rev() {
            let mut s = x[i];
            for (j, &xj) in x.iter().enumerate().skip(i + 1) {
                s -= self.l[(j, i)] * xj;
            }
            x[i] = s / self.l[(i, i)];
        }
        Ok(x)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vector::approx_eq;

    /// Builds the SPD matrix M·Mᵀ + I from a deterministic pseudo-random M.
    fn spd_matrix(n: usize, seed: u64) -> Matrix {
        let mut s = seed.max(1);
        let m = Matrix::from_fn(n, n, |_, _| {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            (s % 1000) as f64 / 500.0 - 1.0
        });
        let mut a = m.matmul(&m.transpose()).unwrap();
        for i in 0..n {
            a[(i, i)] += 1.0;
        }
        a
    }

    #[test]
    fn factor_reconstructs_matrix() {
        let a = spd_matrix(6, 11);
        let chol = Cholesky::new(&a).unwrap();
        let l = chol.factor();
        let back = l.matmul(&l.transpose()).unwrap();
        assert!((&back - &a).max_abs() < 1e-9);
    }

    #[test]
    fn solve_round_trips() {
        let a = spd_matrix(8, 23);
        let chol = Cholesky::new(&a).unwrap();
        let b: Vec<f64> = (0..8).map(|i| (i as f64).sin()).collect();
        let x = chol.solve(&b).unwrap();
        let back = a.matvec(&x).unwrap();
        assert!(approx_eq(&back, &b, 1e-9));
    }

    #[test]
    fn rejects_indefinite_matrix() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 1.0]]).unwrap(); // eigenvalues 3, -1
        assert!(matches!(
            Cholesky::new(&a),
            Err(LinalgError::NotPositiveDefinite { .. })
        ));
    }

    #[test]
    fn rejects_non_square() {
        assert!(Cholesky::new(&Matrix::zeros(2, 3)).is_err());
    }

    #[test]
    fn regularization_rescues_semidefinite_matrix() {
        // Rank-one PSD matrix: not PD, but PD after a diagonal shift.
        let a = Matrix::from_rows(&[&[1.0, 1.0], &[1.0, 1.0]]).unwrap();
        assert!(Cholesky::new(&a).is_err());
        assert!(Cholesky::new_regularized(&a, 1e-6).is_ok());
    }

    #[test]
    fn identity_solve_is_identity() {
        let chol = Cholesky::new(&Matrix::identity(4)).unwrap();
        let b = vec![1.0, -2.0, 3.0, -4.0];
        assert!(approx_eq(&chol.solve(&b).unwrap(), &b, 1e-15));
    }

    #[test]
    fn mismatched_rhs_is_rejected() {
        let chol = Cholesky::new(&Matrix::identity(3)).unwrap();
        assert!(chol.solve(&[1.0]).is_err());
    }
}
