//! Compressed sparse matrices for the LP pipeline.
//!
//! The occupation-measure LPs of the policy optimizer (LP2–LP4) have
//! balance rows with only a handful of nonzeros per state: `+1` on the
//! state's own action variables and `−α·p` on each in-flowing transition.
//! Even modest models are >95% sparse, and the scaled Appendix-B systems
//! exceed 99%. This module provides the three standard storage layouts —
//! [`TripletMatrix`] (a coordinate-format builder), [`CsrMatrix`]
//! (compressed sparse row, fast row access and `A·x`) and [`CscMatrix`]
//! (compressed sparse column, fast column access, the natural layout for a
//! revised simplex method that prices and pivots by column) — plus the
//! sparse·dense kernels the solvers need.
//!
//! Construction always goes through [`TripletMatrix`] or a conversion;
//! duplicate coordinates are **summed** on compression, matching the
//! LP-builder convention, and entries that cancel to exactly `0.0` are
//! dropped.
//!
//! # Example
//!
//! ```
//! use dpm_linalg::{CsrMatrix, TripletMatrix};
//!
//! # fn main() -> Result<(), dpm_linalg::LinalgError> {
//! let mut t = TripletMatrix::new(2, 3);
//! t.push(0, 0, 1.0)?;
//! t.push(1, 2, 2.0)?;
//! t.push(1, 2, 0.5)?; // duplicates are summed
//! let a: CsrMatrix = t.to_csr();
//! assert_eq!(a.nnz(), 2);
//! assert_eq!(a.matvec(&[1.0, 0.0, 2.0])?, vec![1.0, 5.0]);
//! # Ok(())
//! # }
//! ```

use crate::{LinalgError, Matrix};

/// Coordinate-format (`(row, col, value)`) sparse-matrix builder.
///
/// Entries may be pushed in any order; duplicates are summed when the
/// triplets are compressed into a [`CsrMatrix`] or [`CscMatrix`]. This is
/// the only mutable sparse type — the compressed forms are immutable once
/// built, which keeps their invariants trivial.
#[derive(Debug, Clone)]
pub struct TripletMatrix {
    rows: usize,
    cols: usize,
    entries: Vec<(usize, usize, f64)>,
}

impl TripletMatrix {
    /// Creates an empty `rows × cols` builder.
    pub fn new(rows: usize, cols: usize) -> Self {
        TripletMatrix {
            rows,
            cols,
            entries: Vec::new(),
        }
    }

    /// Creates an empty builder with room for `capacity` entries.
    pub fn with_capacity(rows: usize, cols: usize, capacity: usize) -> Self {
        TripletMatrix {
            rows,
            cols,
            entries: Vec::with_capacity(capacity),
        }
    }

    /// Records `a[(row, col)] += value`. Exact zeros are accepted (and
    /// dropped on compression).
    ///
    /// # Errors
    ///
    /// * [`LinalgError::DimensionMismatch`] when the coordinate is out of
    ///   bounds.
    /// * [`LinalgError::NonFiniteEntry`] when `value` is NaN or infinite.
    pub fn push(&mut self, row: usize, col: usize, value: f64) -> Result<(), LinalgError> {
        if row >= self.rows || col >= self.cols {
            return Err(LinalgError::DimensionMismatch {
                found: (row, col),
                expected: (self.rows, self.cols),
            });
        }
        if !value.is_finite() {
            return Err(LinalgError::NonFiniteEntry { row, col });
        }
        self.entries.push((row, col, value));
        Ok(())
    }

    /// Number of recorded triplets (before duplicate summation).
    pub fn nnz(&self) -> usize {
        self.entries.len()
    }

    /// `(rows, cols)` of the matrix being built.
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Compresses into row-major form, summing duplicates and dropping
    /// entries that cancel to exactly `0.0`.
    pub fn to_csr(&self) -> CsrMatrix {
        let compressed = compress(&self.entries, self.rows, |&(r, c, v)| (r, c, v));
        CsrMatrix {
            rows: self.rows,
            cols: self.cols,
            major_ptr: compressed.0,
            minor_idx: compressed.1,
            values: compressed.2,
        }
    }

    /// Compresses into column-major form, summing duplicates and dropping
    /// entries that cancel to exactly `0.0`.
    pub fn to_csc(&self) -> CscMatrix {
        let compressed = compress(&self.entries, self.cols, |&(r, c, v)| (c, r, v));
        CscMatrix {
            rows: self.rows,
            cols: self.cols,
            major_ptr: compressed.0,
            minor_idx: compressed.1,
            values: compressed.2,
        }
    }
}

/// Shared compression kernel: counting-sorts `entries` by the major index
/// produced by `key`, then sums duplicates within each major slice.
fn compress<T>(
    entries: &[T],
    num_major: usize,
    key: impl Fn(&T) -> (usize, usize, f64),
) -> (Vec<usize>, Vec<usize>, Vec<f64>) {
    // Counting pass: how many raw entries land in each major index.
    let mut counts = vec![0usize; num_major + 1];
    for e in entries {
        counts[key(e).0 + 1] += 1;
    }
    for i in 0..num_major {
        counts[i + 1] += counts[i];
    }
    // Scatter pass into per-major buckets.
    let mut minor = vec![0usize; entries.len()];
    let mut vals = vec![0.0f64; entries.len()];
    let mut cursor = counts.clone();
    for e in entries {
        let (maj, min, v) = key(e);
        let at = cursor[maj];
        minor[at] = min;
        vals[at] = v;
        cursor[maj] += 1;
    }
    // Per-major sort + duplicate summation, compacting in place.
    let mut major_ptr = vec![0usize; num_major + 1];
    let mut out_minor = Vec::with_capacity(entries.len());
    let mut out_vals = Vec::with_capacity(entries.len());
    for maj in 0..num_major {
        let (lo, hi) = (counts[maj], counts[maj + 1]);
        let mut slice: Vec<(usize, f64)> = minor[lo..hi]
            .iter()
            .copied()
            .zip(vals[lo..hi].iter().copied())
            .collect();
        slice.sort_unstable_by_key(|&(m, _)| m);
        let mut k = 0;
        while k < slice.len() {
            let (m, mut v) = slice[k];
            let mut j = k + 1;
            while j < slice.len() && slice[j].0 == m {
                v += slice[j].1;
                j += 1;
            }
            if v != 0.0 {
                out_minor.push(m);
                out_vals.push(v);
            }
            k = j;
        }
        major_ptr[maj + 1] = out_minor.len();
    }
    (major_ptr, out_minor, out_vals)
}

/// Compressed sparse row storage: fast row slices and `A·x`.
///
/// Invariants (maintained by construction, relied on by the kernels):
/// column indices within each row are strictly increasing, and no stored
/// value is exactly `0.0`.
#[derive(Debug, Clone, PartialEq)]
pub struct CsrMatrix {
    rows: usize,
    cols: usize,
    /// `major_ptr[i]..major_ptr[i+1]` spans row `i` in the index/value
    /// arrays.
    major_ptr: Vec<usize>,
    minor_idx: Vec<usize>,
    values: Vec<f64>,
}

impl CsrMatrix {
    /// Builds from a dense matrix, dropping exact zeros.
    pub fn from_dense(dense: &Matrix) -> Self {
        let mut t = TripletMatrix::new(dense.rows(), dense.cols());
        for (i, j, v) in dense.iter() {
            if v != 0.0 {
                t.entries.push((i, j, v));
            }
        }
        t.to_csr()
    }

    /// Expands back to a dense matrix.
    pub fn to_dense(&self) -> Matrix {
        let mut m = Matrix::zeros(self.rows, self.cols);
        for i in 0..self.rows {
            let (cols, vals) = self.row(i);
            for (&j, &v) in cols.iter().zip(vals) {
                m[(i, j)] = v;
            }
        }
        m
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)` pair.
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Number of stored (nonzero) entries.
    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    /// Fraction of entries stored: `nnz / (rows·cols)`, 0 for empty shapes.
    pub fn density(&self) -> f64 {
        let cells = self.rows * self.cols;
        if cells == 0 {
            0.0
        } else {
            self.nnz() as f64 / cells as f64
        }
    }

    /// Row `i` as parallel `(column indices, values)` slices.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.rows()`.
    pub fn row(&self, i: usize) -> (&[usize], &[f64]) {
        assert!(i < self.rows, "row {i} out of bounds ({} rows)", self.rows);
        let span = self.major_ptr[i]..self.major_ptr[i + 1];
        (&self.minor_idx[span.clone()], &self.values[span])
    }

    /// Iterates over `(row, col, value)` triples in row-major order.
    pub fn iter(&self) -> impl Iterator<Item = (usize, usize, f64)> + '_ {
        (0..self.rows).flat_map(move |i| {
            let (cols, vals) = self.row(i);
            cols.iter().zip(vals).map(move |(&j, &v)| (i, j, v))
        })
    }

    /// Sparse·dense product `self · x`.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::DimensionMismatch`] when `x.len() != self.cols()`.
    pub fn matvec(&self, x: &[f64]) -> Result<Vec<f64>, LinalgError> {
        if x.len() != self.cols {
            return Err(LinalgError::DimensionMismatch {
                found: (x.len(), 1),
                expected: (self.cols, 1),
            });
        }
        let mut out = vec![0.0; self.rows];
        for (i, o) in out.iter_mut().enumerate() {
            let (cols, vals) = self.row(i);
            let mut acc = 0.0;
            for (&j, &v) in cols.iter().zip(vals) {
                acc += v * x[j];
            }
            *o = acc;
        }
        Ok(out)
    }

    /// Transposed sparse·dense product `selfᵀ · x` without materializing
    /// the transpose.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::DimensionMismatch`] when `x.len() != self.rows()`.
    pub fn matvec_transposed(&self, x: &[f64]) -> Result<Vec<f64>, LinalgError> {
        if x.len() != self.rows {
            return Err(LinalgError::DimensionMismatch {
                found: (x.len(), 1),
                expected: (self.rows, 1),
            });
        }
        let mut out = vec![0.0; self.cols];
        for (i, &xi) in x.iter().enumerate() {
            if xi == 0.0 {
                continue;
            }
            let (cols, vals) = self.row(i);
            for (&j, &v) in cols.iter().zip(vals) {
                out[j] += v * xi;
            }
        }
        Ok(out)
    }

    /// Sparse·dense matrix product `self · rhs` (dense result).
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::DimensionMismatch`] when the inner dimensions
    /// disagree.
    pub fn matmul_dense(&self, rhs: &Matrix) -> Result<Matrix, LinalgError> {
        if self.cols != rhs.rows() {
            return Err(LinalgError::DimensionMismatch {
                found: rhs.shape(),
                expected: (self.cols, rhs.cols()),
            });
        }
        let mut out = Matrix::zeros(self.rows, rhs.cols());
        for i in 0..self.rows {
            let (cols, vals) = self.row(i);
            let orow = out.row_mut(i);
            for (&k, &v) in cols.iter().zip(vals) {
                for (o, r) in orow.iter_mut().zip(rhs.row(k)) {
                    *o += v * r;
                }
            }
        }
        Ok(out)
    }

    /// Re-compresses in column-major order.
    pub fn to_csc(&self) -> CscMatrix {
        let triples: Vec<(usize, usize, f64)> = self.iter().collect();
        let compressed = compress(&triples, self.cols, |&(r, c, v)| (c, r, v));
        CscMatrix {
            rows: self.rows,
            cols: self.cols,
            major_ptr: compressed.0,
            minor_idx: compressed.1,
            values: compressed.2,
        }
    }
}

/// Compressed sparse column storage: fast column slices, the layout the
/// revised simplex method prices and pivots from.
///
/// Same invariants as [`CsrMatrix`], per column.
#[derive(Debug, Clone, PartialEq)]
pub struct CscMatrix {
    rows: usize,
    cols: usize,
    /// `major_ptr[j]..major_ptr[j+1]` spans column `j`.
    major_ptr: Vec<usize>,
    minor_idx: Vec<usize>,
    values: Vec<f64>,
}

impl CscMatrix {
    /// Builds from a dense matrix, dropping exact zeros.
    pub fn from_dense(dense: &Matrix) -> Self {
        let mut t = TripletMatrix::new(dense.rows(), dense.cols());
        for (i, j, v) in dense.iter() {
            if v != 0.0 {
                t.entries.push((i, j, v));
            }
        }
        t.to_csc()
    }

    /// Expands back to a dense matrix.
    pub fn to_dense(&self) -> Matrix {
        let mut m = Matrix::zeros(self.rows, self.cols);
        for j in 0..self.cols {
            let (rows, vals) = self.col(j);
            for (&i, &v) in rows.iter().zip(vals) {
                m[(i, j)] = v;
            }
        }
        m
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)` pair.
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Number of stored (nonzero) entries.
    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    /// Fraction of entries stored: `nnz / (rows·cols)`, 0 for empty shapes.
    pub fn density(&self) -> f64 {
        let cells = self.rows * self.cols;
        if cells == 0 {
            0.0
        } else {
            self.nnz() as f64 / cells as f64
        }
    }

    /// Column `j` as parallel `(row indices, values)` slices.
    ///
    /// # Panics
    ///
    /// Panics if `j >= self.cols()`.
    pub fn col(&self, j: usize) -> (&[usize], &[f64]) {
        assert!(j < self.cols, "col {j} out of bounds ({} cols)", self.cols);
        let span = self.major_ptr[j]..self.major_ptr[j + 1];
        (&self.minor_idx[span.clone()], &self.values[span])
    }

    /// Iterates over `(row, col, value)` triples in column-major order.
    pub fn iter(&self) -> impl Iterator<Item = (usize, usize, f64)> + '_ {
        (0..self.cols).flat_map(move |j| {
            let (rows, vals) = self.col(j);
            rows.iter().zip(vals).map(move |(&i, &v)| (i, j, v))
        })
    }

    /// Sparse·dense product `self · x` (column-scatter form).
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::DimensionMismatch`] when `x.len() != self.cols()`.
    pub fn matvec(&self, x: &[f64]) -> Result<Vec<f64>, LinalgError> {
        if x.len() != self.cols {
            return Err(LinalgError::DimensionMismatch {
                found: (x.len(), 1),
                expected: (self.cols, 1),
            });
        }
        let mut out = vec![0.0; self.rows];
        for (j, &xj) in x.iter().enumerate() {
            if xj == 0.0 {
                continue;
            }
            let (rows, vals) = self.col(j);
            for (&i, &v) in rows.iter().zip(vals) {
                out[i] += v * xj;
            }
        }
        Ok(out)
    }

    /// Transposed sparse·dense product `selfᵀ · x`: one sparse dot product
    /// per column, the revised simplex pricing kernel.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::DimensionMismatch`] when `x.len() != self.rows()`.
    pub fn matvec_transposed(&self, x: &[f64]) -> Result<Vec<f64>, LinalgError> {
        if x.len() != self.rows {
            return Err(LinalgError::DimensionMismatch {
                found: (x.len(), 1),
                expected: (self.rows, 1),
            });
        }
        let mut out = vec![0.0; self.cols];
        for (j, o) in out.iter_mut().enumerate() {
            let (rows, vals) = self.col(j);
            let mut acc = 0.0;
            for (&i, &v) in rows.iter().zip(vals) {
                acc += v * x[i];
            }
            *o = acc;
        }
        Ok(out)
    }

    /// Re-compresses in row-major order.
    pub fn to_csr(&self) -> CsrMatrix {
        let triples: Vec<(usize, usize, f64)> = self.iter().collect();
        let compressed = compress(&triples, self.rows, |&(r, c, v)| (r, c, v));
        CsrMatrix {
            rows: self.rows,
            cols: self.cols,
            major_ptr: compressed.0,
            minor_idx: compressed.1,
            values: compressed.2,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn example_dense() -> Matrix {
        Matrix::from_rows(&[
            &[1.0, 0.0, 2.0, 0.0],
            &[0.0, 0.0, 0.0, 0.0],
            &[3.0, 0.0, 0.0, -4.0],
        ])
        .unwrap()
    }

    #[test]
    fn triplet_sums_duplicates_and_drops_cancellations() {
        let mut t = TripletMatrix::new(2, 2);
        t.push(0, 1, 2.0).unwrap();
        t.push(0, 1, 0.5).unwrap();
        t.push(1, 0, 1.0).unwrap();
        t.push(1, 0, -1.0).unwrap();
        let csr = t.to_csr();
        assert_eq!(csr.nnz(), 1);
        assert_eq!(csr.to_dense()[(0, 1)], 2.5);
        let csc = t.to_csc();
        assert_eq!(csc.nnz(), 1);
        assert_eq!(csc.to_dense()[(0, 1)], 2.5);
    }

    #[test]
    fn triplet_rejects_out_of_bounds_and_non_finite() {
        let mut t = TripletMatrix::new(2, 2);
        assert!(matches!(
            t.push(2, 0, 1.0),
            Err(LinalgError::DimensionMismatch { .. })
        ));
        assert!(matches!(
            t.push(0, 0, f64::NAN),
            Err(LinalgError::NonFiniteEntry { .. })
        ));
        assert_eq!(t.nnz(), 0);
    }

    #[test]
    fn csr_round_trips_dense() {
        let dense = example_dense();
        let csr = CsrMatrix::from_dense(&dense);
        assert_eq!(csr.nnz(), 4);
        assert_eq!(csr.to_dense(), dense);
        assert_eq!(csr.shape(), (3, 4));
        assert!((csr.density() - 4.0 / 12.0).abs() < 1e-15);
    }

    #[test]
    fn csc_round_trips_dense() {
        let dense = example_dense();
        let csc = CscMatrix::from_dense(&dense);
        assert_eq!(csc.nnz(), 4);
        assert_eq!(csc.to_dense(), dense);
        let (rows, vals) = csc.col(0);
        assert_eq!(rows, &[0, 2]);
        assert_eq!(vals, &[1.0, 3.0]);
    }

    #[test]
    fn csr_csc_conversions_agree() {
        let dense = example_dense();
        let csr = CsrMatrix::from_dense(&dense);
        let csc = csr.to_csc();
        assert_eq!(csc, CscMatrix::from_dense(&dense));
        assert_eq!(csc.to_csr(), csr);
    }

    #[test]
    fn matvec_matches_dense() {
        let dense = example_dense();
        let x = [1.0, 2.0, 3.0, 4.0];
        let expect = dense.matvec(&x).unwrap();
        assert_eq!(CsrMatrix::from_dense(&dense).matvec(&x).unwrap(), expect);
        assert_eq!(CscMatrix::from_dense(&dense).matvec(&x).unwrap(), expect);
    }

    #[test]
    fn matvec_transposed_matches_dense() {
        let dense = example_dense();
        let x = [1.0, -1.0, 2.0];
        let expect = dense.transpose().matvec(&x).unwrap();
        assert_eq!(
            CsrMatrix::from_dense(&dense).matvec_transposed(&x).unwrap(),
            expect
        );
        assert_eq!(
            CscMatrix::from_dense(&dense).matvec_transposed(&x).unwrap(),
            expect
        );
    }

    #[test]
    fn matmul_dense_matches_dense() {
        let a = example_dense();
        let b = Matrix::from_fn(4, 2, |i, j| (i + 2 * j) as f64 - 1.5);
        let expect = a.matmul(&b).unwrap();
        let got = CsrMatrix::from_dense(&a).matmul_dense(&b).unwrap();
        assert_eq!(got, expect);
    }

    #[test]
    fn kernels_reject_mismatched_shapes() {
        let csr = CsrMatrix::from_dense(&example_dense());
        let csc = csr.to_csc();
        assert!(csr.matvec(&[1.0]).is_err());
        assert!(csr.matvec_transposed(&[1.0]).is_err());
        assert!(csc.matvec(&[1.0]).is_err());
        assert!(csc.matvec_transposed(&[1.0]).is_err());
        assert!(csr.matmul_dense(&Matrix::zeros(3, 3)).is_err());
    }

    #[test]
    fn iter_yields_sorted_triples() {
        let csr = CsrMatrix::from_dense(&example_dense());
        let triples: Vec<_> = csr.iter().collect();
        assert_eq!(
            triples,
            vec![(0, 0, 1.0), (0, 2, 2.0), (2, 0, 3.0), (2, 3, -4.0)]
        );
    }

    #[test]
    fn empty_shapes_are_fine() {
        let t = TripletMatrix::new(0, 5);
        let csr = t.to_csr();
        assert_eq!(csr.nnz(), 0);
        assert_eq!(csr.density(), 0.0);
        assert_eq!(csr.matvec(&[0.0; 5]).unwrap(), Vec::<f64>::new());
    }
}
