//! Dense linear-algebra substrate for the `markov-dpm` workspace.
//!
//! This crate provides exactly the numerical kernels the rest of the
//! reproduction needs — no more, no less:
//!
//! * [`Matrix`] — a dense, row-major `f64` matrix with the usual algebra,
//! * [`LuDecomposition`] — LU factorization with partial pivoting, used to
//!   solve the square linear systems arising in exact policy evaluation
//!   (`(I − αPᵨ)v = cᵨ`) and in the simplex basis solves,
//! * [`Cholesky`] — symmetric positive-definite factorization, used by the
//!   interior-point LP solver's normal equations,
//! * [`sparse`] — [`CsrMatrix`]/[`CscMatrix`] compressed storage with a
//!   [`TripletMatrix`] builder and sparse·dense kernels, feeding the
//!   revised simplex method's sparse LP pipeline,
//! * [`sparse_lu`] — [`SparseLu`], a sparse LU factorization with
//!   Markowitz-ordered threshold pivoting, sparse triangular solves for
//!   `Ax=b`/`Aᵀx=b`, fill-in tracking and Forrest–Tomlin
//!   column-replacement updates — the revised simplex basis engine,
//! * [`vector`] — small helpers (dot products, norms, `axpy`) on `&[f64]`.
//!
//! Everything is implemented from scratch on `f64`; there are no external
//! numerical dependencies. The factorizations return errors (never panic)
//! on singular or non-SPD inputs so callers can degrade gracefully.
//!
//! # Example
//!
//! ```
//! use dpm_linalg::{Matrix, LuDecomposition};
//!
//! # fn main() -> Result<(), dpm_linalg::LinalgError> {
//! let a = Matrix::from_rows(&[&[4.0, 1.0], &[1.0, 3.0]])?;
//! let lu = LuDecomposition::new(&a)?;
//! let x = lu.solve(&[1.0, 2.0])?;
//! assert!((4.0 * x[0] + 1.0 * x[1] - 1.0).abs() < 1e-12);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]
#![deny(missing_debug_implementations)]

mod cholesky;
mod error;
mod lu;
mod matrix;
pub mod sparse;
pub mod sparse_lu;
pub mod vector;

pub use cholesky::Cholesky;
pub use error::LinalgError;
pub use lu::LuDecomposition;
pub use matrix::Matrix;
pub use sparse::{CscMatrix, CsrMatrix, TripletMatrix};
pub use sparse_lu::{SparseLu, SymbolicLu};

/// Default absolute tolerance used by the factorizations to declare a pivot
/// numerically zero.
pub const DEFAULT_PIVOT_TOLERANCE: f64 = 1e-12;
