//! Small vector helpers on `&[f64]` slices.
//!
//! The workspace deliberately represents vectors as plain `Vec<f64>` /
//! `&[f64]` — probability distributions, cost vectors and LP iterates all
//! flow through standard containers so callers can use the full iterator
//! toolbox — and this module supplies the handful of BLAS-1 style kernels
//! they need.

/// Dot product of two equally-long slices.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "dot product length mismatch");
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

/// In-place `y ← y + alpha * x`.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn axpy(alpha: f64, x: &[f64], y: &mut [f64]) {
    assert_eq!(x.len(), y.len(), "axpy length mismatch");
    for (yi, xi) in y.iter_mut().zip(x) {
        *yi += alpha * xi;
    }
}

/// Euclidean (ℓ²) norm.
pub fn norm2(a: &[f64]) -> f64 {
    dot(a, a).sqrt()
}

/// Maximum absolute value (ℓ∞ norm); zero for an empty slice.
pub fn norm_inf(a: &[f64]) -> f64 {
    a.iter().fold(0.0_f64, |m, v| m.max(v.abs()))
}

/// Sum of all entries (ℓ¹ "norm" for non-negative vectors).
pub fn sum(a: &[f64]) -> f64 {
    a.iter().sum()
}

/// Scales every entry in place.
pub fn scale(a: &mut [f64], factor: f64) {
    for v in a.iter_mut() {
        *v *= factor;
    }
}

/// Maximum absolute difference between two slices.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn max_abs_diff(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "max_abs_diff length mismatch");
    a.iter()
        .zip(b)
        .fold(0.0_f64, |m, (x, y)| m.max((x - y).abs()))
}

/// `true` when two slices agree entrywise within `tol`.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn approx_eq(a: &[f64], b: &[f64], tol: f64) -> bool {
    max_abs_diff(a, b) <= tol
}

/// Normalizes a non-negative slice in place so it sums to one, returning the
/// original sum. Leaves an all-zero slice untouched and returns 0.
pub fn normalize_l1(a: &mut [f64]) -> f64 {
    let s = sum(a);
    if s > 0.0 {
        scale(a, 1.0 / s);
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dot_basic() {
        assert_eq!(dot(&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]), 32.0);
        assert_eq!(dot(&[], &[]), 0.0);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn dot_length_mismatch_panics() {
        dot(&[1.0], &[1.0, 2.0]);
    }

    #[test]
    fn axpy_accumulates() {
        let mut y = vec![1.0, 1.0];
        axpy(2.0, &[3.0, 4.0], &mut y);
        assert_eq!(y, vec![7.0, 9.0]);
    }

    #[test]
    fn norms_match_hand_values() {
        assert!((norm2(&[3.0, 4.0]) - 5.0).abs() < 1e-15);
        assert_eq!(norm_inf(&[-7.0, 2.0]), 7.0);
        assert_eq!(norm_inf(&[]), 0.0);
        assert_eq!(sum(&[1.5, 2.5]), 4.0);
    }

    #[test]
    fn normalize_l1_makes_distribution() {
        let mut a = vec![1.0, 3.0];
        let s = normalize_l1(&mut a);
        assert_eq!(s, 4.0);
        assert!(approx_eq(&a, &[0.25, 0.75], 1e-15));
        let mut z = vec![0.0, 0.0];
        assert_eq!(normalize_l1(&mut z), 0.0);
        assert_eq!(z, vec![0.0, 0.0]);
    }

    #[test]
    fn max_abs_diff_symmetric() {
        assert_eq!(max_abs_diff(&[1.0, 5.0], &[2.0, 3.0]), 2.0);
        assert!(approx_eq(&[1.0], &[1.0 + 1e-12], 1e-9));
    }
}
