//! Sparse LU factorization with Markowitz pivoting and Forrest–Tomlin
//! column-replacement updates — the basis engine of the revised simplex.
//!
//! A simplex basis drawn from an occupation-measure LP is extremely
//! sparse: a balance row holds `+1` on a state's own action variables and
//! `−α·p` on its in-flows, so a few hundred- or thousand-row basis carries
//! only a handful of nonzeros per column. The dense
//! [`LuDecomposition`](crate::LuDecomposition) pays `O(m³)` per
//! factorization and `O(m²)` per solve regardless; this module's
//! [`SparseLu`] pays for the *nonzeros it actually touches*:
//!
//! * **Factorization** eliminates pivots in an order chosen by the
//!   **Markowitz criterion** — minimize `(r−1)·(c−1)` over the candidate
//!   entry's row count `r` and column count `c`, the classic greedy bound
//!   on fill-in — subject to **threshold partial pivoting** (an entry is
//!   admissible when it is within a fixed factor of its column's largest,
//!   so sparsity-driven pivot choices cannot wreck stability).
//! * **Solves** are sparse triangular substitutions through the stored
//!   `L` and `U` factors, for both `Ax = b` ([`SparseLu::solve`]) and
//!   `Aᵀx = b` ([`SparseLu::solve_transposed`]) — the simplex FTRAN and
//!   BTRAN kernels.
//! * **Updates**: [`SparseLu::replace_column`] performs a
//!   **Forrest–Tomlin update** when one column of the factored matrix is
//!   replaced (a simplex basis change): the spike column `w = L⁻¹a` is
//!   installed in `U`, the spiked row is cycled to the last pivot
//!   position, and the resulting row spike is eliminated by a short row
//!   transformation that is appended to the factorization. The factors
//!   *themselves* stay sparse — unlike a product-form eta file, whose
//!   dense `m`-vectors accumulate per pivot.
//!
//! Fill-in is tracked ([`SparseLu::fill_in`]) so callers can report how
//! far the factors drifted from the input's sparsity. Update stability is
//! tracked too: spike entries below a relative drop tolerance are
//! discarded during updates, and [`SparseLu::update_growth`] exposes a
//! Bartels–Golub-style growth gauge callers use to force an early
//! refactorization before accumulated updates lose accuracy.
//!
//! The analysis itself is reusable: [`SparseLu::symbolic`] exposes the
//! pivot sequence as an [`Arc`]-shared [`SymbolicLu`], and
//! [`SparseLu::from_columns_with_symbolic`] refactorizes a
//! shape-identical matrix along that fixed order in pure `O(nnz)`
//! elimination work — no Markowitz search. A fleet of solver sessions
//! whose bases share one sparsity pattern pays for one analysis.
//!
//! # Example
//!
//! ```
//! use dpm_linalg::SparseLu;
//!
//! # fn main() -> Result<(), dpm_linalg::LinalgError> {
//! // The 3×3 matrix [[2,1,0],[0,3,0],[0,0,4]] given by sparse columns.
//! let cols: Vec<Vec<(usize, f64)>> = vec![
//!     vec![(0, 2.0)],
//!     vec![(0, 1.0), (1, 3.0)],
//!     vec![(2, 4.0)],
//! ];
//! let mut lu = SparseLu::from_columns(3, &cols)?;
//! let x = lu.solve(&[5.0, 6.0, 8.0])?;
//! assert!((x[0] - 1.5).abs() < 1e-12 && (x[1] - 2.0).abs() < 1e-12);
//!
//! // Replace column 0 by [0, 1, 1]ᵀ — a Forrest–Tomlin update.
//! lu.replace_column(0, &[(1, 1.0), (2, 1.0)])?;
//! let y = lu.solve(&[2.0, 3.0, 5.0])?;
//! assert!((y[1] - 2.0).abs() < 1e-12); // row 0 now reads x1 alone
//! # Ok(())
//! # }
//! ```

use std::sync::Arc;

use crate::{LinalgError, DEFAULT_PIVOT_TOLERANCE};

/// Relative threshold for partial pivoting: an entry is an admissible
/// pivot when its magnitude is at least this fraction of the largest
/// magnitude in its column. Larger values favor stability, smaller values
/// favor sparsity; 0.1 is the textbook compromise (Duff–Erisman–Reid).
const PIVOT_THRESHOLD: f64 = 0.1;

/// Relaxed admissibility threshold for refactorization along a *fixed*
/// symbolic order: the prescribed pivot only has to carry this fraction
/// of its column's weight. Looser than [`PIVOT_THRESHOLD`] because a
/// mild value drift must not invalidate a sound elimination order; a
/// pivot that decays below this has genuinely degenerated and the caller
/// falls back to a fresh Markowitz analysis.
const REFACTOR_PIVOT_THRESHOLD: f64 = 0.01;

/// Relative drop tolerance of Forrest–Tomlin updates: spike entries
/// below this fraction of the spike's largest magnitude are discarded
/// instead of installed. They would cost fill and solve work while
/// carrying no significant weight; the growth gauge bounds the damage.
const FT_DROP_TOLERANCE: f64 = 1e-12;

/// How many lowest-count candidate columns the Markowitz search examines
/// per pivot before settling (Suhl-style bounded search). Keeps pivot
/// selection `O(n)` per step while capturing almost all the fill savings
/// of an exhaustive search.
const MARKOWITZ_CANDIDATES: usize = 8;

/// One Forrest–Tomlin row transformation: after an update, the spiked row
/// `target` was eliminated as `row_target ← row_target − Σ mⱼ·row_j`.
#[derive(Debug, Clone)]
struct RowEta {
    /// Pivot id of the eliminated (spiked) row.
    target: usize,
    /// `(pivot id j, multiplier mⱼ)` terms, in elimination order.
    terms: Vec<(usize, f64)>,
}

/// The symbolic half of a [`SparseLu`] factorization: the pivot sequence
/// the Markowitz analysis chose — which original row and column are
/// eliminated at each step, which fixes the elimination structure and
/// the fill pattern it induces.
///
/// A shape-identical matrix (same dimension and sparsity pattern,
/// drifted values) can be refactorized along this order with
/// [`SparseLu::from_columns_with_symbolic`], skipping the Markowitz
/// search entirely. The structure is handed out `Arc`-shared
/// ([`SparseLu::symbolic`]) so thousands of solver sessions factoring
/// the same LP shape pay for **one** analysis.
#[derive(Debug)]
pub struct SymbolicLu {
    n: usize,
    /// `row_of[k]` = original row eliminated at step `k`.
    row_of: Vec<usize>,
    /// `col_of[k]` = original column eliminated at step `k`.
    col_of: Vec<usize>,
}

impl SymbolicLu {
    /// Dimension of the analyzed matrix.
    pub fn dim(&self) -> usize {
        self.n
    }
}

/// Sparse LU factorization `A = Pᵀ L U Qᵀ` of a square matrix given by
/// sparse columns, with Markowitz-ordered threshold pivoting and
/// Forrest–Tomlin column-replacement updates.
///
/// `P`/`Q` are the row/column permutations the pivot order induces; `L` is
/// unit lower triangular and stays **fixed** after factorization, while
/// `U` (stored by rows, with a dynamic triangular ordering) absorbs
/// [`replace_column`](Self::replace_column) updates together with a short
/// list of row transformations. See the module docs for the algorithm.
#[derive(Debug, Clone)]
pub struct SparseLu {
    n: usize,
    /// Columns of `L` in elimination-step order; entries are
    /// `(original row, multiplier)` for rows eliminated later.
    l_cols: Vec<Vec<(usize, f64)>>,
    /// `row_of[k]` = original row eliminated at step `k`.
    row_of: Vec<usize>,
    /// Inverse of `row_of`.
    row_pos: Vec<usize>,
    /// `slot_of[id]` = original column pivot `id` factors.
    slot_of: Vec<usize>,
    /// Inverse of `slot_of`: original column → pivot id.
    id_of_slot: Vec<usize>,
    /// Diagonal of `U` by pivot id.
    udiag: Vec<f64>,
    /// Off-diagonal entries of `U` row `id`, keyed by *column pivot id*;
    /// every entry's column orders after its row (see `order`).
    urows: Vec<Vec<(usize, f64)>>,
    /// Row pivot ids holding an entry in `U` column `id`.
    ucols: Vec<Vec<usize>>,
    /// Current triangular ordering of pivot ids (changed by updates).
    order: Vec<usize>,
    /// Inverse of `order`: pivot id → position.
    pos: Vec<usize>,
    /// Forrest–Tomlin row transformations, applied after the `L` solve.
    etas: Vec<RowEta>,
    /// Nonzeros of the matrix as factored (for fill-in accounting).
    base_nnz: usize,
    /// Column replacements absorbed since factorization.
    updates: usize,
    /// The pivot sequence, shared with every factorization derived from
    /// the same symbolic analysis.
    symbolic: Arc<SymbolicLu>,
    /// Bartels–Golub-style growth gauge over the absorbed updates:
    /// the largest update multiplier / spike-to-diagonal ratio seen.
    /// Resets to 1 on (re)factorization.
    growth: f64,
    /// Stability ceiling for [`Self::replace_column`]: an update that
    /// would push `growth` past this refuses with
    /// [`LinalgError::UpdateRefused`]. Unlimited by default.
    growth_limit: f64,
}

impl SparseLu {
    /// Factorizes the `n × n` matrix whose `j`-th column is
    /// `columns[j]`, a list of `(row, value)` pairs (any order; duplicate
    /// rows within a column are summed, exact zeros ignored).
    ///
    /// # Errors
    ///
    /// * [`LinalgError::DimensionMismatch`] when `columns.len() != n` or
    ///   an entry's row index is out of range.
    /// * [`LinalgError::NonFiniteEntry`] on NaN/∞ values.
    /// * [`LinalgError::SingularMatrix`] when elimination runs out of
    ///   pivots above the tolerance — the matrix is singular (possibly
    ///   only structurally) to working precision.
    pub fn from_columns<C: AsRef<[(usize, f64)]>>(
        n: usize,
        columns: &[C],
    ) -> Result<Self, LinalgError> {
        let (mut state, base_nnz) = Factorizer::build(n, columns)?;
        for step in 0..n {
            let (pr, pc) = state.choose_pivot(step)?;
            state.eliminate(pr, pc);
        }
        Ok(state.finish(base_nnz))
    }

    /// Refactorizes a **shape-identical** matrix along the fixed pivot
    /// sequence of a previous analysis — the numeric half of the
    /// symbolic/numeric split. No Markowitz search runs: each step
    /// eliminates the prescribed `(row, column)` pair, so the cost is
    /// pure `O(nnz)` elimination work and the returned factorization
    /// shares `symbolic` (see [`Self::symbolic`]).
    ///
    /// Pivot admissibility is still checked, against the relaxed
    /// fixed-order threshold: a prescribed pivot that lost too much of
    /// its column's weight fails with
    /// [`LinalgError::SingularMatrix`], and the caller should fall back
    /// to a fresh [`Self::from_columns`] analysis.
    ///
    /// # Errors
    ///
    /// * [`LinalgError::DimensionMismatch`] /
    ///   [`LinalgError::NonFiniteEntry`] as in [`Self::from_columns`].
    /// * [`LinalgError::SingularMatrix`] when a prescribed pivot is
    ///   absent, inadmissibly small, or the matrix degenerated under
    ///   this order.
    pub fn from_columns_with_symbolic<C: AsRef<[(usize, f64)]>>(
        symbolic: &Arc<SymbolicLu>,
        columns: &[C],
    ) -> Result<Self, LinalgError> {
        let n = symbolic.n;
        let (mut state, base_nnz) = Factorizer::build(n, columns)?;
        for step in 0..n {
            let (pr, pc) = (symbolic.row_of[step], symbolic.col_of[step]);
            state.prepare_pivot(pr, pc, step)?;
            state.eliminate(pr, pc);
        }
        let mut lu = state.finish(base_nnz);
        lu.symbolic = Arc::clone(symbolic);
        Ok(lu)
    }

    /// The `Arc`-shared symbolic analysis (pivot sequence) this
    /// factorization follows — pass it to
    /// [`Self::from_columns_with_symbolic`] to refactorize
    /// shape-identical matrices without repeating the Markowitz search.
    pub fn symbolic(&self) -> Arc<SymbolicLu> {
        Arc::clone(&self.symbolic)
    }

    /// The update-stability gauge: the largest elimination multiplier /
    /// spike-to-diagonal ratio absorbed since (re)factorization, `1.0`
    /// right after factorizing. A large value means accumulated
    /// Forrest–Tomlin updates are amplifying rounding error and the
    /// caller should refactorize early.
    pub fn update_growth(&self) -> f64 {
        self.growth
    }

    /// Installs a stability ceiling on the update-growth gauge:
    /// a [`Self::replace_column`] call that would push
    /// [`Self::update_growth`] past `limit` is **refused** with
    /// [`LinalgError::UpdateRefused`] instead of silently absorbing an
    /// update whose roundoff amplification can no longer be trusted.
    /// Like every update error, a refusal leaves the factors
    /// inconsistent — the caller's refactorization fallback handles it.
    ///
    /// The default is `f64::INFINITY` (never refuse); the limit survives
    /// updates but not refactorization (a rebuilt factorization starts
    /// unlimited again).
    pub fn set_growth_limit(&mut self, limit: f64) {
        self.growth_limit = limit;
    }

    /// Dimension of the factored matrix.
    pub fn dim(&self) -> usize {
        self.n
    }

    /// Stored nonzeros across `L`, `U` (diagonal included) and the update
    /// row transformations.
    pub fn nnz_factors(&self) -> usize {
        let l: usize = self.l_cols.iter().map(Vec::len).sum();
        let u: usize = self.urows.iter().map(Vec::len).sum();
        let e: usize = self.etas.iter().map(|eta| eta.terms.len()).sum();
        l + u + self.n + e
    }

    /// Fill-in: nonzeros the factors hold beyond the factored matrix's
    /// own. Grows with updates; a refactorization resets it.
    pub fn fill_in(&self) -> usize {
        self.nnz_factors().saturating_sub(self.base_nnz)
    }

    /// Column replacements absorbed since the factorization was computed.
    pub fn updates(&self) -> usize {
        self.updates
    }

    /// Solves `A x = b` through the factors (simplex FTRAN).
    ///
    /// # Errors
    ///
    /// [`LinalgError::DimensionMismatch`] when `b.len() != self.dim()`.
    pub fn solve(&self, b: &[f64]) -> Result<Vec<f64>, LinalgError> {
        self.check_len(b)?;
        let w = self.backward_u(&self.forward_l(b));
        let mut x = vec![0.0; self.n];
        for (id, &wi) in w.iter().enumerate() {
            x[self.slot_of[id]] = wi;
        }
        Ok(x)
    }

    /// Solves `Aᵀ x = b` through the same factors (simplex BTRAN).
    ///
    /// # Errors
    ///
    /// [`LinalgError::DimensionMismatch`] when `b.len() != self.dim()`.
    pub fn solve_transposed(&self, b: &[f64]) -> Result<Vec<f64>, LinalgError> {
        self.check_len(b)?;
        let n = self.n;
        // Uᵀ z = Qᵀ b: forward substitution over the triangular order,
        // scattering each solved component into the rows below it.
        let mut acc = vec![0.0; n];
        let mut z = vec![0.0; n];
        for &id in &self.order {
            let zi = (b[self.slot_of[id]] - acc[id]) / self.udiag[id];
            z[id] = zi;
            if zi != 0.0 {
                for &(c, v) in &self.urows[id] {
                    acc[c] += v * zi;
                }
            }
        }
        // Transposed row transformations, in reverse.
        for eta in self.etas.iter().rev() {
            let zt = z[eta.target];
            if zt != 0.0 {
                for &(j, m) in &eta.terms {
                    z[j] -= m * zt;
                }
            }
        }
        // Lᵀ w = z: backward substitution over the fixed elimination order.
        let mut w = vec![0.0; n];
        for k in (0..n).rev() {
            let mut s = z[k];
            for &(i, f) in &self.l_cols[k] {
                s -= f * w[self.row_pos[i]];
            }
            w[k] = s;
        }
        let mut x = vec![0.0; n];
        for (k, &wk) in w.iter().enumerate() {
            x[self.row_of[k]] = wk;
        }
        Ok(x)
    }

    /// Replaces column `slot` of the factored matrix by the sparse
    /// `column` and updates the factors in place (Forrest–Tomlin). This is
    /// the simplex basis change: `O(nnz)` instead of a refactorization.
    ///
    /// # Errors
    ///
    /// * [`LinalgError::DimensionMismatch`] on a bad `slot` or row index.
    /// * [`LinalgError::NonFiniteEntry`] on NaN/∞ values.
    /// * [`LinalgError::SingularMatrix`] when the updated matrix is
    ///   singular to working precision (the new diagonal vanishes).
    /// * [`LinalgError::UpdateRefused`] when the update survived but
    ///   pushed the growth gauge past a configured
    ///   [`Self::set_growth_limit`].
    ///
    /// **On error the factorization is left inconsistent** and must be
    /// rebuilt with [`Self::from_columns`] — exactly what a simplex
    /// caller's refactorization fallback does.
    pub fn replace_column(
        &mut self,
        slot: usize,
        column: &[(usize, f64)],
    ) -> Result<(), LinalgError> {
        let n = self.n;
        if slot >= n {
            return Err(LinalgError::DimensionMismatch {
                found: (n, slot),
                expected: (n, n),
            });
        }
        let mut a = vec![0.0; n];
        for &(i, v) in column {
            if i >= n {
                return Err(LinalgError::DimensionMismatch {
                    found: (i, slot),
                    expected: (n, n),
                });
            }
            if !v.is_finite() {
                return Err(LinalgError::NonFiniteEntry { row: i, col: slot });
            }
            a[i] += v;
        }
        // Spike: the replaced column pulled through L and the previous
        // row transformations, in pivot-id space.
        let w = self.forward_l(&a);
        let t = self.id_of_slot[slot];

        // Drop the old column t and detach row t's off-diagonals into a
        // scratch "row spike".
        for r in std::mem::take(&mut self.ucols[t]) {
            self.urows[r].retain(|&(c, _)| c != t);
        }
        let mut spike = vec![0.0; n];
        for (c, v) in std::mem::take(&mut self.urows[t]) {
            spike[c] = v;
            self.ucols[c].retain(|&r| r != t);
        }

        // Cycle pivot t to the last position.
        let start = self.pos[t];
        self.order.remove(start);
        self.order.push(t);
        for (q, &id) in self.order.iter().enumerate().skip(start) {
            self.pos[id] = q;
        }

        // Eliminate the row spike left to right; the multipliers become a
        // row transformation and the spike column's entries fold into the
        // new diagonal. Entries below the relative drop tolerance are
        // discarded — they cost fill and solve work while carrying no
        // significant weight (the growth gauge bounds the damage).
        let w_max = w.iter().fold(0.0f64, |m, &v| m.max(v.abs()));
        let spike_max = spike.iter().fold(0.0f64, |m, &v| m.max(v.abs()));
        let mut diag = w[t];
        let mut terms: Vec<(usize, f64)> = Vec::new();
        let mut multiplier_max = 0.0f64;
        for q in start..n.saturating_sub(1) {
            let j = self.order[q];
            let s = spike[j];
            spike[j] = 0.0;
            if s.abs() <= FT_DROP_TOLERANCE * spike_max {
                continue;
            }
            let m = s / self.udiag[j];
            multiplier_max = multiplier_max.max(m.abs());
            terms.push((j, m));
            for &(c, v) in &self.urows[j] {
                spike[c] -= m * v;
            }
            diag -= m * w[j];
        }
        if diag.abs() <= DEFAULT_PIVOT_TOLERANCE {
            return Err(LinalgError::SingularMatrix { pivot: t });
        }

        // Install the spike as the new column t, dropping entries that
        // are negligible relative to the spike's largest.
        self.udiag[t] = diag;
        for (id, &wi) in w.iter().enumerate() {
            if id != t && wi.abs() > FT_DROP_TOLERANCE * w_max {
                self.urows[id].push((t, wi));
                self.ucols[t].push(id);
            }
        }
        if !terms.is_empty() {
            self.etas.push(RowEta { target: t, terms });
        }
        self.growth = self
            .growth
            .max(multiplier_max)
            .max(w_max / diag.abs().max(f64::MIN_POSITIVE));
        self.updates += 1;
        if self.growth > self.growth_limit {
            return Err(LinalgError::UpdateRefused {
                growth: self.growth,
                limit: self.growth_limit,
            });
        }
        Ok(())
    }

    fn check_len(&self, b: &[f64]) -> Result<(), LinalgError> {
        if b.len() != self.n {
            return Err(LinalgError::DimensionMismatch {
                found: (b.len(), 1),
                expected: (self.n, 1),
            });
        }
        Ok(())
    }

    /// `L̄⁻¹ P b`: the forward half of a solve — sparse substitution
    /// through `L`, then the update row transformations in order. Returns
    /// the result in pivot-id space.
    fn forward_l(&self, b: &[f64]) -> Vec<f64> {
        let n = self.n;
        let mut work = b.to_vec();
        let mut y = vec![0.0; n];
        for k in 0..n {
            let yk = work[self.row_of[k]];
            y[k] = yk;
            if yk != 0.0 {
                for &(i, f) in &self.l_cols[k] {
                    work[i] -= f * yk;
                }
            }
        }
        for eta in &self.etas {
            let mut s = y[eta.target];
            for &(j, m) in &eta.terms {
                s -= m * y[j];
            }
            y[eta.target] = s;
        }
        y
    }

    /// Backward substitution `U w = y` over the current triangular order,
    /// in pivot-id space.
    fn backward_u(&self, y: &[f64]) -> Vec<f64> {
        let mut w = vec![0.0; self.n];
        for &id in self.order.iter().rev() {
            let mut s = y[id];
            for &(c, v) in &self.urows[id] {
                s -= v * w[c];
            }
            w[id] = s / self.udiag[id];
        }
        w
    }
}

/// Working state of the Markowitz elimination.
struct Factorizer {
    n: usize,
    /// Active-row storage: `(column, value)` pairs, unordered.
    rows: Vec<Vec<(usize, f64)>>,
    /// Row indices per column; may contain stale rows (entries cancelled
    /// or rows eliminated), compacted lazily during pivot search.
    col_rows: Vec<Vec<usize>>,
    row_active: Vec<bool>,
    col_active: Vec<bool>,
    l_cols: Vec<Vec<(usize, f64)>>,
    /// U rows in original-column indexing (remapped to pivot ids at the
    /// end); diagonal kept separately.
    u_rows_raw: Vec<Vec<(usize, f64)>>,
    udiag: Vec<f64>,
    row_of: Vec<usize>,
    col_of: Vec<usize>,
    scratch_val: Vec<f64>,
    scratch_mark: Vec<bool>,
}

impl Factorizer {
    /// Validates `columns`, builds the row-major working storage plus
    /// column row-lists, and returns the ready elimination state together
    /// with the input's nonzero count.
    fn build<C: AsRef<[(usize, f64)]>>(
        n: usize,
        columns: &[C],
    ) -> Result<(Self, usize), LinalgError> {
        if columns.len() != n {
            return Err(LinalgError::DimensionMismatch {
                found: (n, columns.len()),
                expected: (n, n),
            });
        }
        let mut rows: Vec<Vec<(usize, f64)>> = vec![Vec::new(); n];
        for (j, col) in columns.iter().enumerate() {
            for &(i, v) in col.as_ref() {
                if i >= n {
                    return Err(LinalgError::DimensionMismatch {
                        found: (i, j),
                        expected: (n, n),
                    });
                }
                if !v.is_finite() {
                    return Err(LinalgError::NonFiniteEntry { row: i, col: j });
                }
                if v == 0.0 {
                    continue;
                }
                // Duplicates within one column arrive consecutively for
                // the same row only if pushed back-to-back; handle the
                // general case with a lookup (columns are short).
                if let Some(slot) = rows[i].iter_mut().find(|(c, _)| *c == j) {
                    slot.1 += v;
                } else {
                    rows[i].push((j, v));
                }
            }
        }
        let base_nnz = rows.iter().map(Vec::len).sum();
        let mut col_rows: Vec<Vec<usize>> = vec![Vec::new(); n];
        for (i, row) in rows.iter().enumerate() {
            for &(j, _) in row {
                col_rows[j].push(i);
            }
        }
        let state = Factorizer {
            n,
            rows,
            col_rows,
            row_active: vec![true; n],
            col_active: vec![true; n],
            l_cols: Vec::with_capacity(n),
            u_rows_raw: Vec::with_capacity(n),
            udiag: Vec::with_capacity(n),
            row_of: Vec::with_capacity(n),
            col_of: Vec::with_capacity(n),
            scratch_val: vec![0.0; n],
            scratch_mark: vec![false; n],
        };
        Ok((state, base_nnz))
    }

    /// Compacts the prescribed pivot's column and admits the prescribed
    /// entry — the fixed-order counterpart of [`Self::choose_pivot`],
    /// used when refactorizing along an existing symbolic analysis.
    /// [`Self::eliminate`] requires the pivot column compacted, which
    /// the Markowitz search does as a side effect and this does
    /// explicitly.
    fn prepare_pivot(&mut self, pr: usize, pc: usize, step: usize) -> Result<(), LinalgError> {
        if pr >= self.n || pc >= self.n || !self.row_active[pr] || !self.col_active[pc] {
            return Err(LinalgError::SingularMatrix { pivot: step });
        }
        let mut kept: Vec<usize> = Vec::with_capacity(self.col_rows[pc].len());
        let mut col_max = 0.0f64;
        let mut pivot_mag = 0.0f64;
        for idx in 0..self.col_rows[pc].len() {
            let i = self.col_rows[pc][idx];
            if !self.row_active[i] {
                continue;
            }
            let Some(&(_, v)) = self.rows[i].iter().find(|&&(c, _)| c == pc) else {
                continue;
            };
            if kept.contains(&i) {
                continue;
            }
            kept.push(i);
            col_max = col_max.max(v.abs());
            if i == pr {
                pivot_mag = v.abs();
            }
        }
        self.col_rows[pc] = kept;
        if pivot_mag <= DEFAULT_PIVOT_TOLERANCE || pivot_mag < REFACTOR_PIVOT_THRESHOLD * col_max {
            return Err(LinalgError::SingularMatrix { pivot: step });
        }
        Ok(())
    }

    /// Picks the next pivot by bounded Markowitz search: examine the few
    /// lowest-count active columns, keep the threshold-admissible entry
    /// with the smallest `(r−1)·(c−1)` cost (largest magnitude on ties).
    fn choose_pivot(&mut self, step: usize) -> Result<(usize, usize), LinalgError> {
        // Lowest-count candidate columns (stale counts are upper bounds —
        // compaction below tightens them before use).
        let mut candidates: Vec<usize> = Vec::with_capacity(MARKOWITZ_CANDIDATES);
        for j in 0..self.n {
            if !self.col_active[j] {
                continue;
            }
            let count = self.col_rows[j].len();
            if candidates.len() < MARKOWITZ_CANDIDATES {
                candidates.push(j);
                candidates.sort_by_key(|&c| self.col_rows[c].len());
            } else if count < self.col_rows[*candidates.last().expect("non-empty")].len() {
                candidates.pop();
                candidates.push(j);
                candidates.sort_by_key(|&c| self.col_rows[c].len());
            }
        }
        match self.best_among(&candidates) {
            Some(pivot) => Ok(pivot),
            None => {
                // The bounded search found nothing admissible; fall back
                // to scanning every active column before giving up.
                let all: Vec<usize> = (0..self.n).filter(|&j| self.col_active[j]).collect();
                self.best_among(&all)
                    .ok_or(LinalgError::SingularMatrix { pivot: step })
            }
        }
    }

    /// The Markowitz-best admissible entry among `columns`, if any.
    fn best_among(&mut self, columns: &[usize]) -> Option<(usize, usize)> {
        let mut best: Option<(usize, usize)> = None;
        let mut best_cost = usize::MAX;
        let mut best_mag = 0.0f64;
        for &j in columns {
            // Compact the column's row list: entries may have been
            // cancelled or their rows eliminated since it was built.
            let mut kept: Vec<usize> = Vec::with_capacity(self.col_rows[j].len());
            let mut col_max = 0.0f64;
            for idx in 0..self.col_rows[j].len() {
                let i = self.col_rows[j][idx];
                if !self.row_active[i] {
                    continue;
                }
                let Some(&(_, v)) = self.rows[i].iter().find(|&&(c, _)| c == j) else {
                    continue;
                };
                if kept.contains(&i) {
                    continue;
                }
                kept.push(i);
                col_max = col_max.max(v.abs());
            }
            self.col_rows[j] = kept;
            if col_max <= DEFAULT_PIVOT_TOLERANCE {
                continue;
            }
            let ccount = self.col_rows[j].len();
            let cutoff = PIVOT_THRESHOLD * col_max;
            for idx in 0..ccount {
                let i = self.col_rows[j][idx];
                let v = self.rows[i]
                    .iter()
                    .find(|&&(c, _)| c == j)
                    .map(|&(_, v)| v)
                    .expect("kept entries exist");
                if v.abs() < cutoff {
                    continue;
                }
                let cost = (self.rows[i].len() - 1) * (ccount - 1);
                let better = cost < best_cost || (cost == best_cost && v.abs() > best_mag);
                if better {
                    best = Some((i, j));
                    best_cost = cost;
                    best_mag = v.abs();
                }
            }
            if best_cost == 0 {
                break;
            }
        }
        best
    }

    /// Eliminates pivot `(pr, pc)`: records the `L` column and `U` row,
    /// and updates every remaining row carrying the pivot column.
    fn eliminate(&mut self, pr: usize, pc: usize) {
        let pivot_row = std::mem::take(&mut self.rows[pr]);
        let pivot_val = pivot_row
            .iter()
            .find(|&&(c, _)| c == pc)
            .map(|&(_, v)| v)
            .expect("pivot entry exists");
        self.row_active[pr] = false;
        self.col_active[pc] = false;
        self.row_of.push(pr);
        self.col_of.push(pc);
        self.udiag.push(pivot_val);

        let mut l_col: Vec<(usize, f64)> = Vec::new();
        // `col_rows[pc]` was compacted by the pivot search just before.
        let pivot_col_rows = std::mem::take(&mut self.col_rows[pc]);
        for &i in &pivot_col_rows {
            if i == pr {
                continue;
            }
            let entry = self.rows[i]
                .iter()
                .position(|&(c, _)| c == pc)
                .expect("compacted column lists are exact");
            let f = self.rows[i][entry].1 / pivot_val;
            self.rows[i].swap_remove(entry);
            l_col.push((i, f));

            // row_i ← row_i − f · pivot_row (pivot column already gone).
            let mut touched: Vec<usize> = Vec::with_capacity(self.rows[i].len() + pivot_row.len());
            for &(c, v) in &self.rows[i] {
                self.scratch_val[c] = v;
                self.scratch_mark[c] = true;
                touched.push(c);
            }
            for &(c, v) in &pivot_row {
                if c == pc {
                    continue;
                }
                if self.scratch_mark[c] {
                    self.scratch_val[c] -= f * v;
                } else {
                    self.scratch_val[c] = -f * v;
                    self.scratch_mark[c] = true;
                    touched.push(c);
                    self.col_rows[c].push(i); // fill-in
                }
            }
            let row = &mut self.rows[i];
            row.clear();
            for &c in &touched {
                let v = self.scratch_val[c];
                if v != 0.0 {
                    row.push((c, v));
                }
                self.scratch_val[c] = 0.0;
                self.scratch_mark[c] = false;
            }
        }
        self.l_cols.push(l_col);
        self.u_rows_raw
            .push(pivot_row.into_iter().filter(|&(c, _)| c != pc).collect());
    }

    /// Converts the elimination record into the solver representation.
    fn finish(self, base_nnz: usize) -> SparseLu {
        let n = self.n;
        let mut row_pos = vec![0usize; n];
        for (k, &r) in self.row_of.iter().enumerate() {
            row_pos[r] = k;
        }
        let mut id_of_slot = vec![0usize; n];
        for (k, &c) in self.col_of.iter().enumerate() {
            id_of_slot[c] = k;
        }
        let urows: Vec<Vec<(usize, f64)>> = self
            .u_rows_raw
            .into_iter()
            .map(|row| {
                row.into_iter()
                    .map(|(c, v)| (id_of_slot[c], v))
                    .collect::<Vec<_>>()
            })
            .collect();
        let mut ucols: Vec<Vec<usize>> = vec![Vec::new(); n];
        for (r, row) in urows.iter().enumerate() {
            for &(c, _) in row {
                ucols[c].push(r);
            }
        }
        let symbolic = Arc::new(SymbolicLu {
            n,
            row_of: self.row_of.clone(),
            col_of: self.col_of.clone(),
        });
        SparseLu {
            n,
            l_cols: self.l_cols,
            row_of: self.row_of,
            row_pos,
            slot_of: self.col_of,
            id_of_slot,
            udiag: self.udiag,
            urows,
            ucols,
            order: (0..n).collect(),
            pos: (0..n).collect(),
            etas: Vec::new(),
            base_nnz,
            updates: 0,
            symbolic,
            growth: 1.0,
            growth_limit: f64::INFINITY,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{vector, LuDecomposition, Matrix};

    fn columns_of(dense: &Matrix) -> Vec<Vec<(usize, f64)>> {
        (0..dense.cols())
            .map(|j| {
                (0..dense.rows())
                    .filter(|&i| dense[(i, j)] != 0.0)
                    .map(|i| (i, dense[(i, j)]))
                    .collect()
            })
            .collect()
    }

    fn sparse_random(n: usize, seed: u64) -> Matrix {
        // Deterministic xorshift fill: ~3 off-diagonals per row plus a
        // dominant diagonal, the shape of a simplex basis.
        let mut s = seed.max(1);
        let mut next = move || {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            s
        };
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 2.0 + (next() % 100) as f64 / 50.0;
            for _ in 0..3 {
                let j = (next() as usize) % n;
                if j != i {
                    m[(i, j)] = (next() % 200) as f64 / 100.0 - 1.0;
                }
            }
        }
        m
    }

    #[test]
    fn solves_agree_with_dense_lu() {
        for seed in 1..8u64 {
            let a = sparse_random(12, seed);
            let sparse = SparseLu::from_columns(12, &columns_of(&a)).unwrap();
            let dense = LuDecomposition::new(&a).unwrap();
            let b: Vec<f64> = (0..12).map(|i| (i as f64) - 5.5).collect();
            let xs = sparse.solve(&b).unwrap();
            let xd = dense.solve(&b).unwrap();
            assert!(
                vector::max_abs_diff(&xs, &xd) < 1e-10,
                "seed {seed}: sparse/dense solve disagree"
            );
            let ts = sparse.solve_transposed(&b).unwrap();
            let td = dense.solve_transposed(&b).unwrap();
            assert!(
                vector::max_abs_diff(&ts, &td) < 1e-10,
                "seed {seed}: transpose"
            );
        }
    }

    #[test]
    fn permutation_matrix_factors_without_fill() {
        // Column j is e_{(j+1) mod n}: pure permutation, zero fill.
        let n = 6;
        let cols: Vec<Vec<(usize, f64)>> = (0..n).map(|j| vec![((j + 1) % n, 1.0)]).collect();
        let lu = SparseLu::from_columns(n, &cols).unwrap();
        assert_eq!(lu.fill_in(), 0);
        let b: Vec<f64> = (0..n).map(|i| i as f64).collect();
        let x = lu.solve(&b).unwrap();
        for (j, &xj) in x.iter().enumerate() {
            assert!((xj - b[(j + 1) % n]).abs() < 1e-15);
        }
    }

    #[test]
    fn singular_matrix_is_detected() {
        // Zero column.
        let cols: Vec<Vec<(usize, f64)>> = vec![vec![(0, 1.0)], vec![]];
        assert!(matches!(
            SparseLu::from_columns(2, &cols),
            Err(LinalgError::SingularMatrix { .. })
        ));
        // Linearly dependent columns.
        let cols: Vec<Vec<(usize, f64)>> = vec![vec![(0, 1.0), (1, 2.0)], vec![(0, 2.0), (1, 4.0)]];
        assert!(matches!(
            SparseLu::from_columns(2, &cols),
            Err(LinalgError::SingularMatrix { .. })
        ));
    }

    #[test]
    fn rejects_bad_inputs() {
        let cols: Vec<Vec<(usize, f64)>> = vec![vec![(0, 1.0)]];
        assert!(matches!(
            SparseLu::from_columns(2, &cols),
            Err(LinalgError::DimensionMismatch { .. })
        ));
        let cols = vec![vec![(5, 1.0)], vec![(1, 1.0)]];
        assert!(matches!(
            SparseLu::from_columns(2, &cols),
            Err(LinalgError::DimensionMismatch { .. })
        ));
        let cols = vec![vec![(0, f64::NAN)], vec![(1, 1.0)]];
        assert!(matches!(
            SparseLu::from_columns(2, &cols),
            Err(LinalgError::NonFiniteEntry { .. })
        ));
        let lu = SparseLu::from_columns(1, &[vec![(0, 1.0)]]).unwrap();
        assert!(lu.solve(&[1.0, 2.0]).is_err());
        assert!(lu.solve_transposed(&[]).is_err());
    }

    #[test]
    fn replace_column_tracks_fresh_factorization() {
        let mut a = sparse_random(10, 42);
        let mut lu = SparseLu::from_columns(10, &columns_of(&a)).unwrap();
        let b: Vec<f64> = (0..10).map(|i| 1.0 + i as f64 / 3.0).collect();
        // A chain of column replacements, checked against refactorization.
        for (step, &slot) in [3usize, 7, 0, 3, 9, 5].iter().enumerate() {
            let mut col = [0.0; 10];
            col[slot] = 3.0 + step as f64;
            col[(slot + 3) % 10] = -1.0 + step as f64 / 7.0;
            col[(slot + 6) % 10] = 0.5;
            for (i, &v) in col.iter().enumerate() {
                a[(i, slot)] = v;
            }
            let sparse_col: Vec<(usize, f64)> = col
                .iter()
                .enumerate()
                .filter(|&(_, &v)| v != 0.0)
                .map(|(i, &v)| (i, v))
                .collect();
            lu.replace_column(slot, &sparse_col).unwrap();
            assert_eq!(lu.updates(), step + 1);

            let fresh = SparseLu::from_columns(10, &columns_of(&a)).unwrap();
            let (xu, xf) = (lu.solve(&b).unwrap(), fresh.solve(&b).unwrap());
            assert!(
                vector::max_abs_diff(&xu, &xf) < 1e-9,
                "step {step}: updated vs fresh FTRAN"
            );
            let (tu, tf) = (
                lu.solve_transposed(&b).unwrap(),
                fresh.solve_transposed(&b).unwrap(),
            );
            assert!(
                vector::max_abs_diff(&tu, &tf) < 1e-9,
                "step {step}: updated vs fresh BTRAN"
            );
        }
    }

    #[test]
    fn replace_column_detects_singular_update() {
        // Make column 1 a duplicate of column 0: singular.
        let a = sparse_random(5, 7);
        let cols = columns_of(&a);
        let mut lu = SparseLu::from_columns(5, &cols).unwrap();
        let dup = cols[0].clone();
        assert!(matches!(
            lu.replace_column(1, &dup),
            Err(LinalgError::SingularMatrix { .. })
        ));
    }

    #[test]
    fn empty_matrix_is_fine() {
        let lu = SparseLu::from_columns(0, &Vec::<Vec<(usize, f64)>>::new()).unwrap();
        assert_eq!(lu.dim(), 0);
        assert_eq!(lu.solve(&[]).unwrap(), Vec::<f64>::new());
        assert_eq!(lu.solve_transposed(&[]).unwrap(), Vec::<f64>::new());
    }

    #[test]
    fn duplicate_entries_within_a_column_are_summed() {
        let cols: Vec<Vec<(usize, f64)>> = vec![
            vec![(0, 1.0), (0, 1.0)], // a00 = 2
            vec![(1, 4.0)],
        ];
        let lu = SparseLu::from_columns(2, &cols).unwrap();
        let x = lu.solve(&[2.0, 4.0]).unwrap();
        assert!((x[0] - 1.0).abs() < 1e-15);
        assert!((x[1] - 1.0).abs() < 1e-15);
    }

    #[test]
    fn fill_in_is_reported() {
        // Triangular input needs no elimination work: zero fill.
        let mut tri = Matrix::zeros(4, 4);
        for i in 0..4 {
            for j in i..4 {
                tri[(i, j)] = 1.0 + (i + j) as f64;
            }
        }
        let lu = SparseLu::from_columns(4, &columns_of(&tri)).unwrap();
        assert_eq!(lu.fill_in(), 0, "triangular input needs no elimination");

        // A dense spike pushed through an update must add fill.
        let a = sparse_random(10, 3);
        let mut lu = SparseLu::from_columns(10, &columns_of(&a)).unwrap();
        let before = lu.fill_in();
        let dense_col: Vec<(usize, f64)> = (0..10).map(|i| (i, 1.0 + i as f64 / 10.0)).collect();
        lu.replace_column(2, &dense_col).unwrap();
        assert!(lu.fill_in() > before, "a dense spike must add fill");
    }

    /// Drifts every nonzero of `a` by a seed-dependent relative factor,
    /// keeping the sparsity pattern identical.
    fn drift_values(a: &Matrix, seed: u64) -> Matrix {
        let mut s = seed.max(1);
        let mut next = move || {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            s
        };
        let mut out = Matrix::zeros(a.rows(), a.cols());
        for i in 0..a.rows() {
            for j in 0..a.cols() {
                if a[(i, j)] != 0.0 {
                    // Perturb by up to ±20%: same pattern, drifted values.
                    out[(i, j)] = a[(i, j)] * (1.0 + ((next() % 400) as f64 - 200.0) / 1000.0);
                }
            }
        }
        out
    }

    #[test]
    fn symbolic_refactorization_matches_fresh() {
        // Property: for random sparse bases and shape-identical value
        // drifts, refactorizing along the shared symbolic order is
        // numerically identical (to 1e-10) to a fresh Markowitz
        // factorization — FTRAN and BTRAN both.
        for n in [6usize, 12, 20] {
            for seed in 1..12u64 {
                let a = sparse_random(n, seed);
                let first = SparseLu::from_columns(n, &columns_of(&a)).unwrap();
                let symbolic = first.symbolic();
                let b: Vec<f64> = (0..n).map(|i| (i as f64) / 2.0 - 1.0).collect();
                for drift_seed in [seed * 31 + 1, seed * 57 + 2] {
                    let drifted = drift_values(&a, drift_seed);
                    let cols = columns_of(&drifted);
                    let reused = SparseLu::from_columns_with_symbolic(&symbolic, &cols).unwrap();
                    assert!(
                        Arc::ptr_eq(&reused.symbolic(), &symbolic),
                        "n {n} seed {seed}: the analysis must be shared, not rebuilt"
                    );
                    let fresh = SparseLu::from_columns(n, &cols).unwrap();
                    let (xr, xf) = (reused.solve(&b).unwrap(), fresh.solve(&b).unwrap());
                    assert!(
                        vector::max_abs_diff(&xr, &xf) < 1e-10,
                        "n {n} seed {seed}/{drift_seed}: FTRAN reused vs fresh"
                    );
                    let (tr, tf) = (
                        reused.solve_transposed(&b).unwrap(),
                        fresh.solve_transposed(&b).unwrap(),
                    );
                    assert!(
                        vector::max_abs_diff(&tr, &tf) < 1e-10,
                        "n {n} seed {seed}/{drift_seed}: BTRAN reused vs fresh"
                    );
                }
            }
        }
    }

    #[test]
    fn symbolic_refactorization_rejects_degenerate_pivot() {
        let a = sparse_random(8, 5);
        let first = SparseLu::from_columns(8, &columns_of(&a)).unwrap();
        let symbolic = first.symbolic();
        // Zero out the first prescribed pivot entry: the fixed order is
        // no longer admissible and the caller must re-analyze.
        let mut broken = a.clone();
        let (pr, pc) = (symbolic.row_of[0], symbolic.col_of[0]);
        broken[(pr, pc)] = 0.0;
        assert!(matches!(
            SparseLu::from_columns_with_symbolic(&symbolic, &columns_of(&broken)),
            Err(LinalgError::SingularMatrix { .. })
        ));
        // A wholesale singular drift is caught too.
        let zeros = Matrix::zeros(8, 8);
        assert!(matches!(
            SparseLu::from_columns_with_symbolic(&symbolic, &columns_of(&zeros)),
            Err(LinalgError::SingularMatrix { .. })
        ));
    }

    #[test]
    fn long_ft_chain_stays_accurate_with_drop_tolerance() {
        // ROADMAP residual: a long Forrest–Tomlin chain on a denser basis
        // must keep tracking the fresh factorization now that sub-
        // tolerance spike entries are dropped.
        let n = 12;
        let mut a = sparse_random(n, 11);
        let mut lu = SparseLu::from_columns(n, &columns_of(&a)).unwrap();
        let b: Vec<f64> = (0..n).map(|i| 0.3 + i as f64 / 4.0).collect();
        for step in 0..50usize {
            let slot = (step * 5 + 1) % n;
            let mut col = vec![0.0; n];
            col[slot] = 2.5 + (step % 7) as f64 / 3.0;
            col[(slot + 2) % n] = -0.8 + (step % 5) as f64 / 9.0;
            col[(slot + 7) % n] = 0.6 - (step % 3) as f64 / 8.0;
            for (i, &v) in col.iter().enumerate() {
                a[(i, slot)] = v;
            }
            let sparse_col: Vec<(usize, f64)> = col
                .iter()
                .enumerate()
                .filter(|&(_, &v)| v != 0.0)
                .map(|(i, &v)| (i, v))
                .collect();
            lu.replace_column(slot, &sparse_col).unwrap();
            let fresh = SparseLu::from_columns(n, &columns_of(&a)).unwrap();
            assert!(
                vector::max_abs_diff(&lu.solve(&b).unwrap(), &fresh.solve(&b).unwrap()) < 1e-8,
                "step {step}: long FT chain diverged from fresh factors"
            );
        }
        assert_eq!(lu.updates(), 50);
        assert!(lu.update_growth().is_finite());
    }

    #[test]
    fn update_growth_flags_ill_conditioned_updates() {
        let a = sparse_random(6, 9);
        let cols = columns_of(&a);
        let mut lu = SparseLu::from_columns(6, &cols).unwrap();
        assert_eq!(lu.update_growth(), 1.0, "fresh factors start at unity");
        // A benign replacement keeps the gauge modest...
        lu.replace_column(1, &[(1, 3.0), (3, 0.5)]).unwrap();
        let benign = lu.update_growth();
        assert!(benign < 1e3, "benign update must not spike the gauge");
        // ...but a near-duplicate of another column (nearly dependent)
        // produces a tiny diagonal and a huge spike-to-diagonal ratio.
        let mut near_dup: Vec<(usize, f64)> = cols[0].clone();
        near_dup[0].1 += 1e-9;
        lu.replace_column(2, &near_dup).unwrap();
        assert!(
            lu.update_growth() > 1e6,
            "near-singular update must trip the growth gauge (got {})",
            lu.update_growth()
        );
        // The gauge is monotone and resets on refactorization.
        assert!(lu.update_growth() >= benign);
        let fresh = SparseLu::from_columns(6, &cols).unwrap();
        assert_eq!(fresh.update_growth(), 1.0);
    }

    #[test]
    fn growth_limit_refuses_destabilizing_updates() {
        let a = sparse_random(6, 9);
        let cols = columns_of(&a);
        let mut lu = SparseLu::from_columns(6, &cols).unwrap();
        lu.set_growth_limit(1e6);
        // A benign replacement stays under the ceiling.
        lu.replace_column(1, &[(1, 3.0), (3, 0.5)]).unwrap();
        // A near-duplicate column drives the gauge past the limit: the
        // update must be refused with the structured error, not absorbed.
        let mut near_dup: Vec<(usize, f64)> = cols[0].clone();
        near_dup[0].1 += 1e-9;
        match lu.replace_column(2, &near_dup) {
            Err(LinalgError::UpdateRefused { growth, limit }) => {
                assert!(growth > limit);
                assert_eq!(limit, 1e6);
            }
            other => panic!("expected UpdateRefused, got {other:?}"),
        }
        // Without a limit the same update is absorbed (legacy behavior).
        let mut unlimited = SparseLu::from_columns(6, &cols).unwrap();
        unlimited.replace_column(1, &[(1, 3.0), (3, 0.5)]).unwrap();
        unlimited.replace_column(2, &near_dup).unwrap();
    }

    #[test]
    fn drop_tolerance_discards_negligible_spike_entries() {
        let a = sparse_random(10, 21);
        let mut lu = SparseLu::from_columns(10, &columns_of(&a)).unwrap();
        // A column whose tail entries are far below the drop tolerance
        // relative to its head: the tiny ones must not be installed.
        let mut with_dust: Vec<(usize, f64)> = vec![(2, 4.0), (5, -1.5)];
        for i in [0usize, 1, 3, 7, 9] {
            with_dust.push((i, 1e-40));
        }
        let mut clean = lu.clone();
        lu.replace_column(2, &with_dust).unwrap();
        clean.replace_column(2, &[(2, 4.0), (5, -1.5)]).unwrap();
        assert_eq!(
            lu.nnz_factors(),
            clean.nnz_factors(),
            "sub-tolerance dust must not add fill"
        );
        let b: Vec<f64> = (0..10).map(|i| 1.0 + i as f64 / 5.0).collect();
        assert!(
            vector::max_abs_diff(&lu.solve(&b).unwrap(), &clean.solve(&b).unwrap()) < 1e-12,
            "dropping dust must not move the solution"
        );
    }
}
