//! Property-based tests of the factorizations on randomly generated
//! matrices: LU solves must reproduce right-hand sides, Cholesky must
//! round-trip SPD matrices, and both must reject the inputs they cannot
//! handle.

use dpm_linalg::{vector, Cholesky, LuDecomposition, Matrix};
use proptest::prelude::*;

/// A random well-conditioned square matrix (diagonally dominant).
fn dominant_matrix(n: usize) -> impl Strategy<Value = Matrix> {
    proptest::collection::vec(-100i32..=100, n * n).prop_map(move |cells| {
        let mut m = Matrix::from_vec(n, n, cells.iter().map(|&v| v as f64 / 50.0).collect())
            .expect("length matches");
        for i in 0..n {
            let row_sum: f64 = m.row(i).iter().map(|v| v.abs()).sum();
            m[(i, i)] += row_sum + 1.0;
        }
        m
    })
}

/// A random right-hand side.
fn rhs(n: usize) -> impl Strategy<Value = Vec<f64>> {
    proptest::collection::vec(-100i32..=100, n)
        .prop_map(|v| v.into_iter().map(|x| x as f64 / 10.0).collect())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn lu_solve_reproduces_rhs(a in dominant_matrix(5), b in rhs(5)) {
        let lu = LuDecomposition::new(&a).expect("diagonally dominant");
        let x = lu.solve(&b).expect("dimensions match");
        let back = a.matvec(&x).expect("dimensions match");
        prop_assert!(vector::max_abs_diff(&back, &b) < 1e-8);
    }

    #[test]
    fn lu_transposed_solve_matches_explicit_transpose(a in dominant_matrix(4), b in rhs(4)) {
        let lu = LuDecomposition::new(&a).expect("dominant");
        let x1 = lu.solve_transposed(&b).expect("dims");
        let lu_t = LuDecomposition::new(&a.transpose()).expect("dominant transpose");
        let x2 = lu_t.solve(&b).expect("dims");
        prop_assert!(vector::max_abs_diff(&x1, &x2) < 1e-8);
    }

    #[test]
    fn determinant_of_product_multiplies(a in dominant_matrix(3), b in dominant_matrix(3)) {
        let det_a = LuDecomposition::new(&a).expect("dominant").determinant();
        let det_b = LuDecomposition::new(&b).expect("dominant").determinant();
        let ab = a.matmul(&b).expect("square");
        let det_ab = LuDecomposition::new(&ab).expect("product nonsingular").determinant();
        prop_assert!((det_ab - det_a * det_b).abs() < 1e-6 * (1.0 + det_ab.abs()));
    }

    #[test]
    fn cholesky_round_trips_spd(a in dominant_matrix(5), b in rhs(5)) {
        // Symmetrize a diagonally dominant matrix: still SPD.
        let spd = {
            let at = a.transpose();
            (&a + &at).scaled(0.5)
        };
        let chol = Cholesky::new(&spd).expect("SPD by construction");
        let x = chol.solve(&b).expect("dims");
        let back = spd.matvec(&x).expect("dims");
        prop_assert!(vector::max_abs_diff(&back, &b) < 1e-8);
        // L·Lᵀ reproduces the input.
        let l = chol.factor();
        let llt = l.matmul(&l.transpose()).expect("square");
        prop_assert!((&llt - &spd).max_abs() < 1e-9);
    }

    #[test]
    fn inverse_inverts(a in dominant_matrix(4)) {
        let lu = LuDecomposition::new(&a).expect("dominant");
        let inv = lu.inverse().expect("nonsingular");
        let prod = a.matmul(&inv).expect("square");
        prop_assert!((&prod - &Matrix::identity(4)).max_abs() < 1e-8);
    }

    #[test]
    fn matmul_is_associative(
        a in dominant_matrix(3),
        b in dominant_matrix(3),
        c in dominant_matrix(3),
    ) {
        let left = a.matmul(&b).expect("sq").matmul(&c).expect("sq");
        let right = a.matmul(&b.matmul(&c).expect("sq")).expect("sq");
        prop_assert!((&left - &right).max_abs() < 1e-6 * (1.0 + left.max_abs()));
    }

    #[test]
    fn vecmat_is_transpose_matvec(a in dominant_matrix(4), x in rhs(4)) {
        let left = a.vecmat(&x).expect("dims");
        let right = a.transpose().matvec(&x).expect("dims");
        prop_assert!(vector::max_abs_diff(&left, &right) < 1e-10);
    }
}

#[test]
fn singular_matrix_is_rejected_not_panicked() {
    let a =
        Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[2.0, 4.0, 6.0], &[0.0, 1.0, 1.0]]).expect("shape");
    assert!(LuDecomposition::new(&a).is_err());
}
