//! Property-based tests of the sparse Markowitz LU against the dense
//! factorization: on any (sparse, nonsingular) matrix the two must solve
//! `Ax = b` and `Aᵀx = b` to the same answer, agree on singularity, and a
//! Forrest–Tomlin update chain must stay equivalent to refactorizing from
//! scratch.

use dpm_linalg::{vector, LuDecomposition, Matrix, SparseLu};
use proptest::prelude::*;

/// A random sparse, diagonally dominant matrix: a dominant diagonal plus
/// `extras` off-diagonal entries per row — the shape of a simplex basis
/// drawn from an occupation LP (a few nonzeros per column).
fn sparse_dominant(n: usize, extras: usize) -> impl Strategy<Value = Matrix> {
    let cells = proptest::collection::vec((-100i32..=100, 0usize..n), n * extras);
    let diag = proptest::collection::vec(1i32..=100, n);
    (cells, diag).prop_map(move |(cells, diag)| {
        let mut m = Matrix::zeros(n, n);
        for (k, &(v, j)) in cells.iter().enumerate() {
            let i = k / extras;
            if i != j {
                m[(i, j)] = v as f64 / 60.0;
            }
        }
        for (i, &d) in diag.iter().enumerate() {
            let row_sum: f64 = m.row(i).iter().map(|v| v.abs()).sum();
            m[(i, i)] = row_sum + 1.0 + d as f64 / 50.0;
        }
        m
    })
}

fn rhs(n: usize) -> impl Strategy<Value = Vec<f64>> {
    proptest::collection::vec(-100i32..=100, n)
        .prop_map(|v| v.into_iter().map(|x| x as f64 / 10.0).collect())
}

/// Sparse columns of a dense matrix, the `SparseLu` input format.
fn columns_of(dense: &Matrix) -> Vec<Vec<(usize, f64)>> {
    (0..dense.cols())
        .map(|j| {
            (0..dense.rows())
                .filter(|&i| dense[(i, j)] != 0.0)
                .map(|i| (i, dense[(i, j)]))
                .collect()
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn factor_solve_round_trips(a in sparse_dominant(9, 3), b in rhs(9)) {
        let lu = SparseLu::from_columns(9, &columns_of(&a)).expect("dominant");
        let x = lu.solve(&b).expect("dims");
        let back = a.matvec(&x).expect("dims");
        prop_assert!(vector::max_abs_diff(&back, &b) < 1e-9);
    }

    #[test]
    fn solves_agree_with_dense_lu(a in sparse_dominant(8, 3), b in rhs(8)) {
        let sparse = SparseLu::from_columns(8, &columns_of(&a)).expect("dominant");
        let dense = LuDecomposition::new(&a).expect("dominant");
        let xs = sparse.solve(&b).expect("dims");
        let xd = dense.solve(&b).expect("dims");
        prop_assert!(
            vector::max_abs_diff(&xs, &xd) < 1e-10,
            "sparse and dense LU solves diverged"
        );
    }

    #[test]
    fn transposed_solves_agree_with_dense_lu(a in sparse_dominant(8, 3), b in rhs(8)) {
        let sparse = SparseLu::from_columns(8, &columns_of(&a)).expect("dominant");
        let dense = LuDecomposition::new(&a).expect("dominant");
        let xs = sparse.solve_transposed(&b).expect("dims");
        let xd = dense.solve_transposed(&b).expect("dims");
        prop_assert!(
            vector::max_abs_diff(&xs, &xd) < 1e-10,
            "sparse and dense transposed solves diverged"
        );
    }

    #[test]
    fn singular_detection_agrees_with_dense_lu(
        a in sparse_dominant(6, 2),
        dup in 0usize..6,
        scale in 1i32..5,
    ) {
        // Overwrite one column with a multiple of another: exactly
        // singular, and both factorizations must say so.
        let mut m = a;
        let src = (dup + 1) % 6;
        for i in 0..6 {
            m[(i, dup)] = scale as f64 * m[(i, src)];
        }
        prop_assert!(SparseLu::from_columns(6, &columns_of(&m)).is_err());
        prop_assert!(LuDecomposition::new(&m).is_err());
    }

    #[test]
    fn forrest_tomlin_chain_matches_refactorization(
        a in sparse_dominant(8, 3),
        replacements in proptest::collection::vec((0usize..8, -50i32..=50), 1..10),
        b in rhs(8),
    ) {
        let mut current = a;
        let mut lu = SparseLu::from_columns(8, &columns_of(&current)).expect("dominant");
        for (step, &(slot, v)) in replacements.iter().enumerate() {
            // New column: dominant diagonal entry plus two off-diagonals —
            // keeps the matrix comfortably nonsingular along the chain.
            let mut col = [0.0; 8];
            col[slot] = 10.0 + (v as f64).abs();
            col[(slot + 2) % 8] = v as f64 / 25.0;
            col[(slot + 5) % 8] = -(v as f64) / 40.0;
            for (i, &cv) in col.iter().enumerate() {
                current[(i, slot)] = cv;
            }
            let sparse_col: Vec<(usize, f64)> = col
                .iter()
                .enumerate()
                .filter(|&(_, &cv)| cv != 0.0)
                .map(|(i, &cv)| (i, cv))
                .collect();
            lu.replace_column(slot, &sparse_col).expect("update stays nonsingular");
            prop_assert_eq!(lu.updates(), step + 1);

            let fresh = SparseLu::from_columns(8, &columns_of(&current)).expect("nonsingular");
            let xu = lu.solve(&b).expect("dims");
            let xf = fresh.solve(&b).expect("dims");
            prop_assert!(
                vector::max_abs_diff(&xu, &xf) < 1e-8,
                "step {}: FTRAN through updated factors diverged from refactorization",
                step
            );
            let tu = lu.solve_transposed(&b).expect("dims");
            let tf = fresh.solve_transposed(&b).expect("dims");
            prop_assert!(
                vector::max_abs_diff(&tu, &tf) < 1e-8,
                "step {}: BTRAN through updated factors diverged from refactorization",
                step
            );
        }
    }
}
