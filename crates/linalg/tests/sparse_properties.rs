//! Property tests for the sparse storage layouts: compressed forms must be
//! exact re-encodings of the dense data, and the sparse·dense kernels must
//! agree with their dense counterparts bit-for-bit (same per-entry
//! summation order, no tolerance needed).

use dpm_linalg::{CscMatrix, CsrMatrix, Matrix, TripletMatrix};
use proptest::prelude::*;

/// Deterministically builds a sparse-ish dense matrix from a seed: about
/// one in four entries is nonzero, with values in `[-1, 1]`.
fn seeded_matrix(rows: usize, cols: usize, seed: u64) -> Matrix {
    let mut s = seed | 1;
    Matrix::from_fn(rows, cols, |_, _| {
        s ^= s << 13;
        s ^= s >> 7;
        s ^= s << 17;
        if s % 4 == 0 {
            (s % 2000) as f64 / 1000.0 - 1.0
        } else {
            0.0
        }
    })
}

fn seeded_vector(len: usize, seed: u64) -> Vec<f64> {
    let mut s = seed | 1;
    (0..len)
        .map(|_| {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            (s % 2000) as f64 / 1000.0 - 1.0
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn csr_dense_round_trip(rows in 1usize..12, cols in 1usize..12, seed in 0u64..1000) {
        let dense = seeded_matrix(rows, cols, seed);
        let csr = CsrMatrix::from_dense(&dense);
        prop_assert_eq!(csr.to_dense(), dense.clone());
        // And through the other layout.
        prop_assert_eq!(csr.to_csc().to_dense(), dense.clone());
        prop_assert_eq!(CscMatrix::from_dense(&dense).to_csr(), csr);
    }

    #[test]
    fn sparse_matvec_matches_dense(rows in 1usize..12, cols in 1usize..12, seed in 0u64..1000) {
        let dense = seeded_matrix(rows, cols, seed);
        let x = seeded_vector(cols, seed.wrapping_mul(7).wrapping_add(3));
        let expect = dense.matvec(&x).unwrap();
        let via_csr = CsrMatrix::from_dense(&dense).matvec(&x).unwrap();
        for (a, b) in via_csr.iter().zip(&expect) {
            prop_assert!((a - b).abs() < 1e-12, "csr {a} vs dense {b}");
        }
        let via_csc = CscMatrix::from_dense(&dense).matvec(&x).unwrap();
        for (a, b) in via_csc.iter().zip(&expect) {
            prop_assert!((a - b).abs() < 1e-12, "csc {a} vs dense {b}");
        }
    }

    #[test]
    fn sparse_transposed_matvec_matches_dense(
        rows in 1usize..12,
        cols in 1usize..12,
        seed in 0u64..1000,
    ) {
        let dense = seeded_matrix(rows, cols, seed);
        let x = seeded_vector(rows, seed.wrapping_mul(31).wrapping_add(5));
        let expect = dense.transpose().matvec(&x).unwrap();
        for m in [
            CsrMatrix::from_dense(&dense).matvec_transposed(&x).unwrap(),
            CscMatrix::from_dense(&dense).matvec_transposed(&x).unwrap(),
        ] {
            for (a, b) in m.iter().zip(&expect) {
                prop_assert!((a - b).abs() < 1e-12, "{a} vs dense {b}");
            }
        }
    }

    #[test]
    fn triplet_duplicate_order_is_irrelevant(
        rows in 1usize..8,
        cols in 1usize..8,
        seed in 0u64..1000,
    ) {
        // Push the same logical matrix as (a) whole entries and (b) split
        // duplicate halves in reversed order; compressed forms must agree.
        let dense = seeded_matrix(rows, cols, seed);
        let mut whole = TripletMatrix::new(rows, cols);
        let mut halves = TripletMatrix::new(rows, cols);
        let mut reversed: Vec<(usize, usize, f64)> = dense.iter().collect();
        reversed.reverse();
        for (i, j, v) in dense.iter().filter(|&(_, _, v)| v != 0.0) {
            whole.push(i, j, v).unwrap();
        }
        for (i, j, v) in reversed.into_iter().filter(|&(_, _, v)| v != 0.0) {
            halves.push(i, j, v / 2.0).unwrap();
            halves.push(i, j, v / 2.0).unwrap();
        }
        prop_assert_eq!(whole.to_csr(), halves.to_csr());
        prop_assert_eq!(whole.to_csc(), halves.to_csc());
    }
}
