//! In-workspace stand-in for the crates.io [`rand`] crate.
//!
//! The build environment for this repository is fully offline, so the
//! workspace cannot pull `rand` from a registry. This crate implements the
//! (small) slice of the `rand 0.8` API the workspace actually uses — the
//! [`RngCore`] / [`Rng`] / [`SeedableRng`] traits, [`rngs::StdRng`] and
//! [`rngs::mock::StepRng`] — with the same shapes, so swapping the real
//! crate back in is a one-line `Cargo.toml` change.
//!
//! The generator behind [`rngs::StdRng`] is xoshiro256** seeded through
//! SplitMix64 (the reference construction of Blackman & Vigna). It is
//! deterministic, seedable and statistically strong; it is **not**
//! cryptographically secure, which is irrelevant for the Monte-Carlo
//! simulation workloads here.
//!
//! [`rand`]: https://crates.io/crates/rand

#![forbid(unsafe_code)]

/// The core of a random number generator: a source of random bytes.
///
/// Object-safe, exactly like `rand::RngCore`, so policies can take
/// `&mut dyn RngCore`.
pub trait RngCore {
    /// Returns the next random `u32`.
    fn next_u32(&mut self) -> u32;
    /// Returns the next random `u64`.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rest = chunks.into_remainder();
        if !rest.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rest.copy_from_slice(&bytes[..rest.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest);
    }
}

impl<R: RngCore + ?Sized> RngCore for Box<R> {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest);
    }
}

/// Types that can be sampled uniformly from an RNG, mirroring what
/// `rand`'s `Standard` distribution provides for the types this workspace
/// draws (`rng.gen::<f64>()` and friends).
pub trait SampleUniform: Sized {
    /// Draws one value from `rng`.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl SampleUniform for f64 {
    /// Uniform in `[0, 1)` with the full 53 bits of mantissa, the same
    /// construction `rand 0.8` uses for `Standard`.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl SampleUniform for f32 {
    /// Uniform in `[0, 1)` with 24 bits of mantissa.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl SampleUniform for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl SampleUniform for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl SampleUniform for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

/// Convenience extension methods over [`RngCore`], mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Draws a value of type `T` from the standard distribution
    /// (`[0, 1)` for floats).
    ///
    /// Unlike the real `rand`, there is no `Self: Sized` bound: that lets
    /// policies call `rng.gen()` directly on a `&mut dyn RngCore`
    /// receiver, which method probing resolves to `Self = dyn RngCore`.
    fn gen<T: SampleUniform>(&mut self) -> T {
        T::sample(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics when `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "p = {p} is not a probability");
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// A random number generator that can be instantiated from a seed,
/// mirroring `rand::SeedableRng` (only the entry points this workspace
/// uses).
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed. Deterministic: equal seeds
    /// yield equal streams.
    fn seed_from_u64(state: u64) -> Self;
}

/// Concrete generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// SplitMix64 — used to expand a 64-bit seed into xoshiro state.
    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// The workspace's standard deterministic generator: xoshiro256**.
    ///
    /// Satisfies the same contract the simulator relies on from
    /// `rand::rngs::StdRng`: seedable, reproducible, fast. The stream is
    /// *not* bit-compatible with the real `StdRng` (which is ChaCha12);
    /// all in-tree consumers only require determinism per seed.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            let mut sm = state;
            let mut s = [0u64; 4];
            for slot in &mut s {
                *slot = splitmix64(&mut sm);
            }
            // xoshiro must not start from the all-zero state.
            if s == [0, 0, 0, 0] {
                s[0] = 0x9E37_79B9_7F4A_7C15;
            }
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }

    /// Mock generators for tests, mirroring `rand::rngs::mock`.
    pub mod mock {
        use super::super::RngCore;

        /// A mock generator yielding an arithmetic sequence, like
        /// `rand::rngs::mock::StepRng`: `initial`, `initial + increment`, …
        #[derive(Debug, Clone)]
        pub struct StepRng {
            current: u64,
            increment: u64,
        }

        impl StepRng {
            /// Creates a generator that starts at `initial` and advances by
            /// `increment` on every draw.
            pub fn new(initial: u64, increment: u64) -> Self {
                StepRng {
                    current: initial,
                    increment,
                }
            }
        }

        impl RngCore for StepRng {
            fn next_u32(&mut self) -> u32 {
                self.next_u64() as u32
            }

            fn next_u64(&mut self) -> u64 {
                let value = self.current;
                self.current = self.current.wrapping_add(self.increment);
                value
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::mock::StepRng;
    use super::rngs::StdRng;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn std_rng_is_deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        let mut c = StdRng::seed_from_u64(43);
        let xs: Vec<u64> = (0..32).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..32).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..32).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn f64_samples_live_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        // Mean of 10k uniforms should be close to 0.5.
        assert!((sum / 10_000.0 - 0.5).abs() < 0.02);
    }

    #[test]
    fn gen_works_through_dyn_rng_core() {
        let mut rng = StdRng::seed_from_u64(1);
        let dyn_rng: &mut dyn RngCore = &mut rng;
        let x: f64 = dyn_rng.gen();
        assert!((0.0..1.0).contains(&x));
    }

    #[test]
    fn step_rng_steps() {
        let mut rng = StepRng::new(10, 3);
        assert_eq!(rng.next_u64(), 10);
        assert_eq!(rng.next_u64(), 13);
        assert_eq!(rng.next_u64(), 16);
    }

    #[test]
    fn fill_bytes_covers_partial_chunks() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut buf = [0u8; 13];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }
}
