//! In-workspace stand-in for the crates.io [`criterion`] crate.
//!
//! The build environment for this repository is fully offline, so the
//! workspace cannot pull `criterion` from a registry. This crate
//! implements the slice of the criterion API the workspace's benches use —
//! [`Criterion`], [`BenchmarkGroup`], [`BenchmarkId`], [`Throughput`],
//! [`Bencher::iter`] and the [`criterion_group!`] / [`criterion_main!`]
//! macros — so the bench files compile unchanged (with `harness = false`)
//! and produce simple wall-clock timings when run.
//!
//! Compared to real criterion there is no statistical analysis, warm-up
//! tuning, plotting or CLI filtering: each benchmark is run for a fixed
//! time budget and the mean iteration time is printed. That is enough for
//! CI's build-only smoke (`cargo bench --no-run`) and for coarse local
//! comparisons; swap the real crate back in for publication-grade numbers.
//!
//! # Machine-readable results
//!
//! In addition to the console line, every benchmark writes a one-object
//! JSON record `{"name", "mean_ns", "iterations"}` to
//! `target/bench/BENCH_<name>.json` (slashes in the benchmark id become
//! underscores). CI uploads these files as artifacts, so the perf
//! trajectory of the solvers is tracked run over run instead of
//! scrolling away in a log. The target directory is found from
//! `CARGO_TARGET_DIR` or by walking up from the bench executable's path;
//! if neither works (or the filesystem is read-only) the record is
//! silently skipped — benchmarks never fail because of bookkeeping.
//!
//! Benchmarks can attach **named counters** to their record via
//! [`Bencher::counter`] — e.g. solver effort (`pivots`,
//! `refactorizations`) next to wall-clock time. Counters become extra
//! numeric fields of the JSON object. This is a shim extension (real
//! criterion has no counter API); gate any use behind the shim if the
//! real crate is ever swapped back in.
//!
//! [`criterion`]: https://crates.io/crates/criterion

#![forbid(unsafe_code)]

use std::fmt::Display;
use std::path::PathBuf;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Wall-clock budget each benchmark's measurement loop aims for.
const MEASURE_BUDGET: Duration = Duration::from_millis(300);

/// Times a closure over repeated iterations, mirroring
/// `criterion::Bencher`.
#[derive(Debug)]
pub struct Bencher {
    total: Duration,
    iters: u64,
    counters: Vec<(String, f64)>,
}

impl Bencher {
    fn new() -> Self {
        Bencher {
            total: Duration::ZERO,
            iters: 0,
            counters: Vec::new(),
        }
    }

    /// Attaches a named numeric counter to this benchmark's JSON record
    /// (shim extension; see the module docs). Non-finite values and names
    /// that are not `[A-Za-z0-9_]` are sanitized so the record stays
    /// valid JSON. Re-using a name overwrites the earlier value.
    pub fn counter(&mut self, name: &str, value: f64) {
        let safe: String = name
            .chars()
            .map(|c| if c.is_ascii_alphanumeric() { c } else { '_' })
            .collect();
        let value = if value.is_finite() { value } else { -1.0 };
        if let Some(slot) = self.counters.iter_mut().find(|(n, _)| *n == safe) {
            slot.1 = value;
        } else {
            self.counters.push((safe, value));
        }
    }

    /// Runs `f` repeatedly inside the timing budget, recording the mean
    /// wall-clock time per call.
    // Timing is this shim's whole job; the workspace-wide wall-clock
    // ban (clippy.toml) stops here.
    #[allow(clippy::disallowed_methods)]
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // One untimed call to warm caches and get a per-iteration estimate.
        let warm_start = Instant::now();
        black_box(f());
        let estimate = warm_start.elapsed().max(Duration::from_nanos(1));
        let budget_iters = (MEASURE_BUDGET.as_nanos() / estimate.as_nanos()).max(1);
        let iters = budget_iters.min(10_000) as u64;
        let start = Instant::now();
        for _ in 0..iters {
            black_box(f());
        }
        self.total = start.elapsed();
        self.iters = iters;
    }
}

/// A benchmark identifier with an optional parameter, mirroring
/// `criterion::BenchmarkId`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An identifier `"{name}/{parameter}"`.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", name.into(), parameter),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(id: &str) -> Self {
        BenchmarkId { id: id.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(id: String) -> Self {
        BenchmarkId { id }
    }
}

/// Throughput annotation for a benchmark group, mirroring
/// `criterion::Throughput`.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// The benchmark processes this many logical elements per iteration.
    Elements(u64),
    /// The benchmark processes this many bytes per iteration.
    Bytes(u64),
}

/// The top-level benchmark driver, mirroring `criterion::Criterion`.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Accepts and ignores CLI configuration, for `criterion_group!`
    /// compatibility (`cargo bench -- <filter>` flags are not supported).
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _criterion: self,
            name: name.into(),
            throughput: None,
        }
    }

    /// Runs a single benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&id.into().id, None, f);
        self
    }
}

/// A group of related benchmarks, mirroring `criterion::BenchmarkGroup`.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Annotates subsequent benchmarks in the group with a throughput.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Accepts and ignores criterion's statistical sample-size hint; this
    /// shim sizes its measurement loop from a wall-clock budget instead.
    pub fn sample_size(&mut self, _samples: usize) -> &mut Self {
        self
    }

    /// Runs a benchmark within the group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = format!("{}/{}", self.name, id.into().id);
        run_one(&id, self.throughput, f);
        self
    }

    /// Runs a benchmark that receives a borrowed input.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let id = format!("{}/{}", self.name, id.id);
        run_one(&id, self.throughput, |b| f(b, input));
        self
    }

    /// Ends the group (a no-op here; kept for API compatibility).
    pub fn finish(self) {}
}

fn run_one<F: FnMut(&mut Bencher)>(id: &str, throughput: Option<Throughput>, mut f: F) {
    let mut bencher = Bencher::new();
    f(&mut bencher);
    let mean_ns = if bencher.iters == 0 {
        0.0
    } else {
        bencher.total.as_nanos() as f64 / bencher.iters as f64
    };
    let rate = match throughput {
        Some(Throughput::Elements(n)) if mean_ns > 0.0 => {
            format!("  ({:.3} Melem/s)", n as f64 * 1e3 / mean_ns)
        }
        Some(Throughput::Bytes(n)) if mean_ns > 0.0 => {
            format!(
                "  ({:.3} MiB/s)",
                n as f64 * 1e9 / mean_ns / (1024.0 * 1024.0)
            )
        }
        _ => String::new(),
    };
    println!(
        "bench: {id:<50} {:>12.1} ns/iter  x{}{}",
        mean_ns, bencher.iters, rate
    );
    if let Some(dir) = bench_output_dir() {
        write_record(&dir, id, mean_ns, bencher.iters, &bencher.counters);
    }
}

/// Locates `<target>/bench` for the running bench executable:
/// `CARGO_TARGET_DIR` when set, else the nearest `target` ancestor of the
/// executable path (benches live in `target/<profile>/deps/`).
fn bench_output_dir() -> Option<PathBuf> {
    if let Ok(dir) = std::env::var("CARGO_TARGET_DIR") {
        return Some(PathBuf::from(dir).join("bench"));
    }
    let exe = std::env::current_exe().ok()?;
    exe.ancestors()
        .find(|p| p.file_name().is_some_and(|n| n == "target"))
        .map(|p| p.join("bench"))
}

/// Writes `BENCH_<name>.json` into `dir`, best-effort: result files are
/// bookkeeping, so IO failures are swallowed rather than surfaced.
fn write_record(
    dir: &std::path::Path,
    id: &str,
    mean_ns: f64,
    iterations: u64,
    counters: &[(String, f64)],
) {
    if std::fs::create_dir_all(dir).is_err() {
        return;
    }
    let safe: String = id
        .chars()
        .map(|c| if c.is_ascii_alphanumeric() { c } else { '_' })
        .collect();
    let escaped: String = id
        .chars()
        .filter(|c| !c.is_control())
        .flat_map(|c| match c {
            '"' | '\\' => vec!['\\', c],
            _ => vec![c],
        })
        .collect();
    let extra: String = counters
        .iter()
        .map(|(name, value)| format!(",\"{name}\":{value}"))
        .collect();
    let json = format!(
        "{{\"name\":\"{escaped}\",\"mean_ns\":{mean_ns:.1},\"iterations\":{iterations}{extra}}}\n"
    );
    let _ = std::fs::write(dir.join(format!("BENCH_{safe}.json")), json);
}

/// Declares a group of benchmark functions, mirroring
/// `criterion::criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the bench entry point, mirroring `criterion::criterion_main!`.
/// The bench target must set `harness = false` in its manifest.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_records_iterations() {
        let mut b = Bencher::new();
        b.iter(|| 21 * 2);
        assert!(b.iters >= 1);
        assert!(b.total > Duration::ZERO);
    }

    #[test]
    fn benchmark_id_formats_name_and_parameter() {
        let id = BenchmarkId::new("simplex", 120);
        assert_eq!(id.id, "simplex/120");
    }

    #[test]
    fn records_are_written_as_json() {
        let dir = std::env::temp_dir().join(format!("criterion-shim-test-{}", std::process::id()));
        write_record(&dir, "lp_engines/simplex/120", 1234.56, 42, &[]);
        let path = dir.join("BENCH_lp_engines_simplex_120.json");
        let body = std::fs::read_to_string(&path).expect("record written");
        assert_eq!(
            body,
            "{\"name\":\"lp_engines/simplex/120\",\"mean_ns\":1234.6,\"iterations\":42}\n"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn counters_become_extra_json_fields() {
        let dir = std::env::temp_dir().join(format!(
            "criterion-shim-counter-test-{}",
            std::process::id()
        ));
        let counters = vec![
            ("pivots".to_string(), 321.0),
            ("speedup_x".to_string(), 4.5),
        ];
        write_record(&dir, "pareto_sweep", 99.9, 3, &counters);
        let body =
            std::fs::read_to_string(dir.join("BENCH_pareto_sweep.json")).expect("record written");
        assert_eq!(
            body,
            "{\"name\":\"pareto_sweep\",\"mean_ns\":99.9,\"iterations\":3,\"pivots\":321,\"speedup_x\":4.5}\n"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn counter_sanitizes_names_and_values_and_overwrites() {
        let mut b = Bencher::new();
        b.counter("warm pivots!", f64::NAN);
        b.counter("warm_pivots_", 7.0);
        assert_eq!(b.counters, vec![("warm_pivots_".to_string(), 7.0)]);
    }

    #[test]
    fn output_dir_is_resolved_relative_to_a_target_ancestor() {
        // Unit tests run from target/<profile>/deps, so the walk-up must
        // find the workspace target directory (unless CARGO_TARGET_DIR
        // redirects it, in which case that wins by construction).
        let dir = bench_output_dir().expect("resolvable in cargo test");
        assert!(dir.ends_with("bench"));
    }

    #[test]
    fn group_api_composes() {
        let mut criterion = Criterion::default();
        let mut group = criterion.benchmark_group("shim");
        group.throughput(Throughput::Elements(10));
        group.bench_function("noop", |b| b.iter(|| black_box(1 + 1)));
        group.bench_with_input(BenchmarkId::new("sum", 4), &[1u64, 2, 3, 4][..], |b, xs| {
            b.iter(|| xs.iter().sum::<u64>())
        });
        group.finish();
    }
}
