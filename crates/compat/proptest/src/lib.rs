//! In-workspace stand-in for the crates.io [`proptest`] crate.
//!
//! The build environment for this repository is fully offline, so the
//! workspace cannot pull `proptest` from a registry. This crate implements
//! the slice of the proptest API the workspace's property tests actually
//! use — the [`proptest!`] macro, the [`Strategy`] trait with
//! [`Strategy::prop_map`], integer-range and tuple strategies,
//! [`collection::vec`], [`ProptestConfig`] and the `prop_assert*` macros —
//! with the same surface syntax, so the real crate can be swapped back in
//! without touching any test.
//!
//! Differences from real proptest, by design:
//!
//! * **no shrinking** — a failing case reports its inputs (each strategy
//!   argument is `Debug`-printed by the failing assert) but is not
//!   minimized;
//! * **deterministic** — the RNG seed is derived from the test name, so
//!   runs are reproducible in CI by construction (no `PROPTEST_*` env
//!   handling).
//!
//! [`proptest`]: https://crates.io/crates/proptest

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// Runner internals: the deterministic RNG behind every strategy.
pub mod test_runner {
    /// A failed (or rejected) test case, mirroring
    /// `proptest::test_runner::TestCaseError`. Property bodies may
    /// `return Err(TestCaseError::fail(..))` to abort a case.
    #[derive(Debug, Clone)]
    pub enum TestCaseError {
        /// The property does not hold, with an explanation.
        Fail(String),
        /// The generated input is not a valid case.
        Reject(String),
    }

    impl TestCaseError {
        /// A failure with the given explanation.
        pub fn fail(reason: impl Into<String>) -> Self {
            TestCaseError::Fail(reason.into())
        }

        /// A rejection (invalid input) with the given explanation.
        pub fn reject(reason: impl Into<String>) -> Self {
            TestCaseError::Reject(reason.into())
        }
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            match self {
                TestCaseError::Fail(reason) => write!(f, "property failed: {reason}"),
                TestCaseError::Reject(reason) => write!(f, "input rejected: {reason}"),
            }
        }
    }

    /// A deterministic SplitMix64 stream used to drive strategies.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Creates a generator whose seed is derived (FNV-1a) from `label`,
        /// typically the test function name: reproducible per test, but
        /// decorrelated across tests.
        pub fn deterministic(label: &str) -> Self {
            let mut hash = 0xCBF2_9CE4_8422_2325u64;
            for byte in label.bytes() {
                hash ^= u64::from(byte);
                hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
            }
            TestRng { state: hash }
        }

        /// Returns the next raw 64-bit draw.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform draw in `[0, bound)`; `bound` must be nonzero.
        pub fn below(&mut self, bound: u64) -> u64 {
            debug_assert!(bound > 0, "empty sampling range");
            // Multiply-shift bounded sampling (Lemire); bias is < 2^-64
            // per draw, far below what property tests can observe.
            ((u128::from(self.next_u64()) * u128::from(bound)) >> 64) as u64
        }
    }
}

use test_runner::TestRng;

/// Per-test configuration, mirroring `proptest::test_runner::Config`.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases each property is checked against.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` random cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // Real proptest defaults to 256; 64 keeps the offline CI fast
        // while still exercising each property broadly.
        ProptestConfig { cases: 64 }
    }
}

/// A generator of random values of type [`Strategy::Value`].
pub trait Strategy {
    /// The type of values this strategy produces.
    type Value;

    /// Draws one value from the strategy.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`, mirroring
    /// `proptest::strategy::Strategy::prop_map`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }
}

// Strategies are passed by value into combinators but the `proptest!`
// macro generates from a borrow; delegate through references so both work.
impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

/// The strategy returned by [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, U> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;
    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// A strategy that always yields a clone of one value, mirroring
/// `proptest::strategy::Just`.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! int_range_strategies {
    ($($ty:ty),*) => {$(
        impl Strategy for Range<$ty> {
            type Value = $ty;
            fn generate(&self, rng: &mut TestRng) -> $ty {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $ty
            }
        }

        impl Strategy for RangeInclusive<$ty> {
            type Value = $ty;
            fn generate(&self, rng: &mut TestRng) -> $ty {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128 + 1) as u64;
                (lo as i128 + rng.below(span) as i128) as $ty
            }
        }
    )*};
}

int_range_strategies!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        self.start + (self.end - self.start) * unit
    }
}

macro_rules! tuple_strategies {
    ($(($($name:ident),+))*) => {$(
        #[allow(non_snake_case)]
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategies! {
    (A)
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
    (A, B, C, D, E, F)
}

/// Collection strategies, mirroring `proptest::collection`.
pub mod collection {
    use super::test_runner::TestRng;
    use super::Strategy;
    use std::ops::{Range, RangeInclusive};

    /// A length specification for [`vec()`]: a fixed `usize` or a range.
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        lo: usize,
        hi_inclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(len: usize) -> Self {
            SizeRange {
                lo: len,
                hi_inclusive: len,
            }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty vec length range");
            SizeRange {
                lo: r.start,
                hi_inclusive: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            assert!(r.start() <= r.end(), "empty vec length range");
            SizeRange {
                lo: *r.start(),
                hi_inclusive: *r.end(),
            }
        }
    }

    /// The strategy returned by [`vec()`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = self.size.hi_inclusive - self.size.lo + 1;
            let len = self.size.lo + rng.below(span as u64) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// Generates `Vec`s whose elements come from `element` and whose
    /// length is described by `size` (a fixed length or a range).
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

/// Declares property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` that checks `body` against `config.cases` random
/// draws of its arguments.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@with_config ($cfg) $($rest)*);
    };
    (@with_config ($cfg:expr)
     $($(#[$meta:meta])*
       fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block)*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                let mut rng =
                    $crate::test_runner::TestRng::deterministic(stringify!($name));
                for _case in 0..config.cases {
                    $(let $arg = $crate::Strategy::generate(&($strat), &mut rng);)+
                    // Mirror real proptest's protocol: the body runs in a
                    // `Result` context so it may `return Err(TestCaseError)`.
                    // The immediately-called closure is the point here —
                    // it creates the early-return scope.
                    #[allow(clippy::redundant_closure_call)]
                    let outcome: ::std::result::Result<
                        (),
                        $crate::test_runner::TestCaseError,
                    > = (|| {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                    match outcome {
                        ::std::result::Result::Ok(()) => {}
                        ::std::result::Result::Err(
                            $crate::test_runner::TestCaseError::Reject(_),
                        ) => {}
                        ::std::result::Result::Err(error) => {
                            panic!("case {} of {}: {}", _case, config.cases, error)
                        }
                    }
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@with_config ($crate::ProptestConfig::default()) $($rest)*);
    };
}

/// Asserts a property holds, mirroring `proptest::prop_assert!`.
///
/// Without shrinking there is nothing to hand back to a runner, so this
/// simply forwards to [`assert!`] and panics with the formatted message.
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Asserts two values are equal, mirroring `proptest::prop_assert_eq!`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Asserts two values differ, mirroring `proptest::prop_assert_ne!`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// The customary glob import, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::collection;
    pub use crate::test_runner::TestCaseError;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, proptest, Just, ProptestConfig, Strategy,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    fn unit(lo: f64, hi: f64) -> impl Strategy<Value = f64> {
        (0u32..=1000).prop_map(move |i| lo + (hi - lo) * f64::from(i) / 1000.0)
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(128))]

        #[test]
        fn ranges_respect_bounds(x in -100i32..=100, y in 0usize..7, z in 1u32..=9) {
            prop_assert!((-100..=100).contains(&x));
            prop_assert!(y < 7);
            prop_assert!((1..=9).contains(&z));
        }

        #[test]
        fn vec_lengths_follow_size_spec(
            fixed in collection::vec(0u32..10, 5),
            ranged in collection::vec(0u32..10, 2..6),
        ) {
            prop_assert_eq!(fixed.len(), 5);
            prop_assert!((2..6).contains(&ranged.len()));
        }

        #[test]
        fn tuples_and_maps_compose(pair in (unit(0.0, 1.0), 0u32..4)) {
            let (p, k) = pair;
            prop_assert!((0.0..=1.0).contains(&p));
            prop_assert!(k < 4);
        }
    }

    #[test]
    fn rng_is_deterministic_per_label() {
        let mut a = crate::test_runner::TestRng::deterministic("alpha");
        let mut b = crate::test_runner::TestRng::deterministic("alpha");
        let mut c = crate::test_runner::TestRng::deterministic("beta");
        let xs: Vec<u64> = (0..16).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..16).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..16).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn default_config_runs_a_meaningful_number_of_cases() {
        assert!(ProptestConfig::default().cases >= 32);
    }
}
