use dpm_linalg::{LuDecomposition, Matrix};
use dpm_markov::ControlledMarkovChain;

use crate::{DeterministicPolicy, MdpError, RandomizedPolicy};

/// A finite, discounted Markov decision process.
///
/// The composed power-managed system of Section III is exactly such an
/// object: a controlled chain over `S_SP × S_SR × S_SQ` plus per
/// state–action costs (power `p(s, a)` or performance penalty `d(s, a)`)
/// and a discount factor `α` encoding the finite session horizon of
/// Section IV (expected stopping time `1/(1−α)`).
///
/// Costs are *total expected discounted* quantities; divide by the horizon
/// `1/(1−α)` (or multiply by `1−α`) to recover the per-slice (e.g. Watt)
/// values the paper plots.
#[derive(Debug, Clone)]
pub struct DiscountedMdp {
    chain: ControlledMarkovChain,
    cost: Matrix,
    discount: f64,
}

impl DiscountedMdp {
    /// Builds an MDP from a controlled chain, a `states × actions` cost
    /// matrix and a discount factor.
    ///
    /// # Errors
    ///
    /// * [`MdpError::CostShapeMismatch`] when `cost` is not
    ///   `num_states × num_actions`.
    /// * [`MdpError::InvalidDiscount`] when `discount ∉ (0, 1)`.
    pub fn new(
        chain: ControlledMarkovChain,
        cost: Matrix,
        discount: f64,
    ) -> Result<Self, MdpError> {
        let expected = (chain.num_states(), chain.num_actions());
        if cost.shape() != expected {
            return Err(MdpError::CostShapeMismatch {
                found: cost.shape(),
                expected,
            });
        }
        if !(discount > 0.0 && discount < 1.0 && discount.is_finite()) {
            return Err(MdpError::InvalidDiscount { value: discount });
        }
        Ok(DiscountedMdp {
            chain,
            cost,
            discount,
        })
    }

    /// Replaces the transition structure with a re-estimated chain of the
    /// **same dimensions**, keeping costs and discount — the model-drift
    /// mutation behind
    /// [`ConstrainedSession::update_model`](crate::ConstrainedSession::update_model):
    /// an online estimator refits the workload chain each epoch while the
    /// cost structure (power, penalties) is a property of the hardware
    /// and stays put.
    ///
    /// # Errors
    ///
    /// [`MdpError::CostShapeMismatch`] when the new chain's
    /// `(states, actions)` differ from the existing cost matrix's — the
    /// state space of a loaded problem is fixed.
    pub fn replace_chain(&mut self, chain: ControlledMarkovChain) -> Result<(), MdpError> {
        let expected = (self.chain.num_states(), self.chain.num_actions());
        let found = (chain.num_states(), chain.num_actions());
        if found != expected {
            return Err(MdpError::CostShapeMismatch { found, expected });
        }
        self.chain = chain;
        Ok(())
    }

    /// Number of states.
    pub fn num_states(&self) -> usize {
        self.chain.num_states()
    }

    /// Number of actions.
    pub fn num_actions(&self) -> usize {
        self.chain.num_actions()
    }

    /// The discount factor `α`.
    pub fn discount(&self) -> f64 {
        self.discount
    }

    /// Expected session length `1/(1−α)` in slices (the paper's time
    /// horizon; Section IV).
    pub fn horizon(&self) -> f64 {
        1.0 / (1.0 - self.discount)
    }

    /// The controlled transition structure.
    pub fn chain(&self) -> &ControlledMarkovChain {
        &self.chain
    }

    /// The `states × actions` cost matrix.
    pub fn cost_matrix(&self) -> &Matrix {
        &self.cost
    }

    /// The cost of taking `action` in `state`.
    ///
    /// # Panics
    ///
    /// Panics on out-of-range indices.
    pub fn cost(&self, state: usize, action: usize) -> f64 {
        self.cost[(state, action)]
    }

    /// Successive approximation of the optimality equations (12):
    /// `v(s) = minₐ [c(s,a) + α Σⱼ P(s→j|a) v(j)]`.
    ///
    /// Returns the optimal value vector and the greedy (optimal
    /// deterministic Markov stationary) policy — Theorem A.1.
    ///
    /// # Errors
    ///
    /// [`MdpError::NoConvergence`] when the span seminorm of successive
    /// iterates fails to drop below `tol` within `max_iterations`.
    pub fn value_iteration(
        &self,
        tol: f64,
        max_iterations: usize,
    ) -> Result<(Vec<f64>, DeterministicPolicy), MdpError> {
        let n = self.num_states();
        let mut v = vec![0.0; n];
        let mut next = vec![0.0; n];
        for _iter in 0..max_iterations {
            for (s, slot) in next.iter_mut().enumerate() {
                *slot = self.bellman_min(s, &v).0;
            }
            let diff = dpm_linalg::vector::max_abs_diff(&v, &next);
            std::mem::swap(&mut v, &mut next);
            // Standard stopping rule guaranteeing ‖v − v*‖ ≤ tol.
            if diff < tol * (1.0 - self.discount) / (2.0 * self.discount).max(1.0) {
                let policy = self.greedy_policy(&v);
                return Ok((v, policy));
            }
        }
        Err(MdpError::NoConvergence {
            algorithm: "value iteration",
            iterations: max_iterations,
        })
    }

    /// Howard's policy iteration: exact evaluation (LU solve) alternated
    /// with greedy improvement. Terminates in finitely many steps because
    /// `Π_DMS` is finite and each step strictly improves.
    ///
    /// # Errors
    ///
    /// Propagates evaluation failures; [`MdpError::NoConvergence`] is
    /// returned if improvement stalls without stabilizing (which would
    /// indicate a numerical problem, not a theoretical one).
    pub fn policy_iteration(&self) -> Result<(Vec<f64>, DeterministicPolicy), MdpError> {
        let n = self.num_states();
        let mut policy = DeterministicPolicy::new(vec![0; n]);
        // |Π_DMS| is finite; n·m + a margin bounds the improvement steps in
        // practice for these problem sizes.
        let max_rounds = 20 + 10 * n * self.num_actions();
        for _ in 0..max_rounds {
            let v = self.evaluate_deterministic(&policy)?;
            let improved = self.greedy_policy(&v);
            if improved == policy {
                return Ok((v, policy));
            }
            policy = improved;
        }
        Err(MdpError::NoConvergence {
            algorithm: "policy iteration",
            iterations: max_rounds,
        })
    }

    /// Exact value of a deterministic policy: solves
    /// `(I − α P_π) v = c_π`.
    ///
    /// # Errors
    ///
    /// Propagates singular-system failures (impossible for a valid
    /// stochastic matrix and `α < 1`, but surfaced rather than panicked).
    pub fn evaluate_deterministic(
        &self,
        policy: &DeterministicPolicy,
    ) -> Result<Vec<f64>, MdpError> {
        let randomized = policy.to_randomized(self.num_actions());
        self.evaluate_randomized(&randomized)
    }

    /// Exact value of a randomized policy `π`: solves
    /// `(I − α P_π) v = c_π` with `P_π`, `c_π` mixed by the per-state
    /// decisions (equation (5)).
    ///
    /// # Errors
    ///
    /// Propagates singular-system failures and decision-validation errors.
    pub fn evaluate_randomized(&self, policy: &RandomizedPolicy) -> Result<Vec<f64>, MdpError> {
        let n = self.num_states();
        let closed_loop = self.chain.under_state_decisions(policy.decisions())?;
        let p = closed_loop.transition_matrix();
        let mut a = Matrix::zeros(n, n);
        for i in 0..n {
            for j in 0..n {
                a[(i, j)] = if i == j { 1.0 } else { 0.0 } - self.discount * p.prob(i, j);
            }
        }
        let c_pi: Vec<f64> = (0..n)
            .map(|s| {
                policy
                    .decision(s)
                    .iter()
                    .enumerate()
                    .map(|(act, &w)| w * self.cost[(s, act)])
                    .sum()
            })
            .collect();
        let lu = LuDecomposition::new(&a)?;
        Ok(lu.solve(&c_pi)?)
    }

    /// Total expected discounted cost of a randomized policy from an
    /// initial distribution: `q · v_π`.
    ///
    /// # Errors
    ///
    /// Propagates evaluation failures; rejects malformed `initial`.
    pub fn policy_value(
        &self,
        policy: &RandomizedPolicy,
        initial: &[f64],
    ) -> Result<f64, MdpError> {
        validate_distribution(initial, self.num_states())?;
        let v = self.evaluate_randomized(policy)?;
        Ok(dpm_linalg::vector::dot(initial, &v))
    }

    /// One Bellman backup at `s`: `(min value, argmin action)`.
    fn bellman_min(&self, s: usize, v: &[f64]) -> (f64, usize) {
        let mut best = f64::INFINITY;
        let mut best_a = 0;
        for a in 0..self.num_actions() {
            let kernel = self.chain.kernel(a);
            let future = dpm_linalg::vector::dot(kernel.row(s), v);
            let q = self.cost[(s, a)] + self.discount * future;
            if q < best {
                best = q;
                best_a = a;
            }
        }
        (best, best_a)
    }

    /// The greedy policy with respect to a value vector.
    fn greedy_policy(&self, v: &[f64]) -> DeterministicPolicy {
        DeterministicPolicy::new(
            (0..self.num_states())
                .map(|s| self.bellman_min(s, v).1)
                .collect(),
        )
    }

    /// Residual of the optimality equations at `v`:
    /// `‖v − T v‖_∞`. Zero (within tolerance) certifies optimality
    /// (Theorem A.1).
    pub fn bellman_residual(&self, v: &[f64]) -> f64 {
        (0..self.num_states())
            .map(|s| (v[s] - self.bellman_min(s, v).0).abs())
            .fold(0.0, f64::max)
    }
}

/// Validates a probability distribution over `n` states.
pub(crate) fn validate_distribution(dist: &[f64], n: usize) -> Result<(), MdpError> {
    if dist.len() != n {
        return Err(MdpError::InvalidInitialDistribution {
            reason: format!("length {} for {n} states", dist.len()),
        });
    }
    if dist.iter().any(|&v| v < 0.0 || !v.is_finite()) {
        return Err(MdpError::InvalidInitialDistribution {
            reason: "negative or non-finite mass".to_string(),
        });
    }
    let sum: f64 = dist.iter().sum();
    if (sum - 1.0).abs() > 1e-7 {
        return Err(MdpError::InvalidInitialDistribution {
            reason: format!("sums to {sum}"),
        });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use dpm_markov::StochasticMatrix;

    /// Two states (0 expensive, 1 free), two actions (0 = stay, 1 = move
    /// toward state 1 w.p. 1). Staying in state 0 costs 1, state 1 is free.
    fn escape_mdp(discount: f64) -> DiscountedMdp {
        let stay = StochasticMatrix::identity(2);
        let jump = StochasticMatrix::from_rows(&[&[0.0, 1.0], &[0.0, 1.0]]).unwrap();
        let chain = ControlledMarkovChain::new(vec![stay, jump]).unwrap();
        let cost = Matrix::from_rows(&[&[1.0, 1.0], &[0.0, 0.0]]).unwrap();
        DiscountedMdp::new(chain, cost, discount).unwrap()
    }

    #[test]
    fn constructor_validates() {
        let chain = ControlledMarkovChain::new(vec![StochasticMatrix::identity(2)]).unwrap();
        let bad_cost = Matrix::zeros(3, 1);
        assert!(matches!(
            DiscountedMdp::new(chain.clone(), bad_cost, 0.9),
            Err(MdpError::CostShapeMismatch { .. })
        ));
        let cost = Matrix::zeros(2, 1);
        assert!(matches!(
            DiscountedMdp::new(chain.clone(), cost.clone(), 1.0),
            Err(MdpError::InvalidDiscount { .. })
        ));
        assert!(matches!(
            DiscountedMdp::new(chain, cost, -0.1),
            Err(MdpError::InvalidDiscount { .. })
        ));
    }

    #[test]
    fn horizon_matches_discount() {
        let mdp = escape_mdp(0.99);
        assert!((mdp.horizon() - 100.0).abs() < 1e-9);
    }

    #[test]
    fn value_iteration_solves_escape() {
        // Optimal: jump out of state 0 immediately. v(0) = 1 (pay once),
        // v(1) = 0.
        let mdp = escape_mdp(0.9);
        let (v, policy) = mdp.value_iteration(1e-10, 10_000).unwrap();
        assert_eq!(policy.action(0), 1);
        assert!((v[0] - 1.0).abs() < 1e-7);
        assert!(v[1].abs() < 1e-9);
    }

    #[test]
    fn policy_iteration_matches_value_iteration() {
        let mdp = escape_mdp(0.95);
        let (v_vi, p_vi) = mdp.value_iteration(1e-10, 100_000).unwrap();
        let (v_pi, p_pi) = mdp.policy_iteration().unwrap();
        assert_eq!(p_vi, p_pi);
        assert!(dpm_linalg::vector::approx_eq(&v_vi, &v_pi, 1e-6));
    }

    #[test]
    fn evaluate_deterministic_bad_policy() {
        // Always stay: v(0) = 1/(1-α).
        let mdp = escape_mdp(0.9);
        let v = mdp
            .evaluate_deterministic(&DeterministicPolicy::new(vec![0, 0]))
            .unwrap();
        assert!((v[0] - 10.0).abs() < 1e-9);
        assert!(v[1].abs() < 1e-12);
    }

    #[test]
    fn randomized_policy_value_interpolates() {
        let mdp = escape_mdp(0.9);
        // In state 0, stay w.p. β, jump w.p. 1−β:
        // v0 = 1 + α β v0 ⇒ v0 = 1 / (1 − αβ).
        let beta = 0.5;
        let policy = RandomizedPolicy::new(vec![vec![beta, 1.0 - beta], vec![1.0, 0.0]]).unwrap();
        let v = mdp.evaluate_randomized(&policy).unwrap();
        assert!((v[0] - 1.0 / (1.0 - 0.9 * beta)).abs() < 1e-9);
    }

    #[test]
    fn policy_value_weights_by_initial_distribution() {
        let mdp = escape_mdp(0.9);
        let policy = DeterministicPolicy::new(vec![1, 0]).to_randomized(2);
        let value = mdp.policy_value(&policy, &[0.5, 0.5]).unwrap();
        assert!((value - 0.5).abs() < 1e-9);
        assert!(mdp.policy_value(&policy, &[1.0]).is_err());
        assert!(mdp.policy_value(&policy, &[0.7, 0.7]).is_err());
    }

    #[test]
    fn bellman_residual_certifies_optimality() {
        let mdp = escape_mdp(0.9);
        let (v, _) = mdp.value_iteration(1e-12, 100_000).unwrap();
        assert!(mdp.bellman_residual(&v) < 1e-9);
        // At v = [5, 5] every backup gives 5.5 / 4.5, so the residual is 0.5.
        assert!((mdp.bellman_residual(&[5.0, 5.0]) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn stochastic_transition_discounting() {
        // Single action; from state 0 move to 1 w.p. p, else stay. Cost 1
        // in state 0. v0 = 1 + α(1−p) v0 ⇒ v0 = 1/(1 − α(1−p)).
        let p = 0.3;
        let kernel = StochasticMatrix::from_rows(&[&[1.0 - p, p], &[0.0, 1.0]]).unwrap();
        let chain = ControlledMarkovChain::new(vec![kernel]).unwrap();
        let cost = Matrix::from_rows(&[&[1.0], &[0.0]]).unwrap();
        let mdp = DiscountedMdp::new(chain, cost, 0.8).unwrap();
        let (v, _) = mdp.value_iteration(1e-12, 100_000).unwrap();
        assert!((v[0] - 1.0 / (1.0 - 0.8 * 0.7)).abs() < 1e-7);
    }
}
