use dpm_linalg::Matrix;
use dpm_lp::{ConstraintOp, LinearProgram, LpSolution, LpSolver};

use crate::mdp::validate_distribution;
use crate::{DiscountedMdp, MdpError, RandomizedPolicy};

/// The occupation-measure linear program **LP2** of the paper's Appendix A.
///
/// Unknowns are the *state–action frequencies* `x_{s,a}` — the expected
/// discounted number of slices in which the system is in state `s` and
/// command `a` is issued. The program is
///
/// ```text
/// minimize    Σ_{s,a} c(s,a) · x_{s,a}
/// subject to  Σ_a x_{j,a} − α Σ_s Σ_a P(s→j|a) x_{s,a} = q_j   ∀j
///             x ≥ 0
/// ```
///
/// where `q` is the initial state distribution. The equality rows are the
/// "balance equations" of Fig. 11: expected visits to `j` equal the initial
/// mass at `j` plus discounted expected inflow. Extra linear cost bounds
/// (the paper's LP3/LP4) are added by
/// [`ConstrainedMdp`](crate::ConstrainedMdp), which builds on this type.
///
/// # Example
///
/// ```
/// use dpm_linalg::Matrix;
/// use dpm_lp::Simplex;
/// use dpm_markov::{ControlledMarkovChain, StochasticMatrix};
/// use dpm_mdp::{DiscountedMdp, OccupationLp};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let stay = StochasticMatrix::identity(2);
/// let jump = StochasticMatrix::from_rows(&[&[0.0, 1.0], &[0.0, 1.0]])?;
/// let chain = ControlledMarkovChain::new(vec![stay, jump])?;
/// let cost = Matrix::from_rows(&[&[1.0, 1.0], &[0.0, 0.0]])?;
/// let mdp = DiscountedMdp::new(chain, cost, 0.9)?;
/// let solution = OccupationLp::new(&mdp, &[1.0, 0.0])?.solve(&Simplex::new())?;
/// assert!((solution.objective() - 1.0).abs() < 1e-6); // pay once, escape
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct OccupationLp<'a> {
    mdp: &'a DiscountedMdp,
    initial: Vec<f64>,
}

impl<'a> OccupationLp<'a> {
    /// Prepares the LP for an MDP and an initial state distribution `q`.
    ///
    /// # Errors
    ///
    /// [`MdpError::InvalidInitialDistribution`] when `initial` is not a
    /// distribution over the MDP's states.
    pub fn new(mdp: &'a DiscountedMdp, initial: &[f64]) -> Result<Self, MdpError> {
        validate_distribution(initial, mdp.num_states())?;
        Ok(OccupationLp {
            mdp,
            initial: initial.to_vec(),
        })
    }

    /// Index of variable `x_{s,a}` in the flat LP variable vector.
    pub fn var_index(&self, state: usize, action: usize) -> usize {
        state * self.mdp.num_actions() + action
    }

    /// Row index of the `k`-th extra cost bound in the program built by
    /// [`Self::build`] — a **stable handle** for retargeting that bound
    /// through a [`SolveSession`](dpm_lp::SolveSession) without
    /// re-emitting the LP. The layout is fixed: `num_states − 1` balance
    /// rows, one normalization row, then the bound rows in the order the
    /// bounds were passed to `build`.
    pub fn bound_row(&self, k: usize) -> usize {
        self.mdp.num_states() + k
    }

    /// The LP right-hand side encoding a *total discounted* bound for an
    /// extra cost row: the program is posed over the normalized measure
    /// `y = (1−α)·x` (see [`Self::build`]), so bounds scale by `1−α` too.
    /// Pass the result to `SolveSession::set_rhs` at [`Self::bound_row`].
    pub fn bound_rhs(&self, bound: f64) -> f64 {
        (1.0 - self.mdp.discount()) * bound
    }

    /// Builds the LP2 program, optionally with extra total-discounted-cost
    /// bounds `Σ d_k(s,a) x_{s,a} ≤ bound_k` (turning it into LP3/LP4).
    ///
    /// The program is posed over the **normalized** occupation measure
    /// `y = (1−α)·x`, which sums to one; for the near-unity discounts the
    /// paper uses (e.g. α = 0.999999 for a 10⁶-slice horizon) the raw
    /// frequencies span five or six orders of magnitude and wreck the
    /// solver's pivot tolerances, while `y` stays perfectly scaled. The
    /// solution is rescaled back to `x` transparently in
    /// [`Self::solve_with_bounds`].
    ///
    /// Balance rows are emitted **sparsely** from the chain's transition
    /// structure (a state's row holds its own `m` action variables plus
    /// its actual in-flows), so the program's size scales with the number
    /// of nonzero transition probabilities — the representation
    /// `RevisedSimplex` exploits — rather than with `states²·actions`.
    ///
    /// # Errors
    ///
    /// [`MdpError::CostShapeMismatch`] when an extra cost matrix has the
    /// wrong shape; LP build errors are mapped through.
    pub fn build(&self, extra_bounds: &[(&Matrix, f64)]) -> Result<LinearProgram, MdpError> {
        let n = self.mdp.num_states();
        let m = self.mdp.num_actions();
        let alpha = self.mdp.discount();
        let scale = 1.0 - alpha;

        let mut c = vec![0.0; n * m];
        for s in 0..n {
            for a in 0..m {
                c[self.var_index(s, a)] = self.mdp.cost(s, a);
            }
        }
        let mut lp = LinearProgram::minimize(&c);

        // Balance equations, one per state j, with the rhs scaled to the
        // normalized measure. The rows sum to `(1−α)·Σy = (1−α)`, i.e.
        // they *imply* the normalization `Σy = 1` — but only with a
        // coefficient of (1−α), so for long horizons tiny per-row
        // residuals can hide O(1) mass loss. We therefore replace the
        // first balance row with the explicit normalization row (the same
        // trick used to solve stationary-distribution systems), which
        // keeps the constraint set equivalent in exact arithmetic and
        // well-conditioned in floating point.
        //
        // The rows are emitted *sparsely*, straight from the controlled
        // chain's transition structure: one pass over the kernels buckets
        // every nonzero transition probability by destination state, so
        // row `j` carries exactly `m` diagonal entries plus `j`'s actual
        // in-flows — never the dense `n·m` width. (Diagonal self-loops
        // duplicate an index; the LP builder sums duplicates by contract.)
        let mut inflows: Vec<Vec<(usize, f64)>> = vec![Vec::new(); n];
        for a in 0..m {
            let kernel = self.mdp.chain().kernel(a);
            for s in 0..n {
                for (j, &p) in kernel.row(s).iter().enumerate() {
                    if p != 0.0 {
                        inflows[j].push((self.var_index(s, a), -alpha * p));
                    }
                }
            }
        }
        for (j, mut inflow) in inflows.into_iter().enumerate().skip(1) {
            let mut row: Vec<(usize, f64)> = Vec::with_capacity(m + inflow.len());
            for a in 0..m {
                row.push((self.var_index(j, a), 1.0));
            }
            row.append(&mut inflow);
            lp.add_sparse_constraint(&row, ConstraintOp::Eq, scale * self.initial[j])?;
        }
        let norm_row = vec![1.0; n * m];
        lp.add_constraint(&norm_row, ConstraintOp::Eq, 1.0)?;

        // Extra discounted-cost bounds, scaled likewise; indicator-style
        // cost matrices (the common case) are themselves sparse.
        for &(d, bound) in extra_bounds {
            if d.shape() != (n, m) {
                return Err(MdpError::CostShapeMismatch {
                    found: d.shape(),
                    expected: (n, m),
                });
            }
            let row: Vec<(usize, f64)> = d
                .iter()
                .filter(|&(_, _, v)| v != 0.0)
                .map(|(s, a, v)| (self.var_index(s, a), v))
                .collect();
            lp.add_sparse_constraint(&row, ConstraintOp::Le, scale * bound)?;
        }
        Ok(lp)
    }

    /// Solves the unconstrained LP2 with the given solver.
    ///
    /// # Errors
    ///
    /// Propagates LP failures ([`MdpError::Infeasible`] cannot occur for
    /// LP2 itself: the feasible set always contains the frequencies of any
    /// stationary policy).
    pub fn solve(&self, solver: &dyn LpSolver) -> Result<OccupationSolution, MdpError> {
        self.solve_with_bounds(solver, &[])
    }

    /// Solves with extra discounted-cost bounds (LP3/LP4).
    ///
    /// # Errors
    ///
    /// [`MdpError::Infeasible`] when the bounds cut off the whole feasible
    /// set; other LP failures are mapped through.
    pub fn solve_with_bounds(
        &self,
        solver: &dyn LpSolver,
        extra_bounds: &[(&Matrix, f64)],
    ) -> Result<OccupationSolution, MdpError> {
        let lp = self.build(extra_bounds)?;
        // Primary solve, with a cross-algorithm rescue: if the chosen
        // engine fails numerically (iteration limit, singular basis), the
        // other engine gets a chance before the error surfaces.
        // Infeasibility and unboundedness are exact verdicts and are not
        // second-guessed.
        let lp_solution = match solver.solve(&lp) {
            Ok(s) => s,
            Err(e @ (dpm_lp::LpError::Infeasible | dpm_lp::LpError::Unbounded)) => {
                return Err(e.into())
            }
            Err(_) => rescue_engine(solver.name()).solve(&lp)?,
        };
        let lp_solution = guard_violations(&lp, lp_solution)?;
        Ok(self.extract(&lp_solution))
    }

    /// Converts an optimal point of a program built by [`Self::build`]
    /// into an [`OccupationSolution`], rescaling the normalized measure
    /// `y = (1−α)·x` back to raw frequencies. Used by
    /// [`Self::solve_with_bounds`] and by the session-based re-solve path
    /// of [`ConstrainedMdp`](crate::ConstrainedMdp).
    pub fn extract(&self, lp_solution: &LpSolution) -> OccupationSolution {
        let n = self.mdp.num_states();
        let m = self.mdp.num_actions();
        let horizon = self.mdp.horizon();
        let mut frequencies = Matrix::zeros(n, m);
        for s in 0..n {
            for a in 0..m {
                // Interior-point iterates can carry tiny negative dust.
                frequencies[(s, a)] = horizon * lp_solution.x()[self.var_index(s, a)].max(0.0);
            }
        }
        OccupationSolution {
            frequencies,
            objective: horizon * lp_solution.objective(),
            iterations: lp_solution.iterations(),
            discount: self.mdp.discount(),
            cost: self.mdp.cost_matrix().clone(),
        }
    }
}

/// The engine tried when `failed` (by name) failed numerically: the two
/// simplex flavors fall back to interior point and vice versa.
pub(crate) fn rescue_engine(failed: &str) -> Box<dyn LpSolver> {
    if failed == "interior-point" {
        Box::new(dpm_lp::Simplex::new())
    } else {
        Box::new(dpm_lp::InteriorPoint::new())
    }
}

/// Guard against solver drift on ill-conditioned instances: the returned
/// point must actually satisfy the balance equations. If it does not,
/// rescue with the interior-point method (whose regularized normal
/// equations tolerate the conditioning), keeping whichever point is
/// cleaner; beyond `1e-4` the solve is rejected outright.
pub(crate) fn guard_violations(
    lp: &LinearProgram,
    mut lp_solution: LpSolution,
) -> Result<LpSolution, MdpError> {
    let violation = lp.max_violation(lp_solution.x());
    if violation > 1e-6 {
        if let Ok(rescue) = dpm_lp::InteriorPoint::new().solve(lp) {
            if lp.max_violation(rescue.x()) < violation {
                lp_solution = rescue;
            }
        }
        if lp.max_violation(lp_solution.x()) > 1e-4 {
            return Err(MdpError::Lp(dpm_lp::LpError::Numerical {
                reason: format!("occupation LP solution violates constraints by {violation:.2e}"),
            }));
        }
    }
    Ok(lp_solution)
}

/// A solved occupation-measure program: the state–action frequencies and
/// everything derivable from them.
#[derive(Debug, Clone)]
pub struct OccupationSolution {
    frequencies: Matrix,
    objective: f64,
    iterations: usize,
    discount: f64,
    cost: Matrix,
}

impl OccupationSolution {
    /// The state–action frequency matrix `x_{s,a}`.
    pub fn frequencies(&self) -> &Matrix {
        &self.frequencies
    }

    /// Optimal total expected discounted cost.
    pub fn objective(&self) -> f64 {
        self.objective
    }

    /// Optimal cost normalized per slice: `objective × (1 − α)`. This is
    /// the quantity the paper plots (e.g. Watts).
    pub fn objective_per_slice(&self) -> f64 {
        self.objective * (1.0 - self.discount)
    }

    /// LP iterations used.
    pub fn iterations(&self) -> usize {
        self.iterations
    }

    /// Total discounted visits `Σ_{s,a} x_{s,a}`; equals the horizon
    /// `1/(1−α)` for any feasible solution (sum of the balance equations).
    pub fn total_visits(&self) -> f64 {
        self.frequencies.as_slice().iter().sum()
    }

    /// Discounted state-visit frequencies `Σ_a x_{s,a}`.
    pub fn state_frequencies(&self) -> Vec<f64> {
        (0..self.frequencies.rows())
            .map(|s| self.frequencies.row(s).iter().sum())
            .collect()
    }

    /// Expected total discounted value of an arbitrary `states × actions`
    /// cost under the solved frequencies: `Σ d(s,a) x_{s,a}`.
    ///
    /// # Panics
    ///
    /// Panics when `d` has the wrong shape.
    pub fn expected_cost(&self, d: &Matrix) -> f64 {
        assert_eq!(d.shape(), self.frequencies.shape(), "cost shape mismatch");
        dpm_linalg::vector::dot(d.as_slice(), self.frequencies.as_slice())
    }

    /// Per-slice version of [`Self::expected_cost`].
    ///
    /// # Panics
    ///
    /// Panics when `d` has the wrong shape.
    pub fn expected_cost_per_slice(&self, d: &Matrix) -> f64 {
        self.expected_cost(d) * (1.0 - self.discount)
    }

    /// Extracts the optimal randomized Markov stationary policy by
    /// equation (16): `π(a|s) = x_{s,a} / Σ_a x_{s,a}`.
    ///
    /// States never visited under the optimal occupation measure
    /// (`Σ_a x_{s,a} = 0`) get the action with the smallest immediate
    /// cost — any choice there leaves the LP objective unchanged; the
    /// cheapest-cost tie-break keeps simulated trajectories sensible if
    /// sampling noise ever reaches such a state.
    pub fn policy(&self) -> RandomizedPolicy {
        let n = self.frequencies.rows();
        let m = self.frequencies.cols();
        let mut rows = Vec::with_capacity(n);
        for s in 0..n {
            let total: f64 = self.frequencies.row(s).iter().sum();
            if total > 1e-12 {
                let mut row: Vec<f64> =
                    self.frequencies.row(s).iter().map(|&v| v / total).collect();
                // Exact renormalization against division drift.
                let sum: f64 = row.iter().sum();
                for v in row.iter_mut() {
                    *v /= sum;
                }
                rows.push(row);
            } else {
                let best = (0..m)
                    .min_by(|&a, &b| self.cost[(s, a)].total_cmp(&self.cost[(s, b)]))
                    .expect("at least one action");
                let mut row = vec![0.0; m];
                row[best] = 1.0;
                rows.push(row);
            }
        }
        RandomizedPolicy::new(rows).expect("rows normalized by construction")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dpm_lp::{InteriorPoint, RevisedSimplex, Simplex};
    use dpm_markov::{ControlledMarkovChain, StochasticMatrix};

    fn escape_mdp(discount: f64) -> DiscountedMdp {
        let stay = StochasticMatrix::identity(2);
        let jump = StochasticMatrix::from_rows(&[&[0.0, 1.0], &[0.0, 1.0]]).unwrap();
        let chain = ControlledMarkovChain::new(vec![stay, jump]).unwrap();
        let cost = Matrix::from_rows(&[&[1.0, 1.0], &[0.0, 0.0]]).unwrap();
        DiscountedMdp::new(chain, cost, discount).unwrap()
    }

    #[test]
    fn lp_matches_value_iteration() {
        let mdp = escape_mdp(0.9);
        let (v, _) = mdp.value_iteration(1e-12, 100_000).unwrap();
        let q = [0.7, 0.3];
        let expected = 0.7 * v[0] + 0.3 * v[1];
        let sol = OccupationLp::new(&mdp, &q)
            .unwrap()
            .solve(&Simplex::new())
            .unwrap();
        assert!((sol.objective() - expected).abs() < 1e-7);
    }

    #[test]
    fn interior_point_agrees_with_simplex() {
        let mdp = escape_mdp(0.95);
        let lp = OccupationLp::new(&mdp, &[0.5, 0.5]).unwrap();
        let s1 = lp.solve(&Simplex::new()).unwrap();
        let s2 = lp.solve(&InteriorPoint::new()).unwrap();
        assert!((s1.objective() - s2.objective()).abs() < 1e-5);
    }

    #[test]
    fn revised_simplex_agrees_with_dense_tableau() {
        let mdp = escape_mdp(0.95);
        let lp = OccupationLp::new(&mdp, &[0.5, 0.5]).unwrap();
        let dense = lp.solve(&Simplex::new()).unwrap();
        let revised = lp.solve(&RevisedSimplex::new()).unwrap();
        assert!((dense.objective() - revised.objective()).abs() < 1e-6);
        assert!((revised.total_visits() - mdp.horizon()).abs() < 1e-6);
    }

    #[test]
    fn balance_rows_are_emitted_sparsely() {
        // The escape MDP transitions to at most 2 states per action, so
        // every balance row must stay far below the dense n·m width; only
        // the explicit normalization row is full.
        let mdp = escape_mdp(0.9);
        let lp = OccupationLp::new(&mdp, &[1.0, 0.0])
            .unwrap()
            .build(&[])
            .unwrap();
        let vars = lp.num_vars();
        let (norm_entries, _, _) = lp.constraint_entries(lp.num_constraints() - 1);
        assert_eq!(norm_entries.len(), vars);
        for i in 0..lp.num_constraints() - 1 {
            let (entries, _, _) = lp.constraint_entries(i);
            assert!(entries.len() < vars, "row {i} is dense");
        }
    }

    #[test]
    fn total_visits_equals_horizon() {
        let mdp = escape_mdp(0.9);
        let sol = OccupationLp::new(&mdp, &[1.0, 0.0])
            .unwrap()
            .solve(&Simplex::new())
            .unwrap();
        assert!((sol.total_visits() - mdp.horizon()).abs() < 1e-6);
    }

    #[test]
    fn extracted_policy_is_optimal_escape() {
        let mdp = escape_mdp(0.9);
        let sol = OccupationLp::new(&mdp, &[1.0, 0.0])
            .unwrap()
            .solve(&Simplex::new())
            .unwrap();
        let policy = sol.policy();
        // State 0 must jump (action 1). State 1 is visited with both
        // actions equivalent; mode is well-defined either way.
        assert!((policy.prob(0, 1) - 1.0).abs() < 1e-7);
        // Evaluating the extracted policy reproduces the LP objective.
        let value = mdp.policy_value(&policy, &[1.0, 0.0]).unwrap();
        assert!((value - sol.objective()).abs() < 1e-6);
    }

    #[test]
    fn per_slice_normalization() {
        let mdp = escape_mdp(0.9);
        let sol = OccupationLp::new(&mdp, &[1.0, 0.0])
            .unwrap()
            .solve(&Simplex::new())
            .unwrap();
        assert!((sol.objective_per_slice() - sol.objective() * 0.1).abs() < 1e-12);
    }

    #[test]
    fn expected_cost_of_indicator_counts_visits() {
        let mdp = escape_mdp(0.5);
        let sol = OccupationLp::new(&mdp, &[1.0, 0.0])
            .unwrap()
            .solve(&Simplex::new())
            .unwrap();
        // Indicator of state 0 (both actions): discounted visits to s0.
        let ind = Matrix::from_rows(&[&[1.0, 1.0], &[0.0, 0.0]]).unwrap();
        // Optimal escapes immediately: exactly 1 visit to s0 (the first
        // slice), so discounted count = 1.
        assert!((sol.expected_cost(&ind) - 1.0).abs() < 1e-7);
        let states = sol.state_frequencies();
        assert!((states[0] - 1.0).abs() < 1e-7);
    }

    #[test]
    fn rejects_bad_initial_distribution() {
        let mdp = escape_mdp(0.9);
        assert!(OccupationLp::new(&mdp, &[0.5]).is_err());
        assert!(OccupationLp::new(&mdp, &[0.9, 0.3]).is_err());
        assert!(OccupationLp::new(&mdp, &[-0.5, 1.5]).is_err());
    }

    #[test]
    fn unvisited_state_gets_cheapest_action() {
        // Start fully in state 1 (absorbing under both actions); state 0
        // never visited. Its fallback action must be the cheaper one.
        let stay = StochasticMatrix::identity(2);
        let jump = StochasticMatrix::from_rows(&[&[0.0, 1.0], &[0.0, 1.0]]).unwrap();
        let chain = ControlledMarkovChain::new(vec![stay, jump]).unwrap();
        let cost = Matrix::from_rows(&[&[5.0, 2.0], &[0.0, 0.0]]).unwrap();
        let mdp = DiscountedMdp::new(chain, cost, 0.9).unwrap();
        let sol = OccupationLp::new(&mdp, &[0.0, 1.0])
            .unwrap()
            .solve(&Simplex::new())
            .unwrap();
        let policy = sol.policy();
        assert_eq!(policy.decision(0), &[0.0, 1.0]);
    }
}
