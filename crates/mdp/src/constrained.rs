use dpm_linalg::Matrix;
use dpm_lp::{
    LinearProgram, LpError, LpSolver, ReloadKind, SolveBudget, SolveReport, SolveSession,
};
use dpm_markov::ControlledMarkovChain;

use crate::mdp::validate_distribution;
use crate::occupation::{guard_violations, rescue_engine};
use crate::{DiscountedMdp, MdpError, OccupationLp, RandomizedPolicy};

/// A bound on the total expected discounted value of a secondary cost —
/// one row of the paper's LP3/LP4 beyond the balance equations.
///
/// The paper's instances:
/// * **power bound** (LP3): `Σ p(s,a) x_{s,a} ≤ P`,
/// * **performance bound** (LP4): `Σ d(s,a) x_{s,a} ≤ D`,
/// * **request-loss bound**: indicator cost of "SR issues a request while
///   the queue is full", bounded by `L`.
///
/// Bounds are on *total discounted* values; use
/// [`Self::per_slice`] to specify the per-slice bound the paper's prose
/// uses (e.g. "average queue length ≤ 0.5" becomes `0.5 / (1 − α)`).
#[derive(Debug, Clone)]
pub struct CostConstraint {
    name: String,
    cost: Matrix,
    bound: f64,
}

impl CostConstraint {
    /// A bound on the total discounted cost.
    pub fn new(name: impl Into<String>, cost: Matrix, bound: f64) -> Self {
        CostConstraint {
            name: name.into(),
            cost,
            bound,
        }
    }

    /// A bound expressed per slice (the paper's convention): internally
    /// multiplied by the horizon `1/(1−α)`.
    pub fn per_slice(
        name: impl Into<String>,
        cost: Matrix,
        bound_per_slice: f64,
        discount: f64,
    ) -> Self {
        Self::new(name, cost, bound_per_slice / (1.0 - discount))
    }

    /// The constraint's name (used in reports).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The secondary cost matrix.
    pub fn cost(&self) -> &Matrix {
        &self.cost
    }

    /// The bound on the total discounted cost.
    pub fn bound(&self) -> f64 {
        self.bound
    }
}

/// A discounted MDP with secondary-cost constraints — the paper's
/// constrained policy-optimization problems **PO1/PO2** in their LP form
/// **LP3/LP4**.
///
/// Solving yields a randomized stationary Markov policy; by Theorem A.2 it
/// is deterministic exactly when no constraint is active at the optimum.
///
/// # Example
///
/// ```
/// use dpm_linalg::Matrix;
/// use dpm_lp::Simplex;
/// use dpm_markov::{ControlledMarkovChain, StochasticMatrix};
/// use dpm_mdp::{ConstrainedMdp, CostConstraint, DiscountedMdp};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// // Minimize power subject to a performance bound.
/// let sleep = StochasticMatrix::from_rows(&[&[0.2, 0.8], &[0.0, 1.0]])?;
/// let wake = StochasticMatrix::from_rows(&[&[1.0, 0.0], &[0.5, 0.5]])?;
/// let chain = ControlledMarkovChain::new(vec![wake, sleep])?;
/// let power = Matrix::from_rows(&[&[2.0, 2.5], &[2.5, 0.0]])?;
/// let penalty = Matrix::from_rows(&[&[0.0, 0.0], &[1.0, 1.0]])?;
/// let mdp = DiscountedMdp::new(chain, power, 0.95)?;
/// let solution = ConstrainedMdp::new(mdp)
///     .with_constraint(CostConstraint::per_slice("penalty", penalty, 0.4, 0.95))
///     .solve(&[1.0, 0.0], &Simplex::new())?;
/// assert!(solution.constraint_value_per_slice(0) <= 0.4 + 1e-6);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct ConstrainedMdp {
    mdp: DiscountedMdp,
    constraints: Vec<CostConstraint>,
}

impl ConstrainedMdp {
    /// Wraps an MDP with no constraints yet.
    pub fn new(mdp: DiscountedMdp) -> Self {
        ConstrainedMdp {
            mdp,
            constraints: Vec::new(),
        }
    }

    /// Adds a secondary-cost bound (builder style).
    ///
    /// # Panics
    ///
    /// Panics when the constraint's cost matrix shape differs from the
    /// MDP's `(states, actions)` — a programming error, caught eagerly.
    pub fn with_constraint(mut self, constraint: CostConstraint) -> Self {
        assert_eq!(
            constraint.cost.shape(),
            (self.mdp.num_states(), self.mdp.num_actions()),
            "constraint `{}` cost matrix shape mismatch",
            constraint.name
        );
        self.constraints.push(constraint);
        self
    }

    /// The wrapped MDP.
    pub fn mdp(&self) -> &DiscountedMdp {
        &self.mdp
    }

    /// The registered constraints.
    pub fn constraints(&self) -> &[CostConstraint] {
        &self.constraints
    }

    /// Row index of constraint `k` in the occupation LP emitted for this
    /// problem — the **stable row handle** a solve session retargets (see
    /// [`OccupationLp::bound_row`]; constraints keep the order they were
    /// registered with [`Self::with_constraint`]).
    pub fn constraint_row(&self, k: usize) -> usize {
        self.mdp.num_states() + k
    }

    /// Solves LP3/LP4 from the given initial distribution.
    ///
    /// # Errors
    ///
    /// * [`MdpError::Infeasible`] when no policy meets all bounds — the
    ///   paper's `g(C) = +∞`.
    /// * Propagated LP/linalg failures.
    pub fn solve(
        &self,
        initial: &[f64],
        solver: &dyn LpSolver,
    ) -> Result<ConstrainedSolution, MdpError> {
        validate_distribution(initial, self.mdp.num_states())?;
        let lp = OccupationLp::new(&self.mdp, initial)?;
        let bounds: Vec<(&Matrix, f64)> = self
            .constraints
            .iter()
            .map(|c| (&c.cost, c.bound))
            .collect();
        let occ = lp.solve_with_bounds(solver, &bounds)?;
        let bounds: Vec<f64> = self.constraints.iter().map(|c| c.bound).collect();
        Ok(self.assemble(occ, &bounds))
    }

    /// Builds the occupation LP **once** and loads it into a solver
    /// session for repeated parametric re-solves: the returned
    /// [`ConstrainedSession`] owns this problem and can retarget any
    /// registered bound ([`ConstrainedSession::set_bound`]) and re-solve
    /// — warm-started when the engine supports it — without re-emitting
    /// balance rows or cost rows.
    ///
    /// # Errors
    ///
    /// * [`MdpError::InvalidInitialDistribution`] for a bad `initial`.
    /// * Propagated LP build/session failures. Note that *solving* errors
    ///   (including infeasibility) surface from
    ///   [`ConstrainedSession::solve`], not from here.
    pub fn into_session(
        self,
        initial: &[f64],
        solver: &dyn LpSolver,
    ) -> Result<ConstrainedSession, MdpError> {
        validate_distribution(initial, self.mdp.num_states())?;
        let lp = {
            let occupation = OccupationLp::new(&self.mdp, initial)?;
            let bounds: Vec<(&Matrix, f64)> = self
                .constraints
                .iter()
                .map(|c| (&c.cost, c.bound))
                .collect();
            occupation.build(&bounds)?
        };
        let session = solver.start(&lp)?;
        Ok(ConstrainedSession {
            bounds: self.constraints.iter().map(|c| c.bound).collect(),
            problem: self,
            initial: initial.to_vec(),
            lp,
            last: session.last_report().clone(),
            session,
            solver_name: solver.name(),
            cached: None,
            extractions: 0,
        })
    }

    /// Assembles a [`ConstrainedSolution`] from a solved occupation
    /// measure and the bounds that were in force for that solve.
    fn assemble(&self, occ: crate::OccupationSolution, bounds: &[f64]) -> ConstrainedSolution {
        let constraint_values = self
            .constraints
            .iter()
            .map(|c| occ.expected_cost(&c.cost))
            .collect();
        let policy = occ.policy();
        ConstrainedSolution {
            policy,
            objective: occ.objective(),
            constraint_values,
            bounds: bounds.to_vec(),
            names: self.constraints.iter().map(|c| c.name.clone()).collect(),
            discount: self.mdp.discount(),
            occupation: occ,
        }
    }
}

/// A constrained MDP loaded into a solver session: one LP emission, then
/// arbitrarily many parametric re-solves.
///
/// Created by [`ConstrainedMdp::into_session`]. This is the engine room
/// of Pareto sweeps: between sweep points only a single bound row's
/// right-hand side changes, so a warm-capable engine
/// ([`RevisedSimplex`](dpm_lp::RevisedSimplex)) re-solves by a handful of
/// dual simplex pivots from the previous optimal basis instead of a full
/// cold solve. Every solve also returns the engine's [`SolveReport`].
///
/// The session keeps the numerical safety nets of
/// [`OccupationLp::solve_with_bounds`]: cross-engine rescue on numerical
/// failure and the balance-equation violation guard.
#[derive(Debug)]
pub struct ConstrainedSession {
    problem: ConstrainedMdp,
    initial: Vec<f64>,
    /// Mirror of the emitted LP, kept in sync with bound changes — used
    /// for the violation guard and as the rescue engines' input.
    lp: LinearProgram,
    session: Box<dyn SolveSession>,
    /// Current total-discounted bounds, one per registered constraint.
    bounds: Vec<f64>,
    solver_name: &'static str,
    /// Report of the most recent solve attempt through *any* path —
    /// including the cross-engine rescue, whose report the inner
    /// session never sees.
    last: SolveReport,
    /// Memoized policy extraction: when a re-solve reports the same
    /// basis signature under the same bounds, the previous solution is
    /// reused instead of re-running equation (16).
    cached: Option<ExtractionCache>,
    /// How many times equation (16) extraction actually ran.
    extractions: usize,
}

/// The memoized product of one policy extraction, keyed by the basis
/// signature and bounds it was produced under.
#[derive(Debug)]
struct ExtractionCache {
    signature: u64,
    bounds: Vec<f64>,
    solution: ConstrainedSolution,
}

impl ConstrainedSession {
    /// Clones this session into an independent sibling: same problem,
    /// bounds and (for warm-capable engines) the same optimal basis —
    /// forked through [`SolveSession::fork`], so a revised-simplex
    /// sibling shares the `Arc`'d symbolic LU analysis and its first
    /// same-shape refit skips the Markowitz search entirely. Mutations
    /// ([`Self::set_bound`], [`Self::update_model`]) on either side
    /// never affect the other. The extraction memo starts empty.
    ///
    /// This is the fleet primitive: build one session per LP *shape*,
    /// fork it per cluster.
    ///
    /// # Errors
    ///
    /// Propagated engine failures from the inner session fork.
    pub fn fork(&self) -> Result<ConstrainedSession, MdpError> {
        Ok(ConstrainedSession {
            problem: self.problem.clone(),
            initial: self.initial.clone(),
            lp: self.lp.clone(),
            session: self.session.fork()?,
            bounds: self.bounds.clone(),
            solver_name: self.solver_name,
            last: self.last.clone(),
            cached: None,
            extractions: 0,
        })
    }

    /// The wrapped constrained problem (cost matrices, names, the MDP).
    pub fn problem(&self) -> &ConstrainedMdp {
        &self.problem
    }

    /// The current total-discounted bound of constraint `k`.
    ///
    /// # Panics
    ///
    /// Panics when `k` is out of range.
    pub fn bound(&self, k: usize) -> f64 {
        self.bounds[k]
    }

    /// Retargets constraint `k` to a new **total discounted** bound,
    /// updating the loaded LP in place (one rhs write, no re-emission).
    ///
    /// # Errors
    ///
    /// [`MdpError::CostShapeMismatch`]-style index errors surface as the
    /// LP layer's `BadConstraint`; an out-of-range `k` is reported
    /// directly.
    pub fn set_bound(&mut self, k: usize, bound: f64) -> Result<(), MdpError> {
        if k >= self.bounds.len() {
            return Err(MdpError::Lp(LpError::BadConstraint {
                found: k,
                expected: self.bounds.len(),
            }));
        }
        let row = self.problem.constraint_row(k);
        let rhs = (1.0 - self.problem.mdp.discount()) * bound;
        self.session.set_rhs(row, rhs)?;
        self.lp.set_rhs(row, rhs)?;
        self.bounds[k] = bound;
        Ok(())
    }

    /// Retargets constraint `k` to a new **per-slice** bound (the paper's
    /// convention): internally multiplied by the horizon `1/(1−α)`.
    ///
    /// # Errors
    ///
    /// Same contract as [`Self::set_bound`].
    pub fn set_bound_per_slice(&mut self, k: usize, bound_per_slice: f64) -> Result<(), MdpError> {
        let discount = self.problem.mdp.discount();
        self.set_bound(k, bound_per_slice / (1.0 - discount))
    }

    /// Swaps in a re-estimated transition structure of the same
    /// dimensions and rebuilds the occupation LP **in place** through
    /// [`SolveSession::reload`] — the per-epoch mutation of an online
    /// adaptation loop. The cost matrices, bounds (including any
    /// retargeted through [`Self::set_bound`]), discount and initial
    /// distribution all carry over; row handles
    /// ([`ConstrainedMdp::constraint_row`]) stay valid because the
    /// emitted program has the same layout.
    ///
    /// Because only balance-row *coefficients* move (the sparsity
    /// pattern of a chain whose support does not change is stable), a
    /// warm-capable engine keeps its optimal basis across the swap and
    /// the next [`Self::solve`] repairs feasibility in a handful of
    /// pivots — [`ReloadKind::Warm`]. A support change (transitions
    /// appearing or vanishing) alters the pattern and degrades to a
    /// correct cold rebuild ([`ReloadKind::Cold`]).
    ///
    /// The equation-(16) extraction memo is invalidated: a basis
    /// signature only identifies a solution *within* one model version.
    ///
    /// # Errors
    ///
    /// * [`MdpError::CostShapeMismatch`] when the chain's dimensions
    ///   differ from the loaded problem's.
    /// * Propagated LP build/reload failures — the session keeps the
    ///   previous model intact on any failure (the swap is staged and
    ///   only committed after the reload succeeds).
    pub fn update_model(&mut self, chain: &ControlledMarkovChain) -> Result<ReloadKind, MdpError> {
        // Stage the swap on a copy so a failure anywhere leaves the
        // session fully consistent (mdp, mirror LP and loaded program
        // all still describe the old model).
        let mut mdp = self.problem.mdp.clone();
        mdp.replace_chain(chain.clone())?;
        let lp = {
            let occupation = OccupationLp::new(&mdp, &self.initial)?;
            let bounds: Vec<(&Matrix, f64)> = self
                .problem
                .constraints
                .iter()
                .zip(&self.bounds)
                .map(|(c, &bound)| (&c.cost, bound))
                .collect();
            occupation.build(&bounds)?
        };
        let kind = self.session.reload(&lp)?;
        self.problem.mdp = mdp;
        self.lp = lp;
        // Basis signatures do not span model versions: the same basic
        // set now encodes different frequencies.
        self.cached = None;
        Ok(kind)
    }

    /// Re-solves the loaded problem under the current bounds, returning
    /// the solution together with the engine's [`SolveReport`] (warm vs
    /// cold, pivots, refactorizations).
    ///
    /// Policy extraction (equation (16)) is **memoized on the engine's
    /// basis signature**: when a re-solve ends at the same basis under
    /// the same bounds — duplicate sweep points, or a bound moved within
    /// the region where it stays inactive *and* back — the previous
    /// solution is returned without re-running the extraction pipeline
    /// (see [`Self::extraction_count`]).
    ///
    /// # Errors
    ///
    /// * [`MdpError::Infeasible`] when the current bounds admit no policy
    ///   (the session stays usable; relax a bound and re-solve).
    /// * Propagated LP failures after the rescue nets are exhausted.
    pub fn solve(&mut self) -> Result<(ConstrainedSolution, SolveReport), MdpError> {
        let (lp_solution, report) = match self.session.solve() {
            Ok(solved) => solved,
            Err(e @ (LpError::Infeasible | LpError::Unbounded)) => {
                self.last = self.session.last_report().clone();
                return Err(e.into());
            }
            Err(e @ LpError::BudgetExhausted { .. }) => {
                // A budget ([`Self::set_budget`]) is the caller's own
                // work cap: rescuing with an unbudgeted cross-engine
                // cold solve would defeat it. The session keeps its
                // partial basis, so a re-budgeted retry resumes there.
                self.last = self.session.last_report().clone();
                return Err(e.into());
            }
            Err(_) => {
                // Same cross-engine rescue as the one-shot path; the
                // rescue runs a cold session on the mirror LP so its
                // outcome — including an infeasibility certificate —
                // is reported faithfully.
                let rescue = rescue_engine(self.solver_name);
                let mut rescue_session = rescue.start(&self.lp)?;
                match rescue_session.solve() {
                    Ok(solved) => solved,
                    Err(e) => {
                        self.last = rescue_session.last_report().clone();
                        return Err(e.into());
                    }
                }
            }
        };
        self.last = report.clone();
        // Memoization: an identical basis under identical bounds (the
        // balance rows never move through this API) pins the whole
        // solution — skip the guard + extraction + equation (16).
        if report.basis_signature != 0 {
            if let Some(cache) = &self.cached {
                if cache.signature == report.basis_signature && cache.bounds == self.bounds {
                    return Ok((cache.solution.clone(), report));
                }
            }
        }
        let lp_solution = guard_violations(&self.lp, lp_solution)?;
        let occ = OccupationLp::new(self.problem.mdp(), &self.initial)?.extract(&lp_solution);
        let solution = self.problem.assemble(occ, &self.bounds);
        self.extractions += 1;
        if report.basis_signature != 0 {
            self.cached = Some(ExtractionCache {
                signature: report.basis_signature,
                bounds: self.bounds.clone(),
                solution: solution.clone(),
            });
        }
        Ok((solution, report))
    }

    /// How many times policy extraction (equation (16) plus the
    /// constraint-value accounting) actually ran — re-solves that hit the
    /// basis-signature memo return the cached solution and do not count.
    pub fn extraction_count(&self) -> usize {
        self.extractions
    }

    /// Report of the most recent solve attempt (successful or not),
    /// whichever engine made it — the loaded session's, or the rescue
    /// engine's when the cross-engine net had to catch a numerical
    /// failure. Infeasible sweep points carry their certificate kind
    /// here.
    pub fn last_report(&self) -> &SolveReport {
        &self.last
    }

    /// Caps the work of every subsequent [`Self::solve`] with a
    /// [`SolveBudget`], passed through to the loaded engine session.
    /// Exhaustion surfaces as [`LpError::BudgetExhausted`] *without*
    /// engaging the cross-engine rescue — the budget is the caller's
    /// policy, and the session keeps its partial basis so a re-budgeted
    /// retry resumes instead of restarting. Engines without budget
    /// support ignore the call (see [`SolveSession::set_budget`]).
    pub fn set_budget(&mut self, budget: SolveBudget) {
        self.session.set_budget(budget);
    }

    /// Asks the loaded engine to refactorize its retained basis from
    /// pristine data before the next solve — the escalation-ladder rung
    /// between a plain warm retry and a full cold rebuild. No-op on
    /// engines without retained factors.
    pub fn force_refactor(&mut self) {
        self.session.force_refactor();
    }
}

/// A solved constrained policy-optimization problem.
#[derive(Debug, Clone)]
pub struct ConstrainedSolution {
    policy: RandomizedPolicy,
    objective: f64,
    constraint_values: Vec<f64>,
    bounds: Vec<f64>,
    names: Vec<String>,
    discount: f64,
    occupation: crate::OccupationSolution,
}

impl ConstrainedSolution {
    /// The optimal (possibly randomized) policy — equation (16).
    pub fn policy(&self) -> &RandomizedPolicy {
        &self.policy
    }

    /// Optimal total expected discounted objective cost.
    pub fn objective(&self) -> f64 {
        self.objective
    }

    /// Optimal objective per slice (the paper's plotted quantity).
    pub fn objective_per_slice(&self) -> f64 {
        self.objective * (1.0 - self.discount)
    }

    /// Achieved total discounted value of constraint `k`.
    ///
    /// # Panics
    ///
    /// Panics when `k` is out of range.
    pub fn constraint_value(&self, k: usize) -> f64 {
        self.constraint_values[k]
    }

    /// Achieved per-slice value of constraint `k`.
    ///
    /// # Panics
    ///
    /// Panics when `k` is out of range.
    pub fn constraint_value_per_slice(&self, k: usize) -> f64 {
        self.constraint_values[k] * (1.0 - self.discount)
    }

    /// `true` when constraint `k` is tight at the optimum (within `tol`,
    /// relative to the bound's magnitude). Active constraints are what make
    /// optimal policies randomized (Theorem A.2).
    ///
    /// # Panics
    ///
    /// Panics when `k` is out of range.
    pub fn is_constraint_active(&self, k: usize, tol: f64) -> bool {
        let scale = self.bounds[k].abs().max(1.0);
        (self.bounds[k] - self.constraint_values[k]).abs() <= tol * scale
    }

    /// Name of constraint `k`.
    ///
    /// # Panics
    ///
    /// Panics when `k` is out of range.
    pub fn constraint_name(&self, k: usize) -> &str {
        &self.names[k]
    }

    /// Number of constraints in the solved problem.
    pub fn num_constraints(&self) -> usize {
        self.bounds.len()
    }

    /// The underlying occupation-measure solution (state–action
    /// frequencies and derived quantities).
    pub fn occupation(&self) -> &crate::OccupationSolution {
        &self.occupation
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dpm_lp::{InteriorPoint, Simplex};
    use dpm_markov::{ControlledMarkovChain, StochasticMatrix};

    /// A power-managed resource in miniature: state 0 = on (costly),
    /// state 1 = sleeping (free but penalized). Action 0 keeps/wakes,
    /// action 1 puts/keeps asleep.
    fn mini_dpm(discount: f64) -> DiscountedMdp {
        let wake = StochasticMatrix::from_rows(&[&[1.0, 0.0], &[0.5, 0.5]]).unwrap();
        let sleep = StochasticMatrix::from_rows(&[&[0.2, 0.8], &[0.0, 1.0]]).unwrap();
        let chain = ControlledMarkovChain::new(vec![wake, sleep]).unwrap();
        let power = Matrix::from_rows(&[&[2.0, 2.5], &[2.5, 0.0]]).unwrap();
        DiscountedMdp::new(chain, power, discount).unwrap()
    }

    fn penalty_matrix() -> Matrix {
        // Penalize being asleep (performance loss proxy).
        Matrix::from_rows(&[&[0.0, 0.0], &[1.0, 1.0]]).unwrap()
    }

    #[test]
    fn unconstrained_is_deterministic() {
        let solution = ConstrainedMdp::new(mini_dpm(0.95))
            .solve(&[1.0, 0.0], &Simplex::new())
            .unwrap();
        assert!(solution.policy().is_deterministic());
        assert_eq!(solution.num_constraints(), 0);
        // Unconstrained optimum: sleep forever (power → small).
        assert!(solution.objective_per_slice() < 1.0);
    }

    #[test]
    fn active_constraint_makes_policy_randomized() {
        let discount = 0.95;
        // Bound the sleep fraction to 40% per slice: forces a mix.
        let solution = ConstrainedMdp::new(mini_dpm(discount))
            .with_constraint(CostConstraint::per_slice(
                "sleep fraction",
                penalty_matrix(),
                0.4,
                discount,
            ))
            .solve(&[1.0, 0.0], &Simplex::new())
            .unwrap();
        assert!(solution.is_constraint_active(0, 1e-6));
        assert!(!solution.policy().is_deterministic());
        assert!(!solution.policy().randomized_states().is_empty());
        assert!((solution.constraint_value_per_slice(0) - 0.4).abs() < 1e-6);
    }

    #[test]
    fn inactive_constraint_changes_nothing() {
        let discount = 0.95;
        let unconstrained = ConstrainedMdp::new(mini_dpm(discount))
            .solve(&[1.0, 0.0], &Simplex::new())
            .unwrap();
        let loose = ConstrainedMdp::new(mini_dpm(discount))
            .with_constraint(CostConstraint::per_slice(
                "loose",
                penalty_matrix(),
                2.0, // sleep fraction can never exceed 1
                discount,
            ))
            .solve(&[1.0, 0.0], &Simplex::new())
            .unwrap();
        assert!(!loose.is_constraint_active(0, 1e-6));
        assert!((loose.objective() - unconstrained.objective()).abs() < 1e-6);
        assert!(loose.policy().is_deterministic());
    }

    #[test]
    fn infeasible_bounds_are_reported() {
        let discount = 0.9;
        let err = ConstrainedMdp::new(mini_dpm(discount))
            .with_constraint(CostConstraint::new(
                "impossible",
                Matrix::filled(2, 2, 1.0), // every slice costs 1 → total = horizon
                1.0,                       // but bound is 1 < 10
            ))
            .solve(&[1.0, 0.0], &Simplex::new())
            .unwrap_err();
        assert_eq!(err, MdpError::Infeasible);
    }

    #[test]
    fn tightening_the_bound_weakly_increases_power() {
        // Theorem 4.1 (convexity) implies monotonicity of the optimum in
        // the bound; check the monotone part on a sweep.
        let discount = 0.95;
        let mut last = f64::NEG_INFINITY;
        for bound in [0.8, 0.6, 0.4, 0.2, 0.1] {
            let solution = ConstrainedMdp::new(mini_dpm(discount))
                .with_constraint(CostConstraint::per_slice(
                    "sleep fraction",
                    penalty_matrix(),
                    bound,
                    discount,
                ))
                .solve(&[1.0, 0.0], &Simplex::new())
                .unwrap();
            let power = solution.objective_per_slice();
            assert!(
                power >= last - 1e-7,
                "power must not decrease as the bound tightens"
            );
            last = power;
        }
    }

    #[test]
    fn solvers_agree_on_constrained_problem() {
        let discount = 0.9;
        let build = || {
            ConstrainedMdp::new(mini_dpm(discount)).with_constraint(CostConstraint::per_slice(
                "sleep fraction",
                penalty_matrix(),
                0.3,
                discount,
            ))
        };
        let s1 = build().solve(&[1.0, 0.0], &Simplex::new()).unwrap();
        let s2 = build().solve(&[1.0, 0.0], &InteriorPoint::new()).unwrap();
        assert!((s1.objective() - s2.objective()).abs() < 1e-4);
    }

    #[test]
    fn extracted_policy_meets_constraint_exactly() {
        // Evaluate the extracted randomized policy with the exact
        // policy-evaluation machinery and confirm the LP's promised
        // constraint value — the paper's consistency check between
        // optimizer and model.
        let discount = 0.95;
        let mdp = mini_dpm(discount);
        let penalty = penalty_matrix();
        let solution = ConstrainedMdp::new(mini_dpm(discount))
            .with_constraint(CostConstraint::per_slice(
                "sleep fraction",
                penalty.clone(),
                0.4,
                discount,
            ))
            .solve(&[1.0, 0.0], &Simplex::new())
            .unwrap();
        // Build an MDP whose "cost" is the penalty, evaluate the policy.
        let penalty_mdp = DiscountedMdp::new(mdp.chain().clone(), penalty, discount).unwrap();
        let achieved = penalty_mdp
            .policy_value(solution.policy(), &[1.0, 0.0])
            .unwrap();
        assert!((achieved - solution.constraint_value(0)).abs() < 1e-5);
        // And the power objective agrees too.
        let power_value = mdp.policy_value(solution.policy(), &[1.0, 0.0]).unwrap();
        assert!((power_value - solution.objective()).abs() < 1e-5);
    }

    #[test]
    fn session_sweep_matches_one_shot_solves() {
        // A bound sweep through one warm session must reproduce the
        // independent one-shot solves point for point.
        let discount = 0.95;
        let build = |bound: f64| {
            ConstrainedMdp::new(mini_dpm(discount)).with_constraint(CostConstraint::per_slice(
                "sleep fraction",
                penalty_matrix(),
                bound,
                discount,
            ))
        };
        let mut session = build(0.8)
            .into_session(&[1.0, 0.0], &dpm_lp::RevisedSimplex::new())
            .unwrap();
        for (i, bound) in [0.8, 0.6, 0.4, 0.2, 0.6].into_iter().enumerate() {
            session.set_bound_per_slice(0, bound).unwrap();
            let (warm, report) = session.solve().unwrap();
            let cold = build(bound).solve(&[1.0, 0.0], &Simplex::new()).unwrap();
            assert!(
                (warm.objective() - cold.objective()).abs() < 1e-6,
                "bound {bound}: warm {} vs cold {}",
                warm.objective(),
                cold.objective()
            );
            assert_eq!(report.warm_start, i > 0, "bound {bound}");
        }
    }

    #[test]
    fn session_reports_infeasibility_and_recovers() {
        let discount = 0.9;
        let session_src = ConstrainedMdp::new(mini_dpm(discount)).with_constraint(
            CostConstraint::new("impossible", Matrix::filled(2, 2, 1.0), 20.0),
        );
        let mut session = session_src
            .into_session(&[1.0, 0.0], &dpm_lp::RevisedSimplex::new())
            .unwrap();
        // Every slice costs 1, so the total is exactly the horizon (10);
        // bound 20 is slack, bound 1 is impossible.
        let (ok, _) = session.solve().unwrap();
        assert!((ok.occupation().total_visits() - 10.0).abs() < 1e-6);
        session.set_bound(0, 1.0).unwrap();
        assert_eq!(session.solve().unwrap_err(), MdpError::Infeasible);
        assert!(session.last_report().infeasibility.is_some());
        session.set_bound(0, 15.0).unwrap();
        let (recovered, _) = session.solve().unwrap();
        assert!((recovered.objective() - ok.objective()).abs() < 1e-6);
        assert_eq!(session.bound(0), 15.0);
    }

    #[test]
    fn duplicate_bounds_memoize_extraction() {
        // Re-solving at an unchanged (or re-set-to-identical) bound ends
        // at the same basis, so equation (16) must run exactly once for
        // the repeated points — the ROADMAP memoization item.
        let discount = 0.95;
        let mut session = ConstrainedMdp::new(mini_dpm(discount))
            .with_constraint(CostConstraint::per_slice(
                "sleep fraction",
                penalty_matrix(),
                0.4,
                discount,
            ))
            .into_session(&[1.0, 0.0], &dpm_lp::RevisedSimplex::new())
            .unwrap();
        let (first, report) = session.solve().unwrap();
        assert_ne!(report.basis_signature, 0, "revised simplex signs its basis");
        assert_eq!(session.extraction_count(), 1);
        // Same model, solved again: memo hit.
        let (again, _) = session.solve().unwrap();
        assert_eq!(
            session.extraction_count(),
            1,
            "unchanged model re-extracted"
        );
        assert_eq!(first.objective(), again.objective());
        // Bound re-set to the same value: still a memo hit.
        session.set_bound_per_slice(0, 0.4).unwrap();
        let (dup, _) = session.solve().unwrap();
        assert_eq!(
            session.extraction_count(),
            1,
            "duplicate bound re-extracted"
        );
        assert_eq!(first.objective(), dup.objective());
        assert_eq!(
            first.policy().decision(0),
            dup.policy().decision(0),
            "memoized policy must be the extracted one"
        );
        // A genuinely different bound must re-extract.
        session.set_bound_per_slice(0, 0.2).unwrap();
        let (tighter, _) = session.solve().unwrap();
        assert_eq!(session.extraction_count(), 2);
        assert!(tighter.objective() > first.objective());
        assert!((tighter.bounds[0] - session.bound(0)).abs() < 1e-12);
    }

    /// A same-support variant of [`mini_dpm`]'s chain with drifted
    /// probabilities — what a per-epoch re-estimate looks like.
    fn drifted_chain(wake_stay: f64, sleep_leave: f64) -> ControlledMarkovChain {
        let wake =
            StochasticMatrix::from_rows(&[&[1.0, 0.0], &[wake_stay, 1.0 - wake_stay]]).unwrap();
        let sleep =
            StochasticMatrix::from_rows(&[&[1.0 - sleep_leave, sleep_leave], &[0.0, 1.0]]).unwrap();
        ControlledMarkovChain::new(vec![wake, sleep]).unwrap()
    }

    #[test]
    fn update_model_reloads_warm_and_matches_cold() {
        let discount = 0.95;
        let mut session = ConstrainedMdp::new(mini_dpm(discount))
            .with_constraint(CostConstraint::per_slice(
                "sleep fraction",
                penalty_matrix(),
                0.4,
                discount,
            ))
            .into_session(&[1.0, 0.0], &dpm_lp::RevisedSimplex::new())
            .unwrap();
        session.solve().unwrap();
        for (i, (wake_stay, sleep_leave)) in [(0.45, 0.75), (0.55, 0.82), (0.5, 0.8)]
            .into_iter()
            .enumerate()
        {
            let chain = drifted_chain(wake_stay, sleep_leave);
            let kind = session.update_model(&chain).unwrap();
            assert_eq!(kind, ReloadKind::Warm, "epoch {i}");
            let (warm, report) = session.solve().unwrap();
            assert!(report.warm_start, "epoch {i}");
            // Independent cold reference on a freshly built problem.
            let power = Matrix::from_rows(&[&[2.0, 2.5], &[2.5, 0.0]]).unwrap();
            let mdp = DiscountedMdp::new(chain, power, discount).unwrap();
            let cold = ConstrainedMdp::new(mdp)
                .with_constraint(CostConstraint::per_slice(
                    "sleep fraction",
                    penalty_matrix(),
                    0.4,
                    discount,
                ))
                .solve(&[1.0, 0.0], &dpm_lp::Simplex::new())
                .unwrap();
            assert!(
                (warm.objective() - cold.objective()).abs() < 1e-6,
                "epoch {i}: warm {} vs cold {}",
                warm.objective(),
                cold.objective()
            );
        }
    }

    #[test]
    fn update_model_keeps_retargeted_bounds_and_memo_coherent() {
        let discount = 0.95;
        let mut session = ConstrainedMdp::new(mini_dpm(discount))
            .with_constraint(CostConstraint::per_slice(
                "sleep fraction",
                penalty_matrix(),
                0.8,
                discount,
            ))
            .into_session(&[1.0, 0.0], &dpm_lp::RevisedSimplex::new())
            .unwrap();
        session.set_bound_per_slice(0, 0.3).unwrap();
        let (before, _) = session.solve().unwrap();
        assert_eq!(session.extraction_count(), 1);
        let chain = drifted_chain(0.35, 0.65);
        session.update_model(&chain).unwrap();
        // The retargeted (not the construction-time) bound is in force.
        let (after, _) = session.solve().unwrap();
        assert!(after.constraint_value_per_slice(0) <= 0.3 + 1e-6);
        // Even if the optimal basis happens to coincide across model
        // versions, the memo must have been dropped: extraction ran again.
        assert_eq!(session.extraction_count(), 2);
        // Values differ because the model differs.
        assert!((before.objective() - after.objective()).abs() > 1e-9);
    }

    #[test]
    fn update_model_rejects_wrong_dimensions() {
        let discount = 0.9;
        let mut session = ConstrainedMdp::new(mini_dpm(discount))
            .into_session(&[1.0, 0.0], &dpm_lp::RevisedSimplex::new())
            .unwrap();
        // 2 actions expected, 1 provided.
        let chain = ControlledMarkovChain::new(vec![StochasticMatrix::identity(2)]).unwrap();
        assert!(matches!(
            session.update_model(&chain).unwrap_err(),
            MdpError::CostShapeMismatch { .. }
        ));
        // The session still solves after the rejected update.
        assert!(session.solve().is_ok());
    }

    #[test]
    fn constraint_rows_are_stable_handles() {
        let discount = 0.9;
        let cmdp = ConstrainedMdp::new(mini_dpm(discount))
            .with_constraint(CostConstraint::per_slice(
                "a",
                penalty_matrix(),
                0.5,
                discount,
            ))
            .with_constraint(CostConstraint::per_slice(
                "b",
                penalty_matrix(),
                0.7,
                discount,
            ));
        // 2 states: 1 balance row + 1 normalization row, then the bounds.
        assert_eq!(cmdp.constraint_row(0), 2);
        assert_eq!(cmdp.constraint_row(1), 3);
        // The handle agrees with the occupation layer's and with the
        // actual emitted program.
        let occupation = OccupationLp::new(cmdp.mdp(), &[1.0, 0.0]).unwrap();
        assert_eq!(occupation.bound_row(0), cmdp.constraint_row(0));
        let binding = penalty_matrix();
        let lp = occupation
            .build(&[(&binding, 5.0), (&binding, 7.0)])
            .unwrap();
        assert_eq!(lp.num_constraints(), 4);
        let (_, op, rhs) = lp.constraint_entries(occupation.bound_row(1));
        assert_eq!(op, dpm_lp::ConstraintOp::Le);
        assert!((rhs - occupation.bound_rhs(7.0)).abs() < 1e-12);
    }

    #[test]
    fn constraint_metadata_is_exposed() {
        let discount = 0.9;
        let solution = ConstrainedMdp::new(mini_dpm(discount))
            .with_constraint(CostConstraint::per_slice(
                "sleepiness",
                penalty_matrix(),
                0.5,
                discount,
            ))
            .solve(&[1.0, 0.0], &Simplex::new())
            .unwrap();
        assert_eq!(solution.constraint_name(0), "sleepiness");
        assert_eq!(solution.num_constraints(), 1);
        assert!(solution.occupation().total_visits() > 0.0);
    }
}
