use dpm_linalg::Matrix;
use dpm_lp::LpSolver;

use crate::mdp::validate_distribution;
use crate::{DiscountedMdp, MdpError, OccupationLp, RandomizedPolicy};

/// A bound on the total expected discounted value of a secondary cost —
/// one row of the paper's LP3/LP4 beyond the balance equations.
///
/// The paper's instances:
/// * **power bound** (LP3): `Σ p(s,a) x_{s,a} ≤ P`,
/// * **performance bound** (LP4): `Σ d(s,a) x_{s,a} ≤ D`,
/// * **request-loss bound**: indicator cost of "SR issues a request while
///   the queue is full", bounded by `L`.
///
/// Bounds are on *total discounted* values; use
/// [`Self::per_slice`] to specify the per-slice bound the paper's prose
/// uses (e.g. "average queue length ≤ 0.5" becomes `0.5 / (1 − α)`).
#[derive(Debug, Clone)]
pub struct CostConstraint {
    name: String,
    cost: Matrix,
    bound: f64,
}

impl CostConstraint {
    /// A bound on the total discounted cost.
    pub fn new(name: impl Into<String>, cost: Matrix, bound: f64) -> Self {
        CostConstraint {
            name: name.into(),
            cost,
            bound,
        }
    }

    /// A bound expressed per slice (the paper's convention): internally
    /// multiplied by the horizon `1/(1−α)`.
    pub fn per_slice(
        name: impl Into<String>,
        cost: Matrix,
        bound_per_slice: f64,
        discount: f64,
    ) -> Self {
        Self::new(name, cost, bound_per_slice / (1.0 - discount))
    }

    /// The constraint's name (used in reports).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The secondary cost matrix.
    pub fn cost(&self) -> &Matrix {
        &self.cost
    }

    /// The bound on the total discounted cost.
    pub fn bound(&self) -> f64 {
        self.bound
    }
}

/// A discounted MDP with secondary-cost constraints — the paper's
/// constrained policy-optimization problems **PO1/PO2** in their LP form
/// **LP3/LP4**.
///
/// Solving yields a randomized stationary Markov policy; by Theorem A.2 it
/// is deterministic exactly when no constraint is active at the optimum.
///
/// # Example
///
/// ```
/// use dpm_linalg::Matrix;
/// use dpm_lp::Simplex;
/// use dpm_markov::{ControlledMarkovChain, StochasticMatrix};
/// use dpm_mdp::{ConstrainedMdp, CostConstraint, DiscountedMdp};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// // Minimize power subject to a performance bound.
/// let sleep = StochasticMatrix::from_rows(&[&[0.2, 0.8], &[0.0, 1.0]])?;
/// let wake = StochasticMatrix::from_rows(&[&[1.0, 0.0], &[0.5, 0.5]])?;
/// let chain = ControlledMarkovChain::new(vec![wake, sleep])?;
/// let power = Matrix::from_rows(&[&[2.0, 2.5], &[2.5, 0.0]])?;
/// let penalty = Matrix::from_rows(&[&[0.0, 0.0], &[1.0, 1.0]])?;
/// let mdp = DiscountedMdp::new(chain, power, 0.95)?;
/// let solution = ConstrainedMdp::new(mdp)
///     .with_constraint(CostConstraint::per_slice("penalty", penalty, 0.4, 0.95))
///     .solve(&[1.0, 0.0], &Simplex::new())?;
/// assert!(solution.constraint_value_per_slice(0) <= 0.4 + 1e-6);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct ConstrainedMdp {
    mdp: DiscountedMdp,
    constraints: Vec<CostConstraint>,
}

impl ConstrainedMdp {
    /// Wraps an MDP with no constraints yet.
    pub fn new(mdp: DiscountedMdp) -> Self {
        ConstrainedMdp {
            mdp,
            constraints: Vec::new(),
        }
    }

    /// Adds a secondary-cost bound (builder style).
    ///
    /// # Panics
    ///
    /// Panics when the constraint's cost matrix shape differs from the
    /// MDP's `(states, actions)` — a programming error, caught eagerly.
    pub fn with_constraint(mut self, constraint: CostConstraint) -> Self {
        assert_eq!(
            constraint.cost.shape(),
            (self.mdp.num_states(), self.mdp.num_actions()),
            "constraint `{}` cost matrix shape mismatch",
            constraint.name
        );
        self.constraints.push(constraint);
        self
    }

    /// The wrapped MDP.
    pub fn mdp(&self) -> &DiscountedMdp {
        &self.mdp
    }

    /// The registered constraints.
    pub fn constraints(&self) -> &[CostConstraint] {
        &self.constraints
    }

    /// Solves LP3/LP4 from the given initial distribution.
    ///
    /// # Errors
    ///
    /// * [`MdpError::Infeasible`] when no policy meets all bounds — the
    ///   paper's `g(C) = +∞`.
    /// * Propagated LP/linalg failures.
    pub fn solve(
        &self,
        initial: &[f64],
        solver: &dyn LpSolver,
    ) -> Result<ConstrainedSolution, MdpError> {
        validate_distribution(initial, self.mdp.num_states())?;
        let lp = OccupationLp::new(&self.mdp, initial)?;
        let bounds: Vec<(&Matrix, f64)> = self
            .constraints
            .iter()
            .map(|c| (&c.cost, c.bound))
            .collect();
        let occ = lp.solve_with_bounds(solver, &bounds)?;
        let constraint_values = self
            .constraints
            .iter()
            .map(|c| occ.expected_cost(&c.cost))
            .collect();
        let policy = occ.policy();
        Ok(ConstrainedSolution {
            policy,
            objective: occ.objective(),
            constraint_values,
            bounds: self.constraints.iter().map(|c| c.bound).collect(),
            names: self.constraints.iter().map(|c| c.name.clone()).collect(),
            discount: self.mdp.discount(),
            occupation: occ,
        })
    }
}

/// A solved constrained policy-optimization problem.
#[derive(Debug, Clone)]
pub struct ConstrainedSolution {
    policy: RandomizedPolicy,
    objective: f64,
    constraint_values: Vec<f64>,
    bounds: Vec<f64>,
    names: Vec<String>,
    discount: f64,
    occupation: crate::OccupationSolution,
}

impl ConstrainedSolution {
    /// The optimal (possibly randomized) policy — equation (16).
    pub fn policy(&self) -> &RandomizedPolicy {
        &self.policy
    }

    /// Optimal total expected discounted objective cost.
    pub fn objective(&self) -> f64 {
        self.objective
    }

    /// Optimal objective per slice (the paper's plotted quantity).
    pub fn objective_per_slice(&self) -> f64 {
        self.objective * (1.0 - self.discount)
    }

    /// Achieved total discounted value of constraint `k`.
    ///
    /// # Panics
    ///
    /// Panics when `k` is out of range.
    pub fn constraint_value(&self, k: usize) -> f64 {
        self.constraint_values[k]
    }

    /// Achieved per-slice value of constraint `k`.
    ///
    /// # Panics
    ///
    /// Panics when `k` is out of range.
    pub fn constraint_value_per_slice(&self, k: usize) -> f64 {
        self.constraint_values[k] * (1.0 - self.discount)
    }

    /// `true` when constraint `k` is tight at the optimum (within `tol`,
    /// relative to the bound's magnitude). Active constraints are what make
    /// optimal policies randomized (Theorem A.2).
    ///
    /// # Panics
    ///
    /// Panics when `k` is out of range.
    pub fn is_constraint_active(&self, k: usize, tol: f64) -> bool {
        let scale = self.bounds[k].abs().max(1.0);
        (self.bounds[k] - self.constraint_values[k]).abs() <= tol * scale
    }

    /// Name of constraint `k`.
    ///
    /// # Panics
    ///
    /// Panics when `k` is out of range.
    pub fn constraint_name(&self, k: usize) -> &str {
        &self.names[k]
    }

    /// Number of constraints in the solved problem.
    pub fn num_constraints(&self) -> usize {
        self.bounds.len()
    }

    /// The underlying occupation-measure solution (state–action
    /// frequencies and derived quantities).
    pub fn occupation(&self) -> &crate::OccupationSolution {
        &self.occupation
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dpm_lp::{InteriorPoint, Simplex};
    use dpm_markov::{ControlledMarkovChain, StochasticMatrix};

    /// A power-managed resource in miniature: state 0 = on (costly),
    /// state 1 = sleeping (free but penalized). Action 0 keeps/wakes,
    /// action 1 puts/keeps asleep.
    fn mini_dpm(discount: f64) -> DiscountedMdp {
        let wake = StochasticMatrix::from_rows(&[&[1.0, 0.0], &[0.5, 0.5]]).unwrap();
        let sleep = StochasticMatrix::from_rows(&[&[0.2, 0.8], &[0.0, 1.0]]).unwrap();
        let chain = ControlledMarkovChain::new(vec![wake, sleep]).unwrap();
        let power = Matrix::from_rows(&[&[2.0, 2.5], &[2.5, 0.0]]).unwrap();
        DiscountedMdp::new(chain, power, discount).unwrap()
    }

    fn penalty_matrix() -> Matrix {
        // Penalize being asleep (performance loss proxy).
        Matrix::from_rows(&[&[0.0, 0.0], &[1.0, 1.0]]).unwrap()
    }

    #[test]
    fn unconstrained_is_deterministic() {
        let solution = ConstrainedMdp::new(mini_dpm(0.95))
            .solve(&[1.0, 0.0], &Simplex::new())
            .unwrap();
        assert!(solution.policy().is_deterministic());
        assert_eq!(solution.num_constraints(), 0);
        // Unconstrained optimum: sleep forever (power → small).
        assert!(solution.objective_per_slice() < 1.0);
    }

    #[test]
    fn active_constraint_makes_policy_randomized() {
        let discount = 0.95;
        // Bound the sleep fraction to 40% per slice: forces a mix.
        let solution = ConstrainedMdp::new(mini_dpm(discount))
            .with_constraint(CostConstraint::per_slice(
                "sleep fraction",
                penalty_matrix(),
                0.4,
                discount,
            ))
            .solve(&[1.0, 0.0], &Simplex::new())
            .unwrap();
        assert!(solution.is_constraint_active(0, 1e-6));
        assert!(!solution.policy().is_deterministic());
        assert!(!solution.policy().randomized_states().is_empty());
        assert!((solution.constraint_value_per_slice(0) - 0.4).abs() < 1e-6);
    }

    #[test]
    fn inactive_constraint_changes_nothing() {
        let discount = 0.95;
        let unconstrained = ConstrainedMdp::new(mini_dpm(discount))
            .solve(&[1.0, 0.0], &Simplex::new())
            .unwrap();
        let loose = ConstrainedMdp::new(mini_dpm(discount))
            .with_constraint(CostConstraint::per_slice(
                "loose",
                penalty_matrix(),
                2.0, // sleep fraction can never exceed 1
                discount,
            ))
            .solve(&[1.0, 0.0], &Simplex::new())
            .unwrap();
        assert!(!loose.is_constraint_active(0, 1e-6));
        assert!((loose.objective() - unconstrained.objective()).abs() < 1e-6);
        assert!(loose.policy().is_deterministic());
    }

    #[test]
    fn infeasible_bounds_are_reported() {
        let discount = 0.9;
        let err = ConstrainedMdp::new(mini_dpm(discount))
            .with_constraint(CostConstraint::new(
                "impossible",
                Matrix::filled(2, 2, 1.0), // every slice costs 1 → total = horizon
                1.0,                       // but bound is 1 < 10
            ))
            .solve(&[1.0, 0.0], &Simplex::new())
            .unwrap_err();
        assert_eq!(err, MdpError::Infeasible);
    }

    #[test]
    fn tightening_the_bound_weakly_increases_power() {
        // Theorem 4.1 (convexity) implies monotonicity of the optimum in
        // the bound; check the monotone part on a sweep.
        let discount = 0.95;
        let mut last = f64::NEG_INFINITY;
        for bound in [0.8, 0.6, 0.4, 0.2, 0.1] {
            let solution = ConstrainedMdp::new(mini_dpm(discount))
                .with_constraint(CostConstraint::per_slice(
                    "sleep fraction",
                    penalty_matrix(),
                    bound,
                    discount,
                ))
                .solve(&[1.0, 0.0], &Simplex::new())
                .unwrap();
            let power = solution.objective_per_slice();
            assert!(
                power >= last - 1e-7,
                "power must not decrease as the bound tightens"
            );
            last = power;
        }
    }

    #[test]
    fn solvers_agree_on_constrained_problem() {
        let discount = 0.9;
        let build = || {
            ConstrainedMdp::new(mini_dpm(discount)).with_constraint(CostConstraint::per_slice(
                "sleep fraction",
                penalty_matrix(),
                0.3,
                discount,
            ))
        };
        let s1 = build().solve(&[1.0, 0.0], &Simplex::new()).unwrap();
        let s2 = build().solve(&[1.0, 0.0], &InteriorPoint::new()).unwrap();
        assert!((s1.objective() - s2.objective()).abs() < 1e-4);
    }

    #[test]
    fn extracted_policy_meets_constraint_exactly() {
        // Evaluate the extracted randomized policy with the exact
        // policy-evaluation machinery and confirm the LP's promised
        // constraint value — the paper's consistency check between
        // optimizer and model.
        let discount = 0.95;
        let mdp = mini_dpm(discount);
        let penalty = penalty_matrix();
        let solution = ConstrainedMdp::new(mini_dpm(discount))
            .with_constraint(CostConstraint::per_slice(
                "sleep fraction",
                penalty.clone(),
                0.4,
                discount,
            ))
            .solve(&[1.0, 0.0], &Simplex::new())
            .unwrap();
        // Build an MDP whose "cost" is the penalty, evaluate the policy.
        let penalty_mdp = DiscountedMdp::new(mdp.chain().clone(), penalty, discount).unwrap();
        let achieved = penalty_mdp
            .policy_value(solution.policy(), &[1.0, 0.0])
            .unwrap();
        assert!((achieved - solution.constraint_value(0)).abs() < 1e-5);
        // And the power objective agrees too.
        let power_value = mdp.policy_value(solution.policy(), &[1.0, 0.0]).unwrap();
        assert!((power_value - solution.objective()).abs() < 1e-5);
    }

    #[test]
    fn constraint_metadata_is_exposed() {
        let discount = 0.9;
        let solution = ConstrainedMdp::new(mini_dpm(discount))
            .with_constraint(CostConstraint::per_slice(
                "sleepiness",
                penalty_matrix(),
                0.5,
                discount,
            ))
            .solve(&[1.0, 0.0], &Simplex::new())
            .unwrap();
        assert_eq!(solution.constraint_name(0), "sleepiness");
        assert_eq!(solution.num_constraints(), 1);
        assert!(solution.occupation().total_visits() > 0.0);
    }
}
