use std::error::Error;
use std::fmt;

use dpm_linalg::LinalgError;
use dpm_lp::LpError;
use dpm_markov::MarkovError;

/// Errors produced while constructing or solving Markov decision processes.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum MdpError {
    /// The cost matrix shape does not match `(num_states, num_actions)`.
    CostShapeMismatch {
        /// What the caller supplied.
        found: (usize, usize),
        /// What the MDP requires.
        expected: (usize, usize),
    },
    /// The discount factor is outside `(0, 1)`.
    InvalidDiscount {
        /// The offending value.
        value: f64,
    },
    /// The initial state distribution is invalid (wrong length, negative
    /// mass, or does not sum to one).
    InvalidInitialDistribution {
        /// Why the distribution was rejected.
        reason: String,
    },
    /// The constrained problem is infeasible: no policy satisfies all
    /// bounds. This is the paper's `g(C) = +∞` case.
    Infeasible,
    /// An iterative solver failed to converge.
    NoConvergence {
        /// Which algorithm failed.
        algorithm: &'static str,
        /// Iterations performed.
        iterations: usize,
    },
    /// The underlying LP solver failed for a reason other than
    /// infeasibility.
    Lp(LpError),
    /// A Markov-chain operation failed.
    Markov(MarkovError),
    /// A linear-algebra kernel failed.
    Linalg(LinalgError),
}

impl fmt::Display for MdpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MdpError::CostShapeMismatch { found, expected } => write!(
                f,
                "cost matrix is {}x{}, expected {}x{} (states x actions)",
                found.0, found.1, expected.0, expected.1
            ),
            MdpError::InvalidDiscount { value } => {
                write!(f, "discount factor {value} not in (0, 1)")
            }
            MdpError::InvalidInitialDistribution { reason } => {
                write!(f, "invalid initial distribution: {reason}")
            }
            MdpError::Infeasible => {
                write!(f, "constrained policy optimization is infeasible")
            }
            MdpError::NoConvergence {
                algorithm,
                iterations,
            } => write!(
                f,
                "{algorithm} failed to converge in {iterations} iterations"
            ),
            MdpError::Lp(e) => write!(f, "lp solver: {e}"),
            MdpError::Markov(e) => write!(f, "markov chain: {e}"),
            MdpError::Linalg(e) => write!(f, "linear algebra: {e}"),
        }
    }
}

impl Error for MdpError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            MdpError::Lp(e) => Some(e),
            MdpError::Markov(e) => Some(e),
            MdpError::Linalg(e) => Some(e),
            _ => None,
        }
    }
}

impl From<LpError> for MdpError {
    fn from(e: LpError) -> Self {
        match e {
            LpError::Infeasible => MdpError::Infeasible,
            other => MdpError::Lp(other),
        }
    }
}

impl From<MarkovError> for MdpError {
    fn from(e: MarkovError) -> Self {
        MdpError::Markov(e)
    }
}

impl From<LinalgError> for MdpError {
    fn from(e: LinalgError) -> Self {
        MdpError::Linalg(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lp_infeasible_maps_to_mdp_infeasible() {
        assert_eq!(MdpError::from(LpError::Infeasible), MdpError::Infeasible);
        assert!(matches!(
            MdpError::from(LpError::Unbounded),
            MdpError::Lp(LpError::Unbounded)
        ));
    }

    #[test]
    fn source_chains_to_inner_error() {
        let e = MdpError::Lp(LpError::Unbounded);
        assert!(e.source().is_some());
        assert!(MdpError::Infeasible.source().is_none());
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<MdpError>();
    }
}
