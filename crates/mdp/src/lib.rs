//! Discounted and constrained Markov decision processes.
//!
//! Appendix A of Benini et al. solves policy optimization through the
//! classical machinery of discounted MDPs; this crate implements that
//! machinery in full, with three independent solution paths used to
//! cross-check each other:
//!
//! * [`DiscountedMdp::value_iteration`] — successive approximations of the
//!   optimality equations (12);
//! * [`DiscountedMdp::policy_iteration`] — Howard's policy improvement,
//!   with exact policy evaluation by LU solve;
//! * [`OccupationLp`] — the linear program LP2 over state–action
//!   frequencies `x_{s,a}` with the balance constraints of Fig. 11.
//!
//! Constrained problems (the paper's LP3/LP4: power or performance bounds,
//! request-loss bounds) are handled by [`ConstrainedMdp`], whose solutions
//! are *randomized* stationary Markov policies exactly when a constraint is
//! active (Theorem A.2) — extracted from the LP solution by equation (16).
//!
//! # Example
//!
//! ```
//! use dpm_linalg::Matrix;
//! use dpm_markov::{ControlledMarkovChain, StochasticMatrix};
//! use dpm_mdp::DiscountedMdp;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // Two states, two actions: action 1 jumps to state 1 (cheap), action 0
//! // stays put. State 0 costs 1 per slice, state 1 costs 0.
//! let stay = StochasticMatrix::identity(2);
//! let jump = StochasticMatrix::from_rows(&[&[0.0, 1.0], &[0.0, 1.0]])?;
//! let chain = ControlledMarkovChain::new(vec![stay, jump])?;
//! let cost = Matrix::from_rows(&[&[1.0, 1.0], &[0.0, 0.0]])?;
//! let mdp = DiscountedMdp::new(chain, cost, 0.9)?;
//! let (values, policy) = mdp.policy_iteration()?;
//! assert_eq!(policy.action(0), 1); // escape the expensive state
//! assert!((values[1] - 0.0).abs() < 1e-9);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]
#![deny(missing_debug_implementations)]

mod constrained;
mod error;
mod mdp;
mod occupation;
mod policy;

pub use constrained::{ConstrainedMdp, ConstrainedSession, ConstrainedSolution, CostConstraint};
pub use error::MdpError;
pub use mdp::DiscountedMdp;
pub use occupation::{OccupationLp, OccupationSolution};
pub use policy::{DeterministicPolicy, RandomizedPolicy};
