use std::fmt;

use crate::MdpError;

/// A deterministic Markov stationary policy: one action per state
/// (the paper's class `Π_DMS`, represented as the vector of Example 3.7).
///
/// # Example
///
/// ```
/// use dpm_mdp::DeterministicPolicy;
///
/// let policy = DeterministicPolicy::new(vec![1, 0, 1]);
/// assert_eq!(policy.action(2), 1);
/// assert_eq!(policy.num_states(), 3);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct DeterministicPolicy {
    actions: Vec<usize>,
}

impl DeterministicPolicy {
    /// Wraps an action-per-state vector.
    pub fn new(actions: Vec<usize>) -> Self {
        DeterministicPolicy { actions }
    }

    /// The action prescribed in `state`.
    ///
    /// # Panics
    ///
    /// Panics when `state` is out of range.
    pub fn action(&self, state: usize) -> usize {
        self.actions[state]
    }

    /// Number of states covered.
    pub fn num_states(&self) -> usize {
        self.actions.len()
    }

    /// The underlying action vector.
    pub fn actions(&self) -> &[usize] {
        &self.actions
    }

    /// Lifts to a (degenerate) randomized policy over `num_actions`
    /// commands.
    ///
    /// # Panics
    ///
    /// Panics if any stored action is `>= num_actions`.
    pub fn to_randomized(&self, num_actions: usize) -> RandomizedPolicy {
        let rows = self
            .actions
            .iter()
            .map(|&a| {
                assert!(a < num_actions, "action {a} out of range ({num_actions})");
                let mut row = vec![0.0; num_actions];
                row[a] = 1.0;
                row
            })
            .collect();
        RandomizedPolicy::new(rows).expect("one-hot rows are valid distributions")
    }
}

impl fmt::Display for DeterministicPolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[")?;
        for (i, a) in self.actions.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "s{i}→a{a}")?;
        }
        write!(f, "]")
    }
}

/// A randomized Markov stationary policy: a probability distribution over
/// actions for every state (the matrix `Π` of Definition 3.7 /
/// Example 3.7).
///
/// # Example
///
/// ```
/// use dpm_mdp::RandomizedPolicy;
///
/// # fn main() -> Result<(), dpm_mdp::MdpError> {
/// // Example A.2's first row: s_off with probability 0.226.
/// let policy = RandomizedPolicy::new(vec![vec![0.774, 0.226], vec![1.0, 0.0]])?;
/// assert!((policy.prob(0, 1) - 0.226).abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct RandomizedPolicy {
    /// `rows[s][a]` = probability of issuing action `a` in state `s`.
    rows: Vec<Vec<f64>>,
}

impl RandomizedPolicy {
    /// Tolerance for validating that rows sum to one.
    const TOL: f64 = 1e-7;

    /// Validates and wraps per-state action distributions.
    ///
    /// # Errors
    ///
    /// [`MdpError::InvalidInitialDistribution`] when any row is empty, has
    /// negative entries, differs in length, or does not sum to one.
    pub fn new(rows: Vec<Vec<f64>>) -> Result<Self, MdpError> {
        let err = |reason: String| MdpError::InvalidInitialDistribution { reason };
        let first_len = rows.first().map(|r| r.len()).unwrap_or(0);
        if first_len == 0 {
            return Err(err("policy has no states or no actions".to_string()));
        }
        for (s, row) in rows.iter().enumerate() {
            if row.len() != first_len {
                return Err(err(format!("row {s} length differs")));
            }
            if row
                .iter()
                .any(|&v| !(0.0..=1.0 + Self::TOL).contains(&v) || !v.is_finite())
            {
                return Err(err(format!("row {s} has an invalid probability")));
            }
            let sum: f64 = row.iter().sum();
            if (sum - 1.0).abs() > Self::TOL {
                return Err(err(format!("row {s} sums to {sum}")));
            }
        }
        Ok(RandomizedPolicy { rows })
    }

    /// Probability of issuing `action` in `state`.
    ///
    /// # Panics
    ///
    /// Panics on out-of-range indices.
    pub fn prob(&self, state: usize, action: usize) -> f64 {
        self.rows[state][action]
    }

    /// The action distribution of `state`.
    ///
    /// # Panics
    ///
    /// Panics when `state` is out of range.
    pub fn decision(&self, state: usize) -> &[f64] {
        &self.rows[state]
    }

    /// All per-state decisions.
    pub fn decisions(&self) -> &[Vec<f64>] {
        &self.rows
    }

    /// Number of states covered.
    pub fn num_states(&self) -> usize {
        self.rows.len()
    }

    /// Number of actions.
    pub fn num_actions(&self) -> usize {
        self.rows[0].len()
    }

    /// `true` when every row is a point mass, i.e. the policy is actually
    /// deterministic. Theorem A.2: this holds for optimal policies exactly
    /// when no cost constraint is active.
    pub fn is_deterministic(&self) -> bool {
        self.rows
            .iter()
            .all(|row| row.iter().any(|&v| (v - 1.0).abs() <= Self::TOL))
    }

    /// States whose decision genuinely randomizes (no action has
    /// probability ≥ `1 − tol`).
    pub fn randomized_states(&self) -> Vec<usize> {
        (0..self.num_states())
            .filter(|&s| !self.rows[s].iter().any(|&v| (v - 1.0).abs() <= Self::TOL))
            .collect()
    }

    /// Collapses to a deterministic policy by taking the modal action of
    /// every state.
    pub fn mode(&self) -> DeterministicPolicy {
        DeterministicPolicy::new(
            self.rows
                .iter()
                .map(|row| {
                    row.iter()
                        .enumerate()
                        .max_by(|a, b| a.1.total_cmp(b.1))
                        .map(|(i, _)| i)
                        .expect("non-empty row")
                })
                .collect(),
        )
    }
}

impl fmt::Display for RandomizedPolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "policy ({} states x {} actions):",
            self.num_states(),
            self.num_actions()
        )?;
        for (s, row) in self.rows.iter().enumerate() {
            write!(f, "  s{s:<3} [")?;
            for (a, p) in row.iter().enumerate() {
                if a > 0 {
                    write!(f, " ")?;
                }
                write!(f, "{p:.3}")?;
            }
            writeln!(f, "]")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_round_trip() {
        let p = DeterministicPolicy::new(vec![0, 2, 1]);
        assert_eq!(p.num_states(), 3);
        assert_eq!(p.actions(), &[0, 2, 1]);
        let r = p.to_randomized(3);
        assert_eq!(r.prob(1, 2), 1.0);
        assert_eq!(r.prob(1, 0), 0.0);
        assert!(r.is_deterministic());
        assert_eq!(r.mode(), p);
    }

    #[test]
    fn randomized_validation() {
        assert!(RandomizedPolicy::new(vec![vec![0.5, 0.5]]).is_ok());
        assert!(RandomizedPolicy::new(vec![vec![0.5, 0.4]]).is_err());
        assert!(RandomizedPolicy::new(vec![vec![1.5, -0.5]]).is_err());
        assert!(RandomizedPolicy::new(vec![]).is_err());
        assert!(RandomizedPolicy::new(vec![vec![1.0], vec![0.5, 0.5]]).is_err());
    }

    #[test]
    fn randomized_states_detects_mixing() {
        let p = RandomizedPolicy::new(vec![vec![1.0, 0.0], vec![0.3, 0.7]]).unwrap();
        assert!(!p.is_deterministic());
        assert_eq!(p.randomized_states(), vec![1]);
        assert_eq!(p.mode().action(1), 1);
    }

    #[test]
    fn display_formats_rows() {
        let p = RandomizedPolicy::new(vec![vec![0.774, 0.226]]).unwrap();
        let s = format!("{p}");
        assert!(s.contains("0.774"));
        assert!(s.contains("s0"));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn to_randomized_rejects_big_action() {
        DeterministicPolicy::new(vec![3]).to_randomized(2);
    }
}
