//! Cross-validation of the three independent MDP solution paths on
//! randomly generated decision processes: value iteration, policy
//! iteration and the occupation-measure LP must agree, and constrained
//! solutions must satisfy the Lagrangian sanity conditions of Appendix A.

use dpm_linalg::Matrix;
use dpm_lp::{InteriorPoint, Simplex};
use dpm_markov::{ControlledMarkovChain, StochasticMatrix};
use dpm_mdp::{ConstrainedMdp, CostConstraint, DiscountedMdp, OccupationLp};
use proptest::prelude::*;

fn stochastic_row(width: usize) -> impl Strategy<Value = Vec<f64>> {
    proptest::collection::vec(1u32..=100, width).prop_map(|w| {
        let total: u32 = w.iter().sum();
        w.iter().map(|&x| x as f64 / total as f64).collect()
    })
}

fn stochastic(n: usize) -> impl Strategy<Value = StochasticMatrix> {
    proptest::collection::vec(stochastic_row(n), n).prop_map(|rows| {
        let refs: Vec<&[f64]> = rows.iter().map(|r| r.as_slice()).collect();
        StochasticMatrix::from_rows(&refs).expect("valid")
    })
}

fn mdp(n: usize, m: usize) -> impl Strategy<Value = DiscountedMdp> {
    (
        proptest::collection::vec(stochastic(n), m),
        proptest::collection::vec(0u32..=400, n * m),
        2u32..=9,
    )
        .prop_map(move |(kernels, costs, d)| {
            let chain = ControlledMarkovChain::new(kernels).expect("same dims");
            let cost = Matrix::from_vec(n, m, costs.iter().map(|&c| c as f64 / 100.0).collect())
                .expect("shape");
            DiscountedMdp::new(chain, cost, d as f64 / 10.0).expect("valid")
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(20))]

    #[test]
    fn all_three_paths_agree(mdp in mdp(4, 3)) {
        let (vi_values, vi_policy) = mdp.value_iteration(1e-11, 500_000).expect("converges");
        let (pi_values, pi_policy) = mdp.policy_iteration().expect("converges");
        // Policies can differ on ties; the values cannot.
        prop_assert!(dpm_linalg::vector::max_abs_diff(&vi_values, &pi_values)
            < 1e-5 * (1.0 + dpm_linalg::vector::norm_inf(&pi_values)));
        // Evaluating either policy reproduces the optimal values.
        let eval = mdp.evaluate_deterministic(&pi_policy).expect("evaluates");
        prop_assert!(dpm_linalg::vector::max_abs_diff(&eval, &pi_values) < 1e-7
            * (1.0 + dpm_linalg::vector::norm_inf(&pi_values)));
        let _ = vi_policy;

        // LP path: for a uniform initial distribution.
        let n = mdp.num_states();
        let initial = vec![1.0 / n as f64; n];
        let lp = OccupationLp::new(&mdp, &initial).expect("valid");
        let solution = lp.solve(&Simplex::new()).expect("feasible");
        let expected: f64 = initial.iter().zip(&pi_values).map(|(q, v)| q * v).sum();
        prop_assert!(
            (solution.objective() - expected).abs() < 1e-5 * (1.0 + expected.abs()),
            "lp {} vs dp {expected}", solution.objective()
        );
        // The extracted policy evaluates to the same value.
        let policy_value = mdp.policy_value(&solution.policy(), &initial).expect("evaluates");
        prop_assert!((policy_value - expected).abs() < 1e-5 * (1.0 + expected.abs()));
    }

    #[test]
    fn constrained_solution_satisfies_bound_and_dominates_nothing_cheaper(
        mdp in mdp(3, 2),
        bound_step in 1u32..10,
    ) {
        // Secondary cost: indicator of action 1.
        let n = mdp.num_states();
        let m = mdp.num_actions();
        let secondary = Matrix::from_fn(n, m, |_, a| if a == 1 { 1.0 } else { 0.0 });
        let horizon = mdp.horizon();
        // Bound: a fraction of the horizon (always feasible: action 0 only).
        let bound = horizon * bound_step as f64 / 10.0;
        let initial = {
            let mut q = vec![0.0; n];
            q[0] = 1.0;
            q
        };
        let unconstrained = OccupationLp::new(&mdp, &initial)
            .expect("valid")
            .solve(&Simplex::new())
            .expect("feasible")
            .objective();
        let constrained = ConstrainedMdp::new(mdp.clone())
            .with_constraint(CostConstraint::new("action-1 budget", secondary, bound))
            .solve(&initial, &Simplex::new())
            .expect("always feasible: action 0 satisfies any nonnegative bound");
        // The bound holds and the constrained optimum is no better than
        // the unconstrained one.
        prop_assert!(constrained.constraint_value(0) <= bound + 1e-6 * (1.0 + bound));
        prop_assert!(constrained.objective() >= unconstrained - 1e-6 * (1.0 + unconstrained.abs()));
    }

    #[test]
    fn solvers_agree_on_random_constrained_mdps(mdp in mdp(3, 2)) {
        let n = mdp.num_states();
        let secondary = Matrix::from_fn(n, 2, |_, a| a as f64);
        let bound = mdp.horizon() * 0.4;
        let initial = vec![1.0 / n as f64; n];
        let build = |m: DiscountedMdp| {
            ConstrainedMdp::new(m).with_constraint(CostConstraint::new(
                "budget",
                secondary.clone(),
                bound,
            ))
        };
        let simplex = build(mdp.clone()).solve(&initial, &Simplex::new()).expect("feasible");
        let interior = build(mdp).solve(&initial, &InteriorPoint::new()).expect("feasible");
        prop_assert!(
            (simplex.objective() - interior.objective()).abs()
                < 1e-4 * (1.0 + simplex.objective().abs()),
            "simplex {} vs interior {}", simplex.objective(), interior.objective()
        );
    }

    #[test]
    fn occupation_state_frequencies_match_policy_evaluation(mdp in mdp(3, 2)) {
        // The discounted state frequencies of the extracted policy's
        // closed-loop chain must equal the LP's state frequencies.
        let n = mdp.num_states();
        let initial = {
            let mut q = vec![0.0; n];
            q[0] = 1.0;
            q
        };
        let solution = OccupationLp::new(&mdp, &initial)
            .expect("valid")
            .solve(&Simplex::new())
            .expect("feasible");
        let policy = solution.policy();
        let closed = mdp.chain().under_state_decisions(policy.decisions()).expect("valid");
        // Discounted visit counts: x = q Σ_t (αP)^t  = q (I − αP)⁻¹.
        let alpha = mdp.discount();
        let mut dist = initial.clone();
        let mut visits = vec![0.0; n];
        for _ in 0..4_000 {
            for (v, d) in visits.iter_mut().zip(&dist) {
                *v += d;
            }
            dist = closed.transition_matrix().step(&dist).expect("dims");
            dpm_linalg::vector::scale(&mut dist, alpha);
            if dpm_linalg::vector::norm_inf(&dist) < 1e-14 {
                break;
            }
        }
        let lp_freqs = solution.state_frequencies();
        for s in 0..n {
            prop_assert!(
                (visits[s] - lp_freqs[s]).abs() < 1e-4 * (1.0 + lp_freqs[s]),
                "state {s}: chain {} vs lp {}", visits[s], lp_freqs[s]
            );
        }
    }
}
