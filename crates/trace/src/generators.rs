//! Synthetic workload generators.
//!
//! These replace the paper's unavailable measured traces (Auspex file
//! system, Internet Traffic Archive, CPU monitor of \[28\]) with generators
//! whose statistics are controlled — see the substitution table in
//! `DESIGN.md`. All generators are deterministic given their seed.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Markov-modulated Bernoulli arrivals: the two-state bursty source of
/// Example 3.2. In the busy state one request arrives per slice; busy and
/// idle sojourns are geometric.
///
/// # Example
///
/// ```
/// use dpm_trace::generators::BurstyTraceGenerator;
///
/// let stream = BurstyTraceGenerator::new(0.05, 0.85).seed(1).generate(10_000);
/// let load = stream.iter().filter(|&&c| c > 0).count() as f64 / 10_000.0;
/// assert!((load - 0.25).abs() < 0.05); // stationary busy fraction 0.25
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BurstyTraceGenerator {
    p_idle_to_busy: f64,
    p_busy_to_busy: f64,
    seed: u64,
}

impl BurstyTraceGenerator {
    /// A generator matching `ServiceRequester::two_state` parameters.
    ///
    /// # Panics
    ///
    /// Panics when either probability is outside `[0, 1]`.
    pub fn new(p_idle_to_busy: f64, p_busy_to_busy: f64) -> Self {
        assert!((0.0..=1.0).contains(&p_idle_to_busy), "bad p_idle_to_busy");
        assert!((0.0..=1.0).contains(&p_busy_to_busy), "bad p_busy_to_busy");
        BurstyTraceGenerator {
            p_idle_to_busy,
            p_busy_to_busy,
            seed: 0,
        }
    }

    /// Sets the RNG seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Generates `slices` arrival counts.
    pub fn generate(&self, slices: usize) -> Vec<u32> {
        let mut rng = StdRng::seed_from_u64(self.seed);
        let mut busy = false;
        (0..slices)
            .map(|_| {
                let p = if busy {
                    self.p_busy_to_busy
                } else {
                    self.p_idle_to_busy
                };
                busy = rng.gen::<f64>() < p;
                u32::from(busy)
            })
            .collect()
    }
}

/// Independent Bernoulli arrivals (the memoryless workload): one request
/// per slice with fixed probability. The limiting non-bursty case of
/// Fig. 13(a).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BernoulliTraceGenerator {
    rate: f64,
    seed: u64,
}

impl BernoulliTraceGenerator {
    /// Arrival probability per slice.
    ///
    /// # Panics
    ///
    /// Panics when `rate` is outside `[0, 1]`.
    pub fn new(rate: f64) -> Self {
        assert!((0.0..=1.0).contains(&rate), "bad rate {rate}");
        BernoulliTraceGenerator { rate, seed: 0 }
    }

    /// Sets the RNG seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Generates `slices` arrival counts.
    pub fn generate(&self, slices: usize) -> Vec<u32> {
        let mut rng = StdRng::seed_from_u64(self.seed);
        (0..slices)
            .map(|_| u32::from(rng.gen::<f64>() < self.rate))
            .collect()
    }
}

/// Bursts with **heavy-tailed** (discrete-Pareto) idle gaps: deliberately
/// violates the geometric/memoryless interarrival assumption of the
/// Markov SR model (Section VII's critique) while keeping geometric busy
/// periods. Used to stress the model-mismatch experiments.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HeavyTailTraceGenerator {
    /// Pareto shape of the idle-gap distribution (smaller = heavier tail).
    shape: f64,
    /// Minimum idle gap in slices.
    min_gap: u32,
    /// Probability of continuing a busy burst each slice.
    p_busy_to_busy: f64,
    seed: u64,
}

impl HeavyTailTraceGenerator {
    /// A heavy-tail generator.
    ///
    /// # Panics
    ///
    /// Panics for `shape ≤ 0`, `min_gap = 0`, or `p_busy_to_busy ∉ [0, 1]`.
    pub fn new(shape: f64, min_gap: u32, p_busy_to_busy: f64) -> Self {
        assert!(shape > 0.0, "shape must be positive");
        assert!(min_gap > 0, "min_gap must be positive");
        assert!((0.0..=1.0).contains(&p_busy_to_busy), "bad p_busy_to_busy");
        HeavyTailTraceGenerator {
            shape,
            min_gap,
            p_busy_to_busy,
            seed: 0,
        }
    }

    /// Sets the RNG seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Generates `slices` arrival counts.
    pub fn generate(&self, slices: usize) -> Vec<u32> {
        let mut rng = StdRng::seed_from_u64(self.seed);
        let mut stream = Vec::with_capacity(slices);
        while stream.len() < slices {
            // Idle gap ~ discrete Pareto: ⌈min_gap · U^(−1/shape)⌉.
            let u: f64 = rng.gen::<f64>().max(1e-12);
            let gap = (self.min_gap as f64 * u.powf(-1.0 / self.shape)).ceil() as usize;
            let zeros = gap.min(slices - stream.len());
            stream.resize(stream.len() + zeros, 0);
            // Busy burst ~ geometric.
            while stream.len() < slices {
                stream.push(1);
                if rng.gen::<f64>() >= self.p_busy_to_busy {
                    break;
                }
            }
        }
        stream
    }
}

/// One regime of a [`RegimeSwitchingGenerator`]: a bursty two-state
/// source held for a fixed number of slices.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Regime {
    /// `P(idle → busy)` of the regime's source.
    pub p_idle_to_busy: f64,
    /// `P(busy → busy)` (the burstiness) of the regime's source.
    pub p_busy_to_busy: f64,
    /// How many slices the regime lasts before the next takes over.
    pub duration: usize,
}

impl Regime {
    /// A regime lasting `duration` slices with the given source
    /// parameters.
    ///
    /// # Panics
    ///
    /// Panics when either probability is outside `[0, 1]` or the
    /// duration is zero.
    pub fn new(p_idle_to_busy: f64, p_busy_to_busy: f64, duration: usize) -> Self {
        assert!((0.0..=1.0).contains(&p_idle_to_busy), "bad p_idle_to_busy");
        assert!((0.0..=1.0).contains(&p_busy_to_busy), "bad p_busy_to_busy");
        assert!(duration > 0, "regime duration must be positive");
        Regime {
            p_idle_to_busy,
            p_busy_to_busy,
            duration,
        }
    }
}

/// Piecewise-stationary arrivals: a schedule of bursty [`Regime`]s cycled
/// for as long as the trace runs — the **drifting workload** of the
/// online-adaptation experiments. Unlike [`concatenate`] (a one-shot
/// splice of pre-generated parts), the schedule repeats, so arbitrarily
/// long traces keep switching regimes and a policy tuned to any single
/// regime — or to the blended average — stays mismatched somewhere.
///
/// The busy/idle state carries over regime boundaries (the workload
/// *drifts*; it does not restart), and the whole trace is deterministic
/// given the seed.
#[derive(Debug, Clone, PartialEq)]
pub struct RegimeSwitchingGenerator {
    regimes: Vec<Regime>,
    seed: u64,
}

impl RegimeSwitchingGenerator {
    /// A generator cycling through `regimes` in order.
    ///
    /// # Panics
    ///
    /// Panics when `regimes` is empty.
    pub fn new(regimes: Vec<Regime>) -> Self {
        assert!(!regimes.is_empty(), "need at least one regime");
        RegimeSwitchingGenerator { regimes, seed: 0 }
    }

    /// Sets the RNG seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// The configured schedule.
    pub fn regimes(&self) -> &[Regime] {
        &self.regimes
    }

    /// Slices of one full pass through the schedule.
    pub fn cycle_length(&self) -> usize {
        self.regimes.iter().map(|r| r.duration).sum()
    }

    /// Index of the regime in force at `slice`.
    pub fn regime_at(&self, slice: usize) -> usize {
        let mut offset = slice % self.cycle_length();
        for (i, regime) in self.regimes.iter().enumerate() {
            if offset < regime.duration {
                return i;
            }
            offset -= regime.duration;
        }
        unreachable!("offset bounded by the cycle length")
    }

    /// Generates `slices` arrival counts.
    pub fn generate(&self, slices: usize) -> Vec<u32> {
        let mut rng = StdRng::seed_from_u64(self.seed);
        let mut busy = false;
        let mut out = Vec::with_capacity(slices);
        'outer: loop {
            for regime in &self.regimes {
                for _ in 0..regime.duration {
                    if out.len() >= slices {
                        break 'outer;
                    }
                    let p = if busy {
                        regime.p_busy_to_busy
                    } else {
                        regime.p_idle_to_busy
                    };
                    busy = rng.gen::<f64>() < p;
                    out.push(u32::from(busy));
                }
            }
        }
        out
    }
}

/// Concatenates regime traces into one non-stationary workload — the
/// construction of Example 7.1 ("merging two real-world traces with
/// completely different statistics": an alternating editing workload
/// followed by a long compile burst).
pub fn concatenate(parts: &[&[u32]]) -> Vec<u32> {
    let total: usize = parts.iter().map(|p| p.len()).sum();
    let mut out = Vec::with_capacity(total);
    for part in parts {
        out.extend_from_slice(part);
    }
    out
}

/// The two-regime CPU workload of Example 7.1: `slices/2` of interactive
/// editing (short bursts, long idles) followed by `slices/2` of
/// compilation (one long activity burst with rare pauses).
pub fn example_7_1_workload(slices: usize, seed: u64) -> Vec<u32> {
    let half = slices / 2;
    let editing = BurstyTraceGenerator::new(0.01, 0.7)
        .seed(seed)
        .generate(half);
    let compiling = BurstyTraceGenerator::new(0.5, 0.995)
        .seed(seed.wrapping_add(1))
        .generate(slices - half);
    concatenate(&[&editing, &compiling])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TraceStats;

    #[test]
    fn bursty_generator_matches_target_statistics() {
        let stream = BurstyTraceGenerator::new(0.05, 0.85)
            .seed(7)
            .generate(200_000);
        let stats = TraceStats::from_stream(&stream);
        assert!((stats.load() - 0.25).abs() < 0.02);
        // Mean busy burst ≈ 1 / (1 − 0.85) ≈ 6.67.
        assert!((stats.mean_busy_length() - 6.67).abs() < 0.5);
        // Mean idle gap ≈ 1 / 0.05 = 20.
        assert!((stats.mean_idle_length() - 20.0).abs() < 2.0);
    }

    #[test]
    fn bernoulli_generator_hits_rate() {
        let stream = BernoulliTraceGenerator::new(0.3).seed(5).generate(100_000);
        let stats = TraceStats::from_stream(&stream);
        assert!((stats.load() - 0.3).abs() < 0.01);
    }

    #[test]
    fn generators_are_reproducible() {
        let a = BurstyTraceGenerator::new(0.1, 0.8).seed(1).generate(1000);
        let b = BurstyTraceGenerator::new(0.1, 0.8).seed(1).generate(1000);
        assert_eq!(a, b);
        let c = BurstyTraceGenerator::new(0.1, 0.8).seed(2).generate(1000);
        assert_ne!(a, c);
    }

    #[test]
    fn heavy_tail_has_large_gap_dispersion() {
        // A geometric distribution has σ/μ ≲ 1; the Pareto gaps should
        // show substantially more dispersion.
        let stream = HeavyTailTraceGenerator::new(1.2, 5, 0.8)
            .seed(3)
            .generate(300_000);
        let stats = TraceStats::from_stream(&stream);
        let cv = stats.idle_length_std() / stats.mean_idle_length();
        assert!(cv > 1.2, "coefficient of variation {cv}");
    }

    #[test]
    fn regime_switching_cycles_with_distinct_statistics() {
        let generator = RegimeSwitchingGenerator::new(vec![
            Regime::new(0.02, 0.6, 20_000), // light
            Regime::new(0.5, 0.95, 20_000), // heavy
        ])
        .seed(9);
        assert_eq!(generator.cycle_length(), 40_000);
        assert_eq!(generator.regime_at(0), 0);
        assert_eq!(generator.regime_at(20_000), 1);
        assert_eq!(generator.regime_at(40_000), 0); // cycles
        let stream = generator.generate(80_000);
        assert_eq!(stream.len(), 80_000);
        let light = TraceStats::from_stream(&stream[..20_000]);
        let heavy = TraceStats::from_stream(&stream[20_000..40_000]);
        assert!(light.load() < 0.15, "light load {}", light.load());
        assert!(heavy.load() > 0.7, "heavy load {}", heavy.load());
        // Second cycle repeats the pattern.
        let light2 = TraceStats::from_stream(&stream[40_000..60_000]);
        assert!(light2.load() < 0.15, "second-cycle light {}", light2.load());
        // Deterministic by seed.
        assert_eq!(stream, generator.generate(80_000));
    }

    #[test]
    #[should_panic(expected = "at least one regime")]
    fn empty_regime_schedule_panics() {
        RegimeSwitchingGenerator::new(vec![]);
    }

    #[test]
    fn concatenate_preserves_order_and_length() {
        let merged = concatenate(&[&[0, 1], &[1, 1, 0]]);
        assert_eq!(merged, vec![0, 1, 1, 1, 0]);
    }

    #[test]
    fn example_7_1_has_two_distinct_regimes() {
        let stream = example_7_1_workload(100_000, 11);
        assert_eq!(stream.len(), 100_000);
        let first = TraceStats::from_stream(&stream[..50_000]);
        let second = TraceStats::from_stream(&stream[50_000..]);
        // Editing is light, compiling is near-saturated.
        assert!(first.load() < 0.1, "editing load {}", first.load());
        assert!(second.load() > 0.9, "compile load {}", second.load());
    }
}
