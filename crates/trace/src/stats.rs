/// Descriptive statistics of a discretized request stream: load, burst
/// and idle-gap structure. Used to validate generators against the
/// statistics the paper quotes and to characterize extracted models.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceStats {
    slices: usize,
    requests: u64,
    busy_slices: usize,
    busy_lengths: Vec<usize>,
    idle_lengths: Vec<usize>,
}

impl TraceStats {
    /// Computes statistics over a per-slice arrival-count stream.
    pub fn from_stream(stream: &[u32]) -> Self {
        let mut busy_lengths = Vec::new();
        let mut idle_lengths = Vec::new();
        let mut run_busy = 0usize;
        let mut run_idle = 0usize;
        let mut requests = 0u64;
        let mut busy_slices = 0usize;
        for &c in stream {
            requests += c as u64;
            if c > 0 {
                busy_slices += 1;
                run_busy += 1;
                if run_idle > 0 {
                    idle_lengths.push(run_idle);
                    run_idle = 0;
                }
            } else {
                run_idle += 1;
                if run_busy > 0 {
                    busy_lengths.push(run_busy);
                    run_busy = 0;
                }
            }
        }
        if run_busy > 0 {
            busy_lengths.push(run_busy);
        }
        if run_idle > 0 {
            idle_lengths.push(run_idle);
        }
        TraceStats {
            slices: stream.len(),
            requests,
            busy_slices,
            busy_lengths,
            idle_lengths,
        }
    }

    /// Number of slices observed.
    pub fn slices(&self) -> usize {
        self.slices
    }

    /// Total requests (counting multi-request slices fully).
    pub fn requests(&self) -> u64 {
        self.requests
    }

    /// Fraction of slices with at least one arrival.
    pub fn load(&self) -> f64 {
        if self.slices == 0 {
            0.0
        } else {
            self.busy_slices as f64 / self.slices as f64
        }
    }

    /// Average requests per slice (≥ [`Self::load`] when slices carry
    /// multiple requests).
    pub fn request_rate(&self) -> f64 {
        if self.slices == 0 {
            0.0
        } else {
            self.requests as f64 / self.slices as f64
        }
    }

    /// Mean length of maximal busy runs, in slices (0 when none).
    pub fn mean_busy_length(&self) -> f64 {
        mean(&self.busy_lengths)
    }

    /// Mean length of maximal idle runs, in slices (0 when none).
    pub fn mean_idle_length(&self) -> f64 {
        mean(&self.idle_lengths)
    }

    /// Standard deviation of idle-run lengths; large values relative to
    /// the mean signal non-geometric (e.g. heavy-tailed) gaps.
    pub fn idle_length_std(&self) -> f64 {
        std_dev(&self.idle_lengths)
    }

    /// Standard deviation of busy-run lengths.
    pub fn busy_length_std(&self) -> f64 {
        std_dev(&self.busy_lengths)
    }

    /// Number of distinct busy runs.
    pub fn num_bursts(&self) -> usize {
        self.busy_lengths.len()
    }
}

fn mean(values: &[usize]) -> f64 {
    if values.is_empty() {
        0.0
    } else {
        values.iter().sum::<usize>() as f64 / values.len() as f64
    }
}

fn std_dev(values: &[usize]) -> f64 {
    if values.len() < 2 {
        return 0.0;
    }
    let m = mean(values);
    let var = values
        .iter()
        .map(|&v| {
            let d = v as f64 - m;
            d * d
        })
        .sum::<f64>()
        / (values.len() - 1) as f64;
    var.sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_runs_correctly() {
        let stats = TraceStats::from_stream(&[0, 1, 1, 0, 0, 0, 1, 0]);
        assert_eq!(stats.slices(), 8);
        assert_eq!(stats.requests(), 3);
        assert_eq!(stats.num_bursts(), 2);
        assert_eq!(stats.mean_busy_length(), 1.5); // runs of 2 and 1
        assert_eq!(stats.mean_idle_length(), 5.0 / 3.0); // runs of 1, 3, 1
        assert_eq!(stats.load(), 3.0 / 8.0);
    }

    #[test]
    fn multi_request_slices_count_in_rate_not_load() {
        let stats = TraceStats::from_stream(&[0, 3, 0, 0]);
        assert_eq!(stats.load(), 0.25);
        assert_eq!(stats.request_rate(), 0.75);
    }

    #[test]
    fn empty_and_uniform_streams() {
        let empty = TraceStats::from_stream(&[]);
        assert_eq!(empty.load(), 0.0);
        assert_eq!(empty.mean_busy_length(), 0.0);
        let all_busy = TraceStats::from_stream(&[1, 1, 1]);
        assert_eq!(all_busy.load(), 1.0);
        assert_eq!(all_busy.num_bursts(), 1);
        assert_eq!(all_busy.mean_busy_length(), 3.0);
        assert_eq!(all_busy.idle_length_std(), 0.0);
    }

    #[test]
    fn std_dev_of_constant_runs_is_zero() {
        let stats = TraceStats::from_stream(&[1, 0, 1, 0, 1, 0]);
        assert_eq!(stats.busy_length_std(), 0.0);
    }
}
