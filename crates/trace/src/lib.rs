//! Workload traces for the `markov-dpm` workspace: recording,
//! discretization, service-requester extraction and synthetic generation.
//!
//! This crate is the *SR extractor* block of the paper's tool (Fig. 7)
//! plus the workload substitutes described in `DESIGN.md` (the original
//! Auspex/ITA/CPU-monitor traces are no longer distributed):
//!
//! * [`Trace`] — a time-stamped request trace with the discretization of
//!   Example 5.1 (`t = 2, 5, 6, 7, 12 ms` at Δt = 1 ms becomes the binary
//!   stream `0010011100001`);
//! * [`SrExtractor`] — the k-memory Markov-model extraction of Section V:
//!   a model with `2^k` states (one per k-bit recent history), with
//!   conditional transition probabilities counted from the stream;
//! * [`KMemoryTracker`] — the matching online state tracker for
//!   trace-driven simulation;
//! * [`WindowedEstimator`] — the **streaming** counterpart of the
//!   extractor for the online-adaptation loop: sliding or
//!   exponential-decay windows over a live bit stream, with a divergence
//!   gauge between consecutive fits for drift detection;
//! * [`generators`] — synthetic workloads: Markov-modulated bursts
//!   (matching the burst statistics the paper quotes), Bernoulli/Poisson
//!   arrivals, heavy-tailed (non-geometric) idle periods, and the
//!   two-regime concatenation of Example 7.1 used to break the
//!   stationarity assumption in Fig. 10.
//!
//! # Example
//!
//! Example 5.1, end to end:
//!
//! ```
//! use dpm_trace::{SrExtractor, Trace};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let trace = Trace::from_arrival_times(&[2.0, 5.0, 6.0, 7.0, 12.0]);
//! let stream = trace.discretize(1.0);
//! assert_eq!(stream, vec![0, 0, 1, 0, 0, 1, 1, 1, 0, 0, 0, 0, 1]);
//! let sr = SrExtractor::new(1).extract(&stream)?;
//! // P(0 → 1) = (# of 01 pairs) / (# of zeros among pair starts) = 3/8.
//! assert!((sr.chain().transition_matrix().prob(0, 1) - 3.0 / 8.0).abs() < 1e-12);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]
#![deny(missing_debug_implementations)]

pub mod generators;
mod record;
mod sr_extractor;
mod stats;
mod windowed;

pub use record::Trace;
pub use sr_extractor::{KMemoryTracker, SrExtractor};
pub use stats::TraceStats;
pub use windowed::{
    screen_arrival, screen_arrivals, EstimatorState, WindowKind, WindowedEstimator,
};
