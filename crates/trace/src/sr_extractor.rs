use dpm_core::{DpmError, ServiceRequester};
use dpm_markov::StochasticMatrix;

/// The **SR extractor** of Section V: fits a k-memory Markov model to a
/// discretized request stream.
///
/// "The k-memory Markov model has 2^k states, one for each possible
/// sequence of k consecutive bits. The conditional transition
/// probabilities are computed by counting the occurrences of state
/// transitions, and dividing the count by the total number of times the
/// start state of the transition is visited."
///
/// A state encodes the last `k` bits of the arrival stream, most recent
/// bit in the least-significant position; its request count `r(s)` is that
/// most recent bit — consistent with the composer's convention that the
/// arrivals of a slice are read off the SR's destination state.
///
/// States never visited in the stream keep a self-loop (they are
/// unreachable in the fitted chain anyway); optional Laplace smoothing
/// ([`Self::with_smoothing`]) regularizes rare transitions instead.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SrExtractor {
    memory: u32,
    smoothing: f64,
}

impl SrExtractor {
    /// An extractor with memory `k ≥ 1` (the model has `2^k` states) and
    /// no smoothing.
    ///
    /// # Panics
    ///
    /// Panics for `k = 0` or `k > 16` (65 536 states is already far past
    /// what the LP can digest; the paper's Fig. 13(b) stops at small k).
    pub fn new(memory: u32) -> Self {
        assert!(
            (1..=16).contains(&memory),
            "memory must be in 1..=16, got {memory}"
        );
        SrExtractor {
            memory,
            smoothing: 0.0,
        }
    }

    /// Adds Laplace smoothing: every transition count starts at `alpha`
    /// instead of zero.
    pub fn with_smoothing(mut self, alpha: f64) -> Self {
        self.smoothing = alpha.max(0.0);
        self
    }

    /// The configured memory `k`.
    pub fn memory(&self) -> u32 {
        self.memory
    }

    /// Number of states of the fitted model.
    pub fn num_states(&self) -> usize {
        1usize << self.memory
    }

    /// Fits the model to a discretized stream (counts are binarized:
    /// a slice "issues a request" when its count is nonzero).
    ///
    /// # Errors
    ///
    /// [`DpmError::IncompleteModel`] when the stream is shorter than
    /// `k + 1` slices (no transition can be counted).
    pub fn extract(&self, stream: &[u32]) -> Result<ServiceRequester, DpmError> {
        let k = self.memory as usize;
        if stream.len() < k + 1 {
            return Err(DpmError::IncompleteModel {
                reason: format!(
                    "stream of {} slices cannot fit a {k}-memory model",
                    stream.len()
                ),
            });
        }
        let n = self.num_states();
        let mask = n - 1;
        let mut counts = vec![vec![self.smoothing; 2]; n];

        // Seed the history with the first k bits, then count transitions.
        let mut state = 0usize;
        for &c in &stream[..k] {
            state = ((state << 1) | usize::from(c > 0)) & mask;
        }
        for &c in &stream[k..] {
            let bit = usize::from(c > 0);
            counts[state][bit] += 1.0;
            state = ((state << 1) | bit) & mask;
        }

        let mut rows: Vec<Vec<f64>> = Vec::with_capacity(n);
        for s in 0..n {
            let mut row = vec![0.0; n];
            let total = counts[s][0] + counts[s][1];
            if total > 0.0 {
                for (bit, &count) in counts[s].iter().enumerate() {
                    let next = ((s << 1) | bit) & mask;
                    row[next] += count / total;
                }
            } else {
                // Unvisited history: inert self-loop.
                row[s] = 1.0;
            }
            rows.push(row);
        }
        let row_refs: Vec<&[f64]> = rows.iter().map(|r| r.as_slice()).collect();
        let transition = StochasticMatrix::from_rows(&row_refs)?;
        let requests: Vec<u32> = (0..n).map(|s| (s & 1) as u32).collect();
        let names: Vec<String> = (0..n)
            .map(|s| format!("h{:0width$b}", s, width = k))
            .collect();
        ServiceRequester::with_names(transition, requests, names)
    }
}

/// Online companion of [`SrExtractor`] for trace-driven simulation: feeds
/// each slice's arrival count and yields the k-memory SR state the
/// extracted model would be in — pass its [`KMemoryTracker::tracker`]
/// closure to `Simulator::run_trace`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KMemoryTracker {
    memory: u32,
    state: usize,
}

impl KMemoryTracker {
    /// A tracker matching an extractor of the same memory.
    ///
    /// # Panics
    ///
    /// Panics for `memory = 0` or `memory > 16`.
    pub fn new(memory: u32) -> Self {
        assert!(
            (1..=16).contains(&memory),
            "memory must be in 1..=16, got {memory}"
        );
        KMemoryTracker { memory, state: 0 }
    }

    /// Feeds one slice's arrival count; returns the new state.
    pub fn observe(&mut self, arrivals: u32) -> usize {
        let mask = (1usize << self.memory) - 1;
        self.state = ((self.state << 1) | usize::from(arrivals > 0)) & mask;
        self.state
    }

    /// The current state (the last `k` observed bits).
    pub fn state(&self) -> usize {
        self.state
    }

    /// Adapts the tracker into the closure form `Simulator::run_trace`
    /// expects.
    pub fn tracker(mut self) -> impl FnMut(u32) -> usize {
        move |arrivals| self.observe(arrivals)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn example_5_1_probabilities() {
        let stream = [0, 0, 1, 0, 0, 1, 1, 1, 0, 0, 0, 0, 1];
        let sr = SrExtractor::new(1).extract(&stream).unwrap();
        let p = sr.chain().transition_matrix();
        // "there are three 01-sequences, and eight occurrences of zero
        // [among transition starts]. Hence 3/8."
        assert!((p.prob(0, 1) - 3.0 / 8.0).abs() < 1e-12);
        assert!((p.prob(0, 0) - 5.0 / 8.0).abs() < 1e-12);
        // Ones among starts: positions of 1 in the first 12 bits = 4; the
        // 1→1 pairs: (5,6), (6,7) = 2. So P(1→1) = 2/4.
        assert!((p.prob(1, 1) - 0.5).abs() < 1e-12);
        assert_eq!(sr.requests(0), 0);
        assert_eq!(sr.requests(1), 1);
    }

    #[test]
    fn memory_two_has_four_states() {
        let extractor = SrExtractor::new(2);
        assert_eq!(extractor.num_states(), 4);
        // Alternating stream: histories 01 and 10 dominate.
        let stream: Vec<u32> = (0..100).map(|i| (i % 2) as u32).collect();
        let sr = extractor.extract(&stream).unwrap();
        let p = sr.chain().transition_matrix();
        // From history 01 (state 0b01 = 1) the next bit is always 0 →
        // state 0b10 = 2.
        assert!((p.prob(1, 2) - 1.0).abs() < 1e-12);
        // From history 10 (state 2) the next bit is always 1 → state 1.
        assert!((p.prob(2, 1) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn perfectly_periodic_stream_is_deterministic_at_memory_matching_period() {
        let stream: Vec<u32> = (0..300).map(|i| u32::from(i % 3 == 0)).collect();
        let sr = SrExtractor::new(3).extract(&stream).unwrap();
        // Every visited state should have a deterministic successor.
        let p = sr.chain().transition_matrix();
        for s in 0..sr.num_states() {
            let max = (0..sr.num_states())
                .map(|t| p.prob(s, t))
                .fold(0.0f64, f64::max);
            assert!((max - 1.0).abs() < 1e-12, "state {s} not deterministic");
        }
    }

    #[test]
    fn unvisited_states_self_loop() {
        let stream = [0, 0, 0, 0, 0];
        let sr = SrExtractor::new(2).extract(&stream).unwrap();
        let p = sr.chain().transition_matrix();
        // History 11 (state 3) never occurs.
        assert_eq!(p.prob(3, 3), 1.0);
    }

    #[test]
    fn smoothing_spreads_mass() {
        let stream = [0, 0, 0, 0, 0, 0];
        let sr = SrExtractor::new(1)
            .with_smoothing(1.0)
            .extract(&stream)
            .unwrap();
        let p = sr.chain().transition_matrix();
        // counts: 0→0 five times (+1 smooth), 0→1 zero (+1 smooth) ⇒ 1/7.
        assert!((p.prob(0, 1) - 1.0 / 7.0).abs() < 1e-12);
        // Unvisited state 1 got smoothed counts too: uniform.
        assert!((p.prob(1, 0) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn too_short_stream_is_rejected() {
        assert!(SrExtractor::new(3).extract(&[1, 0, 1]).is_err());
    }

    #[test]
    #[should_panic(expected = "memory must be in 1..=16")]
    fn zero_memory_panics() {
        SrExtractor::new(0);
    }

    #[test]
    fn tracker_follows_extractor_indexing() {
        let mut tracker = KMemoryTracker::new(2);
        assert_eq!(tracker.observe(1), 0b01);
        assert_eq!(tracker.observe(1), 0b11);
        assert_eq!(tracker.observe(0), 0b10);
        assert_eq!(tracker.state(), 0b10);
        // Closure adapter.
        let mut f = KMemoryTracker::new(1).tracker();
        assert_eq!(f(5), 1);
        assert_eq!(f(0), 0);
    }

    #[test]
    fn extracted_load_matches_stream_density() {
        // A stream with 30% ones: the stationary request rate of the
        // fitted 1-memory model reproduces the empirical density.
        let stream: Vec<u32> = (0..5000).map(|i| u32::from(i % 10 < 3)).collect();
        let sr = SrExtractor::new(1).extract(&stream).unwrap();
        let rate = sr.request_rate().unwrap();
        assert!((rate - 0.3).abs() < 0.01, "rate {rate}");
    }
}
