use dpm_core::{DpmError, ServiceRequester};
use dpm_markov::StochasticMatrix;

/// The **SR extractor** of Section V: fits a k-memory Markov model to a
/// discretized request stream.
///
/// "The k-memory Markov model has 2^k states, one for each possible
/// sequence of k consecutive bits. The conditional transition
/// probabilities are computed by counting the occurrences of state
/// transitions, and dividing the count by the total number of times the
/// start state of the transition is visited."
///
/// A state encodes the last `k` bits of the arrival stream, most recent
/// bit in the least-significant position; its request count `r(s)` is that
/// most recent bit — consistent with the composer's convention that the
/// arrivals of a slice are read off the SR's destination state.
///
/// States never visited in the stream keep a self-loop (they are
/// unreachable in the fitted chain anyway); optional Laplace smoothing
/// ([`Self::with_smoothing`]) regularizes rare transitions instead.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SrExtractor {
    memory: u32,
    smoothing: f64,
}

impl SrExtractor {
    /// An extractor with memory `k ≥ 1` (the model has `2^k` states) and
    /// no smoothing.
    ///
    /// # Panics
    ///
    /// Panics for `k = 0` or `k > 16` (65 536 states is already far past
    /// what the LP can digest; the paper's Fig. 13(b) stops at small k).
    /// Code that receives the memory at run time — the online estimation
    /// paths — should use the fallible [`Self::try_new`] instead; the
    /// panicking constructor stays for examples and compile-time-known
    /// configurations.
    pub fn new(memory: u32) -> Self {
        Self::try_new(memory).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible constructor: an extractor with memory `k` and no
    /// smoothing, rejecting out-of-range memories instead of panicking —
    /// the entry point the adaptive runtime and the
    /// [`WindowedEstimator`](crate::WindowedEstimator) use for
    /// run-time-supplied configurations.
    ///
    /// # Errors
    ///
    /// [`DpmError::BadConfiguration`] for `k = 0` or `k > 16`.
    pub fn try_new(memory: u32) -> Result<Self, DpmError> {
        if !(1..=16).contains(&memory) {
            return Err(DpmError::BadConfiguration {
                reason: format!("SR extractor memory must be in 1..=16, got {memory}"),
            });
        }
        Ok(SrExtractor {
            memory,
            smoothing: 0.0,
        })
    }

    /// Adds Laplace smoothing: every transition count starts at `alpha`
    /// instead of zero.
    pub fn with_smoothing(mut self, alpha: f64) -> Self {
        self.smoothing = alpha.max(0.0);
        self
    }

    /// The configured memory `k`.
    pub fn memory(&self) -> u32 {
        self.memory
    }

    /// The configured Laplace smoothing (0 when none was set).
    pub fn smoothing(&self) -> f64 {
        self.smoothing
    }

    /// Number of states of the fitted model.
    pub fn num_states(&self) -> usize {
        1usize << self.memory
    }

    /// Fits the model to a discretized stream (counts are binarized:
    /// a slice "issues a request" when its count is nonzero).
    ///
    /// # Errors
    ///
    /// [`DpmError::IncompleteModel`] when the stream is shorter than
    /// `k + 1` slices (no transition can be counted).
    pub fn extract(&self, stream: &[u32]) -> Result<ServiceRequester, DpmError> {
        let k = self.memory as usize;
        if stream.len() < k + 1 {
            return Err(DpmError::IncompleteModel {
                reason: format!(
                    "stream of {} slices cannot fit a {k}-memory model",
                    stream.len()
                ),
            });
        }
        let n = self.num_states();
        let mask = n - 1;
        let mut counts = vec![[0.0f64; 2]; n];

        // Seed the history with the first k bits, then count transitions.
        let mut state = 0usize;
        for &c in &stream[..k] {
            state = ((state << 1) | usize::from(c > 0)) & mask;
        }
        for &c in &stream[k..] {
            let bit = usize::from(c > 0);
            counts[state][bit] += 1.0;
            state = ((state << 1) | bit) & mask;
        }
        self.extract_from_counts(&counts)
    }

    /// Builds the model straight from per-state transition counts:
    /// `counts[s] = [count of s → (shift-in 0), count of s → (shift-in
    /// 1)]`. This is how streaming estimators — sliding or
    /// exponential-decay windows that maintain (possibly fractional)
    /// counts online — reuse the extractor's model construction without
    /// materializing a stream (see
    /// [`WindowedEstimator`](crate::WindowedEstimator)). The configured
    /// smoothing is added on top of the given counts; histories with zero
    /// total count keep the inert self-loop.
    ///
    /// # Errors
    ///
    /// [`DpmError::IncompleteModel`] when `counts` does not have one
    /// entry per model state, or contains a negative/non-finite count.
    pub fn extract_from_counts(&self, counts: &[[f64; 2]]) -> Result<ServiceRequester, DpmError> {
        let k = self.memory as usize;
        let n = self.num_states();
        let mask = n - 1;
        if counts.len() != n {
            return Err(DpmError::IncompleteModel {
                reason: format!("{} count rows for a {n}-state model", counts.len()),
            });
        }
        if counts.iter().flatten().any(|&c| !c.is_finite() || c < 0.0) {
            return Err(DpmError::IncompleteModel {
                reason: "transition counts must be finite and nonnegative".to_string(),
            });
        }
        let mut rows: Vec<Vec<f64>> = Vec::with_capacity(n);
        for (s, pair) in counts.iter().enumerate() {
            let mut row = vec![0.0; n];
            let smoothed = [pair[0] + self.smoothing, pair[1] + self.smoothing];
            let total = smoothed[0] + smoothed[1];
            if total > 0.0 {
                for (bit, &count) in smoothed.iter().enumerate() {
                    let next = ((s << 1) | bit) & mask;
                    row[next] += count / total;
                }
            } else {
                // Unvisited history: inert self-loop.
                row[s] = 1.0;
            }
            rows.push(row);
        }
        let row_refs: Vec<&[f64]> = rows.iter().map(|r| r.as_slice()).collect();
        let transition = StochasticMatrix::from_rows(&row_refs)?;
        let requests: Vec<u32> = (0..n).map(|s| (s & 1) as u32).collect();
        let names: Vec<String> = (0..n)
            .map(|s| format!("h{:0width$b}", s, width = k))
            .collect();
        ServiceRequester::with_names(transition, requests, names)
    }
}

/// Online companion of [`SrExtractor`] for trace-driven simulation: feeds
/// each slice's arrival count and yields the k-memory SR state the
/// extracted model would be in — pass its [`KMemoryTracker::tracker`]
/// closure to `Simulator::run_trace`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KMemoryTracker {
    memory: u32,
    state: usize,
}

impl KMemoryTracker {
    /// A tracker matching an extractor of the same memory.
    ///
    /// # Panics
    ///
    /// Panics for `memory = 0` or `memory > 16`; run-time-supplied
    /// memories should go through [`Self::try_new`].
    pub fn new(memory: u32) -> Self {
        Self::try_new(memory).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible constructor, mirroring [`SrExtractor::try_new`].
    ///
    /// # Errors
    ///
    /// [`DpmError::BadConfiguration`] for `memory = 0` or `memory > 16`.
    pub fn try_new(memory: u32) -> Result<Self, DpmError> {
        if !(1..=16).contains(&memory) {
            return Err(DpmError::BadConfiguration {
                reason: format!("k-memory tracker memory must be in 1..=16, got {memory}"),
            });
        }
        Ok(KMemoryTracker { memory, state: 0 })
    }

    /// Feeds one slice's arrival count; returns the new state.
    pub fn observe(&mut self, arrivals: u32) -> usize {
        let mask = (1usize << self.memory) - 1;
        self.state = ((self.state << 1) | usize::from(arrivals > 0)) & mask;
        self.state
    }

    /// The current state (the last `k` observed bits).
    pub fn state(&self) -> usize {
        self.state
    }

    /// Adapts the tracker into the closure form `Simulator::run_trace`
    /// expects.
    pub fn tracker(mut self) -> impl FnMut(u32) -> usize {
        move |arrivals| self.observe(arrivals)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn example_5_1_probabilities() {
        let stream = [0, 0, 1, 0, 0, 1, 1, 1, 0, 0, 0, 0, 1];
        let sr = SrExtractor::new(1).extract(&stream).unwrap();
        let p = sr.chain().transition_matrix();
        // "there are three 01-sequences, and eight occurrences of zero
        // [among transition starts]. Hence 3/8."
        assert!((p.prob(0, 1) - 3.0 / 8.0).abs() < 1e-12);
        assert!((p.prob(0, 0) - 5.0 / 8.0).abs() < 1e-12);
        // Ones among starts: positions of 1 in the first 12 bits = 4; the
        // 1→1 pairs: (5,6), (6,7) = 2. So P(1→1) = 2/4.
        assert!((p.prob(1, 1) - 0.5).abs() < 1e-12);
        assert_eq!(sr.requests(0), 0);
        assert_eq!(sr.requests(1), 1);
    }

    #[test]
    fn memory_two_has_four_states() {
        let extractor = SrExtractor::new(2);
        assert_eq!(extractor.num_states(), 4);
        // Alternating stream: histories 01 and 10 dominate.
        let stream: Vec<u32> = (0..100).map(|i| (i % 2) as u32).collect();
        let sr = extractor.extract(&stream).unwrap();
        let p = sr.chain().transition_matrix();
        // From history 01 (state 0b01 = 1) the next bit is always 0 →
        // state 0b10 = 2.
        assert!((p.prob(1, 2) - 1.0).abs() < 1e-12);
        // From history 10 (state 2) the next bit is always 1 → state 1.
        assert!((p.prob(2, 1) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn perfectly_periodic_stream_is_deterministic_at_memory_matching_period() {
        let stream: Vec<u32> = (0..300).map(|i| u32::from(i % 3 == 0)).collect();
        let sr = SrExtractor::new(3).extract(&stream).unwrap();
        // Every visited state should have a deterministic successor.
        let p = sr.chain().transition_matrix();
        for s in 0..sr.num_states() {
            let max = (0..sr.num_states())
                .map(|t| p.prob(s, t))
                .fold(0.0f64, f64::max);
            assert!((max - 1.0).abs() < 1e-12, "state {s} not deterministic");
        }
    }

    #[test]
    fn unvisited_states_self_loop() {
        let stream = [0, 0, 0, 0, 0];
        let sr = SrExtractor::new(2).extract(&stream).unwrap();
        let p = sr.chain().transition_matrix();
        // History 11 (state 3) never occurs.
        assert_eq!(p.prob(3, 3), 1.0);
    }

    #[test]
    fn smoothing_spreads_mass() {
        let stream = [0, 0, 0, 0, 0, 0];
        let sr = SrExtractor::new(1)
            .with_smoothing(1.0)
            .extract(&stream)
            .unwrap();
        let p = sr.chain().transition_matrix();
        // counts: 0→0 five times (+1 smooth), 0→1 zero (+1 smooth) ⇒ 1/7.
        assert!((p.prob(0, 1) - 1.0 / 7.0).abs() < 1e-12);
        // Unvisited state 1 got smoothed counts too: uniform.
        assert!((p.prob(1, 0) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn too_short_stream_is_rejected() {
        assert!(SrExtractor::new(3).extract(&[1, 0, 1]).is_err());
    }

    #[test]
    #[should_panic(expected = "memory must be in 1..=16")]
    fn zero_memory_panics() {
        SrExtractor::new(0);
    }

    #[test]
    fn try_new_rejects_bad_memory_without_panicking() {
        assert!(matches!(
            SrExtractor::try_new(0),
            Err(DpmError::BadConfiguration { .. })
        ));
        assert!(matches!(
            SrExtractor::try_new(17),
            Err(DpmError::BadConfiguration { .. })
        ));
        assert_eq!(SrExtractor::try_new(3).unwrap().memory(), 3);
        assert!(KMemoryTracker::try_new(0).is_err());
        assert_eq!(KMemoryTracker::try_new(2).unwrap().state(), 0);
    }

    #[test]
    fn counts_path_matches_stream_path() {
        // Fitting from a stream and from the stream's own transition
        // counts must produce identical models.
        let stream: Vec<u32> = (0..500).map(|i| u32::from(i % 7 < 3)).collect();
        let extractor = SrExtractor::new(2).with_smoothing(0.5);
        let from_stream = extractor.extract(&stream).unwrap();
        let mut counts = vec![[0.0f64; 2]; 4];
        let mut state = 0usize;
        for &c in &stream[..2] {
            state = ((state << 1) | usize::from(c > 0)) & 3;
        }
        for &c in &stream[2..] {
            let bit = usize::from(c > 0);
            counts[state][bit] += 1.0;
            state = ((state << 1) | bit) & 3;
        }
        let from_counts = extractor.extract_from_counts(&counts).unwrap();
        for s in 0..4 {
            for t in 0..4 {
                assert_eq!(
                    from_stream.chain().transition_matrix().prob(s, t),
                    from_counts.chain().transition_matrix().prob(s, t),
                    "({s},{t})"
                );
            }
        }
    }

    #[test]
    fn counts_path_validates_input() {
        let extractor = SrExtractor::new(1);
        assert!(extractor.extract_from_counts(&[[1.0, 2.0]]).is_err()); // 1 row for 2 states
        assert!(extractor
            .extract_from_counts(&[[1.0, -2.0], [0.0, 0.0]])
            .is_err());
        assert!(extractor
            .extract_from_counts(&[[f64::NAN, 0.0], [0.0, 0.0]])
            .is_err());
    }

    #[test]
    fn tracker_follows_extractor_indexing() {
        let mut tracker = KMemoryTracker::new(2);
        assert_eq!(tracker.observe(1), 0b01);
        assert_eq!(tracker.observe(1), 0b11);
        assert_eq!(tracker.observe(0), 0b10);
        assert_eq!(tracker.state(), 0b10);
        // Closure adapter.
        let mut f = KMemoryTracker::new(1).tracker();
        assert_eq!(f(5), 1);
        assert_eq!(f(0), 0);
    }

    #[test]
    fn extracted_load_matches_stream_density() {
        // A stream with 30% ones: the stationary request rate of the
        // fitted 1-memory model reproduces the empirical density.
        let stream: Vec<u32> = (0..5000).map(|i| u32::from(i % 10 < 3)).collect();
        let sr = SrExtractor::new(1).extract(&stream).unwrap();
        let rate = sr.request_rate().unwrap();
        assert!((rate - 0.3).abs() < 0.01, "rate {rate}");
    }
}
