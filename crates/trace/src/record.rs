/// A time-stamped request trace — the input format of the paper's tool
/// ("a request trace consisting of time-stamped request records, obtained
/// from measurements on a real system").
///
/// Times are in arbitrary units (typically milliseconds); only their
/// ratios to the discretization resolution matter.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Trace {
    /// Sorted arrival times.
    times: Vec<f64>,
}

impl Trace {
    /// An empty trace.
    pub fn new() -> Self {
        Self::default()
    }

    /// Builds from arrival times (sorted internally; non-finite entries
    /// are dropped).
    pub fn from_arrival_times(times: &[f64]) -> Self {
        let mut times: Vec<f64> = times.iter().copied().filter(|t| t.is_finite()).collect();
        times.sort_by(|a, b| a.total_cmp(b));
        Trace { times }
    }

    /// Appends an arrival (must not precede the last one; out-of-order
    /// times are re-sorted lazily by [`Self::discretize`]).
    pub fn push(&mut self, time: f64) {
        if time.is_finite() {
            self.times.push(time);
        }
    }

    /// Number of recorded requests.
    pub fn len(&self) -> usize {
        self.times.len()
    }

    /// `true` when no requests were recorded.
    pub fn is_empty(&self) -> bool {
        self.times.is_empty()
    }

    /// The raw arrival times.
    pub fn times(&self) -> &[f64] {
        &self.times
    }

    /// Total span from time zero to the last arrival.
    pub fn duration(&self) -> f64 {
        self.times.last().copied().unwrap_or(0.0)
    }

    /// Discretizes into per-slice arrival counts at the given resolution —
    /// Example 5.1: a request at time `t` lands in slice `⌊t/Δt⌋`, so the
    /// trace `[2, 5, 6, 7, 12]` at Δt = 1 becomes
    /// `[0, 0, 1, 0, 0, 1, 1, 1, 0, 0, 0, 0, 1]` (13 slices).
    ///
    /// Requests sharing a slice accumulate, so the stream is a `u32`
    /// count stream, which degenerates to the paper's binary stream when
    /// at most one request falls in each slice.
    ///
    /// # Panics
    ///
    /// Panics if `resolution` is not positive and finite.
    pub fn discretize(&self, resolution: f64) -> Vec<u32> {
        assert!(
            resolution.is_finite() && resolution > 0.0,
            "resolution must be positive, got {resolution}"
        );
        let mut times = self.times.clone();
        times.sort_by(|a, b| a.total_cmp(b));
        let Some(&last) = times.last() else {
            return Vec::new();
        };
        let slices = (last / resolution).floor() as usize + 1;
        let mut stream = vec![0u32; slices];
        for &t in &times {
            let idx = (t / resolution).floor() as usize;
            stream[idx.min(slices - 1)] += 1;
        }
        stream
    }
}

impl FromIterator<f64> for Trace {
    fn from_iter<I: IntoIterator<Item = f64>>(iter: I) -> Self {
        let times: Vec<f64> = iter.into_iter().collect();
        Trace::from_arrival_times(&times)
    }
}

impl Extend<f64> for Trace {
    fn extend<I: IntoIterator<Item = f64>>(&mut self, iter: I) {
        for t in iter {
            self.push(t);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn example_5_1_discretization() {
        // "[2, 5, 6, 7, 12] ... the discretized trace becomes
        //  [0, 0, 1, 0, 0, 1, 1, 1, 0, 0, 0, 0, 1]".
        let trace = Trace::from_arrival_times(&[2.0, 5.0, 6.0, 7.0, 12.0]);
        assert_eq!(
            trace.discretize(1.0),
            vec![0, 0, 1, 0, 0, 1, 1, 1, 0, 0, 0, 0, 1]
        );
    }

    #[test]
    fn coarser_resolution_merges_requests() {
        let trace = Trace::from_arrival_times(&[2.0, 5.0, 6.0, 7.0, 12.0]);
        let stream = trace.discretize(4.0);
        // Slices cover [0,4), [4,8), [8,12), [12,16): 1, 3, 0, 1 requests.
        assert_eq!(stream, vec![1, 3, 0, 1]);
    }

    #[test]
    fn empty_trace_discretizes_to_nothing() {
        assert!(Trace::new().discretize(1.0).is_empty());
        assert!(Trace::new().is_empty());
        assert_eq!(Trace::new().duration(), 0.0);
    }

    #[test]
    fn unsorted_and_nan_inputs_are_cleaned() {
        let trace = Trace::from_arrival_times(&[5.0, f64::NAN, 2.0]);
        assert_eq!(trace.len(), 2);
        assert_eq!(trace.times(), &[2.0, 5.0]);
    }

    #[test]
    fn push_and_extend_accumulate() {
        let mut trace = Trace::new();
        trace.push(1.0);
        trace.extend([3.0, 2.0]);
        assert_eq!(trace.len(), 3);
        // Discretize sorts lazily; times 1, 2, 3 land in slices 1, 2, 3.
        assert_eq!(trace.discretize(1.0), vec![0, 1, 1, 1]);
    }

    #[test]
    fn from_iterator_collects() {
        let trace: Trace = [1.0, 2.0].into_iter().collect();
        assert_eq!(trace.len(), 2);
    }

    #[test]
    #[should_panic(expected = "resolution must be positive")]
    fn zero_resolution_panics() {
        Trace::from_arrival_times(&[1.0]).discretize(0.0);
    }
}
