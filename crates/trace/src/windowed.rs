//! Streaming workload estimation for the online-adaptation loop.
//!
//! The paper fits its SR model **offline**, once, from a recorded trace
//! (Section V) — and Section VII concedes that real workloads are not
//! stationary. [`WindowedEstimator`] closes that gap on the estimation
//! side: it wraps the same k-memory [`SrExtractor`] around an **online
//! bit stream**, maintaining transition counts over a bounded-memory
//! window so the fitted model tracks the *recent* workload instead of the
//! whole history, and it measures the **drift** between consecutive fits
//! so a controller can decide when a re-optimization is worth the solve.
//!
//! Two window shapes, both O(1) per observed slice:
//!
//! * **sliding** ([`WindowKind::Sliding`]): the last `n` slices count
//!   fully, older slices not at all — a ring buffer of bits whose
//!   expiring transition is decremented as a new one is counted;
//! * **exponential decay** ([`WindowKind::Exponential`]): every past
//!   transition keeps a weight `decay^age` — implemented with a growing
//!   per-observation weight and periodic renormalization, so no decay
//!   sweep over the count table is ever needed.

use dpm_core::{DpmError, ServiceRequester};

use crate::SrExtractor;

/// Screens one slice of raw telemetry as an arrival count.
///
/// Production telemetry arrives as floating point and is not trusted:
/// the value must be finite, non-negative, integral (within `1e-6`) and
/// within `u32` range before it may reach [`WindowedEstimator::observe`]
/// — a NaN folded into the transition counts would silently poison every
/// later fit into a NaN transition matrix.
///
/// # Errors
///
/// [`DpmError::BadConfiguration`] naming the offending value.
pub fn screen_arrival(raw: f64) -> Result<u32, DpmError> {
    let bad = |reason: String| DpmError::BadConfiguration { reason };
    if !raw.is_finite() {
        return Err(bad(format!("telemetry arrival count {raw} is not finite")));
    }
    let rounded = raw.round();
    if (raw - rounded).abs() > 1e-6 {
        return Err(bad(format!(
            "telemetry arrival count {raw} is not an integral count"
        )));
    }
    if rounded < 0.0 {
        return Err(bad(format!("telemetry arrival count {raw} is negative")));
    }
    if rounded > f64::from(u32::MAX) {
        return Err(bad(format!(
            "telemetry arrival count {raw} exceeds the u32 range"
        )));
    }
    Ok(rounded as u32)
}

/// Screens a whole epoch of raw telemetry ([`screen_arrival`] per
/// slice), reporting the first offending slice.
///
/// # Errors
///
/// [`DpmError::BadConfiguration`] naming the offending slice index and
/// value; no prefix of the epoch is returned on failure, so a corrupt
/// stream is rejected whole instead of partially ingested.
pub fn screen_arrivals(raw: &[f64]) -> Result<Vec<u32>, DpmError> {
    raw.iter()
        .enumerate()
        .map(|(slice, &value)| {
            screen_arrival(value).map_err(|e| DpmError::BadConfiguration {
                reason: format!("slice {slice}: {e}"),
            })
        })
        .collect()
}

/// How a [`WindowedEstimator`] forgets the past.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum WindowKind {
    /// Count transitions over the most recent `n` slices only (`n ≥ k+1`
    /// is enforced at construction so at least one transition fits).
    Sliding(usize),
    /// Weight a transition observed `t` slices ago by `decay^t`, with
    /// `decay ∈ (0, 1)`. The effective window length is `1/(1 − decay)`.
    Exponential(f64),
}

/// A streaming k-memory workload estimator with drift detection: feed it
/// the per-slice arrival counts the simulator (or the real system)
/// observes, [`fit`](WindowedEstimator::fit) a [`ServiceRequester`]
/// whenever a fresh model is wanted, and read the
/// [`divergence`](WindowedEstimator::divergence) between the last two
/// fits to decide whether the drift justifies a re-optimization.
///
/// # Example
///
/// ```
/// use dpm_trace::{SrExtractor, WindowKind, WindowedEstimator};
///
/// # fn main() -> Result<(), dpm_core::DpmError> {
/// let extractor = SrExtractor::try_new(1)?.with_smoothing(0.5);
/// let mut estimator = WindowedEstimator::new(extractor, WindowKind::Sliding(64))?;
/// // A bursty phase...
/// for i in 0..64 {
///     estimator.observe(u32::from(i % 2 == 0));
/// }
/// let busy = estimator.fit()?;
/// assert!(busy.request_rate()? > 0.3);
/// // ...then a long idle phase: the window forgets the bursts.
/// for _ in 0..64 {
///     estimator.observe(0);
/// }
/// let idle = estimator.fit()?;
/// assert!(idle.request_rate()? < busy.request_rate()?);
/// // The regime change shows up as divergence between the two fits.
/// assert!(estimator.divergence().unwrap() > 0.1);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct WindowedEstimator {
    extractor: SrExtractor,
    kind: WindowKind,
    /// Transition counts `counts[s] = [weight of s→0-shift, s→1-shift]`,
    /// maintained incrementally under the window discipline.
    counts: Vec<[f64; 2]>,
    /// Current k-bit history (the state transitions are counted *from*).
    state: usize,
    /// Bits observed so far (seeding the history consumes the first k).
    observed: u64,
    /// Sliding mode: the windowed bits, newest last.
    ring: std::collections::VecDeque<bool>,
    /// Exponential mode: weight of the *next* observation; past
    /// observations keep their recorded weight, so a count recorded `t`
    /// steps ago is worth `decay^t` relative to the newest.
    weight: f64,
    /// Transition matrix of the most recent fit, flattened row-major.
    last_fit: Option<Vec<f64>>,
    /// Max-abs transition-probability change between the two most recent
    /// fits.
    divergence: Option<f64>,
    /// Confidence-weighted blending of consecutive fits (see
    /// [`Self::with_blending`]).
    blending: bool,
    /// The previous blended count table, rescaled so its total mass never
    /// exceeds one window's worth — the pseudo-count prior the next
    /// blended fit pools with.
    blend_prior: Option<Vec<[f64; 2]>>,
    /// The (normalized) window counts at the most recent fit — what
    /// [`Self::count_drift`] measures movement against.
    counts_at_fit: Option<Vec<[f64; 2]>>,
}

/// The complete streaming state of a [`WindowedEstimator`], detached from
/// its configuration — what a checkpoint must persist so a restored
/// estimator continues **bit-identically** (counts, k-bit history, window
/// contents, fit memory and drift gauge all round-trip exactly; `f64`s
/// should be serialized by bit pattern, not by decimal formatting).
///
/// Produced by [`WindowedEstimator::export_state`], consumed by
/// [`WindowedEstimator::import_state`]. The configuration itself
/// (extractor memory/smoothing, window kind, blending) is *not* part of
/// the state: the importing estimator must be constructed with the same
/// configuration, and `import_state` validates the shapes against it.
#[derive(Debug, Clone, PartialEq)]
pub struct EstimatorState {
    /// Windowed transition counts, `counts[s] = [s→shift-in-0, s→shift-in-1]`.
    pub counts: Vec<[f64; 2]>,
    /// Current k-bit history state.
    pub state: usize,
    /// Slices observed since construction/reset.
    pub observed: u64,
    /// Sliding-window ring contents, oldest first (empty for exponential
    /// windows).
    pub ring: Vec<bool>,
    /// Exponential-mode weight of the next observation (1 for sliding
    /// windows).
    pub weight: f64,
    /// Flattened transition matrix of the most recent fit, if any.
    pub last_fit: Option<Vec<f64>>,
    /// Drift gauge between the two most recent fits, if any.
    pub divergence: Option<f64>,
    /// Carried pseudo-count prior of blending mode, if any.
    pub blend_prior: Option<Vec<[f64; 2]>>,
    /// Normalized window counts at the most recent fit, if any.
    pub counts_at_fit: Option<Vec<[f64; 2]>>,
}

impl WindowedEstimator {
    /// Wraps `extractor` in a streaming window.
    ///
    /// # Errors
    ///
    /// [`DpmError::BadConfiguration`] for a sliding window shorter than
    /// `k + 1` slices (no transition would ever be counted) or an
    /// exponential decay outside `(0, 1)`.
    pub fn new(extractor: SrExtractor, kind: WindowKind) -> Result<Self, DpmError> {
        match kind {
            WindowKind::Sliding(n) => {
                let need = extractor.memory() as usize + 1;
                if n < need {
                    return Err(DpmError::BadConfiguration {
                        reason: format!(
                            "sliding window of {n} slices cannot hold a transition of a \
                             {}-memory model (need at least {need})",
                            extractor.memory()
                        ),
                    });
                }
            }
            WindowKind::Exponential(decay) => {
                if !(decay > 0.0 && decay < 1.0 && decay.is_finite()) {
                    return Err(DpmError::BadConfiguration {
                        reason: format!("exponential decay {decay} not in (0, 1)"),
                    });
                }
            }
        }
        let states = extractor.num_states();
        Ok(WindowedEstimator {
            extractor,
            kind,
            counts: vec![[0.0; 2]; states],
            state: 0,
            observed: 0,
            ring: std::collections::VecDeque::new(),
            weight: 1.0,
            last_fit: None,
            divergence: None,
            blending: false,
            blend_prior: None,
            counts_at_fit: None,
        })
    }

    /// Enables **confidence-weighted blending** of consecutive fits
    /// (builder style; off by default, which keeps the historical
    /// hard-swap behavior).
    ///
    /// With blending on, each [`Self::fit`] pools the window's counts
    /// with the previous blended fit carried as a pseudo-count prior:
    /// per state, the new window and the prior contribute in proportion
    /// to their **effective sample counts**, so a sparsely observed new
    /// window nudges the deployed model instead of replacing it, while a
    /// full window of fresh evidence dominates. The prior's total mass
    /// is capped at one window's worth, so an old regime still washes
    /// out geometrically (≈ halving per fit at steady state) rather
    /// than lingering forever.
    ///
    /// The [`Self::divergence`] gauge then measures movement of the
    /// *blended* (deployed) model — exactly what an event-driven
    /// controller should threshold.
    #[must_use = "builder methods return the configured estimator; dropping it discards the configuration"]
    pub fn with_blending(mut self) -> Self {
        self.blending = true;
        self
    }

    /// `true` when consecutive fits are confidence-blended (see
    /// [`Self::with_blending`]).
    pub fn blending(&self) -> bool {
        self.blending
    }

    /// The wrapped extractor (memory, smoothing).
    pub fn extractor(&self) -> &SrExtractor {
        &self.extractor
    }

    /// The window discipline.
    pub fn window(&self) -> WindowKind {
        self.kind
    }

    /// Slices observed since construction (or the last [`Self::reset`]).
    pub fn observed(&self) -> u64 {
        self.observed
    }

    /// `true` once at least one transition has been counted, i.e. a
    /// [`Self::fit`] call would succeed.
    pub fn is_ready(&self) -> bool {
        self.observed > u64::from(self.extractor.memory())
    }

    /// Feeds one slice's arrival count (binarized, matching
    /// [`SrExtractor::extract`]): updates the windowed transition counts
    /// and advances the k-bit history in O(1).
    pub fn observe(&mut self, arrivals: u32) {
        let bit = arrivals > 0;
        let k = self.extractor.memory() as usize;
        let mask = self.extractor.num_states() - 1;
        self.observed += 1;
        if self.observed <= k as u64 {
            // Still seeding the history: no transition to count yet.
            self.state = ((self.state << 1) | usize::from(bit)) & mask;
            if let WindowKind::Sliding(_) = self.kind {
                self.ring.push_back(bit);
            }
            return;
        }
        match self.kind {
            WindowKind::Sliding(n) => {
                self.counts[self.state][usize::from(bit)] += 1.0;
                self.ring.push_back(bit);
                if self.ring.len() > n {
                    // The oldest transition (from the history ending at
                    // position k-1 of the ring, shifting in bit k) falls
                    // out of the window: un-count it.
                    let mut old_state = 0usize;
                    for &b in self.ring.iter().take(k) {
                        old_state = ((old_state << 1) | usize::from(b)) & mask;
                    }
                    let old_bit = *self.ring.get(k).expect("ring longer than k");
                    self.counts[old_state][usize::from(old_bit)] -= 1.0;
                    self.counts[old_state][usize::from(old_bit)] =
                        self.counts[old_state][usize::from(old_bit)].max(0.0);
                    self.ring.pop_front();
                }
            }
            WindowKind::Exponential(decay) => {
                // Newest observations weigh more; dividing at fit time by
                // the current weight recovers `decay^age` semantics
                // without sweeping the table every slice.
                self.weight /= decay;
                self.counts[self.state][usize::from(bit)] += self.weight;
                if self.weight > 1e100 {
                    for pair in &mut self.counts {
                        pair[0] /= self.weight;
                        pair[1] /= self.weight;
                    }
                    self.weight = 1.0;
                }
            }
        }
        self.state = ((self.state << 1) | usize::from(bit)) & mask;
    }

    /// Feeds one slice of **raw, untrusted** telemetry: validates it
    /// with [`screen_arrival`] and only then counts it. The window is
    /// untouched when validation fails, so one corrupt slice can never
    /// poison the fitted kernel.
    ///
    /// # Errors
    ///
    /// Propagates [`screen_arrival`] rejections.
    pub fn observe_raw(&mut self, arrivals: f64) -> Result<(), DpmError> {
        self.observe(screen_arrival(arrivals)?);
        Ok(())
    }

    /// Fits the k-memory model to the current window and updates the
    /// [`Self::divergence`] gauge against the previous fit.
    ///
    /// # Errors
    ///
    /// [`DpmError::IncompleteModel`] when no transition has been observed
    /// yet (see [`Self::is_ready`]).
    pub fn fit(&mut self) -> Result<ServiceRequester, DpmError> {
        if !self.is_ready() {
            return Err(DpmError::IncompleteModel {
                reason: format!(
                    "{} observed slices cannot fit a {}-memory model",
                    self.observed,
                    self.extractor.memory()
                ),
            });
        }
        let current: Vec<[f64; 2]> = match self.kind {
            WindowKind::Sliding(_) => self.counts.clone(),
            WindowKind::Exponential(_) => {
                // Normalize so the newest observation counts 1 — the
                // scale cancels in the row normalization but keeps the
                // smoothing constant meaningful.
                self.counts
                    .iter()
                    .map(|pair| [pair[0] / self.weight, pair[1] / self.weight])
                    .collect()
            }
        };
        // Confidence-weighted blend: pool the window with the carried
        // prior — per state, each side weighs in by its effective sample
        // count — then cap the carried mass at one window's worth so old
        // regimes decay geometrically across fits.
        self.counts_at_fit = Some(current.clone());
        let table: Vec<[f64; 2]> = match (&self.blend_prior, self.blending) {
            (Some(prior), true) => current
                .iter()
                .zip(prior)
                .map(|(c, p)| [c[0] + p[0], c[1] + p[1]])
                .collect(),
            _ => current.clone(),
        };
        let fitted = self.extractor.extract_from_counts(&table)?;
        if self.blending {
            let n_new: f64 = current.iter().flatten().sum();
            let n_blend: f64 = table.iter().flatten().sum();
            let scale = if n_blend > n_new && n_blend > 0.0 {
                n_new / n_blend
            } else {
                1.0
            };
            self.blend_prior = Some(table.iter().map(|p| [p[0] * scale, p[1] * scale]).collect());
        }
        let n = self.extractor.num_states();
        let mut flat = Vec::with_capacity(n * n);
        let p = fitted.chain().transition_matrix();
        for s in 0..n {
            for t in 0..n {
                flat.push(p.prob(s, t));
            }
        }
        self.divergence = self.last_fit.as_ref().map(|prev| {
            prev.iter()
                .zip(&flat)
                .map(|(a, b)| (a - b).abs())
                .fold(0.0, f64::max)
        });
        self.last_fit = Some(flat);
        Ok(fitted)
    }

    /// Max-abs transition-probability change between the two most recent
    /// [`Self::fit`] calls — the drift gauge a controller thresholds to
    /// decide whether the model moved enough to justify a re-solve.
    /// `None` until two fits have happened.
    pub fn divergence(&self) -> Option<f64> {
        self.divergence
    }

    /// `true` when the drift between the last two fits exceeds
    /// `threshold` (`false` until two fits exist).
    pub fn has_drifted(&self, threshold: f64) -> bool {
        self.divergence.is_some_and(|d| d > threshold)
    }

    /// Max-abs movement of the windowed per-state transition
    /// probabilities since the most recent [`Self::fit`], computed
    /// **straight off the count table** — no model is built, nothing is
    /// allocated. `None` until a fit exists.
    ///
    /// This is the cheap dirty gauge behind incremental re-fit schemes
    /// (the fleet service's quiet gate): for an unblended estimator it
    /// equals exactly the max-abs divergence a fresh fit would report
    /// against the last one, because every row of the fitted `2^k × 2^k`
    /// chain carries the same two smoothed probabilities the counts
    /// determine. With blending enabled it upper-bounds the deployed
    /// (blended) model's movement — the blend moves strictly less than
    /// the raw window — so skipping below a threshold stays conservative.
    pub fn count_drift(&self) -> Option<f64> {
        let at_fit = self.counts_at_fit.as_ref()?;
        let alpha = self.extractor.smoothing();
        // `counts_at_fit` is stored normalized; normalize the live table
        // the same way (exponential windows carry a running weight).
        let scale = match self.kind {
            WindowKind::Sliding(_) => 1.0,
            WindowKind::Exponential(_) => self.weight,
        };
        let mut worst = 0.0f64;
        for (now, then) in self.counts.iter().zip(at_fit) {
            let (n0, n1) = (now[0] / scale, now[1] / scale);
            let now_total = n0 + n1 + 2.0 * alpha;
            let then_total = then[0] + then[1] + 2.0 * alpha;
            let drift = match (now_total > 0.0, then_total > 0.0) {
                (true, true) => ((n1 + alpha) / now_total - (then[1] + alpha) / then_total).abs(),
                // Both histories unvisited: the inert self-loop on each
                // side, no movement.
                (false, false) => 0.0,
                // A history appeared or vanished from the window: the
                // fitted row flips between data and the self-loop —
                // maximal movement.
                _ => 1.0,
            };
            worst = worst.max(drift);
        }
        Some(worst)
    }

    /// Exports the complete streaming state for checkpointing — see
    /// [`EstimatorState`]. The configuration (extractor, window,
    /// blending) is not included; pair the state with an identically
    /// configured estimator on import.
    pub fn export_state(&self) -> EstimatorState {
        EstimatorState {
            counts: self.counts.clone(),
            state: self.state,
            observed: self.observed,
            ring: self.ring.iter().copied().collect(),
            weight: self.weight,
            last_fit: self.last_fit.clone(),
            divergence: self.divergence,
            blend_prior: self.blend_prior.clone(),
            counts_at_fit: self.counts_at_fit.clone(),
        }
    }

    /// Replaces the streaming state with an exported one — the restore
    /// half of checkpointing. The estimator continues bit-identically
    /// from where the exported one stood.
    ///
    /// # Errors
    ///
    /// [`DpmError::BadConfiguration`] when the state's shapes do not
    /// match this estimator's configuration: wrong count-table or
    /// fit-matrix size, a k-bit history out of range, a ring longer than
    /// a sliding window (or any ring on an exponential one), or a
    /// non-finite/non-positive weight.
    pub fn import_state(&mut self, state: EstimatorState) -> Result<(), DpmError> {
        let n = self.extractor.num_states();
        let mismatch = |reason: String| DpmError::BadConfiguration { reason };
        if state.counts.len() != n {
            return Err(mismatch(format!(
                "estimator state has {} count rows for a {n}-state model",
                state.counts.len()
            )));
        }
        if state.state >= n {
            return Err(mismatch(format!(
                "estimator state history {} out of range for {n} states",
                state.state
            )));
        }
        match self.kind {
            WindowKind::Sliding(limit) => {
                if state.ring.len() > limit {
                    return Err(mismatch(format!(
                        "estimator state ring of {} bits exceeds the {limit}-slice window",
                        state.ring.len()
                    )));
                }
            }
            WindowKind::Exponential(_) => {
                if !state.ring.is_empty() {
                    return Err(mismatch(
                        "estimator state carries a ring but the window is exponential".to_string(),
                    ));
                }
                if !(state.weight.is_finite() && state.weight > 0.0) {
                    return Err(mismatch(format!(
                        "estimator state weight {} is not a positive finite value",
                        state.weight
                    )));
                }
            }
        }
        for (label, table) in [
            ("counts", &Some(state.counts.clone())),
            ("blend prior", &state.blend_prior),
            ("counts at fit", &state.counts_at_fit),
        ] {
            if let Some(table) = table {
                if table.len() != n {
                    return Err(mismatch(format!(
                        "estimator state {label} has {} rows for a {n}-state model",
                        table.len()
                    )));
                }
                // A NaN or negative count smuggled in through a restore
                // would poison every later fit (NaN transition matrix) —
                // reject the state whole instead.
                for (row, pair) in table.iter().enumerate() {
                    for &value in pair {
                        if !value.is_finite() || value < 0.0 {
                            return Err(mismatch(format!(
                                "estimator state {label} row {row} holds the invalid \
                                 count {value}"
                            )));
                        }
                    }
                }
            }
        }
        if let Some(fit) = &state.last_fit {
            if fit.len() != n * n {
                return Err(mismatch(format!(
                    "estimator state fit of {} entries for a {n}x{n} chain",
                    fit.len()
                )));
            }
            if let Some(&bad) = fit.iter().find(|v| !v.is_finite()) {
                return Err(mismatch(format!(
                    "estimator state fit holds the non-finite entry {bad}"
                )));
            }
        }
        self.counts = state.counts;
        self.state = state.state;
        self.observed = state.observed;
        self.ring = state.ring.into_iter().collect();
        self.weight = state.weight;
        self.last_fit = state.last_fit;
        self.divergence = state.divergence;
        self.blend_prior = state.blend_prior;
        self.counts_at_fit = state.counts_at_fit;
        Ok(())
    }

    /// Forgets everything: counts, history, fit memory. The estimator is
    /// back in its freshly constructed state.
    pub fn reset(&mut self) {
        for pair in &mut self.counts {
            *pair = [0.0; 2];
        }
        self.state = 0;
        self.observed = 0;
        self.ring.clear();
        self.weight = 1.0;
        self.last_fit = None;
        self.divergence = None;
        self.blend_prior = None;
        self.counts_at_fit = None;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn feed(estimator: &mut WindowedEstimator, bits: impl IntoIterator<Item = u32>) {
        for b in bits {
            estimator.observe(b);
        }
    }

    #[test]
    fn sliding_window_matches_offline_fit_on_the_window() {
        // After W observations of a stream, the sliding estimator's fit
        // must equal the offline extractor applied to the last W slices
        // (including the k seeding bits).
        let stream: Vec<u32> = (0..200).map(|i| u32::from(i % 5 < 2)).collect();
        let extractor = SrExtractor::new(2).with_smoothing(0.1);
        let mut estimator = WindowedEstimator::new(extractor, WindowKind::Sliding(40)).unwrap();
        feed(&mut estimator, stream.iter().copied());
        let online = estimator.fit().unwrap();
        let offline = extractor.extract(&stream[stream.len() - 40..]).unwrap();
        let (po, pf) = (
            online.chain().transition_matrix(),
            offline.chain().transition_matrix(),
        );
        for s in 0..4 {
            for t in 0..4 {
                assert!(
                    (po.prob(s, t) - pf.prob(s, t)).abs() < 1e-12,
                    "({s},{t}): online {} vs offline {}",
                    po.prob(s, t),
                    pf.prob(s, t)
                );
            }
        }
    }

    #[test]
    fn sliding_window_forgets_the_old_regime() {
        let extractor = SrExtractor::new(1).with_smoothing(0.5);
        let mut estimator = WindowedEstimator::new(extractor, WindowKind::Sliding(50)).unwrap();
        feed(&mut estimator, std::iter::repeat_n(1u32, 200));
        let busy = estimator.fit().unwrap().request_rate().unwrap();
        assert!(busy > 0.9, "busy rate {busy}");
        feed(&mut estimator, std::iter::repeat_n(0u32, 200));
        let idle = estimator.fit().unwrap().request_rate().unwrap();
        assert!(idle < 0.1, "idle rate {idle}");
        assert!(estimator.has_drifted(0.3));
    }

    #[test]
    fn exponential_window_tracks_the_recent_regime() {
        let extractor = SrExtractor::new(1).with_smoothing(0.5);
        let mut estimator =
            WindowedEstimator::new(extractor, WindowKind::Exponential(0.98)).unwrap();
        feed(&mut estimator, std::iter::repeat_n(1u32, 300));
        let busy = estimator.fit().unwrap().request_rate().unwrap();
        feed(&mut estimator, std::iter::repeat_n(0u32, 300));
        let idle = estimator.fit().unwrap().request_rate().unwrap();
        assert!(busy > 0.9 && idle < 0.1, "busy {busy} idle {idle}");
        assert!(estimator.divergence().unwrap() > 0.3);
    }

    #[test]
    fn exponential_renormalization_is_transparent() {
        // Force many renormalizations with a fast decay and check the
        // fitted probabilities stay sane.
        let extractor = SrExtractor::new(1).with_smoothing(0.1);
        let mut a = WindowedEstimator::new(extractor, WindowKind::Exponential(0.5)).unwrap();
        // 0.5^-1 per step: weight doubles, renormalizes every ~333 steps.
        let stream: Vec<u32> = (0..2000).map(|i| (i % 2) as u32).collect();
        feed(&mut a, stream.iter().copied());
        let p = a.fit().unwrap();
        // Alternating stream: P(0→1) and P(1→0) both near 1.
        let t = p.chain().transition_matrix();
        assert!(t.prob(0, 1) > 0.8, "P(0->1) = {}", t.prob(0, 1));
        assert!(t.prob(1, 0) > 0.8, "P(1->0) = {}", t.prob(1, 0));
    }

    #[test]
    fn stationary_stream_has_small_divergence() {
        let extractor = SrExtractor::new(1).with_smoothing(1.0);
        let mut estimator = WindowedEstimator::new(extractor, WindowKind::Sliding(500)).unwrap();
        let stream: Vec<u32> = (0..3000).map(|i| u32::from(i % 4 == 0)).collect();
        let mut worst: f64 = 0.0;
        for (i, &c) in stream.iter().enumerate() {
            estimator.observe(c);
            if i > 600 && i % 200 == 0 {
                estimator.fit().unwrap();
                if let Some(d) = estimator.divergence() {
                    worst = worst.max(d);
                }
            }
        }
        assert!(worst < 0.05, "stationary divergence {worst}");
        assert!(!estimator.has_drifted(0.05));
    }

    #[test]
    fn blending_softens_the_regime_swap() {
        // Hard-swap estimator vs blended twin on the same busy→idle flip:
        // the blended fit must land strictly between the old busy model
        // and the fresh idle fit, and converge to idle after more fits.
        let extractor = SrExtractor::new(1).with_smoothing(0.5);
        let mut hard = WindowedEstimator::new(extractor, WindowKind::Sliding(50)).unwrap();
        let mut soft = WindowedEstimator::new(extractor, WindowKind::Sliding(50))
            .unwrap()
            .with_blending();
        assert!(soft.blending() && !hard.blending());
        // Mixed-density regimes so both histories stay visited: busy =
        // 80% ones, idle = 20% ones.
        let busy_stream = |i: usize| u32::from(i % 5 != 0);
        let idle_stream = |i: usize| u32::from(i % 5 == 0);
        for est in [&mut hard, &mut soft] {
            feed(est, (0..100).map(busy_stream));
        }
        let busy_hard = hard.fit().unwrap().request_rate().unwrap();
        let busy_soft = soft.fit().unwrap().request_rate().unwrap();
        // First fit: nothing to blend with, both see the same window.
        assert!((busy_hard - busy_soft).abs() < 1e-12);
        for est in [&mut hard, &mut soft] {
            feed(est, (0..100).map(idle_stream));
        }
        let idle_hard = hard.fit().unwrap().request_rate().unwrap();
        let idle_soft = soft.fit().unwrap().request_rate().unwrap();
        assert!(idle_hard < 0.3, "hard swap follows the window: {idle_hard}");
        assert!(
            idle_soft > idle_hard + 0.05 && idle_soft < busy_hard - 0.05,
            "blend should sit between regimes: {idle_soft} (hard {idle_hard}, busy {busy_hard})"
        );
        // The blended divergence is the deployed model's movement —
        // strictly smaller than the hard swap's jump.
        assert!(soft.divergence().unwrap() < hard.divergence().unwrap());
        // More idle windows: the prior washes out geometrically.
        let mut rate = idle_soft;
        for round in 1..=6 {
            feed(&mut soft, (0..100).map(idle_stream));
            rate = soft.fit().unwrap().request_rate().unwrap();
            let _ = round;
        }
        assert!(
            (rate - idle_hard).abs() < 0.05,
            "blend converges to the new regime: {rate} vs {idle_hard}"
        );
    }

    #[test]
    fn blending_weighs_by_effective_sample_count() {
        // A full busy window followed by a *short* idle refill after
        // reset-like conditions: the sparse new evidence must move the
        // blend less than a full window would.
        let extractor = SrExtractor::new(1).with_smoothing(0.5);
        let mut soft = WindowedEstimator::new(extractor, WindowKind::Sliding(200))
            .unwrap()
            .with_blending();
        feed(&mut soft, std::iter::repeat_n(1u32, 200));
        let busy = soft.fit().unwrap().request_rate().unwrap();
        // Only 20 idle slices trickle in before the next fit: the window
        // still holds 180 busy slices, and the prior holds a full busy
        // window — the blend barely moves.
        feed(&mut soft, std::iter::repeat_n(0u32, 20));
        let barely = soft.fit().unwrap().request_rate().unwrap();
        assert!(busy - barely < 0.15, "busy {busy} vs {barely}");
        // Reset wipes the prior along with the counts.
        soft.reset();
        feed(&mut soft, std::iter::repeat_n(0u32, 200));
        let idle = soft.fit().unwrap().request_rate().unwrap();
        assert!(idle < 0.1, "post-reset fit is unblended: {idle}");
    }

    #[test]
    fn not_ready_until_a_transition_exists() {
        let mut estimator =
            WindowedEstimator::new(SrExtractor::new(3), WindowKind::Sliding(10)).unwrap();
        feed(&mut estimator, [1, 0, 1]);
        assert!(!estimator.is_ready());
        assert!(estimator.fit().is_err());
        estimator.observe(1);
        assert!(estimator.is_ready());
        assert!(estimator.fit().is_ok());
        assert_eq!(estimator.divergence(), None);
    }

    #[test]
    fn reset_restores_the_initial_state() {
        let mut estimator =
            WindowedEstimator::new(SrExtractor::new(1), WindowKind::Sliding(10)).unwrap();
        feed(&mut estimator, [1, 1, 0, 1]);
        estimator.fit().unwrap();
        estimator.reset();
        assert_eq!(estimator.observed(), 0);
        assert!(!estimator.is_ready());
        assert_eq!(estimator.divergence(), None);
    }

    #[test]
    fn count_drift_tracks_movement_since_the_last_fit() {
        let extractor = SrExtractor::new(1).with_smoothing(0.5);
        let mut estimator = WindowedEstimator::new(extractor, WindowKind::Sliding(64)).unwrap();
        assert_eq!(estimator.count_drift(), None, "no fit yet");
        feed(&mut estimator, (0..64).map(|i| u32::from(i % 4 == 0)));
        estimator.fit().unwrap();
        assert_eq!(estimator.count_drift(), Some(0.0), "nothing moved yet");
        // A periodic stream whose period divides the window: after one
        // more full period the window counts are identical again.
        feed(&mut estimator, (0..4).map(|i| u32::from(i % 4 == 0)));
        assert_eq!(
            estimator.count_drift(),
            Some(0.0),
            "periodic refill leaves counts unchanged"
        );
        // A regime flip moves the counts a lot.
        feed(&mut estimator, std::iter::repeat_n(1u32, 64));
        assert!(estimator.count_drift().unwrap() > 0.3);
        // For an unblended estimator the count gauge must equal the
        // divergence a real fit reports.
        let drift = estimator.count_drift().unwrap();
        estimator.fit().unwrap();
        let divergence = estimator.divergence().unwrap();
        assert!(
            (drift - divergence).abs() < 1e-12,
            "count drift {drift} vs fit divergence {divergence}"
        );
    }

    #[test]
    fn exported_state_round_trips_bit_identically() {
        let extractor = SrExtractor::new(2).with_smoothing(0.5);
        let build = || {
            WindowedEstimator::new(extractor, WindowKind::Sliding(40))
                .unwrap()
                .with_blending()
        };
        let mut original = build();
        feed(&mut original, (0..100).map(|i| u32::from(i % 3 == 0)));
        original.fit().unwrap();
        feed(&mut original, (0..25).map(|i| u32::from(i % 2 == 0)));
        original.fit().unwrap();
        feed(&mut original, [1, 1, 0]);

        let mut restored = build();
        restored.import_state(original.export_state()).unwrap();
        assert_eq!(restored.observed(), original.observed());
        assert_eq!(restored.divergence(), original.divergence());
        assert_eq!(restored.count_drift(), original.count_drift());
        // Continue both with the same stream: fits stay bit-identical.
        for est in [&mut original, &mut restored] {
            feed(est, (0..30).map(|i| u32::from(i % 5 < 2)));
        }
        let (a, b) = (original.fit().unwrap(), restored.fit().unwrap());
        let (pa, pb) = (a.chain().transition_matrix(), b.chain().transition_matrix());
        for s in 0..4 {
            for t in 0..4 {
                assert!(
                    pa.prob(s, t).to_bits() == pb.prob(s, t).to_bits(),
                    "({s},{t}) differs after restore"
                );
            }
        }
        assert_eq!(original.divergence(), restored.divergence());
    }

    #[test]
    fn import_rejects_mismatched_state_shapes() {
        let mut estimator =
            WindowedEstimator::new(SrExtractor::new(1), WindowKind::Sliding(8)).unwrap();
        let good = estimator.export_state();
        let mut bad = good.clone();
        bad.counts = vec![[0.0; 2]; 4];
        assert!(estimator.import_state(bad).is_err(), "wrong count rows");
        let mut bad = good.clone();
        bad.state = 9;
        assert!(estimator.import_state(bad).is_err(), "history out of range");
        let mut bad = good.clone();
        bad.ring = vec![true; 9];
        assert!(estimator.import_state(bad).is_err(), "ring too long");
        let mut bad = good.clone();
        bad.last_fit = Some(vec![0.5; 3]);
        assert!(estimator.import_state(bad).is_err(), "fit wrong size");
        let mut exponential =
            WindowedEstimator::new(SrExtractor::new(1), WindowKind::Exponential(0.9)).unwrap();
        let mut bad = good.clone();
        bad.ring = vec![true];
        assert!(
            exponential.import_state(bad).is_err(),
            "ring on an exponential window"
        );
        let mut bad = good;
        bad.weight = f64::NAN;
        assert!(exponential.import_state(bad).is_err(), "bad weight");
    }

    #[test]
    fn poisoned_telemetry_cannot_reach_a_fit() {
        // Regression guard for the ingest boundary: no sequence of
        // hostile raw observations or tampered state may ever produce a
        // transition matrix with a non-finite entry.
        let mut estimator =
            WindowedEstimator::new(SrExtractor::new(1), WindowKind::Sliding(16)).unwrap();
        feed(&mut estimator, (0..40).map(|i| u32::from(i % 3 == 0)));
        let clean = estimator.export_state();

        for raw in [
            f64::NAN,
            f64::INFINITY,
            f64::NEG_INFINITY,
            -1.0,
            2.5,
            f64::from(u32::MAX) * 2.0,
        ] {
            assert!(screen_arrival(raw).is_err(), "{raw} must be screened out");
            assert!(estimator.observe_raw(raw).is_err());
        }
        assert!(screen_arrivals(&[1.0, 0.0, f64::NAN, 3.0]).is_err());
        // Rejected observations must not have touched the window.
        assert_eq!(estimator.export_state(), clean);

        let mut bad = clean.clone();
        bad.counts[0][1] = f64::NAN;
        assert!(estimator.import_state(bad).is_err(), "NaN count");
        let mut bad = clean.clone();
        bad.counts[1][0] = -3.0;
        assert!(estimator.import_state(bad).is_err(), "negative count");
        let mut bad = clean.clone();
        bad.last_fit = Some(vec![f64::NAN; 4]);
        assert!(estimator.import_state(bad).is_err(), "NaN fit baseline");

        // After every rejection the estimator still fits finitely.
        estimator.observe_raw(1.0).unwrap();
        let sr = estimator.fit().unwrap();
        let p = sr.chain().transition_matrix();
        for s in 0..2 {
            for t in 0..2 {
                assert!(p.prob(s, t).is_finite(), "({s},{t}) non-finite");
            }
        }
    }

    #[test]
    fn bad_configurations_are_rejected() {
        assert!(WindowedEstimator::new(SrExtractor::new(3), WindowKind::Sliding(3)).is_err());
        assert!(WindowedEstimator::new(SrExtractor::new(1), WindowKind::Exponential(1.0)).is_err());
        assert!(WindowedEstimator::new(SrExtractor::new(1), WindowKind::Exponential(0.0)).is_err());
        assert!(
            WindowedEstimator::new(SrExtractor::new(1), WindowKind::Exponential(f64::NAN)).is_err()
        );
    }
}
