//! Behavioral tests of the closed adaptation loop on the drifting
//! scenario: warm per-epoch re-solves, drift gating, infeasibility
//! fallback, and reset/reproducibility.

use dpm_core::{DpmError, SolverKind};
use dpm_lp::ReloadKind;
use dpm_runtime::{AdaptiveConfig, AdaptiveController};
use dpm_sim::{SimConfig, SimStats, Simulator};
use dpm_systems::drifting;
use dpm_trace::{KMemoryTracker, WindowKind};

fn scenario_config() -> AdaptiveConfig {
    AdaptiveConfig::new()
        .epoch_slices(drifting::EPOCH_SLICES)
        .window(WindowKind::Sliding(2 * drifting::EPOCH_SLICES as usize))
        .memory(drifting::MEMORY)
        .smoothing(drifting::SMOOTHING)
        .horizon(drifting::HORIZON)
        .max_performance_penalty(drifting::QUEUE_BOUND)
        .max_request_loss_rate(drifting::LOSS_BOUND)
}

fn run(controller: &mut AdaptiveController, trace: &[u32], seed: u64) -> SimStats {
    let system = drifting::blended_system(7).expect("blended system composes");
    let sim = Simulator::new(
        &system,
        SimConfig::new(trace.len() as u64)
            .seed(seed)
            .restart_probability(1.0 / drifting::HORIZON),
    );
    let mut tracker = KMemoryTracker::new(drifting::MEMORY).tracker();
    sim.run_trace(controller, trace, &mut tracker)
        .expect("simulates")
}

#[test]
fn every_epoch_reloads_warm_with_few_pivots() {
    let system = drifting::blended_system(7).unwrap();
    let mut controller = AdaptiveController::new(&system, scenario_config()).unwrap();
    let trace = drifting::workload(60_000, 7);
    run(&mut controller, &trace, 13);
    let epochs = controller.epochs();
    assert!(epochs.len() >= 25, "only {} epochs", epochs.len());
    assert_eq!(controller.cold_reloads(), 0, "cold reload crept in");
    assert_eq!(controller.warm_reloads(), epochs.len());
    for e in epochs {
        assert_eq!(e.reload, Some(ReloadKind::Warm), "epoch {}", e.epoch);
        let report = e.report.as_ref().expect("refreshed epochs carry reports");
        assert!(report.warm_start, "epoch {}", e.epoch);
        // Warm repairs are a handful of pivots; cold solves of this LP
        // take ~15-25. The gap is the whole point.
        assert!(
            report.iterations <= 8,
            "epoch {}: {} pivots is not a warm repair",
            e.epoch,
            report.iterations
        );
        assert!(!e.infeasible, "epoch {} infeasible", e.epoch);
        assert!(e.error.is_none(), "epoch {}: {:?}", e.epoch, e.error);
        // Every per-epoch solve respects the constraint under its model.
        let perf = e.performance_per_slice.expect("solved epochs predict");
        assert!(
            perf <= drifting::QUEUE_BOUND + 1e-6,
            "epoch {}: predicted queue {perf}",
            e.epoch
        );
    }
}

#[test]
fn drift_gate_skips_stationary_epochs() {
    // On a *stationary* workload with a high divergence threshold, the
    // controller should re-solve the first epoch and skip the rest.
    let system = drifting::blended_system(7).unwrap();
    let mut controller =
        AdaptiveController::new(&system, scenario_config().min_divergence(0.2)).unwrap();
    let trace = dpm_trace::generators::BurstyTraceGenerator::new(0.05, 0.8)
        .seed(3)
        .generate(30_000);
    run(&mut controller, &trace, 17);
    let epochs = controller.epochs();
    assert!(epochs.len() >= 12);
    assert!(
        controller.skipped_epochs() >= epochs.len() - 2,
        "{} of {} epochs skipped",
        controller.skipped_epochs(),
        epochs.len()
    );
    // Skipped epochs still record the fit and its (small) divergence.
    for e in &epochs[2..] {
        if !e.refreshed {
            assert!(e.divergence.expect("later fits have divergence") < 0.2);
            assert!(e.report.is_none());
        }
    }
}

#[test]
fn resolve_cooldown_holds_the_policy_between_events() {
    // With a zero drift threshold every epoch wants to re-solve; the
    // cooldown turns that into at most one re-solve per (cooldown + 1)
    // epochs, while the fits keep happening.
    let system = drifting::blended_system(7).unwrap();
    let mut controller =
        AdaptiveController::new(&system, scenario_config().resolve_cooldown(2)).unwrap();
    let trace = drifting::workload(30_000, 7);
    run(&mut controller, &trace, 31);
    let epochs = controller.epochs();
    assert!(epochs.len() >= 12);
    let refreshed: Vec<u64> = epochs
        .iter()
        .filter(|e| e.refreshed)
        .map(|e| e.epoch)
        .collect();
    assert!(!refreshed.is_empty());
    assert!(
        refreshed.len() <= epochs.len().div_ceil(3),
        "{} re-solves over {} epochs beats the cooldown",
        refreshed.len(),
        epochs.len()
    );
    for pair in refreshed.windows(2) {
        assert!(
            pair[1] - pair[0] >= 3,
            "re-solves at epochs {} and {} violate the cooldown",
            pair[0],
            pair[1]
        );
    }
    // Held epochs still fit and gauge the drift.
    for e in epochs.iter().filter(|e| !e.refreshed) {
        assert!(e.report.is_none());
        assert!(e.divergence.is_some() || e.epoch == 0);
    }
}

#[test]
fn blended_fits_move_less_per_epoch_than_hard_fits() {
    // Confidence-weighted blending damps the epoch-to-epoch movement of
    // the deployed model on the same drifting trace.
    let system = drifting::blended_system(7).unwrap();
    let trace = drifting::workload(60_000, 7);
    let mut hard = AdaptiveController::new(&system, scenario_config()).unwrap();
    run(&mut hard, &trace, 37);
    let mut soft = AdaptiveController::new(&system, scenario_config().blend_fits()).unwrap();
    run(&mut soft, &trace, 37);
    let total =
        |c: &AdaptiveController| c.epochs().iter().filter_map(|e| e.divergence).sum::<f64>();
    assert_eq!(hard.epochs().len(), soft.epochs().len());
    let (hard_move, soft_move) = (total(&hard), total(&soft));
    assert!(
        soft_move < hard_move,
        "blended movement {soft_move} should undercut hard movement {hard_move}"
    );
    // Blending still adapts: the loop keeps re-solving warm throughout.
    assert_eq!(soft.cold_reloads(), 0);
    assert!(soft.warm_reloads() > 0);
}

#[test]
fn infeasible_epochs_fall_back_and_recover() {
    // A bound below the heavy regime's queue floor (~0.79) but above the
    // light regime's (~0.015): heavy epochs go infeasible and drive the
    // fallback, light epochs recover a solved policy.
    let system = drifting::blended_system(7).unwrap();
    let config = scenario_config()
        .max_performance_penalty(0.4)
        .max_request_loss_rate(1.0);
    let mut controller = match AdaptiveController::new(&system, config) {
        Ok(c) => c,
        // The blended model itself may already be infeasible at 0.4;
        // loosen to build, then tighten? No — the blend sits near 0.35
        // load and is feasible at 0.4 in practice.
        Err(e) => panic!("blended model infeasible at 0.4: {e}"),
    };
    let trace = drifting::workload(100_000, 7);
    run(&mut controller, &trace, 19);
    let infeasible = controller.epochs().iter().filter(|e| e.infeasible).count();
    let solved = controller
        .epochs()
        .iter()
        .filter(|e| e.report.is_some() && !e.infeasible)
        .count();
    assert!(infeasible >= 5, "only {infeasible} infeasible epochs");
    assert!(solved >= 5, "only {solved} solved epochs");
    // The run survived end to end and kept producing decisions.
    assert!(controller.epochs().len() >= 45);
}

#[test]
fn reset_makes_runs_reproducible() {
    let system = drifting::blended_system(7).unwrap();
    let mut controller = AdaptiveController::new(&system, scenario_config()).unwrap();
    let trace = drifting::workload(20_000, 7);
    let first = run(&mut controller, &trace, 23);
    let first_epochs = controller.epochs().len();
    // Same controller, same trace, same seed: reset() must restore the
    // initial policy and estimator so the rerun is bit-identical.
    let second = run(&mut controller, &trace, 23);
    assert_eq!(first, second);
    assert_eq!(controller.epochs().len(), first_epochs);
}

#[test]
fn non_default_engines_run_the_loop_cold_but_correct() {
    for kind in [SolverKind::Simplex, SolverKind::InteriorPoint] {
        let system = drifting::blended_system(7).unwrap();
        let mut controller =
            AdaptiveController::new(&system, scenario_config().solver(kind)).unwrap();
        let trace = drifting::workload(12_000, 7);
        run(&mut controller, &trace, 29);
        assert!(controller.epochs().len() >= 5, "{kind:?}");
        assert_eq!(controller.warm_reloads(), 0, "{kind:?}");
        assert_eq!(
            controller.cold_reloads(),
            controller.epochs().len(),
            "{kind:?}"
        );
        for e in controller.epochs() {
            assert!(
                e.report.is_some() && !e.infeasible,
                "{kind:?} epoch {}",
                e.epoch
            );
        }
    }
}

#[test]
fn out_of_range_fallback_command_is_rejected() {
    let system = drifting::blended_system(7).unwrap(); // 2 commands
    let err = AdaptiveController::new(&system, scenario_config().infeasible_fallback_command(5))
        .unwrap_err();
    assert!(matches!(err, DpmError::BadConfiguration { .. }));
}

#[test]
fn mismatched_memory_is_rejected() {
    let system = drifting::blended_system(7).unwrap(); // 2-state SR
    let err = AdaptiveController::new(&system, scenario_config().memory(3)).unwrap_err();
    assert!(matches!(err, DpmError::BadConfiguration { .. }));
}
