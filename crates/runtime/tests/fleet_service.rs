//! Acceptance tests of the fleet **service** runtime: device churn,
//! the incremental divergence gauge on the correlated rack scenario,
//! and bit-identical checkpoint/restore.
//!
//! The checkpoint property test forks LP sessions concurrently with
//! the fleet's own worker pool; CI runs this suite in the serialized
//! fleet job (`RUST_TEST_THREADS=1`) like the other fleet tests.

use dpm_runtime::service::ClassId;
use dpm_runtime::{
    AdaptiveConfig, DeviceId, FleetConfig, FleetReport, FleetService, SnapshotError,
};
use dpm_systems::racks::{self, RackSchedule};
use dpm_trace::WindowKind;

/// The scenario fleet configuration: quiet gate at exactly zero (the
/// rack patterns repeat bit-identically on calm epochs, so zero drift
/// is achievable, not just approachable).
fn config() -> FleetConfig {
    FleetConfig::new()
        .adaptive(
            AdaptiveConfig::new()
                .memory(racks::MEMORY)
                .smoothing(racks::SMOOTHING)
                .horizon(2_000.0)
                .window(WindowKind::Sliding(2 * racks::EPOCH_SLICES)),
        )
        .cluster_divergence(0.1)
        .resolve_divergence(0.05)
        .quiet_divergence(0.0)
}

/// A service with one rack-scenario class and `count` devices.
fn service_with(count: usize) -> (FleetService, ClassId) {
    let mut service = FleetService::new(config());
    let class = service
        .register_class(&racks::system().expect("system composes"))
        .expect("class registers");
    for _ in 0..count {
        service.add_device(class).expect("device adds");
    }
    (service, class)
}

/// Pairs the schedule's epoch streams with the service's current ids,
/// positionally. Devices beyond the schedule width idle (empty
/// stream); schedule columns beyond the fleet are dropped.
fn epoch_pairs(
    schedule: &RackSchedule,
    ids: &[DeviceId],
    epoch: usize,
) -> Vec<(DeviceId, Vec<u32>)> {
    schedule
        .epoch_arrivals(epoch)
        .into_iter()
        .zip(ids.iter())
        .map(|(stream, &id)| (id, stream))
        .collect()
}

fn run_schedule_epoch(
    service: &mut FleetService,
    schedule: &RackSchedule,
    epoch: usize,
) -> FleetReport {
    let ids = service.device_ids().to_vec();
    let pairs = epoch_pairs(schedule, &ids, epoch);
    service.run_epoch(&pairs).expect("epoch runs")
}

// ---------------------------------------------------------------------
// Incremental gauge on the correlated scenario.

#[test]
fn quiet_epochs_skip_at_least_90_percent_of_gauge_recomputations() {
    let schedule = RackSchedule::new();
    let (mut service, _) = service_with(schedule.devices());
    let epochs = 3 * racks::CALM_EPOCHS;
    let (mut calm_skips, mut calm_refits) = (0usize, 0usize);
    for epoch in 0..epochs {
        let report = run_schedule_epoch(&mut service, &schedule, epoch);
        // "Calm phase": the regime held for the whole estimator window
        // (two epochs), and the warmup fits (epochs 0-1) are over.
        let window_calm =
            !schedule.is_shift_epoch(epoch) && (epoch == 0 || !schedule.is_shift_epoch(epoch - 1));
        if epoch >= 2 && window_calm {
            calm_skips += report.gauge_skips;
            calm_refits += report.gauge_refits;
        }
        if epoch >= 2 && schedule.is_shift_epoch(epoch) {
            assert!(
                report.gauge_refits >= racks::DEVICES_PER_RACK,
                "epoch {epoch}: a correlated shift must refit the shifted rack, \
                 saw {} refits",
                report.gauge_refits
            );
        }
    }
    let total = calm_skips + calm_refits;
    assert!(total > 0, "the schedule must contain calm-phase epochs");
    assert!(
        calm_skips * 10 >= total * 9,
        "calm phases skipped only {calm_skips} of {total} gauge recomputations"
    );
}

#[test]
fn correlated_shift_evicts_and_rehomes_a_whole_rack() {
    let schedule = RackSchedule::new();
    let (mut service, _) = service_with(schedule.devices());
    let mut max_evictions = 0usize;
    for epoch in 0..2 * racks::CALM_EPOCHS {
        let report = run_schedule_epoch(&mut service, &schedule, epoch);
        max_evictions = max_evictions.max(report.evictions);
        assert_eq!(report.cold_reloads, 0, "epoch {epoch} reloaded cold");
    }
    assert!(
        max_evictions >= racks::DEVICES_PER_RACK,
        "a whole-rack shift should evict the rack together, saw {max_evictions}"
    );
    // During the surge block the shifted rack lives in its own cluster.
    let ids = service.device_ids();
    let surged = service.cluster_of(ids[0]).expect("surged device clusters");
    let calm = service
        .cluster_of(ids[racks::DEVICES_PER_RACK])
        .expect("calm device clusters");
    assert_ne!(surged, calm, "surged rack must be re-homed apart");
}

// ---------------------------------------------------------------------
// Churn.

#[test]
fn devices_join_an_empty_fleet_and_the_last_removal_gcs_the_cluster() {
    let (mut service, class) = service_with(0);
    assert_eq!((service.devices(), service.clusters()), (0, 0));
    // An empty fleet still runs (vacuous) epochs.
    let report = service.run_epoch(&[]).expect("empty epoch");
    assert_eq!(report.devices, 0);
    let id = service.add_device(class).expect("first device");
    let calm: Vec<u32> = (0..racks::EPOCH_SLICES)
        .map(|i| u32::from(i % racks::CALM.1 < racks::CALM.0))
        .collect();
    for _ in 0..2 {
        service
            .run_epoch(&[(id, calm.clone())])
            .expect("epoch runs");
    }
    assert_eq!(service.clusters(), 1, "lone device founds its cluster");
    assert!(service.cluster_of(id).is_some());
    // Removing the cluster's last member garbage-collects it.
    service.remove_device(id).expect("removes");
    assert_eq!((service.devices(), service.clusters()), (0, 0));
}

#[test]
fn removed_ids_are_retired_and_re_adding_yields_a_fresh_one() {
    let (mut service, class) = service_with(2);
    let ids = service.device_ids().to_vec();
    service.remove_device(ids[0]).expect("removes");
    assert!(!service.contains(ids[0]));
    assert!(service.policy(ids[0]).is_none());
    assert!(
        service.remove_device(ids[0]).is_err(),
        "double removal is rejected"
    );
    let fresh = service.add_device(class).expect("re-adds");
    assert_ne!(fresh, ids[0], "ids are never reused");
    assert!(fresh > ids[1], "ids allocate monotonically");
    // The retired id stays unaddressable forever.
    let err = service
        .run_epoch(&[(ids[0], vec![0, 1])])
        .expect_err("retired id in arrivals");
    assert!(matches!(err, dpm_core::DpmError::BadConfiguration { .. }));
    let err = service
        .run_epoch(&[(fresh, vec![0]), (fresh, vec![1])])
        .expect_err("duplicate id in arrivals");
    assert!(matches!(err, dpm_core::DpmError::BadConfiguration { .. }));
}

#[test]
fn churn_never_triggers_a_full_fleet_re_prepare() {
    let schedule = RackSchedule::new();
    let (mut service, class) = service_with(schedule.devices());
    // Reach the calm steady state: everything clustered, gate holding.
    for epoch in 0..3 {
        run_schedule_epoch(&mut service, &schedule, epoch);
    }
    let solves_before = service.controller().total_solves();
    // Churn a batch: 4 joins and 2 removals, mid-flight.
    let mut joined = Vec::new();
    for _ in 0..4 {
        joined.push(service.add_device(class).expect("adds"));
    }
    let victims = [service.device_ids()[3], service.device_ids()[11]];
    for v in victims {
        service.remove_device(v).expect("removes");
    }
    // The joiners fit the calm pattern and must slot into the existing
    // calm cluster without a single new prepare or even a re-solve —
    // the report's counters are the assertion.
    for epoch in 3..6 {
        let ids = service.device_ids().to_vec();
        let mut pairs = epoch_pairs(&schedule, &ids, epoch);
        let calm: Vec<u32> = (0..racks::EPOCH_SLICES)
            .map(|i| u32::from(i % racks::CALM.1 < racks::CALM.0))
            .collect();
        for &id in &joined {
            if !pairs.iter().any(|(p, _)| *p == id) {
                pairs.push((id, calm.clone()));
            }
        }
        let report = service.run_epoch(&pairs).expect("epoch runs");
        assert_eq!(report.cold_reloads, 0, "epoch {epoch}: cold reload");
        assert!(
            report.symbolic_reuses >= report.solves,
            "epoch {epoch}: a solve re-analyzed its basis symbolically"
        );
        assert!(
            report.solves <= service.clusters(),
            "epoch {epoch}: more solves than clusters"
        );
    }
    assert!(
        service.controller().total_solves() <= solves_before + 2,
        "churn caused a solve storm: {} solves after churn vs {} before",
        service.controller().total_solves(),
        solves_before
    );
    for &id in &joined {
        assert!(
            service.cluster_of(id).is_some(),
            "joiner {id} never clustered"
        );
    }
}

// ---------------------------------------------------------------------
// Checkpoint / restore.

/// A tiny deterministic xorshift for the property test's churn choices.
struct XorShift(u64);

impl XorShift {
    fn next(&mut self) -> u64 {
        self.0 ^= self.0 << 13;
        self.0 ^= self.0 >> 7;
        self.0 ^= self.0 << 17;
        self.0
    }
}

/// Property: **any** reachable fleet state → checkpoint → restore into
/// a fresh service → the snapshot round-trips bit-identically and the
/// next epochs' reports are bit-identical to the uninterrupted run's.
/// States are sampled by running 1–10 epochs of the rack schedule with
/// random churn interleaved, across seeds — covering pre-warmup
/// states, mid-surge states (post-restore epochs that re-solve) and
/// deep-calm states (post-restore epochs that skip everything).
#[test]
fn checkpoint_restore_roundtrips_bit_identically() {
    let schedule = RackSchedule::new();
    for seed in 0..6u64 {
        let mut rng = XorShift(seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1);
        let (mut service, class) = service_with(schedule.devices());
        let epochs = 1 + (rng.next() % 10) as usize;
        for epoch in 0..epochs {
            match rng.next() % 4 {
                0 if service.devices() > 4 => {
                    let ids = service.device_ids().to_vec();
                    let victim = ids[rng.next() as usize % ids.len()];
                    service.remove_device(victim).expect("removes");
                }
                1 => {
                    service.add_device(class).expect("adds");
                }
                _ => {}
            }
            run_schedule_epoch(&mut service, &schedule, epoch);
        }

        let mut snapshot = Vec::new();
        service.checkpoint(&mut snapshot).expect("checkpoints");
        let (mut restored, _) = service_with(0);
        let report = restored
            .restore(&mut snapshot.as_slice())
            .expect("restores");
        assert_eq!(report.devices, service.devices(), "seed {seed}");
        assert_eq!(report.clusters, service.clusters(), "seed {seed}");
        assert_eq!(
            report.cold_reloads, 0,
            "seed {seed}: restore replayed a cold solve"
        );
        assert!(
            report.replayed_solves <= report.clusters,
            "seed {seed}: cold-solve storm ({} replays for {} clusters)",
            report.replayed_solves,
            report.clusters
        );
        assert_eq!(restored.device_ids(), service.device_ids(), "seed {seed}");
        assert_eq!(restored.epoch(), service.epoch(), "seed {seed}");

        // A re-checkpoint of the restored service is byte-identical.
        let mut again = Vec::new();
        restored.checkpoint(&mut again).expect("re-checkpoints");
        assert_eq!(snapshot, again, "seed {seed}: snapshot not idempotent");

        // The continuation is bit-identical, epoch by epoch — including
        // epochs that cross a correlated shift and re-solve.
        for epoch in epochs..epochs + racks::CALM_EPOCHS {
            let ids = service.device_ids().to_vec();
            let pairs = epoch_pairs(&schedule, &ids, epoch);
            let original = service.run_epoch(&pairs).expect("original continues");
            let resumed = restored.run_epoch(&pairs).expect("restored continues");
            assert_eq!(
                original, resumed,
                "seed {seed}: reports diverge at epoch {epoch}"
            );
        }
        for &id in service.device_ids() {
            assert_eq!(
                service.policy(id).map(|p| (**p).clone()),
                restored.policy(id).map(|p| (**p).clone()),
                "seed {seed}: {id} serves a different policy after restore"
            );
        }
    }
}

#[test]
fn restore_rejects_garbage_truncation_and_mismatched_services() {
    let schedule = RackSchedule::new();
    let (mut service, _) = service_with(8);
    for epoch in 0..2 {
        run_schedule_epoch(&mut service, &schedule, epoch);
    }
    let mut snapshot = Vec::new();
    service.checkpoint(&mut snapshot).expect("checkpoints");

    // Garbage magic.
    let (mut target, _) = service_with(0);
    let err = target
        .restore(&mut b"NOTAFLEETSNAPSHOT".as_slice())
        .expect_err("garbage must be rejected");
    assert!(matches!(err, SnapshotError::Format { .. }), "{err}");

    // Truncation anywhere in the stream.
    for cut in [4, 11, snapshot.len() / 2, snapshot.len() - 1] {
        let err = target
            .restore(&mut &snapshot[..cut])
            .expect_err("truncated snapshot must be rejected");
        assert!(
            matches!(
                err,
                SnapshotError::Io(_)
                    | SnapshotError::Format { .. }
                    | SnapshotError::Truncated { .. }
                    | SnapshotError::ChecksumMismatch { .. }
            ),
            "cut at {cut}: {err}"
        );
    }
    assert_eq!(target.devices(), 0, "failed restores must not mutate");

    // A service with different classes registered.
    let mut mismatched = FleetService::new(config());
    let err = mismatched
        .restore(&mut snapshot.as_slice())
        .expect_err("class-less service must be rejected");
    assert!(matches!(err, SnapshotError::Mismatch { .. }), "{err}");

    // The round trip itself still works on the matching target.
    target.restore(&mut snapshot.as_slice()).expect("restores");
    assert_eq!(target.devices(), 8);
}
