//! Fault-containment acceptance tests: the escalation ladder under
//! seeded solver faults, device quarantine and probation, telemetry
//! poisoning at the ingest boundary, and checkpoint fuzzing.
//!
//! The [`dpm_lp::fault`] registry is process-global, so every test in
//! this binary takes the file-local mutex; CI additionally runs the
//! whole binary with `RUST_TEST_THREADS=1`.

use std::sync::{Mutex, MutexGuard};

use dpm_core::ServiceRequester;
use dpm_lp::fault::{self, FaultPlan};
use dpm_runtime::service::ClassId;
use dpm_runtime::{
    AdaptiveConfig, AdaptiveController, DeviceHealth, DeviceId, FleetConfig, FleetService,
    LadderRung, SnapshotError,
};
use dpm_systems::drifting;
use dpm_trace::WindowKind;

static LOCK: Mutex<()> = Mutex::new(());

/// Serializes fault-plan tests; a panicked holder must not wedge the
/// rest of the binary, so poisoning is shrugged off.
fn serialized() -> MutexGuard<'static, ()> {
    LOCK.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
}

fn adaptive() -> AdaptiveConfig {
    // The performance bounds matter: the constrained LP is what makes
    // warm repairs pivot, and a solve must pivot for a per-pivot fault
    // plan to have any event to perturb.
    AdaptiveConfig::new()
        .memory(1)
        .smoothing(0.5)
        .horizon(2_000.0)
        .max_performance_penalty(drifting::QUEUE_BOUND)
        .max_request_loss_rate(drifting::LOSS_BOUND)
        .window(WindowKind::Sliding(400))
}

fn fleet_config() -> FleetConfig {
    FleetConfig::new()
        .adaptive(adaptive())
        .cluster_divergence(0.1)
        .resolve_divergence(0.05)
}

/// A service over the drifting scenario's class with `count` devices.
fn service_with(config: FleetConfig, count: usize) -> (FleetService, ClassId) {
    let system =
        drifting::system_for(ServiceRequester::two_state(0.1, 0.6).expect("valid two-state SR"))
            .expect("system composes");
    let mut service = FleetService::new(config);
    let class = service.register_class(&system).expect("class registers");
    for _ in 0..count {
        service.add_device(class).expect("device adds");
    }
    (service, class)
}

/// Deterministic periodic arrival pattern: `density` of every `period`
/// slices carry a request.
fn pattern(len: usize, offset: usize, density: usize, period: usize) -> Vec<u32> {
    (0..len)
        .map(|i| u32::from((i + offset) % period < density))
        .collect()
}

/// The same pattern as raw `f64` telemetry.
fn telemetry_pattern(len: usize, offset: usize, density: usize, period: usize) -> Vec<f64> {
    pattern(len, offset, density, period)
        .into_iter()
        .map(f64::from)
        .collect()
}

/// Per-device epoch arrivals cycling through four regimes, so every
/// epoch re-fits, evicts and re-solves somewhere in the fleet — a
/// steady supply of pivoting solves for the fault plan to perturb.
fn epoch_arrivals(service: &FleetService, epoch: usize) -> Vec<(DeviceId, Vec<u32>)> {
    const DENSITIES: [usize; 4] = [1, 5, 6, 8];
    service
        .device_ids()
        .iter()
        .enumerate()
        .map(|(d, &id)| {
            let density = DENSITIES[(epoch + d) % DENSITIES.len()];
            (id, pattern(400, d, density, 8))
        })
        .collect()
}

/// Arrivals alternating between two regimes that are each far enough
/// from the class base that a fresh fork's warm solve needs more
/// pivots than the escalation ladder can absorb under a total
/// exhaust-budget fault — so every epoch's solve holds, and the holds
/// land on a freshly forked session each time (the regime swing also
/// evicts and re-homes the device every epoch).
fn unsolvable_arrivals(id: DeviceId, epoch: usize) -> Vec<(DeviceId, Vec<u32>)> {
    let density = if epoch % 2 == 0 { 6 } else { 8 };
    vec![(id, pattern(400, 0, density, 8))]
}

/// Every device's served policy must be a finite distribution per row.
fn assert_policies_valid(service: &FleetService) {
    for &id in service.device_ids() {
        let policy = service.policy(id).expect("every device serves a policy");
        for (s, row) in policy.decisions().iter().enumerate() {
            let sum: f64 = row.iter().sum();
            assert!(
                row.iter().all(|p| p.is_finite() && *p >= 0.0),
                "{id} state {s}: non-finite or negative probability in {row:?}"
            );
            assert!(
                (sum - 1.0).abs() < 1e-9,
                "{id} state {s}: row sums to {sum}, not 1"
            );
        }
    }
}

/// splitmix64: the fuzz tests' only randomness, seeded and
/// dependency-free.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

// ---------------------------------------------------------------------
// The escalation ladder as a property: under any seeded fault mix the
// fleet finishes every epoch, keeps its census consistent, and never
// serves a non-finite policy.

#[test]
fn ladder_contains_seeded_fault_storms() {
    let _guard = serialized();
    let mut engaged = 0usize;
    for seed in [11, 23, 37, 41, 59] {
        let (mut service, _) = service_with(fleet_config(), 6);
        let _faults = fault::install(
            FaultPlan::new(seed)
                .refuse_updates(0.3)
                .poison_refactors(0.2)
                .exhaust_budgets(0.25),
        );
        for epoch in 0..8 {
            let arrivals = epoch_arrivals(&service, epoch);
            let report = service
                .run_epoch(&arrivals)
                .unwrap_or_else(|e| panic!("seed {seed} epoch {epoch}: {e}"));
            assert_eq!(
                report.healthy + report.degraded + report.quarantined,
                service.devices(),
                "seed {seed} epoch {epoch}: health census does not cover the fleet"
            );
            engaged +=
                report.warm_retries + report.forced_refactors + report.cold_rebuilds + report.holds;
            assert_policies_valid(&service);
        }
    }
    assert!(
        engaged > 0,
        "the fault storm never engaged the ladder: the rates are too low to test anything"
    );
}

#[test]
fn adaptive_controller_ladder_never_serves_a_broken_policy() {
    let _guard = serialized();
    let system = drifting::blended_system(7).expect("blended system composes");
    let mut controller =
        AdaptiveController::new(&system, adaptive().epoch_slices(400).min_divergence(0.0))
            .expect("controller builds");
    let _faults = fault::install(FaultPlan::new(97).exhaust_budgets(0.6));
    let trace = drifting::workload(60_000, 7);
    let sim = dpm_sim::Simulator::new(&system, dpm_sim::SimConfig::new(trace.len() as u64).seed(7));
    let mut tracker = dpm_trace::KMemoryTracker::new(drifting::MEMORY).tracker();
    sim.run_trace(&mut controller, &trace, &mut tracker)
        .expect("the simulation itself must survive the fault storm");
    assert!(
        controller.epochs().len() >= 10,
        "only {} epochs ran",
        controller.epochs().len()
    );
    let mut laddered = 0usize;
    for e in controller.epochs() {
        if !e.refreshed {
            continue;
        }
        match e.rung {
            Some(LadderRung::Hold) => assert!(
                e.error.is_some(),
                "epoch {}: a hold must surface its error",
                e.epoch
            ),
            Some(rung) => {
                if rung != LadderRung::Direct {
                    laddered += 1;
                }
                assert!(
                    e.error.is_none() || e.infeasible,
                    "epoch {}: rung {rung:?} adopted but an error leaked: {:?}",
                    e.epoch,
                    e.error
                );
            }
            None => {}
        }
    }
    assert!(
        laddered + controller.held_epochs() > 0,
        "exhaust-budget faults at 0.35 never escalated past a direct solve"
    );
    if let Some(policy) = controller.current_policy() {
        for (s, row) in policy.decisions().iter().enumerate() {
            assert!(
                row.iter().all(|p| p.is_finite()),
                "state {s}: non-finite policy row after the storm"
            );
        }
    }
}

// ---------------------------------------------------------------------
// Quarantine and probation: a device whose cluster can never solve is
// fenced off, and rejoins (through probation) once the faults stop.

#[test]
fn unsolvable_device_is_quarantined_then_readmitted() {
    let _guard = serialized();
    let config = fleet_config().quarantine_strikes(2).probation_epochs(3);
    let (mut service, _) = service_with(config, 1);
    let id = service.device_ids()[0];

    let guard = fault::install(FaultPlan::new(5).exhaust_budgets(1.0));
    let mut quarantines = 0usize;
    let mut recovery_epoch = 0usize;
    for epoch in 0..12 {
        let arrivals = unsolvable_arrivals(id, epoch);
        let report = service
            .run_epoch(&arrivals)
            .unwrap_or_else(|e| panic!("faulted epoch {epoch}: {e}"));
        assert!(
            report.holds > 0 || report.quarantines > 0 || report.solves == 0,
            "faulted epoch {epoch}: an unsolvable cluster must hold, not adopt"
        );
        quarantines += report.quarantines;
        if service.health_of(id) == Some(DeviceHealth::Quarantined) {
            recovery_epoch = epoch + 1;
            break;
        }
    }
    assert_eq!(
        service.health_of(id),
        Some(DeviceHealth::Quarantined),
        "an all-faults solver never tripped quarantine in 12 epochs"
    );
    assert_eq!(quarantines, 1, "quarantine must be counted exactly once");
    drop(guard);

    // Probation: the device idles while the counter runs down, then
    // rejoins, re-homes and solves cleanly.
    let mut readmissions = 0usize;
    for epoch in recovery_epoch..recovery_epoch + 8 {
        let arrivals = unsolvable_arrivals(id, epoch);
        let report = service
            .run_epoch(&arrivals)
            .unwrap_or_else(|e| panic!("recovery epoch {epoch}: {e}"));
        readmissions += report.readmissions;
    }
    assert_eq!(readmissions, 1, "readmission must be counted exactly once");
    assert_eq!(
        service.health_of(id),
        Some(DeviceHealth::Healthy),
        "the device must be healthy again after probation plus a clean solve"
    );
    assert_eq!(service.clusters(), 1, "the readmitted device re-homes");
    assert_policies_valid(&service);
}

#[test]
fn poisoned_telemetry_strikes_only_the_poisoned_device() {
    let _guard = serialized();
    let config = fleet_config().quarantine_strikes(2).probation_epochs(2);
    let (mut service, _) = service_with(config, 2);
    let (poisoned, clean) = (service.device_ids()[0], service.device_ids()[1]);

    // Warm up with clean telemetry so both devices fit and cluster.
    for _ in 0..2 {
        let streams = vec![
            (poisoned, telemetry_pattern(400, 0, 1, 8)),
            (clean, telemetry_pattern(400, 1, 5, 8)),
        ];
        service
            .run_epoch_telemetry(&streams)
            .expect("clean epochs run");
    }
    assert_eq!(service.health_of(poisoned), Some(DeviceHealth::Healthy));

    // Poison one device's stream until it is quarantined; its neighbor
    // must never be touched.
    let mut poison = telemetry_pattern(400, 0, 1, 8);
    poison[7] = f64::NAN;
    for epoch in 0..4 {
        let streams = vec![
            (poisoned, poison.clone()),
            (clean, telemetry_pattern(400, 1, 5, 8)),
        ];
        let report = service
            .run_epoch_telemetry(&streams)
            .unwrap_or_else(|e| panic!("poisoned epoch {epoch}: {e}"));
        assert_eq!(
            service.health_of(clean),
            Some(DeviceHealth::Healthy),
            "poison on one device leaked onto its neighbor"
        );
        assert!(report.healthy + report.degraded + report.quarantined == 2);
        if service.health_of(poisoned) == Some(DeviceHealth::Quarantined) {
            break;
        }
    }
    assert_eq!(
        service.health_of(poisoned),
        Some(DeviceHealth::Quarantined),
        "two strikes of poisoned telemetry must quarantine the device"
    );
    assert_policies_valid(&service);

    // Clean telemetry again: probation runs down and the device rejoins.
    let mut readmissions = 0usize;
    for _ in 0..6 {
        let streams = vec![
            (poisoned, telemetry_pattern(400, 0, 1, 8)),
            (clean, telemetry_pattern(400, 1, 5, 8)),
        ];
        let report = service
            .run_epoch_telemetry(&streams)
            .expect("recovery runs");
        readmissions += report.readmissions;
    }
    assert_eq!(readmissions, 1);
    assert_eq!(service.health_of(poisoned), Some(DeviceHealth::Healthy));
}

// ---------------------------------------------------------------------
// Checkpoint fuzzing: damage must always be detected, never panic, and
// never leave the target service broken.

#[test]
fn snapshot_fuzz_never_panics_and_never_accepts_damage() {
    let _guard = serialized();
    let (mut service, _) = service_with(fleet_config(), 4);
    for _ in 0..3 {
        let arrivals = epoch_arrivals(&service, 0);
        service.run_epoch(&arrivals).expect("epoch runs");
    }
    let mut snapshot = Vec::new();
    service.checkpoint(&mut snapshot).expect("checkpoints");

    // The clean round trip is bit-identical.
    let (mut target, _) = service_with(fleet_config(), 0);
    target
        .restore(&mut snapshot.as_slice())
        .expect("clean snapshot restores");
    let mut again = Vec::new();
    target.checkpoint(&mut again).expect("re-checkpoints");
    assert_eq!(
        snapshot, again,
        "restore → checkpoint must be bit-identical"
    );

    for seed in 0..8u64 {
        let mut state = seed.wrapping_mul(0x0123_4567_89AB_CDEF) ^ 0xDEAD_BEEF;
        for case in 0..40 {
            let mut damaged = snapshot.clone();
            let r = splitmix64(&mut state);
            if r % 4 == 0 {
                // Truncate somewhere strictly inside the stream.
                let cut = 1 + (splitmix64(&mut state) as usize) % (damaged.len() - 1);
                damaged.truncate(cut);
            } else {
                // Flip one bit anywhere.
                let at = (splitmix64(&mut state) as usize) % damaged.len();
                let bit = 1u8 << (splitmix64(&mut state) % 8);
                damaged[at] ^= bit;
            }
            if damaged == snapshot {
                continue;
            }
            let before = target.devices();
            let err = target
                .restore(&mut damaged.as_slice())
                .expect_err("damaged snapshots must never restore silently");
            assert!(
                matches!(
                    err,
                    SnapshotError::Format { .. }
                        | SnapshotError::ChecksumMismatch { .. }
                        | SnapshotError::Truncated { .. }
                        | SnapshotError::UnsupportedVersion { .. }
                        | SnapshotError::Io(_)
                        | SnapshotError::Mismatch { .. }
                ),
                "seed {seed} case {case}: unexpected error class: {err}"
            );
            assert_eq!(
                target.devices(),
                before,
                "seed {seed} case {case}: a failed restore mutated the service"
            );
        }
    }

    // The survivor is still a working service: it runs an epoch and a
    // clean restore still succeeds.
    let arrivals = epoch_arrivals(&target, 0);
    target
        .run_epoch(&arrivals)
        .expect("the service must stay usable after every failed restore");
    target
        .restore(&mut snapshot.as_slice())
        .expect("the clean snapshot still restores after the fuzz");
}
