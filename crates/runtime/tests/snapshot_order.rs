//! Regression: snapshot bytes must be **independent of insertion
//! order** — the determinism contract `dpm-lint`'s `hash-collections`
//! rule (D1) exists to protect.
//!
//! Every id-keyed structure inside [`FleetService`] is a `BTreeMap` (or
//! an id-sorted vector), so the order in which per-epoch arrivals are
//! *presented* must not leave a trace in the checkpoint. If anyone
//! swaps one of those maps for a `HashMap` — whose iteration order is
//! seeded per process — these tests fail before the linter even runs.
//!
//! Runs under the serialized fleet CI job like the other service tests.

use dpm_runtime::{AdaptiveConfig, DeviceId, FleetConfig, FleetService};
use dpm_systems::racks::{self, RackSchedule};
use dpm_trace::WindowKind;

fn config() -> FleetConfig {
    FleetConfig::new()
        .adaptive(
            AdaptiveConfig::new()
                .memory(racks::MEMORY)
                .smoothing(racks::SMOOTHING)
                .horizon(2_000.0)
                .window(WindowKind::Sliding(2 * racks::EPOCH_SLICES)),
        )
        .cluster_divergence(0.1)
        .resolve_divergence(0.05)
}

fn service_with(count: usize) -> FleetService {
    let mut service = FleetService::new(config());
    let class = service
        .register_class(&racks::system().expect("system composes"))
        .expect("class registers");
    for _ in 0..count {
        service.add_device(class).expect("device adds");
    }
    service
}

/// The schedule's epoch arrivals paired with the fleet's ids, then
/// permuted: `rotate` shifts the pair order, `reverse` flips it. The
/// *pairing* (which stream belongs to which id) never changes — only
/// the order the pairs are handed to `run_epoch`.
fn permuted_pairs(
    schedule: &RackSchedule,
    ids: &[DeviceId],
    epoch: usize,
    rotate: usize,
    reverse: bool,
) -> Vec<(DeviceId, Vec<u32>)> {
    let mut pairs: Vec<(DeviceId, Vec<u32>)> = schedule
        .epoch_arrivals(epoch)
        .into_iter()
        .zip(ids.iter())
        .map(|(stream, &id)| (id, stream))
        .collect();
    if reverse {
        pairs.reverse();
    }
    let n = pairs.len().max(1);
    pairs.rotate_left(rotate % n);
    pairs
}

fn checkpoint_bytes(service: &FleetService) -> Vec<u8> {
    let mut bytes = Vec::new();
    service.checkpoint(&mut bytes).expect("checkpoints");
    bytes
}

#[test]
fn snapshot_bytes_are_independent_of_arrival_presentation_order() {
    let schedule = RackSchedule::new();
    let devices = schedule.devices();
    let mut in_order = service_with(devices);
    let mut scrambled = service_with(devices);
    let epochs = 2 * racks::CALM_EPOCHS + 2;
    for epoch in 0..epochs {
        let ids_a = in_order.device_ids().to_vec();
        let pairs_a = permuted_pairs(&schedule, &ids_a, epoch, 0, false);
        in_order.run_epoch(&pairs_a).expect("epoch runs");

        // Different presentation order every epoch: reversed on even
        // epochs, rotated by a varying stride on odd ones.
        let ids_b = scrambled.device_ids().to_vec();
        let pairs_b = permuted_pairs(&schedule, &ids_b, epoch, epoch * 7 + 3, epoch % 2 == 0);
        scrambled.run_epoch(&pairs_b).expect("epoch runs");
    }
    assert_eq!(
        checkpoint_bytes(&in_order),
        checkpoint_bytes(&scrambled),
        "presentation order of per-epoch arrivals leaked into the snapshot bytes"
    );
}

#[test]
fn snapshot_bytes_are_independent_of_churn_interleaving() {
    // Same end state reached through differently interleaved add/remove
    // sequences: A adds four then removes the second; B adds two,
    // removes the second, adds two more. Device ids are never reused,
    // so both paths are steered to hold the *same* surviving id set.
    let schedule = RackSchedule::new();
    let mut a = FleetService::new(config());
    let class_a = a
        .register_class(&racks::system().expect("system composes"))
        .expect("class registers");
    let a_ids: Vec<DeviceId> = (0..4)
        .map(|_| a.add_device(class_a).expect("adds"))
        .collect();
    a.remove_device(a_ids[1]).expect("removes");

    let mut b = FleetService::new(config());
    let class_b = b
        .register_class(&racks::system().expect("system composes"))
        .expect("class registers");
    let b0 = b.add_device(class_b).expect("adds");
    let b1 = b.add_device(class_b).expect("adds");
    b.remove_device(b1).expect("removes");
    let b2 = b.add_device(class_b).expect("adds");
    let b3 = b.add_device(class_b).expect("adds");
    assert_eq!(
        (b0, b2, b3),
        (a_ids[0], a_ids[2], a_ids[3]),
        "id allocation must be order-deterministic for the byte comparison to be meaningful"
    );

    for epoch in 0..racks::CALM_EPOCHS {
        let ids = a.device_ids().to_vec();
        let pairs = permuted_pairs(&schedule, &ids, epoch, 0, false);
        a.run_epoch(&pairs).expect("epoch runs");
        let ids = b.device_ids().to_vec();
        let pairs = permuted_pairs(&schedule, &ids, epoch, 1, true);
        b.run_epoch(&pairs).expect("epoch runs");
    }
    assert_eq!(
        checkpoint_bytes(&a),
        checkpoint_bytes(&b),
        "churn interleaving leaked into the snapshot bytes"
    );
}
