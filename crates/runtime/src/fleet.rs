//! Fleet-scale parallel adaptation: shard N per-device estimators across
//! a fixed pool of scoped worker threads, cluster devices by
//! fitted-model proximity, and **solve one LP per cluster** instead of
//! one per device.
//!
//! The closed loop of the crate root adapts *one* device. A data center
//! runs thousands of power-managed disks, CPUs and web servers at once,
//! and the per-device loop does not scale two ways:
//!
//! * **estimation** is embarrassingly parallel but single-threaded —
//!   [`FleetController::run_epoch`] shards the per-device feed+fit work
//!   over a fixed pool of [`std::thread::scope`] workers (contiguous
//!   device shards, results merged in device order, so the outcome is
//!   **bit-identical for every worker count**);
//! * **solving** one LP per device wastes pivots on devices whose fitted
//!   models are statistically indistinguishable — the controller groups
//!   devices whose fits sit within a max-abs transition-probability
//!   threshold of each other (the same gauge as
//!   [`WindowedEstimator::divergence`]) and solves **one LP per
//!   cluster**, sharing the resulting randomized policy across the
//!   members. A device whose fit drifts off its cluster's
//!   representative is evicted and re-homed the same epoch.
//!
//! Every cluster session is a [`PreparedOptimization::fork`] of its
//! device class's base session, so all clusters of a class share one
//! symbolic LU analysis and re-solve **warm** — the per-cluster solve
//! costs a handful of pivots, not a cold two-phase solve. Re-solves are
//! **event-driven**: a cluster re-solves only when its representative
//! model has moved at least the configured divergence since the last
//! solve, and never again within the cooldown window.
//!
//! See `docs/FLEET.md` for the design notes and the `fleet` benchmark
//! for throughput-vs-workers and solves-vs-devices measurements.
//!
//! # Example
//!
//! ```
//! use dpm_runtime::{AdaptiveConfig, FleetConfig, FleetController};
//! use dpm_systems::drifting;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let config = FleetConfig::new()
//!     .adaptive(
//!         AdaptiveConfig::new()
//!             .memory(drifting::MEMORY)
//!             .smoothing(drifting::SMOOTHING)
//!             .horizon(drifting::HORIZON),
//!     )
//!     .workers(2);
//! let mut fleet = FleetController::new(config);
//! fleet.add_class(&drifting::blended_system(7)?, 4)?;
//! // One epoch: 500 arrival slices per device, all devices alike.
//! let trace = drifting::workload(500, 7);
//! let report = fleet.run_epoch(&vec![trace; 4])?;
//! assert_eq!(report.devices, 4);
//! assert!(report.solves <= report.clusters);
//! # Ok(())
//! # }
//! ```

use std::sync::Arc;

use dpm_core::{
    DpmError, PolicyOptimizer, PreparedOptimization, ServiceProvider, ServiceQueue,
    ServiceRequester, SystemModel,
};
use dpm_lp::ReloadKind;
use dpm_mdp::RandomizedPolicy;
use dpm_trace::{SrExtractor, WindowedEstimator};

use crate::AdaptiveConfig;

/// Configuration of a [`FleetController`] (builder style).
///
/// Wraps an [`AdaptiveConfig`] for the per-device estimator and
/// per-cluster LP knobs (memory, smoothing, window, discount, bounds,
/// solver, `resolve_cooldown`, `blend_fits`) and adds the fleet-level
/// ones. Defaults: 1 worker, cluster threshold 0.05, re-solve threshold
/// 0.02.
///
/// Note the fleet is fed explicitly through
/// [`FleetController::run_epoch`], so the adaptive config's
/// `epoch_slices` only sizes the default estimator window; the epoch
/// length is whatever the caller feeds per call.
#[derive(Debug, Clone)]
pub struct FleetConfig {
    pub(crate) base: AdaptiveConfig,
    pub(crate) workers: usize,
    pub(crate) cluster_divergence: f64,
    pub(crate) resolve_divergence: f64,
    pub(crate) quiet_divergence: Option<f64>,
    pub(crate) quarantine_strikes: u32,
    pub(crate) probation_epochs: u64,
}

impl Default for FleetConfig {
    fn default() -> Self {
        Self::new()
    }
}

impl FleetConfig {
    /// The default configuration (see the type-level docs).
    pub fn new() -> Self {
        FleetConfig {
            base: AdaptiveConfig::new(),
            workers: 1,
            cluster_divergence: 0.05,
            resolve_divergence: 0.02,
            quiet_divergence: None,
            quarantine_strikes: 3,
            probation_epochs: 3,
        }
    }

    /// The per-device estimator / per-cluster LP configuration.
    #[must_use = "builder methods return the configured value; dropping it discards the configuration"]
    pub fn adaptive(mut self, base: AdaptiveConfig) -> Self {
        self.base = base;
        self
    }

    /// Worker threads the per-device feed+fit phase and the per-cluster
    /// solve phase shard over. Clamped to ≥ 1. Results are bit-identical
    /// for every value — the worker count only buys wall-clock time.
    #[must_use = "builder methods return the configured value; dropping it discards the configuration"]
    pub fn workers(mut self, workers: usize) -> Self {
        self.workers = workers.max(1);
        self
    }

    /// Cluster membership gate: a device belongs to a cluster while its
    /// fitted model stays within this max-abs transition-probability
    /// distance of the cluster representative; beyond it, the device is
    /// evicted and re-homed. 0 clusters only bit-identical fits
    /// (effectively solve-per-device).
    #[must_use = "builder methods return the configured value; dropping it discards the configuration"]
    pub fn cluster_divergence(mut self, threshold: f64) -> Self {
        self.cluster_divergence = threshold.max(0.0);
        self
    }

    /// Event gate: a cluster re-solves only when its representative has
    /// moved at least this max-abs distance since the model it last
    /// solved for (and its `resolve_cooldown` has expired). 0 re-solves
    /// every epoch.
    #[must_use = "builder methods return the configured value; dropping it discards the configuration"]
    pub fn resolve_divergence(mut self, threshold: f64) -> Self {
        self.resolve_divergence = threshold.max(0.0);
        self
    }

    /// Incremental-gauge gate: when set, a device whose windowed counts
    /// moved at most this much since its last fit (max-abs smoothed
    /// row-probability distance, [`WindowedEstimator::count_drift`])
    /// skips the epoch's fit/gauge recomputation — its previous fit,
    /// flattened gauge and cluster assignment stand unchanged, so quiet
    /// epochs become ~free. The skip/refit split is reported in
    /// [`FleetReport::gauge_skips`] / [`FleetReport::gauge_refits`].
    /// `0.0` skips only devices whose window counts are bit-identical
    /// to the last fit's. Unset (the default) disables the gate: every
    /// ready estimator refits every epoch.
    #[must_use = "builder methods return the configured value; dropping it discards the configuration"]
    pub fn quiet_divergence(mut self, threshold: f64) -> Self {
        self.quiet_divergence = Some(threshold.max(0.0));
        self
    }

    /// Strikes (invalid observations, ladder holds of the device's
    /// cluster) before a device is quarantined. Clamped to ≥ 1. A
    /// device's strikes are cleared by a successful solve of its
    /// cluster, so only *persistent* trouble accumulates.
    #[must_use = "builder methods return the configured value; dropping it discards the configuration"]
    pub fn quarantine_strikes(mut self, strikes: u32) -> Self {
        self.quarantine_strikes = strikes.max(1);
        self
    }

    /// Epochs a quarantined device sits out — excluded from estimation
    /// and clustering, held on its last-good policy — before it is
    /// re-admitted as healthy. Clamped to ≥ 1.
    #[must_use = "builder methods return the configured value; dropping it discards the configuration"]
    pub fn probation_epochs(mut self, epochs: u64) -> Self {
        self.probation_epochs = epochs.max(1);
        self
    }
}

/// The containment state of a managed device (see `docs/FLEET.md`,
/// "Failure modes & recovery").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DeviceHealth {
    /// Behaving normally: telemetry screens clean and its cluster
    /// solves.
    #[default]
    Healthy,
    /// Carrying strikes but still fully managed; a successful solve of
    /// its cluster heals it back to [`DeviceHealth::Healthy`].
    Degraded,
    /// Excluded from estimation and clustering, held on its last-good
    /// policy until the probation window expires.
    Quarantined,
}

/// What one [`FleetController::run_epoch`] call did, in the aggregate —
/// the fleet's flight recorder. Deterministic for a given fleet and
/// arrival set, whatever the worker count.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub struct FleetReport {
    /// 0-based epoch index.
    pub epoch: u64,
    /// Devices in the fleet.
    pub devices: usize,
    /// Devices whose estimator produced a fit this epoch (the rest are
    /// still warming up their windows).
    pub fitted: usize,
    /// Devices that recomputed their fit and divergence gauge this epoch
    /// — ready estimators whose counts moved past
    /// [`FleetConfig::quiet_divergence`], or every ready estimator when
    /// the quiet gate is disabled.
    pub gauge_refits: usize,
    /// Devices the incremental gauge let skip fit/gauge recomputation
    /// this epoch (windowed counts within `quiet_divergence` of their
    /// last fit; their previous fit and cluster assignment stand).
    pub gauge_skips: usize,
    /// Clusters alive at the end of the epoch.
    pub clusters: usize,
    /// Devices evicted from a cluster this epoch (drifted off the
    /// representative; all were re-homed or founded a new cluster).
    pub evictions: usize,
    /// Clusters that re-solved this epoch.
    pub solves: usize,
    /// Clusters the event gate held (kept their policy, no solve).
    pub skipped: usize,
    /// Re-solves whose model swap reloaded warm.
    pub warm_reloads: usize,
    /// Re-solves that fell back to a cold rebuild.
    pub cold_reloads: usize,
    /// Simplex pivots spent by this epoch's re-solves.
    pub pivots: usize,
    /// Symbolic-LU analyses *reused* by this epoch's re-solves (forked
    /// sessions share their class's analysis, so with warm reloads this
    /// tracks the solve count while fresh analyses stay at one per
    /// class).
    pub symbolic_reuses: usize,
    /// Clusters whose constraints were infeasible under their
    /// representative model (kept the previous policy).
    pub infeasible: usize,
    /// Clusters whose re-solve failed for non-infeasibility reasons
    /// (kept the previous policy).
    pub errors: usize,
    /// Mean model-predicted power per slice over the devices whose
    /// cluster has solved at least once, in device order (`None` until
    /// any cluster has solved).
    pub mean_power: Option<f64>,
    /// Devices [`DeviceHealth::Healthy`] at the end of the epoch.
    pub healthy: usize,
    /// Devices [`DeviceHealth::Degraded`] at the end of the epoch.
    pub degraded: usize,
    /// Devices [`DeviceHealth::Quarantined`] at the end of the epoch.
    pub quarantined: usize,
    /// Strikes recorded this epoch (invalid observations reported by
    /// the service layer, plus one per ladder hold against the failing
    /// cluster's representative).
    pub strikes: usize,
    /// Devices that crossed into quarantine this epoch.
    pub quarantines: usize,
    /// Devices re-admitted from quarantine this epoch.
    pub readmissions: usize,
    /// Escalation-ladder rung 1: warm retries on the untouched session.
    pub warm_retries: usize,
    /// Escalation-ladder rung 2: solves after a forced refactorization.
    pub forced_refactors: usize,
    /// Escalation-ladder rung 3: cold rebuilds on a fresh fork of the
    /// class base session.
    pub cold_rebuilds: usize,
    /// Escalation-ladder rung 4: clusters that exhausted the ladder and
    /// held their last-good policy (exponential backoff arms).
    pub holds: usize,
}

/// Phase-1 per-device scratch: whether the epoch recomputed the
/// device's fit and gauge or the incremental gauge let it skip.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum FitOutcome {
    /// Estimator not ready (window still warming up), or the fit failed.
    None,
    /// Fit and flattened gauge recomputed.
    Refit,
    /// Windowed counts within the quiet gate of the last fit — skipped.
    Skipped,
}

/// One managed device: its streaming estimator, its latest fit and its
/// cluster assignment.
#[derive(Debug)]
pub(crate) struct Device {
    pub(crate) class: usize,
    pub(crate) estimator: WindowedEstimator,
    /// Latest fitted SR model (sticky once fitted).
    pub(crate) fit: Option<ServiceRequester>,
    /// The fit's flattened transition matrix — the clustering gauge
    /// works on this.
    pub(crate) flat: Option<Vec<f64>>,
    pub(crate) cluster: Option<usize>,
    pub(crate) policy: Arc<RandomizedPolicy>,
    /// Per-epoch scratch: what phase 1 did to this device's gauge.
    pub(crate) fit_outcome: FitOutcome,
    pub(crate) health: DeviceHealth,
    /// Accumulated strikes; cleared by a successful cluster solve and
    /// on re-admission.
    pub(crate) strikes: u32,
    /// Probation epochs left while quarantined.
    pub(crate) probation_left: u64,
    /// Per-epoch scratch: a strike was reported against this device
    /// (invalid telemetry, or its cluster's ladder ended in a hold).
    pub(crate) strike_pending: bool,
}

/// A device class: one LP shape, one base session every cluster forks.
#[derive(Debug)]
pub(crate) struct DeviceClass {
    pub(crate) provider: ServiceProvider,
    pub(crate) queue: ServiceQueue,
    pub(crate) base: PreparedOptimization,
    pub(crate) base_policy: Arc<RandomizedPolicy>,
}

/// The outcome of one cluster's re-solve attempt (per-epoch scratch),
/// including how far up the escalation ladder it had to climb.
#[derive(Debug, Clone)]
pub(crate) struct SolveOutcome {
    reload: Option<ReloadKind>,
    pivots: usize,
    symbolic_reuse: usize,
    infeasible: bool,
    error: Option<String>,
    /// Rung 1: warm retries taken on the untouched session.
    warm_retries: usize,
    /// Rung 2: a forced refactorization preceded the last warm attempt.
    forced_refactor: bool,
    /// Rung 3 requested: the warm ladder failed; the sequential
    /// cold-rebuild pass owns this cluster.
    needs_cold: bool,
    /// Rung 3 taken: a fresh fork of the class base solved the epoch.
    cold_rebuilt: bool,
    /// Rung 4: nothing solved — the last-good policy holds and the
    /// cluster backs off exponentially.
    held: bool,
}

/// A group of devices sharing one fitted regime, one LP session and one
/// policy.
#[derive(Debug)]
pub(crate) struct Cluster {
    pub(crate) class: usize,
    /// Member device indices, ascending — `members[0]` is the
    /// representative device.
    pub(crate) members: Vec<usize>,
    /// The representative's flattened transition matrix.
    pub(crate) representative: Vec<f64>,
    /// The representative's fitted model (what a re-solve solves for).
    pub(crate) rep_model: ServiceRequester,
    pub(crate) session: PreparedOptimization,
    /// The flattened model of the last successful solve.
    pub(crate) last_solved: Option<Vec<f64>>,
    pub(crate) policy: Arc<RandomizedPolicy>,
    /// Model-predicted power per slice of the last successful solve.
    pub(crate) power: Option<f64>,
    /// Epochs since the last successful solve.
    pub(crate) since_solve: u64,
    pub(crate) needs_solve: bool,
    pub(crate) outcome: Option<SolveOutcome>,
    /// Consecutive epochs the escalation ladder ended in a hold.
    pub(crate) consecutive_holds: u32,
    /// Epochs left before a held cluster may try to solve again
    /// (exponential in [`Cluster::consecutive_holds`]).
    pub(crate) backoff_left: u64,
}

/// Max-abs distance between two flattened transition matrices — the
/// same gauge as [`WindowedEstimator::divergence`], applied across
/// devices instead of across time.
pub(crate) fn gauge(a: &[f64], b: &[f64]) -> f64 {
    a.iter()
        .zip(b)
        .map(|(x, y)| (x - y).abs())
        .fold(0.0, f64::max)
}

/// Row-major flattening of a requester's transition matrix.
pub(crate) fn flatten(sr: &ServiceRequester) -> Vec<f64> {
    let n = sr.num_states();
    let p = sr.chain().transition_matrix();
    let mut flat = Vec::with_capacity(n * n);
    for s in 0..n {
        flat.extend_from_slice(p.row(s));
    }
    flat
}

/// Shards `N` adaptive controllers across a fixed worker pool and solves
/// one LP per cluster of statistically close devices (see the
/// [module docs](self)).
///
/// Build with [`FleetController::new`], populate with
/// [`FleetController::add_class`], then drive with
/// [`FleetController::run_epoch`] — one call per adaptation epoch,
/// feeding each device its arrival slice.
#[derive(Debug)]
pub struct FleetController {
    pub(crate) config: FleetConfig,
    pub(crate) classes: Vec<DeviceClass>,
    pub(crate) devices: Vec<Device>,
    pub(crate) clusters: Vec<Cluster>,
    pub(crate) epoch: u64,
    pub(crate) history: Vec<FleetReport>,
}

impl FleetController {
    /// An empty fleet with the given configuration.
    pub fn new(config: FleetConfig) -> Self {
        FleetController {
            config,
            classes: Vec::new(),
            devices: Vec::new(),
            clusters: Vec::new(),
            epoch: 0,
            history: Vec::new(),
        }
    }

    /// Adds a device class — `count` devices managed as instances of
    /// `system` (same provider, queue and LP shape; each device gets its
    /// own estimator seeded empty). Solves the class problem once on the
    /// given model: that solution is every device's starting policy, and
    /// its session is the base all of the class's cluster sessions
    /// [fork](PreparedOptimization::fork) — one symbolic LU analysis per
    /// class, however many clusters form. Returns the class index;
    /// device indices `devices()-count..devices()` are the new members.
    ///
    /// # Errors
    ///
    /// The same validation as
    /// [`AdaptiveController::new`](crate::AdaptiveController::new): the
    /// system's SR state count must be `2^memory`, the configured
    /// problem must be feasible on the given model, and estimator/LP
    /// construction failures propagate.
    pub fn add_class(&mut self, system: &SystemModel, count: usize) -> Result<usize, DpmError> {
        let config = &self.config.base;
        let expected = 1usize.checked_shl(config.memory).unwrap_or(0);
        if config.memory == 0 || system.requester().num_states() != expected {
            return Err(DpmError::BadConfiguration {
                reason: format!(
                    "fleet class with memory {} needs a {expected}-state SR, the system has {}",
                    config.memory,
                    system.requester().num_states()
                ),
            });
        }
        let mut optimizer = PolicyOptimizer::new(system)
            .discount(config.discount)
            .solver(config.solver);
        if let Some(bound) = config.max_performance_penalty {
            optimizer = optimizer.max_performance_penalty(bound);
        }
        if let Some(bound) = config.max_request_loss_rate {
            optimizer = optimizer.max_request_loss_rate(bound);
        }
        let mut base = optimizer.prepare()?;
        base.set_budget(config.solve_budget);
        let base_policy = Arc::new(base.solve()?.policy().clone());

        let class = self.classes.len();
        self.classes.push(DeviceClass {
            provider: system.provider().clone(),
            queue: *system.queue(),
            base,
            base_policy,
        });
        for _ in 0..count {
            self.add_device(class)?;
        }
        Ok(class)
    }

    /// Adds one device to an existing class at runtime — churn, not
    /// construction. The class's prepared base session and symbolic LU
    /// analysis are reused as-is; nothing in the fleet is re-prepared
    /// and no LP is solved. The device starts on the class's base
    /// policy with an empty estimator and joins (or founds) a cluster
    /// once its window fills and fits. Returns the device's index
    /// (`devices() - 1`).
    ///
    /// # Errors
    ///
    /// [`DpmError::BadConfiguration`] when `class` is out of range;
    /// estimator construction failures propagate.
    pub fn add_device(&mut self, class: usize) -> Result<usize, DpmError> {
        let Some(device_class) = self.classes.get(class) else {
            return Err(DpmError::BadConfiguration {
                reason: format!(
                    "fleet has {} classes, device requested class {class}",
                    self.classes.len()
                ),
            });
        };
        let estimator = Self::build_estimator(&self.config.base)?;
        self.devices.push(Device {
            class,
            estimator,
            fit: None,
            flat: None,
            cluster: None,
            policy: Arc::clone(&device_class.base_policy),
            fit_outcome: FitOutcome::None,
            health: DeviceHealth::Healthy,
            strikes: 0,
            probation_left: 0,
            strike_pending: false,
        });
        Ok(self.devices.len() - 1)
    }

    /// Removes device `index` from the fleet at runtime. The device is
    /// evicted from its cluster; a cluster left empty is garbage
    /// collected (its forked session dropped — the class base session
    /// and symbolic analysis are untouched, so no re-prepare ever
    /// happens). Devices above `index` shift down by one, exactly like
    /// [`Vec::remove`]; cluster membership follows the shift. A cluster
    /// whose representative device was removed keeps serving its
    /// current policy and is re-represented by its new lowest-indexed
    /// member at the next epoch's maintenance.
    ///
    /// # Errors
    ///
    /// [`DpmError::BadConfiguration`] when `index` is out of range.
    pub fn remove_device(&mut self, index: usize) -> Result<(), DpmError> {
        if index >= self.devices.len() {
            return Err(DpmError::BadConfiguration {
                reason: format!(
                    "fleet has {} devices, none at index {index}",
                    self.devices.len()
                ),
            });
        }
        if let Some(c) = self.devices[index].cluster {
            self.clusters[c].members.retain(|&m| m != index);
        }
        // GC emptied clusters and remap the survivors' indices.
        let mut remap = vec![usize::MAX; self.clusters.len()];
        let mut kept = 0usize;
        for (c, cluster) in self.clusters.iter().enumerate() {
            if !cluster.members.is_empty() {
                remap[c] = kept;
                kept += 1;
            }
        }
        self.clusters.retain(|cl| !cl.members.is_empty());
        self.devices.remove(index);
        for device in &mut self.devices {
            device.cluster = device.cluster.map(|c| remap[c]);
        }
        // Device indices above the removed one shift down.
        for cluster in &mut self.clusters {
            for m in &mut cluster.members {
                if *m > index {
                    *m -= 1;
                }
            }
        }
        Ok(())
    }

    /// An empty per-device estimator per the adaptive configuration.
    pub(crate) fn build_estimator(config: &AdaptiveConfig) -> Result<WindowedEstimator, DpmError> {
        let extractor = SrExtractor::try_new(config.memory)?.with_smoothing(config.smoothing);
        let estimator = WindowedEstimator::new(extractor, config.effective_window())?;
        Ok(if config.blend_fits {
            estimator.with_blending()
        } else {
            estimator
        })
    }

    /// Devices in the fleet.
    pub fn devices(&self) -> usize {
        self.devices.len()
    }

    /// Clusters currently alive.
    pub fn clusters(&self) -> usize {
        self.clusters.len()
    }

    /// The policy currently assigned to device `index` (shared by every
    /// member of its cluster).
    ///
    /// # Panics
    ///
    /// Panics when `index` is out of range.
    pub fn device_policy(&self, index: usize) -> &Arc<RandomizedPolicy> {
        &self.devices[index].policy
    }

    /// The cluster device `index` currently belongs to (`None` while its
    /// estimator is still warming up).
    ///
    /// # Panics
    ///
    /// Panics when `index` is out of range.
    pub fn device_cluster(&self, index: usize) -> Option<usize> {
        self.devices[index].cluster
    }

    /// The latest fitted model of device `index` (`None` until its
    /// estimator produced a fit) — what a solve-per-device deployment
    /// would solve for; the `fleet` benchmark prices its baseline off
    /// this.
    ///
    /// # Panics
    ///
    /// Panics when `index` is out of range.
    pub fn device_fit(&self, index: usize) -> Option<&ServiceRequester> {
        self.devices[index].fit.as_ref()
    }

    /// The containment state of device `index`.
    ///
    /// # Panics
    ///
    /// Panics when `index` is out of range.
    pub fn device_health(&self, index: usize) -> DeviceHealth {
        self.devices[index].health
    }

    /// Records a strike against device `index` (e.g. the service layer
    /// rejected its raw telemetry). The strike is folded into the
    /// health-state machine at the end of the next
    /// [`Self::run_epoch`].
    pub(crate) fn strike(&mut self, index: usize) {
        self.devices[index].strike_pending = true;
    }

    /// Per-epoch reports of the fleet so far.
    pub fn history(&self) -> &[FleetReport] {
        &self.history
    }

    /// Total simplex pivots spent by per-cluster re-solves so far.
    pub fn total_pivots(&self) -> usize {
        self.history.iter().map(|r| r.pivots).sum()
    }

    /// Total per-cluster re-solves so far.
    pub fn total_solves(&self) -> usize {
        self.history.iter().map(|r| r.solves).sum()
    }

    /// One adaptation epoch over the whole fleet: feed each device its
    /// arrival slice (`arrivals[d]` is device `d`'s stream of 0/1
    /// request indicators), re-fit every ready estimator (sharded over
    /// the worker pool), maintain the clusters (evict drifted devices,
    /// re-home or found), re-solve the clusters whose representative
    /// moved past the event gate (again sharded), and share each solved
    /// policy across its cluster.
    ///
    /// The report — and every observable fleet state — is bit-identical
    /// for any worker count: the parallel phases touch disjoint
    /// per-device / per-cluster state, and every cross-device decision
    /// (clustering, gating, merging) runs sequentially in index order.
    ///
    /// # Errors
    ///
    /// [`DpmError::BadConfiguration`] when `arrivals.len()` differs from
    /// [`Self::devices`]. Per-cluster solve failures do *not* fail the
    /// epoch: the cluster keeps its previous policy and the failure is
    /// counted in [`FleetReport::infeasible`] / [`FleetReport::errors`].
    pub fn run_epoch(&mut self, arrivals: &[Vec<u32>]) -> Result<FleetReport, DpmError> {
        if arrivals.len() != self.devices.len() {
            return Err(DpmError::BadConfiguration {
                reason: format!(
                    "fleet has {} devices but the epoch supplies {} arrival streams",
                    self.devices.len(),
                    arrivals.len()
                ),
            });
        }
        self.feed_and_fit(arrivals);
        let evictions = self.maintain_clusters()?;
        self.gate_solves();
        self.solve_clusters();
        self.rebuild_cold();
        let mut report = self.merge(evictions);
        self.update_health(&mut report);
        self.epoch += 1;
        self.history.push(report.clone());
        Ok(report)
    }

    /// Phase 1 — parallel, per-device: feed the epoch's arrivals and
    /// re-fit every ready estimator. Contiguous shards, disjoint
    /// mutable state, so the merge is trivially deterministic.
    fn feed_and_fit(&mut self, arrivals: &[Vec<u32>]) {
        let workers = self.config.workers;
        let quiet = self.config.quiet_divergence;
        let chunk = self.devices.len().div_ceil(workers).max(1);
        std::thread::scope(|s| {
            for (shard, bits) in self.devices.chunks_mut(chunk).zip(arrivals.chunks(chunk)) {
                s.spawn(move || {
                    for (device, stream) in shard.iter_mut().zip(bits) {
                        device.fit_outcome = FitOutcome::None;
                        // Quarantined devices neither feed nor fit: a
                        // device suspected of emitting garbage must not
                        // influence any model until re-admitted.
                        if device.health == DeviceHealth::Quarantined {
                            continue;
                        }
                        for &b in stream {
                            device.estimator.observe(b);
                        }
                        if !device.estimator.is_ready() {
                            continue;
                        }
                        // The incremental gauge: a fitted device whose
                        // windowed counts stayed within the quiet gate
                        // of its last fit keeps fit, flattened gauge
                        // and cluster untouched — no refit, no gauge
                        // recomputation downstream.
                        if device.fit.is_some() {
                            if let (Some(gate), Some(drift)) =
                                (quiet, device.estimator.count_drift())
                            {
                                if drift <= gate {
                                    device.fit_outcome = FitOutcome::Skipped;
                                    continue;
                                }
                            }
                        }
                        if let Ok(sr) = device.estimator.fit() {
                            device.flat = Some(flatten(&sr));
                            device.fit = Some(sr);
                            device.fit_outcome = FitOutcome::Refit;
                        }
                    }
                });
            }
        });
    }

    /// Phase 2 — sequential, deterministic: evict members that drifted
    /// off their representative, refresh representatives, re-home every
    /// unassigned fitted device (first within-threshold cluster of its
    /// class in cluster order, else found a new one). Returns the
    /// eviction count.
    fn maintain_clusters(&mut self) -> Result<usize, DpmError> {
        let threshold = self.config.cluster_divergence;
        // Evict: compare every member (except the representative itself)
        // against its cluster's current representative.
        let mut evictions = 0usize;
        for d in 0..self.devices.len() {
            let Some(c) = self.devices[d].cluster else {
                continue;
            };
            let Some(flat) = self.devices[d].flat.as_ref() else {
                continue;
            };
            if gauge(flat, &self.clusters[c].representative) > threshold {
                self.clusters[c].members.retain(|&m| m != d);
                self.devices[d].cluster = None;
                evictions += 1;
            }
        }
        // Drop emptied clusters and remap the survivors' indices.
        let mut remap = vec![usize::MAX; self.clusters.len()];
        let mut kept = 0usize;
        for (c, cluster) in self.clusters.iter().enumerate() {
            if !cluster.members.is_empty() {
                remap[c] = kept;
                kept += 1;
            }
        }
        self.clusters.retain(|cl| !cl.members.is_empty());
        for device in &mut self.devices {
            device.cluster = device.cluster.map(|c| remap[c]);
        }
        // Refresh representatives: the lowest-indexed member speaks for
        // the cluster from here on.
        for cluster in &mut self.clusters {
            let rep = cluster.members[0];
            if let (Some(flat), Some(fit)) = (
                self.devices[rep].flat.as_ref(),
                self.devices[rep].fit.as_ref(),
            ) {
                cluster.representative = flat.clone();
                cluster.rep_model = fit.clone();
            }
        }
        // Re-home in device order; join the first fitting cluster in
        // cluster order, else found a new one from a fork of the class
        // base session.
        for d in 0..self.devices.len() {
            if self.devices[d].cluster.is_some()
                || self.devices[d].health == DeviceHealth::Quarantined
            {
                continue;
            }
            let Some(flat) = self.devices[d].flat.clone() else {
                continue;
            };
            let class = self.devices[d].class;
            let home = self
                .clusters
                .iter()
                .position(|cl| cl.class == class && gauge(&flat, &cl.representative) <= threshold);
            match home {
                Some(c) => {
                    self.clusters[c].members.push(d);
                    self.clusters[c].members.sort_unstable();
                    self.devices[d].cluster = Some(c);
                }
                None => {
                    let mut session = self.classes[class].base.fork()?;
                    session.set_budget(self.config.base.solve_budget);
                    self.devices[d].cluster = Some(self.clusters.len());
                    self.clusters.push(Cluster {
                        class,
                        members: vec![d],
                        representative: flat,
                        rep_model: self.devices[d]
                            .fit
                            .clone()
                            .expect("flat and fit are set together"),
                        session,
                        last_solved: None,
                        policy: Arc::clone(&self.classes[class].base_policy),
                        power: None,
                        since_solve: 0,
                        needs_solve: false,
                        outcome: None,
                        consecutive_holds: 0,
                        backoff_left: 0,
                    });
                }
            }
        }
        Ok(evictions)
    }

    /// Phase 3 — sequential: the event gate. A cluster re-solves when it
    /// never has, or when its representative moved at least
    /// `resolve_divergence` since the last solved model *and* the
    /// cooldown expired. A cluster the ladder held backs off
    /// exponentially: it sits out `2^min(consecutive_holds, 6)` epochs
    /// before the gate may fire again.
    fn gate_solves(&mut self) {
        let threshold = self.config.resolve_divergence;
        let cooldown = self.config.base.resolve_cooldown;
        for cluster in &mut self.clusters {
            cluster.outcome = None;
            let backing_off = cluster.backoff_left > 0;
            cluster.backoff_left = cluster.backoff_left.saturating_sub(1);
            let due = match cluster.last_solved.as_ref() {
                None => true,
                Some(solved) => {
                    let moved = gauge(&cluster.representative, solved) >= threshold;
                    let cooled = cluster.since_solve >= cooldown;
                    cluster.since_solve = cluster.since_solve.saturating_add(1);
                    moved && cooled
                }
            };
            cluster.needs_solve = due && !backing_off && !cluster.members.is_empty();
        }
    }

    /// Phase 4 — parallel, per-cluster: re-solve every gated cluster on
    /// its own forked session. Failures stay local to the cluster.
    fn solve_clusters(&mut self) {
        let workers = self.config.workers;
        let chunk = self.clusters.len().div_ceil(workers).max(1);
        // Workers only need each class's provider and queue to recompose
        // (the class's base *session* is not `Sync` and stays put).
        let recompose: Vec<(&ServiceProvider, ServiceQueue)> = self
            .classes
            .iter()
            .map(|class| (&class.provider, class.queue))
            .collect();
        let recompose = recompose.as_slice();
        std::thread::scope(|s| {
            for shard in self.clusters.chunks_mut(chunk) {
                s.spawn(move || {
                    for cluster in shard.iter_mut().filter(|c| c.needs_solve) {
                        let (provider, queue) = recompose[cluster.class];
                        cluster.outcome = Some(cluster.resolve(provider, queue));
                    }
                });
            }
        });
    }

    /// Phase 4b — sequential: rung 3 of the escalation ladder. Every
    /// cluster whose warm ladder failed gets one cold rebuild — a fresh
    /// fork of its class base session, re-swapped and re-solved. (The
    /// class base session is not `Sync`, so forking cannot happen in
    /// the parallel phase.) A cluster that fails even cold takes rung
    /// 4: it holds its last-good policy and arms the exponential
    /// backoff.
    fn rebuild_cold(&mut self) {
        let budget = self.config.base.solve_budget;
        for c in 0..self.clusters.len() {
            if !self.clusters[c]
                .outcome
                .as_ref()
                .is_some_and(|o| o.needs_cold)
            {
                continue;
            }
            let class = self.clusters[c].class;
            let rebuilt = self.classes[class].base.fork().and_then(|mut session| {
                session.set_budget(budget);
                let system = SystemModel::compose(
                    self.classes[class].provider.clone(),
                    self.clusters[c].rep_model.clone(),
                    self.classes[class].queue,
                )?;
                session.update_model(system.chain())?;
                let solution = session.solve()?;
                Ok((session, solution))
            });
            let cluster = &mut self.clusters[c];
            let outcome = cluster
                .outcome
                .as_mut()
                .expect("needs_cold implies an outcome");
            match rebuilt {
                Ok((session, solution)) => {
                    let report = solution.solve_report();
                    outcome.pivots += report.iterations;
                    outcome.symbolic_reuse += report.symbolic_reuse;
                    outcome.cold_rebuilt = true;
                    outcome.error = None;
                    cluster.session = session;
                    cluster.adopt(&solution);
                }
                Err(DpmError::Infeasible) => {
                    outcome.infeasible = true;
                    outcome.error = None;
                }
                Err(e) => {
                    outcome.error = Some(e.to_string());
                    outcome.held = true;
                    cluster.consecutive_holds = cluster.consecutive_holds.saturating_add(1);
                    cluster.backoff_left = 1u64 << cluster.consecutive_holds.min(6);
                }
            }
        }
    }

    /// Phase 5 — sequential, in device/cluster order: fold the epoch
    /// into a report and share each cluster's policy with its members.
    fn merge(&mut self, evictions: usize) -> FleetReport {
        let mut report = FleetReport {
            epoch: self.epoch,
            devices: self.devices.len(),
            fitted: self.devices.iter().filter(|d| d.fit.is_some()).count(),
            gauge_refits: 0,
            gauge_skips: 0,
            clusters: self.clusters.len(),
            evictions,
            solves: 0,
            skipped: 0,
            warm_reloads: 0,
            cold_reloads: 0,
            pivots: 0,
            symbolic_reuses: 0,
            infeasible: 0,
            errors: 0,
            mean_power: None,
            healthy: 0,
            degraded: 0,
            quarantined: 0,
            strikes: 0,
            quarantines: 0,
            readmissions: 0,
            warm_retries: 0,
            forced_refactors: 0,
            cold_rebuilds: 0,
            holds: 0,
        };
        for cluster in &self.clusters {
            match cluster.outcome.as_ref() {
                None => report.skipped += 1,
                Some(outcome) => {
                    report.solves += 1;
                    report.pivots += outcome.pivots;
                    report.symbolic_reuses += outcome.symbolic_reuse;
                    match outcome.reload {
                        Some(ReloadKind::Warm) => report.warm_reloads += 1,
                        Some(ReloadKind::Cold) => report.cold_reloads += 1,
                        None => {}
                    }
                    if outcome.infeasible {
                        report.infeasible += 1;
                    }
                    if outcome.error.is_some() {
                        report.errors += 1;
                    }
                    report.warm_retries += outcome.warm_retries;
                    if outcome.forced_refactor {
                        report.forced_refactors += 1;
                    }
                    if outcome.cold_rebuilt {
                        report.cold_rebuilds += 1;
                    }
                    if outcome.held {
                        report.holds += 1;
                    }
                }
            }
        }
        let mut power_sum = 0.0;
        let mut powered = 0usize;
        for device in &mut self.devices {
            match device.fit_outcome {
                FitOutcome::Refit => report.gauge_refits += 1,
                FitOutcome::Skipped => report.gauge_skips += 1,
                FitOutcome::None => {}
            }
            if let Some(c) = device.cluster {
                device.policy = Arc::clone(&self.clusters[c].policy);
                if let Some(power) = self.clusters[c].power {
                    power_sum += power;
                    powered += 1;
                }
            }
        }
        if powered > 0 {
            report.mean_power = Some(power_sum / powered as f64);
        }
        report
    }

    /// Phase 6 — sequential: the health-state machine. Ladder holds
    /// strike the failing cluster's representative (its model is what
    /// kept failing); successful solves clear their members' records;
    /// devices at the strike limit are quarantined onto their last-good
    /// policy; probation windows tick down and expire into re-admission.
    fn update_health(&mut self, report: &mut FleetReport) {
        let limit = self.config.quarantine_strikes.max(1);
        let probation = self.config.probation_epochs.max(1);
        let mut cleared = Vec::new();
        for cluster in &self.clusters {
            let Some(outcome) = cluster.outcome.as_ref() else {
                continue;
            };
            if outcome.held {
                if let Some(&rep) = cluster.members.first() {
                    self.devices[rep].strike_pending = true;
                }
            } else if outcome.error.is_none() && !outcome.infeasible {
                cleared.extend_from_slice(&cluster.members);
            }
        }
        for d in cleared {
            let device = &mut self.devices[d];
            if !device.strike_pending && device.health == DeviceHealth::Degraded {
                device.strikes = 0;
                device.health = DeviceHealth::Healthy;
            }
        }
        let mut quarantined_now = Vec::new();
        for (d, device) in self.devices.iter_mut().enumerate() {
            if device.health == DeviceHealth::Quarantined {
                device.strike_pending = false;
                device.probation_left = device.probation_left.saturating_sub(1);
                if device.probation_left == 0 {
                    device.health = DeviceHealth::Healthy;
                    device.strikes = 0;
                    report.readmissions += 1;
                }
            } else if std::mem::take(&mut device.strike_pending) {
                report.strikes += 1;
                device.strikes = device.strikes.saturating_add(1);
                if device.strikes >= limit {
                    device.health = DeviceHealth::Quarantined;
                    device.probation_left = probation;
                    report.quarantines += 1;
                    if let Some(c) = device.cluster.take() {
                        quarantined_now.push((d, c));
                    }
                } else {
                    device.health = DeviceHealth::Degraded;
                }
            }
        }
        // Evict the newly quarantined from their clusters; a cluster
        // left empty is garbage-collected by the next epoch's
        // maintenance and never strikes or solves meanwhile.
        for (d, c) in quarantined_now {
            self.clusters[c].members.retain(|&m| m != d);
        }
        for device in &self.devices {
            match device.health {
                DeviceHealth::Healthy => report.healthy += 1,
                DeviceHealth::Degraded => report.degraded += 1,
                DeviceHealth::Quarantined => report.quarantined += 1,
            }
        }
    }
}

impl Cluster {
    /// Records a successful solve: adopt the policy, clear the hold
    /// backoff, restart the event-gate cooldown.
    fn adopt(&mut self, solution: &dpm_core::PolicySolution) {
        self.policy = Arc::new(solution.policy().clone());
        self.power = Some(solution.power_per_slice());
        self.last_solved = Some(self.representative.clone());
        self.since_solve = 0;
        self.consecutive_holds = 0;
        self.backoff_left = 0;
    }

    /// Recomposes the class system around the representative model,
    /// swaps it into the cluster's forked session and re-solves,
    /// climbing the warm rungs of the escalation ladder on failure:
    /// plain solve → warm retry → forced refactorization. A cluster
    /// that exhausts the warm rungs is handed to the sequential
    /// cold-rebuild pass via [`SolveOutcome::needs_cold`]. On success
    /// the cluster's shared policy is replaced; on any failure the
    /// previous policy stands.
    fn resolve(&mut self, provider: &ServiceProvider, queue: ServiceQueue) -> SolveOutcome {
        let mut outcome = SolveOutcome {
            reload: None,
            pivots: 0,
            symbolic_reuse: 0,
            infeasible: false,
            error: None,
            warm_retries: 0,
            forced_refactor: false,
            needs_cold: false,
            cold_rebuilt: false,
            held: false,
        };
        let system = match SystemModel::compose(provider.clone(), self.rep_model.clone(), queue) {
            Ok(system) => system,
            Err(e) => {
                outcome.error = Some(e.to_string());
                return outcome;
            }
        };
        match self.session.update_model(system.chain()) {
            Ok(kind) => outcome.reload = Some(kind),
            Err(e) => {
                outcome.error = Some(e.to_string());
                return outcome;
            }
        }
        for attempt in 0..3 {
            if attempt == 2 {
                // Rung 2: a budget-exhausted or numerically troubled
                // basis may be beyond warm repair — rebuild the factors
                // from scratch before the last warm attempt.
                outcome.forced_refactor = true;
                self.session.force_refactor();
            }
            match self.session.solve() {
                Ok(solution) => {
                    let report = solution.solve_report();
                    outcome.pivots += report.iterations;
                    outcome.symbolic_reuse += report.symbolic_reuse;
                    // A recovered solve is a clean solve: earlier rungs'
                    // errors are part of the journey, not the verdict.
                    outcome.error = None;
                    self.adopt(&solution);
                    return outcome;
                }
                Err(DpmError::Infeasible) => {
                    let report = self.session.last_report();
                    outcome.pivots += report.iterations;
                    outcome.symbolic_reuse += report.symbolic_reuse;
                    outcome.infeasible = true;
                    outcome.error = None;
                    return outcome;
                }
                Err(e) => {
                    let report = self.session.last_report();
                    outcome.pivots += report.iterations;
                    outcome.symbolic_reuse += report.symbolic_reuse;
                    outcome.error = Some(e.to_string());
                    if attempt == 0 {
                        outcome.warm_retries += 1;
                    }
                }
            }
        }
        outcome.needs_cold = true;
        outcome
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dpm_trace::WindowKind;

    const MEMORY: u32 = 1;

    fn config(workers: usize) -> FleetConfig {
        FleetConfig::new()
            .adaptive(
                AdaptiveConfig::new()
                    .memory(MEMORY)
                    .smoothing(0.5)
                    .horizon(2_000.0)
                    .window(WindowKind::Sliding(400)),
            )
            .workers(workers)
            .cluster_divergence(0.1)
            .resolve_divergence(0.05)
    }

    fn drifting_system(p01: f64, p11: f64) -> SystemModel {
        dpm_systems::drifting::system_for(
            ServiceRequester::two_state(p01, p11).expect("valid two-state SR"),
        )
        .expect("composes")
    }

    /// Deterministic per-device periodic arrival pattern; `density` out
    /// of `period` slices carry a request.
    fn pattern(len: usize, offset: usize, density: usize, period: usize) -> Vec<u32> {
        (0..len)
            .map(|i| u32::from((i + offset) % period < density))
            .collect()
    }

    /// A fleet over two classes with per-device traces of two regimes.
    fn run_fleet(workers: usize, epochs: usize) -> (FleetController, Vec<FleetReport>) {
        let mut fleet = FleetController::new(config(workers));
        fleet
            .add_class(&drifting_system(0.1, 0.6), 8)
            .expect("class 0");
        fleet
            .add_class(&dpm_systems::toy::example_system().expect("toy system"), 4)
            .expect("class 1");
        let mut reports = Vec::new();
        for _ in 0..epochs {
            let arrivals: Vec<Vec<u32>> = (0..fleet.devices())
                .map(|d| {
                    // Half of each class runs a sparse regime, half a
                    // dense one; offsets decorrelate the phases without
                    // changing the fitted statistics much.
                    if d % 2 == 0 {
                        pattern(500, d, 1, 8)
                    } else {
                        pattern(500, d, 5, 8)
                    }
                })
                .collect();
            reports.push(fleet.run_epoch(&arrivals).expect("epoch runs"));
        }
        (fleet, reports)
    }

    #[test]
    fn fleet_results_are_identical_for_worker_counts_1_2_8() {
        let (fleet1, reports1) = run_fleet(1, 3);
        for workers in [2, 8] {
            let (fleet_n, reports_n) = run_fleet(workers, 3);
            assert_eq!(reports1, reports_n, "reports differ at {workers} workers");
            for d in 0..fleet1.devices() {
                assert_eq!(
                    fleet1.device_cluster(d),
                    fleet_n.device_cluster(d),
                    "device {d} cluster differs at {workers} workers"
                );
                assert_eq!(
                    **fleet1.device_policy(d),
                    **fleet_n.device_policy(d),
                    "device {d} policy differs at {workers} workers"
                );
            }
        }
    }

    #[test]
    fn statistically_close_devices_share_one_solve_and_one_policy() {
        let mut fleet = FleetController::new(config(2));
        fleet
            .add_class(&drifting_system(0.1, 0.6), 6)
            .expect("class");
        let arrivals: Vec<Vec<u32>> = (0..6).map(|d| pattern(500, d, 2, 8)).collect();
        let report = fleet.run_epoch(&arrivals).expect("epoch");
        assert_eq!(report.fitted, 6);
        assert_eq!(report.clusters, 1, "alike devices should share a cluster");
        assert_eq!(report.solves, 1, "one cluster, one solve");
        for d in 1..6 {
            assert!(
                Arc::ptr_eq(fleet.device_policy(0), fleet.device_policy(d)),
                "device {d} should share device 0's policy allocation"
            );
        }
    }

    #[test]
    fn forked_cluster_sessions_reuse_the_class_symbolic_analysis() {
        let mut fleet = FleetController::new(config(2));
        fleet
            .add_class(&drifting_system(0.1, 0.6), 6)
            .expect("class");
        // Three distinct regimes → three clusters, three solves, every
        // one on a fork of the same base session.
        let arrivals: Vec<Vec<u32>> = (0..6)
            .map(|d| pattern(500, 0, 1 + 3 * (d % 3), 9))
            .collect();
        let report = fleet.run_epoch(&arrivals).expect("epoch");
        assert_eq!(report.clusters, 3);
        assert_eq!(report.solves, 3);
        // Every warm solve reuses the class analysis at least once (the
        // reload-time refactor; the end-of-solve refactor at a retained
        // basis can add another) — the point is that no cluster pays for
        // a fresh symbolic analysis.
        assert!(
            report.symbolic_reuses >= report.solves,
            "{} reuses for {} solves",
            report.symbolic_reuses,
            report.solves
        );
        assert_eq!(report.cold_reloads, 0);
    }

    #[test]
    fn drifted_device_is_evicted_and_rehomed() {
        let mut fleet = FleetController::new(config(1));
        fleet
            .add_class(&drifting_system(0.1, 0.6), 4)
            .expect("class");
        let alike: Vec<Vec<u32>> = (0..4).map(|d| pattern(500, d, 2, 8)).collect();
        let first = fleet.run_epoch(&alike).expect("epoch 0");
        assert_eq!(first.clusters, 1);
        // Device 3 switches regime hard; its window flushes over two
        // epochs and its fit leaves the cluster.
        let mut drifted = alike;
        drifted[3] = pattern(500, 0, 7, 8);
        let mut last = fleet.run_epoch(&drifted).expect("epoch 1");
        if last.evictions == 0 {
            last = fleet.run_epoch(&drifted).expect("epoch 2");
        }
        assert_eq!(last.evictions, 1, "device 3 should be evicted");
        assert_eq!(last.clusters, 2, "device 3 should found its own cluster");
        assert_ne!(fleet.device_cluster(3), fleet.device_cluster(0));
    }

    #[test]
    fn event_gate_skips_stationary_epochs_and_cooldown_holds() {
        let mut fleet = FleetController::new(config(1));
        fleet
            .add_class(&drifting_system(0.1, 0.6), 3)
            .expect("class");
        let arrivals: Vec<Vec<u32>> = (0..3).map(|_| pattern(500, 0, 2, 8)).collect();
        let first = fleet.run_epoch(&arrivals).expect("epoch 0");
        assert_eq!(first.solves, 1, "first epoch always solves");
        let second = fleet.run_epoch(&arrivals).expect("epoch 1");
        assert_eq!(second.solves, 0, "stationary stream should not re-solve");
        assert_eq!(second.skipped, second.clusters);
        assert_eq!(fleet.total_solves(), 1);
    }

    #[test]
    fn quiet_gate_skips_devices_whose_counts_did_not_move() {
        let mut fleet = FleetController::new(config(1).quiet_divergence(0.0));
        fleet
            .add_class(&drifting_system(0.1, 0.6), 4)
            .expect("class");
        // The pattern period (8) divides the epoch length and the
        // 400-slice window, so after the first fit every further calm
        // epoch refills the window with bit-identical counts.
        let arrivals: Vec<Vec<u32>> = (0..4).map(|d| pattern(400, d, 2, 8)).collect();
        let first = fleet.run_epoch(&arrivals).expect("epoch 0");
        assert_eq!(first.gauge_refits, 4, "first fit is never skipped");
        assert_eq!(first.gauge_skips, 0);
        let second = fleet.run_epoch(&arrivals).expect("epoch 1");
        assert_eq!(second.gauge_skips, 4, "calm epoch should skip all gauges");
        assert_eq!(second.gauge_refits, 0);
        // A regime flip wakes the gauge back up.
        let surged: Vec<Vec<u32>> = (0..4).map(|d| pattern(400, d, 7, 8)).collect();
        let third = fleet.run_epoch(&surged).expect("epoch 2");
        assert_eq!(third.gauge_refits, 4, "surge must refit every device");
    }

    #[test]
    fn churned_devices_come_and_go_without_any_re_prepare() {
        let mut fleet = FleetController::new(config(1));
        let class = fleet
            .add_class(&drifting_system(0.1, 0.6), 2)
            .expect("class");
        let arrivals: Vec<Vec<u32>> = (0..2).map(|d| pattern(500, d, 2, 8)).collect();
        fleet.run_epoch(&arrivals).expect("epoch 0");
        assert_eq!(fleet.clusters(), 1);
        let d = fleet.add_device(class).expect("adds");
        assert_eq!((d, fleet.devices()), (2, 3));
        assert!(
            fleet.device_cluster(d).is_none(),
            "new device is unclustered until its window fills"
        );
        assert!(fleet.add_device(9).is_err(), "unknown class is rejected");
        // Remove the cluster representative: the cluster survives and
        // the surviving member's index shifts down.
        fleet.remove_device(0).expect("removes");
        assert_eq!(fleet.devices(), 2);
        assert_eq!(fleet.device_cluster(0), Some(0));
        // Removing the last member garbage-collects the cluster.
        fleet.remove_device(0).expect("removes");
        assert_eq!(fleet.clusters(), 0);
        assert!(fleet.device_cluster(0).is_none());
        assert!(fleet.remove_device(1).is_err(), "out of range is rejected");
        // The remaining (freshly added) device still runs epochs.
        let report = fleet.run_epoch(&[pattern(500, 0, 2, 8)]).expect("epoch 1");
        assert_eq!((report.devices, report.clusters), (1, 1));
    }

    #[test]
    fn mismatched_arrival_count_is_rejected() {
        let mut fleet = FleetController::new(config(1));
        fleet
            .add_class(&drifting_system(0.1, 0.6), 2)
            .expect("class");
        let err = fleet.run_epoch(&[vec![0, 1]]).expect_err("must reject");
        assert!(matches!(err, DpmError::BadConfiguration { .. }));
    }
}
