//! Closed-loop adaptive power management: **estimate → re-solve →
//! hot-swap**, every epoch, at warm-start cost.
//!
//! The paper computes its optimal randomized policy **offline** from a
//! stationary SR/SP model and concedes (Section VII) that the result
//! degrades when the workload drifts. This crate closes the loop at run
//! time without abandoning the paper's LP-optimal core:
//!
//! 1. a streaming [`WindowedEstimator`]
//!    re-fits the k-memory SR model of Section V over a sliding or
//!    exponential-decay window of the live arrival stream;
//! 2. every epoch the re-fitted chain is recomposed and **hot-swapped**
//!    into the standing occupation-LP session
//!    ([`PreparedOptimization::update_model`]), which keeps its optimal
//!    basis across the swap — a same-support refit preserves the LP's
//!    sparsity pattern, so the re-solve is a *warm*
//!    [`ReloadKind::Warm`] feasibility repair of a handful of pivots,
//!    not a cold two-phase solve;
//! 3. the re-solved randomized policy (equation (16)) replaces the
//!    running one between two slices.
//!
//! The whole loop lives behind the ordinary
//! [`PowerManager`] trait, so an
//! [`AdaptiveController`] runs on the **unmodified**
//! [`Simulator`](dpm_sim::Simulator "Simulator") next to the eager/timeout baselines
//! and the static LP-optimal policy it is measured against.
//!
//! For managing **many** devices at once — sharded estimation across a
//! fixed worker pool, one LP solve per *cluster* of statistically close
//! devices, event-driven re-solves — see the [`fleet`] module and
//! `docs/FLEET.md`.
//!
//! # Example
//!
//! ```
//! use dpm_runtime::{AdaptiveConfig, AdaptiveController};
//! use dpm_sim::{SimConfig, Simulator};
//! use dpm_systems::drifting;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // The blended system: a stationary fit of a drifting workload.
//! let system = drifting::blended_system(7)?;
//! let config = AdaptiveConfig::new()
//!     .epoch_slices(2_000)
//!     .memory(drifting::MEMORY)
//!     .smoothing(drifting::SMOOTHING)
//!     .horizon(100_000.0)
//!     .max_performance_penalty(0.5);
//! let mut controller = AdaptiveController::new(&system, config)?;
//! let trace = drifting::workload(10_000, 7);
//! let mut tracker = dpm_trace::KMemoryTracker::new(drifting::MEMORY).tracker();
//! let stats = Simulator::new(&system, SimConfig::new(10_000))
//!     .run_trace(&mut controller, &trace, &mut tracker)?;
//! assert!(stats.average_power() > 0.0);
//! assert!(!controller.epochs().is_empty());
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]
#![deny(missing_debug_implementations)]

pub mod fleet;
pub mod service;

pub use fleet::{DeviceHealth, FleetConfig, FleetController, FleetReport};
pub use service::{ClassId, DeviceId, FleetService, RestoreReport, SnapshotError};

use dpm_core::{
    DpmError, PolicyOptimizer, PreparedOptimization, ServiceProvider, ServiceQueue,
    ServiceRequester, SolverKind, SystemModel,
};
use dpm_lp::{ReloadKind, SolveBudget, SolveReport};
use dpm_mdp::RandomizedPolicy;
use dpm_sim::{Observation, PowerManager};
use dpm_trace::{SrExtractor, WindowKind, WindowedEstimator};
use rand::Rng;

/// Configuration of an [`AdaptiveController`] (builder style).
///
/// Defaults: 2 000-slice epochs, memory k = 2 with Laplace smoothing
/// 0.5 (strictly positive smoothing keeps the fitted chain's support —
/// and with it the occupation LP's sparsity pattern — stable, which is
/// what keeps the per-epoch reloads warm), a sliding window of 4 epochs,
/// a 100 000-slice horizon, no constraints, the
/// [`SolverKind::RevisedSimplex`] engine, re-solve on any drift
/// (`min_divergence = 0`), no re-solve cooldown, no fit blending, and
/// command 0 as the serve-at-all-costs fallback for infeasible epochs.
#[derive(Debug, Clone)]
pub struct AdaptiveConfig {
    pub(crate) epoch_slices: u64,
    pub(crate) memory: u32,
    pub(crate) smoothing: f64,
    pub(crate) window: Option<WindowKind>,
    pub(crate) discount: f64,
    pub(crate) max_performance_penalty: Option<f64>,
    pub(crate) max_request_loss_rate: Option<f64>,
    pub(crate) solver: SolverKind,
    pub(crate) min_divergence: f64,
    pub(crate) resolve_cooldown: u64,
    pub(crate) blend_fits: bool,
    pub(crate) wake_command: usize,
    pub(crate) solve_budget: SolveBudget,
}

impl Default for AdaptiveConfig {
    fn default() -> Self {
        Self::new()
    }
}

impl AdaptiveConfig {
    /// The default configuration (see the type-level docs).
    pub fn new() -> Self {
        AdaptiveConfig {
            epoch_slices: 2_000,
            memory: 2,
            smoothing: 0.5,
            window: None,
            discount: 1.0 - 1.0 / 100_000.0,
            max_performance_penalty: None,
            max_request_loss_rate: None,
            solver: SolverKind::default(),
            min_divergence: 0.0,
            resolve_cooldown: 0,
            blend_fits: false,
            wake_command: 0,
            solve_budget: SolveBudget::UNLIMITED,
        }
    }

    /// Slices between re-estimate/re-solve points. Clamped to ≥ 1.
    #[must_use = "builder methods return the configured value; dropping it discards the configuration"]
    pub fn epoch_slices(mut self, slices: u64) -> Self {
        self.epoch_slices = slices.max(1);
        self
    }

    /// Memory `k` of the estimated SR model (`2^k` states); must match
    /// the simulated system's SR state count.
    #[must_use = "builder methods return the configured value; dropping it discards the configuration"]
    pub fn memory(mut self, k: u32) -> Self {
        self.memory = k;
        self
    }

    /// Laplace smoothing of every fit. Keep strictly positive: zero
    /// smoothing lets unobserved transitions drop out of the fitted
    /// chain's support, which changes the occupation LP's sparsity
    /// pattern and degrades the per-epoch reloads to cold.
    #[must_use = "builder methods return the configured value; dropping it discards the configuration"]
    pub fn smoothing(mut self, alpha: f64) -> Self {
        self.smoothing = alpha.max(0.0);
        self
    }

    /// The estimator's window (default: sliding over 4 epochs).
    #[must_use = "builder methods return the configured value; dropping it discards the configuration"]
    pub fn window(mut self, window: WindowKind) -> Self {
        self.window = Some(window);
        self
    }

    /// Discount factor `α ∈ (0, 1)` of the per-epoch problems.
    #[must_use = "builder methods return the configured value; dropping it discards the configuration"]
    pub fn discount(mut self, alpha: f64) -> Self {
        self.discount = alpha;
        self
    }

    /// Expected session length in slices; the discount becomes
    /// `1 − 1/horizon`.
    #[must_use = "builder methods return the configured value; dropping it discards the configuration"]
    pub fn horizon(mut self, slices: f64) -> Self {
        self.discount = 1.0 - 1.0 / slices;
        self
    }

    /// Bounds the per-slice performance penalty (average queue backlog)
    /// of every per-epoch solve.
    #[must_use = "builder methods return the configured value; dropping it discards the configuration"]
    pub fn max_performance_penalty(mut self, bound: f64) -> Self {
        self.max_performance_penalty = Some(bound);
        self
    }

    /// Bounds the per-slice request-loss rate of every per-epoch solve.
    #[must_use = "builder methods return the configured value; dropping it discards the configuration"]
    pub fn max_request_loss_rate(mut self, bound: f64) -> Self {
        self.max_request_loss_rate = Some(bound);
        self
    }

    /// The LP engine behind the standing session.
    /// [`SolverKind::RevisedSimplex`] (the default) is the only engine
    /// with warm reloads; the others re-solve cold each epoch (correct,
    /// just slower) and serve as cross-checks.
    #[must_use = "builder methods return the configured value; dropping it discards the configuration"]
    pub fn solver(mut self, kind: SolverKind) -> Self {
        self.solver = kind;
        self
    }

    /// Drift gate: when the estimator's divergence between consecutive
    /// fits stays *below* this threshold, the epoch keeps the current
    /// policy and skips the re-solve entirely. 0 (the default) re-solves
    /// every epoch.
    #[must_use = "builder methods return the configured value; dropping it discards the configuration"]
    pub fn min_divergence(mut self, threshold: f64) -> Self {
        self.min_divergence = threshold.max(0.0);
        self
    }

    /// Event-driven damping of the re-solve cadence: after a re-solve,
    /// the next `epochs` epoch boundaries keep the current policy even
    /// when the drift gate fires (fits still happen every epoch, so the
    /// estimator and its divergence gauge stay live). Together with
    /// [`Self::min_divergence`] this turns the fixed-epoch refit into an
    /// event-driven one: re-solve on threshold crossing, then hold for
    /// the cooldown. 0 (the default) disables the hold. The
    /// infeasible-fallback escape hatch bypasses the cooldown — any
    /// feasible model is an upgrade over serve-at-all-costs.
    #[must_use = "builder methods return the configured value; dropping it discards the configuration"]
    pub fn resolve_cooldown(mut self, epochs: u64) -> Self {
        self.resolve_cooldown = epochs;
        self
    }

    /// Confidence-weighted blending of consecutive fits: the estimator
    /// carries the previous blended fit as a pseudo-count prior weighted
    /// by effective sample count (see
    /// [`WindowedEstimator::with_blending`]), so a sparsely observed
    /// epoch moves the deployed model less than a data-rich one. Off by
    /// default — blending trades regime-switch response time for
    /// stability under thin windows.
    #[must_use = "builder methods return the configured value; dropping it discards the configuration"]
    pub fn blend_fits(mut self) -> Self {
        self.blend_fits = true;
        self
    }

    /// Caps the work of every solve on the standing session (pivots
    /// and/or refactorizations, see [`SolveBudget`]). An exhausted
    /// budget is a planned, recoverable stop: the epoch climbs the
    /// escalation ladder (warm retry resumes from the partial basis,
    /// then forced refactorization, then a cold rebuild) and in the
    /// worst case holds the last-good policy under exponential backoff.
    /// Unlimited by default. The construction-time solve runs under the
    /// same budget, so a budget too small for one cold solve fails
    /// construction.
    #[must_use = "builder methods return the configured value; dropping it discards the configuration"]
    pub fn solve_budget(mut self, budget: SolveBudget) -> Self {
        self.solve_budget = budget;
        self
    }

    /// The command issued unconditionally while an epoch's constraints
    /// are infeasible under the fitted model — serve-at-all-costs until
    /// a later epoch becomes feasible again.
    #[must_use = "builder methods return the configured value; dropping it discards the configuration"]
    pub fn infeasible_fallback_command(mut self, command: usize) -> Self {
        self.wake_command = command;
        self
    }

    fn effective_window(&self) -> WindowKind {
        self.window.unwrap_or(WindowKind::Sliding(
            (4 * self.epoch_slices as usize).max(self.memory as usize + 1),
        ))
    }
}

/// The highest rung of the failure-escalation ladder an epoch's
/// re-solve climbed before it produced an answer (or gave up). Rungs
/// are tried in order; each is strictly more expensive and strictly
/// more likely to recover than the one before.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LadderRung {
    /// The first warm attempt solved — the everyday path.
    Direct,
    /// The retry on the untouched session solved (a budget-exhausted
    /// solve resumes from its partial basis, so a retry finishes work
    /// the first attempt started).
    WarmRetry,
    /// The solve after a forced basis refactorization solved.
    ForcedRefactor,
    /// A cold re-prepare of the whole problem solved; the standing
    /// session was replaced.
    ColdRebuild,
    /// Nothing solved: the last-good policy holds and the re-solve
    /// cadence backs off exponentially.
    Hold,
}

/// What one epoch of the adaptation loop did — the runtime's flight
/// recorder, and the raw material of the `adaptive_runtime` benchmark's
/// warm-vs-cold counters.
#[derive(Debug, Clone)]
#[non_exhaustive]
pub struct EpochRecord {
    /// 0-based epoch index.
    pub epoch: u64,
    /// Slice at which the epoch boundary fired.
    pub slice: u64,
    /// The estimator's divergence gauge at fit time (`None` on the first
    /// fit).
    pub divergence: Option<f64>,
    /// The SR model fitted for this epoch — kept so offline analyses
    /// (and the warm≡cold agreement tests) can reproduce the epoch's
    /// problem exactly.
    pub requester: ServiceRequester,
    /// `false` when the drift gate kept the previous policy without
    /// re-solving.
    pub refreshed: bool,
    /// How the standing session took the model swap (`None` when the
    /// epoch was skipped or the swap failed before the reload).
    pub reload: Option<ReloadKind>,
    /// The re-solve's report (`None` when skipped or failed earlier).
    pub report: Option<SolveReport>,
    /// `true` when the constraints were infeasible under the fitted
    /// model and the fallback command took over.
    pub infeasible: bool,
    /// Non-infeasibility failure of the swap/solve, if any (the
    /// controller keeps the previous policy and carries on).
    pub error: Option<String>,
    /// The highest escalation-ladder rung this epoch's re-solve climbed
    /// (`None` when the epoch was skipped or failed before any solve).
    pub rung: Option<LadderRung>,
    /// Model-predicted power per slice of the swapped-in policy.
    pub power_per_slice: Option<f64>,
    /// Model-predicted performance penalty per slice of the swapped-in
    /// policy.
    pub performance_per_slice: Option<f64>,
}

/// The policy currently driving decisions.
#[derive(Debug, Clone)]
enum ActivePolicy {
    /// A solved randomized policy table.
    Table(RandomizedPolicy),
    /// Serve-at-all-costs fallback while the fitted problem is
    /// infeasible.
    Fallback,
}

/// A closed-loop adaptive power manager: owns the streaming estimator,
/// the standing constrained-LP session and the currently active
/// randomized policy, and re-estimates/re-solves/hot-swaps at every
/// epoch boundary — all behind the ordinary
/// [`PowerManager`] trait, so it runs on the
/// unmodified [`Simulator`](dpm_sim::Simulator "Simulator").
///
/// Construction solves the configured problem once on the given system
/// (the "static" model — typically a blended offline fit) so the
/// controller starts from the same policy a non-adaptive deployment
/// would ship with; adaptation then takes over from the first epoch.
#[derive(Debug)]
pub struct AdaptiveController {
    config: AdaptiveConfig,
    provider: ServiceProvider,
    queue: ServiceQueue,
    /// `issuing[s]`: does SR state `s` issue requests? How the arrival
    /// bit is read back off the observed composite state (the arrivals
    /// of a slice are encoded in the *destination* SR state, matching
    /// the composer's convention).
    issuing: Vec<bool>,
    estimator: WindowedEstimator,
    prepared: PreparedOptimization,
    policy: ActivePolicy,
    initial_policy: RandomizedPolicy,
    epochs: Vec<EpochRecord>,
    next_refresh: u64,
    /// Epoch boundaries left before the re-solve cooldown expires.
    cooldown_left: u64,
    /// Consecutive epochs the escalation ladder ended in a hold — the
    /// exponent of the backoff.
    consecutive_holds: u32,
    label: String,
}

impl AdaptiveController {
    /// Builds the controller around `system` — the composed model whose
    /// SR occupies the same `2^k` state space the estimator will refit
    /// (its chain is also the initial model the first policy is solved
    /// from).
    ///
    /// # Errors
    ///
    /// * [`DpmError::BadConfiguration`] when the system's SR state count
    ///   is not `2^memory` (the policy table is indexed by the observed
    ///   composite state, so the state spaces must align), when the
    ///   infeasible-fallback command is out of range for the system, or
    ///   for an invalid estimator/optimizer configuration.
    /// * [`DpmError::Infeasible`] when the constraints admit no policy
    ///   under the initial model.
    /// * Propagated estimation/LP failures.
    pub fn new(system: &SystemModel, config: AdaptiveConfig) -> Result<Self, DpmError> {
        let expected = 1usize.checked_shl(config.memory).unwrap_or(0);
        if config.memory == 0 || system.requester().num_states() != expected {
            return Err(DpmError::BadConfiguration {
                reason: format!(
                    "adaptive controller with memory {} needs a {expected}-state SR, \
                     the system has {}",
                    config.memory,
                    system.requester().num_states()
                ),
            });
        }
        if config.wake_command >= system.num_commands() {
            return Err(DpmError::BadConfiguration {
                reason: format!(
                    "infeasible-fallback command {} is out of range for a system with {} \
                     commands",
                    config.wake_command,
                    system.num_commands()
                ),
            });
        }
        let extractor = SrExtractor::try_new(config.memory)?.with_smoothing(config.smoothing);
        let estimator = WindowedEstimator::new(extractor, config.effective_window())?;
        let estimator = if config.blend_fits {
            estimator.with_blending()
        } else {
            estimator
        };

        let mut optimizer = PolicyOptimizer::new(system)
            .discount(config.discount)
            .solver(config.solver);
        if let Some(bound) = config.max_performance_penalty {
            optimizer = optimizer.max_performance_penalty(bound);
        }
        if let Some(bound) = config.max_request_loss_rate {
            optimizer = optimizer.max_request_loss_rate(bound);
        }
        let mut prepared = optimizer.prepare()?;
        prepared.set_budget(config.solve_budget);
        let initial = prepared.solve()?;
        let initial_policy = initial.policy().clone();

        let issuing = (0..system.requester().num_states())
            .map(|s| system.requester().requests(s) > 0)
            .collect();
        let label = format!(
            "adaptive(k={}, epoch={})",
            config.memory, config.epoch_slices
        );
        Ok(AdaptiveController {
            next_refresh: config.epoch_slices,
            config,
            provider: system.provider().clone(),
            queue: *system.queue(),
            issuing,
            estimator,
            prepared,
            policy: ActivePolicy::Table(initial_policy.clone()),
            initial_policy,
            epochs: Vec::new(),
            cooldown_left: 0,
            consecutive_holds: 0,
            label,
        })
    }

    /// Overrides the display name.
    #[must_use = "builder methods return the configured value; dropping it discards the configuration"]
    pub fn with_label(mut self, label: impl Into<String>) -> Self {
        self.label = label.into();
        self
    }

    /// The configuration in force.
    pub fn config(&self) -> &AdaptiveConfig {
        &self.config
    }

    /// The per-epoch flight records of the current run (cleared by
    /// [`PowerManager::reset`], i.e. at the start of every simulation).
    pub fn epochs(&self) -> &[EpochRecord] {
        &self.epochs
    }

    /// Epochs whose model swap reloaded warm — the acceptance counter:
    /// on same-support refits with the default engine this should be
    /// *all* refreshed epochs.
    pub fn warm_reloads(&self) -> usize {
        self.epochs
            .iter()
            .filter(|e| e.reload == Some(ReloadKind::Warm))
            .count()
    }

    /// Epochs whose model swap fell back to a cold rebuild.
    pub fn cold_reloads(&self) -> usize {
        self.epochs
            .iter()
            .filter(|e| e.reload == Some(ReloadKind::Cold))
            .count()
    }

    /// Epochs the drift gate skipped (kept the policy, no solve).
    pub fn skipped_epochs(&self) -> usize {
        self.epochs.iter().filter(|e| !e.refreshed).count()
    }

    /// Epochs whose escalation ladder ended in a last-good-policy hold.
    pub fn held_epochs(&self) -> usize {
        self.epochs
            .iter()
            .filter(|e| e.rung == Some(LadderRung::Hold))
            .count()
    }

    /// Total simplex pivots spent by the per-epoch re-solves.
    pub fn epoch_pivots(&self) -> usize {
        self.epochs
            .iter()
            .filter_map(|e| e.report.as_ref())
            .map(|r| r.iterations)
            .sum()
    }

    /// The currently active policy table (`None` while the infeasible
    /// fallback is driving).
    pub fn current_policy(&self) -> Option<&RandomizedPolicy> {
        match &self.policy {
            ActivePolicy::Table(p) => Some(p),
            ActivePolicy::Fallback => None,
        }
    }

    /// Hardens a solved policy for **closed-loop** deployment: states the
    /// fitted model deems (essentially) unreachable keep no meaningful
    /// action in the occupation measure, and the LP extraction's
    /// min-immediate-cost tie-break puts the cheapest command there —
    /// usually "sleep", which in a power-managed system is an **absorbing
    /// trap**: when reality drifts off the model's support (a regime
    /// switch mid-epoch, say) the system can land in `(off, busy, queue
    /// full)`-style states whose prescribed action keeps it there until
    /// the next epoch. Off-measure states get the serve-at-all-costs
    /// command instead, so excursions outside the model's support drain
    /// back into it. On-measure states keep the LP's exact randomization.
    fn off_measure_guard(
        &self,
        solution: &dpm_core::PolicySolution,
    ) -> Result<RandomizedPolicy, DpmError> {
        let occupation = solution.constrained().occupation();
        let frequencies = occupation.state_frequencies();
        let floor = occupation.total_visits() * 1e-9;
        let policy = solution.policy();
        let commands = policy.decision(0).len();
        let rows: Vec<Vec<f64>> = frequencies
            .iter()
            .enumerate()
            .map(|(s, &freq)| {
                if freq > floor {
                    policy.decision(s).to_vec()
                } else {
                    let mut row = vec![0.0; commands];
                    row[self.config.wake_command] = 1.0;
                    row
                }
            })
            .collect();
        Ok(RandomizedPolicy::new(rows)?)
    }

    /// One epoch boundary: fit, gate on drift, recompose, hot-swap.
    fn refresh(&mut self, slice: u64) {
        let fitted = match self.estimator.fit() {
            Ok(sr) => sr,
            // Unreachable given the `is_ready` guard at the call site;
            // keep the previous policy if it ever happens.
            Err(_) => return,
        };
        let divergence = self.estimator.divergence();
        let mut record = EpochRecord {
            epoch: self.epochs.len() as u64,
            slice,
            divergence,
            requester: fitted.clone(),
            refreshed: false,
            reload: None,
            report: None,
            infeasible: false,
            error: None,
            rung: None,
            power_per_slice: None,
            performance_per_slice: None,
        };
        // Drift gate: skip the solve when the model barely moved — unless
        // the fallback is driving (then any feasible model is an upgrade)
        // or this is the first fit (no divergence to gate on). The
        // cooldown holds the policy for a few epochs after each re-solve
        // (the fallback escape hatch bypasses it).
        let drifted = divergence.is_none_or(|d| d >= self.config.min_divergence);
        let cooled = self.cooldown_left == 0;
        self.cooldown_left = self.cooldown_left.saturating_sub(1);
        let must = matches!(self.policy, ActivePolicy::Fallback);
        if (drifted && cooled) || must {
            record.refreshed = true;
            self.cooldown_left = self.config.resolve_cooldown;
            if let Err(e) = self.hot_swap(fitted, &mut record) {
                record.error = Some(e.to_string());
            }
        }
        self.epochs.push(record);
    }

    /// Adopts a solved epoch into the record and the active policy.
    fn adopt(
        &mut self,
        solution: &dpm_core::PolicySolution,
        rung: LadderRung,
        record: &mut EpochRecord,
    ) -> Result<(), DpmError> {
        record.rung = Some(rung);
        record.report = Some(solution.solve_report().clone());
        record.power_per_slice = Some(solution.power_per_slice());
        record.performance_per_slice = Some(solution.performance_per_slice());
        self.policy = ActivePolicy::Table(self.off_measure_guard(solution)?);
        self.consecutive_holds = 0;
        Ok(())
    }

    /// A fresh prepared session for `system` under the configured
    /// bounds and budget — rung 3 of the escalation ladder.
    fn reprepare(&self, system: &SystemModel) -> Result<PreparedOptimization, DpmError> {
        let config = &self.config;
        let mut optimizer = PolicyOptimizer::new(system)
            .discount(config.discount)
            .solver(config.solver);
        if let Some(bound) = config.max_performance_penalty {
            optimizer = optimizer.max_performance_penalty(bound);
        }
        if let Some(bound) = config.max_request_loss_rate {
            optimizer = optimizer.max_request_loss_rate(bound);
        }
        let mut prepared = optimizer.prepare()?;
        prepared.set_budget(config.solve_budget);
        Ok(prepared)
    }

    /// Recomposes the system around the fitted SR and swaps it into the
    /// standing session; on success the re-solved policy replaces the
    /// active one, on infeasibility the fallback command takes over.
    /// Solve failures climb the escalation ladder: warm retry → forced
    /// refactorization → cold rebuild of the whole session → hold the
    /// last-good policy with exponential cooldown backoff.
    fn hot_swap(
        &mut self,
        fitted: ServiceRequester,
        record: &mut EpochRecord,
    ) -> Result<(), DpmError> {
        let system = SystemModel::compose(self.provider.clone(), fitted, self.queue)?;
        record.reload = Some(self.prepared.update_model(system.chain())?);
        let warm_rungs = [
            LadderRung::Direct,
            LadderRung::WarmRetry,
            LadderRung::ForcedRefactor,
        ];
        for rung in warm_rungs {
            if rung == LadderRung::ForcedRefactor {
                self.prepared.force_refactor();
            }
            match self.prepared.solve() {
                Ok(solution) => return self.adopt(&solution, rung, record),
                Err(DpmError::Infeasible) => {
                    record.rung = Some(rung);
                    record.infeasible = true;
                    record.report = Some(self.prepared.last_report().clone());
                    self.policy = ActivePolicy::Fallback;
                    self.consecutive_holds = 0;
                    return Ok(());
                }
                Err(_) => record.report = Some(self.prepared.last_report().clone()),
            }
        }
        // Rung 3: rebuild the whole prepared session from scratch. The
        // old session (and its poisoned/exhausted basis) is replaced
        // only if the rebuild itself succeeds.
        let cold = self.reprepare(&system).and_then(|mut prepared| {
            let solved = prepared.solve();
            solved.map(|solution| (prepared, solution))
        });
        match cold {
            Ok((prepared, solution)) => {
                self.prepared = prepared;
                self.adopt(&solution, LadderRung::ColdRebuild, record)
            }
            Err(DpmError::Infeasible) => {
                record.rung = Some(LadderRung::ColdRebuild);
                record.infeasible = true;
                self.policy = ActivePolicy::Fallback;
                self.consecutive_holds = 0;
                Ok(())
            }
            // Rung 4: hold the last-good policy; back off exponentially
            // so a persistently failing problem is not hammered every
            // epoch (capped at 64 epochs).
            Err(e) => {
                record.rung = Some(LadderRung::Hold);
                self.consecutive_holds = self.consecutive_holds.saturating_add(1);
                self.cooldown_left = self
                    .config
                    .resolve_cooldown
                    .max(1u64 << self.consecutive_holds.min(6));
                Err(e)
            }
        }
    }
}

impl PowerManager for AdaptiveController {
    fn decide(&mut self, observation: &Observation, rng: &mut dyn rand::RngCore) -> usize {
        // The arrivals of the previous slice are encoded in the observed
        // (destination) SR state; slice 0 shows the initial state, which
        // nobody arrived in.
        if observation.slice > 0 {
            self.estimator
                .observe(u32::from(self.issuing[observation.state.sr]));
        }
        if observation.slice >= self.next_refresh && self.estimator.is_ready() {
            self.refresh(observation.slice);
            self.next_refresh = observation.slice + self.config.epoch_slices;
        }
        match &self.policy {
            ActivePolicy::Fallback => self.config.wake_command,
            ActivePolicy::Table(policy) => {
                let decision = policy.decision(observation.state_index);
                let draw: f64 = rng.gen();
                let mut acc = 0.0;
                for (command, &p) in decision.iter().enumerate() {
                    acc += p;
                    if draw < acc {
                        return command;
                    }
                }
                decision.len() - 1 // numerical slack: land on the last command
            }
        }
    }

    fn reset(&mut self) {
        self.estimator.reset();
        self.policy = ActivePolicy::Table(self.initial_policy.clone());
        self.epochs.clear();
        self.next_refresh = self.config.epoch_slices;
        self.cooldown_left = 0;
        self.consecutive_holds = 0;
    }

    fn name(&self) -> String {
        self.label.clone()
    }
}
