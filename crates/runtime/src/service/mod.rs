//! The fleet as a **long-running service**: device churn, incremental
//! cluster maintenance and checkpoint/restore on top of
//! [`FleetController`].
//!
//! [`FleetController`] is a batch object — its population is fixed when
//! the classes are added, and all estimator/cluster state dies with the
//! process. A production power manager faces a different lifecycle:
//! devices arrive and leave while the manager runs, whole racks shift
//! workload in correlated waves, and the process hosting the manager
//! restarts. [`FleetService`] closes that gap:
//!
//! * **churn** — [`FleetService::add_device`] /
//!   [`FleetService::remove_device`] /
//!   [`FleetService::register_class`] operate on a *live* fleet. A new
//!   device reuses its class's prepared base session and symbolic LU
//!   analysis as-is (nothing is re-prepared, no LP is solved on
//!   arrival) and is homed into an existing cluster — or seeds a fresh
//!   one via a forked session — once its estimator window fills. A
//!   removal evicts the device from its cluster and garbage-collects
//!   the cluster if it was the last member. Devices are addressed by
//!   stable [`DeviceId`]s that survive removals and are never reused;
//!   the controller's dense indices stay an implementation detail.
//! * **incremental gauge** — with
//!   [`FleetConfig::quiet_divergence`](crate::FleetConfig::quiet_divergence)
//!   set, a device whose windowed counts did not materially move since
//!   its last fit skips the epoch's fit/gauge recomputation entirely
//!   (a dirty-flag check on the raw count table,
//!   [`WindowedEstimator::count_drift`](dpm_trace::WindowedEstimator::count_drift)),
//!   so quiet epochs cost ~nothing beyond feeding the window. The
//!   skip/refit split is reported per epoch in
//!   [`FleetReport::gauge_skips`] / [`FleetReport::gauge_refits`].
//! * **checkpoint/restore** — [`FleetService::checkpoint`] serializes
//!   the full adaptive state (estimator counts, fitted models, cluster
//!   membership, active policies, event-gate cooldowns) into a
//!   versioned binary snapshot; [`FleetService::restore`] rebuilds a
//!   service from it, replaying at most **one warm solve per
//!   previously-solved cluster** to rehydrate the LP sessions — no
//!   cold-solve storm — after which the next epoch's [`FleetReport`]
//!   is bit-identical to an uninterrupted run's. The format is
//!   described in [`snapshot`] and `docs/FLEET.md`.
//!
//! # Example
//!
//! ```
//! use dpm_runtime::{AdaptiveConfig, FleetConfig, FleetService};
//! use dpm_systems::drifting;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let config = FleetConfig::new()
//!     .adaptive(
//!         AdaptiveConfig::new()
//!             .memory(drifting::MEMORY)
//!             .smoothing(drifting::SMOOTHING)
//!             .horizon(drifting::HORIZON),
//!     )
//!     .quiet_divergence(0.0);
//! let mut service = FleetService::new(config);
//! let class = service.register_class(&drifting::blended_system(7)?)?;
//! let a = service.add_device(class)?;
//! let b = service.add_device(class)?;
//! let trace = drifting::workload(500, 7);
//! let report = service.run_epoch(&[(a, trace.clone()), (b, trace)])?;
//! assert_eq!(report.devices, 2);
//!
//! // Snapshot the live state, remove a device, keep running.
//! let mut snapshot = Vec::new();
//! service.checkpoint(&mut snapshot)?;
//! service.remove_device(a)?;
//! assert_eq!(service.devices(), 1);
//! # Ok(())
//! # }
//! ```

pub mod snapshot;

use std::collections::BTreeMap;
use std::fmt;
use std::io::{Read, Write};
use std::sync::Arc;

use dpm_core::{DpmError, ServiceRequester, SystemModel};
use dpm_mdp::RandomizedPolicy;

use crate::fleet::{DeviceHealth, FleetConfig, FleetController, FleetReport};

pub use snapshot::{RestoreReport, SnapshotError};

/// Stable handle of a managed device. Ids are allocated monotonically
/// by [`FleetService::add_device`] and **never reused**: removing a
/// device retires its id for the lifetime of the service, and a
/// re-added device gets a fresh one.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct DeviceId(pub(crate) u64);

impl DeviceId {
    /// The raw id value (stable across churn and snapshots).
    pub fn raw(self) -> u64 {
        self.0
    }
}

impl fmt::Display for DeviceId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "device#{}", self.0)
    }
}

/// Handle of a registered device class (classes cannot be retired).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ClassId(pub(crate) usize);

impl ClassId {
    /// The raw class index.
    pub fn raw(self) -> usize {
        self.0
    }
}

impl fmt::Display for ClassId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "class#{}", self.0)
    }
}

/// A long-running fleet: [`FleetController`] plus stable device
/// identity, runtime churn and checkpoint/restore (see the
/// [module docs](self)).
#[derive(Debug)]
pub struct FleetService {
    pub(crate) controller: FleetController,
    /// `ids[i]` is the id of the controller's device index `i`
    /// (ascending — ids are allocated monotonically and removals
    /// preserve order).
    pub(crate) ids: Vec<DeviceId>,
    /// Reverse map: raw id → controller device index.
    pub(crate) index: BTreeMap<u64, usize>,
    /// Next id to allocate; never decreases.
    pub(crate) next_id: u64,
}

impl FleetService {
    /// An empty service with the given fleet configuration.
    pub fn new(config: FleetConfig) -> Self {
        FleetService {
            controller: FleetController::new(config),
            ids: Vec::new(),
            index: BTreeMap::new(),
            next_id: 0,
        }
    }

    /// Registers a device class at runtime — the class problem is
    /// prepared and solved once (the shared symbolic LU analysis and
    /// base policy every future member starts from), no devices are
    /// created.
    ///
    /// # Errors
    ///
    /// Same validation as [`FleetController::add_class`].
    pub fn register_class(&mut self, system: &SystemModel) -> Result<ClassId, DpmError> {
        self.controller.add_class(system, 0).map(ClassId)
    }

    /// Adds one device of `class` to the live fleet and returns its
    /// stable id. Reuses the class's prepared base session — nothing is
    /// re-prepared and no LP is solved (see
    /// [`FleetController::add_device`]).
    ///
    /// # Errors
    ///
    /// [`DpmError::BadConfiguration`] for an unknown class.
    pub fn add_device(&mut self, class: ClassId) -> Result<DeviceId, DpmError> {
        self.controller.add_device(class.0)?;
        let id = DeviceId(self.next_id);
        self.next_id += 1;
        self.index.insert(id.0, self.ids.len());
        self.ids.push(id);
        Ok(id)
    }

    /// Removes a device from the live fleet, evicting it from its
    /// cluster (the cluster is garbage-collected if this was its last
    /// member; see [`FleetController::remove_device`]). The id is
    /// retired — re-adding the device later yields a fresh id and this
    /// one is rejected forever after.
    ///
    /// # Errors
    ///
    /// [`DpmError::BadConfiguration`] for an unknown or retired id.
    pub fn remove_device(&mut self, id: DeviceId) -> Result<(), DpmError> {
        let Some(&idx) = self.index.get(&id.0) else {
            return Err(DpmError::BadConfiguration {
                reason: format!("{id} is unknown or already removed"),
            });
        };
        self.controller.remove_device(idx)?;
        self.ids.remove(idx);
        self.index = self
            .ids
            .iter()
            .enumerate()
            .map(|(i, id)| (id.0, i))
            .collect();
        Ok(())
    }

    /// One adaptation epoch over the live fleet. `arrivals` pairs
    /// device ids with their 0/1 request streams; devices not listed
    /// observe an empty stream this epoch (their estimators idle at
    /// their current window). Delegates to
    /// [`FleetController::run_epoch`] — same five phases, same
    /// bit-identical-for-any-worker-count guarantee.
    ///
    /// # Errors
    ///
    /// [`DpmError::BadConfiguration`] for an unknown/retired id or a
    /// duplicate entry; per-cluster solve failures stay local exactly
    /// as in [`FleetController::run_epoch`].
    pub fn run_epoch(
        &mut self,
        arrivals: &[(DeviceId, Vec<u32>)],
    ) -> Result<FleetReport, DpmError> {
        let mut dense = vec![Vec::new(); self.ids.len()];
        let mut seen = vec![false; self.ids.len()];
        for (id, stream) in arrivals {
            let Some(&idx) = self.index.get(&id.0) else {
                return Err(DpmError::BadConfiguration {
                    reason: format!("epoch arrivals address {id}, which is unknown or removed"),
                });
            };
            if seen[idx] {
                return Err(DpmError::BadConfiguration {
                    reason: format!("epoch arrivals list {id} twice"),
                });
            }
            seen[idx] = true;
            dense[idx] = stream.clone();
        }
        self.controller.run_epoch(&dense)
    }

    /// One adaptation epoch fed with **raw telemetry** instead of
    /// pre-validated 0/1 streams: each device's stream of per-slice
    /// arrival counts as `f64`s, exactly as a collector would report
    /// them. Every stream is screened at the ingest boundary
    /// ([`dpm_trace::screen_arrivals`]); a device whose stream fails
    /// screening (NaN, ±∞, negative or non-integral counts) takes a
    /// strike on the health-state machine and idles this epoch — its
    /// poisoned data never reaches an estimator window. Devices with
    /// clean streams run the ordinary [`Self::run_epoch`].
    ///
    /// # Errors
    ///
    /// [`DpmError::BadConfiguration`] for an unknown/retired id or a
    /// duplicate entry; a *rejected stream* is not an error — rejection
    /// is the containment working.
    pub fn run_epoch_telemetry(
        &mut self,
        telemetry: &[(DeviceId, Vec<f64>)],
    ) -> Result<FleetReport, DpmError> {
        let mut clean = Vec::with_capacity(telemetry.len());
        let mut rejected = Vec::new();
        for (id, raw) in telemetry {
            let Some(&idx) = self.index.get(&id.0) else {
                return Err(DpmError::BadConfiguration {
                    reason: format!("epoch telemetry addresses {id}, which is unknown or removed"),
                });
            };
            match dpm_trace::screen_arrivals(raw) {
                Ok(bits) => clean.push((*id, bits)),
                Err(_) => rejected.push(idx),
            }
        }
        for idx in rejected {
            self.controller.strike(idx);
        }
        self.run_epoch(&clean)
    }

    /// The containment state of `id` (`None` for an unknown or retired
    /// id).
    pub fn health_of(&self, id: DeviceId) -> Option<DeviceHealth> {
        let &idx = self.index.get(&id.0)?;
        Some(self.controller.device_health(idx))
    }

    /// Devices currently in the fleet.
    pub fn devices(&self) -> usize {
        self.ids.len()
    }

    /// Clusters currently alive.
    pub fn clusters(&self) -> usize {
        self.controller.clusters()
    }

    /// Registered device classes.
    pub fn classes(&self) -> usize {
        self.controller.classes.len()
    }

    /// Epochs run so far (== the next report's `epoch` index).
    pub fn epoch(&self) -> u64 {
        self.controller.epoch
    }

    /// The ids of the managed devices, in the controller's device
    /// order (ascending by id).
    pub fn device_ids(&self) -> &[DeviceId] {
        &self.ids
    }

    /// Whether `id` names a currently managed device.
    pub fn contains(&self, id: DeviceId) -> bool {
        self.index.contains_key(&id.0)
    }

    /// The policy currently assigned to `id` (`None` for an unknown or
    /// retired id).
    pub fn policy(&self, id: DeviceId) -> Option<&Arc<RandomizedPolicy>> {
        let &idx = self.index.get(&id.0)?;
        Some(self.controller.device_policy(idx))
    }

    /// The cluster `id` currently belongs to (`None` for an unknown or
    /// retired id, or while the device's estimator is warming up).
    pub fn cluster_of(&self, id: DeviceId) -> Option<usize> {
        let &idx = self.index.get(&id.0)?;
        self.controller.device_cluster(idx)
    }

    /// The latest fitted model of `id` (`None` for an unknown or
    /// retired id, or before the first fit).
    pub fn fit_of(&self, id: DeviceId) -> Option<&ServiceRequester> {
        let &idx = self.index.get(&id.0)?;
        self.controller.device_fit(idx)
    }

    /// Read-only access to the wrapped controller (per-epoch history,
    /// aggregate counters, dense-index accessors).
    pub fn controller(&self) -> &FleetController {
        &self.controller
    }

    /// Serializes the service's full adaptive state — estimator
    /// counts, fitted models, cluster membership, active policies,
    /// event-gate cooldowns, id bookkeeping — into the versioned
    /// binary snapshot format of [`snapshot`]. The registered classes
    /// themselves are **not** serialized (they are code + base models,
    /// not runtime state): [`Self::restore`] requires a service with
    /// the same classes registered in the same order.
    ///
    /// # Errors
    ///
    /// [`SnapshotError::Io`] when the writer fails.
    pub fn checkpoint(&self, writer: &mut impl Write) -> Result<(), SnapshotError> {
        snapshot::write_snapshot(self, writer)
    }

    /// Rebuilds the service's adaptive state from a snapshot produced
    /// by [`Self::checkpoint`], replacing whatever state this service
    /// held. The service must have the same classes registered (same
    /// order, same LP shape) as the checkpointed one. Cluster LP
    /// sessions are rehydrated by forking each class's base session
    /// and replaying at most one warm solve per previously-solved
    /// cluster — no cold-solve storm; the replay cost is returned in
    /// the [`RestoreReport`]. After a restore the next epoch's
    /// [`FleetReport`] is bit-identical to the uninterrupted run's.
    ///
    /// The per-epoch [`FleetController::history`] is not part of the
    /// snapshot: a restored service starts with an empty history while
    /// its epoch counter continues from the checkpoint.
    ///
    /// # Errors
    ///
    /// [`SnapshotError::Io`] when the reader fails,
    /// [`SnapshotError::Format`] for a malformed/truncated snapshot or
    /// unsupported version, [`SnapshotError::Mismatch`] when the
    /// registered classes do not match the checkpoint, and
    /// [`SnapshotError::Dpm`] when rebuilding models or replaying a
    /// solve fails. On error the service is left unchanged.
    pub fn restore(&mut self, reader: &mut impl Read) -> Result<RestoreReport, SnapshotError> {
        snapshot::read_snapshot(self, reader)
    }
}
