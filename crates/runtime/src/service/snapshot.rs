//! The versioned binary snapshot behind [`FleetService::checkpoint`] /
//! [`FleetService::restore`] — serde-free, in-house writer/reader.
//!
//! # Format (version 2)
//!
//! All integers little-endian; `f64` as IEEE-754 bit patterns
//! ([`f64::to_bits`]), so a round trip is **bit-identical**. Layout:
//!
//! ```text
//! magic   b"DPMFLEET"                      8 bytes
//! version u32                              currently 2
//! section*                                 tag u32, payload-len u64, payload, crc32 u32
//! end     tag 0, len 0, crc32 u32
//! ```
//!
//! Each section frame (tag + length + payload) is closed by its CRC-32
//! (IEEE 802.3 polynomial) over the whole frame, so any bit flip —
//! payload, tag or length — surfaces as
//! [`SnapshotError::ChecksumMismatch`] instead of being decoded into
//! plausible-looking state, and a truncated stream surfaces as
//! [`SnapshotError::Truncated`]. Version-1 snapshots (no CRCs, no
//! health fields) remain readable; a snapshot with a version newer
//! than this build is rejected with
//! [`SnapshotError::UnsupportedVersion`] rather than misparsed.
//!
//! Sections (each at most once; unknown tags are skipped — after CRC
//! verification — so later versions can append):
//!
//! | tag | name     | payload                                          |
//! |-----|----------|--------------------------------------------------|
//! | 1   | META     | epoch, next device id, per-class LP fingerprints |
//! | 2   | POLICIES | deduplicated randomized-policy table             |
//! | 3   | DEVICES  | per device: id, class, cluster, policy index, fitted SR, full estimator state; v2 adds health, strikes, probation |
//! | 4   | CLUSTERS | per cluster: class, members, representative, last-solved model, policy index, power, cooldown; v2 adds hold/backoff counters |
//!
//! Policies are written once each and referenced by table index, so the
//! `Arc` sharing between a cluster and its member devices survives the
//! round trip. LP sessions are **not** serialized: restore rehydrates
//! each cluster by forking its class's base session and replaying one
//! warm solve of the last-solved model (clusters that never solved just
//! fork). The per-epoch report history is not part of the snapshot.

use std::collections::BTreeMap;
use std::io::{Read, Write};
use std::sync::Arc;

use dpm_core::{DpmError, ServiceRequester, SystemModel};
use dpm_lp::ReloadKind;
use dpm_markov::StochasticMatrix;
use dpm_mdp::RandomizedPolicy;
use dpm_trace::EstimatorState;

use crate::fleet::{flatten, Cluster, Device, DeviceHealth, FitOutcome, FleetController};
use crate::service::{DeviceId, FleetService};

/// Magic bytes opening every snapshot.
const MAGIC: &[u8; 8] = b"DPMFLEET";
/// The newest format version: what this build writes, and the ceiling
/// of what it reads.
const VERSION: u32 = 2;
/// The oldest version this build still reads (no CRCs, no health).
const OLDEST_VERSION: u32 = 1;

const TAG_END: u32 = 0;
const TAG_META: u32 = 1;
const TAG_POLICIES: u32 = 2;
const TAG_DEVICES: u32 = 3;
const TAG_CLUSTERS: u32 = 4;

/// Sentinel for "no cluster" in a device record.
const NO_CLUSTER: u64 = u64::MAX;

/// Why a checkpoint or restore failed.
#[derive(Debug)]
pub enum SnapshotError {
    /// The underlying reader/writer failed.
    Io(std::io::Error),
    /// The snapshot is structurally malformed (bad magic, inconsistent
    /// framing, undecodable payload).
    Format {
        /// What was wrong with the byte stream.
        reason: String,
    },
    /// A section's CRC-32 does not match its frame: the snapshot was
    /// corrupted in storage or transit (bit flips, partial overwrite).
    ChecksumMismatch {
        /// The corrupted section's tag.
        tag: u32,
        /// The CRC-32 recomputed over the frame as read.
        expected: u32,
        /// The CRC-32 stored in the snapshot.
        found: u32,
    },
    /// The byte stream ended before the structure it promised — a
    /// truncated file or interrupted download.
    Truncated {
        /// What was being read when the bytes ran out.
        what: String,
    },
    /// The snapshot was written by a newer build than this reader:
    /// refusing to guess at an unknown layout.
    UnsupportedVersion {
        /// The version stamped in the snapshot.
        found: u32,
        /// The newest version this build reads.
        newest: u32,
    },
    /// The snapshot does not belong to this service (class count or
    /// LP shape differs, or internal references are inconsistent).
    Mismatch {
        /// What did not line up.
        reason: String,
    },
    /// Rebuilding a model/estimator or replaying a session solve
    /// failed.
    Dpm(DpmError),
}

impl std::fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SnapshotError::Io(e) => write!(f, "snapshot I/O failed: {e}"),
            SnapshotError::Format { reason } => write!(f, "malformed snapshot: {reason}"),
            SnapshotError::ChecksumMismatch {
                tag,
                expected,
                found,
            } => write!(
                f,
                "snapshot section {tag} is corrupted: stored CRC-32 {found:#010x} \
                 does not match recomputed {expected:#010x}"
            ),
            SnapshotError::Truncated { what } => {
                write!(f, "snapshot truncated while reading {what}")
            }
            SnapshotError::UnsupportedVersion { found, newest } => write!(
                f,
                "snapshot version {found} is newer than this reader (newest supported: {newest})"
            ),
            SnapshotError::Mismatch { reason } => {
                write!(f, "snapshot does not match this service: {reason}")
            }
            SnapshotError::Dpm(e) => write!(f, "snapshot state rebuild failed: {e}"),
        }
    }
}

impl std::error::Error for SnapshotError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SnapshotError::Io(e) => Some(e),
            SnapshotError::Dpm(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for SnapshotError {
    fn from(e: std::io::Error) -> Self {
        SnapshotError::Io(e)
    }
}

impl From<DpmError> for SnapshotError {
    fn from(e: DpmError) -> Self {
        SnapshotError::Dpm(e)
    }
}

fn format_err(reason: impl Into<String>) -> SnapshotError {
    SnapshotError::Format {
        reason: reason.into(),
    }
}

// ---------------------------------------------------------------------
// CRC-32 (IEEE 802.3, reflected 0xEDB88320), table-driven and
// dependency-free.

const fn crc32_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ 0xEDB8_8320
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

static CRC_TABLE: [u32; 256] = crc32_table();

/// CRC-32 of `bytes` (IEEE polynomial, init/xorout `!0`).
fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = !0u32;
    for &b in bytes {
        crc = (crc >> 8) ^ CRC_TABLE[((crc ^ b as u32) & 0xFF) as usize];
    }
    !crc
}

fn mismatch_err(reason: impl Into<String>) -> SnapshotError {
    SnapshotError::Mismatch {
        reason: reason.into(),
    }
}

/// What [`FleetService::restore`] rebuilt and what the session
/// rehydration cost — the proof there was no cold-solve storm.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub struct RestoreReport {
    /// Devices rebuilt from the snapshot.
    pub devices: usize,
    /// Clusters rebuilt from the snapshot.
    pub clusters: usize,
    /// Warm solves replayed to rehydrate previously-solved cluster
    /// sessions (at most one per cluster; never-solved clusters cost
    /// only a fork).
    pub replayed_solves: usize,
    /// Replayed model swaps that reloaded warm.
    pub warm_reloads: usize,
    /// Replayed model swaps that fell back to a cold rebuild.
    pub cold_reloads: usize,
    /// Simplex pivots spent by the replayed solves.
    pub pivots: usize,
}

// ---------------------------------------------------------------------
// Little-endian writer helpers.

fn put_u32(buf: &mut Vec<u8>, v: u32) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(buf: &mut Vec<u8>, v: u64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn put_f64(buf: &mut Vec<u8>, v: f64) {
    buf.extend_from_slice(&v.to_bits().to_le_bytes());
}

fn put_bool(buf: &mut Vec<u8>, v: bool) {
    buf.push(u8::from(v));
}

fn put_str(buf: &mut Vec<u8>, s: &str) {
    put_u64(buf, s.len() as u64);
    buf.extend_from_slice(s.as_bytes());
}

fn put_f64s(buf: &mut Vec<u8>, vs: &[f64]) {
    put_u64(buf, vs.len() as u64);
    for &v in vs {
        put_f64(buf, v);
    }
}

fn put_opt_f64s(buf: &mut Vec<u8>, vs: Option<&Vec<f64>>) {
    match vs {
        Some(vs) => {
            put_bool(buf, true);
            put_f64s(buf, vs);
        }
        None => put_bool(buf, false),
    }
}

fn put_pairs(buf: &mut Vec<u8>, vs: &[[f64; 2]]) {
    put_u64(buf, vs.len() as u64);
    for pair in vs {
        put_f64(buf, pair[0]);
        put_f64(buf, pair[1]);
    }
}

fn put_opt_pairs(buf: &mut Vec<u8>, vs: Option<&Vec<[f64; 2]>>) {
    match vs {
        Some(vs) => {
            put_bool(buf, true);
            put_pairs(buf, vs);
        }
        None => put_bool(buf, false),
    }
}

/// A fitted SR model: states, per-state requests and names, row-major
/// transition probabilities.
fn put_sr(buf: &mut Vec<u8>, sr: &ServiceRequester) {
    let n = sr.num_states();
    put_u64(buf, n as u64);
    for s in 0..n {
        put_u32(buf, sr.requests(s));
        put_str(buf, sr.state_name(s));
    }
    let p = sr.chain().transition_matrix();
    for s in 0..n {
        for t in 0..n {
            put_f64(buf, p.prob(s, t));
        }
    }
}

// ---------------------------------------------------------------------
// Little-endian reader: a cursor over one section's payload.

struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Cursor { buf, pos: 0 }
    }

    fn take(&mut self, n: usize, what: &str) -> Result<&'a [u8], SnapshotError> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&end| end <= self.buf.len())
            .ok_or_else(|| SnapshotError::Truncated {
                what: what.to_string(),
            })?;
        let bytes = &self.buf[self.pos..end];
        self.pos = end;
        Ok(bytes)
    }

    fn u8(&mut self, what: &str) -> Result<u8, SnapshotError> {
        Ok(self.take(1, what)?[0])
    }

    fn u32(&mut self, what: &str) -> Result<u32, SnapshotError> {
        let bytes = self.take(4, what)?;
        Ok(u32::from_le_bytes(bytes.try_into().expect("4 bytes")))
    }

    fn u64(&mut self, what: &str) -> Result<u64, SnapshotError> {
        let bytes = self.take(8, what)?;
        Ok(u64::from_le_bytes(bytes.try_into().expect("8 bytes")))
    }

    fn f64(&mut self, what: &str) -> Result<f64, SnapshotError> {
        Ok(f64::from_bits(self.u64(what)?))
    }

    fn bool(&mut self, what: &str) -> Result<bool, SnapshotError> {
        match self.u8(what)? {
            0 => Ok(false),
            1 => Ok(true),
            b => Err(format_err(format!("{what}: invalid flag byte {b}"))),
        }
    }

    /// A length field that must fit in memory as a `usize` and leave
    /// enough payload for `item_bytes`-sized items.
    fn len(&mut self, what: &str, item_bytes: usize) -> Result<usize, SnapshotError> {
        let n = usize::try_from(self.u64(what)?)
            .map_err(|_| format_err(format!("{what}: length overflows usize")))?;
        if n.checked_mul(item_bytes.max(1))
            .is_none_or(|total| total > self.buf.len() - self.pos)
        {
            return Err(format_err(format!("{what}: length {n} exceeds payload")));
        }
        Ok(n)
    }

    fn string(&mut self, what: &str) -> Result<String, SnapshotError> {
        let n = self.len(what, 1)?;
        let bytes = self.take(n, what)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| format_err(format!("{what}: invalid UTF-8")))
    }

    fn f64s(&mut self, what: &str) -> Result<Vec<f64>, SnapshotError> {
        let n = self.len(what, 8)?;
        (0..n).map(|_| self.f64(what)).collect()
    }

    fn opt_f64s(&mut self, what: &str) -> Result<Option<Vec<f64>>, SnapshotError> {
        Ok(if self.bool(what)? {
            Some(self.f64s(what)?)
        } else {
            None
        })
    }

    fn pairs(&mut self, what: &str) -> Result<Vec<[f64; 2]>, SnapshotError> {
        let n = self.len(what, 16)?;
        (0..n)
            .map(|_| Ok([self.f64(what)?, self.f64(what)?]))
            .collect()
    }

    fn opt_pairs(&mut self, what: &str) -> Result<Option<Vec<[f64; 2]>>, SnapshotError> {
        Ok(if self.bool(what)? {
            Some(self.pairs(what)?)
        } else {
            None
        })
    }

    fn sr(&mut self, what: &str) -> Result<ServiceRequester, SnapshotError> {
        let n = self.len(what, 4)?;
        let mut requests = Vec::with_capacity(n);
        let mut names = Vec::with_capacity(n);
        for _ in 0..n {
            requests.push(self.u32(what)?);
            names.push(self.string(what)?);
        }
        let mut rows = Vec::with_capacity(n);
        for _ in 0..n {
            let mut row = Vec::with_capacity(n);
            for _ in 0..n {
                row.push(self.f64(what)?);
            }
            rows.push(row);
        }
        let refs: Vec<&[f64]> = rows.iter().map(Vec::as_slice).collect();
        let matrix = StochasticMatrix::from_rows(&refs).map_err(DpmError::from)?;
        Ok(ServiceRequester::with_names(matrix, requests, names)?)
    }

    fn finish(&self, what: &str) -> Result<(), SnapshotError> {
        if self.pos != self.buf.len() {
            return Err(format_err(format!(
                "{what}: {} trailing bytes",
                self.buf.len() - self.pos
            )));
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------
// Writing.

/// Interns `policy` in the dedup table, returning its index.
fn intern(
    table: &mut Vec<Arc<RandomizedPolicy>>,
    by_ptr: &mut BTreeMap<usize, u64>,
    policy: &Arc<RandomizedPolicy>,
) -> u64 {
    let key = Arc::as_ptr(policy) as usize;
    *by_ptr.entry(key).or_insert_with(|| {
        table.push(Arc::clone(policy));
        (table.len() - 1) as u64
    })
}

pub(crate) fn write_snapshot(
    service: &FleetService,
    writer: &mut impl Write,
) -> Result<(), SnapshotError> {
    write_snapshot_versioned(service, writer, VERSION)
}

/// Version-parameterized writer: `1` reproduces the legacy CRC-free
/// layout (kept for the backward-compat tests), `2` the current one.
fn write_snapshot_versioned(
    service: &FleetService,
    writer: &mut impl Write,
    version: u32,
) -> Result<(), SnapshotError> {
    let ctl = &service.controller;

    // Policy table, deduplicated by allocation so sharing survives.
    let mut table: Vec<Arc<RandomizedPolicy>> = Vec::new();
    let mut by_ptr: BTreeMap<usize, u64> = BTreeMap::new();
    let device_policy: Vec<u64> = ctl
        .devices
        .iter()
        .map(|d| intern(&mut table, &mut by_ptr, &d.policy))
        .collect();
    let cluster_policy: Vec<u64> = ctl
        .clusters
        .iter()
        .map(|c| intern(&mut table, &mut by_ptr, &c.policy))
        .collect();

    let mut meta = Vec::new();
    put_u64(&mut meta, ctl.epoch);
    put_u64(&mut meta, service.next_id);
    put_u64(&mut meta, ctl.classes.len() as u64);
    for class in &ctl.classes {
        put_u64(&mut meta, class.base_policy.num_states() as u64);
        put_u64(&mut meta, class.base_policy.num_actions() as u64);
    }

    let mut policies = Vec::new();
    put_u64(&mut policies, table.len() as u64);
    for policy in &table {
        put_u64(&mut policies, policy.num_states() as u64);
        put_u64(&mut policies, policy.num_actions() as u64);
        for row in policy.decisions() {
            for &p in row {
                put_f64(&mut policies, p);
            }
        }
    }

    let mut devices = Vec::new();
    put_u64(&mut devices, ctl.devices.len() as u64);
    for (i, device) in ctl.devices.iter().enumerate() {
        put_u64(&mut devices, service.ids[i].0);
        put_u64(&mut devices, device.class as u64);
        put_u64(
            &mut devices,
            device.cluster.map_or(NO_CLUSTER, |c| c as u64),
        );
        put_u64(&mut devices, device_policy[i]);
        match device.fit.as_ref() {
            Some(fit) => {
                put_bool(&mut devices, true);
                put_sr(&mut devices, fit);
            }
            None => put_bool(&mut devices, false),
        }
        let state = device.estimator.export_state();
        put_pairs(&mut devices, &state.counts);
        put_u64(&mut devices, state.state as u64);
        put_u64(&mut devices, state.observed);
        put_u64(&mut devices, state.ring.len() as u64);
        for &bit in &state.ring {
            put_bool(&mut devices, bit);
        }
        put_f64(&mut devices, state.weight);
        put_opt_f64s(&mut devices, state.last_fit.as_ref());
        match state.divergence {
            Some(d) => {
                put_bool(&mut devices, true);
                put_f64(&mut devices, d);
            }
            None => put_bool(&mut devices, false),
        }
        put_opt_pairs(&mut devices, state.blend_prior.as_ref());
        put_opt_pairs(&mut devices, state.counts_at_fit.as_ref());
        if version >= 2 {
            devices.push(match device.health {
                DeviceHealth::Healthy => 0,
                DeviceHealth::Degraded => 1,
                DeviceHealth::Quarantined => 2,
            });
            put_u32(&mut devices, device.strikes);
            put_u64(&mut devices, device.probation_left);
        }
    }

    let mut clusters = Vec::new();
    put_u64(&mut clusters, ctl.clusters.len() as u64);
    for (c, cluster) in ctl.clusters.iter().enumerate() {
        put_u64(&mut clusters, cluster.class as u64);
        put_u64(&mut clusters, cluster.members.len() as u64);
        for &m in &cluster.members {
            put_u64(&mut clusters, m as u64);
        }
        put_f64s(&mut clusters, &cluster.representative);
        put_sr(&mut clusters, &cluster.rep_model);
        put_opt_f64s(&mut clusters, cluster.last_solved.as_ref());
        put_u64(&mut clusters, cluster_policy[c]);
        match cluster.power {
            Some(p) => {
                put_bool(&mut clusters, true);
                put_f64(&mut clusters, p);
            }
            None => put_bool(&mut clusters, false),
        }
        put_u64(&mut clusters, cluster.since_solve);
        if version >= 2 {
            put_u32(&mut clusters, cluster.consecutive_holds);
            put_u64(&mut clusters, cluster.backoff_left);
        }
    }

    writer.write_all(MAGIC)?;
    writer.write_all(&version.to_le_bytes())?;
    let empty = Vec::new();
    for (tag, payload) in [
        (TAG_META, &meta),
        (TAG_POLICIES, &policies),
        (TAG_DEVICES, &devices),
        (TAG_CLUSTERS, &clusters),
        (TAG_END, &empty),
    ] {
        let mut frame = Vec::with_capacity(12 + payload.len());
        frame.extend_from_slice(&tag.to_le_bytes());
        frame.extend_from_slice(&(payload.len() as u64).to_le_bytes());
        frame.extend_from_slice(payload);
        writer.write_all(&frame)?;
        if version >= 2 {
            writer.write_all(&crc32(&frame).to_le_bytes())?;
        }
    }
    Ok(())
}

// ---------------------------------------------------------------------
// Reading.

/// Rebuilds an SR from a flattened transition matrix, taking requests
/// and state names from a same-shaped template (the class shape never
/// changes, so the representative model is a faithful template for the
/// last-solved one).
fn sr_from_flat(
    flat: &[f64],
    template: &ServiceRequester,
) -> Result<ServiceRequester, SnapshotError> {
    let n = template.num_states();
    if flat.len() != n * n {
        return Err(format_err(format!(
            "last-solved model has {} entries for {n} states",
            flat.len()
        )));
    }
    let rows: Vec<&[f64]> = flat.chunks(n).collect();
    let matrix = StochasticMatrix::from_rows(&rows).map_err(DpmError::from)?;
    let requests = (0..n).map(|s| template.requests(s)).collect();
    let names = (0..n).map(|s| template.state_name(s).to_string()).collect();
    Ok(ServiceRequester::with_names(matrix, requests, names)?)
}

pub(crate) fn read_snapshot(
    service: &mut FleetService,
    reader: &mut impl Read,
) -> Result<RestoreReport, SnapshotError> {
    // Buffer the whole stream first: every length field is then checked
    // against real bytes before any allocation, so a corrupted length
    // can never trigger a huge allocation or an unbounded read.
    let mut bytes = Vec::new();
    reader.read_to_end(&mut bytes)?;
    let bytes = bytes.as_slice();
    let mut top = Cursor::new(bytes);
    let magic = top.take(8, "magic")?;
    if magic != MAGIC {
        return Err(format_err("bad magic (not a fleet snapshot)"));
    }
    let version = top.u32("version")?;
    if version > VERSION {
        return Err(SnapshotError::UnsupportedVersion {
            found: version,
            newest: VERSION,
        });
    }
    if version < OLDEST_VERSION {
        return Err(format_err(format!(
            "snapshot version {version} predates the oldest supported ({OLDEST_VERSION})"
        )));
    }
    let mut sections: BTreeMap<u32, &[u8]> = BTreeMap::new();
    loop {
        let frame_start = top.pos;
        let tag = top.u32("section tag")?;
        let len = usize::try_from(top.u64("section length")?)
            .map_err(|_| format_err("section length overflows usize"))?;
        let payload = top.take(len, "section payload")?;
        if version >= 2 {
            let found = top.u32("section checksum")?;
            let expected = crc32(&bytes[frame_start..frame_start + 12 + len]);
            if found != expected {
                return Err(SnapshotError::ChecksumMismatch {
                    tag,
                    expected,
                    found,
                });
            }
        }
        if tag == TAG_END {
            if len != 0 {
                return Err(format_err("end marker carries a payload"));
            }
            break;
        }
        if sections.insert(tag, payload).is_some() {
            return Err(format_err(format!("duplicate section tag {tag}")));
        }
    }
    if top.pos != bytes.len() {
        return Err(format_err(format!(
            "{} trailing bytes after the end marker",
            bytes.len() - top.pos
        )));
    }
    let section = |tag: u32, name: &str| -> Result<&[u8], SnapshotError> {
        sections
            .get(&tag)
            .copied()
            .ok_or_else(|| format_err(format!("missing {name} section")))
    };

    // META: epoch, id bookkeeping, class fingerprints.
    let meta = section(TAG_META, "META")?;
    let mut cur = Cursor::new(meta);
    let epoch = cur.u64("epoch")?;
    let next_id = cur.u64("next id")?;
    let nclasses = cur.len("class count", 16)?;
    let ctl = &service.controller;
    if nclasses != ctl.classes.len() {
        return Err(mismatch_err(format!(
            "snapshot has {nclasses} classes, this service has {}",
            ctl.classes.len()
        )));
    }
    for (c, class) in ctl.classes.iter().enumerate() {
        let states = cur.u64("class fingerprint")?;
        let actions = cur.u64("class fingerprint")?;
        if states != class.base_policy.num_states() as u64
            || actions != class.base_policy.num_actions() as u64
        {
            return Err(mismatch_err(format!(
                "class {c} LP shape differs ({states}x{actions} in the snapshot, {}x{} here)",
                class.base_policy.num_states(),
                class.base_policy.num_actions()
            )));
        }
    }
    cur.finish("META")?;

    // POLICIES: the deduplicated table.
    let policies = section(TAG_POLICIES, "POLICIES")?;
    let mut cur = Cursor::new(policies);
    let npolicies = cur.len("policy count", 16)?;
    let mut table = Vec::with_capacity(npolicies);
    for _ in 0..npolicies {
        let states = cur.len("policy states", 8)?;
        let actions = cur.len("policy actions", 8)?;
        let mut rows = Vec::with_capacity(states);
        for _ in 0..states {
            let mut row = Vec::with_capacity(actions);
            for _ in 0..actions {
                row.push(cur.f64("policy probability")?);
            }
            rows.push(row);
        }
        let policy = RandomizedPolicy::new(rows).map_err(DpmError::from)?;
        table.push(Arc::new(policy));
    }
    cur.finish("POLICIES")?;

    // DEVICES: estimators, fits, cluster assignments, ids.
    let devices_bytes = section(TAG_DEVICES, "DEVICES")?;
    let mut cur = Cursor::new(devices_bytes);
    let ndevices = cur.len("device count", 1)?;
    let mut devices = Vec::with_capacity(ndevices);
    let mut ids = Vec::with_capacity(ndevices);
    let mut index = BTreeMap::new();
    for d in 0..ndevices {
        let id = cur.u64("device id")?;
        if id >= next_id {
            return Err(format_err(format!(
                "device id {id} not below the next-id watermark {next_id}"
            )));
        }
        if index.insert(id, d).is_some() {
            return Err(format_err(format!("duplicate device id {id}")));
        }
        ids.push(DeviceId(id));
        let class = usize::try_from(cur.u64("device class")?)
            .ok()
            .filter(|&c| c < ctl.classes.len())
            .ok_or_else(|| mismatch_err(format!("device {d} references an unknown class")))?;
        let cluster_raw = cur.u64("device cluster")?;
        let cluster = if cluster_raw == NO_CLUSTER {
            None
        } else {
            Some(
                usize::try_from(cluster_raw)
                    .map_err(|_| format_err(format!("device {d} cluster index overflows usize")))?,
            )
        };
        let policy = usize::try_from(cur.u64("device policy")?)
            .ok()
            .and_then(|p| table.get(p))
            .ok_or_else(|| format_err(format!("device {d} references an unknown policy")))?;
        let fit = if cur.bool("device fit flag")? {
            Some(cur.sr("device fit")?)
        } else {
            None
        };
        let counts = cur.pairs("estimator counts")?;
        let state = usize::try_from(cur.u64("estimator state")?)
            .map_err(|_| format_err("estimator state overflows usize"))?;
        let observed = cur.u64("estimator observed")?;
        let ring_len = cur.len("estimator ring", 1)?;
        let mut ring = Vec::with_capacity(ring_len);
        for _ in 0..ring_len {
            ring.push(cur.bool("estimator ring bit")?);
        }
        let weight = cur.f64("estimator weight")?;
        let last_fit = cur.opt_f64s("estimator last fit")?;
        let divergence = if cur.bool("estimator divergence flag")? {
            Some(cur.f64("estimator divergence")?)
        } else {
            None
        };
        let blend_prior = cur.opt_pairs("estimator blend prior")?;
        let counts_at_fit = cur.opt_pairs("estimator counts at fit")?;
        let (health, strikes, probation_left) = if version >= 2 {
            let health = match cur.u8("device health")? {
                0 => DeviceHealth::Healthy,
                1 => DeviceHealth::Degraded,
                2 => DeviceHealth::Quarantined,
                b => {
                    return Err(format_err(format!(
                        "device {d} has unknown health byte {b}"
                    )))
                }
            };
            (
                health,
                cur.u32("device strikes")?,
                cur.u64("device probation")?,
            )
        } else {
            (DeviceHealth::Healthy, 0, 0)
        };
        let mut estimator = FleetController::build_estimator(&ctl.config.base)?;
        estimator.import_state(EstimatorState {
            counts,
            state,
            observed,
            ring,
            weight,
            last_fit,
            divergence,
            blend_prior,
            counts_at_fit,
        })?;
        let flat = fit.as_ref().map(flatten);
        devices.push(Device {
            class,
            estimator,
            fit,
            flat,
            cluster,
            policy: Arc::clone(policy),
            fit_outcome: FitOutcome::None,
            health,
            strikes,
            probation_left,
            strike_pending: false,
        });
    }
    cur.finish("DEVICES")?;

    // CLUSTERS: membership and models; sessions rehydrate by forking
    // the class base and replaying one warm solve of the last-solved
    // model.
    let clusters_bytes = section(TAG_CLUSTERS, "CLUSTERS")?;
    let mut cur = Cursor::new(clusters_bytes);
    let nclusters = cur.len("cluster count", 1)?;
    let mut clusters = Vec::with_capacity(nclusters);
    let mut report = RestoreReport {
        devices: ndevices,
        clusters: nclusters,
        replayed_solves: 0,
        warm_reloads: 0,
        cold_reloads: 0,
        pivots: 0,
    };
    for c in 0..nclusters {
        let class = usize::try_from(cur.u64("cluster class")?)
            .ok()
            .filter(|&k| k < ctl.classes.len())
            .ok_or_else(|| mismatch_err(format!("cluster {c} references an unknown class")))?;
        let nmembers = cur.len("cluster members", 8)?;
        if nmembers == 0 {
            return Err(format_err(format!("cluster {c} has no members")));
        }
        let mut members = Vec::with_capacity(nmembers);
        for _ in 0..nmembers {
            let m = usize::try_from(cur.u64("cluster member")?)
                .ok()
                .filter(|&m| m < ndevices)
                .ok_or_else(|| format_err(format!("cluster {c} lists an out-of-range member")))?;
            members.push(m);
        }
        let representative = cur.f64s("cluster representative")?;
        let rep_model = cur.sr("cluster representative model")?;
        let last_solved = cur.opt_f64s("cluster last-solved model")?;
        let policy = usize::try_from(cur.u64("cluster policy")?)
            .ok()
            .and_then(|p| table.get(p))
            .ok_or_else(|| format_err(format!("cluster {c} references an unknown policy")))?;
        let power = if cur.bool("cluster power flag")? {
            Some(cur.f64("cluster power")?)
        } else {
            None
        };
        let since_solve = cur.u64("cluster cooldown")?;
        let (consecutive_holds, backoff_left) = if version >= 2 {
            (cur.u32("cluster holds")?, cur.u64("cluster backoff")?)
        } else {
            (0, 0)
        };

        let device_class = &ctl.classes[class];
        let mut session = device_class.base.fork()?;
        if let Some(solved) = last_solved.as_ref() {
            let sr = sr_from_flat(solved, &rep_model)?;
            let system =
                SystemModel::compose(device_class.provider.clone(), sr, device_class.queue)?;
            match session.update_model(system.chain())? {
                ReloadKind::Warm => report.warm_reloads += 1,
                ReloadKind::Cold => report.cold_reloads += 1,
            }
            let solution = session.solve()?;
            report.replayed_solves += 1;
            report.pivots += solution.solve_report().iterations;
        }
        clusters.push(Cluster {
            class,
            members,
            representative,
            rep_model,
            session,
            last_solved,
            policy: Arc::clone(policy),
            power,
            since_solve,
            needs_solve: false,
            outcome: None,
            consecutive_holds,
            backoff_left,
        });
    }
    cur.finish("CLUSTERS")?;

    // Cross-check membership against device assignments.
    for (c, cluster) in clusters.iter().enumerate() {
        for &m in &cluster.members {
            if devices[m].cluster != Some(c) {
                return Err(mismatch_err(format!(
                    "cluster {c} lists device {m}, which is assigned elsewhere"
                )));
            }
            if devices[m].class != cluster.class {
                return Err(mismatch_err(format!(
                    "cluster {c} and its member {m} disagree on the class"
                )));
            }
        }
    }
    let assigned: usize = devices.iter().filter(|d| d.cluster.is_some()).count();
    let membered: usize = clusters.iter().map(|cl| cl.members.len()).sum();
    if assigned != membered {
        return Err(mismatch_err(format!(
            "{assigned} devices claim a cluster but clusters list {membered} members"
        )));
    }
    for device in &devices {
        if let Some(c) = device.cluster {
            if c >= clusters.len() {
                return Err(mismatch_err(format!(
                    "a device references cluster {c}, only {} exist",
                    clusters.len()
                )));
            }
        }
    }

    // Commit — everything validated, swap the state in.
    let ctl = &mut service.controller;
    ctl.devices = devices;
    ctl.clusters = clusters;
    ctl.epoch = epoch;
    ctl.history = Vec::new();
    service.ids = ids;
    service.index = index;
    service.next_id = next_id;
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{AdaptiveConfig, FleetConfig};
    use dpm_trace::WindowKind;

    /// A small service with one toy class and two devices — enough
    /// state to exercise every snapshot section.
    fn service() -> FleetService {
        let config = FleetConfig::new().adaptive(
            AdaptiveConfig::new()
                .memory(1)
                .smoothing(0.5)
                .horizon(2_000.0)
                .window(WindowKind::Sliding(64)),
        );
        let mut service = FleetService::new(config);
        let class = service
            .register_class(&dpm_systems::toy::example_system().expect("toy system"))
            .expect("class registers");
        for _ in 0..2 {
            service.add_device(class).expect("device adds");
        }
        service
    }

    #[test]
    fn crc32_matches_the_ieee_check_vector() {
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn version_1_snapshots_remain_readable() {
        let source = service();
        let mut v1 = Vec::new();
        write_snapshot_versioned(&source, &mut v1, 1).expect("v1 writes");
        let mut target = service();
        let report = read_snapshot(&mut target, &mut v1.as_slice()).expect("v1 restores");
        assert_eq!(report.devices, 2);
        for d in 0..2 {
            assert_eq!(
                target.controller.devices[d].health,
                DeviceHealth::Healthy,
                "v1 snapshots carry no health: devices default to Healthy"
            );
            assert_eq!(target.controller.devices[d].strikes, 0);
        }
    }

    #[test]
    fn newer_versions_are_rejected_not_misparsed() {
        let source = service();
        let mut snapshot = Vec::new();
        write_snapshot(&source, &mut snapshot).expect("writes");
        snapshot[8..12].copy_from_slice(&3u32.to_le_bytes());
        let mut target = service();
        let err = read_snapshot(&mut target, &mut snapshot.as_slice())
            .expect_err("a version-3 snapshot must be refused");
        assert!(
            matches!(
                err,
                SnapshotError::UnsupportedVersion { found: 3, newest } if newest == VERSION
            ),
            "{err}"
        );
    }

    #[test]
    fn any_flipped_byte_is_a_checksum_mismatch() {
        let source = service();
        let mut snapshot = Vec::new();
        write_snapshot(&source, &mut snapshot).expect("writes");
        // Flip one byte in every region past the header: tag, length,
        // payload and the stored CRC itself all must be caught.
        for at in [12, 20, 40, snapshot.len() / 2, snapshot.len() - 1] {
            let mut damaged = snapshot.clone();
            damaged[at] ^= 0x40;
            let mut target = service();
            let err = read_snapshot(&mut target, &mut damaged.as_slice())
                .expect_err("a flipped byte must be rejected");
            assert!(
                matches!(
                    err,
                    SnapshotError::ChecksumMismatch { .. } | SnapshotError::Truncated { .. }
                ),
                "flip at {at}: {err}"
            );
        }
    }
}
