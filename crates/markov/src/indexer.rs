use crate::MarkovError;

/// Mixed-radix indexer for product state spaces.
///
/// The composed system chain of Section III has state set
/// `S = S_SP × S_SR × S_SQ`; the Markov composer flattens triples
/// `(s_p, s_r, s_q)` into a single index so the result is an ordinary
/// chain over `|S_SP|·|S_SR|·|S_SQ|` states. `StateIndexer` is that
/// flattening, for any number of factors.
///
/// The last dimension varies fastest (row-major convention), so for the
/// disk case study (11 × 2 × 3 = 66 states) index 0 is
/// `(sp=0, sr=0, q=0)`, index 1 is `(sp=0, sr=0, q=1)`, and so on.
///
/// # Example
///
/// ```
/// use dpm_markov::StateIndexer;
///
/// # fn main() -> Result<(), dpm_markov::MarkovError> {
/// let idx = StateIndexer::new(&[11, 2, 3])?;
/// assert_eq!(idx.num_states(), 66);
/// let flat = idx.flatten(&[4, 1, 2])?;
/// assert_eq!(idx.unflatten(flat), vec![4, 1, 2]);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StateIndexer {
    dims: Vec<usize>,
    /// Stride of each dimension (last dimension has stride 1).
    strides: Vec<usize>,
    total: usize,
}

impl StateIndexer {
    /// Builds an indexer over the given factor sizes.
    ///
    /// # Errors
    ///
    /// [`MarkovError::DimensionMismatch`] when `dims` is empty or any
    /// factor is zero.
    pub fn new(dims: &[usize]) -> Result<Self, MarkovError> {
        if dims.is_empty() || dims.contains(&0) {
            return Err(MarkovError::DimensionMismatch {
                found: 0,
                expected: 1,
            });
        }
        let mut strides = vec![1; dims.len()];
        for i in (0..dims.len() - 1).rev() {
            strides[i] = strides[i + 1] * dims[i + 1];
        }
        let total = dims.iter().product();
        Ok(StateIndexer {
            dims: dims.to_vec(),
            strides,
            total,
        })
    }

    /// Total number of product states.
    pub fn num_states(&self) -> usize {
        self.total
    }

    /// Number of factors.
    pub fn num_factors(&self) -> usize {
        self.dims.len()
    }

    /// The factor sizes.
    pub fn dims(&self) -> &[usize] {
        &self.dims
    }

    /// Flattens a coordinate tuple into a single index.
    ///
    /// # Errors
    ///
    /// * [`MarkovError::DimensionMismatch`] for a wrong-length tuple.
    /// * [`MarkovError::StateOutOfRange`] for an out-of-range coordinate.
    pub fn flatten(&self, coords: &[usize]) -> Result<usize, MarkovError> {
        if coords.len() != self.dims.len() {
            return Err(MarkovError::DimensionMismatch {
                found: coords.len(),
                expected: self.dims.len(),
            });
        }
        let mut idx = 0;
        for ((&c, &d), &s) in coords.iter().zip(&self.dims).zip(&self.strides) {
            if c >= d {
                return Err(MarkovError::StateOutOfRange {
                    index: c,
                    num_states: d,
                });
            }
            idx += c * s;
        }
        Ok(idx)
    }

    /// Recovers the coordinate tuple of a flat index.
    ///
    /// # Panics
    ///
    /// Panics when `index >= num_states()`.
    pub fn unflatten(&self, index: usize) -> Vec<usize> {
        assert!(
            index < self.total,
            "flat index {index} out of range ({} states)",
            self.total
        );
        let mut rem = index;
        self.strides
            .iter()
            .map(|&s| {
                let c = rem / s;
                rem %= s;
                c
            })
            .collect()
    }

    /// Iterates over all coordinate tuples in flat-index order.
    pub fn iter(&self) -> impl Iterator<Item = Vec<usize>> + '_ {
        (0..self.total).map(move |i| self.unflatten(i))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disk_sized_indexer_round_trips() {
        let idx = StateIndexer::new(&[11, 2, 3]).unwrap();
        assert_eq!(idx.num_states(), 66);
        for flat in 0..66 {
            let coords = idx.unflatten(flat);
            assert_eq!(idx.flatten(&coords).unwrap(), flat);
        }
    }

    #[test]
    fn last_dimension_varies_fastest() {
        let idx = StateIndexer::new(&[2, 2, 2]).unwrap();
        assert_eq!(idx.flatten(&[0, 0, 0]).unwrap(), 0);
        assert_eq!(idx.flatten(&[0, 0, 1]).unwrap(), 1);
        assert_eq!(idx.flatten(&[0, 1, 0]).unwrap(), 2);
        assert_eq!(idx.flatten(&[1, 0, 0]).unwrap(), 4);
    }

    #[test]
    fn rejects_bad_input() {
        assert!(StateIndexer::new(&[]).is_err());
        assert!(StateIndexer::new(&[2, 0]).is_err());
        let idx = StateIndexer::new(&[2, 3]).unwrap();
        assert!(idx.flatten(&[1]).is_err());
        assert!(matches!(
            idx.flatten(&[2, 0]),
            Err(MarkovError::StateOutOfRange { .. })
        ));
    }

    #[test]
    fn single_factor_is_identity() {
        let idx = StateIndexer::new(&[5]).unwrap();
        assert_eq!(idx.flatten(&[3]).unwrap(), 3);
        assert_eq!(idx.unflatten(4), vec![4]);
    }

    #[test]
    fn iter_enumerates_everything_in_order() {
        let idx = StateIndexer::new(&[2, 3]).unwrap();
        let all: Vec<Vec<usize>> = idx.iter().collect();
        assert_eq!(all.len(), 6);
        assert_eq!(all[0], vec![0, 0]);
        assert_eq!(all[5], vec![1, 2]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn unflatten_out_of_range_panics() {
        StateIndexer::new(&[2]).unwrap().unflatten(2);
    }
}
