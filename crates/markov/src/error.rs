use std::error::Error;
use std::fmt;

use dpm_linalg::LinalgError;

/// Errors produced while constructing or analyzing Markov chains.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum MarkovError {
    /// A transition-matrix row does not sum to one (within tolerance).
    RowNotStochastic {
        /// Index of the offending row.
        row: usize,
        /// The actual row sum.
        sum: f64,
    },
    /// A probability was outside `[0, 1]` or not finite.
    InvalidProbability {
        /// Row of the offending entry.
        row: usize,
        /// Column of the offending entry.
        col: usize,
        /// The offending value.
        value: f64,
    },
    /// A transition matrix is not square.
    NotSquare {
        /// The shape that was supplied.
        shape: (usize, usize),
    },
    /// Two chains/matrices that must agree in dimension do not.
    DimensionMismatch {
        /// What the caller supplied.
        found: usize,
        /// What the operation required.
        expected: usize,
    },
    /// A controlled chain was built with no actions.
    NoActions,
    /// A decision distribution over actions was invalid.
    InvalidDecision {
        /// Why the decision was rejected.
        reason: String,
    },
    /// The stationary distribution is not unique or could not be computed
    /// (reducible or periodic chain, or numerical failure).
    StationaryFailure {
        /// Underlying description.
        reason: String,
    },
    /// A state index was out of range.
    StateOutOfRange {
        /// The offending index.
        index: usize,
        /// Number of states.
        num_states: usize,
    },
}

impl fmt::Display for MarkovError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MarkovError::RowNotStochastic { row, sum } => {
                write!(f, "row {row} sums to {sum}, expected 1")
            }
            MarkovError::InvalidProbability { row, col, value } => {
                write!(f, "entry ({row}, {col}) = {value} is not a probability")
            }
            MarkovError::NotSquare { shape } => {
                write!(
                    f,
                    "transition matrix is {}x{}, expected square",
                    shape.0, shape.1
                )
            }
            MarkovError::DimensionMismatch { found, expected } => {
                write!(f, "dimension mismatch: found {found}, expected {expected}")
            }
            MarkovError::NoActions => write!(f, "controlled chain needs at least one action"),
            MarkovError::InvalidDecision { reason } => write!(f, "invalid decision: {reason}"),
            MarkovError::StationaryFailure { reason } => {
                write!(f, "stationary distribution failure: {reason}")
            }
            MarkovError::StateOutOfRange { index, num_states } => {
                write!(
                    f,
                    "state {index} out of range (chain has {num_states} states)"
                )
            }
        }
    }
}

impl Error for MarkovError {}

impl From<LinalgError> for MarkovError {
    fn from(e: LinalgError) -> Self {
        MarkovError::StationaryFailure {
            reason: e.to_string(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_mentions_row_and_sum() {
        let e = MarkovError::RowNotStochastic { row: 2, sum: 0.9 };
        assert!(e.to_string().contains("row 2"));
        assert!(e.to_string().contains("0.9"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<MarkovError>();
    }
}
