//! Geometric-distribution helpers for transition times.
//!
//! State-transition times in a stationary Markov chain are geometrically
//! distributed (equation (1) of the paper):
//! `Prob(T = t) = p (1 − p)^{t−1}`, with expected value `1/p`
//! (equation (2)). The service-provider models are *calibrated* through
//! these helpers: data sheets give expected transition times (Table I), and
//! [`prob_from_mean_time`] converts them into per-slice transition
//! probabilities.

/// Expected transition time `1/p` (in slices) for per-slice success
/// probability `p` — equation (2).
///
/// # Panics
///
/// Panics if `p` is not in `(0, 1]`.
///
/// # Example
///
/// ```
/// // The off→on transition of Example 3.1: p = 0.1 ⇒ 10 slices.
/// assert_eq!(dpm_markov::geometric::mean_time(0.1), 10.0);
/// ```
pub fn mean_time(p: f64) -> f64 {
    assert!(p > 0.0 && p <= 1.0, "probability {p} not in (0, 1]");
    1.0 / p
}

/// Per-slice transition probability that yields an expected transition
/// time of `mean` slices — the inverse of [`mean_time`], used to build SP
/// kernels from data-sheet transition times.
///
/// # Panics
///
/// Panics if `mean < 1` (a geometric transition cannot be faster than one
/// slice).
pub fn prob_from_mean_time(mean: f64) -> f64 {
    assert!(
        mean >= 1.0,
        "mean transition time {mean} must be >= 1 slice"
    );
    1.0 / mean
}

/// Probability mass `Prob(T = t) = p (1 − p)^{t−1}` — equation (1).
///
/// Returns 0 for `t = 0` (a geometric transition takes at least one slice).
///
/// # Panics
///
/// Panics if `p` is not in `(0, 1]`.
pub fn pmf(p: f64, t: u64) -> f64 {
    assert!(p > 0.0 && p <= 1.0, "probability {p} not in (0, 1]");
    if t == 0 {
        return 0.0;
    }
    p * (1.0 - p).powi((t - 1) as i32)
}

/// Cumulative probability `Prob(T ≤ t) = 1 − (1 − p)^t`.
///
/// # Panics
///
/// Panics if `p` is not in `(0, 1]`.
pub fn cdf(p: f64, t: u64) -> f64 {
    assert!(p > 0.0 && p <= 1.0, "probability {p} not in (0, 1]");
    1.0 - (1.0 - p).powi(t as i32)
}

/// Variance of the geometric transition time, `(1 − p) / p²`.
///
/// # Panics
///
/// Panics if `p` is not in `(0, 1]`.
pub fn variance(p: f64) -> f64 {
    assert!(p > 0.0 && p <= 1.0, "probability {p} not in (0, 1]");
    (1.0 - p) / (p * p)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_and_prob_are_inverse() {
        for p in [0.001, 0.1, 0.5, 1.0] {
            let m = mean_time(p);
            assert!((prob_from_mean_time(m) - p).abs() < 1e-12);
        }
    }

    #[test]
    fn pmf_sums_to_one() {
        let p = 0.3;
        let total: f64 = (0..500).map(|t| pmf(p, t)).sum();
        assert!((total - 1.0).abs() < 1e-12);
    }

    #[test]
    fn pmf_mean_matches_mean_time() {
        let p = 0.25;
        let mean: f64 = (0..2000).map(|t| t as f64 * pmf(p, t)).sum();
        assert!((mean - mean_time(p)).abs() < 1e-9);
    }

    #[test]
    fn cdf_matches_pmf_partial_sums() {
        let p = 0.4;
        let mut acc = 0.0;
        for t in 1..20 {
            acc += pmf(p, t);
            assert!((cdf(p, t) - acc).abs() < 1e-12);
        }
    }

    #[test]
    fn deterministic_transition_is_one_slice() {
        assert_eq!(mean_time(1.0), 1.0);
        assert_eq!(pmf(1.0, 1), 1.0);
        assert_eq!(pmf(1.0, 2), 0.0);
        assert_eq!(variance(1.0), 0.0);
    }

    #[test]
    #[should_panic(expected = "not in (0, 1]")]
    fn zero_probability_panics() {
        mean_time(0.0);
    }

    #[test]
    #[should_panic(expected = "must be >= 1")]
    fn submean_panics() {
        prob_from_mean_time(0.5);
    }
}
