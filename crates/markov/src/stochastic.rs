use dpm_linalg::Matrix;

use crate::{MarkovError, ROW_SUM_TOLERANCE};

/// A validated row-stochastic matrix: square, entries in `[0, 1]`, every
/// row summing to one.
///
/// Every transition kernel in the paper — the service provider's
/// conditional matrices `P(a)`, the service requester's matrix, the queue
/// kernel of equation (3) and the composed system kernel of equation (4) —
/// is a `StochasticMatrix`. Validation happens once at the boundary
/// ([`Self::from_matrix`] / [`Self::from_rows`]); afterwards the invariant
/// is carried by the type.
///
/// # Example
///
/// ```
/// use dpm_markov::StochasticMatrix;
///
/// # fn main() -> Result<(), dpm_markov::MarkovError> {
/// let p = StochasticMatrix::from_rows(&[&[0.9, 0.1], &[0.5, 0.5]])?;
/// let next = p.step(&[1.0, 0.0])?; // distribution after one slice
/// assert!((next[0] - 0.9).abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct StochasticMatrix {
    inner: Matrix,
}

#[cfg(feature = "serde")]
mod serde_impl {
    //! Serde support serializes the matrix as `(n, row-major data)` and
    //! re-validates on deserialization, so deserialized values uphold the
    //! stochasticity invariant.
    use super::StochasticMatrix;
    use dpm_linalg::Matrix;
    use serde::de::Error as _;
    use serde::{Deserialize, Deserializer, Serialize, Serializer};

    impl Serialize for StochasticMatrix {
        fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
            (self.num_states(), self.inner.as_slice()).serialize(s)
        }
    }

    impl<'de> Deserialize<'de> for StochasticMatrix {
        fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
            let (n, data): (usize, Vec<f64>) = Deserialize::deserialize(d)?;
            let m = Matrix::from_vec(n, n, data).map_err(D::Error::custom)?;
            StochasticMatrix::from_matrix(m).map_err(D::Error::custom)
        }
    }
}

impl StochasticMatrix {
    /// Validates and wraps a square matrix.
    ///
    /// # Errors
    ///
    /// * [`MarkovError::NotSquare`] for non-square input.
    /// * [`MarkovError::InvalidProbability`] for entries outside `[0, 1]`
    ///   or non-finite entries.
    /// * [`MarkovError::RowNotStochastic`] for rows not summing to one
    ///   within [`ROW_SUM_TOLERANCE`].
    pub fn from_matrix(m: Matrix) -> Result<Self, MarkovError> {
        if !m.is_square() {
            return Err(MarkovError::NotSquare { shape: m.shape() });
        }
        for i in 0..m.rows() {
            let mut sum = 0.0;
            for j in 0..m.cols() {
                let v = m[(i, j)];
                if !v.is_finite() || !(0.0..=1.0 + ROW_SUM_TOLERANCE).contains(&v) {
                    return Err(MarkovError::InvalidProbability {
                        row: i,
                        col: j,
                        value: v,
                    });
                }
                sum += v;
            }
            if (sum - 1.0).abs() > ROW_SUM_TOLERANCE {
                return Err(MarkovError::RowNotStochastic { row: i, sum });
            }
        }
        Ok(StochasticMatrix { inner: m })
    }

    /// Builds directly from row slices.
    ///
    /// # Errors
    ///
    /// Same as [`Self::from_matrix`], plus the construction errors of
    /// [`Matrix::from_rows`] mapped to [`MarkovError::NotSquare`].
    pub fn from_rows(rows: &[&[f64]]) -> Result<Self, MarkovError> {
        let m = Matrix::from_rows(rows).map_err(|_| MarkovError::NotSquare {
            shape: (rows.len(), rows.first().map_or(0, |r| r.len())),
        })?;
        Self::from_matrix(m)
    }

    /// The `n × n` identity: a chain that never moves.
    pub fn identity(n: usize) -> Self {
        StochasticMatrix {
            inner: Matrix::identity(n),
        }
    }

    /// The chain that jumps to a uniformly random state each slice.
    pub fn uniform(n: usize) -> Self {
        StochasticMatrix {
            inner: Matrix::filled(n, n, 1.0 / n as f64),
        }
    }

    /// Number of states.
    pub fn num_states(&self) -> usize {
        self.inner.rows()
    }

    /// Transition probability from `i` to `j`.
    ///
    /// # Panics
    ///
    /// Panics when either index is out of range.
    pub fn prob(&self, i: usize, j: usize) -> f64 {
        self.inner[(i, j)]
    }

    /// Row `i` as a probability distribution over successor states.
    ///
    /// # Panics
    ///
    /// Panics when `i` is out of range.
    pub fn row(&self, i: usize) -> &[f64] {
        self.inner.row(i)
    }

    /// Borrows the underlying matrix.
    pub fn as_matrix(&self) -> &Matrix {
        &self.inner
    }

    /// Consumes the wrapper and returns the underlying matrix.
    pub fn into_matrix(self) -> Matrix {
        self.inner
    }

    /// Propagates a state distribution one slice: `p' = p P`.
    ///
    /// # Errors
    ///
    /// [`MarkovError::DimensionMismatch`] when `dist.len()` differs from
    /// the number of states.
    pub fn step(&self, dist: &[f64]) -> Result<Vec<f64>, MarkovError> {
        if dist.len() != self.num_states() {
            return Err(MarkovError::DimensionMismatch {
                found: dist.len(),
                expected: self.num_states(),
            });
        }
        Ok(self
            .inner
            .vecmat(dist)
            .expect("dimension already validated"))
    }

    /// The `k`-step kernel `Pᵏ`.
    pub fn n_step(&self, k: usize) -> StochasticMatrix {
        let mut acc = Matrix::identity(self.num_states());
        for _ in 0..k {
            acc = acc
                .matmul(&self.inner)
                .expect("square matrices of equal dimension");
        }
        // Renormalize rows to absorb roundoff drift before re-validating.
        StochasticMatrix::from_matrix(renormalize_rows(acc))
            .expect("product of stochastic matrices is stochastic")
    }

    /// Convex mixture `Σ wᵢ Pᵢ` of stochastic matrices — equation (5) of
    /// the paper (the kernel under a randomized decision).
    ///
    /// # Errors
    ///
    /// * [`MarkovError::NoActions`] for empty input.
    /// * [`MarkovError::InvalidDecision`] when weights are negative or do
    ///   not sum to one, or matrices disagree in size.
    pub fn mixture(parts: &[(f64, &StochasticMatrix)]) -> Result<Self, MarkovError> {
        if parts.is_empty() {
            return Err(MarkovError::NoActions);
        }
        let n = parts[0].1.num_states();
        let mut wsum = 0.0;
        for &(w, m) in parts {
            if !(0.0..=1.0 + ROW_SUM_TOLERANCE).contains(&w) || !w.is_finite() {
                return Err(MarkovError::InvalidDecision {
                    reason: format!("weight {w} is not a probability"),
                });
            }
            if m.num_states() != n {
                return Err(MarkovError::InvalidDecision {
                    reason: "mixture components differ in dimension".to_string(),
                });
            }
            wsum += w;
        }
        if (wsum - 1.0).abs() > ROW_SUM_TOLERANCE {
            return Err(MarkovError::InvalidDecision {
                reason: format!("weights sum to {wsum}, expected 1"),
            });
        }
        let mut acc = Matrix::zeros(n, n);
        for &(w, m) in parts {
            for i in 0..n {
                for j in 0..n {
                    acc[(i, j)] += w * m.inner[(i, j)];
                }
            }
        }
        StochasticMatrix::from_matrix(renormalize_rows(acc))
    }
}

/// Scales each row to sum exactly to one (guarding against f64 drift in
/// long products); rows summing to zero are left alone.
fn renormalize_rows(mut m: Matrix) -> Matrix {
    for i in 0..m.rows() {
        let s: f64 = m.row(i).iter().sum();
        if s > 0.0 && (s - 1.0).abs() < 1e-6 {
            let inv = 1.0 / s;
            for v in m.row_mut(i) {
                *v *= inv;
            }
        }
    }
    m
}

impl std::fmt::Display for StochasticMatrix {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn validates_good_matrix() {
        assert!(StochasticMatrix::from_rows(&[&[0.5, 0.5], &[1.0, 0.0]]).is_ok());
    }

    #[test]
    fn rejects_bad_row_sum() {
        let err = StochasticMatrix::from_rows(&[&[0.5, 0.4], &[1.0, 0.0]]).unwrap_err();
        assert!(matches!(err, MarkovError::RowNotStochastic { row: 0, .. }));
    }

    #[test]
    fn rejects_negative_probability() {
        let err = StochasticMatrix::from_rows(&[&[1.2, -0.2], &[1.0, 0.0]]).unwrap_err();
        assert!(matches!(err, MarkovError::InvalidProbability { .. }));
    }

    #[test]
    fn rejects_non_square() {
        let m = Matrix::from_rows(&[&[0.5, 0.5]]).unwrap();
        assert!(matches!(
            StochasticMatrix::from_matrix(m),
            Err(MarkovError::NotSquare { .. })
        ));
    }

    #[test]
    fn step_propagates_distribution() {
        let p = StochasticMatrix::from_rows(&[&[0.9, 0.1], &[0.2, 0.8]]).unwrap();
        let d = p.step(&[0.5, 0.5]).unwrap();
        assert!((d[0] - 0.55).abs() < 1e-12);
        assert!((d[1] - 0.45).abs() < 1e-12);
        assert!(p.step(&[1.0]).is_err());
    }

    #[test]
    fn n_step_matches_repeated_step() {
        let p = StochasticMatrix::from_rows(&[&[0.9, 0.1], &[0.2, 0.8]]).unwrap();
        let p3 = p.n_step(3);
        let mut d = vec![1.0, 0.0];
        for _ in 0..3 {
            d = p.step(&d).unwrap();
        }
        let d3 = p3.step(&[1.0, 0.0]).unwrap();
        assert!((d[0] - d3[0]).abs() < 1e-12);
    }

    #[test]
    fn zero_step_is_identity() {
        let p = StochasticMatrix::from_rows(&[&[0.9, 0.1], &[0.2, 0.8]]).unwrap();
        assert_eq!(p.n_step(0), StochasticMatrix::identity(2));
    }

    #[test]
    fn mixture_implements_equation_5() {
        let on = StochasticMatrix::from_rows(&[&[1.0, 0.0], &[0.1, 0.9]]).unwrap();
        let off = StochasticMatrix::from_rows(&[&[0.0, 1.0], &[0.0, 1.0]]).unwrap();
        // Example 3.6: 80% s_on, 20% s_off.
        let mixed = StochasticMatrix::mixture(&[(0.8, &on), (0.2, &off)]).unwrap();
        assert!((mixed.prob(0, 0) - 0.8).abs() < 1e-12);
        assert!((mixed.prob(1, 0) - 0.08).abs() < 1e-12);
        assert!((mixed.prob(1, 1) - 0.92).abs() < 1e-12);
    }

    #[test]
    fn mixture_rejects_bad_weights() {
        let p = StochasticMatrix::identity(2);
        assert!(StochasticMatrix::mixture(&[(0.5, &p), (0.4, &p)]).is_err());
        assert!(StochasticMatrix::mixture(&[]).is_err());
        assert!(StochasticMatrix::mixture(&[(-0.5, &p), (1.5, &p)]).is_err());
    }

    #[test]
    fn uniform_and_identity_shapes() {
        assert_eq!(StochasticMatrix::uniform(4).num_states(), 4);
        assert_eq!(StochasticMatrix::uniform(4).prob(2, 3), 0.25);
        assert_eq!(StochasticMatrix::identity(3).prob(1, 1), 1.0);
    }
}
