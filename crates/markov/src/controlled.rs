use crate::{MarkovChain, MarkovError, StochasticMatrix};

/// A stationary *controlled* Markov chain: one transition kernel per
/// command from a finite control set (Definition 3.1's `Σ` and the composed
/// system chain of Section III).
///
/// The power manager steers such a chain by choosing, each slice, a
/// *decision* — a probability distribution over commands (Definition 3.5).
/// [`Self::under_decision`] mixes the kernels accordingly (equation (5)),
/// and [`Self::under_state_decisions`] builds the closed-loop chain of a
/// full Markov stationary policy.
///
/// # Example
///
/// ```
/// use dpm_markov::{ControlledMarkovChain, StochasticMatrix};
///
/// # fn main() -> Result<(), dpm_markov::MarkovError> {
/// // Example 3.1: the two-state service provider under s_on / s_off.
/// let p_on = StochasticMatrix::from_rows(&[&[1.0, 0.0], &[0.1, 0.9]])?;
/// let p_off = StochasticMatrix::from_rows(&[&[0.2, 0.8], &[0.0, 1.0]])?;
/// let sp = ControlledMarkovChain::new(vec![p_on, p_off])?;
/// assert_eq!(sp.num_actions(), 2);
/// // Issuing s_on from the off state: geometric with mean 10 slices.
/// assert!((sp.expected_transition_time(1, 0, 0).unwrap() - 10.0).abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct ControlledMarkovChain {
    kernels: Vec<StochasticMatrix>,
}

impl ControlledMarkovChain {
    /// Wraps one validated kernel per action.
    ///
    /// # Errors
    ///
    /// * [`MarkovError::NoActions`] for an empty kernel list.
    /// * [`MarkovError::DimensionMismatch`] when kernels differ in size.
    pub fn new(kernels: Vec<StochasticMatrix>) -> Result<Self, MarkovError> {
        let first = kernels.first().ok_or(MarkovError::NoActions)?;
        let n = first.num_states();
        for k in &kernels {
            if k.num_states() != n {
                return Err(MarkovError::DimensionMismatch {
                    found: k.num_states(),
                    expected: n,
                });
            }
        }
        Ok(ControlledMarkovChain { kernels })
    }

    /// Number of states.
    pub fn num_states(&self) -> usize {
        self.kernels[0].num_states()
    }

    /// Number of actions (commands).
    pub fn num_actions(&self) -> usize {
        self.kernels.len()
    }

    /// Kernel of action `a`.
    ///
    /// # Panics
    ///
    /// Panics when `a >= num_actions()`.
    pub fn kernel(&self, a: usize) -> &StochasticMatrix {
        &self.kernels[a]
    }

    /// All kernels, action-indexed.
    pub fn kernels(&self) -> &[StochasticMatrix] {
        &self.kernels
    }

    /// Transition probability `P(i → j | a)`.
    ///
    /// # Panics
    ///
    /// Panics on out-of-range indices.
    pub fn prob(&self, i: usize, j: usize, a: usize) -> f64 {
        self.kernels[a].prob(i, j)
    }

    /// The mixed kernel `P(δ) = Σₐ δ(a) P(a)` under one global randomized
    /// decision `δ` — equation (5) of the paper (Example 3.6).
    ///
    /// # Errors
    ///
    /// [`MarkovError::InvalidDecision`] when `decision` is not a
    /// distribution over the actions.
    pub fn under_decision(&self, decision: &[f64]) -> Result<StochasticMatrix, MarkovError> {
        if decision.len() != self.num_actions() {
            return Err(MarkovError::InvalidDecision {
                reason: format!(
                    "decision has {} entries for {} actions",
                    decision.len(),
                    self.num_actions()
                ),
            });
        }
        let parts: Vec<(f64, &StochasticMatrix)> =
            decision.iter().copied().zip(self.kernels.iter()).collect();
        StochasticMatrix::mixture(&parts)
    }

    /// The closed-loop chain under a randomized Markov stationary policy:
    /// row `i` of the result uses the state-dependent decision
    /// `decisions[i]` (Definition 3.7).
    ///
    /// # Errors
    ///
    /// [`MarkovError::InvalidDecision`] when `decisions` has the wrong
    /// shape or any row is not a distribution over actions.
    pub fn under_state_decisions(
        &self,
        decisions: &[Vec<f64>],
    ) -> Result<MarkovChain, MarkovError> {
        let n = self.num_states();
        let na = self.num_actions();
        if decisions.len() != n {
            return Err(MarkovError::InvalidDecision {
                reason: format!("{} decision rows for {n} states", decisions.len()),
            });
        }
        let mut rows: Vec<Vec<f64>> = Vec::with_capacity(n);
        for (i, d) in decisions.iter().enumerate() {
            if d.len() != na {
                return Err(MarkovError::InvalidDecision {
                    reason: format!("decision row {i} has {} entries for {na} actions", d.len()),
                });
            }
            let sum: f64 = d.iter().sum();
            if (sum - 1.0).abs() > crate::ROW_SUM_TOLERANCE || d.iter().any(|&v| v < 0.0) {
                return Err(MarkovError::InvalidDecision {
                    reason: format!("decision row {i} is not a distribution (sum {sum})"),
                });
            }
            let mut row = vec![0.0; n];
            for (a, &w) in d.iter().enumerate() {
                if w == 0.0 {
                    continue;
                }
                for (j, rv) in row.iter_mut().enumerate() {
                    *rv += w * self.kernels[a].prob(i, j);
                }
            }
            rows.push(row);
        }
        let refs: Vec<&[f64]> = rows.iter().map(|r| r.as_slice()).collect();
        Ok(MarkovChain::new(StochasticMatrix::from_rows(&refs)?))
    }

    /// Expected slices to first reach `to` from `from` when command `a` is
    /// held constant — equation (2)'s generalization: for a direct
    /// geometric edge this is `1 / p`, and for longer paths it is the
    /// first-passage time of the fixed-command chain.
    ///
    /// Returns `None` when `to` is unreachable from `from` under `a`.
    ///
    /// # Panics
    ///
    /// Panics on out-of-range indices.
    pub fn expected_transition_time(&self, from: usize, to: usize, a: usize) -> Option<f64> {
        if from == to {
            return Some(0.0);
        }
        let chain = MarkovChain::new(self.kernels[a].clone());
        match chain.expected_hitting_times(to) {
            Ok(h) => {
                let v = h[from];
                if v.is_finite() && v >= 0.0 {
                    Some(v)
                } else {
                    None
                }
            }
            Err(_) => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn example_3_1() -> ControlledMarkovChain {
        // States: 0 = on, 1 = off. Commands: 0 = s_on, 1 = s_off.
        let p_on = StochasticMatrix::from_rows(&[&[1.0, 0.0], &[0.1, 0.9]]).unwrap();
        let p_off = StochasticMatrix::from_rows(&[&[0.2, 0.8], &[0.0, 1.0]]).unwrap();
        ControlledMarkovChain::new(vec![p_on, p_off]).unwrap()
    }

    #[test]
    fn accessors() {
        let sp = example_3_1();
        assert_eq!(sp.num_states(), 2);
        assert_eq!(sp.num_actions(), 2);
        assert_eq!(sp.prob(1, 0, 0), 0.1);
        assert_eq!(sp.kernel(1).prob(0, 1), 0.8);
    }

    #[test]
    fn rejects_empty_and_mismatched() {
        assert!(matches!(
            ControlledMarkovChain::new(vec![]),
            Err(MarkovError::NoActions)
        ));
        let a = StochasticMatrix::identity(2);
        let b = StochasticMatrix::identity(3);
        assert!(matches!(
            ControlledMarkovChain::new(vec![a, b]),
            Err(MarkovError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn under_decision_matches_example_3_6() {
        let sp = example_3_1();
        let mixed = sp.under_decision(&[0.8, 0.2]).unwrap();
        assert!((mixed.prob(0, 0) - 0.84).abs() < 1e-12); // 0.8·1 + 0.2·0.2
        assert!((mixed.prob(0, 1) - 0.16).abs() < 1e-12);
        assert!((mixed.prob(1, 0) - 0.08).abs() < 1e-12);
        assert!(sp.under_decision(&[1.0]).is_err());
    }

    #[test]
    fn state_decisions_build_closed_loop_chain() {
        let sp = example_3_1();
        // In state on: always s_off; in state off: always s_on.
        let chain = sp
            .under_state_decisions(&[vec![0.0, 1.0], vec![1.0, 0.0]])
            .unwrap();
        let p = chain.transition_matrix();
        assert_eq!(p.prob(0, 1), 0.8); // on row follows P(s_off)
        assert_eq!(p.prob(1, 0), 0.1); // off row follows P(s_on)
    }

    #[test]
    fn state_decisions_validate_shape() {
        let sp = example_3_1();
        assert!(sp.under_state_decisions(&[vec![1.0, 0.0]]).is_err());
        assert!(sp
            .under_state_decisions(&[vec![0.5, 0.6], vec![1.0, 0.0]])
            .is_err());
    }

    #[test]
    fn expected_transition_time_is_geometric_mean() {
        let sp = example_3_1();
        // off → on under s_on: p = 0.1 ⇒ 10 slices (Example 3.1).
        assert!((sp.expected_transition_time(1, 0, 0).unwrap() - 10.0).abs() < 1e-9);
        // on → off under s_off: p = 0.8 ⇒ 1.25 slices.
        assert!((sp.expected_transition_time(0, 1, 1).unwrap() - 1.25).abs() < 1e-9);
        // off → on under s_off: unreachable.
        assert_eq!(sp.expected_transition_time(1, 0, 1), None);
        // Same state: zero.
        assert_eq!(sp.expected_transition_time(0, 0, 0), Some(0.0));
    }
}
