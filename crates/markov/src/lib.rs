//! Markov-chain substrate for the `markov-dpm` workspace.
//!
//! Section III of Benini et al. builds the whole power-management model out
//! of three kinds of stochastic objects, all provided here:
//!
//! * [`StochasticMatrix`] — a validated row-stochastic matrix (every row a
//!   probability distribution), the type of every transition kernel in the
//!   paper;
//! * [`MarkovChain`] — a stationary discrete-time chain (the service
//!   requester of Definition 3.2), with stationary-distribution and
//!   n-step analysis;
//! * [`ControlledMarkovChain`] — a chain whose kernel depends on a command
//!   from a finite set (the service provider of Definition 3.1 and the
//!   composed system chain), including the decision-mixing operation
//!   `P(δ) = Σₐ δ(a) P(a)` of equation (5);
//! * [`geometric`] — helpers for the geometric switching-time distributions
//!   of equations (1)–(2);
//! * [`StateIndexer`] — mixed-radix indexing for product state spaces,
//!   used by the system composer to flatten (SP, SR, SQ) triples.
//!
//! # Example
//!
//! ```
//! use dpm_markov::{MarkovChain, StochasticMatrix};
//!
//! # fn main() -> Result<(), dpm_markov::MarkovError> {
//! // The bursty service requester of Example 3.2.
//! let p = StochasticMatrix::from_rows(&[&[0.85, 0.15], &[0.15, 0.85]])?;
//! let chain = MarkovChain::new(p);
//! let pi = chain.stationary_distribution()?;
//! assert!((pi[0] - 0.5).abs() < 1e-12);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]
#![deny(missing_debug_implementations)]

mod chain;
mod controlled;
mod error;
pub mod geometric;
mod indexer;
mod stochastic;

pub use chain::MarkovChain;
pub use controlled::ControlledMarkovChain;
pub use error::MarkovError;
pub use indexer::StateIndexer;
pub use stochastic::StochasticMatrix;

/// Tolerance used when validating that probability rows sum to one.
pub const ROW_SUM_TOLERANCE: f64 = 1e-9;
