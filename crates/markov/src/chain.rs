use dpm_linalg::{LuDecomposition, Matrix};

use crate::{MarkovError, StochasticMatrix};

/// A stationary discrete-time Markov chain over a finite state set.
///
/// This models the paper's *service requester* (Definition 3.2): an
/// autonomous chain the power manager cannot influence. It also backs the
/// analysis of composed system chains under a fixed policy.
///
/// # Example
///
/// ```
/// use dpm_markov::{MarkovChain, StochasticMatrix};
///
/// # fn main() -> Result<(), dpm_markov::MarkovError> {
/// let p = StochasticMatrix::from_rows(&[&[0.85, 0.15], &[0.15, 0.85]])?;
/// let chain = MarkovChain::new(p);
/// // Long-run fraction of slices with a pending request:
/// let pi = chain.stationary_distribution()?;
/// assert!((pi[1] - 0.5).abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct MarkovChain {
    transition: StochasticMatrix,
}

impl MarkovChain {
    /// Wraps a validated transition matrix.
    pub fn new(transition: StochasticMatrix) -> Self {
        MarkovChain { transition }
    }

    /// Number of states.
    pub fn num_states(&self) -> usize {
        self.transition.num_states()
    }

    /// Borrows the transition kernel.
    pub fn transition_matrix(&self) -> &StochasticMatrix {
        &self.transition
    }

    /// Consumes the chain and returns the kernel.
    pub fn into_transition_matrix(self) -> StochasticMatrix {
        self.transition
    }

    /// Distribution after `k` slices starting from `initial`.
    ///
    /// # Errors
    ///
    /// [`MarkovError::DimensionMismatch`] when `initial.len()` differs
    /// from the number of states.
    pub fn distribution_after(&self, initial: &[f64], k: usize) -> Result<Vec<f64>, MarkovError> {
        let mut d = initial.to_vec();
        if d.len() != self.num_states() {
            return Err(MarkovError::DimensionMismatch {
                found: d.len(),
                expected: self.num_states(),
            });
        }
        for _ in 0..k {
            d = self.transition.step(&d)?;
        }
        Ok(d)
    }

    /// Solves `π P = π`, `Σπ = 1` for the stationary distribution.
    ///
    /// Solved as the linear system `(Pᵀ − I) π = 0` with one row replaced
    /// by the normalization constraint, which is exact for irreducible
    /// chains and cheap at the sizes the workspace uses.
    ///
    /// # Errors
    ///
    /// [`MarkovError::StationaryFailure`] when the system is singular
    /// (reducible chain with multiple stationary distributions) or the
    /// solution has negative mass beyond tolerance.
    pub fn stationary_distribution(&self) -> Result<Vec<f64>, MarkovError> {
        let n = self.num_states();
        // Build (Pᵀ − I) with the last row replaced by all-ones (Σπ = 1).
        let mut a = Matrix::zeros(n, n);
        for i in 0..n {
            for j in 0..n {
                a[(i, j)] = self.transition.prob(j, i) - if i == j { 1.0 } else { 0.0 };
            }
        }
        for j in 0..n {
            a[(n - 1, j)] = 1.0;
        }
        let mut b = vec![0.0; n];
        b[n - 1] = 1.0;
        let lu = LuDecomposition::new(&a).map_err(|e| MarkovError::StationaryFailure {
            reason: e.to_string(),
        })?;
        let mut pi = lu.solve(&b)?;
        // Clean up tiny negative roundoff, then re-normalize.
        for v in pi.iter_mut() {
            if *v < 0.0 {
                if *v < -1e-8 {
                    return Err(MarkovError::StationaryFailure {
                        reason: format!("negative stationary mass {v}"),
                    });
                }
                *v = 0.0;
            }
        }
        dpm_linalg::vector::normalize_l1(&mut pi);
        Ok(pi)
    }

    /// Expected long-run average of a per-state cost under the stationary
    /// distribution: `Σ πᵢ cost(i)`.
    ///
    /// # Errors
    ///
    /// Propagates [`Self::stationary_distribution`] failures and reports
    /// [`MarkovError::DimensionMismatch`] for a wrong-length cost vector.
    pub fn stationary_average(&self, cost: &[f64]) -> Result<f64, MarkovError> {
        if cost.len() != self.num_states() {
            return Err(MarkovError::DimensionMismatch {
                found: cost.len(),
                expected: self.num_states(),
            });
        }
        let pi = self.stationary_distribution()?;
        Ok(dpm_linalg::vector::dot(&pi, cost))
    }

    /// Expected first-hitting slice of `target` starting from each state
    /// (0 for the target itself).
    ///
    /// Solves the standard first-passage system
    /// `h(i) = 1 + Σ_{j≠target} P(i,j) h(j)`.
    ///
    /// # Errors
    ///
    /// * [`MarkovError::StateOutOfRange`] for a bad target index.
    /// * [`MarkovError::StationaryFailure`] when the target is unreachable
    ///   from some state (singular system).
    pub fn expected_hitting_times(&self, target: usize) -> Result<Vec<f64>, MarkovError> {
        let n = self.num_states();
        if target >= n {
            return Err(MarkovError::StateOutOfRange {
                index: target,
                num_states: n,
            });
        }
        // Unknowns: h(i) for i != target. System: (I − Q) h = 1, where Q is
        // P restricted to non-target rows/columns.
        let others: Vec<usize> = (0..n).filter(|&i| i != target).collect();
        let m = others.len();
        let mut a = Matrix::zeros(m, m);
        for (r, &i) in others.iter().enumerate() {
            for (c, &j) in others.iter().enumerate() {
                a[(r, c)] = if r == c { 1.0 } else { 0.0 } - self.transition.prob(i, j);
            }
        }
        let b = vec![1.0; m];
        let lu = LuDecomposition::new(&a).map_err(|e| MarkovError::StationaryFailure {
            reason: format!("hitting-time system singular: {e}"),
        })?;
        let h = lu.solve(&b)?;
        let mut out = vec![0.0; n];
        for (r, &i) in others.iter().enumerate() {
            out[i] = h[r];
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_state(p01: f64, p10: f64) -> MarkovChain {
        MarkovChain::new(
            StochasticMatrix::from_rows(&[&[1.0 - p01, p01], &[p10, 1.0 - p10]]).unwrap(),
        )
    }

    #[test]
    fn stationary_of_two_state_chain() {
        // π = (p10, p01) / (p01 + p10)
        let chain = two_state(0.15, 0.05);
        let pi = chain.stationary_distribution().unwrap();
        assert!((pi[0] - 0.25).abs() < 1e-12);
        assert!((pi[1] - 0.75).abs() < 1e-12);
    }

    #[test]
    fn stationary_is_fixed_point() {
        let chain = two_state(0.3, 0.7);
        let pi = chain.stationary_distribution().unwrap();
        let stepped = chain.transition_matrix().step(&pi).unwrap();
        assert!(dpm_linalg::vector::approx_eq(&pi, &stepped, 1e-12));
    }

    #[test]
    fn distribution_after_converges_to_stationary() {
        let chain = two_state(0.15, 0.85);
        let pi = chain.stationary_distribution().unwrap();
        let d = chain.distribution_after(&[1.0, 0.0], 200).unwrap();
        assert!(dpm_linalg::vector::approx_eq(&pi, &d, 1e-9));
    }

    #[test]
    fn stationary_average_weights_costs() {
        let chain = two_state(0.5, 0.5);
        let avg = chain.stationary_average(&[0.0, 2.0]).unwrap();
        assert!((avg - 1.0).abs() < 1e-12);
        assert!(chain.stationary_average(&[1.0]).is_err());
    }

    #[test]
    fn reducible_chain_fails_stationary() {
        // Two absorbing states: stationary distribution not unique.
        let chain = MarkovChain::new(StochasticMatrix::identity(2));
        assert!(chain.stationary_distribution().is_err());
    }

    #[test]
    fn hitting_time_of_geometric_transition() {
        // From state 0, move to state 1 w.p. 0.1 each slice: E[T] = 10 —
        // this is exactly equation (2) of the paper.
        let chain = two_state(0.1, 0.0);
        let h = chain.expected_hitting_times(1).unwrap();
        assert!((h[0] - 10.0).abs() < 1e-9);
        assert_eq!(h[1], 0.0);
    }

    #[test]
    fn hitting_time_rejects_bad_target() {
        let chain = two_state(0.5, 0.5);
        assert!(matches!(
            chain.expected_hitting_times(5),
            Err(MarkovError::StateOutOfRange { .. })
        ));
    }

    #[test]
    fn unreachable_target_is_singular() {
        // State 1 unreachable from state 0.
        let chain = two_state(0.0, 1.0);
        assert!(chain.expected_hitting_times(1).is_err());
    }

    #[test]
    fn distribution_after_checks_length() {
        let chain = two_state(0.5, 0.5);
        assert!(chain.distribution_after(&[1.0], 3).is_err());
    }
}
