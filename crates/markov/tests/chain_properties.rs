//! Property-based tests of the Markov-chain substrate: stochasticity is
//! closed under the crate's operations, stationary distributions are
//! genuine fixed points, and the controlled-chain mixing of equation (5)
//! behaves like a convex combination.

use dpm_markov::{ControlledMarkovChain, MarkovChain, StateIndexer, StochasticMatrix};
use proptest::prelude::*;

fn stochastic_row(width: usize) -> impl Strategy<Value = Vec<f64>> {
    proptest::collection::vec(1u32..=100, width).prop_map(|w| {
        let total: u32 = w.iter().sum();
        w.iter().map(|&x| x as f64 / total as f64).collect()
    })
}

fn stochastic(n: usize) -> impl Strategy<Value = StochasticMatrix> {
    proptest::collection::vec(stochastic_row(n), n).prop_map(|rows| {
        let refs: Vec<&[f64]> = rows.iter().map(|r| r.as_slice()).collect();
        StochasticMatrix::from_rows(&refs).expect("valid by construction")
    })
}

fn distribution(n: usize) -> impl Strategy<Value = Vec<f64>> {
    stochastic_row(n)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn step_preserves_probability_mass(p in stochastic(4), d in distribution(4)) {
        let next = p.step(&d).expect("dims");
        let total: f64 = next.iter().sum();
        prop_assert!((total - 1.0).abs() < 1e-12);
        prop_assert!(next.iter().all(|&v| v >= -1e-15));
    }

    #[test]
    fn n_step_composes(p in stochastic(3), k in 0usize..6) {
        let direct = p.n_step(k);
        // Stepwise product must agree entrywise.
        let mut acc = StochasticMatrix::identity(3);
        for _ in 0..k {
            let m = acc.as_matrix().matmul(p.as_matrix()).expect("square");
            acc = StochasticMatrix::from_matrix(m).expect("stochastic closed under product");
        }
        for i in 0..3 {
            for j in 0..3 {
                prop_assert!((direct.prob(i, j) - acc.prob(i, j)).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn stationary_distribution_is_fixed_point(p in stochastic(4)) {
        // Strictly positive random rows ⇒ irreducible + aperiodic.
        let chain = MarkovChain::new(p);
        let pi = chain.stationary_distribution().expect("irreducible");
        let stepped = chain.transition_matrix().step(&pi).expect("dims");
        prop_assert!(dpm_linalg::vector::max_abs_diff(&pi, &stepped) < 1e-9);
        // And the empirical long-run distribution converges to it.
        let far = chain.distribution_after(&[1.0, 0.0, 0.0, 0.0], 500).expect("dims");
        prop_assert!(dpm_linalg::vector::max_abs_diff(&pi, &far) < 1e-6);
    }

    #[test]
    fn mixture_interpolates_probabilities(
        a in stochastic(3),
        b in stochastic(3),
        w_steps in 0u32..=10,
    ) {
        let w = w_steps as f64 / 10.0;
        let mixed = StochasticMatrix::mixture(&[(w, &a), (1.0 - w, &b)]).expect("valid weights");
        for i in 0..3 {
            for j in 0..3 {
                let expect = w * a.prob(i, j) + (1.0 - w) * b.prob(i, j);
                prop_assert!((mixed.prob(i, j) - expect).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn controlled_chain_under_onehot_decision_is_that_kernel(
        kernels in proptest::collection::vec(stochastic(3), 3),
        action in 0usize..3,
    ) {
        let chain = ControlledMarkovChain::new(kernels.clone()).expect("same dims");
        let mut decision = vec![0.0; 3];
        decision[action] = 1.0;
        let mixed = chain.under_decision(&decision).expect("valid");
        for i in 0..3 {
            for j in 0..3 {
                prop_assert!((mixed.prob(i, j) - kernels[action].prob(i, j)).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn closed_loop_chain_rows_follow_state_decisions(
        kernels in proptest::collection::vec(stochastic(3), 2),
        decisions in proptest::collection::vec(stochastic_row(2), 3),
    ) {
        let chain = ControlledMarkovChain::new(kernels.clone()).expect("same dims");
        let closed = chain.under_state_decisions(&decisions).expect("valid");
        for (i, decision) in decisions.iter().enumerate() {
            for j in 0..3 {
                let expect = decision[0] * kernels[0].prob(i, j)
                    + decision[1] * kernels[1].prob(i, j);
                prop_assert!((closed.transition_matrix().prob(i, j) - expect).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn indexer_flatten_unflatten_round_trip(
        dims in proptest::collection::vec(1usize..5, 1..4),
    ) {
        let indexer = StateIndexer::new(&dims).expect("nonzero dims");
        for flat in 0..indexer.num_states() {
            let coords = indexer.unflatten(flat);
            prop_assert_eq!(indexer.flatten(&coords).expect("in range"), flat);
        }
    }

    #[test]
    fn hitting_times_satisfy_one_step_equation(p in stochastic(4), target in 0usize..4) {
        let chain = MarkovChain::new(p.clone());
        let h = chain.expected_hitting_times(target).expect("irreducible");
        for i in 0..4 {
            if i == target {
                prop_assert_eq!(h[i], 0.0);
                continue;
            }
            // h(i) = 1 + Σ_{j≠target} P(i,j) h(j)
            let rhs: f64 = 1.0
                + (0..4)
                    .filter(|&j| j != target)
                    .map(|j| p.prob(i, j) * h[j])
                    .sum::<f64>();
            prop_assert!((h[i] - rhs).abs() < 1e-8 * (1.0 + h[i].abs()));
        }
    }
}
