//! Shared helpers for the benchmark harness binaries that regenerate
//! every table and figure of the paper's evaluation (Section VI and
//! Appendix B). Each binary prints the rows/series of its figure; see
//! `EXPERIMENTS.md` for the paper-vs-measured record.
//!
//! Run them with, e.g.:
//!
//! ```text
//! cargo run --release -p dpm-bench --bin fig06
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

/// Prints a section header in a consistent style.
pub fn section(title: &str) {
    println!();
    println!("== {title} ==");
}

/// Prints one aligned table: a header row and data rows of equal arity.
///
/// # Panics
///
/// Panics when a row's arity differs from the header's.
pub fn table(header: &[&str], rows: &[Vec<String>]) {
    let cols = header.len();
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for row in rows {
        assert_eq!(row.len(), cols, "row arity mismatch");
        for (w, cell) in widths.iter_mut().zip(row) {
            *w = (*w).max(cell.len());
        }
    }
    let print_row = |cells: &[String]| {
        let line: Vec<String> = cells
            .iter()
            .zip(&widths)
            .map(|(c, w)| format!("{c:>w$}", w = w))
            .collect();
        println!("  {}", line.join("  "));
    };
    print_row(&header.iter().map(|s| s.to_string()).collect::<Vec<_>>());
    print_row(&widths.iter().map(|w| "-".repeat(*w)).collect::<Vec<_>>());
    for row in rows {
        print_row(row);
    }
}

/// Formats a feasible value or the paper's infeasible marker.
pub fn fmt_or_infeasible(value: Option<f64>, precision: usize) -> String {
    match value {
        Some(v) => format!("{v:.precision$}"),
        None => "infeasible".to_string(),
    }
}

/// Median of three timed runs of `f`, in nanoseconds — the shared
/// methodology behind every speedup ratio the benches write into tracked
/// JSON records (one sample is too exposed to scheduler noise).
pub fn time_median_ns<T>(mut f: impl FnMut() -> T) -> f64 {
    let mut samples: Vec<f64> = (0..3)
        .map(|_| {
            // Timing the workload is this crate's whole job; the
            // workspace-wide wall-clock ban (clippy.toml) stops here.
            #[allow(clippy::disallowed_methods)]
            let start = std::time::Instant::now();
            std::hint::black_box(f());
            start.elapsed().as_nanos() as f64
        })
        .collect();
    samples.sort_by(f64::total_cmp);
    samples[1]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fmt_handles_both_cases() {
        assert_eq!(fmt_or_infeasible(Some(1.23456), 3), "1.235");
        assert_eq!(fmt_or_infeasible(None, 3), "infeasible");
    }

    #[test]
    fn table_prints_without_panicking() {
        table(&["a", "bb"], &[vec!["1".to_string(), "2".to_string()]]);
    }

    #[test]
    #[should_panic(expected = "row arity mismatch")]
    fn table_rejects_ragged_rows() {
        table(&["a"], &[vec!["1".to_string(), "2".to_string()]]);
    }
}
