//! **Fig. 13(a)** — optimal power vs workload burstiness, for two
//! performance constraints.
//!
//! The SR switch probability is swept with the request probability fixed
//! at 0.5 (symmetric chain), so "increased burstiness does not imply
//! reduced workload". Expected shape: the burstier the requester (left),
//! the more power management can save.

use dpm_bench::{fmt_or_infeasible, section, table};
use dpm_core::{DpmError, PolicyOptimizer};
use dpm_systems::appendix_b::{Config, SLEEP_STATES};

const HORIZON: f64 = 100_000.0;

fn solve(switch_probability: f64, perf_bound: f64) -> Result<Option<f64>, DpmError> {
    let cfg = Config::baseline()
        .with_sleep_states(SLEEP_STATES.to_vec())
        .with_sr_switch(switch_probability);
    let system = cfg.system()?;
    match PolicyOptimizer::new(&system)
        .horizon(HORIZON)
        .use_expected_loss()
        .max_performance_penalty(perf_bound)
        .max_request_loss_rate(0.01)
        .solve()
    {
        Ok(s) => Ok(Some(s.power_per_slice())),
        Err(DpmError::Infeasible) => Ok(None),
        Err(e) => Err(e),
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    section("Fig. 13(a): power vs SR burstiness (request prob fixed at 0.5)");
    let mut rows = Vec::new();
    for p in [0.001, 0.002, 0.005, 0.01, 0.02, 0.05, 0.1, 0.2] {
        rows.push(vec![
            format!("{p:.3}"),
            format!("{:.1}", 1.0 / p),
            fmt_or_infeasible(solve(p, 0.5)?, 4),
            fmt_or_infeasible(solve(p, 0.9)?, 4),
        ]);
    }
    table(
        &[
            "switch prob",
            "mean burst",
            "tight perf ≤0.5 (W)",
            "loose perf ≤0.9 (W)",
        ],
        &rows,
    );
    println!("\n  expected: power increases to the right (less bursty ⇒ less to exploit).");
    Ok(())
}
