//! **Fig. 10** — the CPU case study under a non-stationary, non-Markovian
//! workload (two concatenated regimes, Example 7.1): trace-driven
//! simulation of the "optimal" policies (fitted to a single stationary SR
//! model of the whole trace) against timeout heuristics.
//!
//! Expected shape: the stochastic policies lose their optimality guarantee
//! — "in some cases, timeout-based shutdown outperforms stochastic
//! control", because the stationary-Markov-workload assumption is broken.

use dpm_bench::{section, table};
use dpm_core::PolicyOptimizer;
use dpm_policies::TimeoutPolicy;
use dpm_sim::{SimConfig, Simulator, StochasticPolicyManager};
use dpm_systems::cpu::{self, CpuCommand};
use dpm_trace::generators::example_7_1_workload;
use dpm_trace::{SrExtractor, TraceStats};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let slices = 1_000_000usize;
    let trace = example_7_1_workload(slices, 99);
    let stats_all = TraceStats::from_stream(&trace);
    let stats_a = TraceStats::from_stream(&trace[..slices / 2]);
    let stats_b = TraceStats::from_stream(&trace[slices / 2..]);

    section("workload: two merged regimes (Example 7.1)");
    println!(
        "  editing half: load {:.3}, mean burst {:.1}; compile half: load {:.3}, mean burst {:.1}",
        stats_a.load(),
        stats_a.mean_busy_length(),
        stats_b.load(),
        stats_b.mean_busy_length()
    );
    println!(
        "  whole trace load: {:.3} (a single 2-state SR is fitted to this)",
        stats_all.load()
    );

    // A single stationary 2-state model characterized on the entire trace.
    let workload = SrExtractor::new(1).extract(&trace)?;
    let system = cpu::system_with_workload(workload)?;
    let penalty = cpu::latency_penalty(&system);
    let sim = Simulator::new(
        &system,
        SimConfig::new(slices as u64)
            .seed(17)
            .initial(cpu::initial_state()),
    );

    section("Fig. 10: stochastic policies (fitted model) simulated on the real trace");
    let mut rows = Vec::new();
    for bound in [0.05, 0.02, 0.01, 0.005, 0.002] {
        let solution = PolicyOptimizer::new(&system)
            .horizon(500_000.0)
            .performance_cost(penalty.clone())
            .max_performance_penalty(bound)
            .initial_state(cpu::initial_state())?
            .solve()?;
        let mut manager = StochasticPolicyManager::new(solution.policy().clone());
        let mut tracker = dpm_sim::binary_tracker();
        let stats = sim.run_trace(&mut manager, &trace, &mut tracker)?;
        let measured_penalty = stats.lost as f64 / stats.slices as f64;
        rows.push(vec![
            format!("{bound:.4}"),
            format!("{measured_penalty:.5}"),
            format!("{:.5}", stats.average_power()),
        ]);
    }
    table(
        &["penalty bound (model)", "measured penalty", "power (W)"],
        &rows,
    );

    section("Fig. 10: timeout heuristics on the same trace");
    let mut rows = Vec::new();
    for timeout in [0u64, 5, 10, 25, 50, 100, 250, 500] {
        let mut policy = TimeoutPolicy::new(
            &system,
            CpuCommand::Run as usize,
            CpuCommand::ShutDown as usize,
            timeout,
        );
        let mut tracker = dpm_sim::binary_tracker();
        let stats = sim.run_trace(&mut policy, &trace, &mut tracker)?;
        let measured_penalty = stats.lost as f64 / stats.slices as f64;
        rows.push(vec![
            format!("timeout {timeout}"),
            format!("{measured_penalty:.5}"),
            format!("{:.5}", stats.average_power()),
        ]);
    }
    table(&["policy", "measured penalty", "power (W)"], &rows);

    println!(
        "\n  shape: with the stationarity assumption broken, stochastic control is no longer \
         provably optimal; timeout points may fall below the stochastic curve (the paper's \
         Fig. 10 observation)."
    );
    Ok(())
}
