//! **Table I** — disk-drive states, transition times to active, and power.
//!
//! Prints the data-sheet values alongside the expected transition times
//! *computed from the fitted Markov model* (holding `go_active` until the
//! transition completes), verifying the model calibration of Section VI-A.

use dpm_bench::{section, table};
use dpm_systems::disk::{self, DiskCommand, DiskState, TABLE_I};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let sp = disk::service_provider()?;
    section("Table I: IBM Travelstar VP states (paper vs fitted Markov model)");
    let mut rows = Vec::new();
    for (i, &(name, wake_slices, power)) in TABLE_I.iter().enumerate() {
        let modeled = if i == 0 {
            "-".to_string()
        } else {
            let t = sp
                .expected_transition_time(
                    i,
                    DiskState::Active as usize,
                    DiskCommand::GoActive as usize,
                )
                .expect("active reachable from every operational state");
            format!("{:.1} ms", t * disk::TIME_RESOLUTION_MS)
        };
        let datasheet = if i == 0 {
            "-".to_string()
        } else {
            format!("{:.1} ms", wake_slices * disk::TIME_RESOLUTION_MS)
        };
        rows.push(vec![
            name.to_string(),
            datasheet,
            modeled,
            format!("{power:.1} W"),
        ]);
    }
    table(
        &["state", "T (data sheet)", "T (Markov model)", "power"],
        &rows,
    );

    section("composed model");
    let system = disk::system()?;
    println!(
        "  {} SP states x {} SR states x {} queue states = {} system states, {} commands",
        sp.num_states(),
        system.requester().num_states(),
        system.queue().num_states(),
        system.num_states(),
        system.num_commands()
    );
    println!(
        "  policy table size: {} x {} = {} entries (paper: 66 x 5 = 330)",
        system.num_states(),
        system.num_commands(),
        system.num_states() * system.num_commands()
    );
    Ok(())
}
