//! **Example A.2** — the worked constrained optimization of Appendix A:
//! minimize power on the running example with α = 0.99999, average queue
//! ≤ 0.5 and request-loss rate ≤ 0.2.
//!
//! The paper reports a minimum expected power of **1.798 W** ("almost a
//! factor of two" below the 3 W always-on policy) and an optimal policy
//! that randomizes: in state `(on, idle, queue empty)` it issues `s_off`
//! with probability 0.226. Parts of the example's transition matrices were
//! lost with the paper's figures; with the reconstruction documented in
//! `dpm-systems::toy` this binary reproduces the same structure with
//! power ≈ 1.74 W.

use dpm_bench::{section, table};
use dpm_core::{OptimizationGoal, PolicyOptimizer};
use dpm_systems::toy;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let system = toy::example_system()?;
    let solution = PolicyOptimizer::new(&system)
        .discount(0.99999)
        .goal(OptimizationGoal::MinimizePower)
        .max_performance_penalty(0.5)
        .max_request_loss_rate(0.2)
        .initial_state(toy::initial_state())?
        .solve()?;

    section("Example A.2: constrained minimum-power policy");
    println!(
        "  expected power:   {:.4} W   (paper: 1.798 W)",
        solution.power_per_slice()
    );
    println!("  always-on power:  {:.4} W", toy::POWER_ON);
    println!(
        "  savings factor:   {:.2}x     (paper: ~2x)",
        toy::POWER_ON / solution.power_per_slice()
    );
    println!(
        "  avg queue:        {:.4}    (bound 0.5)",
        solution.performance_per_slice()
    );
    println!(
        "  loss rate:        {:.4}    (bound 0.2)",
        solution.loss_per_slice()
    );
    println!(
        "  policy class:     {}",
        if solution.is_randomized() {
            "randomized (constraints active, Theorem A.2)"
        } else {
            "deterministic"
        }
    );

    section("optimal policy matrix (rows: system states; cols: s_on, s_off)");
    let policy = solution.policy();
    let mut rows = Vec::new();
    for s in 0..system.num_states() {
        rows.push(vec![
            system.state_label(s),
            format!("{:.3}", policy.prob(s, toy::CMD_ON)),
            format!("{:.3}", policy.prob(s, toy::CMD_OFF)),
        ]);
    }
    table(&["state", "P(s_on)", "P(s_off)"], &rows);

    let on_idle_empty = system.state_index(toy::initial_state())?;
    println!(
        "\n  P(s_off | on, idle, empty) = {:.3}   (paper: 0.226)",
        policy.prob(on_idle_empty, toy::CMD_OFF)
    );
    Ok(())
}
