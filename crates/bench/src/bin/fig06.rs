//! **Fig. 6** — Pareto curves of the running example system under three
//! request-loss constraint settings.
//!
//! x-axis: average queue length bound (performance constraint);
//! y-axis: minimum expected power. Expected shape (Section IV-A):
//!
//! * an infeasible region below the workload's queue floor (paper ≈ 0.175,
//!   this reconstruction ≈ 0.163);
//! * loose loss bound: pure performance-power tradeoff (lowest curve);
//! * tight loss bound: the resource can never afford to sleep — power
//!   pegged at maximum (topmost curve);
//! * intermediate bound: flat (loss-dominated) region that bends into the
//!   performance-dominated regime (middle curve).

use dpm_bench::{fmt_or_infeasible, section, table};
use dpm_core::{OptimizationGoal, ParetoExplorer, PolicyOptimizer};
use dpm_systems::toy;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let system = toy::example_system()?;
    let discount = 0.99999;
    let queue_bounds: Vec<f64> = vec![
        0.9, 0.8, 0.7, 0.6, 0.5, 0.4, 0.3, 0.25, 0.2, 0.17, 0.15, 0.1,
    ];
    // Loss-rate settings: loose (never active), intermediate, tight
    // (dominates everywhere feasible).
    let loss_settings = [
        ("loose (0.50)", 0.5),
        ("mid (0.20)", 0.2),
        ("tight (0.16)", 0.16),
    ];

    section("Fig. 6: Pareto curves, example system (power vs avg queue bound)");
    let mut curves = Vec::new();
    for &(_, loss) in &loss_settings {
        let base = PolicyOptimizer::new(&system)
            .discount(discount)
            .goal(OptimizationGoal::MinimizePower)
            .max_request_loss_rate(loss)
            .initial_state(toy::initial_state())?;
        curves.push(ParetoExplorer::sweep_performance(base, &queue_bounds)?);
    }

    let mut rows = Vec::new();
    for (i, &bound) in queue_bounds.iter().enumerate() {
        rows.push(vec![
            format!("{bound:.2}"),
            fmt_or_infeasible(curves[0].points()[i].objective(), 4),
            fmt_or_infeasible(curves[1].points()[i].objective(), 4),
            fmt_or_infeasible(curves[2].points()[i].objective(), 4),
        ]);
    }
    table(
        &[
            "queue bound",
            loss_settings[0].0,
            loss_settings[1].0,
            loss_settings[2].0,
        ],
        &rows,
    );

    section("structure checks");
    for (curve, (name, _)) in curves.iter().zip(&loss_settings) {
        println!(
            "  loss {name}: {} feasible points, {} infeasible, convex efficient set: {}",
            curve.feasible().len(),
            curve.num_infeasible(),
            curve.is_convex(1e-6)
        );
    }
    println!("  (paper: infeasible below avg queue ~0.175; here the floor is ~0.163)");
    Ok(())
}
