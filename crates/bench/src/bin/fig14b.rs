//! **Fig. 14(b)** — optimal power vs queue length, for three request-loss
//! constraints.
//!
//! Expected shape (the paper's "little more involved" interpretation):
//! when the optimization is **loss-dominated** (tight loss bounds, the
//! paper's squares), longer queues reduce the chance of arrivals finding
//! the queue full, so power falls with capacity; when it is
//! **performance-dominated** (the circles), longer queues mean longer
//! waits at the same average-occupancy bound, so shorter queues do better
//! (power rises with capacity).
//!
//! Reconstruction note: with our saturated-burst workload the standing
//! backlog during bursts is larger than in the paper's (lost) parameters,
//! which shifts the performance bound separating the two regimes: the
//! loss-dominated series use `perf ≤ 1.5`, the performance-dominated
//! series the paper's `perf ≤ 0.5`.

use dpm_bench::{fmt_or_infeasible, section, table};
use dpm_core::{DpmError, PolicyOptimizer};
use dpm_systems::appendix_b::{Config, SLEEP_STATES};

const HORIZON: f64 = 100_000.0;

fn solve(capacity: usize, perf_bound: f64, loss_bound: f64) -> Result<Option<f64>, DpmError> {
    let cfg = Config::baseline()
        .with_sleep_states(SLEEP_STATES.to_vec())
        .with_queue_capacity(capacity);
    let system = cfg.system()?;
    match PolicyOptimizer::new(&system)
        .horizon(HORIZON)
        .use_expected_loss()
        .max_performance_penalty(perf_bound)
        .max_request_loss_rate(loss_bound)
        .solve()
    {
        Ok(s) => Ok(Some(s.power_per_slice())),
        Err(DpmError::Infeasible) => Ok(None),
        Err(e) => Err(e),
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    section("Fig. 14(b): power vs queue capacity (horizon 1e5)");
    let mut rows = Vec::new();
    for capacity in 1..=6usize {
        rows.push(vec![
            format!("{capacity}"),
            fmt_or_infeasible(solve(capacity, 1.5, 0.0005)?, 4),
            fmt_or_infeasible(solve(capacity, 1.5, 0.002)?, 4),
            fmt_or_infeasible(solve(capacity, 0.5, 0.02)?, 4),
        ]);
    }
    table(
        &[
            "queue capacity",
            "loss≤0.0005 (squares)",
            "loss≤0.002 (squares)",
            "perf≤0.5 (circles)",
        ],
        &rows,
    );
    println!("\n  expected: the loss-dominated (squares) columns fall with capacity;");
    println!("  the performance-dominated (circles) column rises.");
    Ok(())
}
