//! **Fig. 9(a)** — dual-processor web server: optimal power vs minimum
//! throughput (solid line) and trace-driven simulation of the optimal
//! policies (circles); plus the paper's headline observation that the
//! faster processor is never used alone.

use dpm_bench::{section, table};
use dpm_core::PolicyOptimizer;
use dpm_sim::{SimConfig, Simulator, StochasticPolicyManager};
use dpm_systems::web_server::{self, ServerState, HORIZON_SLICES};
use dpm_trace::generators::BurstyTraceGenerator;
use dpm_trace::SrExtractor;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Synthetic ITA-like workload trace and its extracted 2-state model.
    let slices = 2_000_000usize;
    let trace = BurstyTraceGenerator::new(0.025, 0.9)
        .seed(5)
        .generate(slices);
    let workload = SrExtractor::new(1).extract(&trace)?;
    let system = web_server::system_with_workload(workload)?;
    let throughput = web_server::throughput_matrix(&system);

    section("Fig. 9(a): optimal power vs min expected throughput + simulation circles");
    // Session restarts at 1/horizon make the simulation sample the same
    // discounted measure the LP optimizes (constrained optima here are
    // not ergodic: single trajectories fall into one recurrent class).
    let sim = Simulator::new(
        &system,
        SimConfig::new(slices as u64)
            .seed(3)
            .initial(web_server::initial_state())
            .restart_probability(1.0 / HORIZON_SLICES),
    );
    let mut rows = Vec::new();
    let mut only2_max: f64 = 0.0;
    for min_throughput in [0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8] {
        let solution = PolicyOptimizer::new(&system)
            .horizon(HORIZON_SLICES)
            .custom_constraint("-throughput", &throughput * -1.0, -min_throughput)
            .initial_state(web_server::initial_state())?
            .solve()?;
        let mut manager = StochasticPolicyManager::new(solution.policy().clone());
        let mut tracker = dpm_sim::binary_tracker();
        let stats = sim.run_trace(&mut manager, &trace, &mut tracker)?;
        // Mass the occupation measure puts on "only the fast processor".
        let occupation = solution.constrained().occupation();
        let freqs = occupation.state_frequencies();
        let only2: f64 = (0..system.num_states())
            .filter(|&i| system.state_of(i).sp == ServerState::OnlyProc2 as usize)
            .map(|i| freqs[i])
            .sum();
        let only2_frac = only2 / occupation.total_visits();
        only2_max = only2_max.max(only2_frac);
        rows.push(vec![
            format!("{min_throughput:.1}"),
            format!("{:.4}", solution.power_per_slice()),
            format!("{:.4}", stats.average_power()),
            format!("{:.4}", only2_frac),
        ]);
    }
    table(
        &[
            "min throughput",
            "LP power (W)",
            "sim power (W)",
            "P(only proc2)",
        ],
        &rows,
    );

    section("headline check");
    println!(
        "  the faster processor is used alone with probability at most {only2_max:.4} \
         (paper: 'never used alone')"
    );
    Ok(())
}
