//! **Fig. 12(a)** — optimal power vs the set of available sleep states,
//! under a tight and a loose performance constraint.
//!
//! Expected shape: more sleep states help, with diminishing returns
//! (sleep2 brings the big drop; sleep3/sleep4 little more); a deep sleep
//! state alone (`{sleep4}`) beats the shallow baseline (`{sleep1}`);
//! under the tight constraint deep states are harder to exploit.

use dpm_bench::{fmt_or_infeasible, section, table};
use dpm_core::{DpmError, PolicyOptimizer};
use dpm_systems::appendix_b::{Config, SLEEP_STATES};

const HORIZON: f64 = 100_000.0;

fn solve(cfg: &Config, perf_bound: f64) -> Result<Option<f64>, DpmError> {
    let system = cfg.system()?;
    match PolicyOptimizer::new(&system)
        .horizon(HORIZON)
        .max_performance_penalty(perf_bound)
        .solve()
    {
        Ok(s) => Ok(Some(s.power_per_slice())),
        Err(DpmError::Infeasible) => Ok(None),
        Err(e) => Err(e),
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let structures: Vec<(&str, Vec<usize>)> = vec![
        ("{s1}", vec![0]),
        ("{s2}", vec![1]),
        ("{s4}", vec![3]),
        ("{s1,s2}", vec![0, 1]),
        ("{s1,s2,s3}", vec![0, 1, 2]),
        ("{s1,s2,s3,s4}", vec![0, 1, 2, 3]),
    ];

    section("Fig. 12(a): power vs available sleep states (horizon 1e5)");
    let mut rows = Vec::new();
    for (name, idxs) in &structures {
        let cfg =
            Config::baseline().with_sleep_states(idxs.iter().map(|&i| SLEEP_STATES[i]).collect());
        let tight = solve(&cfg, 0.2)?;
        let loose = solve(&cfg, 0.8)?;
        rows.push(vec![
            name.to_string(),
            fmt_or_infeasible(tight, 4),
            fmt_or_infeasible(loose, 4),
        ]);
    }
    table(
        &["sleep states", "tight perf ≤0.2 (W)", "loose perf ≤0.8 (W)"],
        &rows,
    );

    println!(
        "\n  expected: {{s1,s2}} ≈ {{s1,s2,s3}} ≈ {{s1..s4}} < {{s1}}; {{s4}} alone < {{s1}};"
    );
    println!("  tight-constraint savings smaller than loose-constraint savings.");
    Ok(())
}
