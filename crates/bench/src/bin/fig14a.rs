//! **Fig. 14(a)** — optimal power vs time horizon (trap-state probability
//! `1 − α`), for two request-loss constraints.
//!
//! Expected shape: "the longer the time horizon the better the achievable
//! power savings, because the optimizer has a longer time to amortize
//! wrong decisions"; power decreases toward long horizons (leftward in
//! the paper's axis, downward in this table).

use dpm_bench::{fmt_or_infeasible, section, table};
use dpm_core::{DpmError, PolicyOptimizer};
use dpm_systems::appendix_b::{Config, SLEEP_STATES};

fn solve(one_minus_alpha: f64, loss_bound: f64) -> Result<Option<f64>, DpmError> {
    let cfg = Config::baseline().with_sleep_states(SLEEP_STATES.to_vec());
    let system = cfg.system()?;
    // Sessions start mid-operation: the SP is active with an empty queue,
    // but the workload is in its stationary mix (half busy for the
    // symmetric baseline SR). A synchronized "idle" start would let short
    // sessions sleep through their whole (likely idle) window, inverting
    // the figure's trend.
    let mut initial = vec![0.0; system.num_states()];
    let pi = system.requester().chain().stationary_distribution()?;
    for (sr_state, &mass) in pi.iter().enumerate() {
        let idx = system.state_index(dpm_core::SystemState {
            sp: 0,
            sr: sr_state,
            queue: 0,
        })?;
        initial[idx] = mass;
    }
    match PolicyOptimizer::new(&system)
        .discount(1.0 - one_minus_alpha)
        .use_expected_loss()
        .max_performance_penalty(0.5)
        .max_request_loss_rate(loss_bound)
        .initial_distribution(initial)
        .solve()
    {
        Ok(s) => Ok(Some(s.power_per_slice())),
        Err(DpmError::Infeasible) => Ok(None),
        Err(e) => Err(e),
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    section("Fig. 14(a): power vs time horizon (perf ≤ 0.5)");
    let mut rows = Vec::new();
    for one_minus_alpha in [1e-2, 3e-3, 1e-3, 3e-4, 1e-4, 1e-5, 1e-6] {
        rows.push(vec![
            format!("{one_minus_alpha:.0e}"),
            format!("{:.0}", 1.0 / one_minus_alpha),
            fmt_or_infeasible(solve(one_minus_alpha, 0.01)?, 4),
            fmt_or_infeasible(solve(one_minus_alpha, 0.1)?, 4),
        ]);
    }
    table(
        &[
            "1 − α",
            "horizon (slices)",
            "tight loss ≤0.01 (W)",
            "loose loss ≤0.1 (W)",
        ],
        &rows,
    );
    println!(
        "\n  expected: power decreases down the table (longer horizons amortize transitions)."
    );
    Ok(())
}
