//! **Fig. 8(b)** — disk drive: power vs performance for optimal policies
//! (the Pareto curve), trace-driven simulation of those policies (the
//! circles), and the heuristic baselines (greedy per sleep state, timeout
//! family, randomized timeouts).
//!
//! Expected shape: the simulation circles land on the optimizer's curve
//! (the workload *is* Markovian here); heuristics sit on or above the
//! curve, with the best of them close but never below; timeout policies
//! waste power waiting for the timeout to expire.

use dpm_bench::{fmt_or_infeasible, section, table};
use dpm_core::{OptimizationGoal, ParetoExplorer, PolicyOptimizer};
use dpm_policies::{EagerPolicy, RandomizedTimeoutPolicy, TimeoutPolicy};
use dpm_sim::{SimConfig, Simulator, StochasticPolicyManager};
use dpm_systems::disk::{self, DiskCommand};
use dpm_trace::generators::BurstyTraceGenerator;
use dpm_trace::SrExtractor;

// The paper uses a 10^6-slice horizon; we shorten it to 10^5 and simulate
// twenty expected sessions so the restart-sampled averages (which converge
// to the discounted occupation measure) have usable statistics.
const HORIZON: f64 = 100_000.0;
const SIM_SLICES: u64 = 2_000_000;
const LOSS_BOUND: f64 = 0.05;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The workload: a synthetic Auspex-like trace, with the SR model
    // extracted from it exactly as the paper's tool does (Fig. 7).
    let trace = BurstyTraceGenerator::new(0.005, 0.3)
        .seed(42)
        .generate(SIM_SLICES as usize);
    let workload = SrExtractor::new(1).extract(&trace)?;
    let system = disk::system_with_workload(workload)?;

    // --- Optimal Pareto curve (solid line) ---
    section("Fig. 8(b), solid line: optimal power vs avg-queue bound");
    let queue_bounds = [0.5, 0.3, 0.2, 0.1, 0.05, 0.03, 0.02, 0.015, 0.012, 0.01];
    let base = PolicyOptimizer::new(&system)
        .horizon(HORIZON)
        .goal(OptimizationGoal::MinimizePower)
        .max_request_loss_rate(LOSS_BOUND)
        .initial_state(disk::initial_state())?;
    let curve = ParetoExplorer::sweep_performance(base, &queue_bounds)?;
    let mut rows = Vec::new();
    for p in curve.points() {
        let (perf, power) = match &p.solution {
            Some(s) => (
                format!("{:.4}", s.performance_per_slice()),
                format!("{:.4}", s.objective_per_slice()),
            ),
            None => ("-".to_string(), "infeasible".to_string()),
        };
        rows.push(vec![format!("{:.3}", p.bound), perf, power]);
    }
    table(
        &["queue bound", "achieved queue", "optimal power (W)"],
        &rows,
    );

    // --- Trace-driven simulation of the optimal policies (circles) ---
    section("Fig. 8(b), circles: trace-driven simulation of optimal policies");
    // Constrained optima can be non-ergodic mixtures; session restarts at
    // rate 1/horizon make the simulated time-average sample the same
    // discounted measure the LP optimizes.
    let sim = Simulator::new(
        &system,
        SimConfig::new(SIM_SLICES)
            .seed(7)
            .initial(disk::initial_state())
            .restart_probability(1.0 / HORIZON),
    );
    let mut rows = Vec::new();
    for p in curve.points().iter().filter(|p| p.is_feasible()) {
        let solution = p.solution.as_ref().expect("filtered feasible");
        let mut manager = StochasticPolicyManager::new(solution.policy().clone());
        let mut tracker = dpm_sim::binary_tracker();
        let stats = sim.run_trace(&mut manager, &trace, &mut tracker)?;
        rows.push(vec![
            format!("{:.3}", p.bound),
            format!("{:.4}", solution.objective_per_slice()),
            format!("{:.4}", stats.average_power()),
            format!("{:.4}", solution.performance_per_slice()),
            format!("{:.4}", stats.average_queue()),
        ]);
    }
    table(
        &[
            "queue bound",
            "LP power",
            "sim power",
            "LP queue",
            "sim queue",
        ],
        &rows,
    );

    // --- Heuristics ---
    let wake = DiskCommand::GoActive as usize;
    let sleep_cmds = [
        ("idle", DiskCommand::GoIdle as usize),
        ("LPidle", DiskCommand::GoLpIdle as usize),
        ("standby", DiskCommand::GoStandby as usize),
        ("sleep", DiskCommand::GoSleep as usize),
    ];

    section("Fig. 8(b), up-triangles: greedy (eager) policies per sleep state");
    let mut rows = Vec::new();
    for &(name, cmd) in &sleep_cmds {
        let mut policy = EagerPolicy::new(&system, wake, cmd);
        let mut tracker = dpm_sim::binary_tracker();
        let stats = sim.run_trace(&mut policy, &trace, &mut tracker)?;
        rows.push(vec![
            format!("greedy→{name}"),
            format!("{:.4}", stats.average_queue()),
            format!("{:.4}", stats.average_power()),
        ]);
    }
    table(&["policy", "avg queue", "power (W)"], &rows);

    section("Fig. 8(b), down-triangles: timeout policies (sleep state = standby)");
    let mut rows = Vec::new();
    for timeout in [0u64, 10, 50, 200, 1000, 5000] {
        let mut policy =
            TimeoutPolicy::new(&system, wake, DiskCommand::GoStandby as usize, timeout);
        let mut tracker = dpm_sim::binary_tracker();
        let stats = sim.run_trace(&mut policy, &trace, &mut tracker)?;
        rows.push(vec![
            format!("timeout {timeout}"),
            format!("{:.4}", stats.average_queue()),
            format!("{:.4}", stats.average_power()),
        ]);
    }
    table(&["policy", "avg queue", "power (W)"], &rows);

    section("Fig. 8(b), boxes: randomized timeout policies");
    let mut rows = Vec::new();
    let choices = [
        vec![
            (0.5, 10, DiskCommand::GoLpIdle as usize),
            (0.5, 500, DiskCommand::GoStandby as usize),
        ],
        vec![
            (0.3, 0, DiskCommand::GoLpIdle as usize),
            (0.7, 1000, DiskCommand::GoSleep as usize),
        ],
        vec![
            (0.4, 50, DiskCommand::GoIdle as usize),
            (0.4, 200, DiskCommand::GoStandby as usize),
            (0.2, 2000, DiskCommand::GoSleep as usize),
        ],
    ];
    for (i, choice) in choices.iter().enumerate() {
        let mut policy = RandomizedTimeoutPolicy::new(&system, wake, choice.clone());
        let mut tracker = dpm_sim::binary_tracker();
        let stats = sim.run_trace(&mut policy, &trace, &mut tracker)?;
        rows.push(vec![
            format!("randomized #{}", i + 1),
            format!("{:.4}", stats.average_queue()),
            format!("{:.4}", stats.average_power()),
        ]);
    }
    table(&["policy", "avg queue", "power (W)"], &rows);

    section("shape check");
    let best_heuristic_note =
        "heuristic points must lie on or above the optimal curve at equal performance";
    println!("  {best_heuristic_note}");
    println!(
        "  optimal curve convex: {} (Theorem 4.1); infeasible points: {}",
        curve.is_convex(1e-6),
        fmt_or_infeasible(Some(curve.num_infeasible() as f64), 0)
    );
    Ok(())
}
