//! **Fig. 9(b)** — SA-1100 CPU: optimum stochastic control (solid line)
//! vs timeout heuristics (dashed line), power against the probability of
//! a request arriving while the CPU sleeps.
//!
//! Expected shape: on this stationary Markovian workload the optimal
//! policies dominate — "timeout-based policies waste power while waiting
//! for a timeout to expire".

use dpm_bench::{section, table};
use dpm_core::PolicyOptimizer;
use dpm_policies::TimeoutPolicy;
use dpm_sim::{SimConfig, Simulator, StochasticPolicyManager};
use dpm_systems::cpu::{self, CpuCommand};

const SIM_SLICES: u64 = 1_000_000;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let system = cpu::system()?;
    let penalty = cpu::latency_penalty(&system);
    let sim = Simulator::new(
        &system,
        SimConfig::new(SIM_SLICES)
            .seed(13)
            .initial(cpu::initial_state()),
    );

    section("Fig. 9(b), solid line: optimal stochastic control");
    let mut rows = Vec::new();
    for bound in [0.05, 0.02, 0.01, 0.005, 0.002, 0.001, 0.0005] {
        let solution = PolicyOptimizer::new(&system)
            .horizon(500_000.0)
            .performance_cost(penalty.clone())
            .max_performance_penalty(bound)
            .initial_state(cpu::initial_state())?
            .solve()?;
        let mut manager = StochasticPolicyManager::new(solution.policy().clone());
        let stats = sim.run(&mut manager)?;
        rows.push(vec![
            format!("{bound:.4}"),
            format!("{:.5}", solution.performance_per_slice()),
            format!("{:.5}", solution.power_per_slice()),
            format!("{:.5}", stats.average_power()),
        ]);
    }
    table(
        &[
            "penalty bound",
            "LP penalty",
            "LP power (W)",
            "sim power (W)",
        ],
        &rows,
    );

    section("Fig. 9(b), dashed line: timeout heuristics (simulated)");
    let mut rows = Vec::new();
    for timeout in [0u64, 5, 10, 25, 50, 100, 250, 500, 1500] {
        let mut policy = TimeoutPolicy::new(
            &system,
            CpuCommand::Run as usize,
            CpuCommand::ShutDown as usize,
            timeout,
        );
        let stats = sim.run(&mut policy)?;
        // Measured penalty rate: in this queue-less system, a request
        // arriving while the CPU is not active goes unserved and shows up
        // as a lost request.
        let penalty_rate = stats.lost as f64 / stats.slices as f64;
        rows.push(vec![
            format!("timeout {timeout}"),
            format!("{penalty_rate:.5}"),
            format!("{:.5}", stats.average_power()),
        ]);
    }
    table(&["policy", "penalty rate", "power (W)"], &rows);

    println!("\n  shape: at equal penalty the optimal curve must lie below the timeout curve");
    Ok(())
}
