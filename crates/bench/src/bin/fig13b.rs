//! **Fig. 13(b)** — optimal power vs service-requester memory `k` (the
//! fitted model has `2^k` states), for three performance constraints and
//! two provider structures.
//!
//! One bursty trace is generated once; k-memory SR models are extracted
//! from it for k = 1..5 and plugged into the same provider/queue.
//! Expected shape: longer memory (better workload knowledge) weakly
//! improves power, more so when several sleep states are available.

use dpm_bench::{fmt_or_infeasible, section, table};
use dpm_core::{DpmError, PolicyOptimizer, ServiceRequester};
use dpm_systems::appendix_b::{Config, SLEEP_STATES};
use dpm_trace::generators::BurstyTraceGenerator;
use dpm_trace::SrExtractor;

const HORIZON: f64 = 100_000.0;

fn solve(cfg: &Config, sr: &ServiceRequester, perf_bound: f64) -> Result<Option<f64>, DpmError> {
    let system = cfg.system_with_requester(sr.clone())?;
    match PolicyOptimizer::new(&system)
        .horizon(HORIZON)
        .use_expected_loss()
        .max_performance_penalty(perf_bound)
        .max_request_loss_rate(0.05)
        .solve()
    {
        Ok(s) => Ok(Some(s.power_per_slice())),
        Err(DpmError::Infeasible) => Ok(None),
        Err(e) => Err(e),
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // One trace, fitted at increasing memory. The workload has structure
    // beyond first order: service bursts during which requests arrive
    // every third slice (a DMA-like cadence). A 1-memory model sees only
    // "mostly idle"; k ≥ 3 learns the cadence and can nap between
    // requests — the extra knowledge the paper's Fig. 13(b) exploits.
    let outer = BurstyTraceGenerator::new(0.005, 0.995)
        .seed(32)
        .generate(400_000);
    let trace: Vec<u32> = outer
        .iter()
        .enumerate()
        .map(|(i, &b)| if b > 0 && i % 3 == 0 { 1 } else { 0 })
        .collect();

    let baseline_sp = Config::baseline();
    let two_sleep = Config::baseline().with_sleep_states(vec![SLEEP_STATES[0], SLEEP_STATES[1]]);

    section("Fig. 13(b): power vs SR memory k (2^k states)");
    let mut rows = Vec::new();
    for k in 1..=5u32 {
        let sr = SrExtractor::new(k).extract(&trace)?;
        rows.push(vec![
            format!("{k}"),
            format!("{}", sr.num_states()),
            fmt_or_infeasible(solve(&baseline_sp, &sr, 0.3)?, 4),
            fmt_or_infeasible(solve(&baseline_sp, &sr, 0.5)?, 4),
            fmt_or_infeasible(solve(&baseline_sp, &sr, 0.8)?, 4),
            fmt_or_infeasible(solve(&two_sleep, &sr, 0.5)?, 4),
        ]);
    }
    table(
        &[
            "k",
            "SR states",
            "1 sleep, perf≤0.3",
            "1 sleep, perf≤0.5",
            "1 sleep, perf≤0.8",
            "2 sleeps, perf≤0.5",
        ],
        &rows,
    );
    println!("\n  expected: power weakly decreases with k; the multi-sleep column gains more.");
    Ok(())
}
