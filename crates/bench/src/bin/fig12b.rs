//! **Fig. 12(b)** — optimal power vs the sleep-exit transition
//! probability (inverse of the wake time), for sleep powers of 2 W and
//! 0 W, under a request-loss-dominated and a performance-dominated
//! constraint setting.
//!
//! Expected shape: power falls as transitions get faster (rightward);
//! with very slow transitions the sleep state cannot be used at all
//! (points pinned at the always-on ceiling); a fast shallow sleep state
//! can beat a slow deep one.

use dpm_bench::{fmt_or_infeasible, section, table};
use dpm_core::{DpmError, PolicyOptimizer};
use dpm_systems::appendix_b::{Config, SleepState};

const HORIZON: f64 = 100_000.0;

#[derive(Clone, Copy)]
enum Regime {
    LossDominated,
    PerfDominated,
}

fn solve(sleep_power: f64, exit_probability: f64, regime: Regime) -> Result<Option<f64>, DpmError> {
    let cfg = Config::baseline().with_sleep_states(vec![SleepState {
        name: "sleep",
        power: sleep_power,
        exit_probability,
    }]);
    let system = cfg.system()?;
    let optimizer = PolicyOptimizer::new(&system)
        .horizon(HORIZON)
        .use_expected_loss();
    let optimizer = match regime {
        Regime::LossDominated => optimizer
            .max_request_loss_rate(0.01)
            .max_performance_penalty(1.5),
        Regime::PerfDominated => optimizer
            .max_performance_penalty(0.5)
            .max_request_loss_rate(0.3),
    };
    match optimizer.solve() {
        Ok(s) => Ok(Some(s.power_per_slice())),
        Err(DpmError::Infeasible) => Ok(None),
        Err(e) => Err(e),
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    section("Fig. 12(b): power vs sleep-exit probability (horizon 1e5)");
    let exit_probs = [0.001, 0.003, 0.01, 0.03, 0.1, 0.3, 1.0];
    let mut rows = Vec::new();
    for &p in &exit_probs {
        rows.push(vec![
            format!("{p:.3}"),
            fmt_or_infeasible(solve(2.0, p, Regime::LossDominated)?, 4),
            fmt_or_infeasible(solve(2.0, p, Regime::PerfDominated)?, 4),
            fmt_or_infeasible(solve(0.0, p, Regime::LossDominated)?, 4),
            fmt_or_infeasible(solve(0.0, p, Regime::PerfDominated)?, 4),
        ]);
    }
    table(
        &[
            "exit prob",
            "2W sleep, loss-dom",
            "2W sleep, perf-dom",
            "0W sleep, loss-dom",
            "0W sleep, perf-dom",
        ],
        &rows,
    );
    println!("\n  expected: monotone decrease to the right; slow transitions pin power near 3 W;");
    println!("  a fast 2 W sleep state can beat a slow 0 W one (compare across columns).");
    Ok(())
}
