//! Warm-started Pareto sweeps vs per-point cold solves — the acceptance
//! benchmark of the stateful-session redesign.
//!
//! The paper produces every tradeoff curve "by repeatedly solving the LP
//! with different performance constraints" (Figs. 6, 8(b), 9); between
//! sweep points only one rhs changes, so the warm path re-solves by dual
//! simplex from the previous optimal basis. This bench runs the same
//! Fig. 6-style sweep two ways on two systems — the paper's disk drive
//! (66 states) and the scaled Appendix-B instance (208 states × 13
//! commands) — and records both, plus solver-effort counters (`pivots`,
//! `refactorizations`) from the per-point [`SolveReport`]s:
//!
//! * `pareto_sweep/warm/<system>` — one `ParetoExplorer` session sweep;
//! * `pareto_sweep/cold/<system>` — the same bounds through the legacy
//!   per-point path (`sweep_with`, full prepare + solve each point);
//! * `pareto_sweep` — the headline record: warm disk sweep timing with
//!   `cold_over_warm_x` speedup counters for both systems.
//!
//! The warm and cold curves are asserted to agree point-for-point to
//! 1e-6 before anything is timed.

use criterion::{criterion_group, criterion_main, Bencher, Criterion};
use dpm_core::{OptimizationGoal, ParetoCurve, ParetoExplorer, PolicyOptimizer, SystemModel};
use dpm_systems::{appendix_b, disk};

/// Queue-occupancy bounds of the Fig. 6-style sweep for the disk system:
/// from slack down toward the feasibility floor.
const DISK_BOUNDS: [f64; 8] = [0.5, 0.4, 0.3, 0.2, 0.15, 0.1, 0.07, 0.05];

/// Sweep bounds for the scaled Appendix-B instance (208 states).
const SCALED_BOUNDS: [f64; 6] = [1.2, 1.0, 0.9, 0.8, 0.7, 0.6];

/// Sweep bounds for the ≥1000-state instance — fewer points: each cold
/// solve is a ~10⁵-variable LP, and the point of the record is the
/// factorization counters, not sweep length.
const HUGE_BOUNDS: [f64; 3] = [1.2, 1.0, 0.8];

fn disk_base(system: &SystemModel) -> PolicyOptimizer<'_> {
    PolicyOptimizer::new(system)
        .horizon(1_000_000.0)
        .goal(OptimizationGoal::MinimizePower)
        .max_request_loss_rate(0.05)
}

fn scaled_base(system: &SystemModel) -> PolicyOptimizer<'_> {
    PolicyOptimizer::new(system)
        .horizon(100_000.0)
        .max_request_loss_rate(0.05)
}

fn warm_sweep<'a>(base: impl Fn() -> PolicyOptimizer<'a>, bounds: &[f64]) -> ParetoCurve {
    ParetoExplorer::sweep_performance(base(), bounds).expect("sweep runs")
}

fn cold_sweep<'a>(base: impl Fn() -> PolicyOptimizer<'a>, bounds: &[f64]) -> ParetoCurve {
    ParetoExplorer::sweep_with(base(), bounds, |optimizer, bound| {
        optimizer.max_performance_penalty(bound)
    })
    .expect("sweep runs")
}

/// Asserts the two curves agree point-for-point (feasibility pattern and
/// objectives to 1e-6) — the correctness half of the acceptance criteria.
fn assert_curves_agree(label: &str, warm: &ParetoCurve, cold: &ParetoCurve) {
    assert_eq!(warm.points().len(), cold.points().len(), "{label}");
    for (w, c) in warm.points().iter().zip(cold.points()) {
        assert_eq!(
            w.is_feasible(),
            c.is_feasible(),
            "{label} bound {}",
            w.bound
        );
        if let (Some(wo), Some(co)) = (w.objective(), c.objective()) {
            assert!(
                (wo - co).abs() < 1e-6,
                "{label} bound {}: warm {wo} vs cold {co}",
                w.bound
            );
        }
    }
}

/// Attaches a sweep's solver-effort counters — warm/cold split, pivots,
/// and the factorization attribution (refactorizations, in-place basis
/// updates, peak fill-in) — to the benchmark's JSON record.
fn effort_counters(b: &mut Bencher, curve: &ParetoCurve) {
    let effort = curve.solver_effort();
    b.counter("warm_points", effort.warm_starts as f64);
    b.counter("cold_points", effort.cold_starts as f64);
    b.counter("pivots", effort.pivots as f64);
    b.counter("refactorizations", effort.refactorizations as f64);
    b.counter("basis_updates", effort.basis_updates as f64);
    b.counter("peak_fill_in_nnz", effort.peak_fill_in_nnz as f64);
}

use dpm_bench::time_median_ns as time_median;

fn bench_pareto_sweep(c: &mut Criterion) {
    let disk_system = disk::system().expect("disk model composes");
    let scaled_system = appendix_b::Config::scaled(12, 7)
        .system()
        .expect("scaled appendix-B composes");
    // The scale the sparse basis factorization unlocks: 25 SP × 2 SR ×
    // 21 SQ = 1050 states, 25 commands — a sweep the dense-LU basis
    // path cannot run inside any reasonable bench budget (see the
    // `sparse_occupation` DNF record).
    let huge_system = appendix_b::Config::scaled(24, 20)
        .system()
        .expect("huge appendix-B composes");
    assert!(huge_system.num_states() >= 1000);

    // Correctness gate before any timing.
    let disk_warm = warm_sweep(|| disk_base(&disk_system), &DISK_BOUNDS);
    let disk_cold = cold_sweep(|| disk_base(&disk_system), &DISK_BOUNDS);
    assert_curves_agree("disk", &disk_warm, &disk_cold);
    let scaled_warm = warm_sweep(|| scaled_base(&scaled_system), &SCALED_BOUNDS);
    let scaled_cold = cold_sweep(|| scaled_base(&scaled_system), &SCALED_BOUNDS);
    assert_curves_agree("appendix_b", &scaled_warm, &scaled_cold);
    let huge_warm = warm_sweep(|| scaled_base(&huge_system), &HUGE_BOUNDS);
    let huge_cold = cold_sweep(|| scaled_base(&huge_system), &HUGE_BOUNDS);
    assert_curves_agree("appendix_b_huge", &huge_warm, &huge_cold);
    assert!(
        huge_warm.feasible().len() >= 2,
        "the ≥1000-state sweep must actually trace a curve"
    );

    let mut group = c.benchmark_group("pareto_sweep");
    group.sample_size(10);
    group.bench_function("warm/disk66", |b| {
        b.iter(|| warm_sweep(|| disk_base(&disk_system), &DISK_BOUNDS));
        effort_counters(b, &disk_warm);
    });
    group.bench_function("cold/disk66", |b| {
        b.iter(|| cold_sweep(|| disk_base(&disk_system), &DISK_BOUNDS));
        effort_counters(b, &disk_cold);
    });
    group.bench_function("warm/appendix_b208", |b| {
        b.iter(|| warm_sweep(|| scaled_base(&scaled_system), &SCALED_BOUNDS));
        effort_counters(b, &scaled_warm);
    });
    group.bench_function("cold/appendix_b208", |b| {
        b.iter(|| cold_sweep(|| scaled_base(&scaled_system), &SCALED_BOUNDS));
        effort_counters(b, &scaled_cold);
    });
    group.bench_function("warm/appendix_b1050", |b| {
        b.iter(|| warm_sweep(|| scaled_base(&huge_system), &HUGE_BOUNDS));
        effort_counters(b, &huge_warm);
    });
    group.bench_function("cold/appendix_b1050", |b| {
        b.iter(|| cold_sweep(|| scaled_base(&huge_system), &HUGE_BOUNDS));
        effort_counters(b, &huge_cold);
    });
    group.finish();

    // Headline record (BENCH_pareto_sweep.json): warm disk sweep timing,
    // with cold-over-warm speedups for all three systems measured inline
    // (median of three sweeps each; the per-path group records above
    // carry the full criterion means too). The acceptance target is
    // ≥ 2× on each.
    let disk_speedup = time_median(|| cold_sweep(|| disk_base(&disk_system), &DISK_BOUNDS))
        / time_median(|| warm_sweep(|| disk_base(&disk_system), &DISK_BOUNDS));
    let scaled_speedup = time_median(|| cold_sweep(|| scaled_base(&scaled_system), &SCALED_BOUNDS))
        / time_median(|| warm_sweep(|| scaled_base(&scaled_system), &SCALED_BOUNDS));
    let huge_speedup = time_median(|| cold_sweep(|| scaled_base(&huge_system), &HUGE_BOUNDS))
        / time_median(|| warm_sweep(|| scaled_base(&huge_system), &HUGE_BOUNDS));
    println!(
        "pareto_sweep: cold/warm speedup — disk66 {disk_speedup:.2}x, \
         appendix_b208 {scaled_speedup:.2}x, appendix_b1050 {huge_speedup:.2}x"
    );
    c.bench_function("pareto_sweep", |b| {
        b.iter(|| warm_sweep(|| disk_base(&disk_system), &DISK_BOUNDS));
        effort_counters(b, &disk_warm);
        b.counter("cold_over_warm_x_disk66", disk_speedup);
        b.counter("cold_over_warm_x_appendix_b208", scaled_speedup);
        b.counter("cold_over_warm_x_appendix_b1050", huge_speedup);
    });
}

criterion_group!(benches, bench_pareto_sweep);
criterion_main!(benches);
