//! Warm-started Pareto sweeps vs per-point cold solves — the acceptance
//! benchmark of the stateful-session redesign.
//!
//! The paper produces every tradeoff curve "by repeatedly solving the LP
//! with different performance constraints" (Figs. 6, 8(b), 9); between
//! sweep points only one rhs changes, so the warm path re-solves by dual
//! simplex from the previous optimal basis. This bench runs the same
//! Fig. 6-style sweep two ways on two systems — the paper's disk drive
//! (66 states) and the scaled Appendix-B instance (208 states × 13
//! commands) — and records both, plus solver-effort counters (`pivots`,
//! `refactorizations`) from the per-point [`SolveReport`]s:
//!
//! * `pareto_sweep/warm/<system>` — one `ParetoExplorer` session sweep;
//! * `pareto_sweep/cold/<system>` — the same bounds through the legacy
//!   per-point path (`sweep_with`, full prepare + solve each point);
//! * `pareto_sweep` — the headline record: warm disk sweep timing with
//!   `cold_over_warm_x` speedup counters for both systems.
//!
//! The warm and cold curves are asserted to agree point-for-point to
//! 1e-6 before anything is timed.

use criterion::{criterion_group, criterion_main, Criterion};
use dpm_core::{OptimizationGoal, ParetoCurve, ParetoExplorer, PolicyOptimizer, SystemModel};
use dpm_systems::{appendix_b, disk};

/// Queue-occupancy bounds of the Fig. 6-style sweep for the disk system:
/// from slack down toward the feasibility floor.
const DISK_BOUNDS: [f64; 8] = [0.5, 0.4, 0.3, 0.2, 0.15, 0.1, 0.07, 0.05];

/// Sweep bounds for the scaled Appendix-B instance (208 states).
const SCALED_BOUNDS: [f64; 6] = [1.2, 1.0, 0.9, 0.8, 0.7, 0.6];

fn disk_base(system: &SystemModel) -> PolicyOptimizer<'_> {
    PolicyOptimizer::new(system)
        .horizon(1_000_000.0)
        .goal(OptimizationGoal::MinimizePower)
        .max_request_loss_rate(0.05)
}

fn scaled_base(system: &SystemModel) -> PolicyOptimizer<'_> {
    PolicyOptimizer::new(system)
        .horizon(100_000.0)
        .max_request_loss_rate(0.05)
}

fn warm_sweep<'a>(base: impl Fn() -> PolicyOptimizer<'a>, bounds: &[f64]) -> ParetoCurve {
    ParetoExplorer::sweep_performance(base(), bounds).expect("sweep runs")
}

fn cold_sweep<'a>(base: impl Fn() -> PolicyOptimizer<'a>, bounds: &[f64]) -> ParetoCurve {
    ParetoExplorer::sweep_with(base(), bounds, |optimizer, bound| {
        optimizer.max_performance_penalty(bound)
    })
    .expect("sweep runs")
}

/// Asserts the two curves agree point-for-point (feasibility pattern and
/// objectives to 1e-6) — the correctness half of the acceptance criteria.
fn assert_curves_agree(label: &str, warm: &ParetoCurve, cold: &ParetoCurve) {
    assert_eq!(warm.points().len(), cold.points().len(), "{label}");
    for (w, c) in warm.points().iter().zip(cold.points()) {
        assert_eq!(
            w.is_feasible(),
            c.is_feasible(),
            "{label} bound {}",
            w.bound
        );
        if let (Some(wo), Some(co)) = (w.objective(), c.objective()) {
            assert!(
                (wo - co).abs() < 1e-6,
                "{label} bound {}: warm {wo} vs cold {co}",
                w.bound
            );
        }
    }
}

/// Median of three timed runs of `f`, in nanoseconds — one sample is too
/// exposed to scheduler noise for a ratio that lands in a tracked
/// artifact.
fn time_median<T>(mut f: impl FnMut() -> T) -> f64 {
    let mut samples: Vec<f64> = (0..3)
        .map(|_| {
            let start = std::time::Instant::now();
            std::hint::black_box(f());
            start.elapsed().as_nanos() as f64
        })
        .collect();
    samples.sort_by(f64::total_cmp);
    samples[1]
}

fn bench_pareto_sweep(c: &mut Criterion) {
    let disk_system = disk::system().expect("disk model composes");
    let scaled_system = appendix_b::Config::scaled(12, 7)
        .system()
        .expect("scaled appendix-B composes");

    // Correctness gate before any timing.
    let disk_warm = warm_sweep(|| disk_base(&disk_system), &DISK_BOUNDS);
    let disk_cold = cold_sweep(|| disk_base(&disk_system), &DISK_BOUNDS);
    assert_curves_agree("disk", &disk_warm, &disk_cold);
    let scaled_warm = warm_sweep(|| scaled_base(&scaled_system), &SCALED_BOUNDS);
    let scaled_cold = cold_sweep(|| scaled_base(&scaled_system), &SCALED_BOUNDS);
    assert_curves_agree("appendix_b", &scaled_warm, &scaled_cold);

    let mut group = c.benchmark_group("pareto_sweep");
    group.sample_size(10);
    group.bench_function("warm/disk66", |b| {
        b.iter(|| warm_sweep(|| disk_base(&disk_system), &DISK_BOUNDS));
        let (warm, cold, pivots, refactorizations) = disk_warm.solver_effort();
        b.counter("warm_points", warm as f64);
        b.counter("cold_points", cold as f64);
        b.counter("pivots", pivots as f64);
        b.counter("refactorizations", refactorizations as f64);
    });
    group.bench_function("cold/disk66", |b| {
        b.iter(|| cold_sweep(|| disk_base(&disk_system), &DISK_BOUNDS));
        let (_, cold, pivots, refactorizations) = disk_cold.solver_effort();
        b.counter("cold_points", cold as f64);
        b.counter("pivots", pivots as f64);
        b.counter("refactorizations", refactorizations as f64);
    });
    group.bench_function("warm/appendix_b208", |b| {
        b.iter(|| warm_sweep(|| scaled_base(&scaled_system), &SCALED_BOUNDS));
        let (warm, cold, pivots, refactorizations) = scaled_warm.solver_effort();
        b.counter("warm_points", warm as f64);
        b.counter("cold_points", cold as f64);
        b.counter("pivots", pivots as f64);
        b.counter("refactorizations", refactorizations as f64);
    });
    group.bench_function("cold/appendix_b208", |b| {
        b.iter(|| cold_sweep(|| scaled_base(&scaled_system), &SCALED_BOUNDS));
        let (_, cold, pivots, refactorizations) = scaled_cold.solver_effort();
        b.counter("cold_points", cold as f64);
        b.counter("pivots", pivots as f64);
        b.counter("refactorizations", refactorizations as f64);
    });
    group.finish();

    // Headline record (BENCH_pareto_sweep.json): warm disk sweep timing,
    // with cold-over-warm speedups for both systems measured inline
    // (median of three sweeps each; the per-path group records above
    // carry the full criterion means too). The acceptance target is
    // ≥ 2× on each.
    let disk_speedup = time_median(|| cold_sweep(|| disk_base(&disk_system), &DISK_BOUNDS))
        / time_median(|| warm_sweep(|| disk_base(&disk_system), &DISK_BOUNDS));
    let scaled_speedup = time_median(|| cold_sweep(|| scaled_base(&scaled_system), &SCALED_BOUNDS))
        / time_median(|| warm_sweep(|| scaled_base(&scaled_system), &SCALED_BOUNDS));
    println!(
        "pareto_sweep: cold/warm speedup — disk66 {disk_speedup:.2}x, \
         appendix_b208 {scaled_speedup:.2}x"
    );
    c.bench_function("pareto_sweep", |b| {
        b.iter(|| warm_sweep(|| disk_base(&disk_system), &DISK_BOUNDS));
        let (warm, cold, pivots, refactorizations) = disk_warm.solver_effort();
        b.counter("warm_points", warm as f64);
        b.counter("cold_points", cold as f64);
        b.counter("pivots", pivots as f64);
        b.counter("refactorizations", refactorizations as f64);
        b.counter("cold_over_warm_x_disk66", disk_speedup);
        b.counter("cold_over_warm_x_appendix_b208", scaled_speedup);
    });
}

criterion_group!(benches, bench_pareto_sweep);
criterion_main!(benches);
