//! Criterion benchmarks for the LP engines — the paper's runtime claim is
//! that the whole disk Pareto curve "took less than 1 min on a SUN
//! UltraSPARC workstation" (Section VI-A); these benches measure single
//! solves of the same LPs, plus an ablation of simplex vs interior point
//! (the PCx-style engine) across problem sizes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dpm_core::{CostMetric, OptimizationGoal, PolicyOptimizer, SolverKind};
use dpm_lp::{
    BasisUpdate, ConstraintOp, InteriorPoint, LinearProgram, LpSolver, PricingRule, RevisedSimplex,
    Simplex,
};
use dpm_mdp::{DiscountedMdp, OccupationLp};
use dpm_systems::{appendix_b, disk, toy};
use dpm_trace::generators::BurstyTraceGenerator;
use dpm_trace::SrExtractor;

/// A mid-size random-but-feasible LP, as a solver microbenchmark.
fn random_lp(n: usize, m: usize) -> LinearProgram {
    let mut seed = 0xA5A5_5A5A_1234_5678u64;
    let mut next = move || {
        seed ^= seed << 13;
        seed ^= seed >> 7;
        seed ^= seed << 17;
        (seed % 2000) as f64 / 1000.0 - 1.0
    };
    let c: Vec<f64> = (0..n).map(|_| next()).collect();
    let mut lp = LinearProgram::minimize(&c);
    for _ in 0..m {
        let row: Vec<f64> = (0..n).map(|_| next()).collect();
        let rhs = row.iter().sum::<f64>() + 1.0;
        lp.add_constraint(&row, ConstraintOp::Le, rhs)
            .expect("valid row");
    }
    for j in 0..n {
        let mut row = vec![0.0; n];
        row[j] = 1.0;
        lp.add_constraint(&row, ConstraintOp::Le, 10.0)
            .expect("valid bound");
    }
    lp
}

fn bench_lp_engines(c: &mut Criterion) {
    let mut group = c.benchmark_group("lp_engines");
    for &(n, m) in &[(20usize, 10usize), (60, 30), (120, 60)] {
        let lp = random_lp(n, m);
        group.bench_with_input(BenchmarkId::new("simplex", n), &lp, |b, lp| {
            b.iter(|| Simplex::new().solve(lp).expect("solvable"))
        });
        group.bench_with_input(BenchmarkId::new("interior_point", n), &lp, |b, lp| {
            b.iter(|| InteriorPoint::new().solve(lp).expect("solvable"))
        });
    }
    group.finish();
}

fn bench_disk_policy_optimization(c: &mut Criterion) {
    // The paper's 66-state, 5-command disk LP (330 state-action vars).
    let system = disk::system().expect("disk model composes");
    let mut group = c.benchmark_group("disk_policy_optimization");
    group.sample_size(10);
    for kind in [
        SolverKind::RevisedSimplex,
        SolverKind::Simplex,
        SolverKind::InteriorPoint,
    ] {
        group.bench_function(format!("{kind:?}"), |b| {
            b.iter(|| {
                PolicyOptimizer::new(&system)
                    .horizon(1_000_000.0)
                    .goal(OptimizationGoal::MinimizePower)
                    .max_performance_penalty(0.5)
                    .max_request_loss_rate(0.05)
                    .solver(kind)
                    .solve()
                    .expect("feasible")
            })
        });
    }
    group.finish();
}

fn bench_toy_policy_optimization(c: &mut Criterion) {
    let system = toy::example_system().expect("toy model composes");
    c.bench_function("toy_example_a2_lp4", |b| {
        b.iter(|| {
            PolicyOptimizer::new(&system)
                .discount(0.99999)
                .max_performance_penalty(0.5)
                .max_request_loss_rate(0.2)
                .solve()
                .expect("feasible")
        })
    });
}

fn bench_state_space_scaling(c: &mut Criterion) {
    // Fig. 13(b)'s scaling axis: SR memory k doubles the state count each
    // step; this is the polynomial-growth claim made concrete.
    let trace = BurstyTraceGenerator::new(0.02, 0.9)
        .seed(1)
        .generate(100_000);
    let mut group = c.benchmark_group("state_space_scaling");
    group.sample_size(10);
    for k in [1u32, 2, 3, 4] {
        let sr = SrExtractor::new(k)
            .extract(&trace)
            .expect("trace long enough");
        let system = appendix_b::Config::baseline()
            .system_with_requester(sr)
            .expect("composes");
        group.bench_with_input(
            BenchmarkId::new("optimize", system.num_states()),
            &system,
            |b, system| {
                b.iter(|| {
                    PolicyOptimizer::new(system)
                        .horizon(100_000.0)
                        .max_performance_penalty(0.5)
                        .max_request_loss_rate(0.05)
                        .solve()
                        .expect("feasible")
                })
            },
        );
    }
    group.finish();
}

/// Builds the LP4 occupation program (minimize power, bound queue and
/// loss) for a scaled Appendix-B system.
fn scaled_occupation_lp(sleeps: usize, queue_capacity: usize) -> (usize, LinearProgram) {
    let system = appendix_b::Config::scaled(sleeps, queue_capacity)
        .system()
        .expect("scaled appendix-B composes");
    let horizon = 100_000.0;
    let discount = 1.0 - 1.0 / horizon;
    let power = CostMetric::Power.matrix(&system);
    let queue = CostMetric::QueueOccupancy.matrix(&system);
    let loss = CostMetric::RequestLossIndicator.matrix(&system);
    let mdp = DiscountedMdp::new(system.chain().clone(), power, discount).expect("mdp validates");
    let initial = system
        .point_distribution(appendix_b::initial_state())
        .expect("initial state exists");
    let occupation = OccupationLp::new(&mdp, &initial).expect("valid distribution");
    let lp = occupation
        .build(&[(&queue, 0.8 * horizon), (&loss, 0.05 * horizon)])
        .expect("LP builds");
    (system.num_states(), lp)
}

use dpm_bench::time_median_ns as time_median;

/// Full-size instances (the 4018-state `scaled(48, 40)` class) only run
/// when explicitly requested: CI's per-PR smoke keeps to the 208- and
/// 1050-state sizes, the release-gated job exports this variable.
fn full_sizes() -> bool {
    std::env::var_os("DPM_BENCH_FULL").is_some()
}

/// Records one revised-simplex solve of `lp` under `update`, attaching
/// the factorization and pricing counters from a session solve to the
/// JSON record.
fn bench_revised(
    group: &mut criterion::BenchmarkGroup<'_>,
    name: &str,
    states: usize,
    lp: &LinearProgram,
    update: BasisUpdate,
) {
    group.bench_with_input(BenchmarkId::new(name, states), lp, |b, lp| {
        b.iter(|| {
            RevisedSimplex::new()
                .basis_update(update)
                .solve(lp)
                .expect("revised simplex solves the instance")
        });
        let mut session = RevisedSimplex::new()
            .basis_update(update)
            .start(lp)
            .expect("valid program");
        let (_, report) = session.solve().expect("feasible instance");
        b.counter("pivots", report.iterations as f64);
        b.counter("refactorizations", report.refactorizations as f64);
        b.counter("basis_updates", report.basis_updates as f64);
        b.counter("fill_in_nnz", report.fill_in_nnz as f64);
        b.counter("pricing_candidates", report.pricing_candidates as f64);
        b.counter("devex_resets", report.devex_resets as f64);
    });
}

/// Records one cold solve of `lp` under an explicit pricing rule with the
/// pivot/pricing-effort counters attached.
fn bench_priced(
    group: &mut criterion::BenchmarkGroup<'_>,
    rule: PricingRule,
    states: usize,
    lp: &LinearProgram,
) {
    group.bench_with_input(BenchmarkId::new(format!("{rule}"), states), lp, |b, lp| {
        b.iter(|| {
            RevisedSimplex::new()
                .with_pricing(rule)
                .solve(lp)
                .expect("instance solves under every pricing rule")
        });
        let mut session = RevisedSimplex::new()
            .with_pricing(rule)
            .start(lp)
            .expect("valid program");
        let (_, report) = session.solve().expect("feasible instance");
        b.counter("pivots", report.iterations as f64);
        b.counter("pricing_candidates", report.pricing_candidates as f64);
        b.counter("devex_resets", report.devex_resets as f64);
        b.counter("refactorizations", report.refactorizations as f64);
    });
}

fn bench_pricing_rules(c: &mut Criterion) {
    // The tentpole claim of the devex/partial-pricing work: Dantzig's
    // full-scan pricing (one sparse dot per nonbasic column per pivot)
    // dominates cold-solve time on the occupation LPs, so devex over a
    // bounded candidate list wins by a growing factor as the state space
    // scales. Each record carries pivot and pricing-effort counters, so
    // `scripts/bench_compare.py` can show scan-work alongside wall time.
    let mut group = c.benchmark_group("pricing_rules");
    group.sample_size(10);

    for &(sleeps, queue) in &[(12usize, 7usize), (24, 20)] {
        let (states, lp) = scaled_occupation_lp(sleeps, queue);
        for rule in [PricingRule::Devex, PricingRule::Dantzig] {
            bench_priced(&mut group, rule, states, &lp);
        }
    }

    // The ≥2× acceptance ratio at the 1050-state instance, recorded as a
    // counter so PR-over-PR tables track it.
    let (states, lp) = scaled_occupation_lp(24, 20);
    let devex_over_dantzig = time_median(|| {
        RevisedSimplex::new()
            .with_pricing(PricingRule::Dantzig)
            .solve(&lp)
            .expect("dantzig solves")
    }) / time_median(|| {
        RevisedSimplex::new()
            .with_pricing(PricingRule::Devex)
            .solve(&lp)
            .expect("devex solves")
    });
    println!(
        "pricing_rules: devex speedup over dantzig at {states} states: {devex_over_dantzig:.2}x"
    );
    group.bench_with_input(BenchmarkId::new("devex-speedup", states), &lp, |b, lp| {
        b.iter(|| {
            RevisedSimplex::new()
                .with_pricing(PricingRule::Devex)
                .solve(lp)
                .expect("devex solves")
        });
        b.counter("devex_over_dantzig_x", devex_over_dantzig);
    });

    // The scaled(48, 40) class: 49 SP × 2 SR × 41 SQ = 4018 states and
    // 196 882 state–action variables. Until devex pricing landed this
    // size did not finish inside any reasonable bench budget (Dantzig
    // alone scans ~10⁹ columns); it now cold-solves in seconds, but only
    // the release-gated full run times it.
    if full_sizes() {
        let (states, lp) = scaled_occupation_lp(48, 40);
        assert!(states >= 4000, "full-size instance shrank to {states}");
        for rule in [PricingRule::Devex, PricingRule::Dantzig] {
            bench_priced(&mut group, rule, states, &lp);
        }
    }
    group.finish();
}

fn bench_sparse_occupation(c: &mut Criterion) {
    let mut group = c.benchmark_group("sparse_occupation");
    group.sample_size(10);

    // Crossover point: at 30 states (4 sleep states, queue 2) the dense
    // tableau is still competitive — both engines solve in sub-ms.
    let (states, lp) = scaled_occupation_lp(4, 2);
    let engines: [Box<dyn LpSolver>; 2] =
        [Box::new(RevisedSimplex::new()), Box::new(Simplex::new())];
    for engine in &engines {
        group.bench_with_input(BenchmarkId::new(engine.name(), states), &lp, |b, lp| {
            b.iter(|| engine.solve(lp).expect("feasible instance"))
        });
    }

    // The 208-state acceptance instance of the sparse LP pipeline:
    // 13 SP × 2 SR × 8 SQ states, 13 commands — 2704 state–action
    // variables with >99% sparse balance rows. Three records: the sparse
    // Markowitz-LU engine with Forrest–Tomlin updates (the default,
    // `revised-simplex`), the same pivots through the PR-3 dense-LU + eta
    // basis path (`revised-simplex-dense-lu`), and the dense tableau
    // (`simplex`), which used to DNF here with >3×10⁵ degenerate pivots
    // and now solves in a few hundred thanks to steepest-edge pricing and
    // the largest-pivot ratio-test tie-break.
    let (states, lp) = scaled_occupation_lp(12, 7);
    bench_revised(
        &mut group,
        "revised-simplex",
        states,
        &lp,
        BasisUpdate::ForrestTomlin,
    );
    bench_revised(
        &mut group,
        "revised-simplex-dense-lu",
        states,
        &lp,
        BasisUpdate::DenseEta,
    );
    let sparse_over_dense = time_median(|| {
        RevisedSimplex::new()
            .basis_update(BasisUpdate::DenseEta)
            .solve(&lp)
            .expect("dense-LU path still solves 208 states")
    }) / time_median(|| {
        RevisedSimplex::new()
            .solve(&lp)
            .expect("sparse path solves")
    });
    println!(
        "sparse_occupation: sparse-LU over dense-LU at {states} states: {sparse_over_dense:.2}x"
    );
    group.bench_with_input(
        BenchmarkId::new("sparse-lu-speedup", states),
        &lp,
        |b, lp| {
            b.iter(|| RevisedSimplex::new().solve(lp).expect("sparse path solves"));
            b.counter("sparse_over_dense_lu_x", sparse_over_dense);
        },
    );
    group.bench_with_input(BenchmarkId::new("simplex", states), &lp, |b, lp| {
        b.iter(|| {
            let s = Simplex::new()
                .solve(lp)
                .expect("dense tableau now solves 208 states");
            assert!(
                lp.max_violation(s.x()) < 1e-7,
                "dense solution must be feasible"
            );
        })
    });

    // The ≥1000-state scale-up the sparse factorization unlocks:
    // scaled(24, 20) composes 25 SP × 2 SR × 21 SQ = 1050 states and 25
    // commands — 26 250 state–action variables over a ~1050-row basis.
    // The sparse engine solves it outright; the dense-LU basis path
    // cannot finish inside the bench budget (each refactorization alone
    // is O(m³) ≈ 10⁹ flops), so its record is the time burned by an
    // explicit 200-pivot budget — a small fraction of the pivots the
    // solve needs — labeled as such.
    let (states, lp) = scaled_occupation_lp(24, 20);
    assert!(
        states >= 1000,
        "scale acceptance instance shrank to {states} states"
    );
    bench_revised(
        &mut group,
        "revised-simplex",
        states,
        &lp,
        BasisUpdate::ForrestTomlin,
    );
    group.bench_with_input(
        BenchmarkId::new("revised-dense-lu-dnf-200-pivot-budget", states),
        &lp,
        |b, lp| {
            b.iter(|| {
                // IterationLimit is the expected outcome being measured.
                let _ = RevisedSimplex::new()
                    .basis_update(BasisUpdate::DenseEta)
                    .max_iterations(200)
                    .solve(lp);
            })
        },
    );

    // The scaled(48, 40)-class instance (4018 states, 196 882 variables)
    // that devex pricing unlocked; full runs only, see `full_sizes`.
    if full_sizes() {
        let (states, lp) = scaled_occupation_lp(48, 40);
        bench_revised(
            &mut group,
            "revised-simplex",
            states,
            &lp,
            BasisUpdate::ForrestTomlin,
        );
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_lp_engines,
    bench_disk_policy_optimization,
    bench_toy_policy_optimization,
    bench_state_space_scaling,
    bench_pricing_rules,
    bench_sparse_occupation
);
criterion_main!(benches);
