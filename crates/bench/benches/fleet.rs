//! Fleet-scale adaptation benchmark: a heterogeneous fleet (disk, CPU
//! and web-server classes) of 1000+ devices split across two workload
//! regimes, driven through `dpm_runtime::FleetController`.
//!
//! Records (all under `target/bench/`):
//!
//! * `fleet/workers/{1,2,4,8}` — wall time of a full multi-epoch fleet
//!   run per worker-pool size, with device-epochs-per-second throughput
//!   counters (on a single-core host the sweep is flat by construction;
//!   the records measure whatever parallelism the host offers);
//! * `fleet/clustered_vs_per_device` — the solve-per-cluster payoff:
//!   pivots and solves of one adaptation epoch under regime clustering
//!   against the same epoch with clustering disabled (one solve per
//!   device);
//! * `fleet` — the headline record: fleet shape, cluster/solve/pivot
//!   accounting and the worker-scaling ratio.
//!
//! Before anything is timed, the run is gated on the fleet's
//! correctness criteria: reports bit-identical across worker counts,
//! solver effort under clustering at most 10% of the per-device
//! baseline, no cold reloads (every cluster session reuses its class's
//! symbolic analysis), and the event gate holding stationary epochs.

use criterion::{criterion_group, criterion_main, Criterion};
use dpm_bench::time_median_ns;
use dpm_core::{ServiceRequester, SystemModel};
use dpm_runtime::{AdaptiveConfig, FleetConfig, FleetController, FleetReport};
use dpm_systems::{cpu, disk, web_server};
use dpm_trace::WindowKind;

/// Devices per class; three classes, so the fleet holds 1026 devices —
/// past the 1024-device mark the scaling story is told at.
const DEVICES_PER_CLASS: usize = 342;
/// Arrival slices per adaptation epoch.
const EPOCH_SLICES: usize = 600;
/// Adaptation epochs per timed run.
const EPOCHS: usize = 3;
/// Worker-pool sizes swept.
const WORKER_SWEEP: [usize; 4] = [1, 2, 4, 8];

fn fleet_config(workers: usize, cluster_divergence: f64) -> FleetConfig {
    FleetConfig::new()
        .adaptive(
            AdaptiveConfig::new()
                .memory(1)
                .smoothing(0.5)
                .horizon(2_000.0)
                .window(WindowKind::Sliding(2 * EPOCH_SLICES)),
        )
        .workers(workers)
        .cluster_divergence(cluster_divergence)
        .resolve_divergence(0.02)
}

/// The three device classes, each a 2-state SR on a different provider.
fn class_systems() -> Vec<SystemModel> {
    let base = || ServiceRequester::two_state(0.1, 0.7).expect("valid base workload");
    vec![
        disk::system_with_workload(base()).expect("disk system"),
        cpu::system_with_workload(base()).expect("cpu system"),
        web_server::system_with_workload(base()).expect("web server system"),
    ]
}

fn build_fleet(workers: usize, cluster_divergence: f64) -> FleetController {
    let mut fleet = FleetController::new(fleet_config(workers, cluster_divergence));
    for system in class_systems() {
        fleet
            .add_class(&system, DEVICES_PER_CLASS)
            .expect("class is feasible");
    }
    fleet
}

/// Deterministic per-device arrival stream for one epoch. Even devices
/// run a sparse regime (1-in-16 slices busy), odd devices a dense one
/// (5-in-8); the device index phases the pattern without changing its
/// statistics, so same-regime devices fit statistically identical
/// models — the clustering premise.
fn epoch_arrivals(devices: usize, epoch: usize) -> Vec<Vec<u32>> {
    (0..devices)
        .map(|d| {
            let (density, period) = if d % 2 == 0 { (1, 16) } else { (5, 8) };
            (0..EPOCH_SLICES)
                .map(|i| u32::from((d + epoch * EPOCH_SLICES + i) % period < density))
                .collect()
        })
        .collect()
}

fn run_epochs(fleet: &mut FleetController, traces: &[Vec<Vec<u32>>]) -> Vec<FleetReport> {
    traces
        .iter()
        .map(|arrivals| fleet.run_epoch(arrivals).expect("epoch runs"))
        .collect()
}

/// The solve-per-device baseline: fit the same fleet, then give every
/// device its own warm fork of its class session and solve its own
/// fitted model — what the epoch costs without regime clustering.
/// Returns (solves, pivots).
fn per_device_baseline(traces: &[Vec<Vec<u32>>]) -> (usize, usize) {
    let mut fleet = build_fleet(1, 0.08);
    run_epochs(&mut fleet, traces);
    let systems = class_systems();
    let mut solves = 0usize;
    let mut pivots = 0usize;
    for (class, system) in systems.iter().enumerate() {
        let mut base = dpm_core::PolicyOptimizer::new(system)
            .horizon(2_000.0)
            .prepare()
            .expect("prepares");
        base.solve().expect("base model is feasible");
        for d in class * DEVICES_PER_CLASS..(class + 1) * DEVICES_PER_CLASS {
            let Some(fit) = fleet.device_fit(d) else {
                continue;
            };
            let device_system =
                SystemModel::compose(system.provider().clone(), fit.clone(), *system.queue())
                    .expect("composes");
            let mut session = base.fork().expect("forks");
            session
                .update_model(device_system.chain())
                .expect("reloads");
            let solution = session.solve().expect("feasible");
            solves += 1;
            pivots += solution.solve_report().iterations;
        }
    }
    (solves, pivots)
}

fn bench_fleet(c: &mut Criterion) {
    let devices = 3 * DEVICES_PER_CLASS;
    let traces: Vec<Vec<Vec<u32>>> = (0..EPOCHS).map(|e| epoch_arrivals(devices, e)).collect();

    // Correctness gate 1: bit-identical results for every worker count.
    let reference = run_epochs(&mut build_fleet(1, 0.08), &traces);
    for &workers in &WORKER_SWEEP[1..] {
        let reports = run_epochs(&mut build_fleet(workers, 0.08), &traces);
        assert_eq!(
            reference, reports,
            "fleet reports diverge at {workers} workers"
        );
    }

    // Correctness gate 2: regime clustering collapses the solve count —
    // pivots at most 10% of the solve-per-device baseline — and every
    // cluster solve stays warm on the class's shared symbolic analysis.
    let clustered = &reference[0];
    assert!(
        clustered.clusters <= 12,
        "{} clusters for 6 class-regimes",
        clustered.clusters
    );
    assert_eq!(clustered.cold_reloads, 0, "cold reload crept in");
    assert!(
        clustered.symbolic_reuses >= clustered.solves,
        "cluster solves re-analyzed the basis"
    );
    let (baseline_solves, baseline_pivots) = per_device_baseline(&traces[..1]);
    assert!(
        baseline_solves >= devices * 9 / 10,
        "per-device baseline solved only {baseline_solves} of {devices}"
    );
    assert!(
        10 * clustered.pivots <= baseline_pivots,
        "clustered pivots {} are not \u{2264} 10% of per-device pivots {baseline_pivots}",
        clustered.pivots
    );

    // Correctness gate 3: the event gate holds stationary epochs.
    let later_solves: usize = reference[1..].iter().map(|r| r.solves).sum();
    assert!(
        later_solves <= reference[0].solves,
        "stationary epochs re-solved {later_solves} times"
    );

    // Timed sweep: full fleet run (construction + EPOCHS epochs) per
    // worker-pool size.
    let mut group = c.benchmark_group("fleet/workers");
    group.sample_size(10);
    let mut throughput = Vec::new();
    for &workers in &WORKER_SWEEP {
        let ns = time_median_ns(|| run_epochs(&mut build_fleet(workers, 0.08), &traces));
        let dev_epochs_per_s = (devices * EPOCHS) as f64 / (ns / 1e9);
        throughput.push((workers, dev_epochs_per_s));
        group.bench_function(workers.to_string(), |b| {
            b.iter(|| run_epochs(&mut build_fleet(workers, 0.08), &traces));
            b.counter("devices", devices as f64);
            b.counter("epochs", EPOCHS as f64);
            b.counter("device_epochs_per_s", dev_epochs_per_s);
        });
    }
    group.finish();

    let w1 = throughput[0].1;
    let w8 = throughput.last().expect("sweep is non-empty").1;
    println!(
        "fleet: {devices} devices / 3 classes, {} clusters, {} solves epoch 0 \
         (baseline {}), pivots {} vs {} per-device; throughput {:.0} -> {:.0} \
         device-epochs/s (1 -> 8 workers, {:.2}x on {} host cores)",
        clustered.clusters,
        clustered.solves,
        baseline_solves,
        clustered.pivots,
        baseline_pivots,
        w1,
        w8,
        w8 / w1,
        std::thread::available_parallelism().map_or(1, usize::from),
    );

    c.bench_function("fleet/clustered_vs_per_device", |b| {
        b.iter(|| run_epochs(&mut build_fleet(1, 0.08), &traces[..1]));
        b.counter("clusters", clustered.clusters as f64);
        b.counter("solves_clustered", clustered.solves as f64);
        b.counter("solves_per_device", baseline_solves as f64);
        b.counter("pivots_clustered", clustered.pivots as f64);
        b.counter("pivots_per_device", baseline_pivots as f64);
        b.counter(
            "pivot_pct_of_baseline",
            100.0 * clustered.pivots as f64 / (baseline_pivots as f64).max(1.0),
        );
    });

    c.bench_function("fleet", |b| {
        b.iter(|| run_epochs(&mut build_fleet(2, 0.08), &traces));
        b.counter("devices", devices as f64);
        b.counter("classes", 3.0);
        b.counter("epochs", EPOCHS as f64);
        b.counter("clusters", clustered.clusters as f64);
        b.counter(
            "solves_total",
            reference.iter().map(|r| r.solves).sum::<usize>() as f64,
        );
        b.counter(
            "pivots_total",
            reference.iter().map(|r| r.pivots).sum::<usize>() as f64,
        );
        b.counter(
            "symbolic_reuses",
            reference.iter().map(|r| r.symbolic_reuses).sum::<usize>() as f64,
        );
        b.counter(
            "evictions",
            reference.iter().map(|r| r.evictions).sum::<usize>() as f64,
        );
        b.counter("throughput_w1_dev_epochs_per_s", w1);
        b.counter("throughput_w8_dev_epochs_per_s", w8);
        b.counter("speedup_8w_over_1w_x", w8 / w1);
        b.counter(
            "host_cores",
            std::thread::available_parallelism().map_or(1, usize::from) as f64,
        );
    });
}

criterion_group!(benches, bench_fleet);
criterion_main!(benches);
