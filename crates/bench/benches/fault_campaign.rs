//! Fault-campaign benchmark: the scripted [`hostile`] scenario driven
//! end to end — corrupted telemetry, armed solver faults, quarantine,
//! readmission — with the recovery properties asserted before anything
//! is timed.
//!
//! Records (all under `target/bench/`):
//!
//! * `fault_campaign/hostile` — wall time of the full campaign
//!   (warmup, fault window, recovery) with the containment counters:
//!   quarantines, readmissions, recovery epochs, and the
//!   escalation-ladder rung histogram;
//! * `fault_campaign/clean` — wall time of the identical schedule with
//!   no corruption and no faults, the control run;
//! * `fault_campaign` — the headline: campaign shape, recovery time,
//!   and the hostile/clean epoch-cost ratio.
//!
//! Before anything is timed, the run is gated on the campaign's
//! correctness criteria: no epoch errors out, every victim is
//! quarantined and readmitted, the ladder engages (holds with backoff)
//! without a cold-reload storm, the fleet ends 100% healthy, and every
//! device's final policy is **bit-identical** to the never-faulted
//! control run's.

use criterion::{criterion_group, criterion_main, Criterion};
use dpm_bench::time_median_ns;
use dpm_lp::fault::{self, FaultGuard, FaultPlan};
use dpm_runtime::{AdaptiveConfig, DeviceHealth, DeviceId, FleetConfig, FleetReport, FleetService};
use dpm_systems::drifting;
use dpm_systems::hostile::{self, HostileSchedule};
use dpm_trace::WindowKind;

fn config() -> FleetConfig {
    FleetConfig::new()
        .adaptive(
            AdaptiveConfig::new()
                .memory(hostile::MEMORY)
                .smoothing(hostile::SMOOTHING)
                .horizon(2_000.0)
                // The constraint bounds make warm repairs pivot, which
                // is what gives the windowed budget faults events to
                // exhaust.
                .max_performance_penalty(drifting::QUEUE_BOUND)
                .max_request_loss_rate(drifting::LOSS_BOUND)
                .window(WindowKind::Sliding(hostile::EPOCH_SLICES)),
        )
        .cluster_divergence(0.1)
        .resolve_divergence(0.05)
}

fn fleet(schedule: &HostileSchedule) -> FleetService {
    let mut service = FleetService::new(config());
    let class = service
        .register_class(&hostile::system().expect("system composes"))
        .expect("class registers");
    for _ in 0..schedule.devices() {
        service.add_device(class).expect("device adds");
    }
    service
}

fn run_epoch(
    service: &mut FleetService,
    schedule: &HostileSchedule,
    epoch: usize,
    hostile_run: bool,
) -> FleetReport {
    let ids: Vec<DeviceId> = service.device_ids().to_vec();
    let telemetry: Vec<(DeviceId, Vec<f64>)> = schedule
        .epoch_telemetry(epoch, hostile_run)
        .into_iter()
        .zip(ids)
        .map(|(stream, id)| (id, stream))
        .collect();
    service
        .run_epoch_telemetry(&telemetry)
        .expect("campaign epoch runs")
}

/// Drives one full campaign. With `hostile_run`, victim telemetry is
/// corrupted and the scenario's deterministic budget-fault plan is
/// armed for exactly the fault window; without it the same schedule
/// plays back clean.
fn run_campaign(schedule: &HostileSchedule, hostile_run: bool) -> (FleetService, Vec<FleetReport>) {
    let mut service = fleet(schedule);
    let mut reports = Vec::with_capacity(schedule.total_epochs());
    let window = schedule.fault_window();
    let mut guard: Option<FaultGuard> = None;
    for epoch in 0..schedule.total_epochs() {
        if hostile_run && epoch == window.start {
            guard = Some(fault::install(
                FaultPlan::new(hostile::FAULT_SEED).exhaust_budgets(hostile::EXHAUST_RATE),
            ));
        }
        if epoch == window.end {
            guard = None;
        }
        reports.push(run_epoch(&mut service, schedule, epoch, hostile_run));
    }
    drop(guard);
    (service, reports)
}

/// Epochs from the window closing until the fleet first reports every
/// device healthy again.
fn recovery_epochs(schedule: &HostileSchedule, reports: &[FleetReport]) -> usize {
    let end = schedule.fault_window().end;
    reports[end..]
        .iter()
        .position(|r| r.healthy == r.devices)
        .map_or(usize::MAX, |i| i + 1)
}

fn bench_fault_campaign(c: &mut Criterion) {
    let schedule = HostileSchedule::new();
    let devices = schedule.devices();
    let victims = hostile::DEVICES_PER_RACK;

    let (clean_service, clean_reports) = run_campaign(&schedule, false);
    let (hostile_service, hostile_reports) = run_campaign(&schedule, true);
    let sum = |reports: &[FleetReport], f: fn(&FleetReport) -> usize| -> usize {
        reports.iter().map(f).sum()
    };

    // Correctness gate 1: the control run never sees containment.
    assert_eq!(
        sum(&clean_reports, |r| r.quarantines),
        0,
        "clean quarantined"
    );
    assert_eq!(sum(&clean_reports, |r| r.holds), 0, "clean run held");
    assert_eq!(sum(&clean_reports, |r| r.errors), 0, "clean run errored");

    // Correctness gate 2: the campaign quarantines and readmits every
    // victim, and the ladder engages without a cold-reload storm.
    assert_eq!(sum(&hostile_reports, |r| r.quarantines), victims);
    assert_eq!(sum(&hostile_reports, |r| r.readmissions), victims);
    let rung_retry = sum(&hostile_reports, |r| r.warm_retries);
    let rung_refactor = sum(&hostile_reports, |r| r.forced_refactors);
    let rung_cold = sum(&hostile_reports, |r| r.cold_rebuilds);
    let rung_hold = sum(&hostile_reports, |r| r.holds);
    assert!(rung_hold >= 1, "the ladder never reached a held epoch");
    assert!(
        rung_cold <= 2 * schedule.total_epochs(),
        "cold-rebuild storm: {rung_cold} cold rebuilds"
    );

    // Correctness gate 3: the fleet ends 100% healthy, promptly.
    let last = hostile_reports.last().expect("campaign ran");
    assert_eq!(last.healthy, devices, "fleet did not end healthy");
    assert_eq!(last.quarantined, 0, "devices still quarantined");
    assert_eq!(last.degraded, 0, "devices still degraded");
    let recovery = recovery_epochs(&schedule, &hostile_reports);
    assert!(
        recovery <= hostile::RECOVERY_EPOCHS,
        "recovery took {recovery} epochs"
    );
    for id in hostile_service.device_ids() {
        assert_eq!(hostile_service.health_of(*id), Some(DeviceHealth::Healthy));
    }

    // Correctness gate 4: the campaign's final policies are
    // bit-identical to the never-faulted control run's.
    for id in clean_service.device_ids() {
        let clean_policy = clean_service.policy(*id).expect("clean policy");
        let hostile_policy = hostile_service.policy(*id).expect("hostile policy");
        let identical = clean_policy
            .decisions()
            .iter()
            .zip(hostile_policy.decisions())
            .all(|(a, b)| {
                a.len() == b.len() && a.iter().zip(b).all(|(x, y)| x.to_bits() == y.to_bits())
            });
        assert!(identical, "device {id} diverged from the control run");
    }

    // Timed: the full hostile campaign and its clean control.
    let mut group = c.benchmark_group("fault_campaign");
    group.sample_size(10);
    let hostile_ns = time_median_ns(|| run_campaign(&schedule, true));
    group.bench_function("hostile", |b| {
        b.iter(|| run_campaign(&schedule, true));
        b.counter("recovery_epochs", recovery as f64);
        b.counter("quarantines", victims as f64);
        b.counter("readmissions", victims as f64);
        b.counter("rung_warm_retries", rung_retry as f64);
        b.counter("rung_forced_refactors", rung_refactor as f64);
        b.counter("rung_cold_rebuilds", rung_cold as f64);
        b.counter("rung_holds", rung_hold as f64);
        b.counter("strikes", sum(&hostile_reports, |r| r.strikes) as f64);
    });
    let clean_ns = time_median_ns(|| run_campaign(&schedule, false));
    group.bench_function("clean", |b| {
        b.iter(|| run_campaign(&schedule, false));
        b.counter("solves", sum(&clean_reports, |r| r.solves) as f64);
        b.counter("pivots", sum(&clean_reports, |r| r.pivots) as f64);
    });
    group.finish();

    println!(
        "fault_campaign: {devices} devices, {} epochs ({} faulted), \
         {victims} quarantined + readmitted, recovery in {recovery} epochs, \
         ladder retry/refactor/cold/hold = {rung_retry}/{rung_refactor}/{rung_cold}/{rung_hold}, \
         hostile {:.1} ms vs clean {:.1} ms",
        schedule.total_epochs(),
        schedule.fault_window().len(),
        hostile_ns / 1e6,
        clean_ns / 1e6,
    );

    c.bench_function("fault_campaign", |b| {
        b.iter(|| run_campaign(&schedule, true));
        b.counter("devices", devices as f64);
        b.counter("epochs", schedule.total_epochs() as f64);
        b.counter("fault_epochs", schedule.fault_window().len() as f64);
        b.counter("recovery_epochs", recovery as f64);
        b.counter("quarantines", victims as f64);
        b.counter("readmissions", victims as f64);
        b.counter("rung_holds", rung_hold as f64);
        b.counter("hostile_ms", hostile_ns / 1e6);
        b.counter("clean_ms", clean_ns / 1e6);
        b.counter("hostile_over_clean", hostile_ns / clean_ns.max(1.0));
    });
}

criterion_group!(benches, bench_fault_campaign);
criterion_main!(benches);
