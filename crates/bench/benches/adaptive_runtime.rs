//! The online-adaptation acceptance benchmark: static LP-optimal vs
//! adaptive vs timeout/eager on the drifting regime-switching workload,
//! plus the cost of the adaptation loop itself — per-epoch **warm
//! reloads** of the standing occupation-LP session against per-epoch
//! **cold rebuilds** of the same sequence of fitted models.
//!
//! Records (all under `target/bench/`):
//!
//! * `adaptive_runtime` — the headline: one full adaptive simulation
//!   over the drifting trace, with the policy comparison (simulated
//!   average power per policy), the warm/cold reload counters and the
//!   warm-over-cold re-solve speedup attached as JSON counters;
//! * `adaptive_runtime/warm/epoch_resolves` /
//!   `adaptive_runtime/cold/epoch_resolves` — the recorded epoch models
//!   replayed through one warm session vs fresh cold solves
//!   (`scripts/bench_compare.py` pairs these into its warm-vs-cold
//!   table).
//!
//! Before anything is timed, the run is gated on the acceptance
//! criteria: the adaptive controller must beat the static policy's
//! power under the drifting workload, every per-epoch solve must
//! respect the performance bound under its fitted model, and every
//! same-shape model swap must reload warm.

use criterion::{criterion_group, criterion_main, Criterion};
use dpm_core::{PolicyOptimizer, PolicySolution, SystemModel};
use dpm_policies::{EagerPolicy, TimeoutPolicy};
use dpm_runtime::{AdaptiveConfig, AdaptiveController};
use dpm_sim::{PowerManager, SimConfig, SimStats, Simulator, StochasticPolicyManager};
use dpm_systems::drifting;
use dpm_trace::{KMemoryTracker, WindowKind};

const SLICES: usize = 150_000;
const SEED: u64 = 7;
const SIM_SEED: u64 = 41;

fn scenario_config() -> AdaptiveConfig {
    AdaptiveConfig::new()
        .epoch_slices(drifting::EPOCH_SLICES)
        .window(WindowKind::Sliding(2 * drifting::EPOCH_SLICES as usize))
        .memory(drifting::MEMORY)
        .smoothing(drifting::SMOOTHING)
        .horizon(drifting::HORIZON)
        .max_performance_penalty(drifting::QUEUE_BOUND)
        .max_request_loss_rate(drifting::LOSS_BOUND)
}

fn optimizer(system: &SystemModel) -> PolicyOptimizer<'_> {
    PolicyOptimizer::new(system)
        .horizon(drifting::HORIZON)
        .max_performance_penalty(drifting::QUEUE_BOUND)
        .max_request_loss_rate(drifting::LOSS_BOUND)
}

fn simulate(system: &SystemModel, manager: &mut dyn PowerManager, trace: &[u32]) -> SimStats {
    Simulator::new(
        system,
        SimConfig::new(trace.len() as u64)
            .seed(SIM_SEED)
            .restart_probability(1.0 / drifting::HORIZON),
    )
    .run_trace(
        manager,
        trace,
        &mut KMemoryTracker::new(drifting::MEMORY).tracker(),
    )
    .expect("simulates")
}

fn static_solution(system: &SystemModel) -> PolicySolution {
    optimizer(system)
        .solve()
        .expect("blended model is feasible")
}

use dpm_bench::time_median_ns as time_median;

fn bench_adaptive_runtime(c: &mut Criterion) {
    let trace = drifting::workload(SLICES, SEED);
    let system = drifting::blended_system(SEED).expect("blended system composes");
    let static_policy = static_solution(&system);

    // One reference adaptive run: the acceptance gate, and the source of
    // the epoch-model sequence the re-solve benches replay.
    let mut adaptive = AdaptiveController::new(&system, scenario_config()).expect("constructs");
    let adaptive_stats = simulate(&system, &mut adaptive, &trace);
    let mut static_manager = StochasticPolicyManager::new(static_policy.policy().clone());
    let static_stats = simulate(&system, &mut static_manager, &trace);
    let mut eager = EagerPolicy::new(&system, 0, 1);
    let eager_stats = simulate(&system, &mut eager, &trace);
    let mut timeout = TimeoutPolicy::new(&system, 0, 1, 20);
    let timeout_stats = simulate(&system, &mut timeout, &trace);

    // Acceptance gate (mirrors tests/adaptive_runtime.rs): beat static
    // on power, respect the bound per epoch, reload warm throughout.
    assert!(
        adaptive_stats.average_power() < static_stats.average_power(),
        "adaptive {} vs static {}",
        adaptive_stats.average_power(),
        static_stats.average_power()
    );
    assert_eq!(adaptive.cold_reloads(), 0, "cold reload crept in");
    for epoch in adaptive.epochs() {
        assert!(!epoch.infeasible, "epoch {} infeasible", epoch.epoch);
        let perf = epoch.performance_per_slice.expect("solved");
        assert!(
            perf <= drifting::QUEUE_BOUND + 1e-6,
            "epoch {}: predicted queue {perf}",
            epoch.epoch
        );
    }
    let epoch_models: Vec<_> = adaptive
        .epochs()
        .iter()
        .map(|e| e.requester.clone())
        .collect();
    let warm_pivots = adaptive.epoch_pivots();
    let warm_count = adaptive.warm_reloads();

    // The same epoch-model sequence, re-solved two ways.
    let warm_resolves = || {
        let mut prepared = optimizer(&system).prepare().expect("prepares");
        prepared.solve().expect("feasible");
        let mut pivots = 0usize;
        for sr in &epoch_models {
            let sys = drifting::system_for(sr.clone()).expect("composes");
            prepared.update_model(sys.chain()).expect("reloads");
            let solution = prepared.solve().expect("feasible");
            pivots += solution.solve_report().iterations;
        }
        pivots
    };
    let cold_resolves = || {
        let mut pivots = 0usize;
        for sr in &epoch_models {
            let sys = drifting::system_for(sr.clone()).expect("composes");
            let solution = optimizer(&sys).solve().expect("feasible");
            pivots += solution.constrained().occupation().iterations();
        }
        pivots
    };
    let cold_pivots = cold_resolves();
    assert!(
        warm_pivots * 3 < cold_pivots,
        "warm pivots {warm_pivots} are not \u{226a} cold pivots {cold_pivots}"
    );

    let mut group = c.benchmark_group("adaptive_runtime");
    group.sample_size(10);
    group.bench_function("warm/epoch_resolves", |b| {
        b.iter(warm_resolves);
        b.counter("epochs", epoch_models.len() as f64);
        b.counter("pivots", warm_resolves() as f64);
    });
    group.bench_function("cold/epoch_resolves", |b| {
        b.iter(cold_resolves);
        b.counter("epochs", epoch_models.len() as f64);
        b.counter("pivots", cold_pivots as f64);
    });
    group.finish();

    // Headline record: one full adaptive run over the drifting trace,
    // with the policy comparison and loop-cost counters.
    let warm_ns = time_median(warm_resolves);
    let cold_ns = time_median(cold_resolves);
    println!(
        "adaptive_runtime: static {:.3} W, adaptive {:.3} W, timeout {:.3} W, eager {:.3} W; \
         {} epochs, {} warm reloads, {} warm pivots vs {} cold, \
         resolve speedup {:.2}x",
        static_stats.average_power(),
        adaptive_stats.average_power(),
        timeout_stats.average_power(),
        eager_stats.average_power(),
        epoch_models.len(),
        warm_count,
        warm_pivots,
        cold_pivots,
        cold_ns / warm_ns,
    );
    c.bench_function("adaptive_runtime", |b| {
        b.iter(|| {
            let mut controller =
                AdaptiveController::new(&system, scenario_config()).expect("constructs");
            simulate(&system, &mut controller, &trace)
        });
        b.counter("static_power_mw", 1e3 * static_stats.average_power());
        b.counter("adaptive_power_mw", 1e3 * adaptive_stats.average_power());
        b.counter("timeout_power_mw", 1e3 * timeout_stats.average_power());
        b.counter("eager_power_mw", 1e3 * eager_stats.average_power());
        b.counter("adaptive_queue_m", 1e3 * adaptive_stats.average_queue());
        b.counter("static_queue_m", 1e3 * static_stats.average_queue());
        b.counter("epochs", epoch_models.len() as f64);
        b.counter("warm_reloads", warm_count as f64);
        b.counter("cold_reloads", adaptive.cold_reloads() as f64);
        b.counter("warm_pivots", warm_pivots as f64);
        b.counter("cold_rebuild_pivots", cold_pivots as f64);
        b.counter("cold_over_warm_resolve_x", cold_ns / warm_ns);
    });
}

criterion_group!(benches, bench_adaptive_runtime);
criterion_main!(benches);
