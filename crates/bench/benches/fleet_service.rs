//! Fleet **service** benchmark: the long-running lifecycle on the
//! correlated rack scenario — churn throughput, the incremental
//! gauge's quiet-epoch payoff, and checkpoint/restore cost.
//!
//! Records (all under `target/bench/`):
//!
//! * `fleet_service/churn` — wall time of a churn wave (add + remove a
//!   batch of devices against a live, clustered fleet) with
//!   devices-churned-per-second throughput;
//! * `fleet_service/quiet_epoch/{gated,ungated}` — wall time of a calm
//!   adaptation epoch with the incremental gauge on vs off, with the
//!   measured skip ratio;
//! * `fleet_service/checkpoint` and `fleet_service/restore` — snapshot
//!   latency both ways, with the snapshot size and the restore's
//!   replayed-solve accounting;
//! * `fleet_service` — the headline: scenario shape, calm-phase skip
//!   ratio, churn/checkpoint costs.
//!
//! Before anything is timed, the run is gated on the service's
//! correctness criteria: calm epochs skip ≥ 90% of gauge
//! recomputations, churn triggers no cold reload, and a
//! checkpoint→restore round trip continues with a bit-identical
//! next-epoch report.

use criterion::{criterion_group, criterion_main, Criterion};
use dpm_bench::time_median_ns;
use dpm_runtime::service::ClassId;
use dpm_runtime::{AdaptiveConfig, DeviceId, FleetConfig, FleetReport, FleetService};
use dpm_systems::racks::{self, RackSchedule};
use dpm_trace::WindowKind;

/// Devices added and removed per timed churn wave.
const CHURN_BATCH: usize = 64;
/// Epochs run to reach the calm steady state before timing.
const WARMUP_EPOCHS: usize = 3;

fn config(quiet_gate: bool) -> FleetConfig {
    let config = FleetConfig::new()
        .adaptive(
            AdaptiveConfig::new()
                .memory(racks::MEMORY)
                .smoothing(racks::SMOOTHING)
                .horizon(2_000.0)
                .window(WindowKind::Sliding(2 * racks::EPOCH_SLICES)),
        )
        .cluster_divergence(0.1)
        .resolve_divergence(0.05);
    if quiet_gate {
        config.quiet_divergence(0.0)
    } else {
        config
    }
}

/// A warmed-up service: the full rack fleet, clustered and past the
/// estimator warmup, sitting in a calm phase.
fn warm_service(quiet_gate: bool, schedule: &RackSchedule) -> (FleetService, ClassId) {
    let mut service = FleetService::new(config(quiet_gate));
    let class = service
        .register_class(&racks::system().expect("system composes"))
        .expect("class registers");
    for _ in 0..schedule.devices() {
        service.add_device(class).expect("device adds");
    }
    for epoch in 0..WARMUP_EPOCHS {
        run_epoch(&mut service, schedule, epoch);
    }
    (service, class)
}

fn run_epoch(service: &mut FleetService, schedule: &RackSchedule, epoch: usize) -> FleetReport {
    let ids: Vec<DeviceId> = service.device_ids().to_vec();
    let pairs: Vec<(DeviceId, Vec<u32>)> = schedule
        .epoch_arrivals(epoch)
        .into_iter()
        .zip(ids)
        .map(|(stream, id)| (id, stream))
        .collect();
    service.run_epoch(&pairs).expect("epoch runs")
}

/// One churn wave: add [`CHURN_BATCH`] devices, run a calm epoch with
/// the newcomers on the calm pattern, remove them again. Returns the
/// epoch's report.
fn churn_wave(
    service: &mut FleetService,
    class: ClassId,
    schedule: &RackSchedule,
    epoch: usize,
) -> FleetReport {
    let joined: Vec<DeviceId> = (0..CHURN_BATCH)
        .map(|_| service.add_device(class).expect("device adds"))
        .collect();
    let calm: Vec<u32> = (0..racks::EPOCH_SLICES)
        .map(|i| u32::from(i % racks::CALM.1 < racks::CALM.0))
        .collect();
    let ids: Vec<DeviceId> = service.device_ids().to_vec();
    let pairs: Vec<(DeviceId, Vec<u32>)> = schedule
        .epoch_arrivals(epoch)
        .into_iter()
        .chain(std::iter::repeat_with(|| calm.clone()))
        .zip(ids)
        .map(|(stream, id)| (id, stream))
        .collect();
    let report = service.run_epoch(&pairs).expect("churn epoch runs");
    for id in joined {
        service.remove_device(id).expect("device removes");
    }
    report
}

fn bench_fleet_service(c: &mut Criterion) {
    let schedule = RackSchedule::new();
    let devices = schedule.devices();

    // Correctness gate 1: calm epochs skip >= 90% of gauge work.
    let (mut gated_service, gated_class) = warm_service(true, &schedule);
    let calm_report = run_epoch(&mut gated_service, &schedule, WARMUP_EPOCHS);
    let gauge_total = calm_report.gauge_skips + calm_report.gauge_refits;
    assert!(
        calm_report.gauge_skips * 10 >= gauge_total * 9,
        "calm epoch skipped only {} of {gauge_total} gauges",
        calm_report.gauge_skips
    );
    let skip_ratio = calm_report.gauge_skips as f64 / gauge_total.max(1) as f64;

    // Correctness gate 2: churn never reloads cold or storms solves.
    let churn_report = churn_wave(
        &mut gated_service,
        gated_class,
        &schedule,
        WARMUP_EPOCHS + 1,
    );
    assert_eq!(churn_report.cold_reloads, 0, "churn reloaded cold");
    assert!(
        churn_report.solves <= churn_report.clusters,
        "churn solved {} times for {} clusters",
        churn_report.solves,
        churn_report.clusters
    );

    // Correctness gate 3: checkpoint -> restore -> bit-identical epoch.
    let mut snapshot = Vec::new();
    gated_service
        .checkpoint(&mut snapshot)
        .expect("checkpoints");
    let mut restored = FleetService::new(config(true));
    restored
        .register_class(&racks::system().expect("system composes"))
        .expect("class registers");
    let restore_report = restored
        .restore(&mut snapshot.as_slice())
        .expect("restores");
    assert_eq!(restore_report.cold_reloads, 0, "restore reloaded cold");
    let next = WARMUP_EPOCHS + 2;
    assert_eq!(
        run_epoch(&mut gated_service, &schedule, next),
        run_epoch(&mut restored, &schedule, next),
        "restored service diverged from the uninterrupted run"
    );
    let snapshot_bytes = snapshot.len();

    // Timed: churn waves against a live fleet.
    let (mut churn_service, churn_class) = warm_service(true, &schedule);
    let churn_ns =
        time_median_ns(|| churn_wave(&mut churn_service, churn_class, &schedule, WARMUP_EPOCHS));
    let churned_per_s = (2 * CHURN_BATCH) as f64 / (churn_ns / 1e9);
    c.bench_function("fleet_service/churn", |b| {
        b.iter(|| churn_wave(&mut churn_service, churn_class, &schedule, WARMUP_EPOCHS));
        b.counter("batch_adds", CHURN_BATCH as f64);
        b.counter("batch_removes", CHURN_BATCH as f64);
        b.counter("devices_churned_per_s", churned_per_s);
        b.counter("resident_devices", devices as f64);
    });

    // Timed: one calm epoch, incremental gauge on vs off.
    let mut group = c.benchmark_group("fleet_service/quiet_epoch");
    group.sample_size(10);
    let gated_ns = time_median_ns(|| run_epoch(&mut gated_service, &schedule, next + 1));
    group.bench_function("gated", |b| {
        b.iter(|| run_epoch(&mut gated_service, &schedule, next + 1));
        b.counter("skip_ratio", skip_ratio);
        b.counter("devices", devices as f64);
    });
    let (mut ungated_service, _) = warm_service(false, &schedule);
    let ungated_ns = time_median_ns(|| run_epoch(&mut ungated_service, &schedule, WARMUP_EPOCHS));
    group.bench_function("ungated", |b| {
        b.iter(|| run_epoch(&mut ungated_service, &schedule, WARMUP_EPOCHS));
        b.counter("skip_ratio", 0.0);
        b.counter("devices", devices as f64);
    });
    group.finish();

    // Timed: snapshot both ways.
    let checkpoint_ns = time_median_ns(|| {
        let mut bytes = Vec::with_capacity(snapshot_bytes);
        gated_service.checkpoint(&mut bytes).expect("checkpoints");
        bytes
    });
    c.bench_function("fleet_service/checkpoint", |b| {
        b.iter(|| {
            let mut bytes = Vec::with_capacity(snapshot_bytes);
            gated_service.checkpoint(&mut bytes).expect("checkpoints");
            bytes
        });
        b.counter("snapshot_bytes", snapshot_bytes as f64);
        b.counter("devices", devices as f64);
    });
    let mut current = Vec::new();
    gated_service.checkpoint(&mut current).expect("checkpoints");
    let restore_ns =
        time_median_ns(|| restored.restore(&mut current.as_slice()).expect("restores"));
    c.bench_function("fleet_service/restore", |b| {
        b.iter(|| restored.restore(&mut current.as_slice()).expect("restores"));
        b.counter("snapshot_bytes", current.len() as f64);
        b.counter("replayed_solves", restore_report.replayed_solves as f64);
        b.counter("replay_pivots", restore_report.pivots as f64);
    });

    println!(
        "fleet_service: {devices} devices / {} racks, calm skip ratio {:.3}, \
         churn {:.0} devices/s, snapshot {snapshot_bytes} B \
         ({:.2} ms out, {:.2} ms back)",
        schedule.racks(),
        skip_ratio,
        churned_per_s,
        checkpoint_ns / 1e6,
        restore_ns / 1e6,
    );

    c.bench_function("fleet_service", |b| {
        b.iter(|| run_epoch(&mut gated_service, &schedule, next + 1));
        b.counter("devices", devices as f64);
        b.counter("racks", schedule.racks() as f64);
        b.counter("calm_skip_ratio", skip_ratio);
        b.counter("churn_devices_per_s", churned_per_s);
        b.counter("snapshot_bytes", snapshot_bytes as f64);
        b.counter("checkpoint_ms", checkpoint_ns / 1e6);
        b.counter("restore_ms", restore_ns / 1e6);
        b.counter("gated_epoch_ms", gated_ns / 1e6);
        b.counter("ungated_epoch_ms", ungated_ns / 1e6);
        b.counter(
            "host_cores",
            std::thread::available_parallelism().map_or(1, usize::from) as f64,
        );
    });
}

criterion_group!(benches, bench_fleet_service);
criterion_main!(benches);
