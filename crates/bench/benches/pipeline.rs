//! Criterion benchmarks for the non-LP stages of the tool pipeline
//! (Fig. 7): Markov composition, SR extraction from traces, and the
//! slotted simulator's throughput.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use dpm_core::PolicyOptimizer;
use dpm_sim::{SimConfig, Simulator, StochasticPolicyManager};
use dpm_systems::{disk, toy};
use dpm_trace::generators::BurstyTraceGenerator;
use dpm_trace::SrExtractor;

fn bench_composer(c: &mut Criterion) {
    c.bench_function("compose_disk_66_states", |b| {
        b.iter(|| disk::system().expect("composes"))
    });
    c.bench_function("compose_toy_8_states", |b| {
        b.iter(|| toy::example_system().expect("composes"))
    });
}

fn bench_sr_extractor(c: &mut Criterion) {
    let trace = BurstyTraceGenerator::new(0.02, 0.9)
        .seed(3)
        .generate(1_000_000);
    let mut group = c.benchmark_group("sr_extractor");
    group.throughput(Throughput::Elements(trace.len() as u64));
    for k in [1u32, 4, 8] {
        group.bench_with_input(BenchmarkId::new("memory", k), &trace, |b, trace| {
            b.iter(|| SrExtractor::new(k).extract(trace).expect("long enough"))
        });
    }
    group.finish();
}

fn bench_simulator(c: &mut Criterion) {
    let system = toy::example_system().expect("composes");
    let solution = PolicyOptimizer::new(&system)
        .discount(0.99999)
        .max_performance_penalty(0.5)
        .max_request_loss_rate(0.2)
        .solve()
        .expect("feasible");
    let slices = 100_000u64;
    let mut group = c.benchmark_group("simulator");
    group.throughput(Throughput::Elements(slices));
    group.bench_function("model_driven_100k_slices", |b| {
        b.iter(|| {
            let mut manager = StochasticPolicyManager::new(solution.policy().clone());
            Simulator::new(&system, SimConfig::new(slices).seed(1))
                .run(&mut manager)
                .expect("runs")
        })
    });
    let trace = BurstyTraceGenerator::new(0.05, 0.85)
        .seed(2)
        .generate(slices as usize);
    group.bench_function("trace_driven_100k_slices", |b| {
        b.iter(|| {
            let mut manager = StochasticPolicyManager::new(solution.policy().clone());
            let mut tracker = dpm_sim::binary_tracker();
            Simulator::new(&system, SimConfig::new(slices).seed(1))
                .run_trace(&mut manager, &trace, &mut tracker)
                .expect("runs")
        })
    });
    group.finish();
}

criterion_group!(benches, bench_composer, bench_sr_extractor, bench_simulator);
criterion_main!(benches);
