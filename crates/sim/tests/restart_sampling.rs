//! Tests of session-restart simulation: restart-sampled time averages
//! must converge to the optimizer's *discounted* expectations even when
//! the optimal constrained policy is not ergodic.

use dpm_core::{
    OptimizationGoal, PolicyOptimizer, ServiceProvider, ServiceQueue, ServiceRequester,
    SystemModel, SystemState,
};
use dpm_sim::{SimConfig, Simulator, StochasticPolicyManager};

fn toy_system() -> SystemModel {
    let mut b = ServiceProvider::builder();
    let on = b.add_state("on");
    let off = b.add_state("off");
    let s_on = b.add_command("s_on");
    let s_off = b.add_command("s_off");
    b.transition(off, on, s_on, 0.1).expect("valid");
    b.transition(on, off, s_off, 0.8).expect("valid");
    b.service_rate(on, s_on, 0.8).expect("valid");
    b.power(on, s_on, 3.0).expect("valid");
    b.power(on, s_off, 4.0).expect("valid");
    b.power(off, s_on, 4.0).expect("valid");
    let sp = b.build().expect("complete");
    let sr = ServiceRequester::two_state(0.05, 0.85).expect("valid");
    SystemModel::compose(sp, sr, ServiceQueue::with_capacity(1)).expect("composes")
}

#[test]
fn restart_sampling_matches_discounted_expectations() {
    let system = toy_system();
    let horizon = 2_000.0;
    let solution = PolicyOptimizer::new(&system)
        .horizon(horizon)
        .goal(OptimizationGoal::MinimizePower)
        .max_performance_penalty(0.5)
        .max_request_loss_rate(0.2)
        .solve()
        .expect("feasible");
    let mut manager = StochasticPolicyManager::new(solution.policy().clone());
    // ~400 expected sessions: enough to average over session boundaries.
    let stats = Simulator::new(
        &system,
        SimConfig::new(800_000)
            .seed(21)
            .restart_probability(1.0 / horizon),
    )
    .run(&mut manager)
    .expect("simulates");
    assert!(
        (stats.average_power() - solution.power_per_slice()).abs() < 0.08,
        "power: sim {} vs lp {}",
        stats.average_power(),
        solution.power_per_slice()
    );
    assert!(
        (stats.average_queue() - solution.performance_per_slice()).abs() < 0.05,
        "queue: sim {} vs lp {}",
        stats.average_queue(),
        solution.performance_per_slice()
    );
}

#[test]
fn restarts_reset_the_composite_state() {
    // With restart probability 1 the system is pinned to the initial
    // state every slice: the SP never leaves its starting state even
    // under a "sleep forever" policy.
    let system = toy_system();
    let mut sleepy = dpm_sim::ConstantCommandManager::new(1);
    let stats = Simulator::new(
        &system,
        SimConfig::new(20_000)
            .seed(5)
            .initial(SystemState {
                sp: 0,
                sr: 0,
                queue: 0,
            })
            .restart_probability(1.0),
    )
    .run(&mut sleepy)
    .expect("simulates");
    assert_eq!(stats.sp_state_fraction(0), 1.0);
    // Every slice issues the sleep command from the (reset) on-state:
    // power is the constant switching power.
    assert!((stats.average_power() - 4.0).abs() < 1e-9);
}

#[test]
fn zero_restart_probability_equals_plain_run() {
    let system = toy_system();
    let run = |config: SimConfig| {
        let mut pm = dpm_sim::ConstantCommandManager::new(0);
        Simulator::new(&system, config)
            .run(&mut pm)
            .expect("simulates")
    };
    let plain = run(SimConfig::new(30_000).seed(9));
    let restart_never = run(SimConfig::new(30_000).seed(9).restart_probability(0.0));
    // Identical dynamics... up to RNG draws consumed by the restart check.
    // The *statistics* must match within tolerance rather than exactly.
    assert!((plain.average_power() - restart_never.average_power()).abs() < 1e-9);
    assert!(
        (plain.average_queue() - restart_never.average_queue()).abs() < 0.05,
        "plain {} vs restart-never {}",
        plain.average_queue(),
        restart_never.average_queue()
    );
}

#[test]
#[should_panic(expected = "not in [0, 1]")]
fn invalid_restart_probability_panics() {
    SimConfig::new(10).restart_probability(1.5);
}
