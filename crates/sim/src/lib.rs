//! Slotted-time stochastic simulator for power-managed systems.
//!
//! This is the *simulation engine* of the paper's tool (Fig. 7). It drives
//! a composed [`SystemModel`](dpm_core::SystemModel) slice by slice under
//! any [`PowerManager`] — the optimizer's stochastic policies via
//! [`StochasticPolicyManager`], or the heuristic baselines from
//! `dpm-policies` — and gathers the statistics the paper reports: average
//! power, average queue length, request-loss rate and request latency.
//!
//! Two modes, as in the paper:
//!
//! * **model-driven** ([`Simulator::run`]): the service requester is
//!   simulated from its Markov chain. Agreement with the optimizer's
//!   expected values checks the *optimizer* (the circles on the Pareto
//!   curves of Figs. 8(b)/9(a));
//! * **trace-driven** ([`Simulator::run_trace`]): arrivals come from a
//!   recorded or synthetic trace. Disagreement with the optimizer's
//!   expected values measures *modeling error* — "if the arrival of
//!   service requests is poorly modeled by a Markov process, the
//!   performance and power values returned by this simulation do not
//!   match" (Section V, and the non-stationary study of Fig. 10).
//!
//! # Example
//!
//! ```
//! use dpm_sim::{ConstantCommandManager, SimConfig, Simulator};
//! use dpm_core::{ServiceProvider, ServiceQueue, ServiceRequester, SystemModel};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! # let mut b = ServiceProvider::builder();
//! # let on = b.add_state_with_power("on", 2.0);
//! # let cmd = b.add_command("work");
//! # b.service_rate(on, cmd, 0.9)?;
//! # let system = SystemModel::compose(
//! #     b.build()?, ServiceRequester::two_state(0.3, 0.7)?, ServiceQueue::with_capacity(1))?;
//! let simulator = Simulator::new(&system, SimConfig::new(10_000).seed(7));
//! let stats = simulator.run(&mut ConstantCommandManager::new(0))?;
//! assert!((stats.average_power() - 2.0).abs() < 1e-9); // always 2 W
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]
#![deny(missing_debug_implementations)]

mod manager;
mod simulator;
mod stats;

pub use manager::{ConstantCommandManager, Observation, PowerManager, StochasticPolicyManager};
pub use simulator::{binary_tracker, SimConfig, Simulator};
pub use stats::SimStats;
