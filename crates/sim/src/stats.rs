/// Statistics gathered over one simulation run.
///
/// All per-slice averages divide by the number of simulated slices, so
/// they are directly comparable with the optimizer's per-slice expected
/// values (the paper's methodology for validating optimal policies by
/// simulation, Section V).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SimStats {
    /// Slices simulated.
    pub slices: u64,
    /// Total energy: Σ over slices of `p(s, a)` (Watt·slices).
    pub energy: f64,
    /// Σ over slices of the queue backlog at the start of the slice.
    pub queue_slices: f64,
    /// Requests that arrived.
    pub arrived: u64,
    /// Requests completed.
    pub served: u64,
    /// Requests lost to queue overflow.
    pub lost: u64,
    /// Σ over served requests of (service slice − arrival slice).
    pub waiting_slices: f64,
    /// Σ over slices of the loss-indicator condition (SR issuing, queue
    /// full) — the quantity the paper's loss constraint bounds.
    pub loss_indicator_slices: u64,
    /// Slices spent in each service-provider state.
    pub sp_state_slices: Vec<u64>,
    /// Commands issued, by command index.
    pub commands_issued: Vec<u64>,
}

impl SimStats {
    /// Average power per slice (W).
    pub fn average_power(&self) -> f64 {
        if self.slices == 0 {
            0.0
        } else {
            self.energy / self.slices as f64
        }
    }

    /// Average queue backlog per slice — the paper's default performance
    /// penalty.
    pub fn average_queue(&self) -> f64 {
        if self.slices == 0 {
            0.0
        } else {
            self.queue_slices / self.slices as f64
        }
    }

    /// Fraction of slices in the paper's loss-indicator condition.
    pub fn loss_indicator_rate(&self) -> f64 {
        if self.slices == 0 {
            0.0
        } else {
            self.loss_indicator_slices as f64 / self.slices as f64
        }
    }

    /// Requests lost per slice.
    pub fn loss_rate_per_slice(&self) -> f64 {
        if self.slices == 0 {
            0.0
        } else {
            self.lost as f64 / self.slices as f64
        }
    }

    /// Fraction of arrived requests that were lost.
    pub fn loss_fraction(&self) -> f64 {
        if self.arrived == 0 {
            0.0
        } else {
            self.lost as f64 / self.arrived as f64
        }
    }

    /// Mean waiting time of served requests, in slices (arrival to service
    /// completion).
    pub fn average_waiting(&self) -> f64 {
        if self.served == 0 {
            0.0
        } else {
            self.waiting_slices / self.served as f64
        }
    }

    /// Served requests per slice (throughput).
    pub fn throughput(&self) -> f64 {
        if self.slices == 0 {
            0.0
        } else {
            self.served as f64 / self.slices as f64
        }
    }

    /// Fraction of slices spent in SP state `s`.
    ///
    /// # Panics
    ///
    /// Panics when `s` is out of range.
    pub fn sp_state_fraction(&self, s: usize) -> f64 {
        if self.slices == 0 {
            0.0
        } else {
            self.sp_state_slices[s] as f64 / self.slices as f64
        }
    }
}

impl std::fmt::Display for SimStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "simulated {} slices:", self.slices)?;
        writeln!(f, "  avg power    = {:.4} W", self.average_power())?;
        writeln!(f, "  avg queue    = {:.4}", self.average_queue())?;
        writeln!(
            f,
            "  requests     = {} arrived / {} served / {} lost",
            self.arrived, self.served, self.lost
        )?;
        writeln!(f, "  avg waiting  = {:.2} slices", self.average_waiting())?;
        writeln!(
            f,
            "  loss rate    = {:.5} /slice",
            self.loss_rate_per_slice()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn averages_divide_by_slices() {
        let stats = SimStats {
            slices: 10,
            energy: 25.0,
            queue_slices: 5.0,
            arrived: 8,
            served: 6,
            lost: 2,
            waiting_slices: 12.0,
            loss_indicator_slices: 3,
            sp_state_slices: vec![7, 3],
            commands_issued: vec![10, 0],
        };
        assert_eq!(stats.average_power(), 2.5);
        assert_eq!(stats.average_queue(), 0.5);
        assert_eq!(stats.loss_rate_per_slice(), 0.2);
        assert_eq!(stats.loss_fraction(), 0.25);
        assert_eq!(stats.average_waiting(), 2.0);
        assert_eq!(stats.throughput(), 0.6);
        assert_eq!(stats.loss_indicator_rate(), 0.3);
        assert_eq!(stats.sp_state_fraction(0), 0.7);
    }

    #[test]
    fn empty_run_yields_zeros() {
        let stats = SimStats::default();
        assert_eq!(stats.average_power(), 0.0);
        assert_eq!(stats.average_waiting(), 0.0);
        assert_eq!(stats.loss_fraction(), 0.0);
    }

    #[test]
    fn display_reports_key_lines() {
        let stats = SimStats {
            slices: 5,
            energy: 10.0,
            ..Default::default()
        };
        let text = stats.to_string();
        assert!(text.contains("avg power"));
        assert!(text.contains("2.0000 W"));
    }
}
