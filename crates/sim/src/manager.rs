use dpm_core::SystemState;
use dpm_mdp::RandomizedPolicy;
use rand::Rng;

/// What a power manager sees at the beginning of a slice — the
/// "observation of system history" of Definition 3.4, condensed to what
/// the implemented policy classes need.
///
/// The struct is `#[non_exhaustive]`: the simulator may grow the
/// observation (an epoch index for adaptive runtimes, say) without
/// breaking downstream policies. Construct one with
/// [`Observation::new`]; fields stay directly readable.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub struct Observation {
    /// The composite system state.
    pub state: SystemState,
    /// Its flat chain index (for table-based policies).
    pub state_index: usize,
    /// The current slice number (0-based).
    pub slice: u64,
    /// Slices elapsed since the last slice with a request arrival or a
    /// non-empty queue — the idle clock that timeout policies watch.
    pub idle_slices: u64,
}

impl Observation {
    /// Builds an observation — the constructor policies and tests use
    /// now that the struct is `#[non_exhaustive]` (out-of-crate struct
    /// literals no longer compile, so added fields cannot break callers).
    pub fn new(state: SystemState, state_index: usize, slice: u64, idle_slices: u64) -> Self {
        Observation {
            state,
            state_index,
            slice,
            idle_slices,
        }
    }
}

/// A power-management policy as an online decision procedure: each slice
/// it observes the system and issues one command (Definition 3.4).
///
/// Deterministic policies ignore `rng`; randomized policies (the optimal
/// ones, by Theorem A.2) sample from their per-state decision.
pub trait PowerManager {
    /// Chooses the command to issue for this slice.
    fn decide(&mut self, observation: &Observation, rng: &mut dyn rand::RngCore) -> usize;

    /// Resets internal state (timeout clocks etc.) between runs.
    fn reset(&mut self) {}

    /// Human-readable policy name for reports.
    fn name(&self) -> String;
}

/// The trivial "constant policy" of Example 3.4: always the same command.
/// With command = "stay active" this is the always-on baseline the paper
/// compares against.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ConstantCommandManager {
    command: usize,
}

impl ConstantCommandManager {
    /// Always issue `command`.
    pub fn new(command: usize) -> Self {
        ConstantCommandManager { command }
    }
}

impl PowerManager for ConstantCommandManager {
    fn decide(&mut self, _observation: &Observation, _rng: &mut dyn rand::RngCore) -> usize {
        self.command
    }

    fn name(&self) -> String {
        format!("constant(cmd {})", self.command)
    }
}

/// Executes a randomized Markov stationary policy (the optimizer's output,
/// equation (16)): looks up the decision row of the current composite
/// state and samples a command from it.
#[derive(Debug, Clone)]
pub struct StochasticPolicyManager {
    policy: RandomizedPolicy,
    label: String,
}

impl StochasticPolicyManager {
    /// Wraps an optimizer-produced policy.
    pub fn new(policy: RandomizedPolicy) -> Self {
        StochasticPolicyManager {
            policy,
            label: "optimal stochastic".to_string(),
        }
    }

    /// Sets a custom display name.
    pub fn with_label(mut self, label: impl Into<String>) -> Self {
        self.label = label.into();
        self
    }

    /// The wrapped policy.
    pub fn policy(&self) -> &RandomizedPolicy {
        &self.policy
    }
}

impl PowerManager for StochasticPolicyManager {
    fn decide(&mut self, observation: &Observation, rng: &mut dyn rand::RngCore) -> usize {
        let decision = self.policy.decision(observation.state_index);
        let draw: f64 = rng.gen();
        let mut acc = 0.0;
        for (command, &p) in decision.iter().enumerate() {
            acc += p;
            if draw < acc {
                return command;
            }
        }
        decision.len() - 1 // numerical slack: land on the last command
    }

    fn name(&self) -> String {
        self.label.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn obs(state_index: usize) -> Observation {
        Observation::new(
            SystemState {
                sp: 0,
                sr: 0,
                queue: 0,
            },
            state_index,
            0,
            0,
        )
    }

    #[test]
    fn constant_manager_is_constant() {
        let mut pm = ConstantCommandManager::new(3);
        let mut rng = StdRng::seed_from_u64(1);
        assert_eq!(pm.decide(&obs(0), &mut rng), 3);
        assert_eq!(pm.decide(&obs(5), &mut rng), 3);
        assert!(pm.name().contains('3'));
    }

    #[test]
    fn stochastic_manager_samples_the_decision() {
        let policy = RandomizedPolicy::new(vec![vec![0.25, 0.75], vec![1.0, 0.0]]).unwrap();
        let mut pm = StochasticPolicyManager::new(policy);
        let mut rng = StdRng::seed_from_u64(42);
        let n = 20_000;
        let ones = (0..n).filter(|_| pm.decide(&obs(0), &mut rng) == 1).count();
        let frac = ones as f64 / n as f64;
        assert!((frac - 0.75).abs() < 0.02, "sampled {frac}");
        // Deterministic row always returns its command.
        for _ in 0..100 {
            assert_eq!(pm.decide(&obs(1), &mut rng), 0);
        }
    }

    #[test]
    fn labels_are_settable() {
        let policy = RandomizedPolicy::new(vec![vec![1.0]]).unwrap();
        let pm = StochasticPolicyManager::new(policy).with_label("fig8b-optimal");
        assert_eq!(pm.name(), "fig8b-optimal");
    }
}
