use std::collections::VecDeque;

use dpm_core::{DpmError, SystemModel, SystemState};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::{Observation, PowerManager, SimStats};

/// Configuration of one simulation run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SimConfig {
    /// Slices to simulate.
    pub slices: u64,
    /// RNG seed (runs are fully reproducible).
    pub seed: u64,
    /// Starting composite state; defaults to `(0, 0, 0)` — first SP state,
    /// first SR state, empty queue.
    pub initial: SystemState,
    /// Per-slice probability of ending the session and restarting from
    /// `initial` — the paper's trap-state model (Fig. 5) made executable.
    /// `None` simulates one uninterrupted trajectory.
    pub restart_probability: Option<f64>,
}

impl SimConfig {
    /// A run of `slices` slices with seed 0 from the default initial
    /// state, without session restarts.
    pub fn new(slices: u64) -> Self {
        SimConfig {
            slices,
            seed: 0,
            initial: SystemState {
                sp: 0,
                sr: 0,
                queue: 0,
            },
            restart_probability: None,
        }
    }

    /// Sets the RNG seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the initial composite state.
    pub fn initial(mut self, state: SystemState) -> Self {
        self.initial = state;
        self
    }

    /// Enables session restarts with per-slice probability `1 − α`,
    /// making long-run simulated averages sample the *discounted*
    /// occupation measure of the optimizer exactly — the right comparison
    /// when an optimal constrained policy is not ergodic (its closed-loop
    /// chain can have several recurrent classes, which a single
    /// uninterrupted trajectory cannot mix between).
    ///
    /// # Panics
    ///
    /// Panics when `one_minus_alpha ∉ [0, 1]`.
    pub fn restart_probability(mut self, one_minus_alpha: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&one_minus_alpha),
            "restart probability {one_minus_alpha} not in [0, 1]"
        );
        self.restart_probability = Some(one_minus_alpha);
        self
    }
}

/// The slotted-time simulator: steps a composed system under a
/// [`PowerManager`], slice by slice, mirroring the semantics of the
/// Markov composer exactly (same event order, same queue dynamics), so
/// that long-run simulated averages converge to the optimizer's expected
/// values — the consistency check of Section V.
#[derive(Debug)]
pub struct Simulator<'a> {
    system: &'a SystemModel,
    config: SimConfig,
}

impl<'a> Simulator<'a> {
    /// Creates a simulator over `system`.
    pub fn new(system: &'a SystemModel, config: SimConfig) -> Self {
        Simulator { system, config }
    }

    /// Model-driven run: the service requester is simulated from its
    /// Markov chain.
    ///
    /// # Errors
    ///
    /// [`DpmError::UnknownIndex`] if the configured initial state is out
    /// of range, or if the manager issues an out-of-range command.
    pub fn run(&self, manager: &mut dyn PowerManager) -> Result<SimStats, DpmError> {
        self.run_inner(manager, None)
    }

    /// Trace-driven run: per-slice arrival counts come from `arrivals`
    /// (shorter traces are cycled); the SR *state* shown to the policy is
    /// inferred by `sr_tracker`, a closure fed each slice's arrival count
    /// — use [`binary_tracker`] for two-state workload models.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Self::run`].
    pub fn run_trace(
        &self,
        manager: &mut dyn PowerManager,
        arrivals: &[u32],
        sr_tracker: &mut dyn FnMut(u32) -> usize,
    ) -> Result<SimStats, DpmError> {
        self.run_inner(manager, Some((arrivals, sr_tracker)))
    }

    #[allow(clippy::type_complexity)]
    fn run_inner(
        &self,
        manager: &mut dyn PowerManager,
        mut trace: Option<(&[u32], &mut dyn FnMut(u32) -> usize)>,
    ) -> Result<SimStats, DpmError> {
        let system = self.system;
        let sp = system.provider();
        let sr = system.requester();
        let capacity = system.queue().capacity();
        let mut rng = StdRng::seed_from_u64(self.config.seed);
        manager.reset();

        let mut state = self.config.initial;
        // Validate the initial state once.
        system.state_index(state)?;

        let mut stats = SimStats {
            sp_state_slices: vec![0; sp.num_states()],
            commands_issued: vec![0; sp.num_commands()],
            ..Default::default()
        };
        // Arrival slice of each enqueued request, for latency accounting.
        let mut backlog: VecDeque<u64> = VecDeque::with_capacity(capacity + 1);
        let mut idle_slices: u64 = 0;

        for slice in 0..self.config.slices {
            // Session boundary: with probability 1 − α the session closes
            // and a fresh one starts from the configured initial state.
            if let Some(p) = self.config.restart_probability {
                if rng.gen::<f64>() < p {
                    state = self.config.initial;
                    backlog.clear();
                    idle_slices = 0;
                }
            }
            let state_index = system
                .state_index(state)
                .expect("state stays in range by construction");
            let observation = Observation::new(state, state_index, slice, idle_slices);
            let command = manager.decide(&observation, &mut rng);
            if command >= sp.num_commands() {
                return Err(DpmError::UnknownIndex {
                    kind: "command",
                    index: command,
                    limit: sp.num_commands(),
                });
            }

            // Accounting at the start of the slice.
            stats.energy += sp.power(state.sp, command);
            stats.queue_slices += state.queue as f64;
            stats.sp_state_slices[state.sp] += 1;
            stats.commands_issued[command] += 1;

            // SP transition.
            let next_sp = sample_row(sp.chain().kernel(command).row(state.sp), &mut rng);

            // SR transition / trace feed: arrivals during this slice come
            // from the *destination* SR state (Example 3.5's convention).
            let (next_sr, arrivals) = match &mut trace {
                None => {
                    let next = sample_row(sr.chain().transition_matrix().row(state.sr), &mut rng);
                    (next, sr.requests(next))
                }
                Some((trace_arrivals, tracker)) => {
                    let a = trace_arrivals[(slice % trace_arrivals.len() as u64) as usize];
                    (tracker(a), a)
                }
            };

            // Loss-indicator accounting (the paper's constraint quantity):
            // requests issued while the queue is full.
            if arrivals > 0 && state.queue == capacity {
                stats.loss_indicator_slices += 1;
            }

            // Queue update: enqueue arrivals (dropping overflow), then at
            // most one service completion with probability σ(sp, a).
            stats.arrived += arrivals as u64;
            let sigma = sp.service_rate(state.sp, command);
            let mut present = state.queue + arrivals as usize;
            let served = present > 0 && rng.gen::<f64>() < sigma;
            if served {
                present -= 1;
            }
            let next_queue = present.min(capacity);
            let lost = present - next_queue;
            stats.lost += lost as u64;

            // Latency bookkeeping mirrors the same dynamics on a FIFO of
            // arrival timestamps.
            for _ in 0..arrivals {
                backlog.push_back(slice);
            }
            if served {
                if let Some(arrived_at) = backlog.pop_front() {
                    stats.served += 1;
                    stats.waiting_slices += (slice - arrived_at + 1) as f64;
                }
            }
            while backlog.len() > next_queue {
                backlog.pop_back(); // lost requests leave the FIFO
            }

            idle_slices = if arrivals > 0 || next_queue > 0 {
                0
            } else {
                idle_slices + 1
            };

            state = SystemState {
                sp: next_sp,
                sr: next_sr,
                queue: next_queue,
            };
        }
        stats.slices = self.config.slices;
        Ok(stats)
    }
}

/// Samples an index from a probability row.
fn sample_row(row: &[f64], rng: &mut StdRng) -> usize {
    let draw: f64 = rng.gen();
    let mut acc = 0.0;
    for (i, &p) in row.iter().enumerate() {
        acc += p;
        if draw < acc {
            return i;
        }
    }
    row.len() - 1
}

/// An SR-state tracker for two-state workload models: state 1 while
/// requests arrive, state 0 otherwise. Pass to [`Simulator::run_trace`].
pub fn binary_tracker() -> impl FnMut(u32) -> usize {
    |arrivals: u32| usize::from(arrivals > 0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ConstantCommandManager, StochasticPolicyManager};
    use dpm_core::{
        OptimizationGoal, PolicyOptimizer, ServiceProvider, ServiceQueue, ServiceRequester,
    };

    /// The running-example system with the calibrated workload.
    fn toy_system() -> SystemModel {
        let mut b = ServiceProvider::builder();
        let on = b.add_state("on");
        let off = b.add_state("off");
        let s_on = b.add_command("s_on");
        let s_off = b.add_command("s_off");
        b.transition(off, on, s_on, 0.1).unwrap();
        b.transition(on, off, s_off, 0.8).unwrap();
        b.service_rate(on, s_on, 0.8).unwrap();
        b.power(on, s_on, 3.0).unwrap();
        b.power(on, s_off, 4.0).unwrap();
        b.power(off, s_on, 4.0).unwrap();
        let sp = b.build().unwrap();
        let sr = ServiceRequester::two_state(0.05, 0.85).unwrap();
        SystemModel::compose(sp, sr, ServiceQueue::with_capacity(1)).unwrap()
    }

    #[test]
    fn always_on_draws_constant_power() {
        let system = toy_system();
        let sim = Simulator::new(&system, SimConfig::new(20_000).seed(3));
        let stats = sim.run(&mut ConstantCommandManager::new(0)).unwrap();
        assert!((stats.average_power() - 3.0).abs() < 1e-9);
        assert_eq!(stats.sp_state_fraction(0), 1.0);
        assert_eq!(stats.commands_issued[0], 20_000);
    }

    #[test]
    fn workload_frequency_matches_stationary_distribution() {
        let system = toy_system();
        let sim = Simulator::new(&system, SimConfig::new(200_000).seed(11));
        let stats = sim.run(&mut ConstantCommandManager::new(0)).unwrap();
        // π_busy = 0.05 / (0.05 + 0.15) = 0.25 ⇒ arrivals ≈ 0.25/slice.
        let rate = stats.arrived as f64 / stats.slices as f64;
        assert!((rate - 0.25).abs() < 0.01, "arrival rate {rate}");
    }

    #[test]
    fn simulation_validates_optimizer_expectations() {
        // The paper's key consistency check: simulate the optimizer's
        // policy and compare simulated power/queue with LP expectations.
        let system = toy_system();
        let solution = PolicyOptimizer::new(&system)
            .discount(0.99999)
            .goal(OptimizationGoal::MinimizePower)
            .max_performance_penalty(0.5)
            .max_request_loss_rate(0.2)
            .solve()
            .unwrap();
        let mut manager = StochasticPolicyManager::new(solution.policy().clone());
        let sim = Simulator::new(&system, SimConfig::new(400_000).seed(17));
        let stats = sim.run(&mut manager).unwrap();
        let dp = (stats.average_power() - solution.power_per_slice()).abs();
        let dq = (stats.average_queue() - solution.performance_per_slice()).abs();
        assert!(
            dp < 0.08,
            "power: sim {} vs lp {}",
            stats.average_power(),
            solution.power_per_slice()
        );
        assert!(
            dq < 0.05,
            "queue: sim {} vs lp {}",
            stats.average_queue(),
            solution.performance_per_slice()
        );
        // Loss indicator rate also agrees.
        let dl = (stats.loss_indicator_rate() - solution.loss_per_slice()).abs();
        assert!(
            dl < 0.03,
            "loss: sim {} vs lp {}",
            stats.loss_indicator_rate(),
            solution.loss_per_slice()
        );
    }

    #[test]
    fn trace_driven_matches_model_driven_for_matching_trace() {
        // Feed a trace generated by the same two-state process: the two
        // modes must agree closely (this is what the circles landing on
        // the curve in Fig. 8(b) demonstrate).
        let system = toy_system();
        // Generate a trace from the SR chain.
        let mut rng = StdRng::seed_from_u64(23);
        let p = system.requester().chain().transition_matrix().clone();
        let mut s = 0usize;
        let trace: Vec<u32> = (0..300_000)
            .map(|_| {
                s = sample_row(p.row(s), &mut rng);
                system.requester().requests(s)
            })
            .collect();
        let solution = PolicyOptimizer::new(&system)
            .discount(0.99999)
            .max_performance_penalty(0.5)
            .max_request_loss_rate(0.2)
            .solve()
            .unwrap();
        let sim = Simulator::new(&system, SimConfig::new(300_000).seed(29));
        let mut m1 = StochasticPolicyManager::new(solution.policy().clone());
        let model_stats = sim.run(&mut m1).unwrap();
        let mut m2 = StochasticPolicyManager::new(solution.policy().clone());
        let mut tracker = binary_tracker();
        let trace_stats = sim.run_trace(&mut m2, &trace, &mut tracker).unwrap();
        assert!(
            (model_stats.average_power() - trace_stats.average_power()).abs() < 0.1,
            "model {} vs trace {}",
            model_stats.average_power(),
            trace_stats.average_power()
        );
    }

    #[test]
    fn latency_and_throughput_are_consistent() {
        let system = toy_system();
        let sim = Simulator::new(&system, SimConfig::new(100_000).seed(5));
        let stats = sim.run(&mut ConstantCommandManager::new(0)).unwrap();
        // Served + lost + still-enqueued ≈ arrived.
        assert!(stats.served + stats.lost <= stats.arrived);
        assert!(stats.arrived - (stats.served + stats.lost) <= 1);
        // Every served request waited at least one slice.
        assert!(stats.average_waiting() >= 1.0);
        // Throughput cannot exceed the service rate.
        assert!(stats.throughput() <= 0.8);
    }

    #[test]
    fn eager_off_policy_starves_queue() {
        // Always issuing s_off keeps the SP off: no service, all requests
        // eventually lost (capacity 1).
        let system = toy_system();
        let sim = Simulator::new(&system, SimConfig::new(50_000).seed(9));
        let stats = sim.run(&mut ConstantCommandManager::new(1)).unwrap();
        assert_eq!(stats.served, 0);
        assert!(stats.lost > 0);
        // Power → 0 once the SP lands in off (except the first slices).
        assert!(stats.average_power() < 0.1);
    }

    #[test]
    fn bad_command_is_rejected() {
        struct Rogue;
        impl PowerManager for Rogue {
            fn decide(&mut self, _o: &Observation, _r: &mut dyn rand::RngCore) -> usize {
                99
            }
            fn name(&self) -> String {
                "rogue".to_string()
            }
        }
        let system = toy_system();
        let sim = Simulator::new(&system, SimConfig::new(10));
        assert!(matches!(
            sim.run(&mut Rogue),
            Err(DpmError::UnknownIndex { .. })
        ));
    }

    #[test]
    fn runs_are_reproducible_by_seed() {
        let system = toy_system();
        let sim = Simulator::new(&system, SimConfig::new(5_000).seed(77));
        let a = sim.run(&mut ConstantCommandManager::new(0)).unwrap();
        let b = sim.run(&mut ConstantCommandManager::new(0)).unwrap();
        assert_eq!(a, b);
        let sim2 = Simulator::new(&system, SimConfig::new(5_000).seed(78));
        let c = sim2.run(&mut ConstantCommandManager::new(0)).unwrap();
        assert_ne!(a.arrived, c.arrived);
    }
}
