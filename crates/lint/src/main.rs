//! The `dpm-lint` command-line entry point.
//!
//! ```text
//! dpm-lint [--check] [--root <dir>] [--json <path>] [--write-baseline] [--quiet]
//! ```
//!
//! * `--check` (default): scan the workspace, ratchet against the
//!   baseline, print rustc-style diagnostics; exit 1 on any error.
//! * `--write-baseline`: re-ratchet — rewrite `lint-baseline.toml`
//!   from the current counts (rule findings still gate: you cannot
//!   baseline away a `HashMap`).
//! * `--json <path>`: additionally write the machine-readable report
//!   (CI uploads it as an artifact for trend tracking).
//! * `--root <dir>`: workspace root (default: current directory).
//! * `--quiet`: suppress the per-diagnostic output, keep the summary.
//!
//! Exit codes: 0 clean, 1 findings at `deny`, 2 usage/config/io error.

#![forbid(unsafe_code)]

use std::path::PathBuf;
use std::process::ExitCode;

use dpm_lint::diagnostics::Severity;
use dpm_lint::Engine;

struct Args {
    root: PathBuf,
    json: Option<PathBuf>,
    write_baseline: bool,
    quiet: bool,
}

const USAGE: &str =
    "usage: dpm-lint [--check] [--root <dir>] [--json <path>] [--write-baseline] [--quiet]";

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        root: PathBuf::from("."),
        json: None,
        write_baseline: false,
        quiet: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--check" => {}
            "--write-baseline" => args.write_baseline = true,
            "--quiet" => args.quiet = true,
            "--root" => {
                args.root = PathBuf::from(it.next().ok_or("--root needs a directory")?);
            }
            "--json" => {
                args.json = Some(PathBuf::from(it.next().ok_or("--json needs a path")?));
            }
            "--help" | "-h" => {
                return Err(USAGE.to_string());
            }
            other => return Err(format!("unknown argument `{other}`\n{USAGE}")),
        }
    }
    Ok(args)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(args) => args,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::from(2);
        }
    };
    match run(&args) {
        Ok(clean) => {
            if clean {
                ExitCode::SUCCESS
            } else {
                ExitCode::from(1)
            }
        }
        Err(msg) => {
            eprintln!("dpm-lint: {msg}");
            ExitCode::from(2)
        }
    }
}

fn run(args: &Args) -> Result<bool, String> {
    let engine = Engine::from_workspace(&args.root)?;
    let result = if args.write_baseline {
        let (result, _) = engine.write_baseline(&args.root)?;
        println!(
            "dpm-lint: baseline rewritten at {} ({} crates)",
            engine.config().baseline_path,
            result.counts.len()
        );
        result
    } else {
        engine.check_workspace(&args.root)?
    };
    if !args.quiet {
        for d in &result.diagnostics {
            println!("{}\n", d.render());
        }
    }
    if let Some(json_path) = &args.json {
        if let Some(parent) = json_path.parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent)
                    .map_err(|e| format!("cannot create {}: {e}", parent.display()))?;
            }
        }
        std::fs::write(json_path, result.to_json())
            .map_err(|e| format!("cannot write {}: {e}", json_path.display()))?;
    }
    let notes = result
        .diagnostics
        .iter()
        .filter(|d| d.severity == Severity::Note)
        .count();
    println!(
        "dpm-lint: {} files scanned, {} errors, {} warnings, {} notes",
        result.files_scanned,
        result.errors(),
        result.warnings(),
        notes
    );
    Ok(result.is_clean())
}
