//! Diagnostic model and rendering: rustc-style text for humans, a
//! stable JSON report for CI artifacts and trend tracking.

use std::fmt::Write as _;

/// How a finding is treated.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Severity {
    /// Fails the run (`error[...]`).
    Deny,
    /// Reported (`warning[...]`) but does not fail the run.
    Warn,
    /// Informational (`note[...]`); never fails the run. Used for the
    /// ratchet-decrease nudge.
    Note,
    /// The rule is disabled for the scoped crates.
    Allow,
}

impl Severity {
    /// Config/report string form.
    pub fn as_str(self) -> &'static str {
        match self {
            Severity::Deny => "deny",
            Severity::Warn => "warn",
            Severity::Note => "note",
            Severity::Allow => "allow",
        }
    }

    /// Parses the config string form.
    pub fn parse(s: &str) -> Option<Severity> {
        match s {
            "deny" => Some(Severity::Deny),
            "warn" => Some(Severity::Warn),
            "note" => Some(Severity::Note),
            "allow" => Some(Severity::Allow),
            _ => None,
        }
    }

    fn label(self) -> &'static str {
        match self {
            Severity::Deny => "error",
            Severity::Warn => "warning",
            Severity::Note | Severity::Allow => "note",
        }
    }
}

/// One rendered finding.
#[derive(Debug, Clone)]
pub struct Diagnostic {
    /// Rule id (`hash-collections`, `panic-ratchet`, …).
    pub rule: String,
    /// Effective severity after config.
    pub severity: Severity,
    /// Path relative to the workspace root, `/`-separated.
    pub path: String,
    /// 1-based line.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
    /// Human-readable description, one line.
    pub message: String,
}

impl Diagnostic {
    /// Renders in rustc style:
    ///
    /// ```text
    /// error[hash-collections]: `HashMap` iterates in hash order …
    ///   --> crates/runtime/src/fleet.rs:42:17
    /// ```
    pub fn render(&self) -> String {
        format!(
            "{}[{}]: {}\n  --> {}:{}:{}",
            self.severity.label(),
            self.rule,
            self.message,
            self.path,
            self.line,
            self.col
        )
    }
}

/// Escapes a string for embedding in a JSON document.
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Per-crate panic-hygiene counters (rule `panic-ratchet`).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PanicCounts {
    /// `.unwrap()` call sites.
    pub unwrap: u64,
    /// `.expect(..)` call sites.
    pub expect: u64,
    /// `panic!(..)` invocations.
    pub panic: u64,
    /// `unreachable!(..)` invocations.
    pub unreachable: u64,
    /// Bracket-index expressions (`x[i]` — each can panic on
    /// out-of-bounds).
    pub index: u64,
}

impl PanicCounts {
    /// (category name, count) pairs in canonical order.
    pub fn entries(&self) -> [(&'static str, u64); 5] {
        [
            ("unwrap", self.unwrap),
            ("expect", self.expect),
            ("panic", self.panic),
            ("unreachable", self.unreachable),
            ("index", self.index),
        ]
    }

    /// Mutable access by canonical category name.
    pub fn get_mut(&mut self, name: &str) -> Option<&mut u64> {
        match name {
            "unwrap" => Some(&mut self.unwrap),
            "expect" => Some(&mut self.expect),
            "panic" => Some(&mut self.panic),
            "unreachable" => Some(&mut self.unreachable),
            "index" => Some(&mut self.index),
            _ => None,
        }
    }
}

/// Serializes the whole run as a JSON report (version 1). Shape:
///
/// ```json
/// {
///   "version": 1,
///   "errors": 0,
///   "warnings": 0,
///   "files_scanned": 123,
///   "diagnostics": [{"rule": "...", "severity": "...", "path": "...",
///                    "line": 1, "col": 1, "message": "..."}],
///   "panic_counts": {"lp": {"unwrap": 1, "expect": 2, "panic": 0,
///                            "unreachable": 0, "index": 9}}
/// }
/// ```
pub fn json_report(
    diagnostics: &[Diagnostic],
    counts: &std::collections::BTreeMap<String, PanicCounts>,
    files_scanned: usize,
) -> String {
    let errors = diagnostics
        .iter()
        .filter(|d| d.severity == Severity::Deny)
        .count();
    let warnings = diagnostics
        .iter()
        .filter(|d| d.severity == Severity::Warn)
        .count();
    let mut out = String::new();
    let _ = write!(
        out,
        "{{\n  \"version\": 1,\n  \"errors\": {errors},\n  \"warnings\": {warnings},\n  \"files_scanned\": {files_scanned},\n  \"diagnostics\": ["
    );
    for (i, d) in diagnostics.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "\n    {{\"rule\": \"{}\", \"severity\": \"{}\", \"path\": \"{}\", \"line\": {}, \"col\": {}, \"message\": \"{}\"}}",
            json_escape(&d.rule),
            d.severity.as_str(),
            json_escape(&d.path),
            d.line,
            d.col,
            json_escape(&d.message)
        );
    }
    if diagnostics.is_empty() {
        out.push_str("],\n");
    } else {
        out.push_str("\n  ],\n");
    }
    out.push_str("  \"panic_counts\": {");
    for (i, (krate, c)) in counts.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "\n    \"{}\": {{", json_escape(krate));
        for (j, (name, v)) in c.entries().iter().enumerate() {
            if j > 0 {
                out.push_str(", ");
            }
            let _ = write!(out, "\"{name}\": {v}");
        }
        out.push('}');
    }
    if counts.is_empty() {
        out.push_str("}\n}\n");
    } else {
        out.push_str("\n  }\n}\n");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_is_rustc_shaped() {
        let d = Diagnostic {
            rule: "hash-collections".into(),
            severity: Severity::Deny,
            path: "crates/lp/src/lib.rs".into(),
            line: 10,
            col: 5,
            message: "no".into(),
        };
        assert_eq!(
            d.render(),
            "error[hash-collections]: no\n  --> crates/lp/src/lib.rs:10:5"
        );
    }

    #[test]
    fn json_escapes_and_counts() {
        let d = Diagnostic {
            rule: "r".into(),
            severity: Severity::Warn,
            path: "a\"b".into(),
            line: 1,
            col: 2,
            message: "line\nbreak".into(),
        };
        let mut counts = std::collections::BTreeMap::new();
        counts.insert(
            "lp".to_string(),
            PanicCounts {
                unwrap: 1,
                ..PanicCounts::default()
            },
        );
        let json = json_report(&[d], &counts, 3);
        assert!(json.contains("a\\\"b"));
        assert!(json.contains("line\\nbreak"));
        assert!(json.contains("\"errors\": 0"));
        assert!(json.contains("\"warnings\": 1"));
        assert!(json.contains("\"unwrap\": 1"));
    }
}
